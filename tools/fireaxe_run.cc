/**
 * @file
 * fireaxe-run: execute a shipped target design's partitioned
 * co-simulation, either directly in this process or — with
 * `--connect SOCKET` — by submitting the same job to a running
 * `fireaxed` daemon over the fireaxe.job.v1 protocol.
 *
 * Both modes funnel through the same svc::JobSpec → svc::JobRunner
 * pipeline, so the printed `trace_hash` / `final_sig` are identical
 * whether a job ran here or in the daemon (the CI smoke test asserts
 * exactly that). The full recovery surface stays exposed: periodic
 * crash-consistent snapshots (`--snapshot-every` / `--snapshot-dir`)
 * and whole-run resume from a committed snapshot (`--resume`).
 *
 * Output is `key value` lines on stdout (grep-friendly), plus an
 * optional `--json FILE` row for sweep tooling. Exit status: 0 ok,
 * 2 usage errors, 3 runtime/restore/verification failures, 4
 * deadlock.
 */

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "obs/jsonparse.hh"
#include "sweep_common.hh"
#include "svc/jobrunner.hh"
#include "svc/jobspec.hh"
#include "svc/protocol.hh"
#include "svc/server.hh"
#include "svc/targets.hh"

using namespace fireaxe;

namespace {

int
usage(std::ostream &os, int status)
{
    os << "usage: fireaxe-run --target NAME [options]\n"
          "\n"
          "options:\n"
          "  --target NAME       shipped design to run (required)\n"
          "  --list-targets      print the target registry and exit\n"
          "  --connect SOCKET    submit the job to a fireaxed daemon\n"
          "                      at SOCKET instead of running here\n"
          "  --cycles N          target cycles to simulate "
          "(default 2000)\n"
          "  --mode exact|fast   partitioning mode (default exact)\n"
          "  --backend sequential|parallel\n"
          "                      execution backend (default "
          "sequential)\n"
          "  --workers N         parallel worker threads (0 = auto)\n"
          "  --engine interpret|compiled\n"
          "                      evaluation engine (default: "
          "FIREAXE_EVAL)\n"
          "  --batch-depth N     depth-N token batching (default: "
          "FIREAXE_BATCH_DEPTH\n"
          "                      or 1); illegal boundaries clamp to "
          "1 (PLAN011)\n"
          "  --fault-rate R      inject faults at rate R per token\n"
          "  --seed S            fault-injection seed\n"
          "  --snapshot-every N  autosnapshot every N target cycles\n"
          "  --snapshot-dir DIR  snapshot directory (also "
          "FIREAXE_SNAPSHOT_DIR)\n"
          "  --resume            restore the committed snapshot in\n"
          "                      --snapshot-dir before running\n"
          "  --hash-from C       fold only cycles >= C into "
          "trace_hash\n"
          "                      (a resume raises this to the resume "
          "cycle)\n"
          "  --channel-capacity N\n"
          "                      override every planned channel's "
          "token\n"
          "                      capacity (0 is statically invalid)\n"
          "  --json FILE         append a JSON result row to FILE\n"
          "  --stream FILE       streaming telemetry JSONL (also "
          "FIREAXE_STREAM);\n"
          "                      enables token tracing — analyze "
          "with fireaxe-trace\n"
          "  --sample-every N    token-trace sampling rate, 1-in-N "
          "(default 64)\n"
          "  --stream-every N    stream a chunk every N target "
          "cycles (default 256)\n"
          "\n"
          "targets:\n";
    for (const auto &t : svc::targetRegistry())
        os << "  " << t.name << "  " << t.summary << "\n";
    return status;
}

uint64_t
parseU64(const std::string &flag, const std::string &text)
{
    char *end = nullptr;
    unsigned long long v = std::strtoull(text.c_str(), &end, 0);
    if (!end || *end != '\0') {
        std::cerr << "fireaxe-run: " << flag
                  << " needs an integer, got '" << text << "'\n";
        exit(2);
    }
    return v;
}

/** Requested batch depth the run will use: the spec's explicit
 *  value, else the process-wide FIREAXE_BATCH_DEPTH default. */
unsigned
effectiveBatchDepth(const svc::JobSpec &spec)
{
    return spec.batchDepth ? spec.batchDepth
                           : platform::defaultBatchDepth();
}

/** The uniform key-value report both modes print. */
void
printOutcome(const std::string &target, const svc::RunOutcome &o,
             unsigned batch_depth)
{
    std::cout << "target " << target << "\n"
              << "cycles " << o.result.targetCycles << "\n"
              << "resume_cycle " << o.resumeCycle << "\n"
              << "hash_from " << o.hashFrom << "\n"
              << "trace_hash " << svc::hexHash(o.traceHash) << "\n"
              << "final_sig " << svc::hexHash(o.finalSig) << "\n"
              << "artifact_hash " << svc::hexHash(o.artifactHash)
              << "\n"
              << "snapshots " << o.snapshots << "\n"
              << "snapshot_bytes " << o.snapshotBytes << "\n"
              << "snapshot_wall_ms " << o.snapshotWallMs << "\n"
              << "restores " << o.restores << "\n"
              << "host_time_ns " << o.result.hostTimeNs << "\n"
              << "batch_depth " << batch_depth << "\n"
              << "sim_rate_mhz " << o.result.simRateMhz() << "\n"
              << "retransmits " << o.result.retransmits << "\n"
              << "deadlocked " << (o.result.deadlocked ? 1 : 0)
              << "\n"
              << "stopped " << (o.result.stopped ? 1 : 0) << "\n"
              << "elab_cache_hit " << (o.elabCacheHit ? 1 : 0)
              << "\n"
              << "verify_cache_hit " << (o.verifyCacheHit ? 1 : 0)
              << "\n"
              << "program_cache_hit " << (o.programCacheHit ? 1 : 0)
              << "\n";
}

void
appendJsonRow(const std::string &json_path, const svc::JobSpec &spec,
              const svc::RunOutcome &o)
{
    // One JSON object per line, appended — sweep tooling treats the
    // file as JSONL. The identity prefix is the uniform one from
    // bench/sweep_common.hh.
    std::string engine = spec.engine.empty()
                             ? rtlsim::toString(
                                   rtlsim::defaultEvalEngine())
                             : spec.engine;
    unsigned batch_depth = effectiveBatchDepth(spec);
    bench::JsonRow row;
    bench::addRunIdentity(row, "fireaxe.run.v1", spec.target,
                          o.planHash, o.artifactHash, spec.backend,
                          engine, spec.workers, batch_depth);
    row.field("mode", spec.mode)
        .field("cycles", o.result.targetCycles)
        .field("resume_cycle", o.resumeCycle)
        .field("trace_hash", o.traceHash)
        .field("final_sig", o.finalSig)
        .field("snapshots", o.snapshots)
        .field("snapshot_bytes", o.snapshotBytes)
        .field("snapshot_wall_ms", o.snapshotWallMs)
        .field("host_time_ns", o.result.hostTimeNs)
        .field("sim_rate_mhz", o.result.simRateMhz())
        .field("retransmits", o.result.retransmits)
        .field("deadlocked", o.result.deadlocked);
    std::ofstream js(json_path, std::ios::app);
    js << row.str() << "\n";
}

/**
 * Client mode: submit over the socket, forward stream lines into
 * the --stream file, and reprint the daemon's result in the same
 * key-value format direct mode uses.
 */
int
runConnected(const std::string &socket_path, svc::JobSpec spec,
             const std::string &stream_file)
{
    // The daemon streams telemetry back over the protocol; the
    // client materializes the file locally.
    std::ofstream stream_os;
    if (!stream_file.empty()) {
        spec.stream = true;
        spec.streamPath.clear();
        stream_os.open(stream_file);
        if (!stream_os) {
            std::cerr << "fireaxe-run: cannot open '" << stream_file
                      << "'\n";
            return 2;
        }
    }

    svc::Client client;
    std::string error;
    if (!client.connect(socket_path, error) ||
        !client.submit(spec, error)) {
        std::cerr << "fireaxe-run: " << error << "\n";
        return 3;
    }

    std::string line;
    while (client.readLine(line, error)) {
        obs::JsonValue v;
        std::string perr;
        if (!obs::parseJson(line, v, perr)) {
            std::cerr << "fireaxe-run: bad response line: " << perr
                      << "\n";
            return 3;
        }
        std::string type = v.text("type");
        if (type == "stream") {
            if (stream_os.is_open()) {
                const obs::JsonValue *data = v.get("data");
                if (data) {
                    // Re-extract the raw object text: the line is
                    // {"type":"stream","job":N,"data":<obj>} and
                    // "data" is always last, so slice it back out.
                    size_t at = line.find("\"data\":");
                    stream_os << line.substr(at + 7,
                                             line.size() - at - 8)
                              << "\n";
                }
            }
        } else if (type == "error") {
            std::cerr << "fireaxe-run: daemon rejected job: "
                      << v.text("message") << "\n";
            std::string report = v.text("report");
            if (!report.empty())
                std::cerr << report;
            return 3;
        } else if (type == "result") {
            svc::RunOutcome o;
            o.result.targetCycles = v.u64("cycles");
            o.resumeCycle = v.u64("resume_cycle");
            o.hashFrom = v.u64("hash_from");
            o.traceHash = svc::parseHexHash(v.text("trace_hash"));
            o.finalSig = svc::parseHexHash(v.text("final_sig"));
            o.artifactHash =
                svc::parseHexHash(v.text("artifact_hash"));
            o.planHash = svc::parseHexHash(v.text("plan_hash"));
            o.snapshots = v.u64("snapshots");
            o.restores = v.u64("restores");
            o.result.hostTimeNs = v.num("host_time_ns");
            o.result.retransmits = v.u64("retransmits");
            o.result.deadlocked = v.flag("deadlocked");
            o.result.stopped = v.flag("stopped");
            o.elabCacheHit = v.flag("elab_cache_hit");
            o.verifyCacheHit = v.flag("verify_cache_hit");
            o.programCacheHit = v.flag("program_cache_hit");
            printOutcome(v.text("target", spec.target), o,
                         effectiveBatchDepth(spec));
            return o.result.deadlocked ? 4 : 0;
        }
        // ack / status lines: lifecycle noise, not results.
    }
    std::cerr << "fireaxe-run: connection closed before a result: "
              << error << "\n";
    return 3;
}

} // namespace

int
main(int argc, char **argv)
{
    svc::JobSpec spec;
    std::string json_path, stream_path, connect_path;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "fireaxe-run: " << flag
                          << " needs a value\n";
                exit(2);
            }
            return argv[++i];
        };
        if (arg == "--target") {
            spec.target = value("--target");
        } else if (arg == "--list-targets") {
            for (const auto &t : svc::targetRegistry())
                std::cout << t.name << "  " << t.summary << "\n";
            return 0;
        } else if (arg == "--connect") {
            connect_path = value("--connect");
        } else if (arg == "--cycles") {
            spec.cycles = parseU64(arg, value("--cycles"));
        } else if (arg == "--mode") {
            spec.mode = value("--mode");
        } else if (arg == "--backend") {
            spec.backend = value("--backend");
        } else if (arg == "--workers") {
            spec.workers =
                unsigned(parseU64(arg, value("--workers")));
        } else if (arg == "--engine") {
            spec.engine = value("--engine");
        } else if (arg == "--batch-depth") {
            spec.batchDepth =
                unsigned(parseU64(arg, value("--batch-depth")));
        } else if (arg == "--fault-rate") {
            spec.faultRate =
                std::atof(value("--fault-rate").c_str());
        } else if (arg == "--seed") {
            spec.seed = parseU64(arg, value("--seed"));
        } else if (arg == "--snapshot-every") {
            spec.snapshotEvery =
                parseU64(arg, value("--snapshot-every"));
        } else if (arg == "--snapshot-dir") {
            spec.snapshotDir = value("--snapshot-dir");
        } else if (arg == "--resume") {
            spec.resume = true;
        } else if (arg == "--hash-from") {
            spec.hashFrom = parseU64(arg, value("--hash-from"));
        } else if (arg == "--channel-capacity") {
            spec.channelCapacity =
                int(parseU64(arg, value("--channel-capacity")));
        } else if (arg == "--json") {
            json_path = value("--json");
        } else if (arg == "--stream") {
            stream_path = value("--stream");
        } else if (arg == "--sample-every") {
            spec.sampleEvery =
                unsigned(parseU64(arg, value("--sample-every")));
        } else if (arg == "--stream-every") {
            spec.streamEvery =
                parseU64(arg, value("--stream-every"));
        } else if (arg == "--help" || arg == "-h") {
            return usage(std::cout, 0);
        } else {
            std::cerr << "fireaxe-run: unknown option '" << arg
                      << "'\n";
            return usage(std::cerr, 2);
        }
    }

    if (spec.target.empty())
        return usage(std::cerr, 2);
    std::string bad = spec.validate();
    if (!bad.empty()) {
        std::cerr << "fireaxe-run: " << bad << "\n";
        return 2;
    }
    if (spec.resume && spec.snapshotDir.empty()) {
        std::cerr << "fireaxe-run: --resume needs --snapshot-dir\n";
        return 2;
    }

    if (!connect_path.empty())
        return runConnected(connect_path, spec, stream_path);

    // Direct mode: --stream (or FIREAXE_STREAM in the environment)
    // turns on metrics + token tracing and exports a
    // fireaxe.stream.v1 JSONL file for fireaxe-trace.
    spec.streamPath = stream_path;
    if (spec.streamPath.empty()) {
        if (const char *env = std::getenv("FIREAXE_STREAM");
            env && *env)
            spec.streamPath = env;
    }

    svc::RunOutcome o = svc::runJob(spec);
    if (!o.error.empty()) {
        std::cerr << "fireaxe-run: " << o.error << "\n";
        if (!o.verifyReport.empty())
            std::cerr << o.verifyReport;
        return o.exitCode;
    }
    printOutcome(spec.target, o, effectiveBatchDepth(spec));
    if (!json_path.empty())
        appendJsonRow(json_path, spec, o);
    return o.exitCode;
}
