/**
 * @file
 * fireaxe-run: execute a shipped target design's partitioned
 * co-simulation from the command line, with the full recovery
 * surface exposed — periodic crash-consistent snapshots
 * (`--snapshot-every` / `--snapshot-dir`) and whole-run resume from
 * a committed snapshot (`--resume`).
 *
 * Built for the crash-recovery smoke test in CI: a run can be
 * SIGKILLed mid-flight and resumed from its last snapshot, and the
 * printed `final_sig` (FNV-1a over every partition's final signal
 * table) plus the suffix `trace_hash` (FNV-1a over per-cycle output
 * tokens from `--hash-from` onward) must match an uninterrupted
 * golden run — that is the bit-exactness contract of src/recovery.
 *
 * Output is `key value` lines on stdout (grep-friendly), plus an
 * optional `--json FILE` row for sweep tooling. Exit status: 0 ok,
 * 2 usage errors, 3 runtime/restore failures, 4 deadlock.
 */

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/telemetry.hh"
#include "platform/executor.hh"
#include "platform/fpga.hh"
#include "sweep_common.hh"
#include "recovery/snapshot.hh"
#include "ripper/partition.hh"
#include "rtlsim/engine.hh"
#include "targets_common.hh"
#include "transport/fault.hh"
#include "transport/link.hh"

using namespace fireaxe;
using tools::ToolTarget;

namespace {

int
usage(std::ostream &os, int status)
{
    os << "usage: fireaxe-run --target NAME [options]\n"
          "\n"
          "options:\n"
          "  --target NAME       shipped design to run (required)\n"
          "  --list-targets      print the target registry and exit\n"
          "  --cycles N          target cycles to simulate "
          "(default 2000)\n"
          "  --mode exact|fast   partitioning mode (default exact)\n"
          "  --backend sequential|parallel\n"
          "                      execution backend (default "
          "sequential)\n"
          "  --workers N         parallel worker threads (0 = auto)\n"
          "  --engine interpret|compiled\n"
          "                      evaluation engine (default: "
          "FIREAXE_EVAL)\n"
          "  --fault-rate R      inject faults at rate R per token\n"
          "  --seed S            fault-injection seed\n"
          "  --snapshot-every N  autosnapshot every N target cycles\n"
          "  --snapshot-dir DIR  snapshot directory (also "
          "FIREAXE_SNAPSHOT_DIR)\n"
          "  --resume            restore the committed snapshot in\n"
          "                      --snapshot-dir before running\n"
          "  --hash-from C       fold only cycles >= C into "
          "trace_hash\n"
          "                      (a resume raises this to the resume "
          "cycle)\n"
          "  --json FILE         append a JSON result row to FILE\n"
          "  --stream FILE       streaming telemetry JSONL (also "
          "FIREAXE_STREAM);\n"
          "                      enables token tracing — analyze "
          "with fireaxe-trace\n"
          "  --sample-every N    token-trace sampling rate, 1-in-N "
          "(default 64)\n"
          "  --stream-every N    stream a chunk every N target "
          "cycles (default 256)\n"
          "\n"
          "targets:\n";
    for (const auto &t : tools::toolTargets())
        os << "  " << t.name << "  " << t.summary << "\n";
    return status;
}

uint64_t
parseU64(const std::string &flag, const std::string &text)
{
    char *end = nullptr;
    unsigned long long v = std::strtoull(text.c_str(), &end, 0);
    if (!end || *end != '\0') {
        std::cerr << "fireaxe-run: " << flag
                  << " needs an integer, got '" << text << "'\n";
        exit(2);
    }
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string target_name, mode = "exact", backend = "sequential";
    std::string engine, snapshot_dir, json_path, stream_path;
    uint64_t cycles = 2000, snapshot_every = 0, hash_from = 0;
    uint64_t seed = 0xF1A57ULL, stream_every = 0;
    unsigned workers = 0, sample_every = 64;
    double fault_rate = 0.0;
    bool resume = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "fireaxe-run: " << flag
                          << " needs a value\n";
                exit(2);
            }
            return argv[++i];
        };
        if (arg == "--target") {
            target_name = value("--target");
        } else if (arg == "--list-targets") {
            for (const auto &t : tools::toolTargets())
                std::cout << t.name << "  " << t.summary << "\n";
            return 0;
        } else if (arg == "--cycles") {
            cycles = parseU64(arg, value("--cycles"));
        } else if (arg == "--mode") {
            mode = value("--mode");
        } else if (arg == "--backend") {
            backend = value("--backend");
        } else if (arg == "--workers") {
            workers =
                unsigned(parseU64(arg, value("--workers")));
        } else if (arg == "--engine") {
            engine = value("--engine");
        } else if (arg == "--fault-rate") {
            fault_rate = std::atof(value("--fault-rate").c_str());
        } else if (arg == "--seed") {
            seed = parseU64(arg, value("--seed"));
        } else if (arg == "--snapshot-every") {
            snapshot_every =
                parseU64(arg, value("--snapshot-every"));
        } else if (arg == "--snapshot-dir") {
            snapshot_dir = value("--snapshot-dir");
        } else if (arg == "--resume") {
            resume = true;
        } else if (arg == "--hash-from") {
            hash_from = parseU64(arg, value("--hash-from"));
        } else if (arg == "--json") {
            json_path = value("--json");
        } else if (arg == "--stream") {
            stream_path = value("--stream");
        } else if (arg == "--sample-every") {
            sample_every =
                unsigned(parseU64(arg, value("--sample-every")));
        } else if (arg == "--stream-every") {
            stream_every = parseU64(arg, value("--stream-every"));
        } else if (arg == "--help" || arg == "-h") {
            return usage(std::cout, 0);
        } else {
            std::cerr << "fireaxe-run: unknown option '" << arg
                      << "'\n";
            return usage(std::cerr, 2);
        }
    }

    if (target_name.empty())
        return usage(std::cerr, 2);
    const ToolTarget *t = tools::findToolTarget(target_name);
    if (!t) {
        std::cerr << "fireaxe-run: unknown target '" << target_name
                  << "'\n";
        return usage(std::cerr, 2);
    }
    if (mode != "exact" && mode != "fast") {
        std::cerr << "fireaxe-run: --mode must be exact or fast\n";
        return 2;
    }
    if (backend != "sequential" && backend != "parallel") {
        std::cerr << "fireaxe-run: --backend must be sequential or "
                     "parallel\n";
        return 2;
    }
    if (resume && snapshot_dir.empty()) {
        std::cerr << "fireaxe-run: --resume needs --snapshot-dir\n";
        return 2;
    }

    try {
        auto circuit = t->build();
        auto spec = t->spec(circuit);
        spec.mode = mode == "fast" ? ripper::PartitionMode::Fast
                                   : ripper::PartitionMode::Exact;
        auto plan = ripper::partition(circuit, spec);

        std::vector<platform::FpgaSpec> fpgas(
            plan.partitions.size(), platform::alveoU250(100.0));
        platform::MultiFpgaSim sim(plan, fpgas,
                                   transport::qsfpAurora());

        if (fault_rate > 0.0)
            sim.setFaultModel(
                transport::FaultConfig::uniform(fault_rate, seed));

        platform::ExecConfig exec;
        exec.backend = backend == "parallel"
                           ? platform::ExecBackend::Parallel
                           : platform::ExecBackend::Sequential;
        exec.workers = workers;
        if (!engine.empty())
            exec.evalEngine = rtlsim::parseEvalEngine(engine);
        exec.snapshotEveryCycles = snapshot_every;
        exec.snapshotDir = snapshot_dir;
        sim.setExecConfig(exec);

        // Streaming telemetry: --stream (or FIREAXE_STREAM in the
        // environment) turns on metrics + token tracing and exports
        // a fireaxe.stream.v1 JSONL file for fireaxe-trace.
        const char *env_stream = std::getenv("FIREAXE_STREAM");
        if (!stream_path.empty() || (env_stream && *env_stream)) {
            obs::TelemetryConfig tcfg;
            tcfg.streamPath = stream_path; // empty = FIREAXE_STREAM
            tcfg.tokenSampleEvery = sample_every;
            tcfg.streamEveryCycles = stream_every;
            tcfg.runLabel = target_name;
            sim.setTelemetry(tcfg);
        }

        // Per-partition running trace hash: each partition's monitor
        // runs on that partition's owning thread, so each slot has a
        // single writer under either backend. Cycles below hash_from
        // are excluded symmetrically in a resumed run and in the
        // golden reference (pass the resume cycle via --hash-from to
        // the golden), which makes the two suffix hashes comparable.
        size_t nparts = plan.partitions.size();
        std::vector<uint64_t> traceHash(
            nparts, 1469598103934665603ull);
        for (size_t p = 0; p < nparts; ++p) {
            sim.setMonitor(
                int(p), [&, p](rtlsim::Simulator &s, unsigned thread,
                               uint64_t cycle) {
                    if (cycle < hash_from)
                        return;
                    uint64_t h = traceHash[p];
                    h = recovery::fnv1aMix(h, cycle);
                    h = recovery::fnv1aMix(h, thread);
                    for (size_t i = 0; i < s.numSignals(); ++i)
                        h = recovery::fnv1aMix(h,
                                               s.peekIdx(int(i)));
                    traceHash[p] = h;
                });
        }

        uint64_t resume_cycle = 0;
        if (resume) {
            std::string error;
            if (!sim.restore(snapshot_dir, error)) {
                std::cerr << "fireaxe-run: restore failed: " << error
                          << "\n";
                return 3;
            }
            // Partitions may sit at different cycles at the cut; the
            // comparable suffix starts where the *furthest* one
            // resumes, so raise the trace filter to that cycle.
            for (size_t p = 0; p < nparts; ++p)
                resume_cycle =
                    std::max(resume_cycle,
                             sim.model(int(p)).minTargetCycle());
            hash_from = std::max(hash_from, resume_cycle);
        }

        auto result = sim.run(cycles);

        uint64_t trace = 1469598103934665603ull;
        for (size_t p = 0; p < nparts; ++p)
            trace = recovery::fnv1aMix(trace, traceHash[p]);

        uint64_t final_sig = 1469598103934665603ull;
        for (size_t p = 0; p < nparts; ++p) {
            const auto &m = sim.model(int(p));
            final_sig =
                recovery::fnv1aMix(final_sig, m.minTargetCycle());
            for (size_t i = 0; i < m.sim().numSignals(); ++i)
                final_sig = recovery::fnv1aMix(
                    final_sig, m.sim().peekIdx(int(i)));
        }

        std::cout << "target " << target_name << "\n"
                  << "cycles " << result.targetCycles << "\n"
                  << "resume_cycle " << resume_cycle << "\n"
                  << "hash_from " << hash_from << "\n"
                  << "trace_hash 0x" << std::hex << trace << std::dec
                  << "\n"
                  << "final_sig 0x" << std::hex << final_sig
                  << std::dec << "\n"
                  << "snapshots " << sim.snapshotCount() << "\n"
                  << "snapshot_bytes " << sim.lastSnapshotBytes()
                  << "\n"
                  << "snapshot_wall_ms " << sim.totalSnapshotWallMs()
                  << "\n"
                  << "restores " << sim.restoreCount() << "\n"
                  << "host_time_ns " << result.hostTimeNs << "\n"
                  << "sim_rate_mhz " << result.simRateMhz() << "\n"
                  << "retransmits " << result.retransmits << "\n"
                  << "deadlocked " << (result.deadlocked ? 1 : 0)
                  << "\n";

        if (!json_path.empty()) {
            // One JSON object per line, appended — sweep tooling
            // treats the file as JSONL. The identity prefix is the
            // uniform one from bench/sweep_common.hh.
            bench::JsonRow row;
            bench::addRunIdentity(
                row, "fireaxe.run.v1", target_name, sim.planHash(),
                backend, rtlsim::toString(exec.evalEngine),
                exec.workers);
            row.field("mode", mode)
                .field("cycles", result.targetCycles)
                .field("resume_cycle", resume_cycle)
                .field("trace_hash", trace)
                .field("final_sig", final_sig)
                .field("snapshots", sim.snapshotCount())
                .field("snapshot_bytes", sim.lastSnapshotBytes())
                .field("snapshot_wall_ms", sim.totalSnapshotWallMs())
                .field("host_time_ns", result.hostTimeNs)
                .field("sim_rate_mhz", result.simRateMhz())
                .field("retransmits", result.retransmits)
                .field("deadlocked", result.deadlocked);
            std::ofstream js(json_path, std::ios::app);
            js << row.str() << "\n";
        }

        return result.deadlocked ? 4 : 0;
    } catch (const std::exception &e) {
        std::cerr << "fireaxe-run: " << e.what() << "\n";
        return 3;
    }
}
