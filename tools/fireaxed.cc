/**
 * @file
 * fireaxed: the multi-tenant simulation service daemon. Listens on a
 * Unix-domain socket for fireaxe.job.v1 submissions (newline-
 * delimited JSON; see src/svc/protocol.hh), runs jobs on a fixed
 * worker pool over the shared content-addressed artifact cache, and
 * streams each job's status, telemetry, and result back to its
 * submitter incrementally.
 *
 * SIGTERM/SIGINT drain gracefully: intake stops, queued jobs are
 * rejected with structured errors, in-flight simulations quiesce at
 * their next run()-boundary (committing resumable snapshots for jobs
 * configured with a snapshot directory), and every result is
 * delivered before the process exits 0.
 *
 * Submit with `fireaxe-run --connect SOCKET --target ... `, or speak
 * the protocol directly with any line-oriented socket client.
 */

#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>

#include "svc/server.hh"

using namespace fireaxe;

namespace {

svc::Server *g_server = nullptr;

void
onSignal(int)
{
    if (g_server)
        g_server->requestShutdown(); // async-signal-safe
}

int
usage(std::ostream &os, int status)
{
    os << "usage: fireaxed --socket PATH [options]\n"
          "\n"
          "options:\n"
          "  --socket PATH     Unix-domain socket to listen on "
          "(required)\n"
          "  --workers N       concurrent jobs (default 2)\n"
          "  --cache-mb N      compiled-program + elaboration cache "
          "budget,\n"
          "                    each N megabytes (default 64)\n"
          "  --verify-cache-mb N\n"
          "                    verify-report cache budget (default "
          "8)\n";
    return status;
}

uint64_t
parseU64(const std::string &flag, const std::string &text)
{
    char *end = nullptr;
    unsigned long long v = std::strtoull(text.c_str(), &end, 0);
    if (!end || *end != '\0') {
        std::cerr << "fireaxed: " << flag
                  << " needs an integer, got '" << text << "'\n";
        exit(2);
    }
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    svc::ServerConfig cfg;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "fireaxed: " << flag
                          << " needs a value\n";
                exit(2);
            }
            return argv[++i];
        };
        if (arg == "--socket") {
            cfg.socketPath = value("--socket");
        } else if (arg == "--workers") {
            cfg.service.workers =
                unsigned(parseU64(arg, value("--workers")));
        } else if (arg == "--cache-mb") {
            size_t mb = size_t(parseU64(arg, value("--cache-mb")));
            cfg.service.cache.elabBytes = mb << 20;
            cfg.service.cache.programBytes = mb << 20;
        } else if (arg == "--verify-cache-mb") {
            cfg.service.cache.verifyBytes =
                size_t(parseU64(arg, value("--verify-cache-mb")))
                << 20;
        } else if (arg == "--help" || arg == "-h") {
            return usage(std::cout, 0);
        } else {
            std::cerr << "fireaxed: unknown option '" << arg
                      << "'\n";
            return usage(std::cerr, 2);
        }
    }
    if (cfg.socketPath.empty())
        return usage(std::cerr, 2);

    svc::Server server(cfg);
    std::string error;
    if (!server.start(error)) {
        std::cerr << "fireaxed: " << error << "\n";
        return 1;
    }

    g_server = &server;
    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);
    std::signal(SIGPIPE, SIG_IGN);

    std::cerr << "fireaxed: listening on " << cfg.socketPath
              << " (" << (cfg.service.workers ? cfg.service.workers
                                              : 1)
              << " workers)\n";
    server.run();
    std::cerr << "fireaxed: drained, exiting\n";
    g_server = nullptr;
    return 0;
}
