/**
 * @file
 * fireaxe-trace: offline critical-path profiler over a streaming
 * telemetry file ("fireaxe.stream.v1" JSONL, produced by
 * `fireaxe-run --stream` or any executor with
 * TelemetryConfig::streamPath set).
 *
 * Reads the stream back (header → channel table and run identity,
 * "tokens" chunks → causal token records, the last "metrics" line →
 * measured per-partition wall-clock wait), runs the critical-path
 * analyzer (obs/critpath.hh), and prints the human report: a
 * per-partition attribution-coverage table plus the top-N blocking
 * channels with wait decomposed into serialization / link flight /
 * retransmit / upstream-idle percentages.
 *
 *   --top N       channels to show in the text report (default 10)
 *   --json FILE   machine-readable report ("fireaxe.critpath.v1")
 *   --chrome FILE Chrome trace_event JSON with the critical path
 *                 highlighted (category "token.critical"/"critpath")
 *
 * Exit status: 0 ok, 2 usage errors, 3 unreadable/invalid stream.
 * Malformed lines (e.g. a line truncated by a crashed producer) are
 * skipped with a warning; a stream without a header is invalid.
 */

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/critpath.hh"
#include "obs/jsonparse.hh"
#include "obs/tokentrace.hh"

using namespace fireaxe;

namespace {

int
usage(std::ostream &os, int status)
{
    os << "usage: fireaxe-trace FILE [options]\n"
          "\n"
          "options:\n"
          "  --top N        blocking channels to print (default 10)\n"
          "  --json FILE    write the critical-path report as JSON\n"
          "  --chrome FILE  write an annotated Chrome trace\n";
    return status;
}

/** Parsed-back view of one stream file. */
struct Stream
{
    bool haveHeader = false;
    std::string target;
    std::string backend;
    std::string engine;
    uint64_t planHash = 0;
    obs::CritPathInput input;
    /** Last summary line (authoritative for a chunked run). */
    obs::JsonValue summary;
    bool haveSummary = false;
    uint64_t tokenLines = 0;
    uint64_t metricsLines = 0;
    uint64_t badLines = 0;
};

void
parseHeader(const obs::JsonValue &line, Stream &s)
{
    s.haveHeader = true;
    s.target = line.text("target");
    s.backend = line.text("backend");
    s.engine = line.text("engine");
    s.planHash = line.u64("plan_hash");
    s.input.sampleEvery = unsigned(line.u64("sample_every", 1));
    if (const obs::JsonValue *parts = line.get("partitions");
        parts && parts->isArray()) {
        for (const obs::JsonValue &p : parts->arr) {
            size_t id = size_t(p.u64("id"));
            if (s.input.partNames.size() <= id)
                s.input.partNames.resize(id + 1);
            s.input.partNames[id] = p.text("name");
        }
    }
    if (const obs::JsonValue *chans = line.get("channels");
        chans && chans->isArray()) {
        for (const obs::JsonValue &c : chans->arr) {
            obs::TokenChannelInfo info;
            info.id = int(c.u64("id"));
            info.name = c.text("name");
            info.srcPart = int(c.u64("src"));
            info.dstPart = int(c.u64("dst"));
            s.input.channels.push_back(std::move(info));
        }
    }
}

void
parseTokens(const obs::JsonValue &line, Stream &s)
{
    const obs::JsonValue *records = line.get("records");
    if (!records || !records->isArray())
        return;
    ++s.tokenLines;
    for (const obs::JsonValue &r : records->arr) {
        obs::TokenRecord rec;
        rec.channel = int(r.u64("chan"));
        rec.seq = r.u64("seq");
        rec.targetCycle =
            r.u64("cycle", obs::TokenRecord::kNoCycle);
        rec.produceNs = r.num("produce_ns");
        rec.departNs = r.num("depart_ns");
        rec.readyNs = r.num("ready_ns");
        rec.flightNs = r.num("flight_ns");
        rec.penaltyNs = r.num("penalty_ns");
        rec.nakNs = r.num("nak_ns");
        rec.naks = uint32_t(r.u64("naks"));
        rec.fireNs = r.num("fire_ns");
        rec.deliverNs = rec.fireNs;
        rec.fired = true; // only completed records are streamed
        if (rec.channel >= 0 &&
            size_t(rec.channel) < s.input.channels.size()) {
            rec.srcPart = s.input.channels[rec.channel].srcPart;
            rec.dstPart = s.input.channels[rec.channel].dstPart;
        }
        s.input.records.push_back(std::move(rec));
    }
}

/** Pull part.<name>.wait_ns gauges out of a metrics line. Later
 *  lines overwrite earlier ones, so the last snapshot wins. */
void
parseMetrics(const obs::JsonValue &line, Stream &s)
{
    const obs::JsonValue *metrics = line.get("metrics");
    if (!metrics || !metrics->isObject())
        return;
    ++s.metricsLines;
    for (size_t p = 0; p < s.input.partNames.size(); ++p) {
        const std::string key =
            "part." + s.input.partNames[p] + ".wait_ns";
        if (const obs::JsonValue *m = metrics->get(key))
            s.input.measuredWaitNs[int(p)] = m->num("value");
    }
}

bool
readStream(const std::string &path, Stream &s)
{
    std::ifstream is(path);
    if (!is) {
        std::cerr << "fireaxe-trace: cannot open '" << path << "'\n";
        return false;
    }
    std::string line;
    uint64_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty())
            continue;
        obs::JsonValue v;
        std::string error;
        if (!obs::parseJson(line, v, error)) {
            // A producer killed mid-write leaves one truncated line;
            // skip it rather than losing the whole stream.
            std::cerr << "fireaxe-trace: " << path << ":" << lineno
                      << ": skipping malformed line (" << error
                      << ")\n";
            ++s.badLines;
            continue;
        }
        const std::string type = v.text("type");
        if (type == "header")
            parseHeader(v, s);
        else if (type == "tokens")
            parseTokens(v, s);
        else if (type == "metrics")
            parseMetrics(v, s);
        else if (type == "summary") {
            s.summary = std::move(v);
            s.haveSummary = true;
        }
    }
    if (!s.haveHeader) {
        std::cerr << "fireaxe-trace: " << path
                  << ": no fireaxe.stream.v1 header line\n";
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path, json_path, chrome_path;
    size_t top_n = 10;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "fireaxe-trace: " << flag
                          << " needs a value\n";
                exit(2);
            }
            return argv[++i];
        };
        if (arg == "--top") {
            top_n = size_t(
                std::strtoull(value("--top").c_str(), nullptr, 0));
        } else if (arg == "--json") {
            json_path = value("--json");
        } else if (arg == "--chrome") {
            chrome_path = value("--chrome");
        } else if (arg == "--help" || arg == "-h") {
            return usage(std::cout, 0);
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "fireaxe-trace: unknown option '" << arg
                      << "'\n";
            return usage(std::cerr, 2);
        } else if (path.empty()) {
            path = arg;
        } else {
            std::cerr << "fireaxe-trace: extra argument '" << arg
                      << "'\n";
            return usage(std::cerr, 2);
        }
    }
    if (path.empty())
        return usage(std::cerr, 2);

    Stream s;
    if (!readStream(path, s))
        return 3;

    obs::CritPathReport report = obs::analyzeCriticalPath(s.input);

    std::cout << "stream " << path << "\n"
              << "target " << s.target << "\n"
              << "backend " << s.backend << "\n"
              << "engine " << s.engine << "\n"
              << "plan_hash 0x" << std::hex << s.planHash << std::dec
              << "\n"
              << "sample_every " << s.input.sampleEvery << "\n"
              << "token_records " << s.input.records.size() << "\n";
    if (s.haveSummary) {
        std::cout << "target_cycle " << s.summary.u64("target_cycle")
                  << "\n"
                  << "host_time_ns " << s.summary.num("host_time_ns")
                  << "\n"
                  << "token_records_dropped "
                  << s.summary.u64("token_records_dropped") << "\n"
                  << "trace_events_dropped "
                  << s.summary.u64("trace_events_dropped") << "\n";
    }
    std::cout << "\n";
    report.writeText(std::cout, top_n);

    if (!json_path.empty()) {
        std::ofstream js(json_path);
        if (!js) {
            std::cerr << "fireaxe-trace: cannot write '" << json_path
                      << "'\n";
            return 3;
        }
        report.writeJson(js);
        js << "\n";
    }
    if (!chrome_path.empty()) {
        std::ofstream ct(chrome_path);
        if (!ct) {
            std::cerr << "fireaxe-trace: cannot write '"
                      << chrome_path << "'\n";
            return 3;
        }
        obs::writeAnnotatedChromeTrace(s.input, report, ct);
    }
    return 0;
}
