/**
 * @file
 * Compatibility shim: the shipped-target registry moved into the
 * service library (src/svc/targets.hh) so the daemon, the CLI tools,
 * and the tests all resolve `--target NAME` against one table. The
 * tools:: aliases below keep existing tool code (fireaxe-lint)
 * compiling unchanged.
 */

#ifndef FIREAXE_TOOLS_TARGETS_COMMON_HH
#define FIREAXE_TOOLS_TARGETS_COMMON_HH

#include "svc/targets.hh"

namespace fireaxe::tools {

using ToolTarget = svc::TargetInfo;

inline const std::vector<ToolTarget> &
toolTargets()
{
    return svc::targetRegistry();
}

inline const ToolTarget *
findToolTarget(const std::string &name)
{
    return svc::findTarget(name);
}

} // namespace fireaxe::tools

#endif // FIREAXE_TOOLS_TARGETS_COMMON_HH
