/**
 * @file
 * fireaxe-lint: run the static verifier (src/verify) from the command
 * line, without building any simulator state.
 *
 * Inputs:
 *  - `--fir FILE` parses a FIRRTL circuit and runs the IR checks
 *    (IRxxx) over it;
 *  - `--target NAME [--mode exact|fast]` builds one of the shipped
 *    src/target designs, auto-partitions it with its canonical
 *    FireRipper spec, and runs the full check suite (IR + LBDN +
 *    PLAN) over the resulting plan.
 *
 * `--analyze` additionally runs the static cut-cost analyzer over
 * each target's plan and emits its `fireaxe.analysis.v1` report
 * (predicted blocking channels + per-partition FMR lower bounds) —
 * JSON on stdout under `--json` (diagnostics then go to stderr so
 * stdout stays one machine-readable document per target), rendered
 * text otherwise.
 *
 * Output is compiler-style text by default, `--json` for tooling.
 * Exit status: 0 clean (or warnings without `--werror`), 1 findings,
 * 2 usage / input errors. `--werror` behaves identically in text and
 * JSON modes, and under `--json` input errors (unknown target,
 * unreadable or unparseable file) are emitted as TOOL001 diagnostic
 * rows instead of bare stderr text, so stdout is always parseable.
 * `--list-checks` enumerates every diagnostic code the verifier
 * implements.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analyze/cutcost.hh"
#include "firrtl/parser.hh"
#include "targets_common.hh"
#include "verify/verify.hh"

using namespace fireaxe;
using tools::ToolTarget;
using tools::toolTargets;

namespace {

int
usage(std::ostream &os, int status)
{
    os << "usage: fireaxe-lint [options]\n"
          "\n"
          "input (exactly one):\n"
          "  --fir FILE        lint a FIRRTL circuit (IR checks)\n"
          "  --target NAME     lint a shipped target design's\n"
          "                    auto-partition plan (all checks)\n"
          "  --all-targets     lint every shipped target design\n"
          "  --list-checks     print the diagnostic-code registry\n"
          "\n"
          "options:\n"
          "  --mode exact|fast partitioning mode (default exact)\n"
          "  --analyze         also run the static cut-cost analyzer\n"
          "                    (fireaxe.analysis.v1; targets only)\n"
          "  --json            render the report as JSON\n"
          "  --werror          exit 1 on warnings too\n"
          "  --no-dead-logic   skip the IR005 dead-logic warning\n"
          "\n"
          "targets:\n";
    for (const auto &t : toolTargets())
        os << "  " << t.name << std::string(10 - strlen(t.name), ' ')
           << t.summary << "\n";
    return status;
}

int
reportStatus(const verify::Report &report, bool werror)
{
    if (report.hasErrors())
        return 1;
    if (werror && report.count(verify::Severity::Warning) > 0)
        return 1;
    return 0;
}

/**
 * Report an input error. In JSON mode it becomes a TOOL001
 * diagnostic row on stdout (machine-readable); in text mode the
 * traditional bare stderr line. Exit status 2 either way.
 */
int
inputError(bool json, const std::string &message)
{
    if (json) {
        verify::Report report;
        report.add("TOOL001", verify::Severity::Error, message);
        std::cout << report.renderJson();
    } else {
        std::cerr << "fireaxe-lint: " << message << "\n";
    }
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string fir, target_name, mode = "exact";
    bool all_targets = false, json = false, werror = false;
    bool list_checks = false, analyze_mode = false;
    verify::Options options;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "fireaxe-lint: " << flag
                          << " needs a value\n";
                exit(2);
            }
            return argv[++i];
        };
        if (arg == "--fir") {
            fir = value("--fir");
        } else if (arg == "--target") {
            target_name = value("--target");
        } else if (arg == "--all-targets") {
            all_targets = true;
        } else if (arg == "--mode") {
            mode = value("--mode");
        } else if (arg == "--analyze") {
            analyze_mode = true;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--werror") {
            werror = true;
        } else if (arg == "--no-dead-logic") {
            options.checkDeadLogic = false;
        } else if (arg == "--list-checks") {
            list_checks = true;
        } else if (arg == "--help" || arg == "-h") {
            return usage(std::cout, 0);
        } else {
            std::cerr << "fireaxe-lint: unknown option '" << arg
                      << "'\n";
            return usage(std::cerr, 2);
        }
    }

    if (list_checks) {
        for (const auto &info : verify::checkRegistry())
            std::cout << info.code << "  "
                      << verify::severityName(info.defaultSeverity)
                      << "  " << info.summary << "\n";
        return 0;
    }

    int inputs = int(!fir.empty()) + int(!target_name.empty()) +
                 int(all_targets);
    if (inputs != 1)
        return usage(std::cerr, 2);
    if (mode != "exact" && mode != "fast")
        return inputError(json, "--mode must be exact or fast");

    if (!fir.empty()) {
        if (analyze_mode)
            return inputError(json,
                              "--analyze needs a partition plan; use "
                              "--target or --all-targets");
        std::ifstream in(fir);
        if (!in)
            return inputError(json, "cannot open '" + fir + "'");
        firrtl::Circuit circuit;
        try {
            circuit = firrtl::parseCircuit(in);
        } catch (const std::exception &e) {
            return inputError(json, "parse error: " +
                                        std::string(e.what()));
        }
        auto report = verify::verifyCircuit(circuit, options);
        std::cout << (json ? report.renderJson()
                           : report.renderText());
        return reportStatus(report, werror);
    }

    std::vector<const ToolTarget *> selected;
    for (const auto &t : toolTargets())
        if (all_targets || target_name == t.name)
            selected.push_back(&t);
    if (selected.empty())
        return inputError(json,
                          "unknown target '" + target_name + "'");

    int status = 0;
    for (const ToolTarget *t : selected) {
        auto circuit = t->build();
        auto spec = t->spec(circuit);
        spec.mode = mode == "fast" ? ripper::PartitionMode::Fast
                                   : ripper::PartitionMode::Exact;
        auto plan = ripper::partition(circuit, spec);
        auto report = verify::verifyPlan(plan, options);
        if (all_targets && !json)
            std::cout << "--- " << t->name << " (" << mode << ") ---\n";
        if (analyze_mode) {
            auto cost = analyze::analyzeCutCost(plan,
                                                options.cutCost);
            if (json) {
                // stdout carries exactly one fireaxe.analysis.v1
                // document per target; diagnostics go to stderr.
                cost.writeJson(std::cout, t->name);
                std::cerr << report.renderText();
            } else {
                std::cout << report.renderText()
                          << cost.renderText();
            }
        } else {
            std::cout << (json ? report.renderJson()
                               : report.renderText());
        }
        status = std::max(status, reportStatus(report, werror));
    }
    return status;
}
