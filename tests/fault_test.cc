/**
 * @file
 * Tests of the fault-injecting, self-healing inter-FPGA transport:
 * channel-level reliability machinery (sequence numbers, CRC,
 * NAK/timeout retransmission, backpressure), bit-exactness of
 * partitioned runs under injected fault schedules, the executor's
 * deadlock watchdog (transient stall vs genuine LI-BDN deadlock),
 * and mid-run link failover.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "firrtl/builder.hh"
#include "libdn/reliable.hh"
#include "platform/executor.hh"
#include "platform/fpga.hh"
#include "ripper/partition.hh"
#include "target/bus_soc.hh"
#include "transport/fault.hh"
#include "transport/link.hh"

using namespace fireaxe;
using namespace fireaxe::platform;
using namespace fireaxe::ripper;
using libdn::ReliableTokenChannel;
using libdn::Token;
using libdn::TokenChannel;

namespace {

std::vector<FpgaSpec>
u250s(size_t n, double mhz)
{
    return std::vector<FpgaSpec>(n, alveoU250(mhz));
}

libdn::Monitor
recorder(std::vector<uint64_t> &out, const std::string &signal)
{
    return [&out, signal](rtlsim::Simulator &sim, unsigned,
                          uint64_t) {
        out.push_back(sim.peek(signal));
    };
}

/** Monolithic golden "status" trace of a bus SoC. */
std::vector<uint64_t>
goldenStatus(const firrtl::Circuit &soc, uint64_t cycles)
{
    std::vector<uint64_t> mono;
    runMonolithic(soc, nullptr, recorder(mono, "status"), cycles);
    return mono;
}

/** Partition two tiles out of a three-tile bus SoC. */
PartitionPlan
tilesPlan(const firrtl::Circuit &soc, PartitionMode mode)
{
    PartitionSpec spec;
    spec.mode = mode;
    spec.groups.push_back({"tiles", {"tile0", "tile1"}, 1});
    return partition(soc, spec);
}

/** Run the partitioned SoC under a fault schedule and record the
 *  rest-partition status trace. */
RunResult
runFaulted(const PartitionPlan &plan,
           const transport::FaultConfig &faults, uint64_t cycles,
           std::vector<uint64_t> &trace)
{
    MultiFpgaSim sim(plan, u250s(plan.partitions.size(), 50.0),
                     transport::qsfpAurora());
    sim.setFaultModel(faults);
    sim.setMonitor(0, recorder(trace, "status"));
    return sim.run(cycles);
}

void
expectBitExact(const std::vector<uint64_t> &mono,
               const std::vector<uint64_t> &part)
{
    ASSERT_GE(part.size(), mono.size());
    for (size_t i = 0; i < mono.size(); ++i)
        ASSERT_EQ(part[i], mono[i]) << "divergence at cycle " << i;
}

/**
 * A hand-built two-partition plan with a genuine LI-BDN deadlock:
 * each partition's only output combinationally depends on its only
 * input, and the two are cross-coupled, so neither output-channel
 * FSM can ever fire (a combinational loop through the boundary).
 */
PartitionPlan
deadlockPlan()
{
    auto combBlock = [](const std::string &top) {
        firrtl::CircuitBuilder cb(top);
        auto mb = cb.module(top);
        auto a = mb.input("a", 8);
        mb.output("b", 8);
        mb.connect("b", firrtl::bits(
                            firrtl::eAdd(a, firrtl::lit(1, 8)), 7,
                            0));
        return cb.finish();
    };

    PartitionPlan plan;
    plan.mode = PartitionMode::Exact;
    plan.partitions = {combBlock("P0"), combBlock("P1")};
    plan.partitionNames = {"p0", "p1"};
    plan.fame5Threads = {1, 1};
    plan.nets.push_back({8, 0, 1, "b", "a", "n0"});
    plan.nets.push_back({8, 1, 0, "b", "a", "n1"});
    plan.channels.push_back({"c01", 0, 1, true, {0}, 8, {}, 16});
    plan.channels.push_back({"c10", 1, 0, true, {1}, 8, {}, 16});
    plan.feedback.maxChannelWidth = 8;
    plan.feedback.linkCrossingsPerCycle = 2;
    return plan;
}

} // namespace

// ---------------------------------------------------------------
// Channel-level machinery
// ---------------------------------------------------------------

TEST(Fault, TokenCrcDetectsSingleBitFlips)
{
    Token t{0x12345678ULL, 0xDEADBEEFCAFEF00DULL};
    uint32_t crc = libdn::tokenCrc(t);
    for (unsigned bit : {0u, 17u, 63u}) {
        Token flipped = t;
        flipped[1] ^= uint64_t(1) << bit;
        EXPECT_NE(libdn::tokenCrc(flipped), crc) << "bit " << bit;
    }
    EXPECT_EQ(libdn::tokenCrc(t), crc);
}

TEST(Fault, TryEnqIsRecoverableBackpressure)
{
    TokenChannel ch("ch", 64, 2);
    Token t{1};
    EXPECT_TRUE(ch.tryEnq(t, 0.0));
    t = {2};
    EXPECT_TRUE(ch.tryEnq(t, 0.0));
    t = {3};
    // Full channel: the enqueue fails recoverably, the token stays
    // with the producer.
    EXPECT_FALSE(ch.tryEnq(t, 0.0));
    EXPECT_EQ(t, Token{3});
    EXPECT_FALSE(ch.tryEnqTimed(t, 0.0));
    ch.deq();
    EXPECT_TRUE(ch.tryEnq(t, 0.0));
    EXPECT_EQ(ch.tokensEnqueued(), 3u);
    EXPECT_EQ(ch.tokensRetired(), 1u);
}

TEST(Fault, SetTimingNullSerializerDetaches)
{
    auto shared = std::make_shared<libdn::LinkSerializer>();
    TokenChannel a("a", 64, 4);
    TokenChannel b("b", 64, 4);
    a.setTiming(10.0, 100.0, shared);
    b.setTiming(10.0, 100.0, shared);

    a.enqTimed({1}, 0.0); // occupies the shared link until t=10
    EXPECT_DOUBLE_EQ(shared->lastDepart, 10.0);

    // Retiming with a null serializer must detach b onto a fresh
    // private serializer — not silently keep the stale shared one.
    b.setTiming(10.0, 100.0, nullptr);
    b.enqTimed({2}, 0.0);
    EXPECT_DOUBLE_EQ(b.headReadyTime(), 110.0); // 120 if aliased
    EXPECT_DOUBLE_EQ(shared->lastDepart, 10.0);
}

TEST(Fault, ReliableChannelWithoutFaultsMatchesBaseTiming)
{
    TokenChannel base("ch", 128, 8);
    ReliableTokenChannel rel("ch", 128, transport::FaultModel());
    base.setTiming(25.0, 540.0);
    rel.setTiming(25.0, 540.0);

    for (int i = 0; i < 5; ++i) {
        double now = 7.0 * i;
        base.enqTimed({uint64_t(i)}, now);
        rel.enqTimed({uint64_t(i)}, now);
    }
    for (int i = 0; i < 5; ++i) {
        ASSERT_DOUBLE_EQ(rel.headReadyTime(), base.headReadyTime());
        ASSERT_EQ(rel.head(), base.head());
        base.deq();
        rel.deq();
    }
    EXPECT_EQ(rel.stats().total(), 0u);
    EXPECT_EQ(rel.retransmitBufferSize(), 0u);
}

TEST(Fault, RetransmitBufferBoundsProducer)
{
    ReliableTokenChannel::Params params;
    params.retransmitWindow = 3;
    ReliableTokenChannel ch("ch", 64, transport::FaultModel(),
                            params, 16);
    ch.setTiming(1.0, 5.0);
    Token t;
    for (int i = 0; i < 3; ++i) {
        t = {uint64_t(i)};
        EXPECT_TRUE(ch.tryEnqTimed(t, 0.0));
    }
    // Window full: backpressure until the consumer acks (deqs).
    t = {99};
    EXPECT_FALSE(ch.tryEnqTimed(t, 0.0));
    EXPECT_TRUE(ch.headReady(100.0));
    ch.deq();
    EXPECT_TRUE(ch.tryEnqTimed(t, 100.0));
}

TEST(Fault, NakRecoveryCompletesAcrossSnapshotRestore)
{
    // Directed recovery-seam test: drive a corrupting channel until
    // a CRC error has raised a NAK and the retransmission is in
    // flight (pendingSeq set, resend not yet visible), snapshot the
    // channel at exactly that instant, restore it into a twin, and
    // prove the twin completes the recovery identically — same
    // delivery schedule, same token, same counters, NAK cleared.
    transport::FaultConfig fc;
    fc.seed = 23;
    fc.corruptRate = 0.5;
    ReliableTokenChannel ch("nak", 64, transport::FaultModel(fc),
                            {}, 16);
    ch.setTiming(10.0, 100.0);

    double now = 0.0;
    uint64_t produced = 0;
    while (ch.nakRecovery().pendingSeq == 0 && produced < 100) {
        Token t{produced};
        ASSERT_TRUE(ch.tryEnqTimed(t, now));
        ++produced;
        now += 150.0; // past serialization + flight time
        while (ch.headReady(now))
            ch.deq();
    }
    const auto &nak = ch.nakRecovery();
    ASSERT_NE(nak.pendingSeq, 0u) << "fault schedule raised no NAK";
    ASSERT_GT(nak.resendReadyNs, now);
    ASSERT_GT(ch.retransmitBufferSize(), 0u);

    // Snapshot mid-recovery and restore into a twin channel.
    std::ostringstream os;
    ch.saveCkpt(os);
    ReliableTokenChannel twin("nak", 64, transport::FaultModel(fc),
                              {}, 16);
    twin.setTiming(10.0, 100.0);
    std::istringstream is(os.str());
    std::string error;
    ASSERT_TRUE(twin.tryLoadCkpt(is, error)) << error;
    EXPECT_EQ(twin.nakRecovery().pendingSeq, nak.pendingSeq);
    EXPECT_DOUBLE_EQ(twin.nakRecovery().resendReadyNs,
                     nak.resendReadyNs);
    EXPECT_EQ(twin.nakRecovery().backoffTries, nak.backoffTries);
    EXPECT_EQ(twin.lastDeliveredSeq(), ch.lastDeliveredSeq());
    EXPECT_EQ(twin.retransmitBufferSize(),
              ch.retransmitBufferSize());

    // Both sides advance through the same polling schedule: the
    // restored fault-RNG substreams make any further corruption of
    // the resend identical, so the two channels must stay in
    // lockstep until the recovery completes.
    uint64_t pending = nak.pendingSeq;
    bool delivered = false;
    for (int step = 0; step < 64 && !delivered; ++step) {
        now += 500.0;
        bool r1 = ch.headReady(now);
        bool r2 = twin.headReady(now);
        ASSERT_EQ(r1, r2) << "recovery diverged at t=" << now;
        delivered = r1;
    }
    ASSERT_TRUE(delivered) << "retransmission never completed";
    ASSERT_EQ(ch.head(), twin.head());
    EXPECT_EQ(ch.head(), Token{pending - 1}); // payload i, seq i+1
    ch.deq();
    twin.deq();
    EXPECT_EQ(ch.nakRecovery().pendingSeq, 0u);
    EXPECT_EQ(twin.nakRecovery().pendingSeq, 0u);
    EXPECT_EQ(ch.lastDeliveredSeq(), twin.lastDeliveredSeq());
    EXPECT_EQ(ch.stats().all(), twin.stats().all());
    EXPECT_GT(ch.stats().get("crc_errors"), 0u);
    EXPECT_GT(ch.stats().get("retransmits_nak"), 0u);
}

// ---------------------------------------------------------------
// Fault schedules against the monolithic golden run
// ---------------------------------------------------------------

TEST(Fault, DropScheduleIsBitExactWithRetransmits)
{
    target::BusSocConfig cfg;
    cfg.numTiles = 3;
    cfg.memWords = 256;
    auto soc = target::buildBusSoc(cfg);
    const uint64_t cycles = 1200;
    auto mono = goldenStatus(soc, cycles);
    auto plan = tilesPlan(soc, PartitionMode::Exact);

    transport::FaultConfig faults;
    faults.seed = 7;
    faults.dropRate = 2e-3;
    std::vector<uint64_t> part;
    auto result = runFaulted(plan, faults, cycles, part);

    EXPECT_FALSE(result.deadlocked);
    EXPECT_GT(result.retransmits, 0u);
    EXPECT_GT(result.faultStats.get("tokens_dropped"), 0u);
    EXPECT_GT(result.faultStats.get("retransmits_timeout"), 0u);
    expectBitExact(mono, part);
}

TEST(Fault, CorruptionIsCaughtByCrcAndNaked)
{
    target::BusSocConfig cfg;
    cfg.numTiles = 3;
    cfg.memWords = 256;
    auto soc = target::buildBusSoc(cfg);
    const uint64_t cycles = 1200;
    auto mono = goldenStatus(soc, cycles);
    auto plan = tilesPlan(soc, PartitionMode::Exact);

    transport::FaultConfig faults;
    faults.seed = 11;
    faults.corruptRate = 2e-3;
    std::vector<uint64_t> part;
    auto result = runFaulted(plan, faults, cycles, part);

    EXPECT_FALSE(result.deadlocked);
    EXPECT_GT(result.faultStats.get("crc_errors"), 0u);
    EXPECT_GT(result.faultStats.get("naks"), 0u);
    EXPECT_GT(result.faultStats.get("retransmits_nak"), 0u);
    EXPECT_GT(result.retransmits, 0u);
    expectBitExact(mono, part);
}

TEST(Fault, DuplicatesAreDiscardedBySequenceNumber)
{
    target::BusSocConfig cfg;
    cfg.numTiles = 3;
    cfg.memWords = 256;
    auto soc = target::buildBusSoc(cfg);
    const uint64_t cycles = 1000;
    auto mono = goldenStatus(soc, cycles);
    auto plan = tilesPlan(soc, PartitionMode::Exact);

    transport::FaultConfig faults;
    faults.seed = 13;
    faults.duplicateRate = 5e-3;
    std::vector<uint64_t> part;
    auto result = runFaulted(plan, faults, cycles, part);

    EXPECT_FALSE(result.deadlocked);
    EXPECT_GT(result.faultStats.get("tokens_duplicated"), 0u);
    EXPECT_GT(result.faultStats.get("duplicates_discarded"), 0u);
    expectBitExact(mono, part);
}

TEST(Fault, MixedScheduleAtPaperRateIsBitExact)
{
    // The headline robustness claim: at a 1e-3/token fault rate
    // mixing drops, corruption, and duplication, the partitioned
    // run still bit-matches the monolithic reference cycle for
    // cycle — only the simulation rate degrades.
    target::BusSocConfig cfg;
    cfg.numTiles = 3;
    cfg.memWords = 256;
    auto soc = target::buildBusSoc(cfg);
    const uint64_t cycles = 2500;
    auto mono = goldenStatus(soc, cycles);
    auto plan = tilesPlan(soc, PartitionMode::Exact);

    std::vector<uint64_t> clean;
    auto clean_result =
        runFaulted(plan, transport::FaultConfig{}, cycles, clean);
    expectBitExact(mono, clean);

    auto faults = transport::FaultConfig::uniform(1e-3, 42);
    auto plan2 = tilesPlan(soc, PartitionMode::Exact);
    std::vector<uint64_t> part;
    auto result = runFaulted(plan2, faults, cycles, part);

    EXPECT_FALSE(result.deadlocked);
    EXPECT_GT(result.retransmits, 0u);
    expectBitExact(mono, part);
    // Recovery costs host time: the faulted run cannot be faster.
    EXPECT_LE(result.simRateMhz(), clean_result.simRateMhz());
}

TEST(Fault, FastModeRecoversUnderFaultsToo)
{
    // Fast mode is cycle-approximate, so compare the faulted
    // partitioned run against the *clean* partitioned run: the
    // token stream (and hence target behaviour) must be unchanged.
    target::BusSocConfig cfg;
    cfg.numTiles = 3;
    cfg.memWords = 256;
    auto soc = target::buildBusSoc(cfg);
    const uint64_t cycles = 1000;

    auto plan1 = tilesPlan(soc, PartitionMode::Fast);
    std::vector<uint64_t> clean;
    runFaulted(plan1, transport::FaultConfig{}, cycles, clean);

    // Fast mode has only one channel per direction, so use a higher
    // rate to draw a robust number of faults from the schedule.
    auto plan2 = tilesPlan(soc, PartitionMode::Fast);
    auto faults = transport::FaultConfig::uniform(1e-2, 23);
    std::vector<uint64_t> part;
    auto result = runFaulted(plan2, faults, cycles, part);

    EXPECT_FALSE(result.deadlocked);
    EXPECT_GT(result.retransmits, 0u);
    expectBitExact(clean, part);
}

// ---------------------------------------------------------------
// Watchdog: transient stalls vs genuine deadlock
// ---------------------------------------------------------------

TEST(Fault, TransientStallsAreNotDeadlock)
{
    target::BusSocConfig cfg;
    cfg.numTiles = 3;
    cfg.memWords = 256;
    auto soc = target::buildBusSoc(cfg);
    const uint64_t cycles = 800;
    auto mono = goldenStatus(soc, cycles);
    auto plan = tilesPlan(soc, PartitionMode::Exact);

    transport::FaultConfig faults;
    faults.seed = 17;
    faults.stallRate = 0.02;
    faults.stallMeanNs = 200000.0; // well past the watchdog window
    std::vector<uint64_t> part;
    auto result = runFaulted(plan, faults, cycles, part);

    EXPECT_FALSE(result.deadlocked);
    EXPECT_GT(result.faultStats.get("link_stalls"), 0u);
    // The watchdog fired and correctly excused in-flight tokens.
    EXPECT_GT(result.transientStallEvents, 0u);
    expectBitExact(mono, part);
}

TEST(Fault, RetryExhaustionFailsOverToHostPcie)
{
    target::BusSocConfig cfg;
    cfg.numTiles = 3;
    cfg.memWords = 256;
    auto soc = target::buildBusSoc(cfg);
    const uint64_t cycles = 300;
    auto mono = goldenStatus(soc, cycles);
    auto plan = tilesPlan(soc, PartitionMode::Exact);

    transport::FaultConfig faults;
    faults.seed = 19;
    faults.dropRate = 0.7; // hopeless link
    faults.maxRetries = 2;
    std::vector<uint64_t> part;
    auto result = runFaulted(plan, faults, cycles, part);

    // The run survives by failing the bad links over to
    // host-managed PCIe mid-run; results stay bit-exact.
    EXPECT_FALSE(result.deadlocked);
    EXPECT_GT(result.linkFailovers, 0u);
    EXPECT_TRUE(result.degraded);
    EXPECT_GT(result.faultStats.get("retry_budget_exhausted"), 0u);
    expectBitExact(mono, part);
}

TEST(Fault, PreflightRefusesDeadlockPlan)
{
    // The default Enforce policy statically rejects the plan that
    // GenuineDeadlockIsDiagnosed only catches at runtime, citing the
    // wait-for cycle.
    auto plan = deadlockPlan();
    MultiFpgaSim sim(plan, u250s(2, 50.0), transport::qsfpAurora());
    try {
        sim.run(10);
        FAIL() << "expected the pre-flight gate to reject the plan";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("LBDN003"),
                  std::string::npos);
    }
}

TEST(Fault, GenuineDeadlockIsDiagnosed)
{
    auto plan = deadlockPlan();
    MultiFpgaSim sim(plan, u250s(2, 50.0), transport::qsfpAurora());
    sim.setVerifyPolicy(platform::VerifyPolicy::Off);
    auto result = sim.run(10);

    ASSERT_TRUE(result.deadlocked);
    ASSERT_TRUE(result.diagnosis.valid);
    EXPECT_EQ(result.targetCycles, 0u);

    // The diagnosis names the starved channels with their queue
    // occupancies and token counts.
    ASSERT_FALSE(result.diagnosis.stuckChannels.empty());
    ASSERT_EQ(result.diagnosis.channels.size(), 2u);
    for (const auto &cd : result.diagnosis.channels) {
        EXPECT_TRUE(cd.name == "c01" || cd.name == "c10");
        EXPECT_EQ(cd.occupancy, 0u);
        EXPECT_EQ(cd.tokensEnqueued, 0u);
        EXPECT_EQ(cd.tokensRetired, 0u);
        EXPECT_TRUE(cd.starved);
    }

    // Both partitions report the FSM state: stuck at cycle 0,
    // waiting on their input channel, output never fired.
    ASSERT_EQ(result.diagnosis.partitions.size(), 2u);
    for (const auto &pd : result.diagnosis.partitions) {
        EXPECT_EQ(pd.targetCycle, 0u);
        EXPECT_EQ(pd.advances, 0u);
        ASSERT_EQ(pd.waitingInputs.size(), 1u);
        ASSERT_EQ(pd.unfiredOutputs.size(), 1u);
    }
    EXPECT_NE(result.diagnosis.summary.find("stuck channel"),
              std::string::npos);

    // Even with verification off, the diagnosis cross-references the
    // static check that would have refused the plan up front.
    ASSERT_FALSE(result.diagnosis.staticFindings.empty());
    bool cites_libdn = false;
    for (const auto &finding : result.diagnosis.staticFindings)
        cites_libdn = cites_libdn ||
                      finding.find("static check LBDN003 would have "
                                   "caught this") != std::string::npos;
    EXPECT_TRUE(cites_libdn);
    EXPECT_NE(result.diagnosis.summary.find("LBDN003"),
              std::string::npos);
}

TEST(Fault, DiagnosisPrettyPrinters)
{
    auto plan = deadlockPlan();
    MultiFpgaSim sim(plan, u250s(2, 50.0), transport::qsfpAurora());
    sim.setVerifyPolicy(platform::VerifyPolicy::Off);
    auto result = sim.run(10);
    ASSERT_TRUE(result.deadlocked);
    const DeadlockDiagnosis &diag = result.diagnosis;

    // Streaming the whole diagnosis reproduces the stored summary.
    std::ostringstream os;
    os << diag;
    EXPECT_EQ(os.str(), diag.summary);
    EXPECT_NE(os.str().find("deadlock diagnosis at host time"),
              std::string::npos);
    EXPECT_NE(os.str().find("partition 'p0'"), std::string::npos);
    EXPECT_NE(os.str().find("stuck channel"), std::string::npos);

    // Per-partition printer: FSM counters and waited-on inputs.
    std::ostringstream pos;
    pos << diag.partitions.at(0);
    EXPECT_NE(pos.str().find("partition 'p0'"), std::string::npos);
    EXPECT_NE(pos.str().find("waiting on:"), std::string::npos);
    EXPECT_NE(pos.str().find("unfired:"), std::string::npos);

    // Per-channel printer: route, occupancy and starvation flag.
    std::ostringstream cos;
    cos << diag.channels.at(0);
    EXPECT_NE(cos.str().find("channel 'c01'"), std::string::npos);
    EXPECT_NE(cos.str().find("occupancy 0/"), std::string::npos);
    EXPECT_NE(cos.str().find("starved"), std::string::npos);
}

TEST(Fault, DeterministicScheduleIsReproducible)
{
    target::BusSocConfig cfg;
    cfg.numTiles = 3;
    cfg.memWords = 256;
    auto soc = target::buildBusSoc(cfg);
    const uint64_t cycles = 600;

    auto faults = transport::FaultConfig::uniform(2e-3, 1234);
    auto plan1 = tilesPlan(soc, PartitionMode::Exact);
    std::vector<uint64_t> a;
    auto ra = runFaulted(plan1, faults, cycles, a);
    auto plan2 = tilesPlan(soc, PartitionMode::Exact);
    std::vector<uint64_t> b;
    auto rb = runFaulted(plan2, faults, cycles, b);

    EXPECT_EQ(a, b);
    EXPECT_EQ(ra.retransmits, rb.retransmits);
    EXPECT_EQ(ra.faultStats.all(), rb.faultStats.all());
    EXPECT_DOUBLE_EQ(ra.hostTimeNs, rb.hostTimeNs);
}
