/**
 * @file
 * Tests of the parallel partition execution engine (src/par) and the
 * thread-safety retrofits that support it: the SPSC ring, concurrent
 * metrics/tracing, per-side fault RNG streams, and — the headline —
 * bit-exactness and host-cycle identity of the parallel backend
 * against the sequential executor and the monolithic golden run,
 * with and without fault injection, across worker counts, and under
 * randomized worker scheduling jitter.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "firrtl/builder.hh"
#include "obs/jsonparse.hh"
#include "obs/metrics.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"
#include "par/engine.hh"
#include "par/spsc.hh"
#include "platform/executor.hh"
#include "platform/fpga.hh"
#include "ripper/partition.hh"
#include "recovery/snapshot.hh"
#include "target/bus_soc.hh"
#include "transport/fault.hh"
#include "transport/link.hh"

using namespace fireaxe;
using namespace fireaxe::platform;
using namespace fireaxe::ripper;

namespace {

std::vector<FpgaSpec>
u250s(size_t n, double mhz)
{
    return std::vector<FpgaSpec>(n, alveoU250(mhz));
}

libdn::Monitor
recorder(std::vector<uint64_t> &out, const std::string &signal)
{
    return [&out, signal](rtlsim::Simulator &sim, unsigned,
                          uint64_t) {
        out.push_back(sim.peek(signal));
    };
}

/** Three-partition plan of a four-tile bus SoC. */
PartitionPlan
threeWayPlan(const firrtl::Circuit &soc)
{
    PartitionSpec spec;
    spec.mode = PartitionMode::Exact;
    spec.groups.push_back({"t01", {"tile0", "tile1"}, 1});
    spec.groups.push_back({"t23", {"tile2", "tile3"}, 1});
    return partition(soc, spec);
}

firrtl::Circuit
fourTileSoc()
{
    target::BusSocConfig cfg;
    cfg.numTiles = 4;
    cfg.memWords = 256;
    return target::buildBusSoc(cfg);
}

struct ParityRun
{
    std::vector<uint64_t> trace;
    RunResult result;
};

/** Run the three-way plan on the given backend, recording the rest
 *  partition's "status" signal every target cycle. */
ParityRun
runBackend(const firrtl::Circuit &soc, const ExecConfig &exec,
           uint64_t cycles,
           const transport::FaultConfig *faults = nullptr)
{
    auto plan = threeWayPlan(soc);
    MultiFpgaSim sim(plan, u250s(plan.partitions.size(), 50.0),
                     transport::qsfpAurora());
    if (faults)
        sim.setFaultModel(*faults);
    sim.setExecConfig(exec);
    ParityRun run;
    sim.setMonitor(0, recorder(run.trace, "status"));
    run.result = sim.run(cycles);
    return run;
}

/** The parallel backend may tick a handful of cycles past the
 *  sequential break point (documented overshoot), so compare traces
 *  as a prefix of the longer one. */
void
expectPrefixEqual(const std::vector<uint64_t> &ref,
                  const std::vector<uint64_t> &got)
{
    ASSERT_GE(got.size(), ref.size());
    for (size_t i = 0; i < ref.size(); ++i)
        ASSERT_EQ(got[i], ref[i]) << "divergence at cycle " << i;
}

/** Cross-coupled combinational partitions: a genuine LI-BDN
 *  deadlock (mirrors fault_test.cc). */
PartitionPlan
deadlockPlan()
{
    auto combBlock = [](const std::string &top) {
        firrtl::CircuitBuilder cb(top);
        auto mb = cb.module(top);
        auto a = mb.input("a", 8);
        mb.output("b", 8);
        mb.connect("b", firrtl::bits(
                            firrtl::eAdd(a, firrtl::lit(1, 8)), 7,
                            0));
        return cb.finish();
    };

    PartitionPlan plan;
    plan.mode = PartitionMode::Exact;
    plan.partitions = {combBlock("P0"), combBlock("P1")};
    plan.partitionNames = {"p0", "p1"};
    plan.fame5Threads = {1, 1};
    plan.nets.push_back({8, 0, 1, "b", "a", "n0"});
    plan.nets.push_back({8, 1, 0, "b", "a", "n1"});
    plan.channels.push_back({"c01", 0, 1, true, {0}, 8, {}, 16});
    plan.channels.push_back({"c10", 1, 0, true, {1}, 8, {}, 16});
    plan.feedback.maxChannelWidth = 8;
    plan.feedback.linkCrossingsPerCycle = 2;
    return plan;
}

/** Bring a parallel run to a deterministic trajectory point with a
 *  short sequential tail (the documented overshoot makes raw "state
 *  after run(N)" thread-timing-dependent; see recovery_test.cc). */
void
settle(MultiFpgaSim &sim, uint64_t cycles)
{
    ExecConfig exec = sim.execConfig();
    exec.backend = ExecBackend::Sequential;
    sim.setExecConfig(exec);
    auto r = sim.run(cycles);
    ASSERT_FALSE(r.deadlocked);
}

/** FNV-1a over every partition's reached cycle and full signal
 *  table — the bit-exact-final-state witness (same convention as
 *  recovery_test.cc and bench_micro). */
uint64_t
finalStateSignature(MultiFpgaSim &sim, size_t nparts)
{
    uint64_t h = 1469598103934665603ull;
    for (size_t p = 0; p < nparts; ++p) {
        auto &m = sim.model(int(p));
        h = recovery::fnv1aMix(h, m.minTargetCycle());
        for (size_t i = 0; i < m.sim().numSignals(); ++i)
            h = recovery::fnv1aMix(h, m.sim().peekIdx(int(i)));
    }
    return h;
}

} // namespace

// ---------------------------------------------------------------
// SPSC ring
// ---------------------------------------------------------------

TEST(Spsc, SingleThreadFifoOrder)
{
    par::SpscRing<int> ring(4); // rounds up to a power of two
    EXPECT_TRUE(ring.empty());
    for (int i = 0; i < 4; ++i)
        ring.pushBack(i);
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.front(), 0);
    EXPECT_EQ(ring.at(3), 3);
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(ring.front(), i);
        ring.popFront();
    }
    EXPECT_TRUE(ring.empty());
}

TEST(Spsc, PushFrontRestoresHead)
{
    par::SpscRing<int> ring(8);
    ring.pushBack(1);
    ring.pushBack(2);
    int head = ring.front();
    ring.popFront();
    ring.pushFront(head);
    EXPECT_EQ(ring.front(), 1);
    EXPECT_EQ(ring.size(), 2u);
}

TEST(Spsc, TwoThreadStreamIsLossless)
{
    const uint64_t N = 200000;
    par::SpscRing<uint64_t> ring(1024);
    std::atomic<bool> fail{false};

    std::thread consumer([&] {
        uint64_t expect = 1;
        while (expect <= N) {
            if (ring.empty()) {
                std::this_thread::yield();
                continue;
            }
            if (ring.front() != expect)
                fail.store(true);
            ring.popFront();
            ++expect;
        }
    });
    for (uint64_t i = 1; i <= N; ++i) {
        while (ring.size() >= 1024)
            std::this_thread::yield();
        ring.pushBack(i);
    }
    consumer.join();
    EXPECT_FALSE(fail.load());
    EXPECT_TRUE(ring.empty());
}

// ---------------------------------------------------------------
// Thread-safe observability
// ---------------------------------------------------------------

TEST(ParObs, MetricsSurviveConcurrentHammering)
{
    obs::MetricsRegistry reg;
    obs::Tracer tracer(4096);
    const int kThreads = 4, kIters = 10000;

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kIters; ++i) {
                reg.counter("shared.count").add();
                reg.gauge("shared.gauge").set(double(i));
                reg.histogram("shared.hist").observe(double(i));
                reg.counter("t" + std::to_string(t) + ".count")
                    .add();
                if (i % 64 == 0)
                    tracer.instant("ev", "test", double(i), t);
            }
        });
    }
    for (auto &th : threads)
        th.join();

    EXPECT_EQ(reg.counter("shared.count").value(),
              uint64_t(kThreads) * kIters);
    EXPECT_EQ(reg.histogram("shared.hist").count(),
              uint64_t(kThreads) * kIters);
    for (int t = 0; t < kThreads; ++t)
        EXPECT_EQ(
            reg.counter("t" + std::to_string(t) + ".count").value(),
            uint64_t(kIters));
    EXPECT_EQ(tracer.totalEmitted(),
              uint64_t(kThreads) * (kIters / 64 + (kIters % 64 ? 1 : 0)));
}

// ---------------------------------------------------------------
// Per-side fault RNG streams
// ---------------------------------------------------------------

TEST(ParFault, ChannelStreamsAreDeterministicAndIndependent)
{
    transport::FaultConfig cfg;
    cfg.seed = 5;
    cfg.dropRate = 0.1;
    transport::FaultModel fm(cfg);

    auto a = fm.channelRng("ch0", "tx");
    auto b = fm.channelRng("ch0", "tx");
    for (int i = 0; i < 16; ++i)
        ASSERT_EQ(a.next(), b.next()); // same stream, same draws

    auto tx = fm.channelRng("ch0", "tx");
    auto rx = fm.channelRng("ch0", "rx");
    EXPECT_NE(tx.next(), rx.next()); // sides draw independently

    // Hash chaining: the (name, stream) split point matters.
    auto ab_c = fm.channelRng("ab", "c");
    auto a_bc = fm.channelRng("a", "bc");
    EXPECT_NE(ab_c.next(), a_bc.next());
}

// ---------------------------------------------------------------
// Engine unit behaviour (no channels: gates always open)
// ---------------------------------------------------------------

TEST(ParEngine, FreeRunningPartitionsReachTargetAtMaxDoneTime)
{
    const int kTicks = 10;
    par::EngineConfig cfg;
    cfg.workers = 8; // clamped to the partition count
    cfg.startTickNs = {0.0, 0.0, 0.0};

    std::vector<std::atomic<int>> ticks(3);
    double deltas[3] = {10.0, 20.0, 30.0};
    par::EngineHooks hooks;
    hooks.onTick = [&](int p, double) {
        int n = ticks[size_t(p)].fetch_add(1) + 1;
        par::TickResult r;
        r.nextDeltaNs = deltas[p];
        r.progressed = true;
        r.reachedTarget = n >= kTicks;
        return r;
    };

    par::ParallelEngine engine(cfg, hooks, {});
    EXPECT_LE(engine.workerCount(), 3u);
    par::EngineResult res = engine.run();

    EXPECT_FALSE(res.deadlocked);
    EXPECT_FALSE(res.stopped);
    // Slowest partition's target-reaching tick: 9 steps of 30 ns.
    EXPECT_DOUBLE_EQ(res.hostTimeNs, (kTicks - 1) * 30.0);
    for (int p = 0; p < 3; ++p)
        EXPECT_GE(ticks[size_t(p)].load(), kTicks);
}

TEST(ParEngine, StopRequestEndsAllPartitions)
{
    par::EngineConfig cfg;
    cfg.startTickNs = {0.0, 0.0};
    std::atomic<int> total{0};
    par::EngineHooks hooks;
    hooks.onTick = [&](int p, double) {
        total.fetch_add(1);
        par::TickResult r;
        r.nextDeltaNs = 10.0;
        r.progressed = true;
        r.stopRequested = (p == 0 && total.load() > 20);
        return r;
    };
    par::ParallelEngine engine(cfg, hooks, {});
    par::EngineResult res = engine.run();
    EXPECT_TRUE(res.stopped);
    EXPECT_FALSE(res.deadlocked);
}

// ---------------------------------------------------------------
// Parallel backend parity: bit-exact, host-cycle-identical
// ---------------------------------------------------------------

TEST(ParExec, MatchesSequentialAndGoldenAcrossWorkerCounts)
{
    auto soc = fourTileSoc();
    const uint64_t cycles = 400;

    std::vector<uint64_t> mono;
    runMonolithic(soc, nullptr, recorder(mono, "status"), cycles);
    EXPECT_NE(mono.front(), mono.back());

    ParityRun seq = runBackend(soc, ExecConfig{}, cycles);
    EXPECT_FALSE(seq.result.deadlocked);
    expectPrefixEqual(mono, seq.trace);

    for (unsigned workers : {1u, 2u, 4u, 8u}) {
        SCOPED_TRACE("workers=" + std::to_string(workers));
        ParityRun par = runBackend(
            soc, ExecConfig::parallel(workers), cycles);
        EXPECT_FALSE(par.result.deadlocked);
        expectPrefixEqual(mono, par.trace);
        // The schedules are identical, not merely equivalent: the
        // same cycle count and the same total host time.
        EXPECT_EQ(par.result.targetCycles, seq.result.targetCycles);
        EXPECT_DOUBLE_EQ(par.result.hostTimeNs,
                         seq.result.hostTimeNs);
        // Prefix of the sequential trace too (it may itself run a
        // little past the target before the last partition crosses).
        size_t n = std::min(seq.trace.size(), par.trace.size());
        for (size_t i = 0; i < n; ++i)
            ASSERT_EQ(par.trace[i], seq.trace[i])
                << "divergence at cycle " << i;
    }
}

TEST(ParExec, FaultInjectionStaysBitExactInParallel)
{
    auto soc = fourTileSoc();
    const uint64_t cycles = 800;
    auto faults = transport::FaultConfig::uniform(1e-3, 42);

    ParityRun seq = runBackend(soc, ExecConfig{}, cycles, &faults);
    EXPECT_FALSE(seq.result.deadlocked);
    EXPECT_GT(seq.result.retransmits, 0u);

    for (unsigned workers : {2u, 4u}) {
        SCOPED_TRACE("workers=" + std::to_string(workers));
        ParityRun par = runBackend(
            soc, ExecConfig::parallel(workers), cycles, &faults);
        EXPECT_FALSE(par.result.deadlocked);
        EXPECT_GT(par.result.retransmits, 0u);
        EXPECT_EQ(par.result.targetCycles, seq.result.targetCycles);
        EXPECT_DOUBLE_EQ(par.result.hostTimeNs,
                         seq.result.hostTimeNs);
        size_t n = std::min(seq.trace.size(), par.trace.size());
        ASSERT_GE(n, cycles);
        for (size_t i = 0; i < n; ++i)
            ASSERT_EQ(par.trace[i], seq.trace[i])
                << "divergence at cycle " << i;
    }
}

TEST(ParExec, SchedulingJitterDoesNotChangeResults)
{
    // The concurrency stress test: random per-worker delays and
    // yields (plus fault injection) must not change a single bit or
    // host cycle — determinism comes from the conservative gates,
    // not from lucky timing.
    auto soc = fourTileSoc();
    const uint64_t cycles = 500;
    auto faults = transport::FaultConfig::uniform(2e-3, 7);

    ParityRun seq = runBackend(soc, ExecConfig{}, cycles, &faults);

    for (uint64_t seed : {1ull, 99ull}) {
        SCOPED_TRACE("stressSeed=" + std::to_string(seed));
        ExecConfig exec = ExecConfig::parallel(4);
        exec.stressSeed = seed;
        ParityRun par = runBackend(soc, exec, cycles, &faults);
        EXPECT_FALSE(par.result.deadlocked);
        EXPECT_EQ(par.result.targetCycles, seq.result.targetCycles);
        EXPECT_DOUBLE_EQ(par.result.hostTimeNs,
                         seq.result.hostTimeNs);
        size_t n = std::min(seq.trace.size(), par.trace.size());
        ASSERT_GE(n, cycles);
        for (size_t i = 0; i < n; ++i)
            ASSERT_EQ(par.trace[i], seq.trace[i])
                << "divergence at cycle " << i;
    }
}

TEST(ParExec, TransientStallsAreExcusedInParallel)
{
    // Long link stalls push every partition past the watchdog
    // window; the quiesce-and-inspect protocol must find the
    // in-flight token and keep going, exactly like the sequential
    // watchdog.
    auto soc = fourTileSoc();
    const uint64_t cycles = 600;
    transport::FaultConfig faults;
    faults.seed = 17;
    faults.stallRate = 0.02;
    faults.stallMeanNs = 200000.0;

    ParityRun seq = runBackend(soc, ExecConfig{}, cycles, &faults);
    ParityRun par = runBackend(soc, ExecConfig::parallel(4), cycles,
                               &faults);

    EXPECT_FALSE(par.result.deadlocked);
    EXPECT_GT(par.result.faultStats.get("link_stalls"), 0u);
    EXPECT_GT(par.result.transientStallEvents, 0u);
    EXPECT_EQ(par.result.targetCycles, seq.result.targetCycles);
    EXPECT_DOUBLE_EQ(par.result.hostTimeNs, seq.result.hostTimeNs);
    size_t n = std::min(seq.trace.size(), par.trace.size());
    ASSERT_GE(n, cycles);
    for (size_t i = 0; i < n; ++i)
        ASSERT_EQ(par.trace[i], seq.trace[i])
            << "divergence at cycle " << i;
}

TEST(ParExec, FailoverRunsOnWorkerThreads)
{
    auto soc = fourTileSoc();
    const uint64_t cycles = 300;
    transport::FaultConfig faults;
    faults.seed = 19;
    faults.dropRate = 0.7; // hopeless link
    faults.maxRetries = 2;

    ParityRun seq = runBackend(soc, ExecConfig{}, cycles, &faults);
    ParityRun par = runBackend(soc, ExecConfig::parallel(4), cycles,
                               &faults);

    EXPECT_FALSE(par.result.deadlocked);
    EXPECT_GT(par.result.linkFailovers, 0u);
    EXPECT_TRUE(par.result.degraded);
    EXPECT_EQ(par.result.targetCycles, seq.result.targetCycles);
    EXPECT_DOUBLE_EQ(par.result.hostTimeNs, seq.result.hostTimeNs);
    size_t n = std::min(seq.trace.size(), par.trace.size());
    ASSERT_GE(n, cycles);
    for (size_t i = 0; i < n; ++i)
        ASSERT_EQ(par.trace[i], seq.trace[i])
            << "divergence at cycle " << i;
}

TEST(ParExec, GenuineDeadlockIsDiagnosedInParallel)
{
    auto plan = deadlockPlan();
    MultiFpgaSim sim(plan, u250s(2, 50.0), transport::qsfpAurora());
    sim.setVerifyPolicy(VerifyPolicy::Off);
    sim.setExecConfig(ExecConfig::parallel(2));
    auto result = sim.run(10);

    ASSERT_TRUE(result.deadlocked);
    ASSERT_TRUE(result.diagnosis.valid);
    EXPECT_EQ(result.targetCycles, 0u);
    ASSERT_FALSE(result.diagnosis.stuckChannels.empty());
    for (const auto &cd : result.diagnosis.channels) {
        EXPECT_TRUE(cd.name == "c01" || cd.name == "c10");
        EXPECT_TRUE(cd.starved);
    }
    // The parallel watchdog's diagnosis carries the same static
    // cross-reference as the sequential one.
    ASSERT_FALSE(result.diagnosis.staticFindings.empty());
    EXPECT_NE(result.diagnosis.staticFindings.front().find("LBDN003"),
              std::string::npos);
}

TEST(ParExec, StopConditionWorksAcrossWorkers)
{
    auto soc = fourTileSoc();
    auto plan = threeWayPlan(soc);
    MultiFpgaSim sim(plan, u250s(plan.partitions.size(), 50.0),
                     transport::qsfpAurora());
    sim.setExecConfig(ExecConfig::parallel(3));
    std::atomic<uint64_t> seen{0};
    sim.setMonitor(0, [&](rtlsim::Simulator &, unsigned,
                          uint64_t cycle) { seen.store(cycle); });
    sim.init();
    sim.setStopCondition([&]() { return seen.load() >= 50; });
    auto result = sim.run(100000);
    EXPECT_TRUE(result.stopped);
    EXPECT_LT(result.targetCycles, 1000u);
}

TEST(ParExec, ResumeContinuesBitExactly)
{
    auto soc = fourTileSoc();
    const uint64_t cycles = 400;

    ParityRun seq = runBackend(soc, ExecConfig{}, cycles);

    // Same run split into two parallel segments: the event schedule
    // is target-independent, so the trace must continue seamlessly.
    auto plan = threeWayPlan(soc);
    MultiFpgaSim sim(plan, u250s(plan.partitions.size(), 50.0),
                     transport::qsfpAurora());
    sim.setExecConfig(ExecConfig::parallel(4));
    std::vector<uint64_t> trace;
    sim.setMonitor(0, recorder(trace, "status"));
    auto first = sim.run(cycles / 2);
    EXPECT_FALSE(first.deadlocked);
    auto second = sim.run(cycles);
    EXPECT_FALSE(second.deadlocked);

    EXPECT_EQ(second.targetCycles, seq.result.targetCycles);
    size_t n = std::min(seq.trace.size(), trace.size());
    ASSERT_GE(n, cycles);
    for (size_t i = 0; i < n; ++i)
        ASSERT_EQ(trace[i], seq.trace[i])
            << "divergence at cycle " << i;
}

TEST(ParExec, TokenStreamingStaysBitExactAcrossWorkers)
{
    // Satellite of the causal-tracing tentpole: a 4-worker run with
    // token sampling and JSONL streaming enabled must be bit-for-bit
    // identical to the telemetry-off run — same cycle count, same
    // host time, same status trace, same final state signature — and
    // every streamed line must parse.
    auto soc = fourTileSoc();
    const uint64_t cycles = 400;

    auto plan_ref = threeWayPlan(soc);
    const size_t nparts = plan_ref.partitions.size();
    MultiFpgaSim ref(plan_ref, u250s(nparts, 50.0),
                     transport::qsfpAurora());
    ref.setExecConfig(ExecConfig::parallel(4));
    std::vector<uint64_t> ref_trace;
    ref.setMonitor(0, recorder(ref_trace, "status"));
    auto ref_result = ref.run(cycles);
    settle(ref, cycles + 25);
    uint64_t ref_sig = finalStateSignature(ref, nparts);

    const std::string path =
        ::testing::TempDir() + "par_stream_test.jsonl";
    std::remove(path.c_str());

    auto plan = threeWayPlan(soc);
    MultiFpgaSim sim(plan, u250s(nparts, 50.0),
                     transport::qsfpAurora());
    obs::TelemetryConfig tcfg;
    tcfg.streamPath = path;
    tcfg.tokenSampleEvery = 4;
    tcfg.streamEveryCycles = 100;
    tcfg.runLabel = "par_test";
    sim.setTelemetry(tcfg);
    sim.setExecConfig(ExecConfig::parallel(4));
    std::vector<uint64_t> trace;
    sim.setMonitor(0, recorder(trace, "status"));
    auto result = sim.run(cycles);

    EXPECT_FALSE(result.deadlocked);
    EXPECT_EQ(result.targetCycles, ref_result.targetCycles);
    EXPECT_DOUBLE_EQ(result.hostTimeNs, ref_result.hostTimeNs);
    settle(sim, cycles + 25);
    EXPECT_EQ(finalStateSignature(sim, nparts), ref_sig);
    size_t n = std::min(ref_trace.size(), trace.size());
    ASSERT_GE(n, cycles);
    for (size_t i = 0; i < n; ++i)
        ASSERT_EQ(trace[i], ref_trace[i])
            << "divergence at cycle " << i;

    // The stream is valid JSONL: header first, at least one tokens
    // chunk (worker threads feed the same collector), summary last.
    std::ifstream is(path);
    ASSERT_TRUE(is.good());
    std::string line, first_type, last_type;
    size_t lines = 0, token_records = 0;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        obs::JsonValue v;
        std::string err;
        ASSERT_TRUE(obs::parseJson(line, v, err))
            << err << "\n" << line;
        const std::string type = v.text("type");
        if (lines == 0)
            first_type = type;
        last_type = type;
        ++lines;
        if (type == "tokens")
            token_records += v.get("records")->arr.size();
    }
    EXPECT_EQ(first_type, "header");
    EXPECT_EQ(last_type, "summary");
    EXPECT_GE(lines, 3u);
    EXPECT_GT(token_records, 0u);

    std::remove(path.c_str());
}

TEST(ParExec, TelemetryWorksUnderParallelExecution)
{
    auto soc = fourTileSoc();
    auto plan = threeWayPlan(soc);
    MultiFpgaSim sim(plan, u250s(plan.partitions.size(), 50.0),
                     transport::qsfpAurora());
    sim.setTelemetry(obs::TelemetryConfig::full());
    sim.setExecConfig(ExecConfig::parallel(4));
    auto result = sim.run(300);

    EXPECT_FALSE(result.deadlocked);
    ASSERT_FALSE(result.metrics.empty());
    EXPECT_GT(result.metrics.gauge("sim.sim_rate_mhz"), 0.0);
    EXPECT_GT(result.metrics.gauge("sim.target_cycles"), 0.0);
    EXPECT_GT(sim.telemetry()->tracer()->totalEmitted(), 0u);
}
