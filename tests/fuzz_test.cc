/**
 * @file
 * Differential fuzzing of the rtlsim evaluation engines and the
 * partition execution backends. A seeded generator emits random flat
 * circuits (mixed widths, muxes, cat/bits, registers, a memory) and
 * random partitionable circuits; each one is driven with a random
 * input trace while asserting bit-exact signal tables between the
 * Interpret and Compiled engines, and bit-exact monitor traces
 * between the monolithic golden run, the sequential backend and the
 * parallel backend under both engines.
 *
 * Every assertion message carries the failing seed; replay a single
 * circuit with FIREAXE_FUZZ_SEED=<seed>. FIREAXE_FUZZ_CIRCUITS and
 * FIREAXE_FUZZ_PART_CIRCUITS scale the corpus (CI's scheduled fuzz
 * job raises them well beyond the default tier).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "firrtl/builder.hh"
#include "passes/flatten.hh"
#include "platform/executor.hh"
#include "platform/fpga.hh"
#include "ripper/partition.hh"
#include "rtlsim/simulator.hh"
#include "transport/link.hh"

using namespace fireaxe;
using firrtl::ExprPtr;

namespace {

using FuzzRng = std::mt19937_64;

uint64_t
envU64(const char *name, uint64_t fallback)
{
    const char *v = std::getenv(name);
    return (v && *v) ? std::strtoull(v, nullptr, 0) : fallback;
}

uint64_t
mask(unsigned w)
{
    return w >= 64 ? ~0ull : ((1ull << w) - 1);
}

unsigned
pickWidth(FuzzRng &rng)
{
    static const unsigned table[] = {1,  2,  3,  5,  7,  8,  13, 16,
                                     24, 31, 32, 47, 48, 63, 64};
    return table[rng() % (sizeof(table) / sizeof(table[0]))];
}

/** Coerce an expression to exactly @p w bits (truncate or zero-extend). */
ExprPtr
fit(ExprPtr e, unsigned w)
{
    if (e->width == w)
        return e;
    if (e->width > w)
        return firrtl::bits(e, w - 1, 0);
    return firrtl::cat(firrtl::lit(0, w - e->width), e);
}

ExprPtr
randLeaf(FuzzRng &rng, const std::vector<ExprPtr> &avail)
{
    if (avail.empty() || rng() % 100 < 15)
        return firrtl::lit(rng(), 1 + unsigned(rng() % 64));
    return avail[rng() % avail.size()];
}

/** Random expression over the given leaves. Only reads what is in
 *  @p avail, so acyclicity is the caller's ordering discipline. */
ExprPtr
randExpr(FuzzRng &rng, const std::vector<ExprPtr> &avail, unsigned depth)
{
    if (depth == 0)
        return randLeaf(rng, avail);
    switch (rng() % 8) {
    case 0: {
        static const firrtl::UnOpKind ops[] = {
            firrtl::UnOpKind::Not, firrtl::UnOpKind::AndR,
            firrtl::UnOpKind::OrR, firrtl::UnOpKind::XorR};
        return firrtl::unOp(ops[rng() % 4],
                            randExpr(rng, avail, depth - 1));
    }
    case 1:
    case 2:
    case 3:
    case 4: {
        static const firrtl::BinOpKind ops[] = {
            firrtl::BinOpKind::Add, firrtl::BinOpKind::Sub,
            firrtl::BinOpKind::Mul, firrtl::BinOpKind::Div,
            firrtl::BinOpKind::Rem, firrtl::BinOpKind::And,
            firrtl::BinOpKind::Or,  firrtl::BinOpKind::Xor,
            firrtl::BinOpKind::Eq,  firrtl::BinOpKind::Neq,
            firrtl::BinOpKind::Lt,  firrtl::BinOpKind::Leq,
            firrtl::BinOpKind::Gt,  firrtl::BinOpKind::Geq,
            firrtl::BinOpKind::Shl, firrtl::BinOpKind::Shr};
        return firrtl::binOp(ops[rng() % 16],
                             randExpr(rng, avail, depth - 1),
                             randExpr(rng, avail, depth - 1));
    }
    case 5: {
        ExprPtr sel = firrtl::unOp(firrtl::UnOpKind::OrR,
                                   randExpr(rng, avail, depth - 1));
        ExprPtr t = randExpr(rng, avail, depth - 1);
        ExprPtr f = randExpr(rng, avail, depth - 1);
        unsigned w = std::max(t->width, f->width);
        return firrtl::mux(sel, fit(t, w), fit(f, w));
    }
    case 6: {
        ExprPtr a = randExpr(rng, avail, depth - 1);
        unsigned hi = unsigned(rng() % a->width);
        unsigned lo = unsigned(rng() % (hi + 1));
        return firrtl::bits(a, hi, lo);
    }
    default: {
        unsigned wa = 1 + unsigned(rng() % 32);
        unsigned wb = 1 + unsigned(rng() % 32);
        return firrtl::cat(fit(randExpr(rng, avail, depth - 1), wa),
                           fit(randExpr(rng, avail, depth - 1), wb));
    }
    }
}

struct GenOpts
{
    unsigned numInputs = 3;
    unsigned numRegs = 4;
    unsigned numWires = 10;
    unsigned numOutputs = 2;
    bool withMem = true;
    /** Outputs connect straight to registers, so the module has no
     *  combinational in->out path and is always Exact-partitionable. */
    bool registeredOutputs = false;
};

constexpr unsigned kMemDepth = 16;
constexpr unsigned kMemAddrW = 4;

/**
 * Fill a module with random logic. Wires are connected in declaration
 * order and only read earlier wires, inputs, registers and the memory
 * read port, so the result is combinationally acyclic by
 * construction. The memory read address is driven from inputs and
 * registers only, which keeps rdata safely readable by every wire.
 */
void
genModuleBody(firrtl::ModuleBuilder &mb, FuzzRng &rng, const GenOpts &o)
{
    std::vector<ExprPtr> avail;     // everything a wire may read
    std::vector<ExprPtr> stateOnly; // inputs + registers
    std::vector<std::pair<std::string, unsigned>> regs;

    for (unsigned i = 0; i < o.numInputs; ++i) {
        unsigned w = pickWidth(rng);
        auto e = mb.input("in" + std::to_string(i), w);
        avail.push_back(e);
        stateOnly.push_back(e);
    }
    for (unsigned i = 0; i < o.numRegs; ++i) {
        unsigned w = pickWidth(rng);
        std::string name = "r" + std::to_string(i);
        auto e = mb.reg(name, w, rng() & mask(w));
        avail.push_back(e);
        stateOnly.push_back(e);
        regs.emplace_back(name, w);
    }
    unsigned mem_width = 0;
    if (o.withMem) {
        mem_width = pickWidth(rng);
        mb.mem("m", kMemDepth, mem_width);
        mb.connect("m.raddr",
                   fit(randExpr(rng, stateOnly, 2), kMemAddrW));
        avail.push_back(mb.sig("m.rdata"));
    }
    for (unsigned i = 0; i < o.numWires; ++i) {
        unsigned w = pickWidth(rng);
        std::string name = "w" + std::to_string(i);
        mb.wire(name, w);
        mb.connect(name, fit(randExpr(rng, avail, 3), w));
        avail.push_back(mb.sig(name));
    }
    if (o.withMem) {
        mb.connect("m.waddr",
                   fit(randExpr(rng, avail, 2), kMemAddrW));
        mb.connect("m.wdata",
                   fit(randExpr(rng, avail, 2), mem_width));
        mb.connect("m.wen", fit(randExpr(rng, avail, 1), 1));
    }
    // Leave the occasional register undriven (it holds its value).
    for (const auto &[name, w] : regs) {
        if (rng() % 10 < 9)
            mb.connect(name, fit(randExpr(rng, avail, 3), w));
    }
    for (unsigned i = 0; i < o.numOutputs; ++i) {
        std::string name = "out" + std::to_string(i);
        if (o.registeredOutputs) {
            const auto &[rname, rw] = regs[rng() % regs.size()];
            mb.output(name, rw);
            mb.connect(name, mb.sig(rname));
        } else {
            unsigned w = pickWidth(rng);
            mb.output(name, w);
            mb.connect(name, fit(randExpr(rng, avail, 2), w));
        }
    }
}

firrtl::Circuit
randomFlatCircuit(uint64_t seed, GenOpts &opts_out)
{
    FuzzRng rng(seed * 0x9e3779b97f4a7c15ull + 1);
    firrtl::CircuitBuilder cb("Fuzz");
    auto mb = cb.module("Fuzz");
    GenOpts o;
    o.numInputs = 2 + unsigned(rng() % 3);
    o.numRegs = 3 + unsigned(rng() % 4);
    o.numWires = 8 + unsigned(rng() % 10);
    o.numOutputs = 1 + unsigned(rng() % 3);
    o.withMem = rng() % 2 == 0;
    genModuleBody(mb, rng, o);
    opts_out = o;
    return cb.finish();
}

void
expectSameTables(const rtlsim::Simulator &a, const rtlsim::Simulator &b,
                 uint64_t seed, uint64_t cycle, const char *when)
{
    ASSERT_EQ(a.numSignals(), b.numSignals());
    for (size_t i = 0; i < a.numSignals(); ++i) {
        ASSERT_EQ(a.peekIdx(int(i)), b.peekIdx(int(i)))
            << "engine divergence on signal '" << a.signal(int(i)).name
            << "' " << when << " at cycle " << cycle
            << "; replay with FIREAXE_FUZZ_SEED=" << seed;
    }
}

/**
 * Random partitionable circuit: two generated blocks with registered
 * outputs, a free-running counter in the top for activity, dut_b fed
 * from dut_a's outputs, and a 32-bit "status" output folding every
 * instance output (so a single monitored signal witnesses the whole
 * boundary traffic).
 */
firrtl::Circuit
randomPartitionedCircuit(uint64_t seed)
{
    FuzzRng rng(seed * 0x2545f4914f6cdd1dull + 7);
    firrtl::CircuitBuilder cb("FuzzTop");

    GenOpts blk;
    blk.numInputs = 2;
    blk.numRegs = 3 + unsigned(rng() % 3);
    blk.numWires = 6 + unsigned(rng() % 6);
    blk.numOutputs = 2;
    blk.withMem = false;
    blk.registeredOutputs = true;
    {
        auto a = cb.module("BlkA");
        genModuleBody(a, rng, blk);
    }
    GenOpts blkb = blk;
    blkb.numRegs = 3 + unsigned(rng() % 3);
    blkb.withMem = rng() % 2 == 0;
    {
        auto b = cb.module("BlkB");
        genModuleBody(b, rng, blkb);
    }

    auto top = cb.module("FuzzTop");
    top.instance("dut_a", "BlkA");
    top.instance("dut_b", "BlkB");
    auto c0 = top.reg("c0", 16, 1);
    top.connect("c0", fit(firrtl::eAdd(c0, firrtl::lit(1, 16)), 16));

    const firrtl::Module *ma = cb.circuit().findModule("BlkA");
    const firrtl::Module *mbm = cb.circuit().findModule("BlkB");
    std::vector<ExprPtr> asrc = {c0};
    for (const auto &p : ma->ports) {
        if (p.dir == firrtl::PortDir::Input) {
            top.connect("dut_a." + p.name,
                        fit(randExpr(rng, asrc, 2), p.width));
        }
    }
    std::vector<ExprPtr> bsrc = {c0};
    for (const auto &p : ma->ports)
        if (p.dir == firrtl::PortDir::Output)
            bsrc.push_back(top.sig("dut_a." + p.name));
    for (const auto &p : mbm->ports) {
        if (p.dir == firrtl::PortDir::Input) {
            top.connect("dut_b." + p.name,
                        fit(randExpr(rng, bsrc, 2), p.width));
        }
    }

    ExprPtr acc = fit(c0, 32);
    for (const auto &p : ma->ports)
        if (p.dir == firrtl::PortDir::Output)
            acc = fit(firrtl::eXor(acc, fit(top.sig("dut_a." + p.name),
                                            32)),
                      32);
    for (const auto &p : mbm->ports)
        if (p.dir == firrtl::PortDir::Output)
            acc = fit(firrtl::eXor(acc, fit(top.sig("dut_b." + p.name),
                                            32)),
                      32);
    top.output("status", 32);
    top.connect("status", acc);
    return cb.finish();
}

libdn::Monitor
recorder(std::vector<uint64_t> &out, const std::string &signal)
{
    return [&out, signal](rtlsim::Simulator &sim, unsigned, uint64_t) {
        out.push_back(sim.peek(signal));
    };
}

/** FNV-1a over a monitor trace: the per-cycle witness of the whole
 *  signal table (status xors every boundary-crossing output). Two
 *  runs with equal hashes saw bit-identical tables every cycle. */
uint64_t
traceHash(const std::vector<uint64_t> &trace)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (uint64_t v : trace) {
        for (int b = 0; b < 64; b += 8) {
            h ^= (v >> b) & 0xff;
            h *= 0x100000001b3ull;
        }
    }
    return h;
}

} // namespace

/**
 * The core differential loop: for every seed, run the same random
 * circuit under both engines with an identical random stimulus trace
 * (input pokes, pokes of driven internal signals, direct memory
 * writes) and compare the full signal table after every evalComb()
 * and every step().
 */
TEST(FuzzFlat, InterpretVsCompiledBitExact)
{
    const uint64_t circuits = envU64("FIREAXE_FUZZ_CIRCUITS", 200);
    const uint64_t only = envU64("FIREAXE_FUZZ_SEED", 0);
    const uint64_t cycles = 32;

    for (uint64_t seed = 1; seed <= circuits; ++seed) {
        if (only && seed != only)
            continue;
        GenOpts opts;
        firrtl::Circuit circuit = randomFlatCircuit(seed, opts);
        firrtl::Circuit flat = passes::flattenAll(circuit);
        rtlsim::Simulator a(flat, rtlsim::EvalEngine::Interpret);
        rtlsim::Simulator b(flat, rtlsim::EvalEngine::Compiled);
        ASSERT_EQ(a.evalEngine(), rtlsim::EvalEngine::Interpret);
        ASSERT_EQ(b.evalEngine(), rtlsim::EvalEngine::Compiled);

        std::vector<int> inputs;
        std::vector<int> pokeable; // any signal; exercises driven pokes
        for (size_t i = 0; i < a.numSignals(); ++i) {
            if (a.signal(int(i)).kind == rtlsim::SigKind::Input)
                inputs.push_back(int(i));
            pokeable.push_back(int(i));
        }

        FuzzRng trng(seed ^ 0xf00dfeedULL);
        for (uint64_t cycle = 0; cycle < cycles; ++cycle) {
            // Quiet cycles (no pokes at all) exercise the gating
            // fast path where nothing should re-evaluate.
            if (trng() % 4 != 0) {
                for (int idx : inputs) {
                    if (trng() % 2) {
                        uint64_t v = trng();
                        a.pokeIdx(idx, v);
                        b.pokeIdx(idx, v);
                    }
                }
            }
            if (trng() % 8 == 0 && !pokeable.empty()) {
                int idx = pokeable[trng() % pokeable.size()];
                uint64_t v = trng();
                a.pokeIdx(idx, v);
                b.pokeIdx(idx, v);
            }
            if (opts.withMem && trng() % 8 == 0) {
                uint64_t addr = trng() % kMemDepth;
                uint64_t v = trng();
                a.writeMem("m", addr, v);
                b.writeMem("m", addr, v);
            }
            a.evalComb();
            b.evalComb();
            expectSameTables(a, b, seed, cycle, "after evalComb");
            a.step();
            b.step();
            expectSameTables(a, b, seed, cycle, "after step");
        }

        // The compiled engine must account for every node on every
        // evalComb: evaluated + skipped is a multiple of the node
        // count, and gating must have skipped something at least once
        // (quiet cycles exist in every trace).
        uint64_t accounted = b.nodesEvaluated() + b.nodesSkipped();
        ASSERT_EQ(accounted % b.numNodes(), 0u)
            << "seed " << seed << ": evaluated " << b.nodesEvaluated()
            << " + skipped " << b.nodesSkipped()
            << " not a multiple of " << b.numNodes();
    }
}

/** Cross-engine checkpoint restore over random circuits: run under
 *  one engine, checkpoint mid-trace, restore into the other engine
 *  and require identical continuations. */
TEST(FuzzFlat, CrossEngineCheckpointRestore)
{
    const uint64_t circuits =
        envU64("FIREAXE_FUZZ_CIRCUITS", 200) / 8 + 1;
    const uint64_t only = envU64("FIREAXE_FUZZ_SEED", 0);

    for (uint64_t seed = 1; seed <= circuits; ++seed) {
        if (only && seed != only)
            continue;
        GenOpts opts;
        firrtl::Circuit circuit = randomFlatCircuit(seed, opts);
        firrtl::Circuit flat = passes::flattenAll(circuit);
        rtlsim::Simulator a(flat, rtlsim::EvalEngine::Interpret);
        FuzzRng trng(seed ^ 0xc0ffeeULL);
        std::vector<int> inputs;
        for (size_t i = 0; i < a.numSignals(); ++i)
            if (a.signal(int(i)).kind == rtlsim::SigKind::Input)
                inputs.push_back(int(i));
        for (int i = 0; i < 12; ++i) {
            for (int idx : inputs)
                if (trng() % 2)
                    a.pokeIdx(idx, trng());
            a.step();
        }
        std::stringstream ckpt;
        a.saveCheckpoint(ckpt);
        rtlsim::Simulator b(flat, rtlsim::EvalEngine::Compiled);
        b.loadCheckpoint(ckpt);
        expectSameTables(a, b, seed, 12, "after checkpoint restore");
        for (uint64_t cycle = 0; cycle < 12; ++cycle) {
            for (int idx : inputs) {
                if (trng() % 2) {
                    uint64_t v = trng();
                    a.pokeIdx(idx, v);
                    b.pokeIdx(idx, v);
                }
            }
            a.step();
            b.step();
            expectSameTables(a, b, seed, 12 + cycle,
                             "after cross-engine restore step");
        }
    }
}

/**
 * Partition-level differential: random partitionable circuits run
 * through the full stack. The monolithic interpreter run is golden;
 * sequential and parallel backends under both engines must reproduce
 * its monitor trace bit-exactly (the parallel backend may overshoot
 * the cycle budget, so compare as a prefix).
 */
TEST(FuzzPartitioned, BackendsAndEnginesMatchGolden)
{
    const uint64_t circuits = envU64("FIREAXE_FUZZ_PART_CIRCUITS", 24);
    const uint64_t only = envU64("FIREAXE_FUZZ_SEED", 0);
    const uint64_t cycles = 48;

    for (uint64_t seed = 1; seed <= circuits; ++seed) {
        if (only && seed != only)
            continue;
        firrtl::Circuit circuit = randomPartitionedCircuit(seed);

        std::vector<uint64_t> golden;
        platform::runMonolithic(circuit, nullptr,
                                recorder(golden, "status"), cycles);
        ASSERT_EQ(golden.size(), cycles);

        ripper::PartitionSpec spec;
        spec.mode = ripper::PartitionMode::Exact;
        spec.groups.push_back({"blka", {"dut_a"}, 1});
        ripper::PartitionPlan plan = ripper::partition(circuit, spec);
        ASSERT_EQ(plan.partitionNames[0], "rest");

        const rtlsim::EvalEngine engines[] = {
            rtlsim::EvalEngine::Interpret, rtlsim::EvalEngine::Compiled};
        const platform::ExecBackend backends[] = {
            platform::ExecBackend::Sequential,
            platform::ExecBackend::Parallel};
        for (auto engine : engines) {
            for (auto backend : backends) {
                platform::MultiFpgaSim sim(
                    plan,
                    std::vector<platform::FpgaSpec>(
                        plan.partitions.size(),
                        platform::alveoU250(50.0)),
                    transport::qsfpAurora());
                platform::ExecConfig cfg;
                cfg.backend = backend;
                cfg.evalEngine = engine;
                sim.setExecConfig(cfg);
                std::vector<uint64_t> trace;
                sim.setMonitor(0, recorder(trace, "status"));
                sim.run(cycles);
                ASSERT_GE(trace.size(), golden.size())
                    << "short trace under engine "
                    << rtlsim::toString(engine)
                    << "; replay with FIREAXE_FUZZ_SEED=" << seed;
                for (size_t i = 0; i < golden.size(); ++i) {
                    ASSERT_EQ(trace[i], golden[i])
                        << "backend/engine divergence at cycle " << i
                        << " under engine " << rtlsim::toString(engine)
                        << ", backend "
                        << (backend ==
                                    platform::ExecBackend::Sequential
                                ? "sequential"
                                : "parallel")
                        << "; replay with FIREAXE_FUZZ_SEED=" << seed;
                }
            }
        }
    }
}

/**
 * Batching differential: depth-N token batching and pipelined epochs
 * change only the modeled host time, never token values or order, so
 * every (depth, pipelined, backend, engine) combination must
 * reproduce the depth-1 sequential golden's monitor trace — the
 * per-cycle signal-table witness — and its trace hash, bit-exactly.
 * Each seed draws one depth from {1, 2, 8, 32} and a pipelined
 * on/off coin so the corpus covers the grid without multiplying the
 * run time by eight. FIREAXE_FUZZ_BATCH scales the corpus.
 */
TEST(FuzzPartitioned, BatchDepthsMatchDepthOneGolden)
{
    const uint64_t circuits = envU64("FIREAXE_FUZZ_BATCH", 12);
    const uint64_t only = envU64("FIREAXE_FUZZ_SEED", 0);
    const uint64_t cycles = 48;
    const unsigned depths[] = {1, 2, 8, 32};

    for (uint64_t seed = 1; seed <= circuits; ++seed) {
        if (only && seed != only)
            continue;
        firrtl::Circuit circuit = randomPartitionedCircuit(seed);

        std::vector<uint64_t> mono;
        platform::runMonolithic(circuit, nullptr,
                                recorder(mono, "status"), cycles);
        ASSERT_EQ(mono.size(), cycles);

        ripper::PartitionSpec spec;
        spec.mode = ripper::PartitionMode::Exact;
        spec.groups.push_back({"blka", {"dut_a"}, 1});
        ripper::PartitionPlan plan = ripper::partition(circuit, spec);

        auto runOnce = [&](platform::ExecBackend backend,
                           rtlsim::EvalEngine engine, unsigned depth,
                           bool pipelined, std::vector<uint64_t> &out) {
            platform::MultiFpgaSim sim(
                plan,
                std::vector<platform::FpgaSpec>(
                    plan.partitions.size(),
                    platform::alveoU250(50.0)),
                transport::qsfpAurora());
            platform::ExecConfig cfg;
            cfg.backend = backend;
            cfg.evalEngine = engine;
            cfg.batchDepth = depth;
            cfg.pipelinedEpochs = pipelined;
            sim.setExecConfig(cfg);
            sim.setMonitor(0, recorder(out, "status"));
            auto result = sim.run(cycles);
            ASSERT_FALSE(result.deadlocked)
                << "deadlock at depth " << depth
                << "; replay with FIREAXE_FUZZ_SEED=" << seed;
        };

        // Depth-1 sequential interpret is the golden; it must itself
        // match the monolithic run (sanity of the whole chain).
        std::vector<uint64_t> golden;
        runOnce(platform::ExecBackend::Sequential,
                rtlsim::EvalEngine::Interpret, 1, true, golden);
        ASSERT_GE(golden.size(), mono.size());
        for (size_t i = 0; i < mono.size(); ++i)
            ASSERT_EQ(golden[i], mono[i])
                << "golden diverges from monolithic at cycle " << i
                << "; replay with FIREAXE_FUZZ_SEED=" << seed;
        golden.resize(mono.size());
        const uint64_t goldenHash = traceHash(golden);

        FuzzRng draw(seed * 0x9e3779b97f4a7c15ull + 11);
        const unsigned depth = depths[draw() % 4];
        const bool pipelined = draw() % 2 == 0;

        const rtlsim::EvalEngine engines[] = {
            rtlsim::EvalEngine::Interpret,
            rtlsim::EvalEngine::Compiled};
        const platform::ExecBackend backends[] = {
            platform::ExecBackend::Sequential,
            platform::ExecBackend::Parallel};
        for (auto engine : engines) {
            for (auto backend : backends) {
                std::vector<uint64_t> trace;
                runOnce(backend, engine, depth, pipelined, trace);
                ASSERT_GE(trace.size(), golden.size())
                    << "short trace at depth " << depth
                    << "; replay with FIREAXE_FUZZ_SEED=" << seed;
                for (size_t i = 0; i < golden.size(); ++i) {
                    ASSERT_EQ(trace[i], golden[i])
                        << "batching divergence at cycle " << i
                        << " under depth " << depth << ", pipelined "
                        << pipelined << ", engine "
                        << rtlsim::toString(engine) << ", backend "
                        << (backend ==
                                    platform::ExecBackend::Sequential
                                ? "sequential"
                                : "parallel")
                        << "; replay with FIREAXE_FUZZ_SEED=" << seed;
                }
                trace.resize(golden.size());
                ASSERT_EQ(traceHash(trace), goldenHash)
                    << "trace-hash divergence at depth " << depth
                    << "; replay with FIREAXE_FUZZ_SEED=" << seed;
            }
        }
    }
}
