/**
 * @file
 * Tests for the Go GC tail-latency model (Fig. 10 invariants and
 * sensitivity of the machine-model knobs).
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "goruntime/gc_model.hh"

using namespace fireaxe;
using namespace fireaxe::goruntime;

namespace {

GoGcResult
run(unsigned gomaxprocs, unsigned affinity)
{
    GoGcConfig cfg;
    cfg.gomaxprocs = gomaxprocs;
    cfg.affinityCores = affinity;
    cfg.ticks = 100000;
    return runGoGcBenchmark(cfg);
}

} // namespace

TEST(GoGc, Deterministic)
{
    auto r1 = run(2, 2);
    auto r2 = run(2, 2);
    EXPECT_DOUBLE_EQ(r1.p99Us, r2.p99Us);
    EXPECT_EQ(r1.gcCycles, r2.gcCycles);
}

TEST(GoGc, GcActuallyRuns)
{
    auto r = run(1, 1);
    EXPECT_GT(r.gcCycles, 5u);
}

TEST(GoGc, SingleProcHasVeryHighTail)
{
    // Fig. 10: "the 99% tail latency is very high when GOMAXPROCS is
    // set to one" — the GC goroutine executes serially with the main
    // goroutine.
    auto single = run(1, 1);
    auto dual = run(2, 2);
    EXPECT_GT(single.p99Us, 100.0);
    EXPECT_GT(single.p99Us, 20.0 * dual.p99Us);
}

TEST(GoGc, P95IsMuchLowerThanP99ForSingleProc)
{
    auto single = run(1, 1);
    EXPECT_LT(single.p95Us, single.p99Us / 10.0);
}

TEST(GoGc, PinningToOneCoreBeatsSpreading)
{
    // The paper's surprising result: with a weak memory subsystem,
    // running all OS threads on one core (high cache affinity) gives
    // a lower tail than spreading across GOMAXPROCS cores.
    for (unsigned gmp : {2u, 4u}) {
        auto pinned = run(gmp, 1);
        auto spread = run(gmp, gmp);
        EXPECT_LT(pinned.p99Us, spread.p99Us)
            << "GOMAXPROCS=" << gmp;
    }
}

TEST(GoGc, TailBoundedByStopTheWorldWhenMultiThreaded)
{
    auto r = run(4, 1);
    GoGcConfig cfg;
    // Max delay is dominated by a stop-the-world pause plus the
    // handler backlog, far below the single-proc mark chunks.
    EXPECT_LT(r.maxUs, 3.0 * cfg.stwUs);
}

TEST(GoGc, HigherCoherenceCostWorsensSpreadTail)
{
    // The NUMA corroboration experiment (§V-D): exaggerating the
    // inter-core communication latency raises the spread tail.
    GoGcConfig near, far;
    near.gomaxprocs = far.gomaxprocs = 2;
    near.affinityCores = far.affinityCores = 2;
    near.ticks = far.ticks = 100000;
    far.coherenceFactor = near.coherenceFactor * 3.0;
    far.ipiUs = near.ipiUs * 4.0;
    auto r_near = runGoGcBenchmark(near);
    auto r_far = runGoGcBenchmark(far);
    EXPECT_GT(r_far.p99Us, r_near.p99Us);
}

TEST(GoGc, LongerMarkChunksWorsenSingleProcTail)
{
    GoGcConfig short_chunk, long_chunk;
    short_chunk.ticks = long_chunk.ticks = 100000;
    short_chunk.markChunkUs = 50.0;
    long_chunk.markChunkUs = 600.0;
    auto r_short = runGoGcBenchmark(short_chunk);
    auto r_long = runGoGcBenchmark(long_chunk);
    EXPECT_GT(r_long.maxUs, r_short.maxUs);
}

TEST(GoGc, RejectsBadAffinity)
{
    GoGcConfig cfg;
    cfg.affinityCores = 9;
    cfg.totalCores = 4;
    EXPECT_THROW(runGoGcBenchmark(cfg), PanicError);
}
