/**
 * @file
 * Tests for the static verifier (src/verify): known-bad IR and plan
 * fixtures must be flagged with their exact diagnostic codes, shipped
 * targets must lint cleanly, and — the property the subsystem exists
 * to provide — any plan the verifier accepts must run deadlock-free
 * on both execution backends.
 */

#include <gtest/gtest.h>

#include "firrtl/builder.hh"
#include "platform/executor.hh"
#include "platform/fpga.hh"
#include "ripper/partition.hh"
#include "target/accelerators.hh"
#include "target/bus_soc.hh"
#include "target/paper_examples.hh"
#include "transport/link.hh"
#include "verify/verify.hh"

using namespace fireaxe;
using namespace fireaxe::ripper;
using namespace fireaxe::verify;

namespace {

std::vector<platform::FpgaSpec>
u250s(size_t n, double mhz)
{
    return std::vector<platform::FpgaSpec>(n,
                                           platform::alveoU250(mhz));
}

bool
hasCode(const Report &report, const std::string &code)
{
    return !report.byCode(code).empty();
}

/** A well-formed single-module circuit the bad fixtures mutate. */
firrtl::Circuit
goodCircuit()
{
    firrtl::CircuitBuilder cb("Top");
    auto mb = cb.module("Top");
    auto a = mb.input("a", 8);
    mb.output("y", 8);
    mb.wire("t", 8);
    mb.connect("t", firrtl::bits(firrtl::eAdd(a, firrtl::lit(1, 8)),
                                 7, 0));
    mb.connect("y", mb.sig("t"));
    // Copy out without finish(): the mutating fixtures would trip
    // the builder's own fatal() checks.
    return cb.circuit();
}

/**
 * Hand-built two-partition exact-mode plan whose cross-coupled
 * combinational blocks deadlock: each partition's only output
 * depends on its only input. Same shape as fault_test's
 * deadlockPlan(), reused here as the canonical LBDN003 fixture.
 */
PartitionPlan
deadlockPlan()
{
    auto combBlock = [](const std::string &top) {
        firrtl::CircuitBuilder cb(top);
        auto mb = cb.module(top);
        auto a = mb.input("a", 8);
        mb.output("b", 8);
        mb.connect("b",
                   firrtl::bits(firrtl::eAdd(a, firrtl::lit(1, 8)),
                                7, 0));
        return cb.finish();
    };

    PartitionPlan plan;
    plan.mode = PartitionMode::Exact;
    plan.partitions = {combBlock("P0"), combBlock("P1")};
    plan.partitionNames = {"p0", "p1"};
    plan.fame5Threads = {1, 1};
    plan.nets.push_back({8, 0, 1, "b", "a", "n0"});
    plan.nets.push_back({8, 1, 0, "b", "a", "n1"});
    plan.channels.push_back({"c01", 0, 1, true, {0}, 8, {}, 16});
    plan.channels.push_back({"c10", 1, 0, true, {1}, 8, {}, 16});
    plan.feedback.maxChannelWidth = 8;
    plan.feedback.linkCrossingsPerCycle = 2;
    return plan;
}

} // namespace

// --- Known-bad fixture 1: combinational loop -> IR004. ---

TEST(VerifyIr, CombLoopIsFlaggedIR004)
{
    firrtl::CircuitBuilder cb("Top");
    auto mb = cb.module("Top");
    mb.input("a", 8);
    mb.output("y", 8);
    mb.wire("u", 8);
    mb.wire("v", 8);
    mb.connect("u", mb.sig("v"));
    mb.connect("v", mb.sig("u"));
    mb.connect("y", mb.sig("u"));
    auto circuit = cb.circuit(); // finish() fatal()s on the loop

    auto report = verify::verifyCircuit(circuit);
    ASSERT_TRUE(report.hasErrors());
    auto loops = report.byCode("IR004");
    ASSERT_EQ(loops.size(), 1u);
    EXPECT_EQ(loops[0].severity, Severity::Error);
    EXPECT_EQ(loops[0].loc.module, "Top");
    EXPECT_NE(loops[0].message.find("combinational cycle"),
              std::string::npos);
}

// --- Known-bad fixture 2: double driver -> IR001. ---

TEST(VerifyIr, DoubleDriverIsFlaggedIR001)
{
    auto circuit = goodCircuit();
    auto &mod = circuit.modules.at("Top");
    mod.connects.push_back({"y", firrtl::lit(0, 8)});

    auto report = verify::verifyCircuit(circuit);
    ASSERT_TRUE(report.hasErrors());
    auto dups = report.byCode("IR001");
    ASSERT_EQ(dups.size(), 1u);
    EXPECT_EQ(dups[0].loc.signal, "y");
}

// --- Known-bad fixture 3: width mismatch -> IR002. ---

TEST(VerifyIr, TruncatingConnectIsFlaggedIR002)
{
    auto circuit = goodCircuit();
    auto &mod = circuit.modules.at("Top");
    mod.wires.push_back({"narrow", 4});
    mod.connects.push_back({"narrow", firrtl::lit(0x1f, 8)});

    auto report = verify::verifyCircuit(circuit);
    ASSERT_TRUE(report.hasErrors());
    auto hits = report.byCode("IR002");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].loc.signal, "narrow");
    EXPECT_NE(hits[0].message.find("8-bit"), std::string::npos);
}

TEST(VerifyIr, UndrivenOutputIsFlaggedIR003)
{
    auto circuit = goodCircuit();
    auto &mod = circuit.modules.at("Top");
    mod.ports.push_back({"z", firrtl::PortDir::Output, 8});

    auto report = verify::verifyCircuit(circuit);
    auto hits = report.byCode("IR003");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].loc.signal, "z");
}

TEST(VerifyIr, DeadLogicIsFlaggedIR005AsWarning)
{
    auto circuit = goodCircuit();
    auto &mod = circuit.modules.at("Top");
    mod.wires.push_back({"unused", 8});
    mod.connects.push_back({"unused", firrtl::lit(3, 8)});

    auto report = verify::verifyCircuit(circuit);
    EXPECT_FALSE(report.hasErrors());
    auto hits = report.byCode("IR005");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].severity, Severity::Warning);
    EXPECT_EQ(hits[0].loc.signal, "unused");

    Options options;
    options.checkDeadLogic = false;
    EXPECT_TRUE(verify::verifyCircuit(circuit, options).empty());
}

TEST(VerifyIr, BrokenHierarchyIsFlaggedIR007)
{
    auto circuit = goodCircuit();
    auto &mod = circuit.modules.at("Top");
    mod.instances.push_back({"ghost", "NoSuchModule"});

    auto report = verify::verifyCircuit(circuit);
    ASSERT_TRUE(report.hasErrors());
    EXPECT_TRUE(hasCode(report, "IR007"));
}

// --- Known-bad fixture 4: under-declared LI-BDN dependency. ---

TEST(VerifyLibdn, UnderDeclaredDependencyIsFlaggedLBDN001)
{
    // Declaring c10 source-class claims its outputs depend on no
    // inputs; the netlist says otherwise.
    auto plan = deadlockPlan();
    plan.channels[1].sinkClass = false;

    auto report = verifyPlan(plan);
    ASSERT_TRUE(report.hasErrors());
    auto hits = report.byCode("LBDN001");
    ASSERT_GE(hits.size(), 1u);
    EXPECT_EQ(hits[0].loc.signal, "c10");
    EXPECT_NE(hits[0].message.find("under-declared"),
              std::string::npos);
}

TEST(VerifyLibdn, OmittedDepChannelIsFlaggedLBDN001)
{
    // c01 enumerates depChannels but omits its true dependency c10.
    auto plan = deadlockPlan();
    plan.channels[0].depChannels = {"c01"};

    auto report = verifyPlan(plan);
    auto hits = report.byCode("LBDN001");
    ASSERT_GE(hits.size(), 1u);
    EXPECT_EQ(hits[0].loc.signal, "c01");
    // The bogus self-dependency is also an over-declaration.
    EXPECT_TRUE(hasCode(report, "LBDN002"));
}

TEST(VerifyLibdn, WaitForCycleIsFlaggedLBDN003)
{
    auto report = verifyPlan(deadlockPlan());
    ASSERT_TRUE(report.hasErrors());
    auto hits = report.byCode("LBDN003");
    ASSERT_GE(hits.size(), 1u);
    EXPECT_NE(hits[0].message.find("wait-for cycle"),
              std::string::npos);
    EXPECT_NE(hits[0].message.find("c01"), std::string::npos);
    EXPECT_NE(hits[0].message.find("c10"), std::string::npos);
}

TEST(VerifyLibdn, OverDeclarationIsAWarningNotAnError)
{
    // A registered (non-comb) producer declared sink-class fires
    // later than it must: LBDN002, but still runnable.
    auto regBlock = [](const std::string &top) {
        firrtl::CircuitBuilder cb(top);
        auto mb = cb.module(top);
        auto a = mb.input("a", 8);
        auto r = mb.reg("r", 8, 0);
        mb.output("b", 8);
        mb.connect("r", a);
        mb.connect("b", r);
        return cb.finish();
    };
    PartitionPlan plan = deadlockPlan();
    plan.partitions = {regBlock("P0"), regBlock("P1")};

    auto report = verifyPlan(plan);
    EXPECT_FALSE(report.hasErrors());
    EXPECT_FALSE(hasCode(report, "LBDN003"));
    auto hits = report.byCode("LBDN002");
    ASSERT_GE(hits.size(), 1u);
    EXPECT_EQ(hits[0].severity, Severity::Warning);
}

// --- Known-bad fixture 5: un-buffered fast-mode cut -> PLAN005. ---

namespace {

/** Fast-mode plan cutting an annotated ready-valid handshake with no
 *  skid buffer anywhere: the transform's output was tampered with
 *  (or the plan was written by hand). */
PartitionPlan
unbufferedCutPlan()
{
    firrtl::CircuitBuilder cb0("P0");
    {
        auto prod = cb0.module("Prod");
        prod.input("req_ready", 1);
        auto cnt = prod.reg("cnt", 8, 0);
        prod.output("req_valid", 1);
        prod.output("req_data", 8);
        prod.connect("cnt",
                     firrtl::bits(
                         firrtl::eAdd(cnt, firrtl::lit(1, 8)), 7, 0));
        prod.connect("req_valid", firrtl::bits(cnt, 0, 0));
        prod.connect("req_data", cnt);
        prod.annotateReadyValid(
            {"req", "req_valid", "req_ready", {"req_data"}, true});
        auto top = cb0.module("P0");
        top.input("req_ready_i", 1);
        top.output("req_valid_o", 1);
        top.output("req_data_o", 8);
        top.instance("m", "Prod");
        top.connect("m.req_ready", top.sig("req_ready_i"));
        top.connect("req_valid_o", top.sig("m.req_valid"));
        top.connect("req_data_o", top.sig("m.req_data"));
    }

    firrtl::CircuitBuilder cb1("P1");
    {
        auto top = cb1.module("P1");
        top.input("req_valid_i", 1);
        top.input("req_data_i", 8);
        top.output("req_ready_o", 1);
        auto seen = top.reg("seen", 8, 0);
        top.connect("seen",
                    firrtl::mux(top.sig("req_valid_i"),
                                top.sig("req_data_i"), seen));
        top.connect("req_ready_o", firrtl::bits(seen, 0, 0));
    }

    PartitionPlan plan;
    plan.mode = PartitionMode::Fast;
    plan.partitions = {cb0.finish(), cb1.finish()};
    plan.partitionNames = {"p0", "p1"};
    plan.fame5Threads = {1, 1};
    plan.nets.push_back(
        {1, 0, 1, "req_valid_o", "req_valid_i", "m.req_valid"});
    plan.nets.push_back(
        {8, 0, 1, "req_data_o", "req_data_i", "m.req_data"});
    plan.nets.push_back(
        {1, 1, 0, "req_ready_o", "req_ready_i", "m.req_ready"});
    plan.channels.push_back({"c01", 0, 1, false, {0, 1}, 9, {}, 16});
    plan.channels.push_back({"c10", 1, 0, false, {2}, 1, {}, 16});
    plan.feedback.maxChannelWidth = 9;
    plan.feedback.linkCrossingsPerCycle = 1;
    return plan;
}

} // namespace

TEST(VerifyPlan, UnbufferedReadyValidCutIsFlaggedPLAN005)
{
    auto report = verifyPlan(unbufferedCutPlan());
    ASSERT_TRUE(report.hasErrors());
    auto hits = report.byCode("PLAN005");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].loc.signal, "m.req_valid");
    EXPECT_EQ(hits[0].loc.module, "Prod");
    EXPECT_NE(hits[0].message.find("skid buffer"), std::string::npos);
}

TEST(VerifyPlan, SkidBufferedCutIsAccepted)
{
    // FireRipper's own fast-mode output for the same shape of design
    // carries the transform's skid buffer and must pass.
    target::BusSocConfig cfg;
    cfg.numTiles = 2;
    auto soc = target::buildBusSoc(cfg);
    PartitionSpec spec;
    spec.mode = PartitionMode::Fast;
    spec.groups.push_back({"tiles", {"tile0", "tile1"}, 1});
    auto plan = partition(soc, spec);

    auto report = verifyPlan(plan);
    EXPECT_FALSE(report.hasErrors());
    EXPECT_FALSE(hasCode(report, "PLAN005"));
}

// --- Plan structure checks. ---

TEST(VerifyPlan, ShapeMismatchesAreFlaggedPLAN001)
{
    auto plan = deadlockPlan();
    plan.channels[1].netIndices = {0}; // net 0 owned twice, net 1 orphaned

    auto report = verifyPlan(plan);
    ASSERT_TRUE(report.hasErrors());
    EXPECT_GE(report.byCode("PLAN001").size(), 2u);
}

TEST(VerifyPlan, MissingPortIsFlaggedPLAN002)
{
    auto plan = deadlockPlan();
    plan.nets[0].srcPort = "nonexistent";
    auto report = verifyPlan(plan);
    ASSERT_TRUE(report.hasErrors());
    EXPECT_TRUE(hasCode(report, "PLAN002"));
}

TEST(VerifyPlan, WidthDisagreementsAreFlaggedPLAN003AndPLAN004)
{
    auto plan = deadlockPlan();
    plan.nets[0].width = 4; // ports are 8 bits; channel sums to 4
    auto report = verifyPlan(plan);
    ASSERT_TRUE(report.hasErrors());
    EXPECT_TRUE(hasCode(report, "PLAN003"));
    EXPECT_TRUE(hasCode(report, "PLAN004"));
}

TEST(VerifyPlan, ZeroCapacityChannelIsFlaggedPLAN007)
{
    auto plan = deadlockPlan();
    plan.channels[0].capacity = 0;
    auto report = verifyPlan(plan);
    ASSERT_TRUE(report.hasErrors());
    EXPECT_TRUE(hasCode(report, "PLAN007"));
}

// --- Diagnostics engine. ---

TEST(VerifyDiag, EveryEmittedCodeIsRegistered)
{
    auto check = [](const Report &report) {
        for (const auto &d : report.diagnostics()) {
            const CheckInfo *info = findCheck(d.code);
            ASSERT_NE(info, nullptr) << "unregistered code " << d.code;
        }
    };
    check(verifyPlan(deadlockPlan()));
    check(verifyPlan(unbufferedCutPlan()));
}

TEST(VerifyDiag, RenderersIncludeCodeSeverityAndLocation)
{
    auto report = verifyPlan(deadlockPlan());
    ASSERT_TRUE(report.hasErrors());

    std::string text = report.renderText();
    EXPECT_NE(text.find("error[LBDN003]"), std::string::npos);
    EXPECT_NE(text.find("error(s)"), std::string::npos);

    std::string json = report.renderJson();
    EXPECT_NE(json.find("\"code\":\"LBDN003\""), std::string::npos);
    EXPECT_NE(json.find("\"errors\""), std::string::npos);
}

// --- Shipped targets lint cleanly (acceptance criterion). ---

TEST(VerifyAcceptance, ShippedTargetsPassBothModes)
{
    struct Case
    {
        const char *name;
        firrtl::Circuit circuit;
        PartitionSpec spec;
    };
    std::vector<Case> cases;
    {
        Case c{"fig2", target::buildFig2Target(), {}};
        c.spec.groups.push_back({"blockB", {"blockB"}, 1});
        cases.push_back(std::move(c));
    }
    {
        target::BusSocConfig cfg;
        cfg.numTiles = 4;
        Case c{"bus-soc", target::buildBusSoc(cfg), {}};
        c.spec.groups.push_back(
            {"tiles", target::busSocTilePaths(2), 1});
        cases.push_back(std::move(c));
    }
    {
        target::Sha3Config cfg;
        cfg.roundCycles = 50;
        Case c{"sha3", target::buildSha3Soc(cfg), {}};
        c.spec.groups.push_back({"accel", {"accel"}, 1});
        cases.push_back(std::move(c));
    }

    for (auto &c : cases) {
        for (auto mode :
             {PartitionMode::Exact, PartitionMode::Fast}) {
            c.spec.mode = mode;
            auto plan = partition(c.circuit, c.spec);
            auto report = verifyPlan(plan);
            EXPECT_FALSE(report.hasErrors())
                << c.name << " mode "
                << (mode == PartitionMode::Fast ? "fast" : "exact")
                << ":\n"
                << report.renderText();
        }
    }
}

// --- The property the verifier exists for: accepted => runs. ---

TEST(VerifyProperty, AcceptedPlansRunDeadlockFreeOnBothBackends)
{
    target::BusSocConfig cfg;
    cfg.numTiles = 4;
    auto soc = target::buildBusSoc(cfg);

    std::vector<PartitionSpec> specs;
    {
        PartitionSpec s;
        s.groups.push_back({"tiles", target::busSocTilePaths(2), 1});
        specs.push_back(s);
    }
    {
        PartitionSpec s;
        s.groups.push_back({"t01", {"tile0", "tile1"}, 1});
        s.groups.push_back({"t23", {"tile2", "tile3"}, 1});
        specs.push_back(s);
    }

    for (auto &spec : specs) {
        for (auto mode :
             {PartitionMode::Exact, PartitionMode::Fast}) {
            spec.mode = mode;
            auto plan = partition(soc, spec);
            auto report = verify::verifyPlan(plan);
            ASSERT_FALSE(report.hasErrors()) << report.renderText();

            for (auto backend : {platform::ExecBackend::Sequential,
                                 platform::ExecBackend::Parallel}) {
                platform::MultiFpgaSim sim(
                    plan, u250s(plan.partitions.size(), 50.0),
                    transport::qsfpAurora());
                if (backend == platform::ExecBackend::Parallel)
                    sim.setExecConfig(
                        platform::ExecConfig::parallel(2));
                auto result = sim.run(300);
                EXPECT_FALSE(result.deadlocked);
                EXPECT_EQ(result.targetCycles, 300u);
            }
        }
    }
}

// --- The refusal path (acceptance criterion). ---

TEST(VerifyProperty, RejectedPlanIsRefusedBeforeRunning)
{
    auto plan = deadlockPlan();
    platform::MultiFpgaSim sim(plan, u250s(2, 50.0),
                               transport::qsfpAurora());
    try {
        sim.run(10);
        FAIL() << "expected the pre-flight gate to refuse the plan";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("LBDN003"),
                  std::string::npos);
    }
    EXPECT_TRUE(sim.preflightReport().hasErrors());
}
