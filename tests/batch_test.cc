/**
 * @file
 * Depth-N token batching: legality analysis (PLAN011 exact-code
 * fixtures), auto-clamping on mixed boundaries, the batched
 * ReliableTokenChannel under fault injection (batch-granular
 * retransmit, no duplicate delivery), mid-batch snapshot/resume
 * bit-exactness across worker counts, and the headline FMR
 * improvement on the fig2 exact showcase.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "analyze/batching.hh"
#include "firrtl/builder.hh"
#include "libdn/reliable.hh"
#include "platform/executor.hh"
#include "platform/fpga.hh"
#include "recovery/snapshot.hh"
#include "ripper/partition.hh"
#include "rtlsim/engine.hh"
#include "target/paper_examples.hh"
#include "transport/fault.hh"
#include "transport/link.hh"
#include "verify/verify.hh"

using namespace fireaxe;
using namespace fireaxe::ripper;
using namespace fireaxe::platform;

namespace fs = std::filesystem;

namespace {

std::vector<FpgaSpec>
u250s(size_t n, double mhz)
{
    return std::vector<FpgaSpec>(n, alveoU250(mhz));
}

/** Coerce an expression to exactly @p w bits (truncate or
 *  zero-extend). */
firrtl::ExprPtr
fit(firrtl::ExprPtr e, unsigned w)
{
    if (e->width == w)
        return e;
    if (e->width > w)
        return firrtl::bits(e, w - 1, 0);
    return firrtl::cat(firrtl::lit(0, w - e->width), e);
}

/** fig2 pulled apart at blockB — the paper's exact showcase. */
PartitionPlan
fig2Plan(firrtl::Circuit &circuit_out)
{
    circuit_out = target::buildFig2Target();
    PartitionSpec spec;
    spec.mode = PartitionMode::Exact;
    spec.groups.push_back({"blockB", {"blockB"}, 1});
    return partition(circuit_out, spec);
}

/**
 * Two-partition fixture with a MIXED boundary: the extracted block
 * answers through a memory (its outbound cone is illegal to batch),
 * while the rest partition drives it from a plain counter register
 * (its outbound cone is legal). The channels of one plan therefore
 * get different verdicts — exactly the case the executor's
 * per-channel clamp exists for.
 */
firrtl::Circuit
memConeCircuit()
{
    firrtl::CircuitBuilder cb("MemTop");
    {
        auto mb = cb.module("MemBlk");
        auto a = mb.input("a", 8);
        mb.output("y", 8);
        mb.mem("m", 16, 8);
        mb.connect("m.raddr", firrtl::bits(a, 3, 0));
        mb.connect("m.waddr", firrtl::bits(a, 3, 0));
        mb.connect("m.wdata", a);
        mb.connect("m.wen", firrtl::lit(1, 1));
        // Registered boundary (keeps the cut register-to-register);
        // the memory still sits in the output's transitive cone.
        auto yr = mb.reg("yr", 8, 0);
        mb.connect("yr", mb.sig("m.rdata"));
        mb.connect("y", yr);
    }
    auto top = cb.module("MemTop");
    top.instance("dut", "MemBlk");
    auto c0 = top.reg("c0", 16, 1);
    top.connect("c0",
                firrtl::bits(firrtl::eAdd(c0, firrtl::lit(1, 16)),
                             15, 0));
    top.connect("dut.a", firrtl::bits(c0, 7, 0));
    top.output("status", 16);
    top.connect("status",
                firrtl::bits(firrtl::eXor(c0,
                                          fit(top.sig("dut.y"), 16)),
                             15, 0));
    return cb.finish();
}

/**
 * Three-partition chain with a combinationally-coupled boundary:
 * p1's output toward p2 is a pure function of an input p1 receives
 * from the rest partition. Whoever consumes that output cannot
 * reproduce it locally — the cone reads state delivered by a third
 * partition — so the p1-side channel must be clamped.
 */
firrtl::Circuit
combChainCircuit()
{
    firrtl::CircuitBuilder cb("ChainTop3");
    {
        auto mb = cb.module("CombBlk");
        auto a = mb.input("a", 8);
        mb.output("y", 8);
        mb.connect("y",
                   firrtl::bits(firrtl::eAdd(a, firrtl::lit(1, 8)),
                                7, 0));
    }
    {
        auto mb = cb.module("RegBlk");
        auto b = mb.input("b", 8);
        auto r = mb.reg("r", 8, 0);
        mb.connect("r", b);
        mb.output("z", 8);
        mb.connect("z", r);
    }
    auto top = cb.module("ChainTop3");
    top.instance("m1", "CombBlk");
    top.instance("m2", "RegBlk");
    auto c0 = top.reg("c0", 16, 1);
    top.connect("c0",
                firrtl::bits(firrtl::eAdd(c0, firrtl::lit(1, 16)),
                             15, 0));
    top.connect("m1.a", firrtl::bits(c0, 7, 0));
    top.connect("m2.b", top.sig("m1.y"));
    top.output("status", 16);
    top.connect("status",
                firrtl::bits(
                    firrtl::eXor(c0, fit(top.sig("m2.z"), 16)),
                    15, 0));
    return cb.finish();
}

libdn::Monitor
statusRecorder(std::vector<uint64_t> &out)
{
    return [&out](rtlsim::Simulator &sim, unsigned, uint64_t) {
        out.push_back(sim.peek("status"));
    };
}

/** FNV-1a over every partition's cycle count and full signal
 *  table — equal signatures witness bit-exact final state. */
uint64_t
stateSignature(MultiFpgaSim &sim, size_t nparts)
{
    uint64_t h = 1469598103934665603ull;
    for (size_t p = 0; p < nparts; ++p) {
        auto &m = sim.model(int(p));
        h = recovery::fnv1aMix(h, m.minTargetCycle());
        for (size_t i = 0; i < m.sim().numSignals(); ++i)
            h = recovery::fnv1aMix(h, m.sim().peekIdx(int(i)));
    }
    return h;
}

std::string
tempDir()
{
    char tmpl[] = "/tmp/fireaxe-batch-XXXXXX";
    char *dir = mkdtemp(tmpl);
    EXPECT_NE(dir, nullptr);
    return dir ? std::string(dir) : std::string();
}

} // namespace

// ---------------------------------------------------------------
// Legality analysis: PLAN011 exact-code fixtures
// ---------------------------------------------------------------

TEST(BatchLegality, Fig2ShowcaseIsFullyLegal)
{
    firrtl::Circuit circuit;
    auto plan = fig2Plan(circuit);
    auto report = analyze::analyzeBatchLegality(plan);
    ASSERT_EQ(report.channels.size(), plan.channels.size());
    ASSERT_FALSE(report.channels.empty());
    for (const auto &ch : report.channels) {
        EXPECT_TRUE(ch.legal) << ch.name << ": " << ch.reason;
        EXPECT_EQ(ch.maxBatchDepth, 1024u) << ch.name;
        EXPECT_GT(ch.coneRegBits, 0u) << ch.name;
        EXPECT_LE(ch.coneRegBits, 64u) << ch.name;
    }

    // Requesting any depth across an all-legal plan stays quiet.
    verify::Options opts;
    opts.requestedBatchDepth = 32;
    auto vreport = verify::verifyPlan(plan, opts);
    EXPECT_TRUE(vreport.byCode("PLAN011").empty());
}

TEST(BatchLegality, MemoryBearingConeIsFlaggedPLAN011)
{
    auto circuit = memConeCircuit();
    PartitionSpec spec;
    spec.mode = PartitionMode::Exact;
    spec.groups.push_back({"blk", {"dut"}, 1});
    auto plan = partition(circuit, spec);

    auto legality = analyze::analyzeBatchLegality(plan);
    bool mem_clamped = false, other_legal = false;
    for (const auto &ch : legality.channels) {
        if (!ch.legal) {
            EXPECT_EQ(ch.maxBatchDepth, 1u);
            EXPECT_NE(ch.reason.find("memory"), std::string::npos)
                << ch.reason;
            mem_clamped = true;
        } else {
            EXPECT_EQ(ch.maxBatchDepth, 1024u);
            other_legal = true;
        }
    }
    EXPECT_TRUE(mem_clamped)
        << "no channel was clamped for its memory-bearing cone";
    EXPECT_TRUE(other_legal)
        << "expected a mixed boundary: the counter-driven "
           "channel should stay legal";

    // PLAN011 fires only when batching is actually requested.
    verify::Options quiet;
    auto clean = verify::verifyPlan(plan, quiet);
    EXPECT_TRUE(clean.byCode("PLAN011").empty());
    EXPECT_FALSE(clean.hasErrors());

    verify::Options opts;
    opts.requestedBatchDepth = 8;
    auto report = verify::verifyPlan(plan, opts);
    auto hits = report.byCode("PLAN011");
    ASSERT_FALSE(hits.empty());
    for (const auto &d : hits) {
        EXPECT_NE(d.message.find("batch depth 8 requested"),
                  std::string::npos)
            << d.message;
        EXPECT_NE(d.message.find("runs unbatched"),
                  std::string::npos)
            << d.message;
    }
    // The warning never blocks the run.
    EXPECT_FALSE(report.hasErrors());
}

TEST(BatchLegality, CombinationallyCoupledChainIsFlaggedPLAN011)
{
    auto circuit = combChainCircuit();
    PartitionSpec spec;
    spec.mode = PartitionMode::Exact;
    spec.groups.push_back({"p1", {"m1"}, 1});
    spec.groups.push_back({"p2", {"m2"}, 2});
    auto plan = partition(circuit, spec);
    ASSERT_EQ(plan.partitions.size(), 3u);

    auto legality = analyze::analyzeBatchLegality(plan);
    bool coupled = false;
    for (const auto &ch : legality.channels) {
        if (ch.legal)
            continue;
        EXPECT_EQ(ch.maxBatchDepth, 1u);
        if (ch.reason.find("combinationally-coupled") !=
            std::string::npos) {
            EXPECT_NE(ch.reason.find("delivered by partition"),
                      std::string::npos)
                << ch.reason;
            coupled = true;
        }
    }
    EXPECT_TRUE(coupled)
        << "no channel was clamped for its third-partition "
           "combinational coupling";

    verify::Options opts;
    opts.requestedBatchDepth = 4;
    auto report = verify::verifyPlan(plan, opts);
    EXPECT_FALSE(report.byCode("PLAN011").empty());
    EXPECT_FALSE(report.hasErrors());
}

// ---------------------------------------------------------------
// Auto-clamp on mixed boundaries: the run stays bit-exact
// ---------------------------------------------------------------

TEST(BatchClamp, MixedBoundaryRunsBitExactUnderRequestedDepth)
{
    auto circuit = memConeCircuit();
    PartitionSpec spec;
    spec.mode = PartitionMode::Exact;
    spec.groups.push_back({"blk", {"dut"}, 1});
    auto plan = partition(circuit, spec);
    const uint64_t cycles = 96;

    std::vector<uint64_t> golden;
    runMonolithic(circuit, nullptr, statusRecorder(golden), cycles);
    ASSERT_EQ(golden.size(), cycles);

    // The annotation records the mixed verdicts in the plan itself.
    auto legality = analyze::annotateBatchDepths(plan);
    unsigned legal = 0, clamped = 0;
    for (const auto &ch : plan.channels) {
        if (ch.maxBatchDepth > 1)
            ++legal;
        else
            ++clamped;
    }
    EXPECT_GT(legal, 0u);
    EXPECT_GT(clamped, 0u);
    (void)legality;

    for (auto backend :
         {ExecBackend::Sequential, ExecBackend::Parallel}) {
        MultiFpgaSim sim(plan, u250s(plan.partitions.size(), 50.0),
                         transport::qsfpAurora());
        ExecConfig cfg;
        cfg.backend = backend;
        cfg.batchDepth = 8; // clamped per channel, not rejected
        sim.setExecConfig(cfg);
        std::vector<uint64_t> trace;
        sim.setMonitor(0, statusRecorder(trace));
        auto result = sim.run(cycles);
        ASSERT_FALSE(result.deadlocked);
        ASSERT_GE(trace.size(), golden.size());
        for (size_t i = 0; i < golden.size(); ++i)
            ASSERT_EQ(trace[i], golden[i])
                << "mixed-boundary divergence at cycle " << i;
    }
}

// ---------------------------------------------------------------
// Batched ReliableTokenChannel under fault injection
// ---------------------------------------------------------------

namespace {

/** Push @p count tokens through @p ch, draining as they become
 *  ready; returns the delivered payloads in order. */
std::vector<uint64_t>
pump(libdn::ReliableTokenChannel &ch, uint64_t count)
{
    std::vector<uint64_t> delivered;
    double now = 0.0;
    for (uint64_t i = 0; i < count; ++i) {
        libdn::Token t{i};
        int spins = 0;
        while (!ch.tryEnqTimed(t, now)) {
            now += 50.0;
            EXPECT_LT(++spins, 10000) << "enqueue livelock";
            if (spins >= 10000)
                return delivered;
            while (ch.headReady(now)) {
                delivered.push_back(ch.head()[0]);
                ch.deq();
            }
        }
        now += 50.0;
        while (ch.headReady(now)) {
            delivered.push_back(ch.head()[0]);
            ch.deq();
        }
    }
    for (int spins = 0; delivered.size() < count && spins < 10000;
         ++spins) {
        now += 500.0;
        while (ch.headReady(now)) {
            delivered.push_back(ch.head()[0]);
            ch.deq();
        }
    }
    return delivered;
}

} // namespace

TEST(BatchFault, BatchGranularRetransmitNoDuplicateDelivery)
{
    const uint64_t count = 64;
    transport::FaultConfig fc;
    fc.seed = 7;
    fc.dropRate = 0.25;
    fc.duplicateRate = 0.1;

    // Unbatched twin: same fault schedule config, per-token draws.
    libdn::ReliableTokenChannel flat("ch", 64,
                                     transport::FaultModel(fc), {},
                                     64);
    flat.setTiming(10.0, 100.0);
    auto flat_out = pump(flat, count);
    ASSERT_EQ(flat_out.size(), count);

    libdn::ReliableTokenChannel ch("ch", 64,
                                   transport::FaultModel(fc), {},
                                   64);
    ch.setTiming(10.0, 100.0);
    ch.configureBatching(8, /*payload_ser_ns=*/2.0,
                         /*frame_overhead_ns=*/10.0,
                         /*pipelined=*/true);
    auto out = pump(ch, count);

    // Exactly-once, in-order delivery despite drops and duplicates.
    ASSERT_EQ(out.size(), count);
    for (uint64_t i = 0; i < count; ++i)
        ASSERT_EQ(out[i], i) << "reordered or duplicated delivery";

    auto stats = ch.stats();
    EXPECT_GT(stats.get("tokens_dropped"), 0u)
        << "fault schedule injected nothing; the test is vacuous";
    EXPECT_GT(stats.get("retransmits"), 0u);
    EXPECT_EQ(stats.get("retry_budget_exhausted"), 0u);

    // Batch granularity: only epoch-boundary frames touch the link,
    // so the batched channel sees ~1/8th the fault draws of the
    // unbatched twin — strictly fewer injected drops and strictly
    // fewer recovery rounds under the same schedule.
    auto flat_stats = flat.stats();
    EXPECT_GT(flat_stats.get("tokens_dropped"),
              stats.get("tokens_dropped"));
    EXPECT_GT(flat_stats.get("retransmits"),
              stats.get("retransmits"));
}

// ---------------------------------------------------------------
// Mid-batch snapshot/resume bit-exactness across worker counts
// ---------------------------------------------------------------

TEST(BatchSnapshot, MidBatchResumeBitExactAcrossWorkerCounts)
{
    firrtl::Circuit circuit;
    auto plan = fig2Plan(circuit);
    const uint64_t cycles = 600;
    const uint64_t cut = 301; // deliberately not a depth multiple
    const unsigned depth = 8;

    // Golden: one uninterrupted batched sequential run.
    uint64_t golden_sig = 0;
    std::vector<uint64_t> golden_obs;
    {
        MultiFpgaSim sim(plan, u250s(plan.partitions.size(), 50.0),
                         transport::qsfpAurora());
        ExecConfig cfg;
        cfg.batchDepth = depth;
        sim.setExecConfig(cfg);
        sim.setMonitor(0,
                       [&](rtlsim::Simulator &s, unsigned, uint64_t) {
                           golden_obs.push_back(s.peek("obs_a"));
                       });
        auto r = sim.run(cycles);
        ASSERT_FALSE(r.deadlocked);
        // Settle to cycles + 25 so interrupted runs (whose parallel
        // tail may overshoot) can reach the identical stop point.
        auto rt = sim.run(cycles + 25);
        ASSERT_FALSE(rt.deadlocked);
        golden_sig = stateSignature(sim, plan.partitions.size());
    }

    for (unsigned workers : {0u, 1u, 2u, 4u, 8u}) {
        SCOPED_TRACE("workers=" + std::to_string(workers));
        std::string dir = tempDir();
        std::string error;
        {
            MultiFpgaSim sim(plan,
                             u250s(plan.partitions.size(), 50.0),
                             transport::qsfpAurora());
            ExecConfig cfg;
            cfg.batchDepth = depth;
            sim.setExecConfig(cfg);
            auto r = sim.run(cut);
            ASSERT_FALSE(r.deadlocked);
            ASSERT_TRUE(sim.snapshot(dir, error)) << error;
        }

        MultiFpgaSim sim(plan, u250s(plan.partitions.size(), 50.0),
                         transport::qsfpAurora());
        ExecConfig cfg;
        cfg.backend = workers ? ExecBackend::Parallel
                              : ExecBackend::Sequential;
        cfg.workers = workers;
        cfg.batchDepth = depth;
        sim.setExecConfig(cfg);
        std::vector<std::pair<uint64_t, uint64_t>> obs;
        sim.setMonitor(0,
                       [&](rtlsim::Simulator &s, unsigned,
                           uint64_t cycle) {
                           obs.emplace_back(cycle, s.peek("obs_a"));
                       });
        ASSERT_TRUE(sim.restore(dir, error)) << error;
        auto r = sim.run(cycles);
        ASSERT_FALSE(r.deadlocked);
        // The parallel backend may overshoot; settle with a short
        // sequential tail so the stopping point is deterministic.
        ExecConfig tail = cfg;
        tail.backend = ExecBackend::Sequential;
        sim.setExecConfig(tail);
        auto rt = sim.run(cycles + 25);
        ASSERT_FALSE(rt.deadlocked);

        EXPECT_EQ(stateSignature(sim, plan.partitions.size()),
                  golden_sig);
        ASSERT_FALSE(obs.empty());
        for (const auto &[cycle, value] : obs) {
            if (cycle < golden_obs.size())
                ASSERT_EQ(value, golden_obs[cycle])
                    << "resume divergence at cycle " << cycle;
        }
        fs::remove_all(dir);
    }
}

// ---------------------------------------------------------------
// The headline: batching collapses the fig2 FMR
// ---------------------------------------------------------------

TEST(BatchFmr, Fig2ShowcaseFmrCollapsesAtDepth32)
{
    firrtl::Circuit circuit;
    auto plan = fig2Plan(circuit);
    const uint64_t cycles = 2000;
    const double host_mhz = 50.0;

    auto fmrAt = [&](unsigned depth, uint64_t &sig) {
        MultiFpgaSim sim(plan, u250s(plan.partitions.size(),
                                     host_mhz),
                         transport::qsfpAurora());
        ExecConfig cfg;
        cfg.batchDepth = depth;
        sim.setExecConfig(cfg);
        auto r = sim.run(cycles);
        EXPECT_FALSE(r.deadlocked);
        sig = stateSignature(sim, plan.partitions.size());
        double host_cycles = r.hostTimeNs * host_mhz * 1e-3;
        return host_cycles / double(r.targetCycles);
    };

    uint64_t sig1 = 0, sig32 = 0;
    double fmr1 = fmrAt(1, sig1);
    double fmr32 = fmrAt(32, sig32);

    // Paper regime: unbatched partitioned fig2 pays the full link
    // round trip every target cycle (FMR ~60); depth-32 batching
    // with pipelined epochs amortizes it into single digits.
    EXPECT_GT(fmr1, 30.0);
    EXPECT_LT(fmr32, 10.0);
    EXPECT_GT(fmr1 / fmr32, 5.0);

    // The speedup is free: final state is bit-identical.
    EXPECT_EQ(sig1, sig32);
}
