/**
 * @file
 * Unit tests for the FIRRTL-like IR: expression construction, width
 * inference, reference utilities, builder checks, and the printer.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "firrtl/builder.hh"
#include "firrtl/ir.hh"
#include "firrtl/printer.hh"

using namespace fireaxe;
using namespace fireaxe::firrtl;

TEST(Expr, LiteralTruncatesToWidth)
{
    auto e = lit(0x1ff, 8);
    EXPECT_EQ(e->value, 0xffu);
    EXPECT_EQ(e->width, 8u);
}

TEST(Expr, AddGrowsWidthByOne)
{
    auto e = eAdd(lit(1, 8), lit(2, 8));
    EXPECT_EQ(e->width, 9u);
}

TEST(Expr, AddWidthIsMaxPlusOne)
{
    auto e = eAdd(lit(1, 4), lit(2, 12));
    EXPECT_EQ(e->width, 13u);
}

TEST(Expr, AddWidthCapsAt64)
{
    auto e = eAdd(lit(1, 64), lit(2, 64));
    EXPECT_EQ(e->width, 64u);
}

TEST(Expr, MulWidthIsSumOfWidths)
{
    auto e = eMul(lit(3, 8), lit(3, 8));
    EXPECT_EQ(e->width, 16u);
}

TEST(Expr, ComparisonsAreOneBit)
{
    EXPECT_EQ(eEq(lit(1, 32), lit(1, 32))->width, 1u);
    EXPECT_EQ(eLt(lit(1, 32), lit(1, 32))->width, 1u);
    EXPECT_EQ(eNeq(lit(1, 7), lit(1, 9))->width, 1u);
}

TEST(Expr, ReductionsAreOneBit)
{
    EXPECT_EQ(unOp(UnOpKind::OrR, lit(5, 16))->width, 1u);
    EXPECT_EQ(unOp(UnOpKind::AndR, lit(5, 16))->width, 1u);
    EXPECT_EQ(unOp(UnOpKind::XorR, lit(5, 16))->width, 1u);
}

TEST(Expr, BitsWidth)
{
    auto e = bits(lit(0xab, 8), 7, 4);
    EXPECT_EQ(e->width, 4u);
}

TEST(Expr, CatWidthIsSum)
{
    auto e = cat(lit(1, 4), lit(2, 12));
    EXPECT_EQ(e->width, 16u);
}

TEST(Expr, MuxWidthIsMaxOfArms)
{
    auto e = mux(lit(1, 1), lit(1, 4), lit(2, 9));
    EXPECT_EQ(e->width, 9u);
}

TEST(Expr, CollectRefsFindsAllLeaves)
{
    auto e = eAdd(ref("a", 8), mux(ref("s", 1), ref("b", 8),
                                   lit(0, 8)));
    std::vector<std::string> refs;
    collectRefs(e, refs);
    ASSERT_EQ(refs.size(), 3u);
    EXPECT_EQ(refs[0], "a");
    EXPECT_EQ(refs[1], "s");
    EXPECT_EQ(refs[2], "b");
}

TEST(Expr, RenameRefsRewritesMatchingLeaves)
{
    auto e = eAdd(ref("a", 8), ref("b", 8));
    auto r = renameRefs(e, {{"a", "x"}});
    std::vector<std::string> refs;
    collectRefs(r, refs);
    EXPECT_EQ(refs[0], "x");
    EXPECT_EQ(refs[1], "b");
    // Original untouched.
    refs.clear();
    collectRefs(e, refs);
    EXPECT_EQ(refs[0], "a");
}

TEST(SplitRef, LocalAndOwnerField)
{
    auto [o1, f1] = splitRef("sig");
    EXPECT_EQ(o1, "");
    EXPECT_EQ(f1, "sig");
    auto [o2, f2] = splitRef("inst.port");
    EXPECT_EQ(o2, "inst");
    EXPECT_EQ(f2, "port");
}

namespace {

/** A 2-entry ready-valid queue used by several tests. */
Circuit
buildQueueCircuit()
{
    CircuitBuilder cb("Top");
    auto q = cb.module("Queue");
    auto enq_valid = q.input("enq_valid", 1);
    auto enq_bits = q.input("enq_bits", 8);
    q.output("enq_ready", 1);
    q.output("deq_valid", 1);
    q.output("deq_bits", 8);
    auto deq_ready = q.input("deq_ready", 1);

    auto data0 = q.reg("data0", 8);
    auto full = q.reg("full", 1);
    auto do_enq = q.wire("do_enq", 1);
    auto do_deq = q.wire("do_deq", 1);

    q.connect("enq_ready", eNot(full));
    q.connect("deq_valid", full);
    q.connect("deq_bits", data0);
    q.connect(do_enq, eAnd(enq_valid, eNot(full)));
    q.connect(do_deq, eAnd(deq_ready, full));
    q.connect("full", mux(do_enq, lit(1, 1),
                          mux(do_deq, lit(0, 1), full)));
    q.connect("data0", mux(do_enq, enq_bits, data0));

    auto top = cb.module("Top");
    auto in_valid = top.input("in_valid", 1);
    auto in_bits = top.input("in_bits", 8);
    top.output("in_ready", 1);
    top.output("out_valid", 1);
    top.output("out_bits", 8);
    auto out_ready = top.input("out_ready", 1);
    top.instance("q0", "Queue");
    top.connect("q0.enq_valid", in_valid);
    top.connect("q0.enq_bits", in_bits);
    top.connect("in_ready", top.sig("q0.enq_ready"));
    top.connect("out_valid", top.sig("q0.deq_valid"));
    top.connect("out_bits", top.sig("q0.deq_bits"));
    top.connect("q0.deq_ready", out_ready);
    return cb.finish();
}

} // namespace

TEST(Builder, BuildsHierarchyAndResolvesWidths)
{
    Circuit c = buildQueueCircuit();
    EXPECT_EQ(c.topName, "Top");
    EXPECT_EQ(c.modules.size(), 2u);
    const Module &top = c.top();
    EXPECT_EQ(top.instances.size(), 1u);
    SignalInfo info = top.resolve(c, "q0.deq_bits");
    EXPECT_EQ(info.kind, SignalKind::InstOut);
    EXPECT_EQ(info.width, 8u);
}

TEST(Builder, TopoOrderPutsChildrenFirst)
{
    Circuit c = buildQueueCircuit();
    auto order = c.topoOrder();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], "Queue");
    EXPECT_EQ(order[1], "Top");
}

TEST(Builder, RejectsUndefinedChildModule)
{
    CircuitBuilder cb("T");
    auto m = cb.module("T");
    EXPECT_THROW(m.instance("x", "Nope"), FatalError);
}

TEST(Builder, RejectsConnectToUnknownSignal)
{
    CircuitBuilder cb("T");
    auto m = cb.module("T");
    m.output("o", 4);
    EXPECT_THROW(m.connect("nope", lit(0, 4)), FatalError);
}

TEST(Builder, RejectsDuplicateModule)
{
    CircuitBuilder cb("T");
    cb.module("A");
    EXPECT_THROW(cb.module("A"), FatalError);
}

TEST(Verify, RejectsMultipleDrivers)
{
    CircuitBuilder cb("T");
    auto m = cb.module("T");
    m.output("o", 4);
    m.connect("o", lit(1, 4));
    m.connect("o", lit(2, 4));
    EXPECT_THROW(cb.finish(), FatalError);
}

TEST(Verify, RejectsUndrivenOutput)
{
    CircuitBuilder cb("T");
    auto m = cb.module("T");
    m.output("o", 4);
    EXPECT_THROW(cb.finish(), FatalError);
}

TEST(Verify, RejectsUndrivenWire)
{
    CircuitBuilder cb("T");
    auto m = cb.module("T");
    m.output("o", 4);
    m.wire("w", 4);
    m.connect("o", lit(0, 4));
    EXPECT_THROW(cb.finish(), FatalError);
}

TEST(Verify, AllowsUndrivenRegisterAndMemWritePort)
{
    CircuitBuilder cb("T");
    auto m = cb.module("T");
    m.output("o", 4);
    m.reg("r", 4, 7);
    m.mem("m", 16, 4);
    m.connect("m.raddr", lit(0, 4));
    m.connect("o", eAnd(m.sig("r"), m.sig("m.rdata")));
    EXPECT_NO_THROW(cb.finish());
}

TEST(Verify, RejectsDanglingReadyValidAnnotation)
{
    CircuitBuilder cb("T");
    auto m = cb.module("T");
    m.output("o", 1);
    m.connect("o", lit(0, 1));
    m.annotateReadyValid({"bus", "valid_nope", "ready_nope", {}, true});
    EXPECT_THROW(cb.finish(), FatalError);
}

TEST(Printer, RoundTripsStructure)
{
    Circuit c = buildQueueCircuit();
    std::string text = circuitToString(c);
    EXPECT_NE(text.find("module Queue :"), std::string::npos);
    EXPECT_NE(text.find("module Top :"), std::string::npos);
    EXPECT_NE(text.find("inst q0 of Queue"), std::string::npos);
    EXPECT_NE(text.find("reg full : UInt<1>"), std::string::npos);
    EXPECT_NE(text.find("out_bits <= q0.deq_bits"), std::string::npos);
}

TEST(Printer, ExprFormats)
{
    EXPECT_EQ(printExpr(eAdd(ref("a", 4), lit(3, 4))),
              "add(a, UInt<4>(3))");
    EXPECT_EQ(printExpr(mux(ref("s", 1), ref("t", 2), ref("f", 2))),
              "mux(s, t, f)");
    EXPECT_EQ(printExpr(bits(ref("x", 8), 7, 4)), "bits(x, 7, 4)");
}
