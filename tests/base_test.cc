/**
 * @file
 * Tests for the base utilities: bit manipulation, the deterministic
 * PRNG, statistics containers, table rendering, and the
 * logging/error primitives.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "base/bits.hh"
#include "base/logging.hh"
#include "base/random.hh"
#include "base/stats.hh"
#include "base/table.hh"

using namespace fireaxe;

TEST(Bits, MaskBoundaries)
{
    EXPECT_EQ(bitMask(1), 1u);
    EXPECT_EQ(bitMask(8), 0xffu);
    EXPECT_EQ(bitMask(63), 0x7fffffffffffffffull);
    EXPECT_EQ(bitMask(64), ~uint64_t(0));
    EXPECT_EQ(bitMask(0), 0u);
}

TEST(Bits, MaskRejectsOverwide)
{
    EXPECT_THROW(bitMask(65), PanicError);
}

TEST(Bits, TruncateKeepsLowBits)
{
    EXPECT_EQ(truncate(0x1234, 8), 0x34u);
    EXPECT_EQ(truncate(0xffffffffffffffffull, 64),
              0xffffffffffffffffull);
    EXPECT_EQ(truncate(5, 1), 1u);
}

TEST(Bits, ExtractRanges)
{
    EXPECT_EQ(extractBits(0xabcd, 15, 8), 0xabu);
    EXPECT_EQ(extractBits(0xabcd, 7, 0), 0xcdu);
    EXPECT_EQ(extractBits(0x8000000000000000ull, 63, 63), 1u);
    EXPECT_THROW(extractBits(1, 3, 5), PanicError);
}

TEST(Bits, BitsNeeded)
{
    EXPECT_EQ(bitsNeeded(0), 1u);
    EXPECT_EQ(bitsNeeded(1), 1u);
    EXPECT_EQ(bitsNeeded(2), 2u);
    EXPECT_EQ(bitsNeeded(255), 8u);
    EXPECT_EQ(bitsNeeded(256), 9u);
}

TEST(Bits, CeilDiv)
{
    EXPECT_EQ(ceilDiv(0, 4), 0u);
    EXPECT_EQ(ceilDiv(1, 4), 1u);
    EXPECT_EQ(ceilDiv(4, 4), 1u);
    EXPECT_EQ(ceilDiv(5, 4), 2u);
    EXPECT_THROW(ceilDiv(1, 0), PanicError);
}

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    bool differs = false;
    Rng a2(42);
    for (int i = 0; i < 100; ++i)
        differs = differs || a2.next() != c.next();
    EXPECT_TRUE(differs);
}

TEST(Rng, RangeBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        uint64_t v = rng.range(10, 20);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 20u);
    }
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(8);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceFrequency)
{
    Rng rng(9);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(Rng, GeometricMean)
{
    Rng rng(10);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i)
        sum += double(rng.geometric(6.0));
    EXPECT_NEAR(sum / 20000.0, 6.0, 0.35);
    EXPECT_EQ(rng.geometric(0.5), 1u); // degenerate mean clamps
}

TEST(Stats, RunningStatBasics)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    s.sample(2.0);
    s.sample(4.0);
    s.sample(9.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
}

TEST(Stats, DistributionPercentiles)
{
    Distribution d;
    for (int i = 1; i <= 100; ++i)
        d.sample(double(i));
    EXPECT_DOUBLE_EQ(d.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(d.percentile(100.0), 100.0);
    EXPECT_NEAR(d.percentile(50.0), 50.0, 1.0);
    EXPECT_NEAR(d.percentile(95.0), 95.0, 1.0);
    EXPECT_NEAR(d.percentile(99.0), 99.0, 1.0);
    EXPECT_THROW(d.percentile(101.0), PanicError);
}

TEST(Stats, DistributionEmptyIsZero)
{
    Distribution d;
    EXPECT_EQ(d.percentile(99.0), 0.0);
    EXPECT_EQ(d.mean(), 0.0);
}

TEST(Stats, CounterSetAccumulates)
{
    CounterSet c;
    c.add("a");
    c.add("a", 4);
    c.add("b", 2);
    EXPECT_EQ(c.get("a"), 5u);
    EXPECT_EQ(c.get("b"), 2u);
    EXPECT_EQ(c.get("missing"), 0u);
    EXPECT_EQ(c.total(), 7u);
    c.reset();
    EXPECT_EQ(c.total(), 0u);
}

TEST(Table, AlignsColumnsAndCountsRows)
{
    TextTable t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer-name", "2"});
    EXPECT_EQ(t.rowCount(), 2u);
    std::ostringstream os;
    t.print(os);
    std::string text = os.str();
    EXPECT_NE(text.find("longer-name"), std::string::npos);
    EXPECT_NE(text.find("-----"), std::string::npos);
    // Header and both rows on separate lines.
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
}

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::num(1.0, 0), "1");
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("boom ", 42), FatalError);
    try {
        fatal("code=", 7, " reason=", "x");
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "code=7 reason=x");
    }
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("invariant"), PanicError);
}

TEST(Logging, AssertMacroFiresOnlyWhenFalse)
{
    EXPECT_NO_THROW(FIREAXE_ASSERT(1 + 1 == 2, "fine"));
    EXPECT_THROW(FIREAXE_ASSERT(false, "nope ", 3), PanicError);
}
