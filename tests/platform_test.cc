/**
 * @file
 * End-to-end tests of the multi-FPGA executor: exact-mode cycle
 * exactness against the monolithic golden simulation, fast-mode
 * behaviour with and without the ready-valid transform, transport
 * timing effects, FAME-5 cost accounting, and FPGA fit checks.
 */

#include <gtest/gtest.h>

#include <vector>

#include "base/logging.hh"
#include "firrtl/builder.hh"
#include "platform/executor.hh"
#include "platform/fpga.hh"
#include "ripper/partition.hh"
#include "target/bus_soc.hh"
#include "target/paper_examples.hh"
#include "transport/link.hh"

using namespace fireaxe;
using namespace fireaxe::platform;
using namespace fireaxe::ripper;

namespace {

std::vector<FpgaSpec>
u250s(size_t n, double mhz)
{
    return std::vector<FpgaSpec>(n, alveoU250(mhz));
}

/** Record a named signal of partition 0 on every target cycle. */
libdn::Monitor
recorder(std::vector<uint64_t> &out, const std::string &signal)
{
    return [&out, signal](rtlsim::Simulator &sim, unsigned,
                          uint64_t) {
        out.push_back(sim.peek(signal));
    };
}

} // namespace

TEST(Executor, Fig2ExactModeIsCycleExact)
{
    auto target = target::buildFig2Target();
    const uint64_t cycles = 300;

    std::vector<uint64_t> mono;
    runMonolithic(target,
                  nullptr,
                  recorder(mono, "obs_a"),
                  cycles);

    PartitionSpec spec;
    spec.mode = PartitionMode::Exact;
    spec.groups.push_back({"blockB", {"blockB"}, 1});
    auto plan = partition(target, spec);

    MultiFpgaSim sim(plan, u250s(2, 30.0), transport::qsfpAurora());
    std::vector<uint64_t> part;
    sim.setMonitor(0, recorder(part, "obs_a"));
    auto result = sim.run(cycles);

    EXPECT_FALSE(result.deadlocked);
    EXPECT_GE(result.targetCycles, cycles);
    ASSERT_GE(part.size(), mono.size());
    for (size_t i = 0; i < mono.size(); ++i)
        ASSERT_EQ(part[i], mono[i]) << "divergence at cycle " << i;
}

TEST(Executor, BusSocExactModeIsCycleExact)
{
    target::BusSocConfig cfg;
    cfg.numTiles = 3;
    cfg.memWords = 256;
    auto soc = target::buildBusSoc(cfg);
    const uint64_t cycles = 400;

    std::vector<uint64_t> mono;
    runMonolithic(soc, nullptr, recorder(mono, "status"), cycles);
    // The workload must actually be non-trivial.
    EXPECT_NE(mono.front(), mono.back());

    PartitionSpec spec;
    spec.mode = PartitionMode::Exact;
    spec.groups.push_back({"tiles", {"tile0", "tile1"}, 1});
    auto plan = partition(soc, spec);

    MultiFpgaSim sim(plan, u250s(2, 50.0), transport::qsfpAurora());
    std::vector<uint64_t> part;
    sim.setMonitor(0, recorder(part, "status"));
    auto result = sim.run(cycles);

    EXPECT_FALSE(result.deadlocked);
    ASSERT_GE(part.size(), mono.size());
    for (size_t i = 0; i < mono.size(); ++i)
        ASSERT_EQ(part[i], mono[i]) << "divergence at cycle " << i;
}

TEST(Executor, ThreeWayPartitionStaysExact)
{
    target::BusSocConfig cfg;
    cfg.numTiles = 4;
    cfg.memWords = 256;
    auto soc = target::buildBusSoc(cfg);
    const uint64_t cycles = 250;

    std::vector<uint64_t> mono;
    runMonolithic(soc, nullptr, recorder(mono, "status"), cycles);

    PartitionSpec spec;
    spec.mode = PartitionMode::Exact;
    spec.groups.push_back({"t01", {"tile0", "tile1"}, 1});
    spec.groups.push_back({"t23", {"tile2", "tile3"}, 1});
    auto plan = partition(soc, spec);
    ASSERT_EQ(plan.partitions.size(), 3u);

    MultiFpgaSim sim(plan, u250s(3, 40.0), transport::qsfpAurora());
    std::vector<uint64_t> part;
    sim.setMonitor(0, recorder(part, "status"));
    auto result = sim.run(cycles);

    EXPECT_FALSE(result.deadlocked);
    ASSERT_GE(part.size(), mono.size());
    for (size_t i = 0; i < mono.size(); ++i)
        ASSERT_EQ(part[i], mono[i]) << "divergence at cycle " << i;
}

TEST(Executor, Fig3FastModePreservesTransactions)
{
    // With the ready-valid transform, fast-mode must not duplicate
    // or drop transactions, only shift them in time: all 64 items
    // arrive exactly once (checksum of 0..63 = 2016).
    auto target = target::buildFig3Target();
    PartitionSpec spec;
    spec.mode = PartitionMode::Fast;
    spec.groups.push_back({"consumer", {"consumer"}, 1});
    auto plan = partition(target, spec);

    MultiFpgaSim sim(plan, u250s(2, 30.0), transport::qsfpAurora());
    auto result = sim.run(600);
    EXPECT_FALSE(result.deadlocked);

    auto &consumer = sim.model(1).sim();
    EXPECT_EQ(consumer.peek("consumer/acc_count"), 64u);
    EXPECT_EQ(consumer.peek("consumer/acc_sum"), 2016u);
}

TEST(Executor, Fig3FastModeIsCycleApproximate)
{
    // Fast-mode completion time differs from the monolithic run by a
    // small bounded error (Table II): the injected boundary latency
    // plus the skid buffer shift completion by a few cycles.
    auto target = target::buildFig3Target();

    uint64_t mono_done = 0;
    {
        std::vector<uint64_t> accepted;
        runMonolithic(target, nullptr, recorder(accepted, "accepted"),
                      600);
        for (size_t i = 0; i < accepted.size(); ++i) {
            if (accepted[i] == 64) {
                mono_done = i;
                break;
            }
        }
        ASSERT_GT(mono_done, 0u);
    }

    PartitionSpec spec;
    spec.mode = PartitionMode::Fast;
    spec.groups.push_back({"consumer", {"consumer"}, 1});
    auto plan = partition(target, spec);

    MultiFpgaSim sim(plan, u250s(2, 30.0), transport::qsfpAurora());
    uint64_t part_done = 0;
    sim.setMonitor(1, [&](rtlsim::Simulator &s, unsigned,
                          uint64_t cycle) {
        if (part_done == 0 && s.peek("consumer/acc_count") == 64)
            part_done = cycle;
    });
    auto result = sim.run(600);
    EXPECT_FALSE(result.deadlocked);
    ASSERT_GT(part_done, 0u);

    EXPECT_NE(part_done, mono_done); // approximate, not exact
    double err = std::abs(double(part_done) - double(mono_done)) /
                 double(mono_done);
    EXPECT_LT(err, 0.30); // bounded error
}

TEST(Executor, FastModeIsFasterThanExactMode)
{
    auto target = target::buildFig2Target();
    const uint64_t cycles = 400;

    auto rate = [&](PartitionMode mode) {
        PartitionSpec spec;
        spec.mode = mode;
        spec.groups.push_back({"blockB", {"blockB"}, 1});
        auto plan = partition(target, spec);
        MultiFpgaSim sim(plan, u250s(2, 60.0),
                         transport::qsfpAurora());
        auto result = sim.run(cycles);
        EXPECT_FALSE(result.deadlocked);
        return result.simRateMhz();
    };

    double exact = rate(PartitionMode::Exact);
    double fast = rate(PartitionMode::Fast);
    EXPECT_GT(fast, exact * 1.5); // ~2x in the paper
    EXPECT_LT(fast, exact * 3.0);
}

TEST(Executor, QsfpBeatsPcieBeatsHostPcie)
{
    auto target = target::buildFig2Target();
    PartitionSpec spec;
    spec.mode = PartitionMode::Exact;
    spec.groups.push_back({"blockB", {"blockB"}, 1});
    auto plan = partition(target, spec);

    auto rate = [&](const transport::LinkParams &link,
                    uint64_t cycles) {
        MultiFpgaSim sim(plan, u250s(2, 60.0), link);
        // This test validates the per-cycle transport cost model;
        // depth-N batching (e.g. from FIREAXE_BATCH_DEPTH in a CI
        // sweep) deliberately hides exactly that cost.
        ExecConfig exec;
        exec.batchDepth = 1;
        sim.setExecConfig(exec);
        auto result = sim.run(cycles);
        EXPECT_FALSE(result.deadlocked);
        return result.simRateMhz();
    };

    double qsfp = rate(transport::qsfpAurora(), 300);
    double pcie = rate(transport::pciePeerToPeer(), 300);
    double host = rate(transport::hostManagedPcie(), 50);
    EXPECT_GT(qsfp, pcie);
    EXPECT_GT(pcie, host * 5);
    // Host-managed PCIe lands in the tens-of-kHz regime (§IV-A).
    EXPECT_LT(host, 0.1);
    EXPECT_GT(host, 0.001);
}

TEST(Executor, HigherBitstreamFrequencyImprovesRate)
{
    auto target = target::buildFig2Target();
    PartitionSpec spec;
    spec.mode = PartitionMode::Exact;
    spec.groups.push_back({"blockB", {"blockB"}, 1});
    auto plan = partition(target, spec);

    auto rate = [&](double mhz) {
        MultiFpgaSim sim(plan, u250s(2, mhz),
                         transport::qsfpAurora());
        return sim.run(300).simRateMhz();
    };
    EXPECT_GT(rate(90.0), rate(10.0));
}

TEST(Executor, Fame5ChargesHostCyclesPerThread)
{
    // A FAME-5 partition with N threads needs ~N host cycles per
    // target cycle; with communication latency dominating, the
    // degradation from 1 to 4 threads stays well under 4x (§VI-B).
    target::BusSocConfig cfg;
    cfg.numTiles = 4;
    cfg.memWords = 256;
    auto soc = target::buildBusSoc(cfg);

    auto rate = [&](unsigned threads) {
        PartitionSpec spec;
        spec.mode = PartitionMode::Exact;
        PartitionGroupSpec g{"tiles",
                             {"tile0", "tile1", "tile2", "tile3"},
                             threads};
        spec.groups.push_back(g);
        auto plan = partition(soc, spec);
        MultiFpgaSim sim(plan, u250s(2, 15.0),
                         transport::qsfpAurora());
        auto result = sim.run(200);
        EXPECT_FALSE(result.deadlocked);
        return result.simRateMhz();
    };

    double single = rate(1);
    double threaded = rate(4);
    EXPECT_LT(threaded, single);
    EXPECT_GT(threaded, single / 4.0); // latency amortization
}

TEST(Executor, CheckFitFlagsOversizedPartition)
{
    target::BusSocConfig cfg;
    cfg.numTiles = 2;
    auto plan = partition(
        target::buildBusSoc(cfg),
        {PartitionMode::Exact, {{"t0", {"tile0"}, 1}}});

    // A toy FPGA with almost no LUTs cannot host the tile.
    FpgaSpec tiny{"tiny", 30.0, 10, 10, 1};
    MultiFpgaSim sim(plan, {tiny, tiny}, transport::qsfpAurora());
    EXPECT_FALSE(sim.checkFit(false));
    EXPECT_THROW(sim.checkFit(true), FatalError);

    MultiFpgaSim big(plan, u250s(2, 30.0), transport::qsfpAurora());
    EXPECT_TRUE(big.checkFit(true));
}

TEST(Executor, StopConditionEndsRunEarly)
{
    auto target = target::buildFig2Target();
    PartitionSpec spec;
    spec.mode = PartitionMode::Exact;
    spec.groups.push_back({"blockB", {"blockB"}, 1});
    auto plan = partition(target, spec);

    MultiFpgaSim sim(plan, u250s(2, 30.0), transport::qsfpAurora());
    uint64_t seen = 0;
    sim.setMonitor(0, [&](rtlsim::Simulator &, unsigned,
                          uint64_t cycle) { seen = cycle; });
    sim.init();
    sim.setStopCondition([&]() { return seen >= 50; });
    auto result = sim.run(100000);
    EXPECT_TRUE(result.stopped);
    EXPECT_LT(result.targetCycles, 1000u);
}

TEST(Executor, MismatchedFpgaCountRejected)
{
    auto plan = partition(
        target::buildFig2Target(),
        {PartitionMode::Exact, {{"blockB", {"blockB"}, 1}}});
    EXPECT_THROW(
        MultiFpgaSim(plan, u250s(3, 30.0), transport::qsfpAurora()),
        FatalError);
}
