/**
 * @file
 * Tests of the coordinated crash-consistent recovery subsystem
 * (src/recovery) and its executor integration: the durable
 * SnapshotStore commit protocol (torn writes, corrupted shards,
 * stale generations), whole-run snapshot/restore bit-exactness
 * across backends, worker counts and eval engines (including under
 * fault injection), the acquire/rollback recovery-point seam, and
 * single-partition restart with inbound-token replay.
 *
 * The recurring assertion shape: an interrupted-and-recovered run
 * must be indistinguishable — per-cycle monitor observations and
 * final simulator state — from an uninterrupted golden run.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "platform/executor.hh"
#include "platform/fpga.hh"
#include "recovery/recovery.hh"
#include "recovery/snapshot.hh"
#include "ripper/partition.hh"
#include "rtlsim/engine.hh"
#include "target/bus_soc.hh"
#include "transport/fault.hh"
#include "transport/link.hh"

using namespace fireaxe;
using namespace fireaxe::platform;
using namespace fireaxe::ripper;

namespace fs = std::filesystem;

namespace {

std::vector<FpgaSpec>
u250s(size_t n, double mhz)
{
    return std::vector<FpgaSpec>(n, alveoU250(mhz));
}

firrtl::Circuit
fourTileSoc()
{
    target::BusSocConfig cfg;
    cfg.numTiles = 4;
    cfg.memWords = 256;
    return target::buildBusSoc(cfg);
}

/** Three-partition plan of a four-tile bus SoC. */
PartitionPlan
threeWayPlan(const firrtl::Circuit &soc)
{
    PartitionSpec spec;
    spec.mode = PartitionMode::Exact;
    spec.groups.push_back({"t01", {"tile0", "tile1"}, 1});
    spec.groups.push_back({"t23", {"tile2", "tile3"}, 1});
    return partition(soc, spec);
}

/** Per-cycle observation map of one partition's full signal-table
 *  hash. A map (not a vector) so an interrupted run's suffix can be
 *  compared against a golden full run cycle-by-cycle, and so a
 *  re-executed cycle with a *different* value is caught even if
 *  monitor suppression were broken. */
using CycleTrace = std::map<uint64_t, uint64_t>;

libdn::Monitor
recorder(CycleTrace &out)
{
    return [&out](rtlsim::Simulator &sim, unsigned thread,
                  uint64_t cycle) {
        uint64_t v = recovery::fnv1aMix(1469598103934665603ull,
                                        thread);
        for (size_t i = 0; i < sim.numSignals(); ++i)
            v = recovery::fnv1aMix(v, sim.peekIdx(int(i)));
        auto it = out.find(cycle);
        if (it != out.end()) {
            ASSERT_EQ(it->second, v)
                << "re-observation of cycle " << cycle
                << " changed value";
        }
        out[cycle] = v;
    };
}

/** FNV-1a over every partition's cycle count and full signal
 *  table — equal signatures witness bit-exact final state. */
uint64_t
stateSignature(MultiFpgaSim &sim, size_t nparts)
{
    uint64_t h = 1469598103934665603ull;
    for (size_t p = 0; p < nparts; ++p) {
        auto &m = sim.model(int(p));
        h = recovery::fnv1aMix(h, m.minTargetCycle());
        for (size_t i = 0; i < m.sim().numSignals(); ++i)
            h = recovery::fnv1aMix(h, m.sim().peekIdx(int(i)));
    }
    return h;
}

/** Fresh private snapshot directory for one test. */
std::string
tempDir()
{
    char tmpl[] = "/tmp/fireaxe-recovery-XXXXXX";
    char *dir = mkdtemp(tmpl);
    EXPECT_NE(dir, nullptr);
    return dir ? std::string(dir) : std::string();
}

/** Assert that every cycle @p got observed has the golden value. */
void
expectTraceSubset(const CycleTrace &golden, const CycleTrace &got)
{
    for (const auto &[cycle, value] : got) {
        auto it = golden.find(cycle);
        ASSERT_NE(it, golden.end())
            << "cycle " << cycle << " not in the golden trace";
        ASSERT_EQ(value, it->second)
            << "divergence at cycle " << cycle;
    }
}

/**
 * The parallel backend may overshoot the target by a wall-clock-
 * dependent handful of cycles (documented; every executed cycle is
 * still bit-exact). Final-state comparisons therefore first bring
 * the run to a deterministic point with a short single-threaded
 * tail: the sequential loop's stopping point depends only on the
 * (bit-exact) host-time trajectory, not on thread timing.
 */
void
settle(MultiFpgaSim &sim, uint64_t cycles)
{
    ExecConfig exec = sim.execConfig();
    exec.backend = ExecBackend::Sequential;
    exec.snapshotEveryCycles = 0;
    sim.setExecConfig(exec);
    auto r = sim.run(cycles);
    EXPECT_FALSE(r.deadlocked);
}

struct GoldenRun
{
    CycleTrace trace0, trace1;
    uint64_t signature = 0;
    RunResult result;
};

/** Uninterrupted reference run of the three-way plan. The signature
 *  is taken after a settle to cycles + 25; recovered runs must
 *  settle to the same point before comparing. */
GoldenRun
goldenRun(const firrtl::Circuit &soc, const ExecConfig &exec,
          uint64_t cycles,
          const transport::FaultConfig *faults = nullptr)
{
    auto plan = threeWayPlan(soc);
    MultiFpgaSim sim(plan, u250s(plan.partitions.size(), 50.0),
                     transport::qsfpAurora());
    if (faults)
        sim.setFaultModel(*faults);
    sim.setExecConfig(exec);
    GoldenRun g;
    sim.setMonitor(0, recorder(g.trace0));
    sim.setMonitor(1, recorder(g.trace1));
    g.result = sim.run(cycles);
    settle(sim, cycles + 25);
    g.signature = stateSignature(sim, plan.partitions.size());
    return g;
}

} // namespace

// ---------------------------------------------------------------
// SnapshotStore: durable commit protocol
// ---------------------------------------------------------------

TEST(SnapshotStore, CommitLoadRoundTripAndGenerations)
{
    std::string dir = tempDir();
    recovery::SnapshotStore store(dir);
    EXPECT_FALSE(store.hasSnapshot());

    recovery::Manifest m;
    m.designHash = 0x1111;
    m.planHash = 0x2222;
    m.engine = "interpret";
    m.targetCycle = 100;
    m.numPartitions = 2;
    m.numChannels = 1;
    std::vector<std::string> payloads = {"alpha", "bravo",
                                         "charlie"};
    uint64_t bytes = 0;
    std::string error;
    ASSERT_TRUE(store.commit(m, payloads, bytes, error)) << error;
    EXPECT_EQ(m.generation, 1u);
    EXPECT_GE(bytes, 15u);
    EXPECT_TRUE(store.hasSnapshot());

    recovery::Manifest in;
    ASSERT_TRUE(store.loadManifest(in, error)) << error;
    EXPECT_EQ(in.generation, 1u);
    EXPECT_EQ(in.designHash, 0x1111u);
    EXPECT_EQ(in.planHash, 0x2222u);
    EXPECT_EQ(in.engine, "interpret");
    EXPECT_EQ(in.targetCycle, 100u);
    ASSERT_EQ(in.shards.size(), 3u);
    for (size_t i = 0; i < payloads.size(); ++i) {
        std::string payload;
        ASSERT_TRUE(store.readShard(in, i, payload, error)) << error;
        EXPECT_EQ(payload, payloads[i]);
    }

    // A second commit bumps the generation; the reader follows.
    payloads[0] = "delta";
    recovery::Manifest m2 = m;
    ASSERT_TRUE(store.commit(m2, payloads, bytes, error)) << error;
    EXPECT_EQ(m2.generation, 2u);
    ASSERT_TRUE(store.loadManifest(in, error)) << error;
    EXPECT_EQ(in.generation, 2u);
    std::string payload;
    ASSERT_TRUE(store.readShard(in, 0, payload, error)) << error;
    EXPECT_EQ(payload, "delta");
    fs::remove_all(dir);
}

TEST(SnapshotStore, TornWriteLeavesPreviousGenerationCommitted)
{
    std::string dir = tempDir();
    recovery::SnapshotStore store(dir);
    recovery::Manifest m;
    m.numPartitions = 1;
    m.numChannels = 0;
    std::vector<std::string> payloads = {"part", "exec"};
    uint64_t bytes = 0;
    std::string error;
    ASSERT_TRUE(store.commit(m, payloads, bytes, error)) << error;

    // A crash mid-snapshot leaves partial next-generation shards and
    // a dangling manifest temp file; neither may damage generation 1.
    std::ofstream(dir + "/part0.g2.shard") << "torn garb";
    std::ofstream(dir + "/manifest.fasnap.tmp") << "half a mani";

    recovery::Manifest in;
    ASSERT_TRUE(store.loadManifest(in, error)) << error;
    EXPECT_EQ(in.generation, 1u);
    std::string payload;
    ASSERT_TRUE(store.readShard(in, 0, payload, error)) << error;
    EXPECT_EQ(payload, "part");
    fs::remove_all(dir);
}

TEST(SnapshotStore, CorruptedShardIsAStructuredError)
{
    std::string dir = tempDir();
    recovery::SnapshotStore store(dir);
    recovery::Manifest m;
    m.numPartitions = 1;
    m.numChannels = 0;
    std::vector<std::string> payloads = {"precious state", "exec"};
    uint64_t bytes = 0;
    std::string error;
    ASSERT_TRUE(store.commit(m, payloads, bytes, error)) << error;

    recovery::Manifest in;
    ASSERT_TRUE(store.loadManifest(in, error)) << error;
    {
        // Flip one byte of a committed shard in place.
        std::fstream f(dir + "/" + in.shards[0].file,
                       std::ios::in | std::ios::out |
                           std::ios::binary);
        f.seekp(3);
        f.put('X');
    }
    std::string payload;
    EXPECT_FALSE(store.readShard(in, 0, payload, error));
    EXPECT_NE(error.find("CRC"), std::string::npos) << error;
    fs::remove_all(dir);
}

// ---------------------------------------------------------------
// Whole-run snapshot/restore: bit-exact resume
// ---------------------------------------------------------------

namespace {

/** Interrupt a run at @p cut cycles, snapshot, restore into a brand
 *  new executor (possibly different backend/engine), finish to
 *  @p cycles, and compare against the golden uninterrupted run. */
void
roundTrip(const firrtl::Circuit &soc, const ExecConfig &first,
          const ExecConfig &second, uint64_t cut, uint64_t cycles,
          const transport::FaultConfig *faults = nullptr)
{
    GoldenRun golden = goldenRun(soc, first, cycles, faults);
    ASSERT_FALSE(golden.result.deadlocked);

    std::string dir = tempDir();
    std::string error;
    auto plan = threeWayPlan(soc);
    {
        MultiFpgaSim sim(plan, u250s(plan.partitions.size(), 50.0),
                         transport::qsfpAurora());
        if (faults)
            sim.setFaultModel(*faults);
        sim.setExecConfig(first);
        auto r = sim.run(cut);
        ASSERT_FALSE(r.deadlocked);
        ASSERT_TRUE(sim.snapshot(dir, error)) << error;
        EXPECT_EQ(sim.snapshotCount(), 1u);
        EXPECT_GT(sim.lastSnapshotBytes(), 0u);
        // The simulator object now dies with its in-memory state —
        // the on-disk snapshot is all the resumed run gets.
    }

    MultiFpgaSim sim(plan, u250s(plan.partitions.size(), 50.0),
                     transport::qsfpAurora());
    if (faults)
        sim.setFaultModel(*faults);
    sim.setExecConfig(second);
    CycleTrace trace0, trace1;
    sim.setMonitor(0, recorder(trace0));
    sim.setMonitor(1, recorder(trace1));
    ASSERT_TRUE(sim.restore(dir, error)) << error;
    EXPECT_EQ(sim.restoreCount(), 1u);
    EXPECT_GE(sim.model(0).minTargetCycle(), cut);

    auto r = sim.run(cycles);
    ASSERT_FALSE(r.deadlocked);
    settle(sim, cycles + 25);
    EXPECT_EQ(stateSignature(sim, plan.partitions.size()),
              golden.signature);
    // The resumed run only observes cycles past the cut; every one
    // of them must match the golden observation.
    EXPECT_GT(trace0.size(), 0u);
    expectTraceSubset(golden.trace0, trace0);
    expectTraceSubset(golden.trace1, trace1);
    fs::remove_all(dir);
}

} // namespace

TEST(Restore, BitExactAcrossWorkerCountsAndEngines)
{
    auto soc = fourTileSoc();
    for (auto engine : {rtlsim::EvalEngine::Interpret,
                        rtlsim::EvalEngine::Compiled}) {
        for (unsigned workers : {0u, 1u, 2u, 4u, 8u}) {
            SCOPED_TRACE(std::string(rtlsim::toString(engine)) +
                         " workers=" + std::to_string(workers));
            ExecConfig exec = workers == 0
                                  ? ExecConfig{}
                                  : ExecConfig::parallel(workers);
            exec.evalEngine = engine;
            roundTrip(soc, exec, exec, 200, 400);
        }
    }
}

TEST(Restore, CrossEngineCrossBackendResume)
{
    // Snapshot under the compiled engine on the parallel backend,
    // resume under the interpreter on the sequential backend: both
    // pairs are bit-exact, so the mix must be too.
    auto soc = fourTileSoc();
    ExecConfig first = ExecConfig::parallel(4);
    first.evalEngine = rtlsim::EvalEngine::Compiled;
    ExecConfig second;
    second.evalEngine = rtlsim::EvalEngine::Interpret;
    roundTrip(soc, first, second, 250, 500);
}

TEST(Restore, FaultInjectionStateSurvivesTheCut)
{
    // The fault RNG substreams and retransmission machinery are part
    // of the cut: an interrupted faulty run must replay the exact
    // same recovery schedule as the uninterrupted one.
    auto soc = fourTileSoc();
    auto faults = transport::FaultConfig::uniform(2e-3, 42);
    GoldenRun golden = goldenRun(soc, ExecConfig{}, 700, &faults);
    EXPECT_GT(golden.result.retransmits, 0u);
    roundTrip(soc, ExecConfig{}, ExecConfig{}, 350, 700, &faults);
    roundTrip(soc, ExecConfig::parallel(4), ExecConfig::parallel(4),
              350, 700, &faults);
}

TEST(Restore, RejectsForeignAndMissingSnapshots)
{
    auto soc = fourTileSoc();
    std::string dir = tempDir();
    std::string error;
    {
        auto plan = threeWayPlan(soc);
        MultiFpgaSim sim(plan, u250s(plan.partitions.size(), 50.0),
                         transport::qsfpAurora());
        sim.run(50);
        ASSERT_TRUE(sim.snapshot(dir, error)) << error;
    }

    // A different partitioning of the same design has a different
    // plan hash; the restore is refused before any state changes.
    PartitionSpec spec;
    spec.mode = PartitionMode::Exact;
    spec.groups.push_back({"t01", {"tile0", "tile1"}, 1});
    auto other = partition(soc, spec);
    MultiFpgaSim sim(other, u250s(other.partitions.size(), 50.0),
                     transport::qsfpAurora());
    EXPECT_FALSE(sim.restore(dir, error));
    EXPECT_FALSE(error.empty());

    // An empty directory is a structured error, not a crash.
    std::string empty = tempDir();
    EXPECT_FALSE(sim.restore(empty, error));
    EXPECT_FALSE(error.empty());

    // The refused executor is still healthy.
    auto r = sim.run(50);
    EXPECT_FALSE(r.deadlocked);
    fs::remove_all(dir);
    fs::remove_all(empty);
}

TEST(Restore, TornWriteFixtureFallsBackToCommittedGeneration)
{
    // End-to-end version of the store-level torn-write test: scribble
    // a partial next generation over a real snapshot directory and
    // prove restore still lands on the committed cut.
    auto soc = fourTileSoc();
    auto plan = threeWayPlan(soc);
    std::string dir = tempDir();
    std::string error;
    GoldenRun golden = goldenRun(soc, ExecConfig{}, 400);
    {
        MultiFpgaSim sim(plan, u250s(plan.partitions.size(), 50.0),
                         transport::qsfpAurora());
        sim.run(200);
        ASSERT_TRUE(sim.snapshot(dir, error)) << error;
    }
    std::ofstream(dir + "/part0.g2.shard") << "torn";
    std::ofstream(dir + "/exec.g2.shard") << "torn";
    std::ofstream(dir + "/manifest.fasnap.tmp") << "torn";

    MultiFpgaSim sim(plan, u250s(plan.partitions.size(), 50.0),
                     transport::qsfpAurora());
    ASSERT_TRUE(sim.restore(dir, error)) << error;
    auto r = sim.run(400);
    ASSERT_FALSE(r.deadlocked);
    settle(sim, 425);
    EXPECT_EQ(stateSignature(sim, plan.partitions.size()),
              golden.signature);
    fs::remove_all(dir);
}

TEST(Restore, CorruptedCommittedShardFailsStructured)
{
    auto soc = fourTileSoc();
    auto plan = threeWayPlan(soc);
    std::string dir = tempDir();
    std::string error;
    {
        MultiFpgaSim sim(plan, u250s(plan.partitions.size(), 50.0),
                         transport::qsfpAurora());
        sim.run(100);
        ASSERT_TRUE(sim.snapshot(dir, error)) << error;
    }
    recovery::SnapshotStore store(dir);
    recovery::Manifest m;
    ASSERT_TRUE(store.loadManifest(m, error)) << error;
    {
        std::fstream f(dir + "/" + m.shards[0].file,
                       std::ios::in | std::ios::out |
                           std::ios::binary);
        f.seekp(10);
        f.put('~');
    }

    MultiFpgaSim sim(plan, u250s(plan.partitions.size(), 50.0),
                     transport::qsfpAurora());
    EXPECT_FALSE(sim.restore(dir, error));
    EXPECT_FALSE(error.empty());
    // Validation happens before any state is touched: the executor
    // still runs from scratch.
    auto r = sim.run(100);
    EXPECT_FALSE(r.deadlocked);
    fs::remove_all(dir);
}

// ---------------------------------------------------------------
// Autosnapshot: chunked run() with unchanged results
// ---------------------------------------------------------------

TEST(Autosnapshot, PeriodicSnapshotsDoNotPerturbTheRun)
{
    auto soc = fourTileSoc();
    GoldenRun golden = goldenRun(soc, ExecConfig{}, 500);

    std::string dir = tempDir();
    auto plan = threeWayPlan(soc);
    MultiFpgaSim sim(plan, u250s(plan.partitions.size(), 50.0),
                     transport::qsfpAurora());
    ExecConfig exec;
    exec.snapshotEveryCycles = 120;
    exec.snapshotDir = dir;
    sim.setExecConfig(exec);
    CycleTrace trace0;
    sim.setMonitor(0, recorder(trace0));
    auto r = sim.run(500);

    ASSERT_FALSE(r.deadlocked);
    // Snapshot boundaries are quiesce points: cycle counts, host
    // time, every observation and the final state are unchanged.
    EXPECT_EQ(r.targetCycles, golden.result.targetCycles);
    EXPECT_DOUBLE_EQ(r.hostTimeNs, golden.result.hostTimeNs);
    EXPECT_GE(sim.snapshotCount(), 4u);
    settle(sim, 525);
    EXPECT_EQ(stateSignature(sim, plan.partitions.size()),
              golden.signature);
    expectTraceSubset(golden.trace0, trace0);
    EXPECT_EQ(trace0.size(), golden.trace0.size());

    // The last committed snapshot resumes to the same end state.
    MultiFpgaSim resumed(plan, u250s(plan.partitions.size(), 50.0),
                         transport::qsfpAurora());
    std::string error;
    ASSERT_TRUE(resumed.restore(dir, error)) << error;
    resumed.run(500);
    settle(resumed, 525);
    EXPECT_EQ(stateSignature(resumed, plan.partitions.size()),
              golden.signature);
    fs::remove_all(dir);
}

// ---------------------------------------------------------------
// Recovery points: rollback and single-partition restart
// ---------------------------------------------------------------

TEST(RecoveryPoint, RollbackReplaysBitExactly)
{
    auto soc = fourTileSoc();
    auto plan = threeWayPlan(soc);
    MultiFpgaSim sim(plan, u250s(plan.partitions.size(), 50.0),
                     transport::qsfpAurora());
    CycleTrace trace;
    sim.setMonitor(0, recorder(trace));
    auto r1 = sim.run(150);
    ASSERT_FALSE(r1.deadlocked);

    recovery::RecoveryPoint rp = sim.acquireRecoveryPoint();
    ASSERT_TRUE(rp.valid);
    EXPECT_GE(rp.minTargetCycle, 150u);

    auto r2 = sim.run(400);
    ASSERT_FALSE(r2.deadlocked);
    uint64_t sig_first = stateSignature(sim, plan.partitions.size());
    CycleTrace first = trace;

    // Rewind and replay: the recorder itself asserts every
    // re-observed cycle carries the identical value.
    sim.rollback(rp);
    EXPECT_EQ(sim.restoreCount(), 1u);
    EXPECT_LE(sim.model(0).minTargetCycle(), 160u);
    auto r3 = sim.run(400);
    ASSERT_FALSE(r3.deadlocked);
    EXPECT_EQ(stateSignature(sim, plan.partitions.size()),
              sig_first);
    EXPECT_EQ(trace.size(), first.size());
}

namespace {

void
restartScenario(const ExecConfig &exec)
{
    auto soc = fourTileSoc();
    GoldenRun golden = goldenRun(soc, exec, 400);
    ASSERT_FALSE(golden.result.deadlocked);

    auto plan = threeWayPlan(soc);
    MultiFpgaSim sim(plan, u250s(plan.partitions.size(), 50.0),
                     transport::qsfpAurora());
    sim.setExecConfig(exec);
    CycleTrace trace0, trace1;
    sim.setMonitor(0, recorder(trace0));
    sim.setMonitor(1, recorder(trace1));

    auto r1 = sim.run(150);
    ASSERT_FALSE(r1.deadlocked);
    recovery::RecoveryPoint rp = sim.acquireRecoveryPoint();
    ASSERT_TRUE(rp.valid);

    auto r2 = sim.run(250);
    ASSERT_FALSE(r2.deadlocked);

    // Partition 1 "crashes" at cycle ~250 and restarts from the
    // cycle-150 cut; its inbound channels replay the deliveries made
    // in between, its peers keep their state and naturally stall
    // until it catches up.
    std::string error;
    ASSERT_TRUE(sim.restartPartition(1, rp, error)) << error;
    EXPECT_EQ(sim.partitionRestarts(), 1u);
    EXPECT_LE(sim.model(1).minTargetCycle(), 160u);

    auto r3 = sim.run(400);
    ASSERT_FALSE(r3.deadlocked);
    settle(sim, 425);
    EXPECT_EQ(stateSignature(sim, plan.partitions.size()),
              golden.signature);
    // Monitor suppression: the re-executed cycles were already
    // observed, so the trace has exactly the golden observations —
    // no duplicates, no gaps, no divergence.
    expectTraceSubset(golden.trace0, trace0);
    expectTraceSubset(golden.trace1, trace1);
    EXPECT_EQ(trace0.size(), golden.trace0.size());
    EXPECT_EQ(trace1.size(), golden.trace1.size());
}

} // namespace

TEST(RecoveryPoint, RestartPartitionSequential)
{
    restartScenario(ExecConfig{});
}

TEST(RecoveryPoint, RestartPartitionParallel)
{
    restartScenario(ExecConfig::parallel(4));
}

TEST(RecoveryPoint, RestartPartitionCompiledEngine)
{
    ExecConfig exec;
    exec.evalEngine = rtlsim::EvalEngine::Compiled;
    restartScenario(exec);
}

TEST(RecoveryPoint, RestartFailsCleanlyWhenReplayLogOutrun)
{
    auto soc = fourTileSoc();
    auto plan = threeWayPlan(soc);
    MultiFpgaSim sim(plan, u250s(plan.partitions.size(), 50.0),
                     transport::qsfpAurora());
    ExecConfig exec;
    exec.replayLogDepth = 4; // far too shallow for 200 cycles
    sim.setExecConfig(exec);

    sim.run(100);
    recovery::RecoveryPoint rp = sim.acquireRecoveryPoint();
    sim.run(300);

    std::string error;
    EXPECT_FALSE(sim.restartPartition(1, rp, error));
    EXPECT_NE(error.find("replay log"), std::string::npos) << error;
    EXPECT_EQ(sim.partitionRestarts(), 0u);

    // The failed restart touched nothing: the run continues to the
    // same state as an undisturbed one.
    GoldenRun golden = goldenRun(soc, ExecConfig{}, 500);
    auto r = sim.run(500);
    ASSERT_FALSE(r.deadlocked);
    settle(sim, 525);
    EXPECT_EQ(stateSignature(sim, plan.partitions.size()),
              golden.signature);
}

TEST(RecoveryPoint, RollbackAcrossFailoverReattachesTheLink)
{
    // Fail a link over mid-run, then roll back to a pre-failover
    // cut: the channel must rejoin its original shared serializer
    // and the replay must again fail over at the same point.
    auto soc = fourTileSoc();
    transport::FaultConfig faults;
    faults.seed = 19;
    faults.dropRate = 0.7;
    faults.maxRetries = 2;

    auto plan = threeWayPlan(soc);
    MultiFpgaSim sim(plan, u250s(plan.partitions.size(), 50.0),
                     transport::qsfpAurora());
    sim.setFaultModel(faults);
    sim.init();
    recovery::RecoveryPoint rp = sim.acquireRecoveryPoint();

    auto r1 = sim.run(300);
    ASSERT_FALSE(r1.deadlocked);
    EXPECT_GT(r1.linkFailovers, 0u);
    uint64_t sig = stateSignature(sim, plan.partitions.size());

    sim.rollback(rp);
    auto r2 = sim.run(300);
    ASSERT_FALSE(r2.deadlocked);
    EXPECT_GT(r2.linkFailovers, 0u);
    EXPECT_EQ(stateSignature(sim, plan.partitions.size()), sig);
}
