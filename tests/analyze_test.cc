/**
 * @file
 * Tests for the static dataflow-analysis framework (src/analyze) and
 * its diagnostic surface: the shared graph utility, the lattice
 * passes (constant propagation, X-reachability, dead-logic
 * refinement), the cut-cost analyzer's fireaxe.analysis.v1 reports
 * over every shipped target, the IR009/IR010/PLAN009/PLAN010 fixture
 * codes, and — the property the analyzer exists to provide — the
 * fig2 predicted-vs-measured validation: the statically predicted
 * blocking channel and FMR lower bound must agree with what an
 * actual partitioned run measures.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "analyze/cutcost.hh"
#include "analyze/passes.hh"
#include "base/graph.hh"
#include "firrtl/builder.hh"
#include "obs/jsonparse.hh"
#include "passes/flatten.hh"
#include "platform/executor.hh"
#include "platform/fpga.hh"
#include "ripper/autopartition.hh"
#include "ripper/partition.hh"
#include "svc/targets.hh"
#include "target/bus_soc.hh"
#include "transport/link.hh"
#include "verify/verify.hh"

using namespace fireaxe;
using namespace fireaxe::analyze;

namespace {

bool
hasCode(const verify::Report &report, const std::string &code)
{
    return !report.byCode(code).empty();
}

/** in -> chain of @p depth adders -> out; one comb hop per wire. */
firrtl::Circuit
chainCircuit(unsigned depth)
{
    firrtl::CircuitBuilder cb("Top");
    auto mb = cb.module("Top");
    auto prev = mb.input("in", 8);
    mb.output("out", 8);
    for (unsigned i = 0; i < depth; ++i) {
        auto w = mb.wire("w" + std::to_string(i), 8);
        mb.connect("w" + std::to_string(i),
                   firrtl::bits(
                       firrtl::eAdd(prev, firrtl::lit(1, 8)), 7, 0));
        prev = w;
    }
    mb.connect("out", prev);
    return cb.finish();
}

} // namespace

// ---------------------------------------------------------------
// Shared graph utility (the deduplicated Tarjan/BFS substrate).
// ---------------------------------------------------------------

TEST(StringDigraph, SccsAndCycles)
{
    base::StringDigraph g;
    g.addEdge("a", "b");
    g.addEdge("b", "c");
    g.addEdge("c", "b"); // b <-> c cycle
    g.addEdge("c", "d");
    g.ensureNode("lone");

    auto sccs = g.stronglyConnectedComponents();
    // Completion order is reverse-topological over the condensation:
    // d's component completes before {b,c}, which completes before a.
    size_t d_at = 0, bc_at = 0, a_at = 0;
    for (size_t i = 0; i < sccs.size(); ++i) {
        for (const auto &n : sccs[i]) {
            if (n == "d")
                d_at = i;
            if (n == "b")
                bc_at = i;
            if (n == "a")
                a_at = i;
        }
    }
    EXPECT_LT(d_at, bc_at);
    EXPECT_LT(bc_at, a_at);

    auto cyc = g.cyclicComponents();
    ASSERT_EQ(cyc.size(), 1u);
    EXPECT_EQ(cyc[0].size(), 2u);
}

TEST(StringDigraph, SelfEdgeIsCyclic)
{
    base::StringDigraph g;
    g.addEdge("x", "x");
    ASSERT_EQ(g.cyclicComponents().size(), 1u);
}

TEST(StringDigraph, ReachabilityAndShortestPath)
{
    base::StringDigraph g;
    g.addEdge("a", "b");
    g.addEdge("b", "c");
    g.addEdge("a", "c");
    g.addEdge("c", "d");

    auto r = g.reachableFrom("b");
    EXPECT_TRUE(r.count("d"));
    EXPECT_FALSE(r.count("a"));

    auto path = g.shortestPath("a", "d");
    ASSERT_EQ(path.size(), 3u); // a -> c -> d
    EXPECT_EQ(path.front(), "a");
    EXPECT_EQ(path.back(), "d");
}

// ---------------------------------------------------------------
// Dataflow graph: cones and combinational depth.
// ---------------------------------------------------------------

TEST(Dataflow, ConesAndDepths)
{
    DataflowGraph g(chainCircuit(3));
    EXPECT_FALSE(g.hasCombCycle());
    // in -> w0 -> w1 -> w2 -> out: depth counts driver hops.
    EXPECT_EQ(g.combDepthOf("in"), 0u);
    EXPECT_EQ(g.combDepthOf("w0"), 1u);
    EXPECT_EQ(g.combDepthOf("out"), 4u);

    auto fin = g.fanInCone("out");
    EXPECT_TRUE(fin.count("in"));
    EXPECT_TRUE(fin.count("w1"));
    auto fout = g.fanOutCone("in");
    EXPECT_TRUE(fout.count("out"));
}

// ---------------------------------------------------------------
// Constant propagation.
// ---------------------------------------------------------------

TEST(ConstProp, FoldsThroughWiresAndMuxes)
{
    firrtl::CircuitBuilder cb("Top");
    auto mb = cb.module("Top");
    auto in = mb.input("in", 8);
    mb.output("folded", 8);
    mb.output("varies", 8);
    mb.wire("five", 8);
    mb.connect("five",
               firrtl::bits(firrtl::eAdd(firrtl::lit(2, 8),
                                         firrtl::lit(3, 8)),
                            7, 0));
    // Constant-0 selector: only the false arm is ever taken.
    mb.connect("folded", firrtl::mux(firrtl::lit(0, 1), in,
                                     mb.sig("five")));
    mb.connect("varies", firrtl::bits(firrtl::eAdd(in, mb.sig("five")),
                                      7, 0));
    auto circuit = cb.finish();

    DataflowGraph g(passes::flattenAll(circuit));
    auto consts = propagateConstants(g);
    uint64_t v = 0;
    EXPECT_TRUE(consts.isConst("five", &v));
    EXPECT_EQ(v, 5u);
    EXPECT_TRUE(consts.isConst("folded", &v));
    EXPECT_EQ(v, 5u);
    EXPECT_FALSE(consts.isConst("varies"));
    EXPECT_FALSE(consts.isConst("in"));
}

TEST(ConstProp, RegisterFeedbackAndUninit)
{
    firrtl::CircuitBuilder cb("Top");
    auto mb = cb.module("Top");
    mb.output("a", 8);
    mb.output("b", 8);
    // Holds its reset value forever: provably constant.
    auto stuck = mb.reg("stuck", 8, 7);
    mb.connect("stuck", stuck);
    // Same feedback but no reset network: unknown power-up, Top.
    auto loose = mb.regUninit("loose", 8);
    mb.connect("loose", loose);
    mb.connect("a", stuck);
    mb.connect("b", loose);
    auto circuit = cb.finish();

    DataflowGraph g(passes::flattenAll(circuit));
    auto consts = propagateConstants(g);
    uint64_t v = 0;
    EXPECT_TRUE(consts.isConst("stuck", &v));
    EXPECT_EQ(v, 7u);
    EXPECT_FALSE(consts.isConst("loose"));
}

// ---------------------------------------------------------------
// Known-bad fixtures: exact diagnostic codes.
// ---------------------------------------------------------------

TEST(Diagnostics, Ir009ConstantDrivenBoundary)
{
    firrtl::CircuitBuilder cb("Top");
    auto mb = cb.module("Top");
    auto in = mb.input("in", 8);
    mb.output("ok", 8);
    mb.output("stuck", 8);
    mb.connect("ok", in);
    mb.connect("stuck",
               firrtl::bits(firrtl::eAdd(firrtl::lit(2, 8),
                                         firrtl::lit(3, 8)),
                            7, 0));
    auto report = verify::verifyCircuit(cb.finish());

    auto findings = report.byCode("IR009");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].loc.signal, "stuck");
    EXPECT_EQ(findings[0].severity, verify::Severity::Warning);
    EXPECT_NE(findings[0].message.find("constant value 5"),
              std::string::npos);
    EXPECT_FALSE(report.hasErrors());
}

TEST(Diagnostics, Ir010UninitializedStateEscape)
{
    firrtl::CircuitBuilder cb("Top");
    auto mb = cb.module("Top");
    auto in = mb.input("in", 8);
    mb.output("dirty", 8);
    mb.output("clean", 8);
    auto x = mb.regUninit("xsrc", 8);
    mb.connect("xsrc", firrtl::bits(firrtl::eAdd(x, in), 7, 0));
    mb.connect("dirty", x);
    auto r = mb.reg("rsrc", 8, 0);
    mb.connect("rsrc", firrtl::bits(firrtl::eAdd(r, in), 7, 0));
    mb.connect("clean", r);
    auto report = verify::verifyCircuit(cb.finish());

    auto findings = report.byCode("IR010");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].loc.signal, "dirty");
    EXPECT_NE(findings[0].message.find("xsrc"), std::string::npos);
    EXPECT_FALSE(report.hasErrors());
}

TEST(Diagnostics, Ir005ConstPrunedRefinementAndWriteOnlyMem)
{
    firrtl::CircuitBuilder cb("Top");
    auto mb = cb.module("Top");
    auto in = mb.input("in", 8);
    mb.output("out", 8);
    // r reaches out only through the never-taken arm of a mux whose
    // selector is provably 0: alive to the baseline reverse BFS,
    // dead after constant pruning.
    auto r = mb.reg("ghost", 8, 0);
    mb.connect("ghost", firrtl::bits(firrtl::eAdd(r, firrtl::lit(1, 8)),
                                     7, 0));
    mb.connect("out", firrtl::mux(firrtl::lit(0, 1), r, in));
    // Write-only memory: rdata never observed.
    mb.mem("wom", 16, 8);
    mb.connect("wom.waddr", firrtl::bits(in, 3, 0));
    mb.connect("wom.wdata", in);
    mb.connect("wom.wen", firrtl::lit(1, 1));
    mb.connect("wom.raddr", firrtl::lit(0, 4));
    auto circuit = cb.finish();

    auto analysis = analyzeCircuit(circuit);
    EXPECT_TRUE(analysis.dead.refinedDead.count("ghost"));
    ASSERT_EQ(analysis.dead.writeOnlyMems.size(), 1u);
    EXPECT_EQ(analysis.dead.writeOnlyMems[0], "wom");

    auto report = verify::verifyCircuit(circuit);
    bool refined = false, write_only = false;
    for (const auto &d : report.byCode("IR005")) {
        if (d.loc.signal == "ghost" &&
            d.message.find("constants") != std::string::npos)
            refined = true;
        if (d.loc.signal == "wom" &&
            d.message.find("write-only") != std::string::npos)
            write_only = true;
    }
    EXPECT_TRUE(refined);
    EXPECT_TRUE(write_only);
    EXPECT_FALSE(report.hasErrors());
}

TEST(Diagnostics, Plan009DeepCombinationalCut)
{
    // A 14-deep adder chain behind the partition boundary port. The
    // chain starts at a register so the cut stays register-to-
    // register on the input side (a comb pass-through would trip the
    // ripper's two-crossing limit, a different failure).
    firrtl::CircuitBuilder cb("Top");
    auto deep = cb.module("Deep");
    auto a = deep.input("a", 8);
    deep.output("y", 8);
    auto prev = deep.reg("stage", 8, 0);
    deep.connect("stage", a);
    for (unsigned i = 0; i < 14; ++i) {
        deep.wire("w" + std::to_string(i), 8);
        deep.connect("w" + std::to_string(i),
                     firrtl::bits(
                         firrtl::eAdd(prev, firrtl::lit(1, 8)), 7, 0));
        prev = deep.sig("w" + std::to_string(i));
    }
    deep.connect("y", prev);
    auto top = cb.module("Top");
    auto in = top.input("in", 8);
    top.output("out", 8);
    top.instance("d", "Deep");
    top.connect("d.a", in);
    top.connect("out", top.sig("d.y"));
    auto circuit = cb.finish();

    ripper::PartitionSpec spec;
    spec.groups.push_back({"deep", {"d"}, 1});
    auto plan = ripper::partition(circuit, spec);
    auto report = verify::verifyPlan(plan);

    ASSERT_TRUE(hasCode(report, "PLAN009"));
    bool found = false;
    for (const auto &d : report.byCode("PLAN009"))
        found |= d.message.find("combinational depth") !=
                 std::string::npos;
    EXPECT_TRUE(found);
    EXPECT_FALSE(report.hasErrors());

    // The same boundary below the threshold stays silent.
    auto shallow_report = verify::verifyPlan(plan, [] {
        verify::Options o;
        o.cutCost.deepCombDepth = 64;
        return o;
    }());
    EXPECT_FALSE(hasCode(shallow_report, "PLAN009"));
}

TEST(Diagnostics, Plan010PredictedHotChannel)
{
    const auto *t = svc::findTarget("fig2");
    ASSERT_NE(t, nullptr);
    auto circuit = t->build();
    auto plan = ripper::partition(circuit, t->spec(circuit));
    auto report = verify::verifyPlan(plan);

    // fig2's cross-coupled exact-mode channels dominate every host
    // cycle; both partitions get a predicted-hot-channel note.
    auto notes = report.byCode("PLAN010");
    ASSERT_GE(notes.size(), 1u);
    for (const auto &d : notes) {
        EXPECT_EQ(d.severity, verify::Severity::Note);
        EXPECT_NE(d.message.find("FMR lower bound"),
                  std::string::npos);
    }
    EXPECT_FALSE(report.hasErrors());
}

TEST(Diagnostics, NewCodesRegistered)
{
    struct
    {
        const char *code;
        verify::Severity sev;
    } expected[] = {
        {"IR009", verify::Severity::Warning},
        {"IR010", verify::Severity::Warning},
        {"PLAN009", verify::Severity::Warning},
        {"PLAN010", verify::Severity::Note},
        {"TOOL001", verify::Severity::Error},
    };
    for (const auto &e : expected) {
        const auto *info = verify::findCheck(e.code);
        ASSERT_NE(info, nullptr) << e.code;
        EXPECT_EQ(info->defaultSeverity, e.sev) << e.code;
    }
}

// ---------------------------------------------------------------
// Channel-dependency recomputation is shared with the verifier.
// ---------------------------------------------------------------

TEST(CutCost, ChannelDependenciesMatchVerifier)
{
    const auto *t = svc::findTarget("bus-soc");
    ASSERT_NE(t, nullptr);
    auto circuit = t->build();
    auto plan = ripper::partition(circuit, t->spec(circuit));

    std::vector<passes::PortDeps> summaries;
    for (const auto &pc : plan.partitions) {
        passes::CombDepAnalysis a(pc, passes::LoopPolicy::Record);
        summaries.push_back(a.forModule(pc.topName));
    }
    EXPECT_EQ(analyze::channelDependencies(plan, summaries),
              verify::trueChannelDeps(plan, summaries));
}

// ---------------------------------------------------------------
// fireaxe.analysis.v1 reports over every shipped target.
// ---------------------------------------------------------------

TEST(CutCost, SchemaValidReportsForAllShippedTargets)
{
    for (const auto &t : svc::targetRegistry()) {
        SCOPED_TRACE(t.name);
        auto circuit = t.build();
        auto plan = ripper::partition(circuit, t.spec(circuit));
        auto cost = analyzeCutCost(plan);

        std::ostringstream os;
        cost.writeJson(os, t.name);
        obs::JsonValue doc;
        std::string err;
        ASSERT_TRUE(obs::parseJson(os.str(), doc, err)) << err;

        EXPECT_EQ(doc.text("schema"), "fireaxe.analysis.v1");
        EXPECT_EQ(doc.text("target"), t.name);
        EXPECT_EQ(doc.text("mode"), "exact");
        EXPECT_GE(doc.num("predicted_fmr_lb"), 1.0);
        EXPECT_FALSE(doc.flag("cyclic"));
        // CI gates analyzer latency at 100 ms per shipped target.
        EXPECT_LT(doc.num("analysis_ms"), 100.0);

        const obs::JsonValue *parts = doc.get("partitions");
        ASSERT_NE(parts, nullptr);
        EXPECT_EQ(parts->arr.size(), plan.partitions.size());

        const obs::JsonValue *chans = doc.get("channels");
        ASSERT_NE(chans, nullptr);
        EXPECT_EQ(chans->arr.size(), plan.channels.size());
        double prev_chain = 0.0;
        double share_sum = 0.0;
        int blocking = 0;
        for (size_t i = 0; i < chans->arr.size(); ++i) {
            const obs::JsonValue &c = chans->arr[i];
            EXPECT_EQ(c.u64("rank"), i + 1);
            EXPECT_GT(c.num("cost_ns"), 0.0);
            EXPECT_GE(c.num("chain_ns"), c.num("cost_ns"));
            if (i > 0)
                EXPECT_LE(c.num("chain_ns"), prev_chain);
            prev_chain = c.num("chain_ns");
            share_sum += c.num("share_pct");
            blocking += c.flag("blocking") ? 1 : 0;
        }
        if (!chans->arr.empty()) {
            EXPECT_NEAR(share_sum, 100.0, 0.1);
            EXPECT_GE(blocking, 1);
        }

        // Ranked text rendering works on every target too.
        EXPECT_NE(cost.renderText().find("predicted FMR lower bound"),
                  std::string::npos);
    }
}

TEST(CutCost, FastModeHasNoChaining)
{
    const auto *t = svc::findTarget("fig2");
    ASSERT_NE(t, nullptr);
    auto circuit = t->build();
    auto spec = t->spec(circuit);
    spec.mode = ripper::PartitionMode::Fast;
    auto plan = ripper::partition(circuit, spec);
    auto cost = analyzeCutCost(plan);

    EXPECT_EQ(cost.mode, "fast");
    // Seed tokens consume last cycle's values: no dependency chains,
    // so every channel's chain is exactly its own cost.
    for (const auto &c : cost.channels)
        EXPECT_DOUBLE_EQ(c.chainNs, c.costNs);
}

// ---------------------------------------------------------------
// fig2 predicted vs measured (the paper's Fig. 2 partitioning).
// ---------------------------------------------------------------

TEST(CutCost, Fig2PredictionMatchesMeasuredRun)
{
    const auto *t = svc::findTarget("fig2");
    ASSERT_NE(t, nullptr);
    auto circuit = t->build();
    auto plan = ripper::partition(circuit, t->spec(circuit));

    CutCostOptions copts; // qsfp-aurora @ 50 MHz, the sim's config
    auto cost = analyzeCutCost(plan, copts);
    ASSERT_FALSE(cost.channels.empty());
    ASSERT_EQ(cost.partitions.size(), 2u);

    platform::MultiFpgaSim sim(
        plan,
        std::vector<platform::FpgaSpec>(2, platform::alveoU250(50.0)),
        transport::qsfpAurora());
    sim.setTelemetry({});
    // The cut-cost model prices every cut token's full link cost;
    // depth-N batching (e.g. FIREAXE_BATCH_DEPTH in a CI sweep)
    // would drive the measured FMR below the predicted lower bound.
    platform::ExecConfig exec;
    exec.batchDepth = 1;
    sim.setExecConfig(exec);
    auto result = sim.run(1500);
    ASSERT_FALSE(result.deadlocked);

    // Measured FMR: host cycles per target cycle, per partition.
    double measured = 0.0;
    size_t slowest = 0;
    for (size_t p = 0; p < plan.partitionNames.size(); ++p) {
        double fmr = result.metrics.gauge(
            "part." + plan.partitionNames[p] + ".fmr");
        if (fmr > measured) {
            measured = fmr;
            slowest = p;
        }
    }
    ASSERT_GT(measured, 1.0);

    // The predicted lower bound must bound the measurement from
    // below and sit within 2x of it (the model prices serialization,
    // flight and chaining; the run adds scheduler overhead only).
    EXPECT_GE(cost.predictedFmrLb, 1.0);
    EXPECT_LE(cost.predictedFmrLb, measured * 1.05);
    EXPECT_GE(cost.predictedFmrLb * 2.0, measured);

    // The predicted top blocker must agree with the measured
    // critical path. fig2 is symmetric (both partitions wait on
    // their inbound sink-class channel), so accept the tie set: the
    // rank-1 channel is one of the two _snk channels, and the
    // predicted blocker of the measured-slowest partition is among
    // the top-ranked tie set.
    const auto &top = cost.channels.front();
    EXPECT_EQ(top.rank, 1);
    EXPECT_TRUE(top.name == "p0_to_p1_snk" ||
                top.name == "p1_to_p0_snk")
        << top.name;
    const std::string &blocker =
        cost.partitions[slowest].blockingChannel;
    bool in_tie_set = false;
    for (const auto &c : cost.channels)
        if (c.chainNs == top.chainNs && c.name == blocker)
            in_tie_set = true;
    EXPECT_TRUE(in_tie_set) << blocker;

    // Exact mode chains the two crossings of the cycle: the top
    // chain must be deeper than any single token cost.
    EXPECT_GT(top.chainNs, top.costNs);
    ASSERT_EQ(top.depChain.size(), 2u);
}

// ---------------------------------------------------------------
// The cut-cost model as the auto-partitioner's scoring function.
// ---------------------------------------------------------------

TEST(AutoPartitionScoring, ReportsPredictedFmr)
{
    target::BusSocConfig cfg;
    cfg.numTiles = 6;
    cfg.memWords = 256;
    auto soc = target::buildBusSoc(cfg);

    ripper::AutoPartitionOptions opts;
    opts.lutBudget = 1400;
    opts.maxFpgas = 8;
    auto scored = ripper::autoPartition(soc, opts);
    EXPECT_TRUE(scored.fits);
    EXPECT_GT(scored.fpgasUsed, 1u);
    EXPECT_GT(scored.predictedFmrLb, 1.0);
    EXPECT_NE(ripper::describeAutoPartition(scored).find(
                  "predicted FMR lower bound"),
              std::string::npos);

    // The scored placement's prediction can't be worse than what the
    // pure-affinity packer would pick (the scorer chooses argmin at
    // every step, and both see the same feasible bins).
    opts.costScoring = false;
    auto affinity_only = ripper::autoPartition(soc, opts);
    EXPECT_GT(affinity_only.predictedFmrLb, 1.0);
}

TEST(AutoPartitionScoring, SpecStillRunsCycleExact)
{
    target::BusSocConfig cfg;
    cfg.numTiles = 4;
    cfg.memWords = 256;
    auto soc = target::buildBusSoc(cfg);

    ripper::AutoPartitionOptions opts;
    opts.lutBudget = 900;
    auto result = ripper::autoPartition(soc, opts);
    ASSERT_FALSE(result.spec.groups.empty());

    auto plan = ripper::partition(soc, result.spec);
    platform::MultiFpgaSim sim(
        plan,
        std::vector<platform::FpgaSpec>(plan.partitions.size(),
                                        platform::alveoU250(50.0)),
        transport::qsfpAurora());
    std::vector<uint64_t> mono, part;
    platform::runMonolithic(
        soc, nullptr,
        [&](rtlsim::Simulator &s, unsigned, uint64_t) {
            mono.push_back(s.peek("status"));
        },
        150);
    sim.setMonitor(0, [&](rtlsim::Simulator &s, unsigned, uint64_t) {
        part.push_back(s.peek("status"));
    });
    auto run = sim.run(150);
    EXPECT_FALSE(run.deadlocked);
    ASSERT_GE(part.size(), mono.size());
    for (size_t i = 0; i < mono.size(); ++i)
        ASSERT_EQ(part[i], mono[i]);
}
