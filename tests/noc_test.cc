/**
 * @file
 * Tests for the ring-NoC SoC target and FireRipper's
 * NoC-partition-mode: router discovery, wrapper-growth selection
 * (Fig. 4), direct router-to-router boundary nets (Fig. 6), and
 * cycle exactness of the partitioned ring across multiple FPGAs.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "firrtl/builder.hh"
#include "platform/executor.hh"
#include "ripper/nocselect.hh"
#include "ripper/partition.hh"
#include "target/noc_soc.hh"
#include "transport/link.hh"

using namespace fireaxe;
using namespace fireaxe::ripper;
using namespace fireaxe::platform;

namespace {

target::RingNocSocConfig
smallConfig(unsigned nodes)
{
    target::RingNocSocConfig cfg;
    cfg.numNodes = nodes;
    cfg.memWords = 256;
    return cfg;
}

std::vector<FpgaSpec>
u250s(size_t n, double mhz)
{
    return std::vector<FpgaSpec>(n, alveoU250(mhz));
}

} // namespace

TEST(NocSoc, GeneratesAndSimulates)
{
    auto soc = target::buildRingNocSoc(smallConfig(4));
    std::vector<uint64_t> status;
    runMonolithic(
        soc, nullptr,
        [&](rtlsim::Simulator &sim, unsigned, uint64_t) {
            status.push_back(sim.peek("status"));
        },
        500);
    ASSERT_EQ(status.size(), 500u);
    // Traffic flows: the subsystem heartbeat and tile checksums must
    // evolve over time.
    EXPECT_NE(status.front(), status.back());
}

TEST(NocSoc, SubsystemServesMemoryTraffic)
{
    auto soc = target::buildRingNocSoc(smallConfig(3));
    uint64_t heartbeat = 0;
    runMonolithic(
        soc, nullptr,
        [&](rtlsim::Simulator &sim, unsigned, uint64_t) {
            heartbeat = sim.peek("subsys/hb");
        },
        600);
    // Two tiles issuing a request every few cycles with a round-trip
    // through the ring: dozens of requests must have been served.
    EXPECT_GT(heartbeat, 20u);
}

TEST(NocSelect, FindsAllRouters)
{
    auto soc = target::buildRingNocSoc(smallConfig(5));
    auto routers = findNocRouters(soc);
    ASSERT_EQ(routers.size(), 5u);
    std::set<unsigned> indices;
    for (const auto &r : routers) {
        indices.insert(r.index);
        EXPECT_EQ(r.parentPath, "");
    }
    EXPECT_EQ(indices, (std::set<unsigned>{0, 1, 2, 3, 4}));
}

TEST(NocSelect, GrowsWrapperAroundSelectedRouters)
{
    // Fig. 4: selecting router nodes pulls in the protocol
    // converters and tiles hanging off them — and nothing else.
    auto soc = target::buildRingNocSoc(smallConfig(5));
    auto group = selectNocGroup(soc, {1, 2});
    EXPECT_EQ(group,
              (std::set<std::string>{"r1", "r2", "conv1", "conv2",
                                     "tile1", "tile2"}));
}

TEST(NocSelect, DoesNotCrossUnselectedRouters)
{
    auto soc = target::buildRingNocSoc(smallConfig(5));
    auto group = selectNocGroup(soc, {3});
    EXPECT_EQ(group,
              (std::set<std::string>{"r3", "conv3", "tile3"}));
    // The subsystem stays with node 0.
    EXPECT_FALSE(group.count("subsys"));
}

TEST(NocSelect, UnknownIndexRejected)
{
    auto soc = target::buildRingNocSoc(smallConfig(3));
    EXPECT_THROW(selectNocGroup(soc, {9}), FatalError);
    EXPECT_THROW(selectNocGroup(soc, {}), FatalError);
}

TEST(NocSelect, DesignWithoutRoutersRejected)
{
    firrtl::CircuitBuilder cb("T");
    auto m = cb.module("T");
    m.output("o", 1);
    m.connect("o", firrtl::lit(0, 1));
    auto c = cb.finish();
    EXPECT_THROW(selectNocGroup(c, {0}), FatalError);
}

TEST(NocPartition, RouterBoundariesAreAllSourceChannels)
{
    // Router outputs have no combinational input dependence, so
    // every inter-partition channel is source-class and exact mode
    // needs only one link crossing per cycle.
    auto soc = target::buildRingNocSoc(smallConfig(4));
    PartitionSpec spec;
    spec.mode = PartitionMode::Exact;
    spec.groups.push_back(
        {"nodes12", selectNocGroup(soc, {1, 2}), 1});
    auto plan = partition(soc, spec);

    for (const auto &ch : plan.channels)
        EXPECT_FALSE(ch.sinkClass) << ch.name;
    EXPECT_EQ(plan.feedback.linkCrossingsPerCycle, 1u);
}

TEST(NocPartition, AdjacentGroupsGetDirectNets)
{
    // Fig. 6: ring neighbours exchange tokens directly, not through
    // the rest partition.
    auto soc = target::buildRingNocSoc(smallConfig(5));
    PartitionSpec spec;
    spec.mode = PartitionMode::Exact;
    spec.groups.push_back({"n1", selectNocGroup(soc, {1}), 1});
    spec.groups.push_back({"n2", selectNocGroup(soc, {2}), 1});
    auto plan = partition(soc, spec);

    bool direct_1_to_2 = false;
    for (const auto &net : plan.nets) {
        if (net.srcPart == 1 && net.dstPart == 2)
            direct_1_to_2 = true;
    }
    EXPECT_TRUE(direct_1_to_2);
}

TEST(NocPartition, TwoFpgaRingIsCycleExact)
{
    auto soc = target::buildRingNocSoc(smallConfig(4));
    const uint64_t cycles = 500;

    std::vector<uint64_t> mono;
    runMonolithic(
        soc, nullptr,
        [&](rtlsim::Simulator &sim, unsigned, uint64_t) {
            mono.push_back(sim.peek("status"));
        },
        cycles);

    PartitionSpec spec;
    spec.mode = PartitionMode::Exact;
    spec.groups.push_back(
        {"nodes", selectNocGroup(soc, {1, 2, 3}), 1});
    auto plan = partition(soc, spec);

    MultiFpgaSim sim(plan, u250s(2, 40.0), transport::qsfpAurora());
    std::vector<uint64_t> part;
    sim.setMonitor(0, [&](rtlsim::Simulator &s, unsigned, uint64_t) {
        part.push_back(s.peek("status"));
    });
    auto result = sim.run(cycles);
    EXPECT_FALSE(result.deadlocked);
    ASSERT_GE(part.size(), mono.size());
    for (size_t i = 0; i < mono.size(); ++i)
        ASSERT_EQ(part[i], mono[i]) << "divergence at cycle " << i;
}

TEST(NocPartition, FiveFpgaRingRunsAndStaysExact)
{
    // The Fig. 6 shape at test scale: one node group per FPGA plus
    // the subsystem partition.
    auto soc = target::buildRingNocSoc(smallConfig(5));
    const uint64_t cycles = 300;

    std::vector<uint64_t> mono;
    runMonolithic(
        soc, nullptr,
        [&](rtlsim::Simulator &sim, unsigned, uint64_t) {
            mono.push_back(sim.peek("status"));
        },
        cycles);

    PartitionSpec spec;
    spec.mode = PartitionMode::Exact;
    for (unsigned node = 1; node <= 4; ++node) {
        spec.groups.push_back({"n" + std::to_string(node),
                               selectNocGroup(soc, {node}), 1});
    }
    auto plan = partition(soc, spec);
    ASSERT_EQ(plan.partitions.size(), 5u);

    MultiFpgaSim sim(plan, u250s(5, 40.0), transport::qsfpAurora());
    std::vector<uint64_t> part;
    sim.setMonitor(0, [&](rtlsim::Simulator &s, unsigned, uint64_t) {
        part.push_back(s.peek("status"));
    });
    auto result = sim.run(cycles);
    EXPECT_FALSE(result.deadlocked);
    ASSERT_GE(part.size(), mono.size());
    for (size_t i = 0; i < mono.size(); ++i)
        ASSERT_EQ(part[i], mono[i]) << "divergence at cycle " << i;
}

TEST(NocPartition, Fame5TilePartitionRuns)
{
    // The 24-core recipe at small scale: thread the tile partition.
    auto soc = target::buildRingNocSoc(smallConfig(4));
    PartitionSpec spec;
    spec.mode = PartitionMode::Exact;
    spec.groups.push_back(
        {"nodes", selectNocGroup(soc, {1, 2, 3}), 3});
    auto plan = partition(soc, spec);

    MultiFpgaSim sim(plan, u250s(2, 30.0), transport::qsfpAurora());
    auto result = sim.run(200);
    EXPECT_FALSE(result.deadlocked);
    EXPECT_GE(result.targetCycles, 200u);
}

TEST(BidirNoc, GeneratesAndServesTraffic)
{
    auto cfg = smallConfig(6);
    cfg.bidirectional = true;
    auto soc = target::buildRingNocSoc(cfg);
    uint64_t heartbeat = 0;
    runMonolithic(
        soc, nullptr,
        [&](rtlsim::Simulator &sim, unsigned, uint64_t) {
            heartbeat = sim.peek("subsys/hb");
        },
        800);
    EXPECT_GT(heartbeat, 30u);
}

TEST(BidirNoc, ShortestPathBeatsUnidirectionalRing)
{
    // With shortest-path routing a far tile reaches node 0 in
    // ceil(N/2) hops instead of up to N-1, so the bidirectional
    // torus serves strictly more requests in the same time on a
    // larger ring.
    auto uni = smallConfig(8);
    auto bi = smallConfig(8);
    bi.bidirectional = true;

    auto served = [](const firrtl::Circuit &soc) {
        uint64_t heartbeat = 0;
        runMonolithic(
            soc, nullptr,
            [&](rtlsim::Simulator &sim, unsigned, uint64_t) {
                heartbeat = sim.peek("subsys/hb");
            },
            1200);
        return heartbeat;
    };
    EXPECT_GT(served(target::buildRingNocSoc(bi)),
              served(target::buildRingNocSoc(uni)));
}

TEST(BidirNoc, NocPartitionStaysCycleExact)
{
    auto cfg = smallConfig(5);
    cfg.bidirectional = true;
    auto soc = target::buildRingNocSoc(cfg);
    const uint64_t cycles = 400;

    std::vector<uint64_t> mono;
    runMonolithic(
        soc, nullptr,
        [&](rtlsim::Simulator &sim, unsigned, uint64_t) {
            mono.push_back(sim.peek("status"));
        },
        cycles);

    PartitionSpec spec;
    spec.mode = PartitionMode::Exact;
    spec.groups.push_back(
        {"nodes", selectNocGroup(soc, {2, 3}), 1});
    auto plan = partition(soc, spec);

    MultiFpgaSim sim(plan, u250s(2, 40.0), transport::qsfpAurora());
    std::vector<uint64_t> part;
    sim.setMonitor(0, [&](rtlsim::Simulator &s, unsigned, uint64_t) {
        part.push_back(s.peek("status"));
    });
    auto result = sim.run(cycles);
    EXPECT_FALSE(result.deadlocked);
    ASSERT_GE(part.size(), mono.size());
    for (size_t i = 0; i < mono.size(); ++i)
        ASSERT_EQ(part[i], mono[i]) << "divergence at cycle " << i;
}

TEST(BidirNoc, SelectionStillGrowsWrappers)
{
    auto cfg = smallConfig(6);
    cfg.bidirectional = true;
    auto soc = target::buildRingNocSoc(cfg);
    auto group = selectNocGroup(soc, {2});
    EXPECT_EQ(group,
              (std::set<std::string>{"r2", "conv2", "tile2"}));
}
