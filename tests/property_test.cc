/**
 * @file
 * Property-based parameterized tests (TEST_P sweeps) over the
 * system's core invariants:
 *
 *  - exact-mode partitioned simulation is cycle-exact against the
 *    monolithic golden run for every (design, split, transport,
 *    bitstream frequency) combination;
 *  - generated RV queues and skid buffers never drop, duplicate or
 *    reorder transactions under random valid/ready patterns;
 *  - the compiled netlist interpreter agrees with a direct
 *    tree-walking reference evaluator on random circuits;
 *  - token channels respect FIFO order and serialization spacing;
 *  - the way-partitioned cache matches a brute-force LRU reference;
 *  - uarch-model invariants hold across the whole workload suite.
 */

#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <tuple>

#include "base/bits.hh"
#include "base/logging.hh"
#include "base/random.hh"
#include "firrtl/builder.hh"
#include "firrtl/parser.hh"
#include "firrtl/printer.hh"
#include "goruntime/gc_model.hh"
#include "libdn/channel.hh"
#include "mem/cache.hh"
#include "passes/flatten.hh"
#include "platform/executor.hh"
#include "platform/fpga.hh"
#include "ripper/boundary.hh"
#include "ripper/partition.hh"
#include "rtlsim/simulator.hh"
#include "target/bus_soc.hh"
#include "target/paper_examples.hh"
#include "target/primitives.hh"
#include "transport/link.hh"
#include "uarch/core_model.hh"
#include "uarch/params.hh"

using namespace fireaxe;
using namespace fireaxe::firrtl;

// ---------------------------------------------------------------
// Exact-mode equivalence sweep.
// ---------------------------------------------------------------

struct ExactSweepParam
{
    unsigned totalTiles;
    unsigned tilesOut;
    const char *transport;
    double mhz;
};

class ExactEquivalence
    : public ::testing::TestWithParam<ExactSweepParam>
{};

TEST_P(ExactEquivalence, PartitionedMatchesMonolithicPerCycle)
{
    auto p = GetParam();
    target::BusSocConfig cfg;
    cfg.numTiles = p.totalTiles;
    cfg.memWords = 128;
    auto soc = target::buildBusSoc(cfg);
    const uint64_t cycles = 150;

    std::vector<uint64_t> mono;
    platform::runMonolithic(
        soc, nullptr,
        [&](rtlsim::Simulator &s, unsigned, uint64_t) {
            mono.push_back(s.peek("status"));
        },
        cycles);

    ripper::PartitionSpec spec;
    spec.mode = ripper::PartitionMode::Exact;
    spec.groups.push_back(
        {"tiles", target::busSocTilePaths(p.tilesOut), 1});
    auto plan = ripper::partition(soc, spec);

    transport::LinkParams link =
        std::string(p.transport) == "qsfp"
            ? transport::qsfpAurora()
            : (std::string(p.transport) == "pcie"
                   ? transport::pciePeerToPeer()
                   : transport::ethernetSwitch());
    platform::MultiFpgaSim sim(
        plan,
        {platform::alveoU250(p.mhz), platform::alveoU250(p.mhz)},
        link);
    std::vector<uint64_t> part;
    sim.setMonitor(0, [&](rtlsim::Simulator &s, unsigned, uint64_t) {
        part.push_back(s.peek("status"));
    });
    auto result = sim.run(cycles);
    ASSERT_FALSE(result.deadlocked);
    ASSERT_GE(part.size(), mono.size());
    for (size_t i = 0; i < mono.size(); ++i)
        ASSERT_EQ(part[i], mono[i]) << "cycle " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExactEquivalence,
    ::testing::Values(
        ExactSweepParam{2, 1, "qsfp", 20.0},
        ExactSweepParam{2, 1, "qsfp", 90.0},
        ExactSweepParam{2, 1, "pcie", 45.0},
        ExactSweepParam{2, 1, "ethernet", 45.0},
        ExactSweepParam{4, 1, "qsfp", 45.0},
        ExactSweepParam{4, 2, "qsfp", 20.0},
        ExactSweepParam{4, 2, "pcie", 90.0},
        ExactSweepParam{4, 3, "qsfp", 60.0},
        ExactSweepParam{4, 3, "ethernet", 20.0},
        ExactSweepParam{6, 3, "qsfp", 45.0},
        ExactSweepParam{6, 5, "pcie", 30.0},
        ExactSweepParam{8, 4, "qsfp", 75.0}),
    [](const auto &info) {
        std::ostringstream os;
        os << "t" << info.param.totalTiles << "_out"
           << info.param.tilesOut << "_" << info.param.transport
           << "_" << unsigned(info.param.mhz) << "mhz";
        return os.str();
    });

// ---------------------------------------------------------------
// Fast-mode transaction preservation across frequencies/links.
// ---------------------------------------------------------------

class FastModePreservation
    : public ::testing::TestWithParam<std::tuple<double, const char *>>
{};

TEST_P(FastModePreservation, TransactionsNeitherDroppedNorDuplicated)
{
    auto [mhz, transport_name] = GetParam();
    auto target = target::buildFig3Target();
    ripper::PartitionSpec spec;
    spec.mode = ripper::PartitionMode::Fast;
    spec.groups.push_back({"consumer", {"consumer"}, 1});
    auto plan = ripper::partition(target, spec);

    transport::LinkParams link =
        std::string(transport_name) == "qsfp"
            ? transport::qsfpAurora()
            : transport::pciePeerToPeer();
    platform::MultiFpgaSim sim(
        plan, {platform::alveoU250(mhz), platform::alveoU250(mhz)},
        link);
    auto result = sim.run(700);
    ASSERT_FALSE(result.deadlocked);
    auto &consumer = sim.model(1).sim();
    // 64 items, values 0..63: count and checksum both exact.
    EXPECT_EQ(consumer.peek("consumer/acc_count"), 64u);
    EXPECT_EQ(consumer.peek("consumer/acc_sum"), 2016u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FastModePreservation,
    ::testing::Combine(::testing::Values(15.0, 45.0, 90.0),
                       ::testing::Values("qsfp", "pcie")));

// ---------------------------------------------------------------
// RV queue property: random valid/ready traffic vs std::deque.
// ---------------------------------------------------------------

class QueueProperty
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned,
                                                 uint64_t>>
{};

TEST_P(QueueProperty, MatchesReferenceFifo)
{
    auto [width, depth, seed] = GetParam();
    CircuitBuilder cb("Q");
    target::addQueueModule(cb, "Q", width, depth);
    rtlsim::Simulator sim(passes::flattenAll(cb.finish()));

    Rng rng(seed);
    std::deque<uint64_t> reference;
    uint64_t next_value = 1;
    std::vector<uint64_t> pushed, popped;

    for (int step = 0; step < 500; ++step) {
        bool try_enq = rng.chance(0.6);
        bool try_deq = rng.chance(0.5);
        sim.poke("enq_valid", try_enq);
        sim.poke("enq_bits", next_value);
        sim.poke("deq_ready", try_deq);
        sim.evalComb();

        bool enq_fire = try_enq && sim.peek("enq_ready");
        bool deq_fire = try_deq && sim.peek("deq_valid");
        // Model invariants against the reference.
        ASSERT_EQ(sim.peek("enq_ready") != 0,
                  reference.size() < depth);
        ASSERT_EQ(sim.peek("deq_valid") != 0, !reference.empty());
        if (deq_fire) {
            ASSERT_EQ(sim.peek("deq_bits"),
                      reference.front() & fireaxe::bitMask(width));
            popped.push_back(sim.peek("deq_bits"));
            reference.pop_front();
        }
        if (enq_fire) {
            reference.push_back(next_value);
            pushed.push_back(next_value & fireaxe::bitMask(width));
            ++next_value;
        }
        sim.step();
    }
    // FIFO order end-to-end: everything popped is a prefix of
    // everything pushed.
    ASSERT_LE(popped.size(), pushed.size());
    for (size_t i = 0; i < popped.size(); ++i)
        ASSERT_EQ(popped[i], pushed[i]);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QueueProperty,
    ::testing::Combine(::testing::Values(1u, 5u, 32u),
                       ::testing::Values(2u, 4u, 16u),
                       ::testing::Values(7u, 99u)));

// ---------------------------------------------------------------
// Skid buffer property: conservative ready, full-capacity accepts.
// ---------------------------------------------------------------

class SkidProperty : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(SkidProperty, NeverDropsWithTwoCycleStaleReady)
{
    // Drive the skid the way the fast-mode boundary does: the
    // producer decides on ready observed two cycles ago.
    Circuit c;
    c.topName = ripper::addSkidBufferModule(c, {16});
    rtlsim::Simulator sim(passes::flattenAll(c));

    Rng rng(GetParam());
    std::deque<bool> ready_history = {true, true};
    std::deque<uint64_t> expected;
    uint64_t next_value = 1;
    std::vector<uint64_t> delivered;

    for (int step = 0; step < 400; ++step) {
        bool stale_ready = ready_history.front();
        ready_history.pop_front();

        bool send = rng.chance(0.7) && stale_ready;
        sim.poke("enq_valid", send);
        sim.poke("enq_bits0", next_value);
        bool drain = rng.chance(0.4);
        sim.poke("deq_ready", drain);
        sim.evalComb();

        if (send) {
            // Capacity guarantee: an in-flight item is ALWAYS
            // accepted even when the advertised ready is now low.
            ASSERT_LT(expected.size(), 4u) << "buffer overflow";
            expected.push_back(next_value++);
        }
        if (drain && sim.peek("deq_valid")) {
            ASSERT_FALSE(expected.empty());
            ASSERT_EQ(sim.peek("deq_bits0"), expected.front());
            delivered.push_back(expected.front());
            expected.pop_front();
        }
        ready_history.push_back(sim.peek("enq_ready") != 0);
        sim.step();
    }
    EXPECT_GT(delivered.size(), 50u); // real traffic flowed
}

INSTANTIATE_TEST_SUITE_P(Sweep, SkidProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// ---------------------------------------------------------------
// Interpreter vs tree-walking reference on random circuits.
// ---------------------------------------------------------------

namespace {

/** Slow reference evaluator: walks ExprPtr trees directly. */
uint64_t
refEval(const ExprPtr &e,
        const std::map<std::string, uint64_t> &env)
{
    auto clamp = [](uint64_t v, unsigned w) {
        return fireaxe::truncate(v, w);
    };
    switch (e->kind) {
      case ExprKind::Ref:
        return env.at(e->name);
      case ExprKind::Literal:
        return e->value;
      case ExprKind::UnOp: {
        uint64_t a = refEval(e->args[0], env);
        unsigned w = e->args[0]->width;
        switch (e->unOp) {
          case UnOpKind::Not: return clamp(~a, w);
          case UnOpKind::AndR: return a == fireaxe::bitMask(w);
          case UnOpKind::OrR: return a != 0;
          case UnOpKind::XorR: return __builtin_parityll(a);
        }
        break;
      }
      case ExprKind::BinOp: {
        uint64_t a = refEval(e->args[0], env);
        uint64_t b = refEval(e->args[1], env);
        uint64_t r = 0;
        switch (e->binOp) {
          case BinOpKind::Add: r = a + b; break;
          case BinOpKind::Sub: r = a - b; break;
          case BinOpKind::Mul: r = a * b; break;
          case BinOpKind::Div: r = b ? a / b : 0; break;
          case BinOpKind::Rem: r = b ? a % b : 0; break;
          case BinOpKind::And: r = a & b; break;
          case BinOpKind::Or: r = a | b; break;
          case BinOpKind::Xor: r = a ^ b; break;
          case BinOpKind::Eq: r = a == b; break;
          case BinOpKind::Neq: r = a != b; break;
          case BinOpKind::Lt: r = a < b; break;
          case BinOpKind::Leq: r = a <= b; break;
          case BinOpKind::Gt: r = a > b; break;
          case BinOpKind::Geq: r = a >= b; break;
          case BinOpKind::Shl: r = b >= 64 ? 0 : a << b; break;
          case BinOpKind::Shr: r = b >= 64 ? 0 : a >> b; break;
        }
        return clamp(r, e->width);
      }
      case ExprKind::Mux:
        return clamp(refEval(e->args[0], env)
                         ? refEval(e->args[1], env)
                         : refEval(e->args[2], env),
                     e->width);
      case ExprKind::Bits:
        return fireaxe::extractBits(refEval(e->args[0], env), e->hi, e->lo);
      case ExprKind::Cat:
        return clamp((refEval(e->args[0], env)
                      << e->args[1]->width) |
                         refEval(e->args[1], env),
                     e->width);
    }
    panic("unreachable");
}

/** Random expression over the given candidate signals. */
ExprPtr
randomExpr(Rng &rng, const std::vector<ExprPtr> &signals,
           unsigned fuel)
{
    if (fuel == 0 || rng.chance(0.3)) {
        if (rng.chance(0.3))
            return lit(rng.next(), unsigned(rng.range(1, 32)));
        return signals[rng.below(signals.size())];
    }
    switch (rng.below(4)) {
      case 0: {
        static const BinOpKind ops[] = {
            BinOpKind::Add, BinOpKind::Sub, BinOpKind::Mul,
            BinOpKind::And, BinOpKind::Or, BinOpKind::Xor,
            BinOpKind::Eq, BinOpKind::Lt, BinOpKind::Shr};
        return binOp(ops[rng.below(9)],
                     randomExpr(rng, signals, fuel - 1),
                     randomExpr(rng, signals, fuel - 1));
      }
      case 1:
        return mux(randomExpr(rng, signals, fuel - 1),
                   randomExpr(rng, signals, fuel - 1),
                   randomExpr(rng, signals, fuel - 1));
      case 2: {
        auto a = randomExpr(rng, signals, fuel - 1);
        unsigned hi = unsigned(rng.below(a->width));
        unsigned lo = unsigned(rng.below(hi + 1));
        return bits(a, hi, lo);
      }
      default:
        return unOp(UnOpKind::Not,
                    randomExpr(rng, signals, fuel - 1));
    }
}

} // namespace

class RandomCircuit : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(RandomCircuit, InterpreterMatchesTreeWalkingReference)
{
    Rng rng(GetParam() * 0x9e3779b9ull + 5);
    CircuitBuilder cb("R");
    auto m = cb.module("R");

    std::vector<ExprPtr> signals;
    std::vector<std::string> input_names;
    for (int i = 0; i < 4; ++i) {
        std::string name = "in" + std::to_string(i);
        signals.push_back(
            m.input(name, unsigned(rng.range(1, 32))));
        input_names.push_back(name);
    }
    std::vector<std::pair<std::string, ExprPtr>> defs; // wires+regs
    for (int i = 0; i < 6; ++i) {
        ExprPtr rhs = randomExpr(rng, signals, 3);
        std::string name = "w" + std::to_string(i);
        unsigned width = std::max(1u, rhs->width);
        auto w = m.wire(name, width);
        m.connect(name, rhs);
        defs.push_back({name, rhs});
        signals.push_back(w);
    }
    std::vector<std::tuple<std::string, ExprPtr, uint64_t, unsigned>>
        regs;
    for (int i = 0; i < 3; ++i) {
        std::string name = "r" + std::to_string(i);
        unsigned width = unsigned(rng.range(1, 32));
        uint64_t init = fireaxe::truncate(rng.next(), width);
        m.reg(name, width, init);
        ExprPtr rhs = randomExpr(rng, signals, 3);
        m.connect(name, rhs);
        regs.push_back({name, rhs, init, width});
        // Registers readable by later outputs only (keep the wire
        // definitions a DAG over inputs).
    }
    ExprPtr out_expr = randomExpr(rng, signals, 3);
    m.output("out", std::max(1u, out_expr->width));
    m.connect("out", out_expr);
    rtlsim::Simulator sim(cb.finish());

    // Reference state.
    std::map<std::string, uint64_t> env;
    for (const auto &[name, rhs, init, width] : regs)
        env[name] = init;

    for (int cycle = 0; cycle < 50; ++cycle) {
        for (const auto &name : input_names) {
            uint64_t v = rng.next();
            sim.poke(name, v);
            env[name] =
                fireaxe::truncate(v, sim.signal(sim.signalIndex(name)).width);
        }
        sim.evalComb();
        // Wires evaluate in declaration order (a DAG by
        // construction).
        for (const auto &[name, rhs] : defs) {
            env[name] = fireaxe::truncate(
                refEval(rhs, env),
                sim.signal(sim.signalIndex(name)).width);
            ASSERT_EQ(sim.peek(name), env[name])
                << name << " cycle " << cycle;
        }
        ASSERT_EQ(sim.peek("out"),
                  fireaxe::truncate(refEval(out_expr, env),
                           sim.signal(sim.signalIndex("out")).width))
            << "cycle " << cycle;

        // Step: registers latch their reference next-values.
        std::map<std::string, uint64_t> next_env = env;
        for (const auto &[name, rhs, init, width] : regs)
            next_env[name] = fireaxe::truncate(refEval(rhs, env), width);
        sim.step();
        env = next_env;
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomCircuit,
                         ::testing::Range(uint64_t(1),
                                          uint64_t(13)));

// ---------------------------------------------------------------
// Channel timing properties.
// ---------------------------------------------------------------

class ChannelTiming
    : public ::testing::TestWithParam<std::tuple<unsigned,
                                                 const char *>>
{};

TEST_P(ChannelTiming, FifoOrderAndSerializationSpacing)
{
    auto [width, transport_name] = GetParam();
    transport::LinkParams link =
        std::string(transport_name) == "qsfp"
            ? transport::qsfpAurora()
            : (std::string(transport_name) == "pcie"
                   ? transport::pciePeerToPeer()
                   : transport::hostManagedPcie());
    libdn::TokenChannel ch("c", width, 64);
    double ser = transport::tokenSerNs(link, width);
    ch.setTiming(ser, link.latencyNs);

    Rng rng(width);
    double now = 0.0;
    double last_ready = 0.0;
    for (int i = 0; i < 40; ++i) {
        now += rng.uniform() * ser; // sometimes faster than the link
        ch.enqTimed({uint64_t(i)}, now);
    }
    int expected = 0;
    while (!ch.empty()) {
        double ready = ch.headReadyTime();
        // FIFO order and monotone visibility.
        ASSERT_EQ(ch.head()[0], uint64_t(expected));
        ASSERT_GE(ready, last_ready + ser * 0.999)
            << "tokens closer than the serialization spacing";
        ASSERT_GE(ready, link.latencyNs);
        last_ready = ready;
        ++expected;
        ch.deq();
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ChannelTiming,
    ::testing::Combine(::testing::Values(8u, 64u, 512u, 4096u),
                       ::testing::Values("qsfp", "pcie", "host")));

// ---------------------------------------------------------------
// Cache vs brute-force LRU reference.
// ---------------------------------------------------------------

namespace {

/** Reference model: per-set vectors with explicit LRU scan. */
class RefCache
{
  public:
    explicit RefCache(const mem::CacheConfig &cfg) : cfg_(cfg)
    {
        sets_ = cfg.sizeBytes / cfg.lineBytes / cfg.ways;
        lines_.resize(sets_ * cfg.ways);
    }

    bool
    access(uint64_t addr, bool write, mem::WayClass cls,
           uint64_t time)
    {
        uint64_t line = addr / cfg_.lineBytes;
        uint64_t set = line & (sets_ - 1);
        auto *base = &lines_[set * cfg_.ways];
        for (unsigned w = 0; w < cfg_.ways; ++w) {
            if (base[w].valid && base[w].line == line) {
                base[w].time = time;
                return true;
            }
        }
        unsigned lo = cls == mem::WayClass::Io ? 0 : cfg_.ioWays;
        unsigned hi =
            cls == mem::WayClass::Io ? cfg_.ioWays : cfg_.ways;
        unsigned victim = lo;
        for (unsigned w = lo; w < hi; ++w) {
            if (!base[w].valid) {
                victim = w;
                break;
            }
            if (base[w].time < base[victim].time)
                victim = w;
        }
        base[victim] = {line, time, true};
        (void)write;
        return false;
    }

  private:
    struct Line
    {
        uint64_t line = 0;
        uint64_t time = 0;
        bool valid = false;
    };
    mem::CacheConfig cfg_;
    uint64_t sets_;
    std::vector<Line> lines_;
};

} // namespace

class CacheProperty
    : public ::testing::TestWithParam<std::tuple<unsigned, uint64_t>>
{};

TEST_P(CacheProperty, MatchesBruteForceLru)
{
    auto [ways, seed] = GetParam();
    mem::CacheConfig cfg;
    cfg.sizeBytes = 4096;
    cfg.ways = ways;
    cfg.ioWays = ways / 2;
    mem::WayPartitionedCache cache(cfg);
    RefCache ref(cfg);

    Rng rng(seed);
    for (uint64_t t = 1; t <= 4000; ++t) {
        uint64_t addr = rng.below(16 * 1024) & ~uint64_t(3);
        bool write = rng.chance(0.4);
        auto cls = rng.chance(0.5) ? mem::WayClass::Io
                                   : mem::WayClass::Core;
        bool model_hit = cache.access(addr, write, cls, t).hit;
        bool ref_hit = ref.access(addr, write, cls, t);
        ASSERT_EQ(model_hit, ref_hit) << "access " << t;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CacheProperty,
    ::testing::Combine(::testing::Values(2u, 4u, 8u),
                       ::testing::Values(11u, 12u, 13u)));

// ---------------------------------------------------------------
// uarch invariants across the full workload suite.
// ---------------------------------------------------------------

class UarchInvariants
    : public ::testing::TestWithParam<std::string>
{};

TEST_P(UarchInvariants, HoldAcrossCores)
{
    auto profile = uarch::embenchProfile(GetParam());
    profile.instructions = 30000;
    for (const auto &params :
         {uarch::largeBoomParams(), uarch::gc40BoomParams(),
          uarch::gcXeonParams()}) {
        uarch::CoreModel model(params);
        auto r = model.run(profile);
        // IPC bounded by machine width and strictly positive.
        EXPECT_GT(r.ipc(), 0.05) << params.name;
        EXPECT_LE(r.ipc(), double(params.issueWidth)) << params.name;
        // The TIP stack accounts for every cycle.
        EXPECT_NEAR(double(r.cpiStack.total()), double(r.cycles),
                    double(r.cycles) * 0.01)
            << params.name;
        // A wider/better machine never loses to the narrow one by
        // more than noise (GC40 dominates Large BOOM per-benchmark
        // in Fig. 7).
    }
    double large =
        uarch::CoreModel(uarch::largeBoomParams()).run(profile).ipc();
    double gc40 =
        uarch::CoreModel(uarch::gc40BoomParams()).run(profile).ipc();
    EXPECT_GE(gc40, large * 0.98) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Suite, UarchInvariants,
    ::testing::Values("nettle-aes", "nbody", "aha-mont64", "crc32",
                      "cubic", "huffbench", "matmult-int", "minver",
                      "nsichneu", "slre", "st", "wikisort"),
    [](const auto &info) {
        std::string name = info.param;
        for (auto &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

// ---------------------------------------------------------------
// Parser round-trip on random circuits.
// ---------------------------------------------------------------

class RandomRoundTrip : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(RandomRoundTrip, PrintParsePrintIsAFixpoint)
{
    // Reuse the random-circuit generator: build, print, parse, and
    // require both textual identity and identical simulation.
    Rng rng(GetParam() * 0x2545f4914f6cdd1dull + 99);
    CircuitBuilder cb("R");
    auto m = cb.module("R");
    std::vector<ExprPtr> signals;
    std::vector<std::string> input_names;
    for (int i = 0; i < 3; ++i) {
        std::string name = "in" + std::to_string(i);
        signals.push_back(m.input(name, unsigned(rng.range(1, 48))));
        input_names.push_back(name);
    }
    for (int i = 0; i < 5; ++i) {
        ExprPtr rhs = randomExpr(rng, signals, 3);
        std::string name = "w" + std::to_string(i);
        auto w = m.wire(name, std::max(1u, rhs->width));
        m.connect(name, rhs);
        signals.push_back(w);
    }
    auto r = m.reg("r0", 16, 3);
    m.connect("r0", bits(randomExpr(rng, signals, 2), 7, 0));
    signals.push_back(r);
    ExprPtr out = randomExpr(rng, signals, 3);
    m.output("out", std::max(1u, out->width));
    m.connect("out", out);
    Circuit original = cb.finish();

    std::string text = circuitToString(original);
    Circuit parsed = parseCircuitString(text);
    ASSERT_EQ(circuitToString(parsed), text);

    rtlsim::Simulator sim_a(passes::flattenAll(original));
    rtlsim::Simulator sim_b(passes::flattenAll(parsed));
    Rng drive(GetParam());
    for (int cycle = 0; cycle < 30; ++cycle) {
        for (const auto &name : input_names) {
            uint64_t v = drive.next();
            sim_a.poke(name, v);
            sim_b.poke(name, v);
        }
        sim_a.evalComb();
        sim_b.evalComb();
        ASSERT_EQ(sim_a.peek("out"), sim_b.peek("out"))
            << "cycle " << cycle;
        sim_a.step();
        sim_b.step();
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomRoundTrip,
                         ::testing::Range(uint64_t(1),
                                          uint64_t(11)));

// ---------------------------------------------------------------
// Go GC invariants across runtime configurations.
// ---------------------------------------------------------------

class GoGcSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{};

TEST_P(GoGcSweep, MultiThreadTailsStayBounded)
{
    auto [gomaxprocs, affinity] = GetParam();
    goruntime::GoGcConfig cfg;
    cfg.gomaxprocs = gomaxprocs;
    cfg.affinityCores = affinity;
    cfg.ticks = 60000;
    auto r = goruntime::runGoGcBenchmark(cfg);
    // Any multi-threaded configuration keeps the tail within a
    // couple of stop-the-world pauses — orders of magnitude below
    // the serial-GC regime.
    EXPECT_LT(r.p99Us, 3.0 * cfg.stwUs);
    EXPECT_LE(r.p95Us, r.p99Us);
    EXPECT_LE(r.p99Us, r.maxUs);
    EXPECT_GT(r.gcCycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GoGcSweep,
    ::testing::Values(std::make_tuple(2u, 1u), std::make_tuple(2u, 2u),
                      std::make_tuple(3u, 1u), std::make_tuple(3u, 3u),
                      std::make_tuple(4u, 1u),
                      std::make_tuple(4u, 4u)));
