/**
 * @file
 * Tests for the extension features: the FIRRTL text parser
 * (round-trip with the printer), VCD waveform dumping, the §VIII-B
 * automated partitioning flow, the §VIII-C Ethernet transport, and
 * the §VIII-A hybrid-cloud cost model.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "base/logging.hh"
#include "firrtl/builder.hh"
#include "firrtl/parser.hh"
#include "firrtl/printer.hh"
#include "passes/flatten.hh"
#include "platform/cost.hh"
#include "platform/executor.hh"
#include "platform/fpga.hh"
#include "ripper/autopartition.hh"
#include "ripper/partition.hh"
#include "rtlsim/simulator.hh"
#include "rtlsim/vcd.hh"
#include "target/bus_soc.hh"
#include "target/paper_examples.hh"
#include "transport/link.hh"

using namespace fireaxe;
using namespace fireaxe::firrtl;

TEST(Parser, RoundTripsSmallCircuit)
{
    CircuitBuilder cb("T");
    auto m = cb.module("T");
    auto a = m.input("a", 8);
    m.output("o", 8);
    auto r = m.reg("r", 8, 42);
    m.mem("ram", 16, 8);
    m.connect("ram.raddr", bits(a, 3, 0));
    m.connect("r", eXor(a, m.sig("ram.rdata")));
    m.connect("o", mux(eEq(r, lit(0, 8)), lit(1, 8), r));
    Circuit original = cb.finish();

    Circuit parsed = parseCircuitString(circuitToString(original));
    // Round-trip fixpoint: print(parse(print(c))) == print(c).
    EXPECT_EQ(circuitToString(parsed), circuitToString(original));
}

TEST(Parser, RoundTripsEveryTargetGenerator)
{
    std::vector<Circuit> designs;
    designs.push_back(target::buildFig2Target());
    designs.push_back(target::buildFig3Target());
    target::BusSocConfig cfg;
    cfg.numTiles = 3;
    designs.push_back(target::buildBusSoc(cfg));

    for (const auto &design : designs) {
        std::string text = circuitToString(design);
        Circuit parsed = parseCircuitString(text);
        EXPECT_EQ(circuitToString(parsed), text) << design.topName;
    }
}

TEST(Parser, ParsedCircuitSimulatesIdentically)
{
    target::BusSocConfig cfg;
    cfg.numTiles = 2;
    cfg.memWords = 64;
    auto original = target::buildBusSoc(cfg);
    auto parsed = parseCircuitString(circuitToString(original));

    rtlsim::Simulator sim_a(passes::flattenAll(original));
    rtlsim::Simulator sim_b(passes::flattenAll(parsed));
    for (int i = 0; i < 200; ++i) {
        ASSERT_EQ(sim_a.peek("status"), sim_b.peek("status"))
            << "cycle " << i;
        sim_a.step();
        sim_b.step();
    }
}

TEST(Parser, PreservesAnnotationsAndAttributes)
{
    target::BusSocConfig cfg;
    cfg.numTiles = 2;
    auto parsed =
        parseCircuitString(circuitToString(target::buildBusSoc(cfg)));
    const Module *tile = parsed.findModule("CoreTile");
    ASSERT_NE(tile, nullptr);
    ASSERT_EQ(tile->rvBundles.size(), 2u);
    EXPECT_EQ(tile->rvBundles[0].name, "req");
    EXPECT_TRUE(tile->rvBundles[0].isSource);
    EXPECT_EQ(tile->rvBundles[0].dataPorts.size(), 3u);
    EXPECT_EQ(tile->rvBundles[1].validPort, "resp_valid");
}

TEST(Parser, RejectsMalformedInput)
{
    EXPECT_THROW(parseCircuitString("module X :\n"), FatalError);
    EXPECT_THROW(parseCircuitString("circuit T :\n  junk line\n"),
                 FatalError);
    EXPECT_THROW(parseCircuitString("circuit T :\n  module T :\n"
                                    "    output o : UInt<4>\n"
                                    "    o <= frob(1)\n"),
                 FatalError);
}

TEST(Parser, ParsesStandaloneExpressions)
{
    CircuitBuilder cb("T");
    auto m = cb.module("T");
    m.input("a", 8);
    m.output("o", 9);
    m.connect("o", eAdd(m.sig("a"), lit(1, 8)));
    Circuit c = cb.finish();
    const Module &mod = c.top();

    auto e = parseExpr("add(a, UInt<8>(3))", c, mod);
    EXPECT_EQ(printExpr(e), "add(a, UInt<8>(3))");
    EXPECT_EQ(e->width, 9u);
    EXPECT_THROW(parseExpr("add(a", c, mod), FatalError);
    EXPECT_THROW(parseExpr("nope", c, mod), FatalError);
}

TEST(Vcd, EmitsHeaderInitialDumpAndChanges)
{
    CircuitBuilder cb("T");
    auto m = cb.module("T");
    m.output("count", 4);
    auto r = m.reg("cnt", 4, 0);
    m.connect("cnt", bits(eAdd(r, lit(1, 4)), 3, 0));
    m.connect("count", r);

    rtlsim::Simulator sim(cb.finish());
    std::ostringstream os;
    rtlsim::VcdWriter vcd(os, sim);
    vcd.sample();
    for (int i = 0; i < 3; ++i) {
        sim.step();
        vcd.sample();
    }

    std::string text = os.str();
    EXPECT_NE(text.find("$timescale 1ns $end"), std::string::npos);
    EXPECT_NE(text.find("$var wire 4"), std::string::npos);
    EXPECT_NE(text.find("$dumpvars"), std::string::npos);
    EXPECT_NE(text.find("#0"), std::string::npos);
    EXPECT_NE(text.find("#3"), std::string::npos);
    // Cycle 3: counter value 0b11.
    EXPECT_NE(text.find("b11 "), std::string::npos);
}

TEST(Vcd, OnlyChangedSignalsAfterFirstSample)
{
    CircuitBuilder cb("T");
    auto m = cb.module("T");
    m.output("steady", 8);
    m.reg("r", 8, 7);
    m.connect("steady", m.sig("r"));
    rtlsim::Simulator sim(cb.finish());

    std::ostringstream os;
    rtlsim::VcdWriter vcd(os, sim);
    vcd.sample();
    size_t after_first = os.str().size();
    sim.step();
    vcd.sample();
    // Nothing changed: only the timestamp line is appended.
    std::string delta = os.str().substr(after_first);
    EXPECT_EQ(delta, "#1\n");
}

TEST(AutoPartition, PacksTilesWithinBudget)
{
    target::BusSocConfig cfg;
    cfg.numTiles = 6;
    auto soc = target::buildBusSoc(cfg);

    ripper::AutoPartitionOptions opts;
    opts.lutBudget = 1400; // a tile ~250 LUTs, rest ~900
    opts.maxFpgas = 8;
    auto result = ripper::autoPartition(soc, opts);

    EXPECT_TRUE(result.fits);
    EXPECT_GT(result.fpgasUsed, 1u);
    for (const auto &bin : result.bins)
        EXPECT_LE(bin.luts, opts.lutBudget);
    // All six tiles placed exactly once.
    std::set<std::string> placed;
    for (const auto &bin : result.bins)
        placed.insert(bin.instances.begin(), bin.instances.end());
    EXPECT_EQ(placed.size(), 6u);
}

TEST(AutoPartition, ResultRunsCycleExact)
{
    target::BusSocConfig cfg;
    cfg.numTiles = 4;
    cfg.memWords = 256;
    auto soc = target::buildBusSoc(cfg);

    ripper::AutoPartitionOptions opts;
    opts.lutBudget = 900;
    auto result = ripper::autoPartition(soc, opts);
    ASSERT_FALSE(result.spec.groups.empty());

    auto plan = ripper::partition(soc, result.spec);
    platform::MultiFpgaSim sim(
        plan,
        std::vector<platform::FpgaSpec>(plan.partitions.size(),
                                        platform::alveoU250(40.0)),
        transport::qsfpAurora());

    std::vector<uint64_t> mono, part;
    platform::runMonolithic(
        soc, nullptr,
        [&](rtlsim::Simulator &s, unsigned, uint64_t) {
            mono.push_back(s.peek("status"));
        },
        200);
    sim.setMonitor(0, [&](rtlsim::Simulator &s, unsigned, uint64_t) {
        part.push_back(s.peek("status"));
    });
    auto run = sim.run(200);
    EXPECT_FALSE(run.deadlocked);
    ASSERT_GE(part.size(), mono.size());
    for (size_t i = 0; i < mono.size(); ++i)
        ASSERT_EQ(part[i], mono[i]);
}

TEST(AutoPartition, OverBudgetRestPartitionReported)
{
    // The top module's own logic cannot be moved at instance
    // granularity; when it alone exceeds the budget the placement
    // is reported as not fitting rather than silently accepted.
    target::BusSocConfig cfg;
    cfg.numTiles = 6;
    auto soc = target::buildBusSoc(cfg);
    ripper::AutoPartitionOptions opts;
    opts.lutBudget = 800; // rest-of-SoC needs ~900
    auto result = ripper::autoPartition(soc, opts);
    EXPECT_FALSE(result.fits);
}

TEST(AutoPartition, SingleFpgaWhenEverythingFits)
{
    target::BusSocConfig cfg;
    cfg.numTiles = 2;
    auto soc = target::buildBusSoc(cfg);
    ripper::AutoPartitionOptions opts;
    opts.lutBudget = 10000000;
    auto result = ripper::autoPartition(soc, opts);
    EXPECT_EQ(result.fpgasUsed, 1u);
    EXPECT_TRUE(result.spec.groups.empty());
}

TEST(AutoPartition, OversizedInstanceRejected)
{
    target::BusSocConfig cfg;
    cfg.numTiles = 2;
    auto soc = target::buildBusSoc(cfg);
    ripper::AutoPartitionOptions opts;
    opts.lutBudget = 10; // smaller than any tile
    EXPECT_THROW(ripper::autoPartition(soc, opts), FatalError);
}

TEST(AutoPartition, FpgaLimitEnforced)
{
    target::BusSocConfig cfg;
    cfg.numTiles = 8;
    auto soc = target::buildBusSoc(cfg);
    ripper::AutoPartitionOptions opts;
    opts.lutBudget = 300; // ~one tile per FPGA
    opts.maxFpgas = 3;
    EXPECT_THROW(ripper::autoPartition(soc, opts), FatalError);
}

TEST(AutoPartition, ReportListsEveryBin)
{
    target::BusSocConfig cfg;
    cfg.numTiles = 4;
    auto soc = target::buildBusSoc(cfg);
    ripper::AutoPartitionOptions opts;
    opts.lutBudget = 900;
    auto result = ripper::autoPartition(soc, opts);
    std::string report = ripper::describeAutoPartition(result);
    EXPECT_NE(report.find("fpga0 (rest)"), std::string::npos);
    EXPECT_NE(report.find("tile0"), std::string::npos);
}

TEST(Ethernet, SlowerThanQsfpButUsable)
{
    auto plan = ripper::partition(
        target::buildFig2Target(),
        {ripper::PartitionMode::Exact, {{"blockB", {"blockB"}, 1}}});

    auto rate = [&](const transport::LinkParams &link) {
        platform::MultiFpgaSim sim(
            plan,
            {platform::alveoU250(60.0), platform::alveoU250(60.0)},
            link);
        auto r = sim.run(200);
        EXPECT_FALSE(r.deadlocked);
        return r.simRateMhz();
    };
    double qsfp = rate(transport::qsfpAurora());
    double eth = rate(transport::ethernetSwitch());
    EXPECT_LT(eth, qsfp);
    EXPECT_GT(eth, 0.05); // still hundreds of kHz
}

TEST(HybridCost, CloudCheaperForShortCampaigns)
{
    auto cheap = platform::projectCampaign(10.0, 2);
    EXPECT_LT(cheap.cloudUsd, cheap.onPremUsd);
}

TEST(HybridCost, OnPremWinsPastBreakEven)
{
    auto c = platform::projectCampaign(100.0, 2);
    auto long_run =
        platform::projectCampaign(c.breakEvenHours * 2.0, 2);
    EXPECT_GT(long_run.cloudUsd, long_run.onPremUsd);
    // On-prem also finishes faster (QSFP vs PCIe p2p).
    EXPECT_LT(long_run.onPremHours, long_run.cloudHours);
}

TEST(HybridCost, BreakEvenIsConsistent)
{
    platform::DeploymentCosts costs;
    auto at = platform::projectCampaign(1.0, 1, costs);
    auto even =
        platform::projectCampaign(at.breakEvenHours, 1, costs);
    EXPECT_NEAR(even.cloudUsd, even.onPremUsd,
                even.onPremUsd * 0.02);
}

TEST(Checkpoint, ResumesExactly)
{
    target::BusSocConfig cfg;
    cfg.numTiles = 2;
    cfg.memWords = 64;
    auto flat = passes::flattenAll(target::buildBusSoc(cfg));

    rtlsim::Simulator sim(flat);
    sim.run(137);
    std::stringstream snap;
    sim.saveCheckpoint(snap);

    // Continue the original for a reference trajectory.
    std::vector<uint64_t> reference;
    for (int i = 0; i < 100; ++i) {
        reference.push_back(sim.peek("status"));
        sim.step();
    }

    // Restore into a fresh simulator and replay.
    rtlsim::Simulator restored(flat);
    restored.loadCheckpoint(snap);
    EXPECT_EQ(restored.cycle(), 137u);
    for (int i = 0; i < 100; ++i) {
        ASSERT_EQ(restored.peek("status"), reference[i])
            << "cycle offset " << i;
        restored.step();
    }
}

/** Checkpoints are an engine-neutral contract: a snapshot taken
 *  under one evaluation engine must restore bit-exactly into a
 *  simulator running the other one, in both directions. */
TEST(Checkpoint, CrossEngineRestoreMatches)
{
    target::BusSocConfig cfg;
    cfg.numTiles = 2;
    cfg.memWords = 64;
    auto flat = passes::flattenAll(target::buildBusSoc(cfg));

    struct Direction
    {
        rtlsim::EvalEngine saveEngine;
        rtlsim::EvalEngine loadEngine;
    };
    const Direction dirs[] = {
        {rtlsim::EvalEngine::Interpret, rtlsim::EvalEngine::Compiled},
        {rtlsim::EvalEngine::Compiled, rtlsim::EvalEngine::Interpret},
    };
    for (const auto &dir : dirs) {
        rtlsim::Simulator sim(flat, dir.saveEngine);
        sim.run(137);
        std::stringstream snap;
        sim.saveCheckpoint(snap);

        std::vector<uint64_t> reference;
        for (int i = 0; i < 100; ++i) {
            reference.push_back(sim.peek("status"));
            sim.step();
        }

        rtlsim::Simulator restored(flat, dir.loadEngine);
        restored.loadCheckpoint(snap);
        EXPECT_EQ(restored.cycle(), 137u);
        for (int i = 0; i < 100; ++i) {
            ASSERT_EQ(restored.peek("status"), reference[i])
                << "cycle offset " << i << ", "
                << rtlsim::toString(dir.saveEngine) << " -> "
                << rtlsim::toString(dir.loadEngine);
            restored.step();
        }
    }
}

/** The FAME-5 state-swap primitive (saveState/loadState) must also
 *  be portable across engines, including the activity-gated one. */
TEST(Checkpoint, CrossEngineSeqStateSwap)
{
    target::BusSocConfig cfg;
    cfg.numTiles = 2;
    cfg.memWords = 64;
    auto flat = passes::flattenAll(target::buildBusSoc(cfg));

    rtlsim::Simulator interp(flat, rtlsim::EvalEngine::Interpret);
    rtlsim::Simulator compiled(flat, rtlsim::EvalEngine::Compiled);
    interp.run(53);

    rtlsim::SeqState state;
    interp.saveState(state);
    compiled.loadState(state);
    compiled.evalComb();
    interp.evalComb();

    for (int i = 0; i < 100; ++i) {
        ASSERT_EQ(compiled.peek("status"), interp.peek("status"))
            << "cycle offset " << i;
        interp.step();
        compiled.step();
    }
}

TEST(Checkpoint, RejectsMismatchedDesign)
{
    target::BusSocConfig small, big;
    small.numTiles = 1;
    big.numTiles = 3;
    rtlsim::Simulator sim_a(
        passes::flattenAll(target::buildBusSoc(small)));
    rtlsim::Simulator sim_b(
        passes::flattenAll(target::buildBusSoc(big)));
    std::stringstream snap;
    sim_a.saveCheckpoint(snap);
    EXPECT_THROW(sim_b.loadCheckpoint(snap), FatalError);
}

TEST(Checkpoint, RejectsGarbageStream)
{
    target::BusSocConfig cfg;
    cfg.numTiles = 1;
    rtlsim::Simulator sim(
        passes::flattenAll(target::buildBusSoc(cfg)));
    std::stringstream junk("not a checkpoint at all");
    EXPECT_THROW(sim.loadCheckpoint(junk), FatalError);
}

TEST(Vcd, AttachesToPartitionedSimulation)
{
    auto plan = ripper::partition(
        target::buildFig2Target(),
        {ripper::PartitionMode::Exact, {{"blockB", {"blockB"}, 1}}});
    platform::MultiFpgaSim sim(
        plan,
        {platform::alveoU250(30.0), platform::alveoU250(30.0)},
        transport::qsfpAurora());
    std::ostringstream wave;
    sim.attachVcd(1, wave);
    auto result = sim.run(50);
    EXPECT_FALSE(result.deadlocked);
    std::string text = wave.str();
    EXPECT_NE(text.find("$scope module blockB $end"),
              std::string::npos);
    EXPECT_NE(text.find("$dumpvars"), std::string::npos);
    // Waveform covers the simulated cycle range.
    EXPECT_NE(text.find("#49"), std::string::npos);
}
