/**
 * @file
 * Tests of the observability subsystem: metrics-registry path
 * resolution and handle stability, bounded-reservoir histogram
 * percentiles, tracer ring-buffer wraparound and Chrome JSON export,
 * and — the invariant that matters — a telemetry-instrumented
 * partitioned run staying bit-exact against the monolithic golden
 * reference while producing a well-formed metrics snapshot.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "base/logging.hh"
#include "obs/critpath.hh"
#include "obs/jsonparse.hh"
#include "obs/metrics.hh"
#include "obs/telemetry.hh"
#include "obs/tokentrace.hh"
#include "obs/trace.hh"
#include "platform/executor.hh"
#include "platform/fpga.hh"
#include "ripper/partition.hh"
#include "target/bus_soc.hh"
#include "transport/link.hh"

using namespace fireaxe;
using namespace fireaxe::obs;

// ---------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------

TEST(Metrics, PathResolutionAndReRegistration)
{
    MetricsRegistry reg;
    Counter &c = reg.counter("chan.c01.tokens_enqueued");
    Gauge &g = reg.gauge("part.tiles.fmr");
    Histogram &h = reg.histogram("chan.c01.token_latency_ns");

    c.add(3);
    g.set(7.5);
    h.observe(100.0);

    // Re-resolving the same path returns the same handle (and thus
    // the same value), even after other registrations.
    reg.counter("zzz.later");
    EXPECT_EQ(&reg.counter("chan.c01.tokens_enqueued"), &c);
    EXPECT_EQ(&reg.gauge("part.tiles.fmr"), &g);
    EXPECT_EQ(&reg.histogram("chan.c01.token_latency_ns"), &h);
    EXPECT_EQ(c.value(), 3u);
    EXPECT_DOUBLE_EQ(g.value(), 7.5);
    EXPECT_EQ(reg.size(), 4u);

    // Resolving an existing path as a different kind is a caller
    // error, as is an empty path.
    EXPECT_THROW(reg.gauge("chan.c01.tokens_enqueued"), FatalError);
    EXPECT_THROW(reg.counter(""), FatalError);
}

TEST(Metrics, NullableHandleHelpersAreNoOps)
{
    Counter *c = nullptr;
    Gauge *g = nullptr;
    Histogram *h = nullptr;
    add(c);
    set(g, 1.0);
    observe(h, 2.0); // must not crash

    Counter real;
    add(&real, 5);
    EXPECT_EQ(real.value(), 5u);
}

TEST(Metrics, SnapshotJsonAndAccessors)
{
    MetricsRegistry reg;
    reg.counter("a.count").add(42);
    reg.gauge("a.rate").set(2.25);
    Histogram &h = reg.histogram("a.lat");
    for (int i = 1; i <= 100; ++i)
        h.observe(double(i));

    MetricsSnapshot snap = reg.snapshot();
    EXPECT_TRUE(snap.has("a.count"));
    EXPECT_EQ(snap.counter("a.count"), 42u);
    EXPECT_DOUBLE_EQ(snap.gauge("a.rate"), 2.25);
    const MetricValue *mv = snap.find("a.lat");
    ASSERT_NE(mv, nullptr);
    EXPECT_EQ(mv->count, 100u);
    EXPECT_DOUBLE_EQ(mv->min, 1.0);
    EXPECT_DOUBLE_EQ(mv->max, 100.0);

    std::ostringstream os;
    snap.writeJson(os);
    std::string json = os.str();
    EXPECT_NE(json.find("\"schema\":\"fireaxe.metrics.v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"a.count\""), std::string::npos);
    // Every histogram carries the full percentile set.
    EXPECT_NE(json.find("\"p50\""), std::string::npos);
    EXPECT_NE(json.find("\"p95\""), std::string::npos);
    EXPECT_NE(json.find("\"p99\""), std::string::npos);
    EXPECT_NEAR(mv->p50, 50.0, 2.0);
    EXPECT_NEAR(mv->p95, 95.0, 2.0);
    EXPECT_NEAR(mv->p99, 99.0, 2.0);

    std::ostringstream csv;
    snap.writeCsv(csv);
    EXPECT_NE(csv.str().find("a.rate"), std::string::npos);
    EXPECT_NE(csv.str().find(",p50,p90,p95,p99"), std::string::npos);
}

TEST(Metrics, ResetKeepsHandlesAndClearsValues)
{
    MetricsRegistry reg;
    Counter &c = reg.counter("x");
    c.add(9);
    reg.reset();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(&reg.counter("x"), &c);
}

// ---------------------------------------------------------------
// Histogram reservoir behaviour (satellite: bounded memory)
// ---------------------------------------------------------------

TEST(Metrics, HistogramExactBelowReservoirCap)
{
    Histogram h(1024);
    // 0..999 shuffled deterministically: below the cap every sample
    // is kept and percentiles are exact.
    std::vector<double> vals;
    for (int i = 0; i < 1000; ++i)
        vals.push_back(double((i * 757) % 1000));
    for (double v : vals)
        h.observe(v);

    EXPECT_TRUE(h.exact());
    EXPECT_EQ(h.count(), 1000u);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 999.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 999.0);
    EXPECT_NEAR(h.percentile(50.0), 500.0, 1.0);
    EXPECT_NEAR(h.percentile(90.0), 900.0, 1.0);
}

TEST(Metrics, HistogramApproximateAboveReservoirCap)
{
    // 100k uniform samples through a 4k reservoir: the count, mean,
    // min and max stay exact; percentiles come from the reservoir
    // and must land within a few percent of the true quantile.
    const size_t cap = 4096;
    Histogram h(cap);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        h.observe(double((i * 7919) % n));

    EXPECT_FALSE(h.exact());
    EXPECT_EQ(h.count(), uint64_t(n));
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), double(n - 1));
    EXPECT_NEAR(h.mean(), (n - 1) / 2.0, n * 0.001);
    // p0/p100 are served from the exact extrema even above the cap.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), double(n - 1));
    EXPECT_NEAR(h.percentile(50.0), n * 0.50, n * 0.05);
    EXPECT_NEAR(h.percentile(90.0), n * 0.90, n * 0.05);
    EXPECT_EQ(h.reservoirCap(), cap);
}

// ---------------------------------------------------------------
// Tracer ring buffer
// ---------------------------------------------------------------

TEST(Trace, RingBufferWraparoundKeepsNewestInOrder)
{
    Tracer tr(8);
    for (int i = 0; i < 20; ++i)
        tr.instant("e" + std::to_string(i), "test", double(i));

    EXPECT_EQ(tr.size(), 8u);
    EXPECT_EQ(tr.totalEmitted(), 20u);
    EXPECT_EQ(tr.dropped(), 12u);

    // The survivors are the last 8 events, visited oldest-first.
    std::vector<std::string> names;
    tr.forEachOrdered([&](const TraceEvent &ev) {
        names.push_back(ev.name);
    });
    ASSERT_EQ(names.size(), 8u);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(names[i], "e" + std::to_string(12 + i));

    tr.clear();
    EXPECT_EQ(tr.size(), 0u);
}

TEST(Trace, ChromeJsonExport)
{
    Tracer tr(64);
    tr.setProcessName(0, "tiles");
    tr.instant("nak", "reliability", 1500.0, 0);
    tr.complete("advance", "fsm", 2000.0, 20.0, 0, 1);

    std::ostringstream os;
    tr.writeChromeJson(os);
    std::string json = os.str();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("process_name"), std::string::npos);
    EXPECT_NE(json.find("\"tiles\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    // ns -> us conversion: the 2000 ns event lands at ts 2 us.
    EXPECT_NE(json.find("\"ts\":2,"), std::string::npos);
}

TEST(Trace, WrapSetsFlagAndWarnsExactlyOnce)
{
    // The first overwrite flips wrapped() and emits one warning;
    // subsequent overwrites stay silent (the counter keeps moving).
    std::ostringstream captured;
    std::streambuf *old = std::cerr.rdbuf(captured.rdbuf());

    Tracer tr(4);
    EXPECT_FALSE(tr.wrapped());
    for (int i = 0; i < 3; ++i)
        tr.instant("e", "test", double(i));
    EXPECT_FALSE(tr.wrapped());
    EXPECT_EQ(tr.dropped(), 0u);

    for (int i = 0; i < 13; ++i)
        tr.instant("e", "test", double(i));
    std::cerr.rdbuf(old);

    EXPECT_TRUE(tr.wrapped());
    EXPECT_EQ(tr.totalEmitted(), 16u);
    EXPECT_EQ(tr.dropped(), 12u);

    const std::string out = captured.str();
    size_t first = out.find("ring buffer full");
    ASSERT_NE(first, std::string::npos) << out;
    EXPECT_EQ(out.find("ring buffer full", first + 1),
              std::string::npos)
        << "wrap warning emitted more than once:\n"
        << out;
    EXPECT_NE(out.find("trace.dropped_events"), std::string::npos);
}

// ---------------------------------------------------------------
// Token-level causal tracing
// ---------------------------------------------------------------

TEST(TokenTrace, SamplingGateAndLifecycleRecord)
{
    TokenTraceCollector tc(/*sample_every=*/4, /*capacity=*/64);
    EXPECT_EQ(tc.sampleEvery(), 4u);
    EXPECT_TRUE(tc.sampled(4));
    EXPECT_TRUE(tc.sampled(8));
    EXPECT_FALSE(tc.sampled(5));
    EXPECT_FALSE(tc.sampled(7));

    int ch = tc.registerChannel("c01", 0, 1);
    ASSERT_EQ(ch, 0);
    auto chans = tc.channels();
    ASSERT_EQ(chans.size(), 1u);
    EXPECT_EQ(chans[0].name, "c01");
    EXPECT_EQ(chans[0].srcPart, 0);
    EXPECT_EQ(chans[0].dstPart, 1);

    // produce 100, depart 140, ready 220 (flight 80), then a NAK
    // pushes visibility out to 400, retired at 450 firing cycle 7.
    tc.onEnqueue(ch, 4, 100.0, 140.0, 220.0, 80.0, 0.0);
    tc.onNak(ch, 4, 250.0, 150.0);
    EXPECT_EQ(tc.buffered(), 1u);
    tc.onRetire(ch, 4, 450.0, 7);

    // Retiring a never-enqueued (unsampled) seq is a silent no-op.
    tc.onRetire(ch, 5, 460.0, 8);

    auto recs = tc.drainFired();
    ASSERT_EQ(recs.size(), 1u);
    const TokenRecord &r = recs[0];
    EXPECT_EQ(r.channel, ch);
    EXPECT_EQ(r.seq, 4u);
    EXPECT_EQ(r.srcPart, 0);
    EXPECT_EQ(r.dstPart, 1);
    EXPECT_EQ(r.targetCycle, 7u);
    EXPECT_DOUBLE_EQ(r.produceNs, 100.0);
    EXPECT_DOUBLE_EQ(r.departNs, 140.0);
    EXPECT_DOUBLE_EQ(r.readyNs, 400.0); // NAK extended 250+150
    EXPECT_DOUBLE_EQ(r.nakNs, 150.0);
    EXPECT_EQ(r.naks, 1u);
    EXPECT_DOUBLE_EQ(r.deliverNs, 450.0);
    EXPECT_DOUBLE_EQ(r.fireNs, 450.0);
    EXPECT_TRUE(r.fired);

    EXPECT_EQ(tc.recordsCreated(), 1u);
    EXPECT_EQ(tc.recordsDrained(), 1u);
    EXPECT_EQ(tc.recordsDropped(), 0u);
    EXPECT_EQ(tc.buffered(), 0u);
    EXPECT_TRUE(tc.drainFired().empty());
}

TEST(TokenTrace, CapacityBoundDropsAndCounts)
{
    TokenTraceCollector tc(/*sample_every=*/1, /*capacity=*/2);
    int ch = tc.registerChannel("c01", 0, 1);

    tc.onEnqueue(ch, 1, 0.0, 1.0, 2.0, 1.0, 0.0);
    tc.onEnqueue(ch, 2, 0.0, 1.0, 2.0, 1.0, 0.0);
    tc.onEnqueue(ch, 3, 0.0, 1.0, 2.0, 1.0, 0.0); // over the bound
    EXPECT_EQ(tc.recordsCreated(), 2u);
    EXPECT_EQ(tc.recordsDropped(), 1u);
    EXPECT_EQ(tc.buffered(), 2u);

    // Draining completed records frees budget for new samples.
    tc.onRetire(ch, 1, 5.0, 1);
    tc.onRetire(ch, 2, 5.0, 1);
    EXPECT_EQ(tc.drainFired().size(), 2u);
    tc.onEnqueue(ch, 4, 6.0, 7.0, 8.0, 1.0, 0.0);
    EXPECT_EQ(tc.recordsCreated(), 3u);
    EXPECT_EQ(tc.recordsDropped(), 1u);
}

// ---------------------------------------------------------------
// Critical-path analyzer (synthetic records)
// ---------------------------------------------------------------

namespace {

/** Fired record on @p channel delivering into the fire at
 *  @p fire_ns for @p cycle; ready @p ready_back ns before the
 *  fire. Stage times: produce = fire-600, depart = fire-300. */
TokenRecord
syntheticRecord(const TokenChannelInfo &ch, uint64_t cycle,
                double fire_ns, double ready_back)
{
    TokenRecord r;
    r.channel = ch.id;
    r.seq = cycle;
    r.srcPart = ch.srcPart;
    r.dstPart = ch.dstPart;
    r.targetCycle = cycle;
    r.produceNs = fire_ns - 600.0;
    r.departNs = fire_ns - 300.0;
    r.readyNs = fire_ns - ready_back;
    r.flightNs = 100.0;
    r.deliverNs = fire_ns;
    r.fireNs = fire_ns;
    r.fired = true;
    return r;
}

} // namespace

TEST(CritPath, AttributesWaitToLastReadyChannel)
{
    // Two channels feed partition 2; channel "b_to_c"'s token is
    // always the last to become visible, so every analyzed fire
    // window must attribute its wait there. Fires are 1000 ns apart;
    // in each window (start = fire - 1000):
    //   upstream = produce - start = 400
    //   ser      = depart - produce = 300
    //   flight   = ready - depart   = 200   (ready = fire - 100)
    //   compute slack = fire - ready = 100  -> wait = 900
    CritPathInput input;
    input.channels = {{0, "a_to_c", 0, 2}, {1, "b_to_c", 1, 2}};
    input.partNames = {"pa", "pb", "pc"};
    input.sampleEvery = 1;
    for (uint64_t cycle = 1; cycle <= 4; ++cycle) {
        double fire = 1000.0 * double(cycle);
        input.records.push_back(
            syntheticRecord(input.channels[0], cycle, fire, 400.0));
        input.records.push_back(
            syntheticRecord(input.channels[1], cycle, fire, 100.0));
    }
    // Windows 2..4 are analyzed (the first fire opens the walk):
    // 3 windows x 900 ns of wait, which the ground truth confirms.
    input.measuredWaitNs[2] = 2700.0;

    CritPathReport report = analyzeCriticalPath(input);
    EXPECT_FALSE(report.empty());
    EXPECT_EQ(report.recordsAnalyzed, 8u);
    EXPECT_EQ(report.firesAnalyzed, 3u);

    ASSERT_EQ(report.channels.size(), 1u);
    const ChannelAttribution &ca = report.channels[0];
    EXPECT_EQ(ca.name, "b_to_c");
    EXPECT_EQ(ca.srcPart, 1);
    EXPECT_EQ(ca.dstPart, 2);
    EXPECT_EQ(ca.blockingFires, 3u);
    EXPECT_DOUBLE_EQ(ca.waitNs, 2700.0);
    EXPECT_DOUBLE_EQ(ca.upstreamNs, 1200.0);
    EXPECT_DOUBLE_EQ(ca.serNs, 900.0);
    EXPECT_DOUBLE_EQ(ca.flightNs, 600.0);
    EXPECT_DOUBLE_EQ(ca.rtxNs, 0.0);
    EXPECT_DOUBLE_EQ(ca.waitSharePct, 100.0);
    // The breakdown is a partition of the attributed wait.
    EXPECT_DOUBLE_EQ(ca.upstreamNs + ca.serNs + ca.flightNs +
                         ca.rtxNs,
                     ca.waitNs);

    ASSERT_EQ(report.partitions.size(), 1u);
    const PartitionAttribution &pa = report.partitions[0];
    EXPECT_EQ(pa.part, 2);
    EXPECT_EQ(pa.name, "pc");
    EXPECT_DOUBLE_EQ(pa.attributedWaitNs, 2700.0);
    EXPECT_DOUBLE_EQ(pa.computeSlackNs, 300.0);
    EXPECT_DOUBLE_EQ(pa.measuredWaitNs, 2700.0);
    EXPECT_DOUBLE_EQ(pa.coveragePct, 100.0);

    std::ostringstream js;
    report.writeJson(js);
    EXPECT_NE(js.str().find("fireaxe.critpath.v1"),
              std::string::npos);
    EXPECT_NE(js.str().find("\"b_to_c\""), std::string::npos);

    std::ostringstream txt;
    report.writeText(txt, 5);
    EXPECT_NE(txt.str().find("top blocking channels"),
              std::string::npos);
    EXPECT_NE(txt.str().find("b_to_c"), std::string::npos);

    std::ostringstream chrome;
    writeAnnotatedChromeTrace(input, report, chrome);
    EXPECT_NE(chrome.str().find("\"token.critical\""),
              std::string::npos);
    EXPECT_NE(chrome.str().find("\"critpath\""), std::string::npos);
}

TEST(CritPath, RetransmitDelayLandsInRtxBucket)
{
    // One channel, one analyzed window; a NAK recovery pushed the
    // token's visibility out, and that slice of the wait must land
    // in the retransmit bucket rather than link flight.
    CritPathInput input;
    input.channels = {{0, "c01", 0, 1}};
    input.sampleEvery = 1;
    for (uint64_t cycle = 1; cycle <= 2; ++cycle) {
        double fire = 1000.0 * double(cycle);
        TokenRecord r =
            syntheticRecord(input.channels[0], cycle, fire, 100.0);
        r.nakNs = 150.0;
        r.naks = 1;
        input.records.push_back(r);
    }

    CritPathReport report = analyzeCriticalPath(input);
    ASSERT_EQ(report.firesAnalyzed, 1u);
    ASSERT_EQ(report.channels.size(), 1u);
    const ChannelAttribution &ca = report.channels[0];
    // ready - depart = 200, of which 150 is NAK recovery.
    EXPECT_DOUBLE_EQ(ca.rtxNs, 150.0);
    EXPECT_DOUBLE_EQ(ca.flightNs, 50.0);
    EXPECT_DOUBLE_EQ(ca.waitNs, 900.0);
}

// ---------------------------------------------------------------
// End-to-end: instrumented partitioned run
// ---------------------------------------------------------------

namespace {

std::vector<uint64_t>
goldenStatus(const firrtl::Circuit &soc, uint64_t cycles)
{
    std::vector<uint64_t> mono;
    platform::runMonolithic(
        soc, nullptr,
        [&mono](rtlsim::Simulator &sim, unsigned, uint64_t) {
            mono.push_back(sim.peek("status"));
        },
        cycles);
    return mono;
}

ripper::PartitionPlan
tilesPlan(const firrtl::Circuit &soc)
{
    ripper::PartitionSpec spec;
    spec.mode = ripper::PartitionMode::Exact;
    spec.groups.push_back({"tiles", {"tile0", "tile1"}, 1});
    return ripper::partition(soc, spec);
}

} // namespace

TEST(Telemetry, InstrumentedRunStaysBitExact)
{
    target::BusSocConfig cfg;
    cfg.numTiles = 3;
    cfg.memWords = 256;
    auto soc = target::buildBusSoc(cfg);
    const uint64_t cycles = 600;
    auto mono = goldenStatus(soc, cycles);

    // Reference partitioned run without telemetry.
    auto plan1 = tilesPlan(soc);
    platform::MultiFpgaSim ref(
        plan1, {platform::alveoU250(50.0), platform::alveoU250(50.0)},
        transport::qsfpAurora());
    auto ref_result = ref.run(cycles);

    // Fully-instrumented run: metrics + tracing.
    auto plan2 = tilesPlan(soc);
    platform::MultiFpgaSim sim(
        plan2, {platform::alveoU250(50.0), platform::alveoU250(50.0)},
        transport::qsfpAurora());
    sim.setTelemetry(TelemetryConfig::full());
    std::vector<uint64_t> part;
    sim.setMonitor(0,
                   [&part](rtlsim::Simulator &s, unsigned, uint64_t) {
                       part.push_back(s.peek("status"));
                   });
    auto result = sim.run(cycles);

    // Telemetry is observe-only: target behaviour and simulated
    // host-time mechanics are unchanged.
    EXPECT_FALSE(result.deadlocked);
    ASSERT_GE(part.size(), mono.size());
    for (size_t i = 0; i < mono.size(); ++i)
        ASSERT_EQ(part[i], mono[i]) << "divergence at cycle " << i;
    EXPECT_DOUBLE_EQ(result.hostTimeNs, ref_result.hostTimeNs);
    EXPECT_EQ(result.targetCycles, ref_result.targetCycles);

    // The snapshot carries the expected namespaces.
    const MetricsSnapshot &m = result.metrics;
    ASSERT_FALSE(m.empty());
    EXPECT_GT(m.gauge("sim.sim_rate_mhz"), 0.0);
    EXPECT_DOUBLE_EQ(m.gauge("sim.target_cycles"), double(cycles));
    EXPECT_GT(m.gauge("part.tiles.fmr"), 0.0);
    EXPECT_GT(m.gauge("part.rest.fmr"), 0.0);
    EXPECT_DOUBLE_EQ(m.gauge("part.tiles.target_cycles"),
                     double(cycles));

    // Per-channel token accounting: every channel enqueued and
    // retired tokens, and latency histograms saw every retirement.
    bool saw_channel = false;
    for (const auto &kv : m.values) {
        if (kv.first.rfind("chan.", 0) != 0 ||
            kv.first.find(".tokens_retired") == std::string::npos)
            continue;
        saw_channel = true;
        EXPECT_GT(kv.second.count, 0u) << kv.first;
        std::string base =
            kv.first.substr(0, kv.first.size() -
                                   std::string(".tokens_retired")
                                       .size());
        const MetricValue *lat = m.find(base + ".token_latency_ns");
        ASSERT_NE(lat, nullptr) << base;
        EXPECT_EQ(lat->count, kv.second.count) << base;
        EXPECT_GT(lat->mean, 0.0) << base;
    }
    EXPECT_TRUE(saw_channel);

    // Both exporters produce well-formed-looking documents.
    std::ostringstream mos;
    sim.writeMetricsJson(mos);
    EXPECT_NE(mos.str().find("fireaxe.metrics.v1"),
              std::string::npos);
    std::ostringstream tos;
    sim.writeTrace(tos);
    EXPECT_NE(tos.str().find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(tos.str().find("wait-for-tokens"), std::string::npos);
    EXPECT_NE(tos.str().find("advance"), std::string::npos);
}

TEST(Telemetry, ProgressReporterWritesToSink)
{
    target::BusSocConfig cfg;
    cfg.numTiles = 3;
    cfg.memWords = 256;
    auto soc = target::buildBusSoc(cfg);
    auto plan = tilesPlan(soc);

    platform::MultiFpgaSim sim(
        plan, {platform::alveoU250(50.0), platform::alveoU250(50.0)},
        transport::qsfpAurora());
    std::ostringstream progress;
    TelemetryConfig tcfg;
    tcfg.progressIntervalNs = 50000.0;
    tcfg.progressOut = &progress;
    sim.setTelemetry(tcfg);
    auto result = sim.run(400);

    EXPECT_FALSE(result.deadlocked);
    std::string out = progress.str();
    EXPECT_NE(out.find("[fireaxe] cycle"), std::string::npos);
    EXPECT_NE(out.find("MHz"), std::string::npos);
    EXPECT_NE(out.find("fmr"), std::string::npos);
}

TEST(Telemetry, DisabledTelemetryLeavesSnapshotEmpty)
{
    target::BusSocConfig cfg;
    cfg.numTiles = 3;
    cfg.memWords = 256;
    auto soc = target::buildBusSoc(cfg);
    auto plan = tilesPlan(soc);

    platform::MultiFpgaSim sim(
        plan, {platform::alveoU250(50.0), platform::alveoU250(50.0)},
        transport::qsfpAurora());
    auto result = sim.run(200);
    EXPECT_FALSE(result.deadlocked);
    EXPECT_TRUE(result.metrics.empty());
    EXPECT_TRUE(sim.metricsSnapshot().empty());
    EXPECT_EQ(sim.telemetry(), nullptr);
}

TEST(Telemetry, TraceDropCounterSurfacesInSnapshot)
{
    // A deliberately tiny trace ring must wrap on any real run, and
    // the overflow must surface as the trace.dropped_events counter
    // so truncation is visible in every metrics export.
    target::BusSocConfig cfg;
    cfg.numTiles = 3;
    cfg.memWords = 256;
    auto soc = target::buildBusSoc(cfg);
    auto plan = tilesPlan(soc);

    platform::MultiFpgaSim sim(
        plan, {platform::alveoU250(50.0), platform::alveoU250(50.0)},
        transport::qsfpAurora());
    TelemetryConfig tcfg;
    tcfg.tracing = true;
    tcfg.traceCapacity = 32;
    sim.setTelemetry(tcfg);

    // Swallow the (expected, one-time) wrap warning.
    std::ostringstream captured;
    std::streambuf *old = std::cerr.rdbuf(captured.rdbuf());
    auto result = sim.run(400);
    std::cerr.rdbuf(old);

    EXPECT_FALSE(result.deadlocked);
    const Tracer *tr = sim.telemetry()->tracer();
    ASSERT_NE(tr, nullptr);
    EXPECT_TRUE(tr->wrapped());
    EXPECT_GT(tr->dropped(), 0u);
    EXPECT_EQ(result.metrics.counter("trace.dropped_events"),
              tr->dropped());
    EXPECT_NE(captured.str().find("ring buffer full"),
              std::string::npos);
}

TEST(Telemetry, StreamedRunFeedsCriticalPathAnalyzer)
{
    // End-to-end tentpole check in miniature: stream a fully-sampled
    // 2-partition run to JSONL, rebuild the analyzer input exactly
    // like fireaxe-trace does, and require the per-channel wait
    // attribution to cover the measured wall-clock wait.
    target::BusSocConfig cfg;
    cfg.numTiles = 3;
    cfg.memWords = 256;
    auto soc = target::buildBusSoc(cfg);
    const uint64_t cycles = 600;

    // Reference run without telemetry.
    auto plan1 = tilesPlan(soc);
    platform::MultiFpgaSim ref(
        plan1, {platform::alveoU250(50.0), platform::alveoU250(50.0)},
        transport::qsfpAurora());
    auto ref_result = ref.run(cycles);

    const std::string path =
        ::testing::TempDir() + "obs_stream_test.jsonl";
    std::remove(path.c_str());

    auto plan2 = tilesPlan(soc);
    platform::MultiFpgaSim sim(
        plan2, {platform::alveoU250(50.0), platform::alveoU250(50.0)},
        transport::qsfpAurora());
    TelemetryConfig tcfg;
    tcfg.streamPath = path;
    tcfg.tokenSampleEvery = 1;
    tcfg.streamEveryCycles = 100;
    tcfg.runLabel = "obs_test";
    sim.setTelemetry(tcfg);
    auto result = sim.run(cycles);

    // Streaming is observe-only.
    EXPECT_FALSE(result.deadlocked);
    EXPECT_EQ(result.targetCycles, ref_result.targetCycles);
    EXPECT_DOUBLE_EQ(result.hostTimeNs, ref_result.hostTimeNs);

    // Every line parses; rebuild the analyzer input from the file.
    std::ifstream is(path);
    ASSERT_TRUE(is.good());
    CritPathInput input;
    input.sampleEvery = 1;
    const JsonValue *summary = nullptr;
    JsonValue summary_val;
    std::string line;
    size_t token_lines = 0, metrics_lines = 0;
    bool have_header = false;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        JsonValue v;
        std::string err;
        ASSERT_TRUE(parseJson(line, v, err)) << err << "\n" << line;
        const std::string type = v.text("type");
        if (type == "header") {
            have_header = true;
            EXPECT_EQ(v.text("schema"), "fireaxe.stream.v1");
            EXPECT_EQ(v.text("target"), "obs_test");
            for (const JsonValue &p : v.get("partitions")->arr) {
                size_t id = size_t(p.u64("id"));
                if (input.partNames.size() <= id)
                    input.partNames.resize(id + 1);
                input.partNames[id] = p.text("name");
            }
            for (const JsonValue &c : v.get("channels")->arr) {
                TokenChannelInfo ch;
                ch.id = int(c.num("id"));
                ch.name = c.text("name");
                ch.srcPart = int(c.num("src"));
                ch.dstPart = int(c.num("dst"));
                input.channels.push_back(ch);
            }
        } else if (type == "tokens") {
            ++token_lines;
            for (const JsonValue &t : v.get("records")->arr) {
                TokenRecord r;
                r.channel = int(t.num("chan"));
                r.seq = t.u64("seq");
                r.targetCycle =
                    t.u64("cycle", TokenRecord::kNoCycle);
                r.produceNs = t.num("produce_ns");
                r.departNs = t.num("depart_ns");
                r.readyNs = t.num("ready_ns");
                r.flightNs = t.num("flight_ns");
                r.penaltyNs = t.num("penalty_ns");
                r.nakNs = t.num("nak_ns");
                r.naks = uint32_t(t.num("naks"));
                r.fireNs = t.num("fire_ns");
                r.deliverNs = r.fireNs;
                r.fired = true;
                if (r.channel >= 0 &&
                    size_t(r.channel) < input.channels.size()) {
                    r.srcPart = input.channels[r.channel].srcPart;
                    r.dstPart = input.channels[r.channel].dstPart;
                }
                input.records.push_back(r);
            }
        } else if (type == "metrics") {
            ++metrics_lines;
            const JsonValue *m = v.get("metrics");
            ASSERT_NE(m, nullptr);
            for (size_t p = 0; p < input.partNames.size(); ++p) {
                const JsonValue *w = m->get(
                    "part." + input.partNames[p] + ".wait_ns");
                if (w)
                    input.measuredWaitNs[int(p)] = w->num("value");
            }
        } else if (type == "summary") {
            summary_val = v;
            summary = &summary_val;
        }
    }
    ASSERT_TRUE(have_header);
    EXPECT_GT(token_lines, 0u);
    EXPECT_GT(metrics_lines, 0u);
    ASSERT_NE(summary, nullptr);
    EXPECT_GT(summary->u64("token_records"), 0u);
    EXPECT_TRUE(summary->has("token_records_dropped"));
    EXPECT_TRUE(summary->has("trace_events_dropped"));
    EXPECT_EQ(summary->u64("target_cycle"), result.targetCycles);
    EXPECT_EQ(summary->u64("token_records"),
              uint64_t(input.records.size()));

    // At 1-in-1 sampling the attribution is exact: per-partition
    // coverage of the measured wall-clock wait must land within the
    // acceptance band.
    CritPathReport report = analyzeCriticalPath(input);
    EXPECT_FALSE(report.empty());
    EXPECT_GT(report.totalAttributedWaitNs, 0.0);
    ASSERT_GT(report.totalMeasuredWaitNs, 0.0);
    double coverage = 100.0 * report.totalAttributedWaitNs /
                      report.totalMeasuredWaitNs;
    EXPECT_GT(coverage, 95.0);
    EXPECT_LT(coverage, 105.0);
    EXPECT_FALSE(report.channels.empty());

    std::remove(path.c_str());
}
