/**
 * @file
 * Tests of the observability subsystem: metrics-registry path
 * resolution and handle stability, bounded-reservoir histogram
 * percentiles, tracer ring-buffer wraparound and Chrome JSON export,
 * and — the invariant that matters — a telemetry-instrumented
 * partitioned run staying bit-exact against the monolithic golden
 * reference while producing a well-formed metrics snapshot.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "base/logging.hh"
#include "obs/metrics.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"
#include "platform/executor.hh"
#include "platform/fpga.hh"
#include "ripper/partition.hh"
#include "target/bus_soc.hh"
#include "transport/link.hh"

using namespace fireaxe;
using namespace fireaxe::obs;

// ---------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------

TEST(Metrics, PathResolutionAndReRegistration)
{
    MetricsRegistry reg;
    Counter &c = reg.counter("chan.c01.tokens_enqueued");
    Gauge &g = reg.gauge("part.tiles.fmr");
    Histogram &h = reg.histogram("chan.c01.token_latency_ns");

    c.add(3);
    g.set(7.5);
    h.observe(100.0);

    // Re-resolving the same path returns the same handle (and thus
    // the same value), even after other registrations.
    reg.counter("zzz.later");
    EXPECT_EQ(&reg.counter("chan.c01.tokens_enqueued"), &c);
    EXPECT_EQ(&reg.gauge("part.tiles.fmr"), &g);
    EXPECT_EQ(&reg.histogram("chan.c01.token_latency_ns"), &h);
    EXPECT_EQ(c.value(), 3u);
    EXPECT_DOUBLE_EQ(g.value(), 7.5);
    EXPECT_EQ(reg.size(), 4u);

    // Resolving an existing path as a different kind is a caller
    // error, as is an empty path.
    EXPECT_THROW(reg.gauge("chan.c01.tokens_enqueued"), FatalError);
    EXPECT_THROW(reg.counter(""), FatalError);
}

TEST(Metrics, NullableHandleHelpersAreNoOps)
{
    Counter *c = nullptr;
    Gauge *g = nullptr;
    Histogram *h = nullptr;
    add(c);
    set(g, 1.0);
    observe(h, 2.0); // must not crash

    Counter real;
    add(&real, 5);
    EXPECT_EQ(real.value(), 5u);
}

TEST(Metrics, SnapshotJsonAndAccessors)
{
    MetricsRegistry reg;
    reg.counter("a.count").add(42);
    reg.gauge("a.rate").set(2.25);
    Histogram &h = reg.histogram("a.lat");
    for (int i = 1; i <= 100; ++i)
        h.observe(double(i));

    MetricsSnapshot snap = reg.snapshot();
    EXPECT_TRUE(snap.has("a.count"));
    EXPECT_EQ(snap.counter("a.count"), 42u);
    EXPECT_DOUBLE_EQ(snap.gauge("a.rate"), 2.25);
    const MetricValue *mv = snap.find("a.lat");
    ASSERT_NE(mv, nullptr);
    EXPECT_EQ(mv->count, 100u);
    EXPECT_DOUBLE_EQ(mv->min, 1.0);
    EXPECT_DOUBLE_EQ(mv->max, 100.0);

    std::ostringstream os;
    snap.writeJson(os);
    std::string json = os.str();
    EXPECT_NE(json.find("\"schema\":\"fireaxe.metrics.v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"a.count\""), std::string::npos);
    EXPECT_NE(json.find("\"p99\""), std::string::npos);

    std::ostringstream csv;
    snap.writeCsv(csv);
    EXPECT_NE(csv.str().find("a.rate"), std::string::npos);
}

TEST(Metrics, ResetKeepsHandlesAndClearsValues)
{
    MetricsRegistry reg;
    Counter &c = reg.counter("x");
    c.add(9);
    reg.reset();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(&reg.counter("x"), &c);
}

// ---------------------------------------------------------------
// Histogram reservoir behaviour (satellite: bounded memory)
// ---------------------------------------------------------------

TEST(Metrics, HistogramExactBelowReservoirCap)
{
    Histogram h(1024);
    // 0..999 shuffled deterministically: below the cap every sample
    // is kept and percentiles are exact.
    std::vector<double> vals;
    for (int i = 0; i < 1000; ++i)
        vals.push_back(double((i * 757) % 1000));
    for (double v : vals)
        h.observe(v);

    EXPECT_TRUE(h.exact());
    EXPECT_EQ(h.count(), 1000u);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 999.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 999.0);
    EXPECT_NEAR(h.percentile(50.0), 500.0, 1.0);
    EXPECT_NEAR(h.percentile(90.0), 900.0, 1.0);
}

TEST(Metrics, HistogramApproximateAboveReservoirCap)
{
    // 100k uniform samples through a 4k reservoir: the count, mean,
    // min and max stay exact; percentiles come from the reservoir
    // and must land within a few percent of the true quantile.
    const size_t cap = 4096;
    Histogram h(cap);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        h.observe(double((i * 7919) % n));

    EXPECT_FALSE(h.exact());
    EXPECT_EQ(h.count(), uint64_t(n));
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), double(n - 1));
    EXPECT_NEAR(h.mean(), (n - 1) / 2.0, n * 0.001);
    // p0/p100 are served from the exact extrema even above the cap.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), double(n - 1));
    EXPECT_NEAR(h.percentile(50.0), n * 0.50, n * 0.05);
    EXPECT_NEAR(h.percentile(90.0), n * 0.90, n * 0.05);
    EXPECT_EQ(h.reservoirCap(), cap);
}

// ---------------------------------------------------------------
// Tracer ring buffer
// ---------------------------------------------------------------

TEST(Trace, RingBufferWraparoundKeepsNewestInOrder)
{
    Tracer tr(8);
    for (int i = 0; i < 20; ++i)
        tr.instant("e" + std::to_string(i), "test", double(i));

    EXPECT_EQ(tr.size(), 8u);
    EXPECT_EQ(tr.totalEmitted(), 20u);
    EXPECT_EQ(tr.dropped(), 12u);

    // The survivors are the last 8 events, visited oldest-first.
    std::vector<std::string> names;
    tr.forEachOrdered([&](const TraceEvent &ev) {
        names.push_back(ev.name);
    });
    ASSERT_EQ(names.size(), 8u);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(names[i], "e" + std::to_string(12 + i));

    tr.clear();
    EXPECT_EQ(tr.size(), 0u);
}

TEST(Trace, ChromeJsonExport)
{
    Tracer tr(64);
    tr.setProcessName(0, "tiles");
    tr.instant("nak", "reliability", 1500.0, 0);
    tr.complete("advance", "fsm", 2000.0, 20.0, 0, 1);

    std::ostringstream os;
    tr.writeChromeJson(os);
    std::string json = os.str();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("process_name"), std::string::npos);
    EXPECT_NE(json.find("\"tiles\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    // ns -> us conversion: the 2000 ns event lands at ts 2 us.
    EXPECT_NE(json.find("\"ts\":2,"), std::string::npos);
}

// ---------------------------------------------------------------
// End-to-end: instrumented partitioned run
// ---------------------------------------------------------------

namespace {

std::vector<uint64_t>
goldenStatus(const firrtl::Circuit &soc, uint64_t cycles)
{
    std::vector<uint64_t> mono;
    platform::runMonolithic(
        soc, nullptr,
        [&mono](rtlsim::Simulator &sim, unsigned, uint64_t) {
            mono.push_back(sim.peek("status"));
        },
        cycles);
    return mono;
}

ripper::PartitionPlan
tilesPlan(const firrtl::Circuit &soc)
{
    ripper::PartitionSpec spec;
    spec.mode = ripper::PartitionMode::Exact;
    spec.groups.push_back({"tiles", {"tile0", "tile1"}, 1});
    return ripper::partition(soc, spec);
}

} // namespace

TEST(Telemetry, InstrumentedRunStaysBitExact)
{
    target::BusSocConfig cfg;
    cfg.numTiles = 3;
    cfg.memWords = 256;
    auto soc = target::buildBusSoc(cfg);
    const uint64_t cycles = 600;
    auto mono = goldenStatus(soc, cycles);

    // Reference partitioned run without telemetry.
    auto plan1 = tilesPlan(soc);
    platform::MultiFpgaSim ref(
        plan1, {platform::alveoU250(50.0), platform::alveoU250(50.0)},
        transport::qsfpAurora());
    auto ref_result = ref.run(cycles);

    // Fully-instrumented run: metrics + tracing.
    auto plan2 = tilesPlan(soc);
    platform::MultiFpgaSim sim(
        plan2, {platform::alveoU250(50.0), platform::alveoU250(50.0)},
        transport::qsfpAurora());
    sim.setTelemetry(TelemetryConfig::full());
    std::vector<uint64_t> part;
    sim.setMonitor(0,
                   [&part](rtlsim::Simulator &s, unsigned, uint64_t) {
                       part.push_back(s.peek("status"));
                   });
    auto result = sim.run(cycles);

    // Telemetry is observe-only: target behaviour and simulated
    // host-time mechanics are unchanged.
    EXPECT_FALSE(result.deadlocked);
    ASSERT_GE(part.size(), mono.size());
    for (size_t i = 0; i < mono.size(); ++i)
        ASSERT_EQ(part[i], mono[i]) << "divergence at cycle " << i;
    EXPECT_DOUBLE_EQ(result.hostTimeNs, ref_result.hostTimeNs);
    EXPECT_EQ(result.targetCycles, ref_result.targetCycles);

    // The snapshot carries the expected namespaces.
    const MetricsSnapshot &m = result.metrics;
    ASSERT_FALSE(m.empty());
    EXPECT_GT(m.gauge("sim.sim_rate_mhz"), 0.0);
    EXPECT_DOUBLE_EQ(m.gauge("sim.target_cycles"), double(cycles));
    EXPECT_GT(m.gauge("part.tiles.fmr"), 0.0);
    EXPECT_GT(m.gauge("part.rest.fmr"), 0.0);
    EXPECT_DOUBLE_EQ(m.gauge("part.tiles.target_cycles"),
                     double(cycles));

    // Per-channel token accounting: every channel enqueued and
    // retired tokens, and latency histograms saw every retirement.
    bool saw_channel = false;
    for (const auto &kv : m.values) {
        if (kv.first.rfind("chan.", 0) != 0 ||
            kv.first.find(".tokens_retired") == std::string::npos)
            continue;
        saw_channel = true;
        EXPECT_GT(kv.second.count, 0u) << kv.first;
        std::string base =
            kv.first.substr(0, kv.first.size() -
                                   std::string(".tokens_retired")
                                       .size());
        const MetricValue *lat = m.find(base + ".token_latency_ns");
        ASSERT_NE(lat, nullptr) << base;
        EXPECT_EQ(lat->count, kv.second.count) << base;
        EXPECT_GT(lat->mean, 0.0) << base;
    }
    EXPECT_TRUE(saw_channel);

    // Both exporters produce well-formed-looking documents.
    std::ostringstream mos;
    sim.writeMetricsJson(mos);
    EXPECT_NE(mos.str().find("fireaxe.metrics.v1"),
              std::string::npos);
    std::ostringstream tos;
    sim.writeTrace(tos);
    EXPECT_NE(tos.str().find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(tos.str().find("wait-for-tokens"), std::string::npos);
    EXPECT_NE(tos.str().find("advance"), std::string::npos);
}

TEST(Telemetry, ProgressReporterWritesToSink)
{
    target::BusSocConfig cfg;
    cfg.numTiles = 3;
    cfg.memWords = 256;
    auto soc = target::buildBusSoc(cfg);
    auto plan = tilesPlan(soc);

    platform::MultiFpgaSim sim(
        plan, {platform::alveoU250(50.0), platform::alveoU250(50.0)},
        transport::qsfpAurora());
    std::ostringstream progress;
    TelemetryConfig tcfg;
    tcfg.progressIntervalNs = 50000.0;
    tcfg.progressOut = &progress;
    sim.setTelemetry(tcfg);
    auto result = sim.run(400);

    EXPECT_FALSE(result.deadlocked);
    std::string out = progress.str();
    EXPECT_NE(out.find("[fireaxe] cycle"), std::string::npos);
    EXPECT_NE(out.find("MHz"), std::string::npos);
    EXPECT_NE(out.find("fmr"), std::string::npos);
}

TEST(Telemetry, DisabledTelemetryLeavesSnapshotEmpty)
{
    target::BusSocConfig cfg;
    cfg.numTiles = 3;
    cfg.memWords = 256;
    auto soc = target::buildBusSoc(cfg);
    auto plan = tilesPlan(soc);

    platform::MultiFpgaSim sim(
        plan, {platform::alveoU250(50.0), platform::alveoU250(50.0)},
        transport::qsfpAurora());
    auto result = sim.run(200);
    EXPECT_FALSE(result.deadlocked);
    EXPECT_TRUE(result.metrics.empty());
    EXPECT_TRUE(sim.metricsSnapshot().empty());
    EXPECT_EQ(sim.telemetry(), nullptr);
}
