/**
 * @file
 * Tests for the remaining target designs: the accelerator SoCs of
 * the Table II validation (monolithic behaviour) and the split big
 * core of Section V-B (structure, interface width, resource
 * footprint, and exact-mode partitioned equivalence).
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "firrtl/builder.hh"
#include "passes/flatten.hh"
#include "passes/resources.hh"
#include "platform/executor.hh"
#include "platform/fpga.hh"
#include "ripper/partition.hh"
#include "rtlsim/simulator.hh"
#include "target/accelerators.hh"
#include "target/big_core.hh"
#include "target/primitives.hh"
#include "transport/link.hh"

using namespace fireaxe;
using namespace fireaxe::platform;
using namespace fireaxe::ripper;

namespace {

/** Run a monolithic accel SoC until done; return the done cycle. */
uint64_t
monolithicDoneCycle(const firrtl::Circuit &soc, uint64_t limit)
{
    uint64_t done_cycle = 0;
    runMonolithic(
        soc, nullptr,
        [&](rtlsim::Simulator &sim, unsigned, uint64_t cycle) {
            if (done_cycle == 0 && sim.peek("done"))
                done_cycle = cycle;
        },
        limit);
    return done_cycle;
}

/** Done cycle of the partitioned run (accelerator extracted). */
uint64_t
partitionedDoneCycle(const firrtl::Circuit &soc, PartitionMode mode,
                     uint64_t limit)
{
    PartitionSpec spec;
    spec.mode = mode;
    spec.groups.push_back({"accel", {"accel"}, 1});
    auto plan = partition(soc, spec);
    MultiFpgaSim sim(plan,
                     std::vector<FpgaSpec>(2, alveoU250(30.0)),
                     transport::qsfpAurora());
    uint64_t done_cycle = 0;
    sim.setMonitor(0, [&](rtlsim::Simulator &s, unsigned,
                          uint64_t cycle) {
        if (done_cycle == 0 && s.peek("done"))
            done_cycle = cycle;
    });
    sim.setStopCondition([&]() { return done_cycle != 0; });
    sim.init();
    auto result = sim.run(limit);
    EXPECT_FALSE(result.deadlocked);
    return done_cycle;
}

} // namespace

TEST(Accel, Sha3CompletesDeterministically)
{
    target::Sha3Config cfg;
    cfg.roundCycles = 50;
    auto soc = target::buildSha3Soc(cfg);
    uint64_t d1 = monolithicDoneCycle(soc, 2000);
    uint64_t d2 = monolithicDoneCycle(soc, 2000);
    ASSERT_GT(d1, 0u);
    EXPECT_EQ(d1, d2);
    // Loads (blocking, ~3 cycles each) + rounds + 2 stores.
    EXPECT_GT(d1, cfg.roundCycles);
    EXPECT_LT(d1, 2u * cfg.roundCycles + 200);
}

TEST(Accel, GemminiComputePhaseDominates)
{
    target::GemminiConfig cfg;
    cfg.macCycles = 500;
    auto soc = target::buildGemminiSoc(cfg);
    uint64_t done = monolithicDoneCycle(soc, 5000);
    ASSERT_GT(done, 500u);
    EXPECT_LT(done, 700u);
}

TEST(Accel, BootSocRunsItsInstructionStream)
{
    target::BootConfig cfg;
    cfg.instructions = 2000;
    cfg.fenceInterval = 256;
    auto soc = target::buildBootSoc(cfg);
    uint64_t done = monolithicDoneCycle(soc, 10000);
    ASSERT_GT(done, 0u);
    // Instruction stream with almost no stalls monolithically.
    EXPECT_GE(done, 2000u);
    EXPECT_LT(done, 2200u);
}

TEST(Accel, ExactModeMatchesMonolithicDoneCycle)
{
    target::Sha3Config cfg;
    cfg.roundCycles = 60;
    auto soc = target::buildSha3Soc(cfg);
    uint64_t mono = monolithicDoneCycle(soc, 3000);
    uint64_t exact =
        partitionedDoneCycle(soc, PartitionMode::Exact, 3000);
    ASSERT_GT(mono, 0u);
    EXPECT_EQ(exact, mono); // Table II: exact-mode "No Error"
}

TEST(Accel, FastModeHasSmallBoundedError)
{
    target::Sha3Config cfg;
    cfg.roundCycles = 200;
    auto soc = target::buildSha3Soc(cfg);
    uint64_t mono = monolithicDoneCycle(soc, 5000);
    uint64_t fast =
        partitionedDoneCycle(soc, PartitionMode::Fast, 5000);
    ASSERT_GT(mono, 0u);
    ASSERT_GT(fast, 0u);
    EXPECT_NE(fast, mono); // cycle-approximate
    double err = std::abs(double(fast) - double(mono)) / mono;
    EXPECT_LT(err, 0.25);
}

TEST(Accel, FastModeErrorOrderingMatchesTable2)
{
    // Sha3 (memory-bound) must show a larger relative fast-mode
    // error than Gemmini (compute-bound) — the Table II trend.
    auto err = [&](const firrtl::Circuit &soc, uint64_t limit) {
        uint64_t mono = monolithicDoneCycle(soc, limit);
        uint64_t fast =
            partitionedDoneCycle(soc, PartitionMode::Fast, limit);
        EXPECT_GT(mono, 0u);
        EXPECT_GT(fast, 0u);
        return std::abs(double(fast) - double(mono)) / mono;
    };

    target::Sha3Config sha3;
    sha3.roundCycles = 120;
    target::GemminiConfig gem;
    gem.macCycles = 3000;
    double sha3_err = err(target::buildSha3Soc(sha3), 6000);
    double gem_err = err(target::buildGemminiSoc(gem), 8000);
    EXPECT_GT(sha3_err, gem_err);
}

TEST(BigCore, InterfaceExceeds7000Bits)
{
    auto cfg = target::gc40BigCoreConfig();
    EXPECT_GT(target::bigCoreInterfaceBits(cfg), 7000u);
}

TEST(BigCore, Gc40OverflowsOneU250ButHalvesFit)
{
    auto cfg = target::gc40BigCoreConfig();
    auto core = target::buildBigCore(cfg);
    auto whole = passes::estimateResources(core);
    auto backend = passes::estimateResources(core,
                                             "BigCoreBackend");
    auto frontend = passes::estimateResources(core,
                                              "BigCoreFrontend");
    FpgaSpec u250 = alveoU250(10.0);
    // §V-B: the monolithic build fails (congestion past the
    // routable fraction) while each half fits on its own FPGA.
    EXPECT_FALSE(platform::fits(u250, whole));
    EXPECT_TRUE(platform::fits(u250, backend));
    EXPECT_TRUE(platform::fits(u250, frontend));
    // Reported utilization: backend ~63%, frontend ~18%.
    double be_util = double(backend.luts) / u250.lutCapacity;
    double fe_util = double(frontend.luts) / u250.lutCapacity;
    EXPECT_GT(be_util, 0.50);
    EXPECT_LT(be_util, 0.75);
    EXPECT_GT(fe_util, 0.12);
    EXPECT_LT(fe_util, 0.28);
}

TEST(BigCore, SplitCoreExactModeIsCycleExact)
{
    // Small-scale variant of the §V-B experiment: pull the backend
    // onto its own FPGA in exact mode, check per-cycle equivalence.
    target::BigCoreConfig cfg;
    cfg.fetchWidth = 2;
    cfg.fieldsPerInst = 3;
    cfg.traceWords = 4;
    cfg.lsuWords = 2;
    cfg.backendLanes = 4;
    cfg.frontendLanes = 2;
    auto core = target::buildBigCore(cfg);
    const uint64_t cycles = 300;

    std::vector<uint64_t> mono;
    runMonolithic(
        core, nullptr,
        [&](rtlsim::Simulator &sim, unsigned, uint64_t) {
            mono.push_back(sim.peek("status"));
        },
        cycles);
    EXPECT_NE(mono.front(), mono.back());

    PartitionSpec spec;
    spec.mode = PartitionMode::Exact;
    spec.groups.push_back({"backend", {"backend"}, 1});
    auto plan = partition(core, spec);

    MultiFpgaSim sim(plan, {alveoU250(30.0), alveoU250(30.0)},
                     transport::qsfpAurora());
    std::vector<uint64_t> part;
    sim.setMonitor(0, [&](rtlsim::Simulator &s, unsigned, uint64_t) {
        part.push_back(s.peek("status"));
    });
    auto result = sim.run(cycles);
    EXPECT_FALSE(result.deadlocked);
    ASSERT_GE(part.size(), mono.size());
    for (size_t i = 0; i < mono.size(); ++i)
        ASSERT_EQ(part[i], mono[i]) << "divergence at cycle " << i;
}

TEST(BigCore, BoundaryHasCombAckDependency)
{
    target::BigCoreConfig cfg;
    cfg.fetchWidth = 2;
    cfg.fieldsPerInst = 3;
    cfg.traceWords = 2;
    cfg.lsuWords = 2;
    cfg.backendLanes = 2;
    cfg.frontendLanes = 1;
    auto core = target::buildBigCore(cfg);
    PartitionSpec spec;
    spec.mode = PartitionMode::Exact;
    spec.groups.push_back({"backend", {"backend"}, 1});
    auto plan = partition(core, spec);
    // The backend's combinational fb_ack makes its outbound channel
    // set include a sink channel -> two crossings per cycle.
    EXPECT_EQ(plan.feedback.linkCrossingsPerCycle, 2u);
}

TEST(Primitives, QueueModuleFifoSemantics)
{
    firrtl::CircuitBuilder cb("Q");
    target::addQueueModule(cb, "Q", 8, 4);
    rtlsim::Simulator sim(passes::flattenAll(cb.finish()));

    sim.poke("deq_ready", 0);
    for (uint64_t v : {5, 6, 7, 8}) {
        sim.poke("enq_valid", 1);
        sim.poke("enq_bits", v);
        sim.evalComb();
        EXPECT_EQ(sim.peek("enq_ready"), 1u);
        sim.step();
    }
    sim.poke("enq_valid", 0);
    sim.evalComb();
    EXPECT_EQ(sim.peek("enq_ready"), 0u); // full
    sim.poke("deq_ready", 1);
    for (uint64_t v : {5, 6, 7, 8}) {
        sim.evalComb();
        EXPECT_EQ(sim.peek("deq_valid"), 1u);
        EXPECT_EQ(sim.peek("deq_bits"), v);
        sim.step();
    }
    sim.evalComb();
    EXPECT_EQ(sim.peek("deq_valid"), 0u);
}
