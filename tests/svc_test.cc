/**
 * @file
 * Tests for the simulation service (src/svc): fireaxe.job.v1
 * protocol round-trips and strict rejection of malformed requests,
 * ArtifactCache hit/miss/LRU-eviction accounting, the JobRunner
 * cold-vs-warm cache contract (a repeat submission skips
 * elaboration, verification, and bytecode compilation without
 * perturbing results), graceful requestStop() quiescing with a
 * resumable snapshot, and SimService multi-tenancy — N concurrent
 * jobs must be bit-identical to the same jobs run sequentially, and
 * a drain must reject queued work while in-flight jobs stop cleanly.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <sstream>
#include <vector>

#include "obs/json.hh"
#include "platform/executor.hh"
#include "platform/fpga.hh"
#include "recovery/snapshot.hh"
#include "svc/cache.hh"
#include "svc/jobrunner.hh"
#include "svc/jobspec.hh"
#include "svc/protocol.hh"
#include "svc/service.hh"
#include "svc/targets.hh"
#include "transport/link.hh"

using namespace fireaxe;

namespace {

std::string
tempDir(const std::string &tag)
{
    auto dir = std::filesystem::temp_directory_path() /
               ("fireaxe_svc_test_" + tag);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir.string();
}

/** Render a submit request line exactly the way svc::Client does. */
std::string
submitLine(const svc::JobSpec &spec)
{
    std::ostringstream body;
    obs::JsonWriter bw(body);
    spec.writeJson(bw);

    std::ostringstream os;
    obs::JsonWriter w(os);
    w.beginObject();
    w.key("type");
    w.value("submit");
    w.key("schema");
    w.value(svc::kJobSchema);
    w.key("job");
    w.raw(body.str());
    w.endObject();
    return os.str();
}

uint64_t
finalStateSignature(platform::MultiFpgaSim &sim, size_t nparts)
{
    uint64_t h = 1469598103934665603ull;
    for (size_t p = 0; p < nparts; ++p) {
        auto &m = sim.model(int(p));
        h = recovery::fnv1aMix(h, m.minTargetCycle());
        for (size_t i = 0; i < m.sim().numSignals(); ++i)
            h = recovery::fnv1aMix(h, m.sim().peekIdx(int(i)));
    }
    return h;
}

} // namespace

// --- protocol ------------------------------------------------------

TEST(SvcProtocol, SubmitRoundTrip)
{
    svc::JobSpec spec;
    spec.target = "bus-soc";
    spec.mode = "fast";
    spec.backend = "parallel";
    spec.workers = 3;
    spec.engine = "compiled";
    spec.cycles = 12345;
    spec.faultRate = 0.25;
    spec.seed = 0xDEADBEEFCAFEF00Dull;
    spec.snapshotEvery = 500;
    spec.snapshotDir = "/tmp/snaps";
    spec.resume = true;
    spec.hashFrom = 42;
    spec.stream = true;
    spec.sampleEvery = 8;
    spec.streamEvery = 100;
    spec.channelCapacity = 7;

    svc::Request req;
    std::string error;
    ASSERT_TRUE(svc::parseRequest(submitLine(spec), req, error))
        << error;
    ASSERT_EQ(req.kind, svc::Request::Kind::Submit);
    EXPECT_EQ(req.job.target, spec.target);
    EXPECT_EQ(req.job.mode, spec.mode);
    EXPECT_EQ(req.job.backend, spec.backend);
    EXPECT_EQ(req.job.workers, spec.workers);
    EXPECT_EQ(req.job.engine, spec.engine);
    EXPECT_EQ(req.job.cycles, spec.cycles);
    EXPECT_DOUBLE_EQ(req.job.faultRate, spec.faultRate);
    EXPECT_EQ(req.job.seed, spec.seed);
    EXPECT_EQ(req.job.snapshotEvery, spec.snapshotEvery);
    EXPECT_EQ(req.job.snapshotDir, spec.snapshotDir);
    EXPECT_EQ(req.job.resume, spec.resume);
    EXPECT_EQ(req.job.hashFrom, spec.hashFrom);
    EXPECT_EQ(req.job.stream, spec.stream);
    EXPECT_EQ(req.job.sampleEvery, spec.sampleEvery);
    EXPECT_EQ(req.job.streamEvery, spec.streamEvery);
    EXPECT_EQ(req.job.channelCapacity, spec.channelCapacity);
    EXPECT_EQ(req.job.elabSignature(), spec.elabSignature());
}

TEST(SvcProtocol, StatusAndShutdownRoundTrip)
{
    svc::Request req;
    std::string error;
    ASSERT_TRUE(
        svc::parseRequest("{\"type\":\"status\"}", req, error));
    EXPECT_EQ(req.kind, svc::Request::Kind::Status);
    ASSERT_TRUE(
        svc::parseRequest("{\"type\":\"shutdown\"}", req, error));
    EXPECT_EQ(req.kind, svc::Request::Kind::Shutdown);
}

TEST(SvcProtocol, MalformedRequestsRejectedWithDiagnostics)
{
    const char *fixtures[] = {
        // not JSON at all
        "run the thing",
        // JSON, but not an object
        "[1,2,3]",
        // no type
        "{\"schema\":\"fireaxe.job.v1\"}",
        // unknown type
        "{\"type\":\"purge\"}",
        // submit without schema
        "{\"type\":\"submit\",\"job\":{\"target\":\"fig2\"}}",
        // submit with the wrong schema
        "{\"type\":\"submit\",\"schema\":\"fireaxe.job.v9\","
        "\"job\":{\"target\":\"fig2\"}}",
        // submit without a job object
        "{\"type\":\"submit\",\"schema\":\"fireaxe.job.v1\"}",
        // unknown job key (strict parse)
        "{\"type\":\"submit\",\"schema\":\"fireaxe.job.v1\","
        "\"job\":{\"target\":\"fig2\",\"cylces\":100}}",
        // wrong value kind
        "{\"type\":\"submit\",\"schema\":\"fireaxe.job.v1\","
        "\"job\":{\"target\":\"fig2\",\"cycles\":\"many\"}}",
        // negative cycle count
        "{\"type\":\"submit\",\"schema\":\"fireaxe.job.v1\","
        "\"job\":{\"target\":\"fig2\",\"cycles\":-5}}",
    };
    for (const char *line : fixtures) {
        svc::Request req;
        std::string error;
        EXPECT_FALSE(svc::parseRequest(line, req, error))
            << "accepted: " << line;
        EXPECT_FALSE(error.empty()) << line;
    }
}

TEST(SvcProtocol, HexHashSurvivesRoundTrip)
{
    // The wire form exists because doubles drop bits above 2^53;
    // check a hash with the top bit set survives intact.
    uint64_t h = 0xF1A5C0DE12345678ull;
    EXPECT_EQ(svc::parseHexHash(svc::hexHash(h)), h);
    EXPECT_EQ(svc::hexHash(h), "0xf1a5c0de12345678");
    EXPECT_EQ(svc::parseHexHash("garbage"), 0u);
}

TEST(SvcProtocol, ResultLineCarriesIdentityHashes)
{
    svc::RunOutcome o;
    o.ok = true;
    o.traceHash = 0xAAAAAAAAAAAAAAAAull;
    o.artifactHash = 0xBBBBBBBBBBBBBBBBull;
    std::string line = svc::resultLine(7, "fig2", o);
    EXPECT_NE(line.find("\"type\":\"result\""), std::string::npos);
    EXPECT_NE(line.find("\"job\":7"), std::string::npos);
    EXPECT_NE(line.find("\"trace_hash\":\"0xaaaaaaaaaaaaaaaa\""),
              std::string::npos);
    EXPECT_NE(line.find("\"artifact_hash\":\"0xbbbbbbbbbbbbbbbb\""),
              std::string::npos);
}

// --- artifact cache ------------------------------------------------

TEST(SvcCache, HitMissAndLruEviction)
{
    svc::CacheBudgets budgets;
    budgets.elabBytes = 1000; // room for two 400-byte entries
    svc::ArtifactCache cache(budgets);

    auto entry = [](uint64_t key) {
        auto e = std::make_shared<svc::Elaboration>();
        e->contentHash = key;
        e->byteSize = 400;
        return e;
    };

    EXPECT_EQ(cache.findElaboration(1), nullptr);
    cache.putElaboration(1, entry(1));
    cache.putElaboration(2, entry(2));
    ASSERT_NE(cache.findElaboration(1), nullptr);
    ASSERT_NE(cache.findElaboration(2), nullptr);

    auto stats = cache.elabStats();
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_EQ(stats.bytes, 800u);
    EXPECT_EQ(stats.hits, 2u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.evictions, 0u);

    // Touch 1 so 2 becomes least-recently-used, then insert 3:
    // the budget forces 2 out, 1 stays.
    ASSERT_NE(cache.findElaboration(1), nullptr);
    cache.putElaboration(3, entry(3));
    EXPECT_NE(cache.findElaboration(1), nullptr);
    EXPECT_EQ(cache.findElaboration(2), nullptr);
    EXPECT_NE(cache.findElaboration(3), nullptr);
    stats = cache.elabStats();
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_GE(stats.evictions, 1u);

    // An entry bigger than the whole budget is never admitted.
    auto huge = std::make_shared<svc::Elaboration>();
    huge->byteSize = 4000;
    cache.putElaboration(9, huge);
    EXPECT_EQ(cache.findElaboration(9), nullptr);
    EXPECT_EQ(cache.elabStats().bytes, 800u);
}

TEST(SvcCache, ShardsAreIndependent)
{
    svc::ArtifactCache cache;
    auto elab = std::make_shared<svc::Elaboration>();
    elab->byteSize = 64;
    cache.putElaboration(5, elab);
    // Same key in a different shard must not alias.
    EXPECT_EQ(cache.findReport(5), nullptr);
    EXPECT_EQ(cache.findPrograms(5), nullptr);
    EXPECT_NE(cache.findElaboration(5), nullptr);
}

// --- job runner ----------------------------------------------------

TEST(SvcJobRunner, WarmCacheSkipsSetupAndPreservesResults)
{
    svc::JobSpec spec;
    spec.target = "fig2";
    spec.cycles = 800;
    spec.engine = "compiled";

    svc::ArtifactCache cache;
    svc::RunOutcome cold = svc::runJob(spec, &cache);
    ASSERT_TRUE(cold.ok) << cold.error;
    EXPECT_FALSE(cold.elabCacheHit);
    EXPECT_FALSE(cold.verifyCacheHit);
    EXPECT_FALSE(cold.programCacheHit);
    EXPECT_NE(cold.traceHash, 0u);
    EXPECT_NE(cold.artifactHash, 0u);

    svc::RunOutcome warm = svc::runJob(spec, &cache);
    ASSERT_TRUE(warm.ok) << warm.error;
    EXPECT_TRUE(warm.elabCacheHit);
    EXPECT_TRUE(warm.verifyCacheHit);
    EXPECT_TRUE(warm.programCacheHit);

    // Cached artifacts must not perturb the simulation.
    EXPECT_EQ(warm.traceHash, cold.traceHash);
    EXPECT_EQ(warm.finalSig, cold.finalSig);
    EXPECT_EQ(warm.planHash, cold.planHash);
    EXPECT_EQ(warm.artifactHash, cold.artifactHash);
}

TEST(SvcJobRunner, RejectsInvalidPlanWithRenderedReport)
{
    svc::JobSpec spec;
    spec.target = "fig2";
    spec.cycles = 100;
    spec.channelCapacity = 0; // PLAN007: source can never enqueue

    svc::RunOutcome o = svc::runJob(spec);
    EXPECT_FALSE(o.ok);
    EXPECT_EQ(o.exitCode, 3);
    EXPECT_NE(o.error.find("static verification"),
              std::string::npos);
    EXPECT_NE(o.verifyReport.find("PLAN007"), std::string::npos);
}

TEST(SvcJobRunner, RejectsMalformedSpec)
{
    svc::JobSpec spec;
    spec.target = "no-such-target";
    svc::RunOutcome o = svc::runJob(spec);
    EXPECT_FALSE(o.ok);
    EXPECT_EQ(o.exitCode, 2);
    EXPECT_FALSE(o.error.empty());
}

// --- graceful stop -------------------------------------------------

TEST(SvcStop, RequestStopQuiescesWithResumableSnapshot)
{
    const svc::TargetInfo *target = svc::findTarget("fig2");
    ASSERT_NE(target, nullptr);
    auto circuit = target->build();
    auto plan = ripper::partition(circuit, target->spec(circuit));
    const size_t nparts = plan.partitions.size();
    auto fpgas = std::vector<platform::FpgaSpec>(
        nparts, platform::alveoU250(100.0));
    const uint64_t cycles = 3000;

    // Golden: uninterrupted run.
    uint64_t golden_sig = 0;
    {
        platform::MultiFpgaSim sim(plan, fpgas,
                                   transport::qsfpAurora());
        sim.init();
        auto r = sim.run(cycles);
        ASSERT_FALSE(r.deadlocked);
        golden_sig = finalStateSignature(sim, nparts);
    }

    // Interrupted: a monitor fires requestStop() mid-run (the same
    // sticky flag a drain broadcast sets); the run must stop at a
    // quiesce boundary short of the limit and snapshot cleanly.
    std::string dir = tempDir("stop");
    {
        platform::MultiFpgaSim sim(plan, fpgas,
                                   transport::qsfpAurora());
        sim.setMonitor(0, [&sim](rtlsim::Simulator &, unsigned,
                                 uint64_t cycle) {
            if (cycle >= 1000)
                sim.requestStop();
        });
        sim.init();
        auto r = sim.run(cycles);
        ASSERT_FALSE(r.deadlocked);
        EXPECT_TRUE(r.stopped);
        EXPECT_LT(r.targetCycles, cycles);
        EXPECT_GE(r.targetCycles, 1000u);
        std::string err;
        ASSERT_TRUE(sim.snapshot(dir, err)) << err;
    }

    // Resume from the stop-point snapshot and run to the original
    // limit: final state must be bit-identical to the golden run.
    {
        platform::MultiFpgaSim sim(plan, fpgas,
                                   transport::qsfpAurora());
        std::string err;
        ASSERT_TRUE(sim.restore(dir, err)) << err;
        auto r = sim.run(cycles);
        ASSERT_FALSE(r.deadlocked);
        EXPECT_FALSE(r.stopped);
        EXPECT_EQ(finalStateSignature(sim, nparts), golden_sig);
    }
    std::filesystem::remove_all(dir);
}

// --- service -------------------------------------------------------

namespace {

/** Collects one job's protocol lines and parses the terminal line. */
struct JobProbe
{
    std::mutex mtx;
    std::condition_variable cv;
    std::vector<std::string> lines;
    bool terminal = false;

    svc::SimService::EventSink
    sink()
    {
        return [this](const std::string &line) {
            std::lock_guard<std::mutex> lock(mtx);
            lines.push_back(line);
            if (line.find("\"type\":\"result\"") !=
                    std::string::npos ||
                line.find("\"type\":\"error\"") !=
                    std::string::npos) {
                terminal = true;
                cv.notify_all();
            }
        };
    }

    void
    waitTerminal()
    {
        std::unique_lock<std::mutex> lock(mtx);
        cv.wait(lock, [this] { return terminal; });
    }

    bool
    sawState(const std::string &state)
    {
        std::lock_guard<std::mutex> lock(mtx);
        for (const auto &l : lines)
            if (l.find("\"state\":\"" + state + "\"") !=
                std::string::npos)
                return true;
        return false;
    }

    /** Value of a "0x..." field on the terminal line (0 if absent). */
    uint64_t
    hashField(const std::string &key)
    {
        std::lock_guard<std::mutex> lock(mtx);
        for (const auto &l : lines) {
            auto at = l.find("\"" + key + "\":\"");
            if (at != std::string::npos)
                return svc::parseHexHash(
                    l.substr(at + key.size() + 4, 18));
        }
        return 0;
    }

    std::string
    terminalLine()
    {
        std::lock_guard<std::mutex> lock(mtx);
        return lines.empty() ? "" : lines.back();
    }
};

} // namespace

TEST(SvcService, ConcurrentJobsMatchSequentialGolden)
{
    svc::JobSpec spec;
    spec.target = "fig2";
    spec.cycles = 600;

    // Sequential golden.
    svc::ArtifactCache golden_cache;
    svc::RunOutcome golden = svc::runJob(spec, &golden_cache);
    ASSERT_TRUE(golden.ok) << golden.error;

    constexpr unsigned kJobs = 4;
    svc::ServiceConfig cfg;
    cfg.workers = kJobs;
    svc::SimService service(cfg);

    JobProbe probes[kJobs];
    for (auto &probe : probes)
        service.submit(spec, probe.sink());
    service.waitAll();

    for (auto &probe : probes) {
        probe.waitTerminal();
        EXPECT_TRUE(probe.sawState("queued"));
        EXPECT_TRUE(probe.sawState("running"));
        EXPECT_EQ(probe.hashField("trace_hash"), golden.traceHash)
            << probe.terminalLine();
        EXPECT_EQ(probe.hashField("final_sig"), golden.finalSig);
        EXPECT_EQ(probe.hashField("artifact_hash"),
                  golden.artifactHash);
    }
    EXPECT_EQ(service.jobsCompleted(), kJobs);
    // All four ran the same shape: the shared cache saw exactly one
    // elaboration miss.
    EXPECT_EQ(service.cache().elabStats().misses, 1u);
    EXPECT_EQ(service.cache().elabStats().hits, kJobs - 1u);
}

TEST(SvcService, StructuredRejectionForInvalidPlan)
{
    svc::JobSpec spec;
    spec.target = "fig2";
    spec.cycles = 100;
    spec.channelCapacity = 0;

    svc::SimService service;
    JobProbe probe;
    uint64_t id = service.submit(spec, probe.sink());
    ASSERT_TRUE(service.waitJob(id));
    probe.waitTerminal();
    std::string line = probe.terminalLine();
    EXPECT_NE(line.find("\"type\":\"error\""), std::string::npos);
    EXPECT_NE(line.find("\"code\":\"verify\""), std::string::npos);
    EXPECT_NE(line.find("PLAN007"), std::string::npos);
}

TEST(SvcService, DrainStopsInFlightJobAndLeavesResumableSnapshot)
{
    std::string dir = tempDir("drain");

    // A job far too long to finish: the drain must stop it.
    svc::JobSpec spec;
    spec.target = "fig2";
    spec.cycles = 200000000ull;
    spec.snapshotDir = dir;

    svc::ServiceConfig cfg;
    cfg.workers = 1;
    svc::SimService service(cfg);

    JobProbe running_probe;
    service.submit(spec, running_probe.sink());
    // A second job queued behind it must be rejected by the drain.
    JobProbe queued_probe;
    service.submit(spec, queued_probe.sink());

    // Wait until the first job is actually running.
    while (service.jobsActive() == 0)
        std::this_thread::yield();

    service.drain();
    running_probe.waitTerminal();
    queued_probe.waitTerminal();

    std::string stopped_line = running_probe.terminalLine();
    EXPECT_NE(stopped_line.find("\"type\":\"result\""),
              std::string::npos)
        << stopped_line;
    EXPECT_NE(stopped_line.find("\"stopped\":true"),
              std::string::npos)
        << stopped_line;

    std::string rejected_line = queued_probe.terminalLine();
    EXPECT_NE(rejected_line.find("\"type\":\"error\""),
              std::string::npos)
        << rejected_line;
    EXPECT_NE(rejected_line.find("draining"), std::string::npos);

    // The stop-point snapshot must restore into a working sim.
    const svc::TargetInfo *target = svc::findTarget("fig2");
    auto circuit = target->build();
    auto plan = ripper::partition(circuit, target->spec(circuit));
    platform::MultiFpgaSim sim(
        plan,
        std::vector<platform::FpgaSpec>(plan.partitions.size(),
                                        platform::alveoU250(100.0)),
        transport::qsfpAurora());
    std::string err;
    ASSERT_TRUE(sim.restore(dir, err)) << err;
    // The stop may land anywhere — including cycle 0 if the drain
    // won the race with the first cycle. Wherever it quiesced, the
    // snapshot must resume and run on cleanly.
    uint64_t resumed_at = sim.model(0).minTargetCycle();
    auto r = sim.run(resumed_at + 500);
    EXPECT_FALSE(r.deadlocked);
    EXPECT_EQ(r.targetCycles, resumed_at + 500);
    std::filesystem::remove_all(dir);
}

TEST(SvcService, SubmitAfterDrainIsRejected)
{
    svc::SimService service;
    service.drain();
    svc::JobSpec spec;
    spec.target = "fig2";
    JobProbe probe;
    service.submit(spec, probe.sink());
    probe.waitTerminal();
    EXPECT_NE(probe.terminalLine().find("\"type\":\"error\""),
              std::string::npos);
}

TEST(SvcService, StreamedTelemetryArrivesAsProtocolLines)
{
    svc::JobSpec spec;
    spec.target = "fig2";
    spec.cycles = 400;
    spec.stream = true;
    spec.sampleEvery = 1;

    svc::SimService service;
    JobProbe probe;
    uint64_t id = service.submit(spec, probe.sink());
    ASSERT_TRUE(service.waitJob(id));
    probe.waitTerminal();

    size_t stream_lines = 0;
    bool header_seen = false;
    {
        std::lock_guard<std::mutex> lock(probe.mtx);
        for (const auto &l : probe.lines)
            if (l.find("\"type\":\"stream\"") != std::string::npos) {
                ++stream_lines;
                if (l.find("fireaxe.stream.v1") != std::string::npos)
                    header_seen = true;
            }
    }
    EXPECT_GT(stream_lines, 0u);
    EXPECT_TRUE(header_seen);
}
