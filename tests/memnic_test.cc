/**
 * @file
 * Tests for the memory-system substrate (way-partitioned DDIO cache,
 * interconnect contention models) and the leaky-DMA experiment
 * (Fig. 9 invariants).
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "mem/cache.hh"
#include "mem/interconnect.hh"
#include "nic/leaky_dma.hh"

using namespace fireaxe;
using namespace fireaxe::mem;
using namespace fireaxe::nic;

TEST(Cache, HitAfterFill)
{
    WayPartitionedCache c({1024, 4, 64, 2});
    EXPECT_FALSE(c.access(0x1000, false, WayClass::Core, 1).hit);
    EXPECT_TRUE(c.access(0x1000, false, WayClass::Core, 2).hit);
    EXPECT_TRUE(c.access(0x1020, false, WayClass::Core, 3).hit);
    EXPECT_FALSE(c.access(0x2000, false, WayClass::Core, 4).hit);
}

TEST(Cache, LruEvictionWithinPartition)
{
    // 4 sets x 4 ways, 2 core ways: the 3rd distinct line mapping to
    // one set evicts the least recently used of the two core ways.
    WayPartitionedCache c({1024, 4, 64, 2});
    uint64_t set_stride = c.numSets() * 64;
    c.access(0, false, WayClass::Core, 1);
    c.access(set_stride, false, WayClass::Core, 2);
    c.access(2 * set_stride, false, WayClass::Core, 3); // evicts 0
    EXPECT_FALSE(c.probe(0));
    EXPECT_TRUE(c.probe(set_stride));
    EXPECT_TRUE(c.probe(2 * set_stride));
}

TEST(Cache, IoAllocationsDoNotEvictCoreWays)
{
    WayPartitionedCache c({1024, 4, 64, 2});
    uint64_t set_stride = c.numSets() * 64;
    // Fill the two core ways of set 0.
    c.access(0, false, WayClass::Core, 1);
    c.access(set_stride, false, WayClass::Core, 2);
    // Hammer set 0 with IO allocations.
    for (int i = 2; i < 20; ++i)
        c.access(i * set_stride, true, WayClass::Io, 10 + i);
    // The core lines survive: DDIO only thrashes its own ways.
    EXPECT_TRUE(c.probe(0));
    EXPECT_TRUE(c.probe(set_stride));
}

TEST(Cache, HitsFoundAcrossPartitions)
{
    // A core access hits a line the NIC placed in an IO way.
    WayPartitionedCache c({1024, 4, 64, 2});
    c.access(0x4000, true, WayClass::Io, 1);
    EXPECT_TRUE(c.access(0x4000, false, WayClass::Core, 2).hit);
}

TEST(Cache, DirtyEvictionReportsWriteback)
{
    WayPartitionedCache c({1024, 4, 64, 1});
    uint64_t set_stride = c.numSets() * 64;
    c.access(0, true, WayClass::Io, 1); // dirty line in the IO way
    auto res = c.access(set_stride, true, WayClass::Io, 2);
    EXPECT_FALSE(res.hit);
    EXPECT_TRUE(res.writeback);
}

TEST(Cache, RejectsBadWayPartition)
{
    EXPECT_THROW(WayPartitionedCache c({1024, 4, 64, 4}),
                 PanicError);
}

TEST(Interconnect, CrossbarQueuesContendingTransactions)
{
    CrossbarBus bus(4.0, 6.0);
    double first = bus.serve(0.0);
    double second = bus.serve(0.0); // same-instant transaction queues
    EXPECT_DOUBLE_EQ(first, 10.0);
    EXPECT_DOUBLE_EQ(second, 14.0);
}

TEST(Interconnect, RingServesInParallelWithHopLatency)
{
    RingNoc ring(4, 4.0, 22.0);
    // Four same-instant transactions ride four links in parallel.
    for (int i = 0; i < 4; ++i)
        EXPECT_DOUBLE_EQ(ring.serve(0.0), 26.0);
    // The fifth queues behind one of them.
    EXPECT_DOUBLE_EQ(ring.serve(0.0), 30.0);
}

TEST(LeakyDma, Deterministic)
{
    LeakyDmaConfig cfg;
    cfg.forwardingCores = 4;
    cfg.packets = 2000;
    auto r1 = runLeakyDma(cfg);
    auto r2 = runLeakyDma(cfg);
    EXPECT_DOUBLE_EQ(r1.avgReadLatencyNs, r2.avgReadLatencyNs);
    EXPECT_DOUBLE_EQ(r1.avgWriteLatencyNs, r2.avgWriteLatencyNs);
}

TEST(LeakyDma, LatencyGrowsWithCoreCount)
{
    // Fig. 9: "as we scale the number of cores, the average access
    // latency goes up due to cache and bus contention."
    auto lat = [](unsigned cores, Topology topo) {
        LeakyDmaConfig cfg;
        cfg.forwardingCores = cores;
        cfg.topology = topo;
        return runLeakyDma(cfg);
    };
    auto x1 = lat(1, Topology::Crossbar);
    auto x12 = lat(12, Topology::Crossbar);
    EXPECT_GT(x12.avgReadLatencyNs, x1.avgReadLatencyNs * 1.5);
    EXPECT_GT(x12.avgWriteLatencyNs, x1.avgWriteLatencyNs * 1.3);

    auto r1 = lat(1, Topology::Ring);
    auto r12 = lat(12, Topology::Ring);
    EXPECT_GT(r12.avgReadLatencyNs, r1.avgReadLatencyNs);
}

TEST(LeakyDma, CacheContentionGrowsWithFootprint)
{
    auto miss = [](unsigned cores) {
        LeakyDmaConfig cfg;
        cfg.forwardingCores = cores;
        return runLeakyDma(cfg).llcMissRate;
    };
    EXPECT_GT(miss(12), miss(1) + 0.05);
}

TEST(LeakyDma, RingHasHigherOverheadUnderLowLoad)
{
    // "a NoC has a higher per bus transaction overhead compared to a
    // cross-bar under low load"
    LeakyDmaConfig xbar, ring;
    xbar.forwardingCores = ring.forwardingCores = 1;
    ring.topology = Topology::Ring;
    auto rx = runLeakyDma(xbar);
    auto rr = runLeakyDma(ring);
    EXPECT_GT(rr.avgReadLatencyNs, rx.avgReadLatencyNs);
    EXPECT_GT(rr.avgWriteLatencyNs, rx.avgWriteLatencyNs);
}

TEST(LeakyDma, XbarWriteLatencyOvertakesRingPast6Cores)
{
    // "the write latency of the cross bar bus (XBar) increases much
    // more quickly than the Ring bus topology, resulting in a longer
    // latency when scaling up to more than 6 cores"
    auto wr = [](unsigned cores, Topology topo) {
        LeakyDmaConfig cfg;
        cfg.forwardingCores = cores;
        cfg.topology = topo;
        return runLeakyDma(cfg).avgWriteLatencyNs;
    };
    // Below the crossover the ring is slower...
    EXPECT_LT(wr(2, Topology::Crossbar), wr(2, Topology::Ring));
    // ...above it the crossbar is slower.
    EXPECT_GT(wr(10, Topology::Crossbar), wr(10, Topology::Ring));
    EXPECT_GT(wr(12, Topology::Crossbar), wr(12, Topology::Ring));
    // And the crossbar's slope is much steeper.
    double xbar_slope =
        wr(12, Topology::Crossbar) - wr(2, Topology::Crossbar);
    double ring_slope = wr(12, Topology::Ring) - wr(2, Topology::Ring);
    EXPECT_GT(xbar_slope, 4.0 * std::abs(ring_slope));
}

TEST(LeakyDma, LargerLlcRelievesThrash)
{
    // The paper resizes the L2 down to 128 kB precisely to make the
    // DDIO portion smaller than the I/O buffer footprint; growing
    // the LLC (same way split) must relieve the leak.
    // A server-class LLC large enough to hold the full in-flight
    // buffer footprint (12 cores x 128 descriptors x 1.5 kB x 2).
    LeakyDmaConfig small, big;
    small.forwardingCores = big.forwardingCores = 12;
    big.llc.sizeBytes = 8 * 1024 * 1024;
    big.llc.ways = 16;
    big.llc.ioWays = 4;
    auto r_small = runLeakyDma(small);
    auto r_big = runLeakyDma(big);
    EXPECT_LT(r_big.llcMissRate, r_small.llcMissRate - 0.05);
}

TEST(LeakyDma, RejectsBadCoreCount)
{
    LeakyDmaConfig cfg;
    cfg.forwardingCores = 0;
    EXPECT_THROW(runLeakyDma(cfg), PanicError);
}
