/**
 * @file
 * Tests for the cycle-accurate RTL interpreter: expression
 * evaluation, register/memory semantics, the output->input
 * combinational dependency matrix (used by the LI-BDN runtime), and
 * sequential-state snapshots (used by FAME-5).
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "firrtl/builder.hh"
#include "passes/flatten.hh"
#include "rtlsim/simulator.hh"

using namespace fireaxe;
using namespace fireaxe::firrtl;
using rtlsim::Simulator;

namespace {

Circuit
combCircuit(ExprPtr (*body)(ModuleBuilder &))
{
    CircuitBuilder cb("M");
    auto m = cb.module("M");
    m.input("a", 16);
    m.input("b", 16);
    m.output("o", 32);
    m.connect("o", body(m));
    return cb.finish();
}

} // namespace

TEST(Interp, AddSubWrapAtWidth)
{
    CircuitBuilder cb("M");
    auto m = cb.module("M");
    auto a = m.input("a", 8);
    auto b = m.input("b", 8);
    m.output("sum", 8);
    m.output("diff", 8);
    m.connect("sum", bits(eAdd(a, b), 7, 0));
    m.connect("diff", bits(eSub(a, b), 7, 0));
    Simulator sim(cb.finish());
    sim.poke("a", 200);
    sim.poke("b", 100);
    sim.evalComb();
    EXPECT_EQ(sim.peek("sum"), (200 + 100) & 0xff);
    sim.poke("a", 10);
    sim.poke("b", 20);
    sim.evalComb();
    EXPECT_EQ(sim.peek("diff"), (uint64_t(10) - uint64_t(20)) & 0xff);
}

TEST(Interp, MulDivRem)
{
    auto c = combCircuit(+[](ModuleBuilder &m) {
        return eMul(m.sig("a"), m.sig("b"));
    });
    Simulator sim(c);
    sim.poke("a", 123);
    sim.poke("b", 45);
    sim.evalComb();
    EXPECT_EQ(sim.peek("o"), 123u * 45u);
}

TEST(Interp, DivideByZeroYieldsZero)
{
    auto c = combCircuit(+[](ModuleBuilder &m) {
        return binOp(BinOpKind::Div, m.sig("a"), m.sig("b"));
    });
    Simulator sim(c);
    sim.poke("a", 100);
    sim.poke("b", 0);
    sim.evalComb();
    EXPECT_EQ(sim.peek("o"), 0u);
    sim.poke("b", 7);
    sim.evalComb();
    EXPECT_EQ(sim.peek("o"), 100u / 7u);
}

TEST(Interp, LogicAndCompare)
{
    CircuitBuilder cb("M");
    auto m = cb.module("M");
    auto a = m.input("a", 8);
    auto b = m.input("b", 8);
    m.output("and_o", 8);
    m.output("lt_o", 1);
    m.output("not_o", 8);
    m.connect("and_o", eAnd(a, b));
    m.connect("lt_o", eLt(a, b));
    m.connect("not_o", eNot(a));
    Simulator sim(cb.finish());
    sim.poke("a", 0xf0);
    sim.poke("b", 0x3c);
    sim.evalComb();
    EXPECT_EQ(sim.peek("and_o"), 0xf0u & 0x3cu);
    EXPECT_EQ(sim.peek("lt_o"), 0u);
    EXPECT_EQ(sim.peek("not_o"), 0x0fu);
}

TEST(Interp, ShiftsSaturateAt64)
{
    CircuitBuilder cb("M");
    auto m = cb.module("M");
    auto a = m.input("a", 32);
    auto sh = m.input("sh", 8);
    m.output("shl_o", 32);
    m.output("shr_o", 32);
    m.connect("shl_o", binOp(BinOpKind::Shl, a, sh));
    m.connect("shr_o", binOp(BinOpKind::Shr, a, sh));
    Simulator sim(cb.finish());
    sim.poke("a", 0x80000001u);
    sim.poke("sh", 4);
    sim.evalComb();
    EXPECT_EQ(sim.peek("shl_o"), (0x80000001ull << 4) & 0xffffffffull);
    EXPECT_EQ(sim.peek("shr_o"), 0x80000001ull >> 4);
    sim.poke("sh", 100);
    sim.evalComb();
    EXPECT_EQ(sim.peek("shl_o"), 0u);
    EXPECT_EQ(sim.peek("shr_o"), 0u);
}

TEST(Interp, ReductionOps)
{
    CircuitBuilder cb("M");
    auto m = cb.module("M");
    auto a = m.input("a", 4);
    m.output("andr_o", 1);
    m.output("orr_o", 1);
    m.output("xorr_o", 1);
    m.connect("andr_o", unOp(UnOpKind::AndR, a));
    m.connect("orr_o", unOp(UnOpKind::OrR, a));
    m.connect("xorr_o", unOp(UnOpKind::XorR, a));
    Simulator sim(cb.finish());
    sim.poke("a", 0xf);
    sim.evalComb();
    EXPECT_EQ(sim.peek("andr_o"), 1u);
    EXPECT_EQ(sim.peek("orr_o"), 1u);
    EXPECT_EQ(sim.peek("xorr_o"), 0u);
    sim.poke("a", 0x7);
    sim.evalComb();
    EXPECT_EQ(sim.peek("andr_o"), 0u);
    EXPECT_EQ(sim.peek("xorr_o"), 1u);
}

TEST(Interp, CatAndBits)
{
    CircuitBuilder cb("M");
    auto m = cb.module("M");
    auto a = m.input("a", 8);
    auto b = m.input("b", 8);
    m.output("cat_o", 16);
    m.output("hi_o", 4);
    m.connect("cat_o", cat(a, b));
    m.connect("hi_o", bits(a, 7, 4));
    Simulator sim(cb.finish());
    sim.poke("a", 0xab);
    sim.poke("b", 0xcd);
    sim.evalComb();
    EXPECT_EQ(sim.peek("cat_o"), 0xabcdu);
    EXPECT_EQ(sim.peek("hi_o"), 0xau);
}

TEST(Interp, RegisterLatchesOnStep)
{
    CircuitBuilder cb("M");
    auto m = cb.module("M");
    auto d = m.input("d", 8);
    m.output("q", 8);
    auto r = m.reg("r", 8, 42);
    m.connect("r", d);
    m.connect("q", r);
    Simulator sim(cb.finish());
    EXPECT_EQ(sim.peek("q"), 42u); // initial value visible
    sim.poke("d", 7);
    sim.evalComb();
    EXPECT_EQ(sim.peek("q"), 42u); // not yet latched
    sim.step();
    EXPECT_EQ(sim.peek("q"), 7u);
}

TEST(Interp, UndrivenRegisterHoldsValue)
{
    CircuitBuilder cb("M");
    auto m = cb.module("M");
    m.output("q", 8);
    m.reg("r", 8, 99);
    m.connect("q", m.sig("r"));
    Simulator sim(cb.finish());
    sim.run(10);
    EXPECT_EQ(sim.peek("q"), 99u);
}

TEST(Interp, CounterCounts)
{
    CircuitBuilder cb("M");
    auto m = cb.module("M");
    m.output("count", 8);
    auto r = m.reg("cnt", 8, 0);
    m.connect("cnt", bits(eAdd(r, lit(1, 8)), 7, 0));
    m.connect("count", r);
    Simulator sim(cb.finish());
    sim.run(300);
    EXPECT_EQ(sim.peek("count"), 300u % 256);
    EXPECT_EQ(sim.cycle(), 300u);
}

TEST(Interp, MemoryWriteThenRead)
{
    CircuitBuilder cb("M");
    auto m = cb.module("M");
    auto waddr = m.input("waddr", 4);
    auto wdata = m.input("wdata", 8);
    auto wen = m.input("wen", 1);
    auto raddr = m.input("raddr", 4);
    m.output("rdata", 8);
    m.mem("ram", 16, 8);
    m.connect("ram.waddr", waddr);
    m.connect("ram.wdata", wdata);
    m.connect("ram.wen", wen);
    m.connect("ram.raddr", raddr);
    m.connect("rdata", m.sig("ram.rdata"));
    Simulator sim(cb.finish());

    sim.poke("waddr", 5);
    sim.poke("wdata", 0x5a);
    sim.poke("wen", 1);
    sim.poke("raddr", 5);
    sim.evalComb();
    EXPECT_EQ(sim.peek("rdata"), 0u); // write not visible same cycle
    sim.step();
    sim.poke("wen", 0);
    sim.evalComb();
    EXPECT_EQ(sim.peek("rdata"), 0x5au);
}

TEST(Interp, MemoryBackdoorAccess)
{
    CircuitBuilder cb("M");
    auto m = cb.module("M");
    auto raddr = m.input("raddr", 4);
    m.output("rdata", 8);
    m.mem("rom", 16, 8);
    m.connect("rom.raddr", raddr);
    m.connect("rdata", m.sig("rom.rdata"));
    Simulator sim(cb.finish());
    sim.writeMem("rom", 3, 0x77);
    EXPECT_EQ(sim.readMem("rom", 3), 0x77u);
    sim.poke("raddr", 3);
    sim.evalComb();
    EXPECT_EQ(sim.peek("rdata"), 0x77u);
}

TEST(Interp, DepMatrixSeparatesSinkAndSourceOutputs)
{
    CircuitBuilder cb("M");
    auto m = cb.module("M");
    auto a = m.input("a", 8);
    auto b = m.input("b", 8);
    m.output("comb_o", 8);  // sink output: depends on a
    m.output("reg_o", 8);   // source output: register only
    auto r = m.reg("r", 8);
    m.connect("comb_o", eXor(a, lit(1, 8)));
    m.connect("r", b);
    m.connect("reg_o", r);
    Simulator sim(cb.finish());
    int comb_o = sim.signalIndex("comb_o");
    int reg_o = sim.signalIndex("reg_o");
    int a_idx = sim.signalIndex("a");
    EXPECT_EQ(sim.outputDeps(comb_o), std::set<int>{a_idx});
    EXPECT_TRUE(sim.outputDeps(reg_o).empty());
}

TEST(Interp, SeqStateSnapshotRoundTrip)
{
    CircuitBuilder cb("M");
    auto m = cb.module("M");
    m.output("count", 16);
    auto r = m.reg("cnt", 16, 0);
    m.connect("cnt", bits(eAdd(r, lit(1, 16)), 15, 0));
    m.connect("count", r);
    Simulator sim(cb.finish());
    sim.run(10);
    rtlsim::SeqState snap;
    sim.saveState(snap);
    sim.run(7);
    EXPECT_EQ(sim.peek("count"), 17u);
    sim.loadState(snap);
    sim.evalComb();
    EXPECT_EQ(sim.peek("count"), 10u);
}

TEST(Interp, ResetRestoresInitialState)
{
    CircuitBuilder cb("M");
    auto m = cb.module("M");
    m.output("count", 16);
    auto r = m.reg("cnt", 16, 5);
    m.connect("cnt", bits(eAdd(r, lit(1, 16)), 15, 0));
    m.connect("count", r);
    Simulator sim(cb.finish());
    sim.run(10);
    sim.reset();
    EXPECT_EQ(sim.peek("count"), 5u);
    EXPECT_EQ(sim.cycle(), 0u);
}

TEST(Interp, RejectsNonFlatModule)
{
    CircuitBuilder cb("Top");
    auto leaf = cb.module("Leaf");
    leaf.output("o", 1);
    leaf.connect("o", lit(0, 1));
    auto top = cb.module("Top");
    top.output("o", 1);
    top.instance("l", "Leaf");
    top.connect("o", top.sig("l.o"));
    Circuit c = cb.finish();
    EXPECT_THROW(Simulator sim(c), FatalError);
}

TEST(Interp, RejectsCombLoop)
{
    CircuitBuilder cb("M");
    auto m = cb.module("M");
    m.output("o", 1);
    auto w1 = m.wire("w1", 1);
    auto w2 = m.wire("w2", 1);
    m.connect(w1, eNot(w2));
    m.connect(w2, eNot(w1));
    m.connect("o", w1);
    Circuit c = cb.finish();
    EXPECT_THROW(Simulator sim(c), FatalError);
}

TEST(Interp, GcdComputesCorrectly)
{
    // A small GCD engine: start pulses load a/b; busy until b == 0.
    CircuitBuilder cb("Gcd");
    auto m = cb.module("Gcd");
    auto a_in = m.input("a_in", 16);
    auto b_in = m.input("b_in", 16);
    auto start = m.input("start", 1);
    m.output("result", 16);
    m.output("busy", 1);
    auto x = m.reg("x", 16);
    auto y = m.reg("y", 16);
    auto running = m.reg("running", 1);

    auto x_gt_y = binOp(BinOpKind::Gt, x, y);
    auto y_zero = eEq(y, lit(0, 16));
    m.connect("x", mux(start, a_in,
                       mux(eAnd(running, x_gt_y),
                           bits(eSub(x, y), 15, 0), x)));
    m.connect("y", mux(start, b_in,
                       mux(eAnd(running, eNot(x_gt_y)),
                           mux(y_zero, y, bits(eSub(y, x), 15, 0)),
                           y)));
    m.connect("running", mux(start, lit(1, 1),
                             mux(y_zero, lit(0, 1), running)));
    m.connect("result", x);
    m.connect("busy", running);

    Simulator sim(cb.finish());
    sim.poke("a_in", 48);
    sim.poke("b_in", 36);
    sim.poke("start", 1);
    sim.evalComb();
    sim.step();
    sim.poke("start", 0);
    sim.evalComb();
    for (int i = 0; i < 100 && sim.peek("busy"); ++i)
        sim.step();
    EXPECT_EQ(sim.peek("result"), 12u);
}

TEST(Compiled, ParseAndPrintEngineNames)
{
    using rtlsim::EvalEngine;
    EXPECT_EQ(rtlsim::parseEvalEngine("interpret"),
              EvalEngine::Interpret);
    EXPECT_EQ(rtlsim::parseEvalEngine("compiled"),
              EvalEngine::Compiled);
    EXPECT_STREQ(rtlsim::toString(EvalEngine::Interpret), "interpret");
    EXPECT_STREQ(rtlsim::toString(EvalEngine::Compiled), "compiled");
    EXPECT_THROW(rtlsim::parseEvalEngine("jit"), FatalError);
}

/** Once a saturating counter stops changing, activity gating must
 *  stop evaluating nodes entirely: nodesEvaluated() freezes while
 *  nodesSkipped() keeps accumulating. */
TEST(Compiled, QuiescentDesignStopsEvaluating)
{
    CircuitBuilder cb("M");
    auto m = cb.module("M");
    m.output("count", 8);
    auto r = m.reg("cnt", 8, 0);
    auto at_max = eEq(r, lit(255, 8));
    m.connect("cnt", mux(at_max, r, bits(eAdd(r, lit(1, 8)), 7, 0)));
    m.connect("count", r);
    Simulator sim(cb.finish(), rtlsim::EvalEngine::Compiled);
    sim.run(300);
    EXPECT_EQ(sim.peek("count"), 255u);

    uint64_t evaluated_before = sim.nodesEvaluated();
    uint64_t skipped_before = sim.nodesSkipped();
    sim.run(100);
    EXPECT_EQ(sim.peek("count"), 255u);
    EXPECT_EQ(sim.nodesEvaluated(), evaluated_before)
        << "gating re-evaluated nodes in a quiescent design";
    EXPECT_GT(sim.nodesSkipped(), skipped_before);
}

/** The interpreter recomputes every driven signal each evalComb, so
 *  a poke of a driven wire is overwritten by its driver. The gated
 *  engine must reproduce that, not keep the poked value. */
TEST(Compiled, PokeOfDrivenSignalIsOverwritten)
{
    for (auto engine : {rtlsim::EvalEngine::Interpret,
                        rtlsim::EvalEngine::Compiled}) {
        CircuitBuilder cb("M");
        auto m = cb.module("M");
        auto a = m.input("a", 8);
        m.wire("w", 8);
        m.output("o", 8);
        m.connect("w", bits(eAdd(a, lit(1, 8)), 7, 0));
        m.connect("o", m.sig("w"));
        Simulator sim(cb.finish(), engine);
        sim.poke("a", 10);
        sim.evalComb();
        ASSERT_EQ(sim.peek("o"), 11u);
        sim.poke("w", 99);
        sim.evalComb();
        EXPECT_EQ(sim.peek("w"), 11u) << rtlsim::toString(engine);
        EXPECT_EQ(sim.peek("o"), 11u) << rtlsim::toString(engine);
    }
}

/** Per-evalComb node accounting: evaluated + skipped always sums to
 *  a whole number of passes over the node set. */
TEST(Compiled, CountersAccountEveryNode)
{
    CircuitBuilder cb("M");
    auto m = cb.module("M");
    m.output("count", 8);
    auto r = m.reg("cnt", 8, 0);
    m.connect("cnt", bits(eAdd(r, lit(1, 8)), 7, 0));
    m.connect("count", r);
    Simulator sim(cb.finish(), rtlsim::EvalEngine::Compiled);
    sim.run(17);
    ASSERT_GT(sim.numNodes(), 0u);
    EXPECT_EQ((sim.nodesEvaluated() + sim.nodesSkipped()) %
                  sim.numNodes(),
              0u);
}
