/**
 * @file
 * Tests for the LI-BDN runtime: token channels with link timing,
 * decoupled models (output-FSM/fireFSM semantics), deadlock
 * behaviour with unseparated channels (paper Fig. 2a), and FAME-5
 * multithreading.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "firrtl/builder.hh"
#include "libdn/channel.hh"
#include "libdn/model.hh"
#include "target/paper_examples.hh"

using namespace fireaxe;
using namespace fireaxe::firrtl;
using libdn::ChannelPtr;
using libdn::LIBDNModel;
using libdn::Token;
using libdn::TokenChannel;

TEST(Channel, FifoOrderAndCapacity)
{
    TokenChannel ch("c", 8, 2);
    EXPECT_TRUE(ch.empty());
    ch.enq({1}, 0.0);
    ch.enq({2}, 0.0);
    EXPECT_TRUE(ch.full());
    EXPECT_EQ(ch.head()[0], 1u);
    ch.deq();
    EXPECT_EQ(ch.head()[0], 2u);
    ch.deq();
    EXPECT_TRUE(ch.empty());
    EXPECT_EQ(ch.tokensEnqueued(), 2u);
}

TEST(Channel, HeadVisibilityFollowsReadyTime)
{
    TokenChannel ch("c", 8);
    ch.enq({7}, 100.0);
    EXPECT_FALSE(ch.headReady(50.0));
    EXPECT_TRUE(ch.headReady(100.0));
    EXPECT_DOUBLE_EQ(ch.headReadyTime(), 100.0);
}

TEST(Channel, TimedEnqueueAppliesSerializationAndLatency)
{
    TokenChannel ch("c", 64);
    ch.setTiming(10.0, 100.0); // 10 ns occupancy, 100 ns flight
    ch.enqTimed({1}, 0.0);
    ch.enqTimed({2}, 0.0); // queued behind the first departure
    EXPECT_DOUBLE_EQ(ch.headReadyTime(), 110.0);
    ch.deq();
    EXPECT_DOUBLE_EQ(ch.headReadyTime(), 120.0);
}

TEST(Channel, SharedSerializerSerializesAcrossChannels)
{
    auto ser = std::make_shared<libdn::LinkSerializer>();
    TokenChannel a("a", 32), b("b", 32);
    a.setTiming(10.0, 100.0, ser);
    b.setTiming(10.0, 100.0, ser);
    a.enqTimed({1}, 0.0);
    b.enqTimed({2}, 0.0);
    EXPECT_DOUBLE_EQ(a.headReadyTime(), 110.0);
    EXPECT_DOUBLE_EQ(b.headReadyTime(), 120.0);
}

namespace {

/** A free-running counter partition with one output channel. */
Circuit
counterPartition()
{
    CircuitBuilder cb("Cnt");
    auto m = cb.module("Cnt");
    m.output("out", 16);
    auto r = m.reg("r", 16, 0);
    m.connect("r", bits(eAdd(r, lit(1, 16)), 15, 0));
    m.connect("out", r);
    return cb.finish();
}

} // namespace

TEST(LIBDN, SourceOutputFiresEveryCycle)
{
    LIBDNModel model("m", counterPartition());
    int out = model.defineOutputChannel({"out", {"out"}});
    auto ch = std::make_shared<TokenChannel>("out", 16, 64);
    model.bindOutput(out, 0, ch);
    model.finalize();

    double now = 0.0;
    for (int i = 0; i < 10; ++i, now += 10.0)
        model.tick(now);
    EXPECT_EQ(model.targetCycle(), 10u);
    ASSERT_EQ(ch->size(), 10u);
    // Tokens carry the register value of each successive cycle.
    for (uint64_t i = 0; i < 5; ++i) {
        EXPECT_EQ(ch->head()[0], i);
        ch->deq();
    }
}

TEST(LIBDN, BlocksWhenOutputChannelIsFull)
{
    LIBDNModel model("m", counterPartition());
    int out = model.defineOutputChannel({"out", {"out"}});
    auto ch = std::make_shared<TokenChannel>("out", 16, 2);
    model.bindOutput(out, 0, ch);
    model.finalize();

    double now = 0.0;
    for (int i = 0; i < 10; ++i, now += 10.0)
        model.tick(now);
    EXPECT_EQ(model.targetCycle(), 2u); // backpressured after 2
    ch->deq();
    for (int i = 0; i < 3; ++i, now += 10.0)
        model.tick(now);
    EXPECT_EQ(model.targetCycle(), 3u);
}

TEST(LIBDN, WaitsForInputToken)
{
    // Partition: out = in + 1 (combinational) — a sink output.
    CircuitBuilder cb("Inc");
    auto m = cb.module("Inc");
    auto in = m.input("in", 16);
    m.output("out", 16);
    m.connect("out", bits(eAdd(in, lit(1, 16)), 15, 0));
    LIBDNModel model("m", cb.finish());

    int in_slot = model.defineInputChannel({"in", {"in"}});
    int out_slot = model.defineOutputChannel({"out", {"out"}});
    auto in_ch = std::make_shared<TokenChannel>("in", 16);
    auto out_ch = std::make_shared<TokenChannel>("out", 16, 64);
    model.bindInput(in_slot, 0, in_ch);
    model.bindOutput(out_slot, 0, out_ch);
    model.finalize();

    // The output channel depends on the input channel.
    EXPECT_EQ(model.outputChannelDeps(out_slot), std::set<int>{0});

    model.tick(0.0);
    EXPECT_TRUE(out_ch->empty()); // no input token yet -> no fire
    in_ch->enq({41}, 5.0);
    model.tick(4.0);
    EXPECT_TRUE(out_ch->empty()); // token not visible until t=5
    model.tick(5.0);
    ASSERT_FALSE(out_ch->empty());
    EXPECT_EQ(out_ch->head()[0], 42u);
    EXPECT_EQ(model.targetCycle(), 1u);
}

namespace {

/**
 * Wire the Fig. 2 blocks as two LI-BDN models. @p separated selects
 * the paper's Fig. 2b channelization (separate source/sink channels)
 * versus Fig. 2a (all ports on one channel pair), which deadlocks.
 * Returns the two block registers' observed token streams.
 */
struct Fig2Harness
{
    std::unique_ptr<LIBDNModel> a, b;
    std::vector<ChannelPtr> chans;
    bool progressed = false;

    explicit Fig2Harness(bool separated)
    {
        // One Fig2Block per side, with the seed driven externally.
        auto mk = [](uint64_t seed) {
            CircuitBuilder cb("Blk");
            auto m = cb.module("Blk");
            auto sink_in = m.input("sink_in", 16);
            auto source_in = m.input("source_in", 16);
            m.output("src_out", 16);
            m.output("snk_out", 16);
            auto r = m.reg("r", 16, seed);
            m.connect("r", source_in);
            m.connect("src_out", r);
            m.connect("snk_out", bits(eAdd(sink_in, r), 15, 0));
            return cb.finish();
        };
        a = std::make_unique<LIBDNModel>("a", mk(1));
        b = std::make_unique<LIBDNModel>("b", mk(2));

        auto connect = [&](LIBDNModel &src, LIBDNModel &dst,
                           const std::vector<std::string> &src_ports,
                           const std::vector<std::string> &dst_ports,
                           const std::string &name) {
            auto ch = std::make_shared<TokenChannel>(name, 16, 8);
            ch->setTiming(1.0, 3.0);
            int o = src.defineOutputChannel({name, src_ports});
            src.bindOutput(o, 0, ch);
            int i = dst.defineInputChannel({name, dst_ports});
            dst.bindInput(i, 0, ch);
            chans.push_back(ch);
        };

        if (separated) {
            connect(*a, *b, {"src_out"}, {"sink_in"}, "a2b_src");
            connect(*a, *b, {"snk_out"}, {"source_in"}, "a2b_snk");
            connect(*b, *a, {"src_out"}, {"sink_in"}, "b2a_src");
            connect(*b, *a, {"snk_out"}, {"source_in"}, "b2a_snk");
        } else {
            connect(*a, *b, {"src_out", "snk_out"},
                    {"sink_in", "source_in"}, "a2b");
            connect(*b, *a, {"src_out", "snk_out"},
                    {"sink_in", "source_in"}, "b2a");
        }
        a->finalize();
        b->finalize();
    }

    void
    run(int ticks)
    {
        double now = 0.0;
        for (int i = 0; i < ticks; ++i, now += 10.0) {
            bool pa = a->tick(now);
            bool pb = b->tick(now);
            progressed = progressed || pa || pb;
        }
    }
};

} // namespace

TEST(LIBDN, Fig2SeparatedChannelsMakeForwardProgress)
{
    Fig2Harness h(true);
    h.run(100);
    EXPECT_GT(h.a->targetCycle(), 10u);
    EXPECT_GT(h.b->targetCycle(), 10u);
}

TEST(LIBDN, Fig2SeparatedChannelsMatchMonolithicValues)
{
    // Monolithic recurrence: r_a' = sink_in_b + r_b = r_a + r_b,
    // r_b' = r_a + r_b. From (1, 2): (3, 3), (6, 6), (12, 12)...
    Fig2Harness h(true);
    std::vector<uint64_t> ra;
    h.a->setMonitor([&](rtlsim::Simulator &sim, unsigned,
                        uint64_t) {
        ra.push_back(sim.peek("src_out"));
    });
    h.run(200);
    ASSERT_GE(ra.size(), 4u);
    EXPECT_EQ(ra[0], 1u);
    EXPECT_EQ(ra[1], 3u);
    EXPECT_EQ(ra[2], 6u);
    EXPECT_EQ(ra[3], 12u);
}

TEST(LIBDN, Fig2UnseparatedChannelsDeadlock)
{
    // Fig. 2a: concatenating all I/O onto one channel pair creates a
    // circular token dependency; neither side can ever fire.
    Fig2Harness h(false);
    h.run(100);
    EXPECT_EQ(h.a->targetCycle(), 0u);
    EXPECT_EQ(h.b->targetCycle(), 0u);
    EXPECT_FALSE(h.progressed);
}

TEST(LIBDN, ExactModeUsesTwoLinkCrossingsPerCycle)
{
    // With link latency L and separated channels, one target cycle
    // needs two sequential crossings: the steady-state period is
    // about 2L (paper §VI-A). Check the rate falls in that regime.
    Fig2Harness h(true);
    double latency = 3.0;
    (void)latency;
    h.run(400); // 400 ticks of 10 ns
    // Each cycle needs two 3 ns flights plus ticks; with a 10 ns
    // tick the bound is ~2 ticks per cycle.
    EXPECT_GE(h.a->targetCycle(), 100u);
    EXPECT_LE(h.a->targetCycle(), 250u);
}

TEST(LIBDN, Fame5ThreadsAdvanceIndependentStates)
{
    // One counter circuit, two FAME-5 threads: shared combinational
    // netlist, replicated sequential state, round-robin scheduling.
    LIBDNModel model("m", counterPartition(), 2);
    int out = model.defineOutputChannel({"out", {"out"}});
    auto ch0 = std::make_shared<TokenChannel>("t0", 16, 64);
    auto ch1 = std::make_shared<TokenChannel>("t1", 16, 64);
    model.bindOutput(out, 0, ch0);
    model.bindOutput(out, 1, ch1);
    model.finalize();

    double now = 0.0;
    for (int i = 0; i < 20; ++i, now += 10.0)
        model.tick(now);
    // 20 host ticks round-robin across 2 threads -> 10 cycles each.
    EXPECT_EQ(model.targetCycle(0), 10u);
    EXPECT_EQ(model.targetCycle(1), 10u);
    EXPECT_EQ(model.minTargetCycle(), 10u);
    // Both threads produced the same deterministic stream.
    for (uint64_t i = 0; i < 10; ++i) {
        EXPECT_EQ(ch0->head()[0], i);
        EXPECT_EQ(ch1->head()[0], i);
        ch0->deq();
        ch1->deq();
    }
}

TEST(LIBDN, Fame5BlockedThreadStallsScheduler)
{
    LIBDNModel model("m", counterPartition(), 2);
    int out = model.defineOutputChannel({"out", {"out"}});
    auto ch0 = std::make_shared<TokenChannel>("t0", 16, 2);
    auto ch1 = std::make_shared<TokenChannel>("t1", 16, 64);
    model.bindOutput(out, 0, ch0);
    model.bindOutput(out, 1, ch1);
    model.finalize();

    double now = 0.0;
    for (int i = 0; i < 40; ++i, now += 10.0)
        model.tick(now);
    // Thread 0's channel fills after 2 tokens; strict round-robin
    // then stalls thread 1 at most one cycle ahead.
    EXPECT_EQ(model.targetCycle(0), 2u);
    EXPECT_LE(model.targetCycle(1), 3u);
}

TEST(LIBDN, DriverSuppliesExternalInputs)
{
    CircuitBuilder cb("Ext");
    auto m = cb.module("Ext");
    auto in = m.input("ext_in", 16);
    m.output("out", 16);
    auto r = m.reg("r", 16, 0);
    m.connect("r", in);
    m.connect("out", r);
    LIBDNModel model("m", cb.finish());
    int out = model.defineOutputChannel({"out", {"out"}});
    auto ch = std::make_shared<TokenChannel>("out", 16, 64);
    model.bindOutput(out, 0, ch);
    model.setDriver([](rtlsim::Simulator &sim, unsigned,
                       uint64_t cycle) {
        sim.poke("ext_in", cycle * 7);
    });
    model.finalize();

    double now = 0.0;
    for (int i = 0; i < 5; ++i, now += 10.0)
        model.tick(now);
    // out(cycle) = ext_in(cycle-1) = 7*(cycle-1).
    std::vector<uint64_t> seen;
    while (!ch->empty()) {
        seen.push_back(ch->head()[0]);
        ch->deq();
    }
    ASSERT_GE(seen.size(), 4u);
    EXPECT_EQ(seen[0], 0u);
    EXPECT_EQ(seen[1], 0u);
    EXPECT_EQ(seen[2], 7u);
    EXPECT_EQ(seen[3], 14u);
}

TEST(LIBDN, UnboundChannelFailsFinalize)
{
    LIBDNModel model("m", counterPartition());
    model.defineOutputChannel({"out", {"out"}});
    EXPECT_THROW(model.finalize(), FatalError);
}

TEST(LIBDN, ChannelOverUnknownPortFails)
{
    LIBDNModel model("m", counterPartition());
    EXPECT_THROW(model.defineOutputChannel({"x", {"nope"}}),
                 FatalError);
}
