/**
 * @file
 * Tests for the OoO core performance model: determinism, parameter
 * sensitivity (every Table I knob must matter in the right
 * direction), the Fig. 7 core ordering, the paper's nettle-aes /
 * nbody contrast, and the Fig. 8 TIP attribution invariants.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "uarch/core_model.hh"
#include "uarch/params.hh"
#include "uarch/trace.hh"

using namespace fireaxe;
using namespace fireaxe::uarch;

namespace {

double
ipcOf(const CoreParams &p, const std::string &workload)
{
    CoreModel model(p);
    return model.run(embenchProfile(workload)).ipc();
}

/** Geometric-mean IPC over the whole suite. */
double
meanIpc(const CoreParams &p)
{
    CoreModel model(p);
    double log_sum = 0.0;
    auto profiles = embenchProfiles();
    for (const auto &w : profiles)
        log_sum += std::log(model.run(w).ipc());
    return std::exp(log_sum / profiles.size());
}

} // namespace

TEST(Trace, DeterministicForSeed)
{
    auto p = embenchProfile("crc32");
    auto t1 = generateTrace(p, 7);
    auto t2 = generateTrace(p, 7);
    ASSERT_EQ(t1.size(), t2.size());
    for (size_t i = 0; i < t1.size(); ++i) {
        EXPECT_EQ(t1[i].kind, t2[i].kind);
        EXPECT_EQ(t1[i].dep1, t2[i].dep1);
    }
}

TEST(Trace, MixMatchesProfile)
{
    auto p = embenchProfile("nbody");
    auto t = generateTrace(p, 1);
    uint64_t fp = 0, loads = 0;
    for (const auto &in : t) {
        fp += in.kind == InstrKind::Fp;
        loads += in.kind == InstrKind::Load;
    }
    EXPECT_NEAR(double(fp) / t.size(), p.fpFrac, 0.02);
    EXPECT_NEAR(double(loads) / t.size(), p.loadFrac, 0.02);
}

TEST(CoreModel, DeterministicRuns)
{
    CoreModel model(largeBoomParams());
    auto r1 = model.run(embenchProfile("crc32"));
    auto r2 = model.run(embenchProfile("crc32"));
    EXPECT_EQ(r1.cycles, r2.cycles);
}

TEST(CoreModel, IpcIsPlausible)
{
    for (const auto &w : embenchProfiles()) {
        double ipc = CoreModel(largeBoomParams()).run(w).ipc();
        EXPECT_GT(ipc, 0.2) << w.name;
        EXPECT_LE(ipc, 3.0) << w.name;
    }
}

TEST(CoreModel, Gc40BeatsLargeBoomOnAverage)
{
    // Fig. 7 / §V-B: "GC40 BOOM consistently does well compared to
    // Large BOOM with a 15.8% increase in average IPC."
    double large = meanIpc(largeBoomParams());
    double gc40 = meanIpc(gc40BoomParams());
    double gain = gc40 / large - 1.0;
    EXPECT_GT(gain, 0.08);
    EXPECT_LT(gain, 0.40);
}

TEST(CoreModel, XeonBeatsBothBoomVariants)
{
    double large = meanIpc(largeBoomParams());
    double gc40 = meanIpc(gc40BoomParams());
    double xeon = meanIpc(gcXeonParams());
    EXPECT_GT(xeon, gc40);
    EXPECT_GT(gc40, large);
}

TEST(CoreModel, NettleAesIsFetchBoundNbodyIsNot)
{
    // §V-B: nettle-aes gains ~56% from the wider GC40 frontend
    // while nbody gains only ~2% (execution-throughput bound).
    double aes_gain = ipcOf(gc40BoomParams(), "nettle-aes") /
                          ipcOf(largeBoomParams(), "nettle-aes") -
                      1.0;
    double nbody_gain = ipcOf(gc40BoomParams(), "nbody") /
                            ipcOf(largeBoomParams(), "nbody") -
                        1.0;
    EXPECT_GT(aes_gain, 0.30);
    EXPECT_LT(nbody_gain, 0.15);
    EXPECT_GT(aes_gain, nbody_gain + 0.2);
}

TEST(CoreModel, WiderFetchHelpsHighIlpCode)
{
    CoreParams narrow = largeBoomParams();
    CoreParams wide = largeBoomParams();
    wide.fetchWidth = 8;
    EXPECT_GT(ipcOf(wide, "nettle-aes"), ipcOf(narrow, "nettle-aes"));
}

TEST(CoreModel, RobSizeGovernsMissOverlap)
{
    // With long memory latency, a small window cannot hide misses:
    // the instruction window (ROB / phys regs) becomes the binding
    // constraint and shrinking it costs IPC.
    CoreParams base = largeBoomParams();
    base.l1dMissCycles = 120; // model a DRAM-latency backing store
    CoreParams tiny = base;
    tiny.robEntries = 16;
    tiny.intPhysRegs = 40;
    tiny.fpPhysRegs = 40;
    tiny.ldqEntries = 8;
    tiny.stqEntries = 8;
    // matmult-int has L1D misses to overlap.
    EXPECT_GT(ipcOf(base, "matmult-int"),
              ipcOf(tiny, "matmult-int") * 1.05);
}

TEST(CoreModel, BetterBranchPredictorHelpsBranchyCode)
{
    CoreParams base = largeBoomParams();
    CoreParams good = largeBoomParams();
    good.branchPredictorFactor = 0.3;
    EXPECT_GT(ipcOf(good, "nsichneu"), ipcOf(base, "nsichneu"));
}

TEST(CoreModel, LargerL1dReducesMemoryStalls)
{
    CoreParams base = gcXeonParams();
    CoreParams small_cache = gcXeonParams();
    small_cache.l1dKb = 32;
    EXPECT_GE(ipcOf(base, "matmult-int"),
              ipcOf(small_cache, "matmult-int"));
}

TEST(CoreModel, CpiStackAccountsForAllCycles)
{
    CoreModel model(largeBoomParams());
    for (const auto &name : {"nettle-aes", "nbody", "huffbench"}) {
        auto r = model.run(embenchProfile(name));
        // The attributed cycles must equal total commit time (every
        // commit gap is attributed exactly once).
        EXPECT_NEAR(double(r.cpiStack.total()), double(r.cycles),
                    double(r.cycles) * 0.01)
            << name;
    }
}

TEST(CoreModel, CpiStackShapesMatchFig8)
{
    // Fig. 8 / §V-B: "with nettle-aes we see that the instructions
    // in the core spend most of its cycles committing while for
    // nbody the instructions stall due to pipeline hazards."
    CoreModel large(largeBoomParams());
    auto aes = large.run(embenchProfile("nettle-aes"));
    auto nbody = large.run(embenchProfile("nbody"));

    double aes_base =
        double(aes.cpiStack.get(cpi::base)) / aes.cycles;
    double aes_ex =
        double(aes.cpiStack.get(cpi::execute)) / aes.cycles;
    EXPECT_GT(aes_base, 0.30); // committing dominates
    EXPECT_GT(aes_base, aes_ex);

    double nb_base =
        double(nbody.cpiStack.get(cpi::base)) / nbody.cycles;
    double nb_ex =
        double(nbody.cpiStack.get(cpi::execute)) / nbody.cycles;
    EXPECT_GT(nb_ex, 0.50); // execution hazards dominate
    EXPECT_GT(nb_ex, nb_base);
    EXPECT_GT(aes_base, nb_base);
}

TEST(CoreModel, RuntimeScalesWithFrequency)
{
    auto r = CoreModel(largeBoomParams())
                 .run(embenchProfile("crc32"));
    EXPECT_NEAR(r.runtimeSeconds(3.4) * 2.0, r.runtimeSeconds(1.7),
                1e-12);
}
