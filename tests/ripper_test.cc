/**
 * @file
 * Tests for FireRipper: module extraction/removal, boundary port
 * punching, feedthrough shortcutting, exact-mode channelization and
 * chain checking, fast-mode ready-valid transforms, and NoC module
 * selection.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "base/logging.hh"
#include "firrtl/builder.hh"
#include "firrtl/printer.hh"
#include "passes/flatten.hh"
#include "ripper/boundary.hh"
#include "ripper/partition.hh"
#include "rtlsim/simulator.hh"
#include "target/bus_soc.hh"
#include "target/paper_examples.hh"

using namespace fireaxe;
using namespace fireaxe::firrtl;
using namespace fireaxe::ripper;

namespace {

PartitionSpec
fig2Spec(PartitionMode mode)
{
    PartitionSpec spec;
    spec.mode = mode;
    spec.groups.push_back({"blockB", {"blockB"}, 1});
    return spec;
}

} // namespace

TEST(Ripper, Fig2ExactProducesTwoPartitions)
{
    auto plan = partition(target::buildFig2Target(),
                          fig2Spec(PartitionMode::Exact));
    ASSERT_EQ(plan.partitions.size(), 2u);
    EXPECT_EQ(plan.partitionNames[0], "rest");
    EXPECT_EQ(plan.partitionNames[1], "blockB");

    // The extracted partition holds exactly the blockB instance.
    const Module &p1 = plan.partitions[1].top();
    ASSERT_EQ(p1.instances.size(), 1u);
    EXPECT_EQ(p1.instances[0].name, "blockB");
    EXPECT_EQ(p1.instances[0].moduleName, "Fig2Block");

    // The rest partition has no extracted instances and keeps the
    // external observation ports.
    const Module &p0 = plan.partitions[0].top();
    EXPECT_TRUE(p0.instances.empty());
    EXPECT_NE(p0.findPort("obs_a"), nullptr);
    EXPECT_NE(p0.findPort("obs_b"), nullptr);
}

TEST(Ripper, Fig2ExactChannelization)
{
    auto plan = partition(target::buildFig2Target(),
                          fig2Spec(PartitionMode::Exact));
    // Exact mode separates source and sink channels per direction:
    // blockB's src_out/snk_out cross to rest, and rest's inlined
    // blockA produces a source and a sink output toward blockB.
    ASSERT_EQ(plan.channels.size(), 4u);
    unsigned sink_channels = 0;
    for (const auto &ch : plan.channels)
        sink_channels += ch.sinkClass ? 1 : 0;
    EXPECT_EQ(sink_channels, 2u);
    EXPECT_EQ(plan.feedback.linkCrossingsPerCycle, 2u);

    // Each direction moves 16 bits of source and 16 bits of sink.
    for (const auto &ch : plan.channels)
        EXPECT_EQ(ch.widthBits, 16u);
}

TEST(Ripper, Fig2FastSingleChannelPerDirection)
{
    auto plan = partition(target::buildFig2Target(),
                          fig2Spec(PartitionMode::Fast));
    ASSERT_EQ(plan.channels.size(), 2u);
    for (const auto &ch : plan.channels)
        EXPECT_EQ(ch.widthBits, 32u);
    EXPECT_EQ(plan.feedback.linkCrossingsPerCycle, 1u);
}

TEST(Ripper, PartitionsAreStructurallyValid)
{
    auto plan = partition(target::buildFig2Target(),
                          fig2Spec(PartitionMode::Exact));
    for (const auto &pc : plan.partitions)
        EXPECT_NO_THROW(verifyCircuit(pc));
}

TEST(Ripper, ChainViolationRejectedWithDiagnostic)
{
    PartitionSpec spec;
    spec.mode = PartitionMode::Exact;
    spec.groups.push_back({"blk", {"blk"}, 1});
    try {
        partition(target::buildChainViolationTarget(), spec);
        FAIL() << "expected FatalError";
    } catch (const FatalError &err) {
        std::string msg = err.what();
        EXPECT_NE(msg.find("chain"), std::string::npos) << msg;
    }
}

TEST(Ripper, ChainViolationAcceptedInFastMode)
{
    PartitionSpec spec;
    spec.mode = PartitionMode::Fast;
    spec.groups.push_back({"blk", {"blk"}, 1});
    EXPECT_NO_THROW(
        partition(target::buildChainViolationTarget(), spec));
}

TEST(Ripper, UnknownInstancePathRejected)
{
    PartitionSpec spec;
    spec.groups.push_back({"g", {"no_such_instance"}, 1});
    EXPECT_THROW(partition(target::buildFig2Target(), spec),
                 FatalError);
}

TEST(Ripper, EmptySpecRejected)
{
    EXPECT_THROW(partition(target::buildFig2Target(), {}),
                 FatalError);
    PartitionSpec spec;
    spec.groups.push_back({"g", {}, 1});
    EXPECT_THROW(partition(target::buildFig2Target(), spec),
                 FatalError);
}

TEST(Ripper, DuplicateSelectionRejected)
{
    PartitionSpec spec;
    spec.groups.push_back({"g1", {"blockA"}, 1});
    spec.groups.push_back({"g2", {"blockA"}, 1});
    EXPECT_THROW(partition(target::buildFig2Target(), spec),
                 FatalError);
}

TEST(Ripper, BusSocTileExtraction)
{
    target::BusSocConfig cfg;
    cfg.numTiles = 4;
    auto soc = target::buildBusSoc(cfg);

    PartitionSpec spec;
    spec.mode = PartitionMode::Exact;
    spec.groups.push_back(
        {"tiles", {"tile0", "tile1"}, 1});
    auto plan = partition(soc, spec);

    const Module &tiles = plan.partitions[1].top();
    EXPECT_EQ(tiles.instances.size(), 2u);
    // Tile seeds are literal-driven, so the seed connects moved into
    // the partition (no boundary nets for them).
    for (const auto &net : plan.nets)
        EXPECT_EQ(net.flatSignal.find("seed"), std::string::npos);

    // Interface width grows with the number of extracted tiles:
    // req (1+16+32+1) + resp (1+32) + ready/valid handshakes.
    auto plan1 = partition(
        soc, {PartitionMode::Exact, {{"one", {"tile0"}, 1}}});
    EXPECT_GT(plan.feedback.interfaceWidths[1],
              plan1.feedback.interfaceWidths[1]);
}

TEST(Ripper, BusSocExactSinkChannelCarriesArbiterReady)
{
    target::BusSocConfig cfg;
    cfg.numTiles = 2;
    auto soc = target::buildBusSoc(cfg);
    auto plan = partition(
        soc, {PartitionMode::Exact, {{"t0", {"tile0"}, 1}}});

    // rest -> tile0 must include a sink channel: req_ready is a
    // combinational function of the tiles' req_valids.
    bool found_sink_from_rest = false;
    for (const auto &ch : plan.channels) {
        if (ch.srcPart == 0 && ch.dstPart == 1 && ch.sinkClass)
            found_sink_from_rest = true;
    }
    EXPECT_TRUE(found_sink_from_rest);
    // The tile itself is fully decoupled: tile -> rest is all-source.
    for (const auto &ch : plan.channels) {
        if (ch.srcPart == 1) {
            EXPECT_FALSE(ch.sinkClass) << ch.name;
        }
    }
}

TEST(Ripper, FastModeInsertsSkidBufferOnSinkSide)
{
    auto plan = partition(
        target::buildFig3Target(),
        {PartitionMode::Fast, {{"consumer", {"consumer"}, 1}}});

    // The consumer partition should now contain a generated skid
    // buffer instance in front of its ready-valid input.
    const Circuit &pc = plan.partitions[1];
    bool has_skid = false;
    for (const auto &inst : pc.top().instances)
        if (inst.moduleName.rfind("SkidBuffer2", 0) == 0)
            has_skid = true;
    EXPECT_TRUE(has_skid);
    const Module *skid_mod = nullptr;
    for (const auto &[name, mod] : pc.modules)
        if (name.rfind("SkidBuffer2", 0) == 0)
            skid_mod = &mod;
    ASSERT_NE(skid_mod, nullptr);
    EXPECT_TRUE(skid_mod->hasAttr("fireRipperGenerated"));
}

TEST(Ripper, FastModeGatesSourceValidWithReady)
{
    auto plan = partition(
        target::buildFig3Target(),
        {PartitionMode::Fast, {{"consumer", {"consumer"}, 1}}});

    // In the rest partition (producer side), the boundary valid is
    // driven through an AND with the delayed ready.
    const Module &rest = plan.partitions[0].top();
    bool gated = false;
    for (const auto &net : plan.nets) {
        if (net.srcPart != 0 ||
            net.flatSignal.find("valid") == std::string::npos)
            continue;
        for (const auto &c : rest.connects) {
            if (c.lhs == net.srcPort &&
                c.rhs->kind == ExprKind::BinOp &&
                c.rhs->binOp == BinOpKind::And) {
                gated = true;
            }
        }
    }
    EXPECT_TRUE(gated);
}

TEST(Ripper, SkidBufferModuleBehaves)
{
    // Unit-check the generated skid buffer with the RTL interpreter.
    Circuit c;
    c.topName = addSkidBufferModule(c, {16});
    rtlsim::Simulator sim(passes::flattenAll(c));

    auto push = [&](uint64_t v) {
        sim.poke("enq_valid", 1);
        sim.poke("enq_bits0", v);
        sim.evalComb();
        bool advertised = sim.peek("enq_ready");
        sim.step();
        sim.poke("enq_valid", 0);
        return advertised;
    };
    sim.poke("deq_ready", 0);
    // Ready is advertised conservatively: it drops once 2 of the 4
    // slots fill (covering the 2-cycle-stale ready of fast-mode)...
    EXPECT_TRUE(push(11));
    EXPECT_TRUE(push(22));
    sim.evalComb();
    EXPECT_EQ(sim.peek("enq_ready"), 0u);
    // ...but in-flight arrivals are still absorbed up to capacity.
    EXPECT_FALSE(push(33));
    EXPECT_FALSE(push(44));
    sim.evalComb();
    EXPECT_EQ(sim.peek("deq_valid"), 1u);
    EXPECT_EQ(sim.peek("deq_bits0"), 11u);

    // Drain in FIFO order.
    sim.poke("deq_ready", 1);
    for (uint64_t expect : {11, 22, 33, 44}) {
        sim.evalComb();
        EXPECT_EQ(sim.peek("deq_valid"), 1u);
        EXPECT_EQ(sim.peek("deq_bits0"), expect);
        sim.step();
    }
    sim.evalComb();
    EXPECT_EQ(sim.peek("deq_valid"), 0u); // drained
}

TEST(Ripper, DescribePlanMentionsPartitionsAndChannels)
{
    auto plan = partition(target::buildFig2Target(),
                          fig2Spec(PartitionMode::Exact));
    std::string report = describePlan(plan);
    EXPECT_NE(report.find("exact-mode"), std::string::npos);
    EXPECT_NE(report.find("blockB"), std::string::npos);
    EXPECT_NE(report.find("link crossings per target cycle: 2"),
              std::string::npos);
}

TEST(Ripper, FeedbackReportsResourcesPerPartition)
{
    target::BusSocConfig cfg;
    cfg.numTiles = 4;
    auto plan = partition(
        target::buildBusSoc(cfg),
        {PartitionMode::Exact,
         {{"tiles", {"tile0", "tile1", "tile2"}, 1}}});
    // Three tiles' worth of registers on partition 1.
    EXPECT_GT(plan.feedback.resources[1].flipFlops, 300u);
    // The rest keeps the L2 BRAM.
    EXPECT_GT(plan.feedback.resources[0].brams, 0u);
}
