/**
 * @file
 * Tests for the analysis passes: combinational dependency summaries
 * (the core of FireRipper's sink/source port classification),
 * hierarchy flattening / selective inlining, and resource estimation.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "firrtl/builder.hh"
#include "passes/combdep.hh"
#include "passes/flatten.hh"
#include "passes/resources.hh"
#include "rtlsim/simulator.hh"

using namespace fireaxe;
using namespace fireaxe::firrtl;
using fireaxe::passes::CombDepAnalysis;

namespace {

/** Module with one comb path (a->x) and one registered path (b->y). */
Circuit
buildMixedDepCircuit()
{
    CircuitBuilder cb("M");
    auto m = cb.module("M");
    auto a = m.input("a", 8);
    auto b = m.input("b", 8);
    m.output("x", 8);
    m.output("y", 8);
    auto r = m.reg("r", 8);
    m.connect("x", eXor(a, lit(0xff, 8)));
    m.connect("r", b);
    m.connect("y", r);
    return cb.finish();
}

} // namespace

TEST(CombDep, DirectCombPathDetected)
{
    Circuit c = buildMixedDepCircuit();
    CombDepAnalysis analysis(c);
    const auto &deps = analysis.forModule("M");
    ASSERT_TRUE(deps.deps.count("x"));
    EXPECT_EQ(deps.deps.at("x"), std::set<std::string>{"a"});
    EXPECT_TRUE(deps.isSinkOutput("x"));
}

TEST(CombDep, RegisterBreaksDependency)
{
    Circuit c = buildMixedDepCircuit();
    CombDepAnalysis analysis(c);
    const auto &deps = analysis.forModule("M");
    EXPECT_TRUE(deps.deps.at("y").empty());
    EXPECT_FALSE(deps.isSinkOutput("y"));
}

TEST(CombDep, PropagatesThroughWireChain)
{
    CircuitBuilder cb("M");
    auto m = cb.module("M");
    auto a = m.input("a", 4);
    m.output("o", 4);
    auto w1 = m.wire("w1", 4);
    auto w2 = m.wire("w2", 4);
    m.connect(w1, eAdd(a, lit(1, 4)));
    m.connect(w2, eNot(w1));
    m.connect("o", w2);
    Circuit c = cb.finish();
    CombDepAnalysis analysis(c);
    EXPECT_EQ(analysis.forModule("M").deps.at("o"),
              std::set<std::string>{"a"});
}

TEST(CombDep, PropagatesThroughInstanceSummary)
{
    CircuitBuilder cb("Top");
    auto inner = cb.module("Inner");
    auto ia = inner.input("ia", 4);
    inner.output("io", 4);
    inner.connect("io", eNot(ia));

    auto top = cb.module("Top");
    auto a = top.input("a", 4);
    top.output("o", 4);
    top.instance("u", "Inner");
    top.connect("u.ia", a);
    top.connect("o", top.sig("u.io"));
    Circuit c = cb.finish();

    CombDepAnalysis analysis(c);
    EXPECT_EQ(analysis.forModule("Top").deps.at("o"),
              std::set<std::string>{"a"});
}

TEST(CombDep, SequentialInstanceBreaksDependency)
{
    CircuitBuilder cb("Top");
    auto inner = cb.module("Inner");
    auto ia = inner.input("ia", 4);
    inner.output("io", 4);
    auto r = inner.reg("r", 4);
    inner.connect("r", ia);
    inner.connect("io", r);

    auto top = cb.module("Top");
    auto a = top.input("a", 4);
    top.output("o", 4);
    top.instance("u", "Inner");
    top.connect("u.ia", a);
    top.connect("o", top.sig("u.io"));
    Circuit c = cb.finish();

    CombDepAnalysis analysis(c);
    EXPECT_TRUE(analysis.forModule("Top").deps.at("o").empty());
}

TEST(CombDep, MemoryReadIsCombinational)
{
    CircuitBuilder cb("M");
    auto m = cb.module("M");
    auto addr = m.input("addr", 4);
    m.output("data", 8);
    m.mem("ram", 16, 8);
    m.connect("ram.raddr", addr);
    m.connect("data", m.sig("ram.rdata"));
    Circuit c = cb.finish();
    CombDepAnalysis analysis(c);
    EXPECT_EQ(analysis.forModule("M").deps.at("data"),
              std::set<std::string>{"addr"});
}

TEST(CombDep, MemoryWriteIsSequential)
{
    CircuitBuilder cb("M");
    auto m = cb.module("M");
    auto a = m.input("a", 8);
    m.output("o", 8);
    m.mem("ram", 16, 8);
    m.connect("ram.raddr", lit(0, 4));
    m.connect("ram.waddr", lit(0, 4));
    m.connect("ram.wdata", a);
    m.connect("ram.wen", lit(1, 1));
    m.connect("o", m.sig("ram.rdata"));
    Circuit c = cb.finish();
    CombDepAnalysis analysis(c);
    EXPECT_TRUE(analysis.forModule("M").deps.at("o").empty());
}

TEST(CombDep, DetectsCombinationalLoop)
{
    CircuitBuilder cb("M");
    auto m = cb.module("M");
    m.output("o", 4);
    auto w1 = m.wire("w1", 4);
    auto w2 = m.wire("w2", 4);
    m.connect(w1, eNot(w2));
    m.connect(w2, eNot(w1));
    m.connect("o", w1);
    Circuit c = cb.finish();
    EXPECT_THROW(CombDepAnalysis analysis(c), FatalError);
}

TEST(CombDep, CombPathDiagnostic)
{
    CircuitBuilder cb("M");
    auto m = cb.module("M");
    auto a = m.input("a", 4);
    m.output("o", 4);
    auto w = m.wire("w", 4);
    m.connect(w, eAdd(a, lit(1, 4)));
    m.connect("o", w);
    Circuit c = cb.finish();
    CombDepAnalysis analysis(c);
    auto path = analysis.combPath("M", "a", "o");
    ASSERT_EQ(path.size(), 3u);
    EXPECT_EQ(path[0], "a");
    EXPECT_EQ(path[1], "w");
    EXPECT_EQ(path[2], "o");
}

TEST(CombDep, NoPathReturnsEmpty)
{
    Circuit c = buildMixedDepCircuit();
    CombDepAnalysis analysis(c);
    EXPECT_TRUE(analysis.combPath("M", "b", "y").empty());
}

namespace {

Circuit
buildTwoLevelCircuit()
{
    CircuitBuilder cb("Top");
    auto leaf = cb.module("Leaf");
    auto li = leaf.input("i", 8);
    leaf.output("o", 8);
    auto lr = leaf.reg("acc", 8);
    leaf.connect("acc", eAdd(lr, li));
    leaf.connect("o", lr);

    auto mid = cb.module("Mid");
    auto mi = mid.input("i", 8);
    mid.output("o", 8);
    mid.instance("l0", "Leaf");
    mid.connect("l0.i", mi);
    mid.connect("o", mid.sig("l0.o"));

    auto top = cb.module("Top");
    auto ti = top.input("i", 8);
    top.output("o", 8);
    top.instance("m0", "Mid");
    top.connect("m0.i", ti);
    top.connect("o", top.sig("m0.o"));
    return cb.finish();
}

} // namespace

TEST(Flatten, FullFlattenRemovesInstances)
{
    Circuit c = buildTwoLevelCircuit();
    Circuit flat = passes::flattenAll(c);
    const Module &top = flat.top();
    EXPECT_TRUE(top.instances.empty());
    // The leaf register exists under its hierarchical name.
    EXPECT_NE(top.findReg("m0/l0/acc"), nullptr);
    // Boundary ports became wires.
    EXPECT_NE(top.findWire("m0/i"), nullptr);
    EXPECT_NE(top.findWire("m0/l0/o"), nullptr);
    // Verify the flat circuit is structurally sound.
    EXPECT_NO_THROW(verifyCircuit(flat));
}

TEST(Flatten, FlatDesignSimulatesLikeOriginalWouldBehave)
{
    Circuit c = buildTwoLevelCircuit();
    Circuit flat = passes::flattenAll(c);
    rtlsim::Simulator sim(flat);
    sim.poke("i", 5);
    sim.evalComb();
    sim.step(); // acc becomes 5
    sim.step(); // acc becomes 10
    EXPECT_EQ(sim.peek("o"), 10u);
}

TEST(Flatten, KeepPredicatePreservesSelectedInstance)
{
    Circuit c = buildTwoLevelCircuit();
    Circuit part = passes::flattenExcept(c, {"m0/l0"});
    const Module &top = part.top();
    ASSERT_EQ(top.instances.size(), 1u);
    EXPECT_EQ(top.instances[0].name, "m0/l0");
    EXPECT_EQ(top.instances[0].moduleName, "Leaf");
    // Kept module definition copied over.
    EXPECT_NE(part.findModule("Leaf"), nullptr);
    EXPECT_NO_THROW(verifyCircuit(part));
}

TEST(Flatten, KeptInstanceReparentedToTop)
{
    // The essence of FireRipper's Reparent step (Fig. 5a): after
    // selective inlining, the kept instance sits directly under the
    // top module regardless of its original depth, with connectivity
    // routed through mangled wires.
    Circuit c = buildTwoLevelCircuit();
    Circuit part = passes::flattenExcept(c, {"m0/l0"});
    const Module &top = part.top();
    bool found_input_conn = false;
    for (const auto &conn : top.connects) {
        if (conn.lhs == "m0/l0.i")
            found_input_conn = true;
    }
    EXPECT_TRUE(found_input_conn);
}

TEST(Resources, CountsFlipFlopsExactly)
{
    CircuitBuilder cb("M");
    auto m = cb.module("M");
    m.output("o", 8);
    m.reg("r1", 8);
    m.reg("r2", 24);
    m.connect("o", m.sig("r1"));
    Circuit c = cb.finish();
    auto est = passes::estimateResources(c);
    EXPECT_EQ(est.flipFlops, 32u);
}

TEST(Resources, ChargesBramForMemories)
{
    CircuitBuilder cb("M");
    auto m = cb.module("M");
    m.output("o", 32);
    m.mem("big", 4096, 32); // 128 kbit = 4 BRAM tiles
    m.connect("big.raddr", lit(0, 12));
    m.connect("o", m.sig("big.rdata"));
    Circuit c = cb.finish();
    auto est = passes::estimateResources(c);
    EXPECT_GE(est.brams, 3u);
    EXPECT_LE(est.brams, 5u);
}

TEST(Resources, MultipliesByInstanceCount)
{
    CircuitBuilder cb("Top");
    auto leaf = cb.module("Leaf");
    leaf.output("o", 16);
    leaf.reg("r", 16);
    leaf.connect("o", leaf.sig("r"));

    auto top = cb.module("Top");
    top.output("o", 16);
    top.instance("a", "Leaf");
    top.instance("b", "Leaf");
    top.instance("c", "Leaf");
    top.connect("o", eXor(eXor(top.sig("a.o"), top.sig("b.o")),
                          top.sig("c.o")));
    Circuit c = cb.finish();
    auto est = passes::estimateResources(c);
    EXPECT_EQ(est.flipFlops, 48u);
}

TEST(Resources, AdderCostsScaleWithWidth)
{
    auto mk = [](unsigned width) {
        CircuitBuilder cb("M");
        auto m = cb.module("M");
        auto a = m.input("a", width);
        auto b = m.input("b", width);
        m.output("o", width);
        m.connect("o", eAdd(a, b));
        return cb.finish();
    };
    auto small = passes::estimateResources(mk(8));
    auto large = passes::estimateResources(mk(32));
    EXPECT_GT(large.luts, small.luts);
}
