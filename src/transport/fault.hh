/**
 * @file
 * Inter-FPGA link fault injection.
 *
 * Real FireAxe deployments ride on physical transports that fail in
 * practice: QSFP cables drop or corrupt Aurora frames under marginal
 * signal integrity, PCIe links replay TLPs, and host-managed DMA
 * stalls when the driver is descheduled. The FaultModel injects these
 * failure modes into the modeled token stream so that the reliable
 * delivery layer (libdn::ReliableTokenChannel) and the executor's
 * deadlock watchdog can be exercised deterministically:
 *
 *  - token drop         — the token never arrives (lost frame);
 *  - payload corruption — a bit of the token flips in flight,
 *                         caught by the payload CRC at the consumer;
 *  - duplication        — the token is delivered twice (link-layer
 *                         replay), discarded by sequence number;
 *  - transient stall    — the link stops moving tokens for a while
 *                         (retraining, driver hiccup) without losing
 *                         anything.
 *
 * Every channel draws from its own PRNG stream, seeded from the
 * global seed and the channel name, so a fault schedule is fully
 * reproducible and independent of event interleaving across
 * channels.
 */

#ifndef FIREAXE_TRANSPORT_FAULT_HH
#define FIREAXE_TRANSPORT_FAULT_HH

#include <cstdint>
#include <string>

#include "base/random.hh"

namespace fireaxe::transport {

/** Per-token fault probabilities and recovery parameters. */
struct FaultConfig
{
    uint64_t seed = 0xF1A57ULL;

    /** P(token lost in flight). */
    double dropRate = 0.0;
    /** P(one payload bit flipped in flight). */
    double corruptRate = 0.0;
    /** P(token delivered a second time). */
    double duplicateRate = 0.0;
    /** P(transient link stall starting at this token's departure). */
    double stallRate = 0.0;
    /** Mean duration of a transient stall (ns, geometric-ish). */
    double stallMeanNs = 20000.0;

    /** Retransmission attempts per token before the link is declared
     *  failed and the executor fails it over to host-managed PCIe. */
    unsigned maxRetries = 8;

    /** Uniform per-token fault rate convenience: splits @p rate
     *  evenly over drop/corrupt/duplicate and leaves stalls off. */
    static FaultConfig
    uniform(double rate, uint64_t seed = 0xF1A57ULL)
    {
        FaultConfig cfg;
        cfg.seed = seed;
        cfg.dropRate = rate / 3.0;
        cfg.corruptRate = rate / 3.0;
        cfg.duplicateRate = rate / 3.0;
        return cfg;
    }
};

/** The outcome of one transmission attempt of one token. */
struct FaultEvent
{
    bool drop = false;
    bool corrupt = false;
    /** Flat bit index into the token payload to flip. */
    unsigned corruptBit = 0;
    bool duplicate = false;
    /** Extra link stall charged to this token's departure (ns). */
    double stallNs = 0.0;

    bool
    damagesToken() const
    {
        return drop || corrupt;
    }
};

/**
 * Deterministic fault-schedule generator shared by all channels of
 * one simulation.
 */
class FaultModel
{
  public:
    FaultModel() = default;
    explicit FaultModel(const FaultConfig &cfg) : cfg_(cfg) {}

    const FaultConfig &config() const { return cfg_; }

    /** Any fault mode enabled? */
    bool
    enabled() const
    {
        return cfg_.dropRate > 0.0 || cfg_.corruptRate > 0.0 ||
               cfg_.duplicateRate > 0.0 || cfg_.stallRate > 0.0;
    }

    /** Independent deterministic PRNG stream for one channel. */
    Rng channelRng(const std::string &channel_name) const;

    /**
     * Independent deterministic PRNG substream for one side/role of
     * one channel (e.g. "tx" vs "rx"). When the producing and
     * consuming partitions of a channel run on different worker
     * threads, each side must own its own stream: a shared stream
     * would make the draw order — and hence the entire fault
     * schedule — depend on thread interleaving. Substreams are
     * derived from (seed, channel, stream) only, so a given side
     * sees the same schedule at any worker count, including the
     * sequential executor.
     */
    Rng channelRng(const std::string &channel_name,
                   const std::string &stream) const;

    /**
     * Draw the fault outcome of one transmission attempt of a token
     * of @p payload_bits from the channel's stream.
     */
    FaultEvent draw(Rng &rng, unsigned payload_bits) const;

  private:
    FaultConfig cfg_;
};

} // namespace fireaxe::transport

#endif // FIREAXE_TRANSPORT_FAULT_HH
