/**
 * @file
 * FPGA-to-FPGA transport models (Section IV of the paper).
 *
 * FireAxe moves LI-BDN tokens between FPGAs over one of three
 * transports, which differ in flight latency, serialization
 * bandwidth, and per-token software overhead:
 *
 *  - QSFP direct-attach cables + Aurora IP (on-premises, §IV-C):
 *    ultra-low latency, highest achievable target frequency
 *    (~1.6 MHz in the paper).
 *  - Peer-to-peer PCIe between FPGAs on one AWS F1 instance
 *    (§IV-B): no host involvement, ~1 MHz, overall ~1.5x slower
 *    than QSFP.
 *  - Host-managed PCIe DMA through the drivers and shared memory
 *    (§IV-A): works anywhere but software overhead caps the rate at
 *    ~26.4 kHz.
 *
 * A token of W bits occupies the link for
 * `perTokenOverheadNs + W / bitsPerNs` and becomes visible at the
 * consumer `latencyNs` after departure. The constants below are
 * calibrated so that the partitioned-simulation benchmarks land in
 * the paper's reported rate ranges (see EXPERIMENTS.md); the *shape*
 * of every sweep comes from the executed token mechanics, not from
 * these constants.
 */

#ifndef FIREAXE_TRANSPORT_LINK_HH
#define FIREAXE_TRANSPORT_LINK_HH

#include <string>

namespace fireaxe::transport {

/** Timing parameters of one inter-FPGA transport. */
struct LinkParams
{
    std::string name;
    /** One-way flight latency from departure to visibility (ns). */
    double latencyNs;
    /** Serialization bandwidth (bits per ns). */
    double bitsPerNs;
    /** Fixed per-token occupancy (framing, DMA setup, driver; ns). */
    double perTokenOverheadNs;
};

/** QSFP direct-attach cable with Aurora 64b/66b IP (on-premises). */
LinkParams qsfpAurora();

/** Peer-to-peer PCIe between FPGAs of one AWS EC2 F1 instance. */
LinkParams pciePeerToPeer();

/** Host-managed PCIe DMA through the C++ simulation drivers and a
 *  shared-memory region. */
LinkParams hostManagedPcie();

/**
 * Switched Ethernet between FPGA NICs (the Section VIII-C
 * future-work transport): routes tokens between *any* pair of FPGAs
 * through a central switch, lifting the ring/tree topology limit of
 * the two QSFP cages — at the price of switch-hop latency and
 * packetization overhead.
 */
LinkParams ethernetSwitch();

/** Serialization occupancy of one token of @p bits on the link. */
double tokenSerNs(const LinkParams &link, unsigned bits);

/** Flight latency of the link. */
double tokenLatencyNs(const LinkParams &link);

/**
 * Payload-only serialization of @p bits (no per-token framing).
 * Depth-N batching pays the fixed per-token overhead once per frame:
 * a frame of N tokens occupies the link for
 * `frameOverheadNs + N * payloadSerNs`, which degenerates to
 * tokenSerNs exactly at N = 1.
 */
double payloadSerNs(const LinkParams &link, unsigned bits);

/** Fixed per-frame occupancy (framing, DMA setup, driver; ns). */
double frameOverheadNs(const LinkParams &link);

} // namespace fireaxe::transport

#endif // FIREAXE_TRANSPORT_LINK_HH
