#include "transport/link.hh"

#include "base/logging.hh"

namespace fireaxe::transport {

LinkParams
qsfpAurora()
{
    // Aurora 64b/66b over a passive QSFP DAC: sub-microsecond
    // round-trips; 4 lanes x ~10 Gbps of payload bandwidth.
    return {"qsfp-aurora", 540.0, 5.0, 30.0};
}

LinkParams
pciePeerToPeer()
{
    // Posted PCIe writes FPGA-to-FPGA: roughly one PCIe round more
    // latency than Aurora and TLP framing overhead per token.
    return {"pcie-p2p", 820.0, 16.0, 120.0};
}

LinkParams
hostManagedPcie()
{
    // Token path: FPGA -> host DMA -> driver -> shared memory ->
    // peer driver -> host DMA -> FPGA. Driver software dominates.
    return {"host-pcie", 900.0, 8.0, 18000.0};
}

LinkParams
ethernetSwitch()
{
    // 100G Ethernet NIC + store-and-forward switch hop: arbitrary
    // topology, but an extra ~1.3 us of MAC + switch latency and
    // per-frame overhead.
    return {"ethernet-switch", 1300.0, 12.5, 220.0};
}

double
tokenSerNs(const LinkParams &link, unsigned bits)
{
    FIREAXE_ASSERT(link.bitsPerNs > 0.0);
    return link.perTokenOverheadNs + double(bits) / link.bitsPerNs;
}

double
tokenLatencyNs(const LinkParams &link)
{
    return link.latencyNs;
}

double
payloadSerNs(const LinkParams &link, unsigned bits)
{
    FIREAXE_ASSERT(link.bitsPerNs > 0.0);
    return double(bits) / link.bitsPerNs;
}

double
frameOverheadNs(const LinkParams &link)
{
    return link.perTokenOverheadNs;
}

} // namespace fireaxe::transport
