#include "transport/fault.hh"

namespace fireaxe::transport {

namespace {

/** FNV-1a over the channel name, so each channel gets a stable,
 *  order-independent stream. */
uint64_t
fnv1a(const std::string &s)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace

Rng
FaultModel::channelRng(const std::string &channel_name) const
{
    return Rng(cfg_.seed ^ fnv1a(channel_name));
}

Rng
FaultModel::channelRng(const std::string &channel_name,
                       const std::string &stream) const
{
    // Chain the hashes instead of hashing the concatenation so that
    // ("ab","c") and ("a","bc") land on different streams.
    uint64_t h = fnv1a(channel_name);
    h = h * 0x100000001b3ULL ^ fnv1a(stream);
    return Rng(cfg_.seed ^ h);
}

FaultEvent
FaultModel::draw(Rng &rng, unsigned payload_bits) const
{
    FaultEvent ev;
    if (!enabled())
        return ev;

    // One uniform draw per fault mode keeps the stream layout stable
    // when individual rates change.
    ev.drop = rng.chance(cfg_.dropRate);
    bool corrupt = rng.chance(cfg_.corruptRate);
    ev.duplicate = rng.chance(cfg_.duplicateRate);
    bool stall = rng.chance(cfg_.stallRate);

    // A dropped token cannot also be corrupted or duplicated.
    if (!ev.drop && corrupt && payload_bits > 0) {
        ev.corrupt = true;
        ev.corruptBit = unsigned(rng.below(payload_bits));
    }
    if (ev.drop)
        ev.duplicate = false;
    if (stall && cfg_.stallMeanNs > 0.0) {
        // Geometric-ish duration with the configured mean, quantized
        // to 100 ns slots so short stalls stay cheap to draw.
        double slots = double(rng.geometric(cfg_.stallMeanNs / 100.0));
        ev.stallNs = slots * 100.0;
    }
    return ev;
}

} // namespace fireaxe::transport
