#include "obs/probe.hh"

#include "obs/tokentrace.hh"

namespace fireaxe::obs {

namespace {

/** Fault injections vs recovery machinery: categorize for the trace
 *  so Perfetto can filter them independently. */
const char *
eventCategory(const std::string &kind)
{
    if (kind == "drop" || kind == "corrupt" || kind == "duplicate" ||
        kind == "stall") {
        return "fault";
    }
    return "reliability";
}

} // namespace

ChannelProbe::ChannelProbe(std::string channel_name, int src_part,
                           int dst_part, MetricsRegistry *registry,
                           Tracer *tracer)
    : name_(std::move(channel_name)), srcPart_(src_part),
      dstPart_(dst_part), registry_(registry), tracer_(tracer)
{
    if (registry_) {
        const std::string base = "chan." + name_ + ".";
        enqueued_ = &registry_->counter(base + "tokens_enqueued");
        retired_ = &registry_->counter(base + "tokens_retired");
        latencyNs_ = &registry_->histogram(base + "token_latency_ns");
        occupancy_ = &registry_->histogram(base + "occupancy");
    }
}

void
ChannelProbe::onEnqueue(double now, size_t occupancy)
{
    (void)now;
    add(enqueued_);
    observe(occupancy_, double(occupancy));
}

void
ChannelProbe::onRetire(double now, double enq_time)
{
    add(retired_);
    observe(latencyNs_, now - enq_time);
}

void
ChannelProbe::onEvent(const char *kind, double now)
{
    if (registry_) {
        Counter *c;
        {
            std::lock_guard<std::mutex> lock(eventMtx_);
            Counter *&slot = eventCounters_[kind];
            if (!slot) {
                slot = &registry_->counter("chan." + name_ +
                                           ".events." + kind);
            }
            c = slot;
        }
        c->add();
    }
    if (tracer_) {
        tracer_->instant(std::string(name_) + ":" + kind,
                         eventCategory(kind), now, srcPart_);
    }
}

void
ChannelProbe::bindTokenTrace(TokenTraceCollector *collector)
{
    tokenTrace_ = collector;
    if (tokenTrace_) {
        tokenChanId_ =
            tokenTrace_->registerChannel(name_, srcPart_, dstPart_);
    }
}

void
ChannelProbe::onTokenEnqueue(uint64_t seq, double produce,
                             double depart, double ready,
                             double flight, double penalty)
{
    if (tokenTrace_) {
        tokenTrace_->onEnqueue(tokenChanId_, seq, produce, depart,
                               ready, flight, penalty);
    }
}

void
ChannelProbe::onTokenNak(uint64_t seq, double now, double delay)
{
    if (tokenTrace_)
        tokenTrace_->onNak(tokenChanId_, seq, now, delay);
}

} // namespace fireaxe::obs
