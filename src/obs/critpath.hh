/**
 * @file
 * Critical-path analysis over causal token records
 * (obs/tokentrace.hh).
 *
 * For each consuming partition, the fired records are grouped into
 * fire windows by target cycle. Walking backward from each window's
 * fire (the last event of the window), the blocking channel is the
 * one whose token became visible last — the fireFSM could not have
 * advanced any earlier than that token's ready time. The window's
 * wall time is then attributed along that token's recorded lifecycle:
 *
 *   upstream-idle  — the producer had not even emitted the token yet
 *                    (upstream compute or its own token waits);
 *   serialization  — between emission and link departure (link
 *                    occupancy and stalls);
 *   retransmit     — timeout- and NAK-driven recovery delays;
 *   link flight    — departure to visibility;
 *   compute slack  — visibility to fire (the consumer's own work).
 *
 * With 1-in-N sampling, consecutive sampled windows are ~N cycles
 * apart; each analyzed window models the last cycle of its gap and is
 * scaled by the gap, so the attributed totals estimate the whole run.
 * At sample_every == 1 the analysis is exact, and the per-channel
 * wait attribution must sum to the partitions' measured wall-clock
 * wait (part.<name>.wait_ns) within a few percent — the acceptance
 * check of the profiler.
 */

#ifndef FIREAXE_OBS_CRITPATH_HH
#define FIREAXE_OBS_CRITPATH_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/tokentrace.hh"

namespace fireaxe::obs {

/** Everything the analyzer needs (assembled from a stream file by
 *  fireaxe-trace, or from a live TokenTraceCollector by tests). */
struct CritPathInput
{
    std::vector<TokenRecord> records;
    std::vector<TokenChannelInfo> channels;
    /** Index = partition id; names missing entries render as "p<id>". */
    std::vector<std::string> partNames;
    /** Measured wall-clock wait per partition (part.<name>.wait_ns),
     *  for the attribution-coverage cross-check. */
    std::map<int, double> measuredWaitNs;
    unsigned sampleEvery = 1;
};

/** Wall time attributed to one channel as the blocking dependency. */
struct ChannelAttribution
{
    int channelId = -1;
    std::string name;
    int srcPart = 0;
    int dstPart = 0;
    /** Fire windows this channel blocked (sampled count). */
    uint64_t blockingFires = 0;
    double waitNs = 0.0;     ///< total attributed wait (scaled)
    double serNs = 0.0;      ///< serialization component
    double flightNs = 0.0;   ///< link-latency component
    double rtxNs = 0.0;      ///< NAK/timeout retransmit component
    double upstreamNs = 0.0; ///< producer idle (upstream) component
    /** Share of the total attributed wait, percent. */
    double waitSharePct = 0.0;
};

/** Wait attribution rolled up per (consuming) partition. */
struct PartitionAttribution
{
    int part = 0;
    std::string name;
    double attributedWaitNs = 0.0;
    double computeSlackNs = 0.0;
    /** Ground truth from telemetry (0 when unavailable). */
    double measuredWaitNs = 0.0;
    /** attributedWaitNs / measuredWaitNs, percent (0 when no
     *  ground truth). */
    double coveragePct = 0.0;
};

/** One analyzed fire window (for trace annotation). */
struct FireWindow
{
    int dstPart = 0;
    uint64_t targetCycle = 0;
    double startNs = 0.0;
    double fireNs = 0.0;
    int critChannelId = -1;
    double waitNs = 0.0; ///< scaled attributed wait of the window
};

struct CritPathReport
{
    /** Sorted by waitNs, descending. */
    std::vector<ChannelAttribution> channels;
    std::vector<PartitionAttribution> partitions;
    std::vector<FireWindow> windows;
    /** Indices into CritPathInput::records of the blocking tokens. */
    std::vector<size_t> criticalRecordIdx;
    unsigned sampleEvery = 1;
    uint64_t recordsAnalyzed = 0;
    uint64_t firesAnalyzed = 0; ///< fire windows attributed
    double totalAttributedWaitNs = 0.0;
    double totalMeasuredWaitNs = 0.0;

    bool
    empty() const
    {
        return firesAnalyzed == 0;
    }

    /** Machine-readable report ("fireaxe.critpath.v1"). */
    void writeJson(std::ostream &os) const;
    /** Human report: partition table + top-N blocking channels with
     *  wait-attribution percentages. */
    void writeText(std::ostream &os, size_t top_n = 10) const;
};

/** Run the backward walk and attribution described above. */
CritPathReport analyzeCriticalPath(const CritPathInput &input);

/**
 * Chrome trace_event JSON of the token records with the critical
 * path highlighted: every record renders as a span on its source
 * partition's track (category "token", or "token.critical" for
 * blocking tokens), and each fire window's wait renders on the
 * consuming partition's track (category "critpath").
 */
void writeAnnotatedChromeTrace(const CritPathInput &input,
                               const CritPathReport &report,
                               std::ostream &os);

} // namespace fireaxe::obs

#endif // FIREAXE_OBS_CRITPATH_HH
