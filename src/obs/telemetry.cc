#include "obs/telemetry.hh"

#include <cstdlib>

namespace fireaxe::obs {

Telemetry::Telemetry(const TelemetryConfig &cfg) : cfg_(cfg)
{
    // FIREAXE_STREAM turns on streaming (and thus causal token
    // tracing) without touching the caller's config — the same
    // opt-in shape as FIREAXE_EVAL for the eval engine.
    if (cfg_.streamPath.empty()) {
        if (const char *env = std::getenv("FIREAXE_STREAM");
            env && *env) {
            cfg_.streamPath = env;
        }
    }
    if (!cfg_.streamPath.empty() || cfg_.streamSink) {
        cfg_.metrics = true;
        cfg_.tokenTrace = true;
    }

    if (cfg_.metrics) {
        registry_ = std::make_unique<MetricsRegistry>(
            cfg_.histogramReservoirCap);
    }
    if (cfg_.tracing)
        tracer_ = std::make_unique<Tracer>(cfg_.traceCapacity);
    if (cfg_.tokenTrace) {
        tokenTrace_ = std::make_unique<TokenTraceCollector>(
            cfg_.tokenSampleEvery, cfg_.tokenTraceCapacity);
    }
}

ChannelProbe *
Telemetry::makeChannelProbe(const std::string &name, int src_part,
                            int dst_part)
{
    probes_.push_back(std::make_unique<ChannelProbe>(
        name, src_part, dst_part, registry_.get(), tracer_.get()));
    if (tokenTrace_)
        probes_.back()->bindTokenTrace(tokenTrace_.get());
    return probes_.back().get();
}

} // namespace fireaxe::obs
