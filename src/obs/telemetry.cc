#include "obs/telemetry.hh"

namespace fireaxe::obs {

Telemetry::Telemetry(const TelemetryConfig &cfg) : cfg_(cfg)
{
    if (cfg_.metrics) {
        registry_ = std::make_unique<MetricsRegistry>(
            cfg_.histogramReservoirCap);
    }
    if (cfg_.tracing)
        tracer_ = std::make_unique<Tracer>(cfg_.traceCapacity);
}

ChannelProbe *
Telemetry::makeChannelProbe(const std::string &name, int src_part,
                            int dst_part)
{
    probes_.push_back(std::make_unique<ChannelProbe>(
        name, src_part, dst_part, registry_.get(), tracer_.get()));
    return probes_.back().get();
}

} // namespace fireaxe::obs
