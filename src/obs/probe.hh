/**
 * @file
 * Per-channel telemetry probe.
 *
 * The LI-BDN channel layer (libdn::TokenChannel and its reliable
 * subclass) knows nothing about metric names or trace categories; it
 * holds one nullable ChannelProbe pointer and reports three things:
 * token enqueued, token retired, and named reliability/fault events.
 * The probe translates those into registry metrics under
 * "chan.<name>.*" and tracer instants on the source partition's
 * track. A null probe (the default) costs the channel a single
 * branch per operation.
 */

#ifndef FIREAXE_OBS_PROBE_HH
#define FIREAXE_OBS_PROBE_HH

#include <map>
#include <mutex>
#include <string>

#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace fireaxe::obs {

class ChannelProbe
{
  public:
    /** Either sink may be null; the probe degrades gracefully to
     *  counting only, tracing only, or nothing. */
    ChannelProbe(std::string channel_name, int src_part,
                 int dst_part, MetricsRegistry *registry,
                 Tracer *tracer);

    const std::string &channelName() const { return name_; }

    /** A token entered the channel at host time @p now;
     *  @p occupancy is the queue depth after the enqueue. */
    void onEnqueue(double now, size_t occupancy);

    /** A token was consumed at host time @p now; it was produced at
     *  @p enq_time, so the enqueue-to-retire latency is the
     *  difference. */
    void onRetire(double now, double enq_time);

    /**
     * A named reliability or fault event ("drop", "corrupt",
     * "duplicate", "stall", "crc_error", "nak", "retransmit_timeout",
     * "retransmit_nak", "duplicate_discarded", "retry_exhausted",
     * "failover"). Counted under chan.<name>.events.<kind> and
     * emitted as a tracer instant.
     */
    void onEvent(const char *kind, double now);

  private:
    std::string name_;
    int srcPart_;
    MetricsRegistry *registry_;
    Tracer *tracer_;

    Counter *enqueued_ = nullptr;
    Counter *retired_ = nullptr;
    Histogram *latencyNs_ = nullptr;
    Histogram *occupancy_ = nullptr;
    /** Lazily resolved per-kind event counters (the kind set is
     *  small and stable, so this map stays tiny). Guarded by a
     *  mutex: both sides of the channel report events, and under the
     *  parallel executor they run on different worker threads. */
    std::mutex eventMtx_;
    std::map<std::string, Counter *> eventCounters_;
};

} // namespace fireaxe::obs

#endif // FIREAXE_OBS_PROBE_HH
