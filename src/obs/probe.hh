/**
 * @file
 * Per-channel telemetry probe.
 *
 * The LI-BDN channel layer (libdn::TokenChannel and its reliable
 * subclass) knows nothing about metric names or trace categories; it
 * holds one nullable ChannelProbe pointer and reports three things:
 * token enqueued, token retired, and named reliability/fault events.
 * The probe translates those into registry metrics under
 * "chan.<name>.*" and tracer instants on the source partition's
 * track. A null probe (the default) costs the channel a single
 * branch per operation.
 */

#ifndef FIREAXE_OBS_PROBE_HH
#define FIREAXE_OBS_PROBE_HH

#include <map>
#include <mutex>
#include <string>

#include "obs/metrics.hh"
#include "obs/tokentrace.hh"
#include "obs/trace.hh"

namespace fireaxe::obs {

class ChannelProbe
{
  public:
    /** Either sink may be null; the probe degrades gracefully to
     *  counting only, tracing only, or nothing. */
    ChannelProbe(std::string channel_name, int src_part,
                 int dst_part, MetricsRegistry *registry,
                 Tracer *tracer);

    const std::string &channelName() const { return name_; }

    /** Does this probe feed token counters/histograms? False without
     *  a metrics registry; callers use this to skip the occupancy /
     *  enqueue-time bookkeeping the metrics hooks would consume, so
     *  a trace-only or token-trace-only probe stays off the enqueue
     *  and retire fast paths. */
    bool countsTokens() const { return registry_ != nullptr; }

    /** A token entered the channel at host time @p now;
     *  @p occupancy is the queue depth after the enqueue. */
    void onEnqueue(double now, size_t occupancy);

    /** A token was consumed at host time @p now; it was produced at
     *  @p enq_time, so the enqueue-to-retire latency is the
     *  difference. */
    void onRetire(double now, double enq_time);

    /**
     * A named reliability or fault event ("drop", "corrupt",
     * "duplicate", "stall", "crc_error", "nak", "retransmit_timeout",
     * "retransmit_nak", "duplicate_discarded", "retry_exhausted",
     * "failover"). Counted under chan.<name>.events.<kind> and
     * emitted as a tracer instant.
     */
    void onEvent(const char *kind, double now);

    /**
     * Attach the channel to a token-trace collector: registers it in
     * the collector's channel table and enables the onToken* hooks.
     * Called once by Telemetry::makeChannelProbe when causal tracing
     * is configured.
     */
    void bindTokenTrace(TokenTraceCollector *collector);

    /** Should the channel bother stamping this sequence number?
     *  False whenever no collector is bound, so the per-token cost
     *  without causal tracing is one branch. Inline: this gate sits
     *  on the enqueue fast path of every probed channel. */
    bool
    tokenSampled(uint64_t seq) const
    {
        return tokenTrace_ && tokenTrace_->sampled(seq);
    }

    /** Producer side: sampled token @p seq entered the channel at
     *  @p produce, leaves the serializer at @p depart, and becomes
     *  visible at the consumer at @p ready ( = depart + @p flight
     *  link latency + @p penalty timeout-retransmit penalty). */
    void onTokenEnqueue(uint64_t seq, double produce, double depart,
                        double ready, double flight, double penalty);

    /** Consumer side: a NAK pushed token @p seq's visibility out to
     *  now + @p delay. */
    void onTokenNak(uint64_t seq, double now, double delay);

    /** Consumer side: the fireFSM retired token @p seq at @p now
     *  while firing @p target_cycle. Gated on tokenSampled
     *  internally, so callers may invoke it unconditionally; the
     *  unsampled fast path is one inlined branch. */
    void
    onTokenRetire(uint64_t seq, double now, uint64_t target_cycle)
    {
        if (tokenSampled(seq))
            tokenTrace_->onRetire(tokenChanId_, seq, now,
                                  target_cycle);
    }

  private:
    std::string name_;
    int srcPart_;
    int dstPart_;
    MetricsRegistry *registry_;
    Tracer *tracer_;
    TokenTraceCollector *tokenTrace_ = nullptr;
    int tokenChanId_ = -1;

    Counter *enqueued_ = nullptr;
    Counter *retired_ = nullptr;
    Histogram *latencyNs_ = nullptr;
    Histogram *occupancy_ = nullptr;
    /** Lazily resolved per-kind event counters (the kind set is
     *  small and stable, so this map stays tiny). Guarded by a
     *  mutex: both sides of the channel report events, and under the
     *  parallel executor they run on different worker threads. */
    std::mutex eventMtx_;
    std::map<std::string, Counter *> eventCounters_;
};

} // namespace fireaxe::obs

#endif // FIREAXE_OBS_PROBE_HH
