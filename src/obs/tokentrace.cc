#include "obs/tokentrace.hh"

#include <algorithm>

#include "obs/json.hh"
#include "obs/metrics.hh"

namespace fireaxe::obs {

int
TokenTraceCollector::registerChannel(const std::string &name,
                                     int src_part, int dst_part)
{
    std::lock_guard<std::mutex> lock(mtx_);
    TokenChannelInfo info;
    info.id = int(channels_.size());
    info.name = name;
    info.srcPart = src_part;
    info.dstPart = dst_part;
    channels_.push_back(std::move(info));
    return channels_.back().id;
}

std::vector<TokenChannelInfo>
TokenTraceCollector::channels() const
{
    std::lock_guard<std::mutex> lock(mtx_);
    return channels_;
}

void
TokenTraceCollector::onEnqueue(int channel, uint64_t seq,
                               double produce_ns, double depart_ns,
                               double ready_ns, double flight_ns,
                               double penalty_ns)
{
    std::lock_guard<std::mutex> lock(mtx_);
    if (pending_.size() + completed_.size() >= capacity_) {
        ++dropped_;
        return;
    }
    TokenRecord rec;
    rec.channel = channel;
    rec.seq = seq;
    if (channel >= 0 && size_t(channel) < channels_.size()) {
        rec.srcPart = channels_[channel].srcPart;
        rec.dstPart = channels_[channel].dstPart;
    }
    rec.produceNs = produce_ns;
    rec.departNs = depart_ns;
    rec.readyNs = ready_ns;
    rec.flightNs = flight_ns;
    rec.penaltyNs = penalty_ns;
    pending_[key(channel, seq)] = std::move(rec);
    ++created_;
}

void
TokenTraceCollector::onNak(int channel, uint64_t seq, double now,
                           double delay_ns)
{
    std::lock_guard<std::mutex> lock(mtx_);
    auto it = pending_.find(key(channel, seq));
    if (it == pending_.end())
        return;
    TokenRecord &rec = it->second;
    ++rec.naks;
    rec.nakNs += delay_ns;
    rec.readyNs = std::max(rec.readyNs, now + delay_ns);
}

void
TokenTraceCollector::onRetire(int channel, uint64_t seq, double now,
                              uint64_t target_cycle)
{
    std::lock_guard<std::mutex> lock(mtx_);
    auto it = pending_.find(key(channel, seq));
    if (it == pending_.end())
        return; // not sampled at enqueue (e.g. pre-run seed token)
    TokenRecord rec = std::move(it->second);
    pending_.erase(it);
    rec.deliverNs = now;
    rec.fireNs = now;
    rec.targetCycle = target_cycle;
    rec.fired = true;
    completed_.push_back(std::move(rec));
}

std::vector<TokenRecord>
TokenTraceCollector::drainFired()
{
    std::lock_guard<std::mutex> lock(mtx_);
    std::vector<TokenRecord> out = std::move(completed_);
    completed_.clear();
    drained_ += out.size();
    return out;
}

// --- StreamWriter -------------------------------------------------

void
StreamWriter::writeHeader(const StreamRunInfo &info)
{
    JsonWriter w(os_);
    w.beginObject();
    w.key("type");
    w.value("header");
    w.key("schema");
    w.value("fireaxe.stream.v1");
    w.key("target");
    w.value(info.runLabel);
    w.key("plan_hash");
    w.value(info.planHash);
    w.key("artifact_hash");
    w.value(info.artifactHash);
    w.key("backend");
    w.value(info.backend);
    w.key("engine");
    w.value(info.engine);
    w.key("workers");
    w.value(uint64_t(info.workers));
    w.key("batch_depth");
    w.value(uint64_t(info.batchDepth));
    w.key("sample_every");
    w.value(uint64_t(info.sampleEvery));
    w.key("partitions");
    w.beginArray();
    for (size_t p = 0; p < info.partitions.size(); ++p) {
        w.beginObject();
        w.key("id");
        w.value(uint64_t(p));
        w.key("name");
        w.value(info.partitions[p]);
        w.endObject();
    }
    w.endArray();
    w.key("channels");
    w.beginArray();
    for (const TokenChannelInfo &ch : info.channels) {
        w.beginObject();
        w.key("id");
        w.value(ch.id);
        w.key("name");
        w.value(ch.name);
        w.key("src");
        w.value(ch.srcPart);
        w.key("dst");
        w.value(ch.dstPart);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os_ << "\n";
    ++lines_;
}

void
StreamWriter::writeTokens(const std::vector<TokenRecord> &records)
{
    if (records.empty())
        return;
    JsonWriter w(os_);
    w.beginObject();
    w.key("type");
    w.value("tokens");
    w.key("records");
    w.beginArray();
    for (const TokenRecord &r : records) {
        w.beginObject();
        w.key("chan");
        w.value(r.channel);
        w.key("seq");
        w.value(r.seq);
        if (r.targetCycle != TokenRecord::kNoCycle) {
            w.key("cycle");
            w.value(r.targetCycle);
        }
        w.key("produce_ns");
        w.value(r.produceNs);
        w.key("depart_ns");
        w.value(r.departNs);
        w.key("ready_ns");
        w.value(r.readyNs);
        w.key("flight_ns");
        w.value(r.flightNs);
        if (r.penaltyNs > 0.0) {
            w.key("penalty_ns");
            w.value(r.penaltyNs);
        }
        if (r.naks > 0) {
            w.key("nak_ns");
            w.value(r.nakNs);
            w.key("naks");
            w.value(uint64_t(r.naks));
        }
        w.key("fire_ns");
        w.value(r.fireNs);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os_ << "\n";
    ++lines_;
}

void
StreamWriter::writeMetrics(const MetricsSnapshot &snap,
                           double host_time_ns,
                           uint64_t target_cycle)
{
    JsonWriter w(os_);
    w.beginObject();
    w.key("type");
    w.value("metrics");
    w.key("host_time_ns");
    w.value(host_time_ns);
    w.key("target_cycle");
    w.value(target_cycle);
    w.key("metrics");
    w.beginObject();
    snap.writeValues(w);
    w.endObject();
    w.endObject();
    os_ << "\n";
    ++lines_;
}

void
StreamWriter::writeSummary(const StreamSummary &summary)
{
    JsonWriter w(os_);
    w.beginObject();
    w.key("type");
    w.value("summary");
    w.key("host_time_ns");
    w.value(summary.hostTimeNs);
    w.key("target_cycle");
    w.value(summary.targetCycle);
    w.key("token_records");
    w.value(summary.tokenRecords);
    w.key("token_records_dropped");
    w.value(summary.tokenRecordsDropped);
    w.key("trace_events_dropped");
    w.value(summary.traceEventsDropped);
    w.key("deadlocked");
    w.value(summary.deadlocked);
    w.endObject();
    os_ << "\n";
    ++lines_;
}

} // namespace fireaxe::obs
