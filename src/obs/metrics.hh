/**
 * @file
 * Hierarchical metrics registry for simulation telemetry.
 *
 * Metrics live in a dotted-path namespace ("chan.c01.token_latency_ns",
 * "part.tiles.fmr", "sim.sim_rate_mhz") and come in three kinds:
 *
 *  - Counter   — monotonically increasing integer (token counts,
 *                retransmissions, fault events);
 *  - Gauge     — last-written scalar (FMR, sim rate, host time);
 *  - Histogram — bounded-memory sample distribution with percentile
 *                extraction (token latency, channel occupancy), built
 *                on the capped reservoir of base/stats.hh.
 *
 * The registry hands out stable handle pointers: instrumented code
 * resolves a path once and then updates through the handle, which is
 * a single add/store on the hot path. Code that may run without
 * telemetry holds nullable handles and uses the inline add()/set()/
 * observe() helpers, which compile to a null check when telemetry is
 * disabled — near-zero cost for unregistered metrics.
 *
 * snapshot() freezes every metric into a plain-value MetricsSnapshot
 * (returned in platform::RunResult::metrics) which exports to JSON
 * (flat object keyed by dotted path) and CSV.
 */

#ifndef FIREAXE_OBS_METRICS_HH
#define FIREAXE_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>

#include "base/stats.hh"

namespace fireaxe::obs {

// Metric handles are updated concurrently by the parallel executor's
// worker threads: counters and gauges are single atomics (relaxed —
// they are statistics, not synchronization), histograms take a short
// internal lock per sample. Handles are therefore neither copyable
// nor movable; the registry's node-based map keeps their addresses
// stable for the lifetime of the registry.

/** Monotonic integer metric. */
class Counter
{
  public:
    void
    add(uint64_t delta = 1)
    {
        v_.fetch_add(delta, std::memory_order_relaxed);
    }

    uint64_t value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

    void reset() { v_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> v_{0};
};

/** Last-written scalar metric. */
class Gauge
{
  public:
    void set(double v) { v_.store(v, std::memory_order_relaxed); }
    double value() const
    {
        return v_.load(std::memory_order_relaxed);
    }
    void reset() { v_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> v_{0.0};
};

/**
 * Sample-distribution metric with bounded memory: exact percentiles
 * up to the reservoir cap, documented reservoir approximation above
 * it (see base/stats.hh Distribution).
 */
class Histogram
{
  public:
    static constexpr size_t kDefaultCap = 4096;

    explicit Histogram(size_t reservoir_cap = kDefaultCap)
        : dist_(reservoir_cap)
    {}

    void
    observe(double v)
    {
        std::lock_guard<std::mutex> lock(mtx_);
        dist_.sample(v);
    }

    uint64_t
    count() const
    {
        std::lock_guard<std::mutex> lock(mtx_);
        return dist_.count();
    }

    double
    mean() const
    {
        std::lock_guard<std::mutex> lock(mtx_);
        return dist_.mean();
    }

    double
    min() const
    {
        std::lock_guard<std::mutex> lock(mtx_);
        return dist_.min();
    }

    double
    max() const
    {
        std::lock_guard<std::mutex> lock(mtx_);
        return dist_.max();
    }

    double
    percentile(double p) const
    {
        std::lock_guard<std::mutex> lock(mtx_);
        return dist_.percentile(p);
    }

    bool
    exact() const
    {
        std::lock_guard<std::mutex> lock(mtx_);
        return dist_.exact();
    }

    size_t reservoirCap() const { return dist_.reservoirCap(); }

    void
    reset()
    {
        std::lock_guard<std::mutex> lock(mtx_);
        dist_.reset();
    }

  private:
    mutable std::mutex mtx_;
    Distribution dist_;
};

// Nullable-handle helpers: no-ops when the handle is null, so
// instrumented code pays one branch when telemetry is off.
inline void
add(Counter *c, uint64_t delta = 1)
{
    if (c)
        c->add(delta);
}

inline void
set(Gauge *g, double v)
{
    if (g)
        g->set(v);
}

inline void
observe(Histogram *h, double v)
{
    if (h)
        h->observe(v);
}

enum class MetricKind { Counter, Gauge, Histogram };

/** One metric's frozen value. */
struct MetricValue
{
    MetricKind kind = MetricKind::Counter;
    /** Counter/gauge value (counters as double for uniform access;
     *  use count for the exact integer). */
    double value = 0.0;
    /** Counter value / histogram sample count. */
    uint64_t count = 0;
    // Histogram-only fields.
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
};

class JsonWriter;

/** A frozen, value-only copy of a registry. */
struct MetricsSnapshot
{
    std::map<std::string, MetricValue> values;

    bool empty() const { return values.empty(); }
    bool has(const std::string &path) const
    {
        return values.count(path) > 0;
    }

    /** nullptr when absent. */
    const MetricValue *find(const std::string &path) const;

    /** Counter value; 0 when absent or not a counter. */
    uint64_t counter(const std::string &path) const;
    /** Gauge value; 0.0 when absent or not a gauge. */
    double gauge(const std::string &path) const;

    /** Flat JSON object keyed by dotted path, wrapped in a schema
     *  envelope: {"schema":"fireaxe.metrics.v1","metrics":{...}}. */
    void writeJson(std::ostream &os) const;
    /** The per-metric members only, emitted into an object scope the
     *  caller has already opened — lets other exporters (the
     *  telemetry stream) embed the snapshot without the envelope. */
    void writeValues(JsonWriter &w) const;
    /** CSV: path,kind,value,count,mean,min,max,p50,p90,p95,p99. */
    void writeCsv(std::ostream &os) const;
};

/**
 * The registry. Resolving a path registers the metric on first use
 * and returns the same handle on re-registration; resolving an
 * existing path as a different kind is a caller error (fatal).
 *
 * Registration, lookup, and snapshotting lock an internal mutex, so
 * threads may resolve and snapshot concurrently; the handles
 * themselves are lock-free on the counter/gauge hot path.
 */
class MetricsRegistry
{
  public:
    explicit MetricsRegistry(
        size_t histogram_cap = Histogram::kDefaultCap)
        : histogramCap_(histogram_cap)
    {}

    Counter &counter(const std::string &path);
    Gauge &gauge(const std::string &path);
    /** @p reservoir_cap 0 = registry default. */
    Histogram &histogram(const std::string &path,
                         size_t reservoir_cap = 0);

    size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mtx_);
        return metrics_.size();
    }

    bool
    has(const std::string &path) const
    {
        std::lock_guard<std::mutex> lock(mtx_);
        return metrics_.count(path) > 0;
    }

    MetricsSnapshot snapshot() const;
    void writeJson(std::ostream &os) const;
    void writeCsv(std::ostream &os) const;

    /** Reset every metric's value (registrations are kept and the
     *  handles stay valid). */
    void reset();

  private:
    struct Metric
    {
        MetricKind kind = MetricKind::Counter;
        Counter counter;
        Gauge gauge;
        std::unique_ptr<Histogram> histogram;
    };

    Metric &resolve(const std::string &path, MetricKind kind,
                    size_t reservoir_cap);

    // std::map: node-based, so handle addresses are stable across
    // later registrations.
    std::map<std::string, Metric> metrics_;
    size_t histogramCap_;
    mutable std::mutex mtx_;
};

} // namespace fireaxe::obs

#endif // FIREAXE_OBS_METRICS_HH
