/**
 * @file
 * Minimal recursive-descent JSON parser producing a small DOM.
 *
 * Counterpart to json.hh's streaming writer: the telemetry stream and
 * bench row files are JSON we emit ourselves, and `fireaxe-trace`
 * (plus tests validating stream output) need to read them back
 * without an external dependency. Full JSON except \uXXXX escapes
 * beyond Latin-1 are passed through unexpanded-lossy ('?'), which the
 * telemetry schema never emits.
 */

#ifndef FIREAXE_OBS_JSONPARSE_HH
#define FIREAXE_OBS_JSONPARSE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace fireaxe::obs {

/** One parsed JSON value. Containers own their children. */
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> arr;
    // std::map keeps iteration deterministic for tests; telemetry
    // objects are small so ordering cost is irrelevant.
    std::map<std::string, JsonValue> obj;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Object member; nullptr when absent or not an object. */
    const JsonValue *
    get(const std::string &key) const
    {
        if (kind != Kind::Object)
            return nullptr;
        auto it = obj.find(key);
        return it == obj.end() ? nullptr : &it->second;
    }

    bool
    has(const std::string &key) const
    {
        return get(key) != nullptr;
    }

    /** Member as number (0 / fallback when absent or wrong kind). */
    double
    num(const std::string &key, double fallback = 0.0) const
    {
        const JsonValue *v = get(key);
        return v && v->isNumber() ? v->number : fallback;
    }

    uint64_t
    u64(const std::string &key, uint64_t fallback = 0) const
    {
        const JsonValue *v = get(key);
        return v && v->isNumber() ? uint64_t(v->number) : fallback;
    }

    std::string
    text(const std::string &key,
         const std::string &fallback = "") const
    {
        const JsonValue *v = get(key);
        return v && v->isString() ? v->str : fallback;
    }

    bool
    flag(const std::string &key, bool fallback = false) const
    {
        const JsonValue *v = get(key);
        return v && v->isBool() ? v->boolean : fallback;
    }
};

/**
 * Parse one complete JSON document from @p text (leading/trailing
 * whitespace allowed, trailing garbage is an error). Returns false
 * and fills @p error with "offset N: message" on malformed input.
 */
bool parseJson(std::string_view text, JsonValue &out,
               std::string &error);

} // namespace fireaxe::obs

#endif // FIREAXE_OBS_JSONPARSE_HH
