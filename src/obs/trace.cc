#include "obs/trace.hh"

#include "base/logging.hh"
#include "obs/json.hh"

namespace fireaxe::obs {

Tracer::Tracer(size_t capacity)
    : cap_(capacity ? capacity : 1),
      epoch_(std::chrono::steady_clock::now())
{
    ring_.reserve(std::min<size_t>(cap_, 4096));
}

void
Tracer::push(TraceEvent ev)
{
    std::lock_guard<std::mutex> lock(mtx_);
    ++total_;
    if (ring_.size() < cap_) {
        ring_.push_back(std::move(ev));
        return;
    }
    // Full: overwrite the oldest event. next_ is always the oldest
    // slot once the ring has wrapped.
    if (!wrapped_) {
        wrapped_ = true;
        warn("tracer: ring buffer full (", cap_, " events) — oldest "
             "events are being dropped; the exported trace is "
             "truncated (see trace.dropped_events)");
    }
    ring_[next_] = std::move(ev);
    next_ = (next_ + 1) % cap_;
}

void
Tracer::instant(std::string name, std::string cat, double ts_ns,
                int pid, int tid, std::string args)
{
    TraceEvent ev;
    ev.name = std::move(name);
    ev.cat = std::move(cat);
    ev.ph = 'i';
    ev.tsNs = ts_ns;
    ev.pid = pid;
    ev.tid = tid;
    ev.args = std::move(args);
    push(std::move(ev));
}

void
Tracer::complete(std::string name, std::string cat, double ts_ns,
                 double dur_ns, int pid, int tid, std::string args)
{
    TraceEvent ev;
    ev.name = std::move(name);
    ev.cat = std::move(cat);
    ev.ph = 'X';
    ev.tsNs = ts_ns;
    ev.durNs = dur_ns;
    ev.pid = pid;
    ev.tid = tid;
    ev.args = std::move(args);
    push(std::move(ev));
}

void
Tracer::setProcessName(int pid, std::string name)
{
    std::lock_guard<std::mutex> lock(mtx_);
    processNames_[pid] = std::move(name);
}

double
Tracer::wallNowNs() const
{
    return double(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - epoch_)
                      .count());
}

Tracer::Span::Span(Tracer *tracer, std::string name, int pid, int tid)
    : tracer_(tracer), name_(std::move(name)), pid_(pid), tid_(tid),
      start_(std::chrono::steady_clock::now())
{}

Tracer::Span::Span(Span &&other) noexcept
    : tracer_(other.tracer_), name_(std::move(other.name_)),
      pid_(other.pid_), tid_(other.tid_), start_(other.start_)
{
    other.tracer_ = nullptr;
}

Tracer::Span::~Span()
{
    if (!tracer_)
        return;
    double start_ns = double(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            start_ - tracer_->epoch_)
            .count());
    double dur_ns = tracer_->wallNowNs() - start_ns;
    tracer_->complete(std::move(name_), "host", start_ns, dur_ns,
                      pid_, tid_);
}

void
Tracer::forEachOrdered(
    const std::function<void(const TraceEvent &)> &fn) const
{
    std::lock_guard<std::mutex> lock(mtx_);
    if (ring_.size() < cap_) {
        for (const TraceEvent &ev : ring_)
            fn(ev);
        return;
    }
    for (size_t i = 0; i < ring_.size(); ++i)
        fn(ring_[(next_ + i) % cap_]);
}

void
Tracer::writeChromeJson(std::ostream &os) const
{
    // Copy the name map out under the lock; forEachOrdered locks on
    // its own (the mutex is not recursive).
    std::map<int, std::string> process_names;
    {
        std::lock_guard<std::mutex> lock(mtx_);
        process_names = processNames_;
    }

    JsonWriter w(os);
    w.beginObject();
    w.key("displayTimeUnit");
    w.value("ns");
    w.key("traceEvents");
    w.beginArray();

    for (const auto &[pid, name] : process_names) {
        w.beginObject();
        w.key("name");
        w.value("process_name");
        w.key("ph");
        w.value("M");
        w.key("pid");
        w.value(pid);
        w.key("tid");
        w.value(0);
        w.key("args");
        w.beginObject();
        w.key("name");
        w.value(name);
        w.endObject();
        w.endObject();
    }

    forEachOrdered([&w](const TraceEvent &ev) {
        w.beginObject();
        w.key("name");
        w.value(ev.name);
        w.key("cat");
        w.value(ev.cat.empty() ? std::string("event") : ev.cat);
        w.key("ph");
        w.value(std::string(1, ev.ph));
        // Trace Event Format timestamps are microseconds.
        w.key("ts");
        w.value(ev.tsNs / 1000.0);
        if (ev.ph == 'X') {
            w.key("dur");
            w.value(ev.durNs / 1000.0);
        } else {
            // Instant scope: thread-local.
            w.key("s");
            w.value("t");
        }
        w.key("pid");
        w.value(ev.pid);
        w.key("tid");
        w.value(ev.tid);
        if (!ev.args.empty()) {
            w.key("args");
            w.raw(ev.args);
        }
        w.endObject();
    });

    w.endArray();
    w.endObject();
    os << "\n";
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mtx_);
    ring_.clear();
    next_ = 0;
    total_ = 0;
    wrapped_ = false;
}

} // namespace fireaxe::obs
