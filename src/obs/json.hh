/**
 * @file
 * Minimal streaming JSON writer shared by every telemetry exporter
 * (metrics JSON, Chrome trace_event files, bench row dumps). No DOM,
 * no allocation beyond the context stack: callers emit tokens in
 * order and the writer inserts separators and escapes strings.
 */

#ifndef FIREAXE_OBS_JSON_HH
#define FIREAXE_OBS_JSON_HH

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "base/logging.hh"

namespace fireaxe::obs {

/** Write @p s with JSON string escaping (quotes not included). */
inline void
jsonEscape(std::ostream &os, std::string_view s)
{
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\r': os << "\\r"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
}

/** Format a double as a JSON number (inf/NaN become null, which
 *  keeps every exporter's output parseable). */
inline void
jsonNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    os << buf;
}

/**
 * Context-tracking token writer: beginObject()/beginArray() push a
 * scope, key() names the next value inside an object, value()
 * emits a scalar. Separators are inserted automatically.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    void
    beginObject()
    {
        separator();
        os_ << '{';
        stack_.push_back(false);
    }

    void
    endObject()
    {
        FIREAXE_ASSERT(!stack_.empty(), "JSON scope underflow");
        stack_.pop_back();
        os_ << '}';
    }

    void
    beginArray()
    {
        separator();
        os_ << '[';
        stack_.push_back(false);
    }

    void
    endArray()
    {
        FIREAXE_ASSERT(!stack_.empty(), "JSON scope underflow");
        stack_.pop_back();
        os_ << ']';
    }

    void
    key(std::string_view k)
    {
        separator();
        os_ << '"';
        jsonEscape(os_, k);
        os_ << "\":";
        pendingKey_ = true;
    }

    void
    value(double v)
    {
        separator();
        jsonNumber(os_, v);
    }

    void
    value(uint64_t v)
    {
        separator();
        os_ << v;
    }

    void
    value(int v)
    {
        separator();
        os_ << v;
    }

    void
    value(bool v)
    {
        separator();
        os_ << (v ? "true" : "false");
    }

    void
    value(std::string_view v)
    {
        separator();
        os_ << '"';
        jsonEscape(os_, v);
        os_ << '"';
    }

    void value(const char *v) { value(std::string_view(v)); }

    /** Emit pre-encoded JSON verbatim (e.g. a nested args object). */
    void
    raw(std::string_view json)
    {
        separator();
        os_ << json;
    }

  private:
    void
    separator()
    {
        if (pendingKey_) {
            // A key was just written; the value follows directly.
            pendingKey_ = false;
            return;
        }
        if (!stack_.empty()) {
            if (stack_.back())
                os_ << ',';
            stack_.back() = true;
        }
    }

    std::ostream &os_;
    std::vector<bool> stack_;
    bool pendingKey_ = false;
};

} // namespace fireaxe::obs

#endif // FIREAXE_OBS_JSON_HH
