#include "obs/metrics.hh"

#include "base/logging.hh"
#include "obs/json.hh"

namespace fireaxe::obs {

namespace {

const char *
kindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter: return "counter";
      case MetricKind::Gauge: return "gauge";
      case MetricKind::Histogram: return "histogram";
    }
    return "?";
}

} // namespace

const MetricValue *
MetricsSnapshot::find(const std::string &path) const
{
    auto it = values.find(path);
    return it == values.end() ? nullptr : &it->second;
}

uint64_t
MetricsSnapshot::counter(const std::string &path) const
{
    const MetricValue *v = find(path);
    return v && v->kind == MetricKind::Counter ? v->count : 0;
}

double
MetricsSnapshot::gauge(const std::string &path) const
{
    const MetricValue *v = find(path);
    return v && v->kind == MetricKind::Gauge ? v->value : 0.0;
}

void
MetricsSnapshot::writeValues(JsonWriter &w) const
{
    for (const auto &[path, v] : values) {
        w.key(path);
        w.beginObject();
        w.key("kind");
        w.value(kindName(v.kind));
        switch (v.kind) {
          case MetricKind::Counter:
            w.key("value");
            w.value(v.count);
            break;
          case MetricKind::Gauge:
            w.key("value");
            w.value(v.value);
            break;
          case MetricKind::Histogram:
            w.key("count");
            w.value(v.count);
            w.key("mean");
            w.value(v.mean);
            w.key("min");
            w.value(v.min);
            w.key("max");
            w.value(v.max);
            w.key("p50");
            w.value(v.p50);
            w.key("p90");
            w.value(v.p90);
            w.key("p95");
            w.value(v.p95);
            w.key("p99");
            w.value(v.p99);
            break;
        }
        w.endObject();
    }
}

void
MetricsSnapshot::writeJson(std::ostream &os) const
{
    JsonWriter w(os);
    w.beginObject();
    w.key("schema");
    w.value("fireaxe.metrics.v1");
    w.key("metrics");
    w.beginObject();
    writeValues(w);
    w.endObject();
    w.endObject();
    os << "\n";
}

void
MetricsSnapshot::writeCsv(std::ostream &os) const
{
    os << "path,kind,value,count,mean,min,max,p50,p90,p95,p99\n";
    for (const auto &[path, v] : values) {
        os << path << ',' << kindName(v.kind) << ',';
        if (v.kind == MetricKind::Counter)
            os << v.count;
        else
            jsonNumber(os, v.value);
        os << ',' << v.count << ',';
        jsonNumber(os, v.mean);
        os << ',';
        jsonNumber(os, v.min);
        os << ',';
        jsonNumber(os, v.max);
        os << ',';
        jsonNumber(os, v.p50);
        os << ',';
        jsonNumber(os, v.p90);
        os << ',';
        jsonNumber(os, v.p95);
        os << ',';
        jsonNumber(os, v.p99);
        os << '\n';
    }
}

MetricsRegistry::Metric &
MetricsRegistry::resolve(const std::string &path, MetricKind kind,
                         size_t reservoir_cap)
{
    if (path.empty())
        fatal("metrics: empty metric path");
    std::lock_guard<std::mutex> lock(mtx_);
    auto it = metrics_.find(path);
    if (it != metrics_.end()) {
        if (it->second.kind != kind) {
            fatal("metrics: '", path, "' re-registered as ",
                  kindName(kind), " but exists as ",
                  kindName(it->second.kind));
        }
        return it->second;
    }
    // In-place construction: Metric holds atomics, so it cannot be
    // built outside the map and moved in.
    Metric &m = metrics_.try_emplace(path).first->second;
    m.kind = kind;
    if (kind == MetricKind::Histogram) {
        m.histogram = std::make_unique<Histogram>(
            reservoir_cap ? reservoir_cap : histogramCap_);
    }
    return m;
}

Counter &
MetricsRegistry::counter(const std::string &path)
{
    return resolve(path, MetricKind::Counter, 0).counter;
}

Gauge &
MetricsRegistry::gauge(const std::string &path)
{
    return resolve(path, MetricKind::Gauge, 0).gauge;
}

Histogram &
MetricsRegistry::histogram(const std::string &path,
                           size_t reservoir_cap)
{
    return *resolve(path, MetricKind::Histogram, reservoir_cap)
                .histogram;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mtx_);
    MetricsSnapshot snap;
    for (const auto &[path, m] : metrics_) {
        MetricValue v;
        v.kind = m.kind;
        switch (m.kind) {
          case MetricKind::Counter:
            v.count = m.counter.value();
            v.value = double(v.count);
            break;
          case MetricKind::Gauge:
            v.value = m.gauge.value();
            break;
          case MetricKind::Histogram: {
            const Histogram &h = *m.histogram;
            v.count = h.count();
            v.mean = h.mean();
            v.min = h.min();
            v.max = h.max();
            v.p50 = h.percentile(50.0);
            v.p90 = h.percentile(90.0);
            v.p95 = h.percentile(95.0);
            v.p99 = h.percentile(99.0);
            v.value = v.mean;
            break;
          }
        }
        snap.values.emplace(path, v);
    }
    return snap;
}

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    snapshot().writeJson(os);
}

void
MetricsRegistry::writeCsv(std::ostream &os) const
{
    snapshot().writeCsv(os);
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mtx_);
    for (auto &[path, m] : metrics_) {
        m.counter.reset();
        m.gauge.reset();
        if (m.histogram)
            m.histogram->reset();
    }
}

} // namespace fireaxe::obs
