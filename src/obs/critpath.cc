#include "obs/critpath.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <set>
#include <unordered_set>

#include "obs/json.hh"

namespace fireaxe::obs {

namespace {

std::string
partName(const CritPathInput &input, int part)
{
    if (part >= 0 && size_t(part) < input.partNames.size() &&
        !input.partNames[part].empty()) {
        return input.partNames[part];
    }
    return "p" + std::to_string(part);
}

double
clampTo(double v, double lo, double hi)
{
    return std::max(lo, std::min(v, hi));
}

} // namespace

CritPathReport
analyzeCriticalPath(const CritPathInput &input)
{
    CritPathReport report;
    report.sampleEvery = input.sampleEvery ? input.sampleEvery : 1;

    // Fired records with a known target cycle, grouped by consumer.
    std::map<int, std::vector<size_t>> byDst;
    for (size_t i = 0; i < input.records.size(); ++i) {
        const TokenRecord &r = input.records[i];
        if (!r.fired || r.targetCycle == TokenRecord::kNoCycle)
            continue;
        byDst[r.dstPart].push_back(i);
        ++report.recordsAnalyzed;
    }

    std::map<int, ChannelAttribution> chans;
    std::map<int, PartitionAttribution> parts;

    for (auto &[dst, idx] : byDst) {
        std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
            const TokenRecord &ra = input.records[a];
            const TokenRecord &rb = input.records[b];
            if (ra.targetCycle != rb.targetCycle)
                return ra.targetCycle < rb.targetCycle;
            return ra.fireNs < rb.fireNs;
        });

        // Pre-scan: the consumer's unthrottled compute pace is its
        // fastest observed per-cycle fire advance. Depth-N batched
        // runs need it (see the shadow-token windows below): inside
        // an epoch burst the fastest windows are pure compute, so
        // the minimum is a tight pace estimate.
        double pace = 0.0;
        {
            bool have = false;
            uint64_t pc = 0;
            double pf = 0.0;
            size_t j = 0;
            while (j < idx.size()) {
                uint64_t cycle = input.records[idx[j]].targetCycle;
                double fire = 0.0;
                for (; j < idx.size() &&
                       input.records[idx[j]].targetCycle == cycle;
                     ++j)
                    fire = std::max(fire,
                                    input.records[idx[j]].fireNs);
                if (have && cycle > pc && fire > pf) {
                    double per = (fire - pf) / double(cycle - pc);
                    if (pace == 0.0 || per < pace)
                        pace = per;
                }
                have = true;
                pc = cycle;
                pf = fire;
            }
        }

        // Walk the fire windows (groups of equal target cycle)
        // pairwise: the previous window's fire opens the current one.
        size_t i = 0;
        bool havePrev = false;
        uint64_t prevCycle = 0;
        double prevFire = 0.0;
        while (i < idx.size()) {
            uint64_t cycle = input.records[idx[i]].targetCycle;
            size_t begin = i;
            double fire = 0.0;
            size_t critIdx = idx[i];
            double critReady = input.records[idx[i]].readyNs;
            for (; i < idx.size() &&
                   input.records[idx[i]].targetCycle == cycle;
                 ++i) {
                const TokenRecord &r = input.records[idx[i]];
                fire = std::max(fire, r.fireNs);
                // The blocking token is the last one to become
                // visible — nothing could fire before it arrived.
                if (r.readyNs > critReady) {
                    critReady = r.readyNs;
                    critIdx = idx[i];
                }
            }
            (void)begin;
            if (!havePrev || cycle <= prevCycle ||
                fire <= prevFire) {
                havePrev = true;
                prevCycle = cycle;
                prevFire = fire;
                continue;
            }

            // Model the last cycle of the gap and scale by the gap
            // width (== sample spacing); exact at sample_every 1.
            double dc = double(cycle - prevCycle);
            double perCycle = (fire - prevFire) / dc;
            double start = fire - perCycle;
            const TokenRecord &crit = input.records[critIdx];

            // Depth-N batching: a within-epoch token never crosses
            // the physical link (the consumer recomputes it locally
            // from the epoch frame's shadow state), and its record
            // says so — zero flight, depart == ready. A fire window
            // blocked by such a token is not link-blocked the way a
            // framed token is: the consumer overlaps its own compute
            // with the token's availability, so only the part of the
            // window beyond the consumer's unthrottled pace is real
            // idle (measured part.*.wait_ns never includes compute).
            // Shift the attribution start forward by `pace` and drop
            // the window when the token was ready before that point
            // — that is a pure compute-paced burst window. Unbatched
            // tokens always carry positive flight (every transport
            // has nonzero latency), so depth-1 runs never take this
            // branch.
            bool shadow = crit.flightNs <= 0.0 &&
                          crit.penaltyNs <= 0.0 && crit.nakNs <= 0.0;
            double attrStart = start;
            if (shadow) {
                attrStart = std::min(start + pace, fire);
                if (crit.readyNs <= attrStart) {
                    havePrev = true;
                    prevCycle = cycle;
                    prevFire = fire;
                    continue;
                }
            }

            double waitEnd = clampTo(crit.readyNs, attrStart, fire);
            double tProd =
                clampTo(crit.produceNs, attrStart, waitEnd);
            double tDep = clampTo(crit.departNs, tProd, waitEnd);
            double upstream = tProd - attrStart;
            double ser = tDep - tProd;
            double rest = waitEnd - tDep;
            double rtx =
                std::min(crit.penaltyNs + crit.nakNs, rest);
            double flight = rest - rtx;
            double wait = waitEnd - attrStart;

            ChannelAttribution &ca = chans[crit.channel];
            if (ca.blockingFires == 0) {
                ca.channelId = crit.channel;
                ca.srcPart = crit.srcPart;
                ca.dstPart = crit.dstPart;
                if (crit.channel >= 0 &&
                    size_t(crit.channel) < input.channels.size()) {
                    ca.name = input.channels[crit.channel].name;
                } else {
                    ca.name = "chan" + std::to_string(crit.channel);
                }
            }
            ++ca.blockingFires;
            ca.waitNs += wait * dc;
            ca.serNs += ser * dc;
            ca.flightNs += flight * dc;
            ca.rtxNs += rtx * dc;
            ca.upstreamNs += upstream * dc;

            PartitionAttribution &pa = parts[dst];
            pa.part = dst;
            pa.attributedWaitNs += wait * dc;
            pa.computeSlackNs += (fire - waitEnd) * dc;

            report.windows.push_back({dst, cycle, start, fire,
                                      crit.channel, wait * dc});
            report.criticalRecordIdx.push_back(critIdx);
            ++report.firesAnalyzed;

            havePrev = true;
            prevCycle = cycle;
            prevFire = fire;
        }
    }

    // Partitions with measured wait but no analyzed windows still
    // show up (coverage 0) so gaps are visible.
    for (const auto &[part, measured] : input.measuredWaitNs) {
        PartitionAttribution &pa = parts[part];
        pa.part = part;
        pa.measuredWaitNs = measured;
    }

    for (auto &[part, pa] : parts) {
        pa.name = partName(input, part);
        if (pa.measuredWaitNs > 0.0) {
            pa.coveragePct =
                100.0 * pa.attributedWaitNs / pa.measuredWaitNs;
        }
        report.totalAttributedWaitNs += pa.attributedWaitNs;
        report.totalMeasuredWaitNs += pa.measuredWaitNs;
        report.partitions.push_back(pa);
    }

    for (auto &[id, ca] : chans) {
        (void)id;
        if (report.totalAttributedWaitNs > 0.0) {
            ca.waitSharePct =
                100.0 * ca.waitNs / report.totalAttributedWaitNs;
        }
        report.channels.push_back(ca);
    }
    std::sort(report.channels.begin(), report.channels.end(),
              [](const ChannelAttribution &a,
                 const ChannelAttribution &b) {
                  return a.waitNs > b.waitNs;
              });

    return report;
}

void
CritPathReport::writeJson(std::ostream &os) const
{
    JsonWriter w(os);
    w.beginObject();
    w.key("schema");
    w.value("fireaxe.critpath.v1");
    w.key("sample_every");
    w.value(uint64_t(sampleEvery));
    w.key("records_analyzed");
    w.value(recordsAnalyzed);
    w.key("fires_analyzed");
    w.value(firesAnalyzed);
    w.key("total_attributed_wait_ns");
    w.value(totalAttributedWaitNs);
    w.key("total_measured_wait_ns");
    w.value(totalMeasuredWaitNs);
    w.key("channels");
    w.beginArray();
    for (const ChannelAttribution &c : channels) {
        w.beginObject();
        w.key("id");
        w.value(c.channelId);
        w.key("name");
        w.value(c.name);
        w.key("src");
        w.value(c.srcPart);
        w.key("dst");
        w.value(c.dstPart);
        w.key("blocking_fires");
        w.value(c.blockingFires);
        w.key("wait_ns");
        w.value(c.waitNs);
        w.key("wait_share_pct");
        w.value(c.waitSharePct);
        w.key("ser_ns");
        w.value(c.serNs);
        w.key("flight_ns");
        w.value(c.flightNs);
        w.key("rtx_ns");
        w.value(c.rtxNs);
        w.key("upstream_ns");
        w.value(c.upstreamNs);
        w.endObject();
    }
    w.endArray();
    w.key("partitions");
    w.beginArray();
    for (const PartitionAttribution &p : partitions) {
        w.beginObject();
        w.key("part");
        w.value(p.part);
        w.key("name");
        w.value(p.name);
        w.key("attributed_wait_ns");
        w.value(p.attributedWaitNs);
        w.key("compute_slack_ns");
        w.value(p.computeSlackNs);
        w.key("measured_wait_ns");
        w.value(p.measuredWaitNs);
        w.key("coverage_pct");
        w.value(p.coveragePct);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

void
CritPathReport::writeText(std::ostream &os, size_t top_n) const
{
    char buf[256];
    os << "critical-path report (sample 1-in-" << sampleEvery
       << ", " << firesAnalyzed << " fire windows from "
       << recordsAnalyzed << " records)\n";
    if (empty()) {
        os << "  no fire windows analyzed — nothing to attribute\n";
        return;
    }

    os << "\nper-partition wait attribution:\n";
    std::snprintf(buf, sizeof(buf), "  %-16s %14s %14s %10s\n",
                  "partition", "attributed_ms", "measured_ms",
                  "coverage");
    os << buf;
    for (const PartitionAttribution &p : partitions) {
        std::snprintf(buf, sizeof(buf),
                      "  %-16s %14.3f %14.3f %9.1f%%\n",
                      p.name.c_str(), p.attributedWaitNs / 1e6,
                      p.measuredWaitNs / 1e6, p.coveragePct);
        os << buf;
    }

    os << "\ntop blocking channels:\n";
    std::snprintf(buf, sizeof(buf),
                  "  %-20s %8s %8s %7s  %s\n", "channel", "fires",
                  "wait_ms", "share", "breakdown (ser/flight/rtx/"
                  "upstream %)");
    os << buf;
    size_t shown = 0;
    for (const ChannelAttribution &c : channels) {
        if (shown++ >= top_n)
            break;
        double w = c.waitNs > 0.0 ? c.waitNs : 1.0;
        std::snprintf(buf, sizeof(buf),
                      "  %-20s %8" PRIu64
                      " %8.3f %6.1f%%  %4.1f/%4.1f/%4.1f/%4.1f\n",
                      c.name.c_str(), c.blockingFires,
                      c.waitNs / 1e6, c.waitSharePct,
                      100.0 * c.serNs / w, 100.0 * c.flightNs / w,
                      100.0 * c.rtxNs / w,
                      100.0 * c.upstreamNs / w);
        os << buf;
    }
    if (channels.size() > top_n) {
        os << "  ... " << (channels.size() - top_n)
           << " more channel(s)\n";
    }
}

void
writeAnnotatedChromeTrace(const CritPathInput &input,
                          const CritPathReport &report,
                          std::ostream &os)
{
    std::unordered_set<size_t> critical(
        report.criticalRecordIdx.begin(),
        report.criticalRecordIdx.end());

    JsonWriter w(os);
    w.beginObject();
    w.key("traceEvents");
    w.beginArray();

    // Track names: one process per partition.
    std::set<int> partIds;
    for (const TokenRecord &r : input.records) {
        partIds.insert(r.srcPart);
        partIds.insert(r.dstPart);
    }
    for (int p : partIds) {
        w.beginObject();
        w.key("ph");
        w.value("M");
        w.key("name");
        w.value("process_name");
        w.key("pid");
        w.value(p);
        w.key("tid");
        w.value(0);
        w.key("args");
        w.beginObject();
        w.key("name");
        w.value(partName(input, p));
        w.endObject();
        w.endObject();
    }

    // Token lifecycle spans on the source partition's track, one tid
    // per channel; the blocking tokens get their own category so a
    // viewer can highlight the critical path.
    for (size_t i = 0; i < input.records.size(); ++i) {
        const TokenRecord &r = input.records[i];
        if (!r.fired)
            continue;
        std::string name;
        if (r.channel >= 0 &&
            size_t(r.channel) < input.channels.size()) {
            name = input.channels[r.channel].name;
        } else {
            name = "chan" + std::to_string(r.channel);
        }
        name += "#" + std::to_string(r.seq);
        w.beginObject();
        w.key("ph");
        w.value("X");
        w.key("name");
        w.value(name);
        w.key("cat");
        w.value(critical.count(i) ? "token.critical" : "token");
        w.key("pid");
        w.value(r.srcPart);
        w.key("tid");
        w.value(r.channel);
        w.key("ts");
        w.value(r.produceNs / 1e3);
        w.key("dur");
        w.value(std::max(r.fireNs - r.produceNs, 0.0) / 1e3);
        w.key("args");
        w.beginObject();
        w.key("seq");
        w.value(r.seq);
        if (r.targetCycle != TokenRecord::kNoCycle) {
            w.key("cycle");
            w.value(r.targetCycle);
        }
        w.key("depart_ns");
        w.value(r.departNs);
        w.key("ready_ns");
        w.value(r.readyNs);
        w.key("naks");
        w.value(uint64_t(r.naks));
        w.endObject();
        w.endObject();
    }

    // Attributed wait windows on the consuming partition's track.
    for (const FireWindow &fw : report.windows) {
        w.beginObject();
        w.key("ph");
        w.value("X");
        w.key("name");
        w.value("wait@" + std::to_string(fw.targetCycle));
        w.key("cat");
        w.value("critpath");
        w.key("pid");
        w.value(fw.dstPart);
        w.key("tid");
        w.value(1 + int(input.channels.size()));
        w.key("ts");
        w.value(fw.startNs / 1e3);
        w.key("dur");
        w.value(std::max(fw.fireNs - fw.startNs, 0.0) / 1e3);
        w.key("args");
        w.beginObject();
        w.key("blocking_channel");
        w.value(fw.critChannelId);
        w.key("wait_ns");
        w.value(fw.waitNs);
        w.endObject();
        w.endObject();
    }

    w.endArray();
    w.endObject();
    os << "\n";
}

} // namespace fireaxe::obs
