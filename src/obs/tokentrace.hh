/**
 * @file
 * Token-level causal tracing: sampled lifecycle records for the
 * tokens crossing LI-BDN channels, from which a cross-partition
 * happens-before graph can be reconstructed.
 *
 * A sampled token (1-in-N by sequence number) is stamped at every
 * stage of its life on the simulated host timeline:
 *
 *   produce  — the producer's fireFSM emitted it (enqueue time);
 *   depart   — it left the serializer (after any link stall and the
 *              serialization occupancy of everything ahead of it);
 *   ready    — it becomes visible at the consumer (departure + link
 *              flight + any timeout-retransmit penalty, later pushed
 *              out by NAK-driven recoveries);
 *   deliver/fire — the consuming fireFSM retired it and advanced its
 *              target cycle.
 *
 * Each record carries {channel, seq, src_part, dst_part,
 * target_cycle} plus the decomposed delay components, which is
 * exactly what the critical-path analyzer (obs/critpath.hh) needs to
 * attribute wall time to compute vs serialization vs link latency vs
 * NAK/retransmit vs idle-wait.
 *
 * The collector is bounded: once `capacity` records are buffered
 * (pending + completed), further sampled tokens are dropped and
 * counted — long runs stream completed records out periodically
 * (StreamWriter below) so the bound is never hit in practice.
 *
 * Thread safety: hooks fire from both sides of a channel, which under
 * the parallel executor are two different worker threads; every hook
 * takes a short internal lock. Sampling keeps the rate low (default
 * 1-in-64), so contention is negligible.
 */

#ifndef FIREAXE_OBS_TOKENTRACE_HH
#define FIREAXE_OBS_TOKENTRACE_HH

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

namespace fireaxe::obs {

struct MetricsSnapshot;

/** One traced channel's identity (registered by its probe). */
struct TokenChannelInfo
{
    int id = -1;
    std::string name;
    int srcPart = 0;
    int dstPart = 0;
};

/** Lifecycle record of one sampled token. Times are simulated host
 *  nanoseconds. */
struct TokenRecord
{
    static constexpr uint64_t kNoCycle = ~uint64_t(0);

    int channel = -1;  ///< TokenChannelInfo::id
    uint64_t seq = 0;  ///< channel-local sequence number (from 1)
    int srcPart = 0;
    int dstPart = 0;
    /** Target cycle of the consuming fireFSM fire (kNoCycle until
     *  delivered, or when the consumer did not report a cycle). */
    uint64_t targetCycle = kNoCycle;

    double produceNs = 0.0; ///< producer enqueue time
    double departNs = 0.0;  ///< left the serializer
    double readyNs = 0.0;   ///< visible at the consumer
    double flightNs = 0.0;  ///< one-way link latency component
    /** Timeout-retransmit penalty charged at enqueue (producer-side
     *  loss recovery). */
    double penaltyNs = 0.0;
    /** Additional NAK-driven recovery delay (consumer-side CRC
     *  failures; extends readyNs). */
    double nakNs = 0.0;
    double deliverNs = 0.0; ///< retired by the consuming fireFSM
    double fireNs = 0.0;    ///< the fire consuming it (== deliverNs)
    uint32_t naks = 0;      ///< NAK-driven retransmissions
    bool fired = false;     ///< lifecycle complete
};

/**
 * Collects sampled token records from every channel probe of a
 * telemetry bundle. Channels register once (from
 * ChannelProbe::bindTokenTrace) and then report lifecycle events
 * keyed by (channel id, seq).
 */
class TokenTraceCollector
{
  public:
    static constexpr size_t kDefaultCapacity = size_t(1) << 16;

    explicit TokenTraceCollector(unsigned sample_every = 64,
                                 size_t capacity = kDefaultCapacity)
        : sampleEvery_(sample_every ? sample_every : 1),
          capacity_(capacity ? capacity : 1)
    {}

    unsigned sampleEvery() const { return sampleEvery_; }
    size_t capacity() const { return capacity_; }

    /** Is sequence number @p seq in the sampled subset? Channels
     *  gate all per-token work on this. */
    bool
    sampled(uint64_t seq) const
    {
        return sampleEvery_ <= 1 || seq % sampleEvery_ == 0;
    }

    /** Register one channel; returns its record id. */
    int registerChannel(const std::string &name, int src_part,
                        int dst_part);

    /** Channel table (ids are indices). */
    std::vector<TokenChannelInfo> channels() const;

    /** Producer side: a sampled token entered the channel. */
    void onEnqueue(int channel, uint64_t seq, double produce_ns,
                   double depart_ns, double ready_ns,
                   double flight_ns, double penalty_ns);

    /** Consumer side: a NAK-driven retransmission was scheduled for
     *  a sampled token; its visibility moves to now + @p delay_ns. */
    void onNak(int channel, uint64_t seq, double now,
               double delay_ns);

    /** Consumer side: the fireFSM retired a sampled token while
     *  firing target cycle @p target_cycle (TokenRecord::kNoCycle
     *  when unknown). */
    void onRetire(int channel, uint64_t seq, double now,
                  uint64_t target_cycle);

    /** Move out every completed (fired) record, oldest first. */
    std::vector<TokenRecord> drainFired();

    /** Sampled tokens that got a record. */
    uint64_t
    recordsCreated() const
    {
        std::lock_guard<std::mutex> lock(mtx_);
        return created_;
    }

    /** Completed records handed out via drainFired(). */
    uint64_t
    recordsDrained() const
    {
        std::lock_guard<std::mutex> lock(mtx_);
        return drained_;
    }

    /** Sampled tokens dropped because the buffer bound was hit. */
    uint64_t
    recordsDropped() const
    {
        std::lock_guard<std::mutex> lock(mtx_);
        return dropped_;
    }

    /** Records currently buffered (pending + completed). */
    size_t
    buffered() const
    {
        std::lock_guard<std::mutex> lock(mtx_);
        return pending_.size() + completed_.size();
    }

  private:
    static uint64_t
    key(int channel, uint64_t seq)
    {
        return (uint64_t(uint32_t(channel)) << 40) ^ seq;
    }

    unsigned sampleEvery_;
    size_t capacity_;
    mutable std::mutex mtx_;
    std::vector<TokenChannelInfo> channels_;
    std::unordered_map<uint64_t, TokenRecord> pending_;
    std::vector<TokenRecord> completed_;
    uint64_t created_ = 0;
    uint64_t drained_ = 0;
    uint64_t dropped_ = 0;
};

/** Stream-header identity of a run (fireaxe.stream.v1). */
struct StreamRunInfo
{
    std::string runLabel;
    uint64_t planHash = 0;
    /** Design+plan content hash (platform::contentHash) — the same
     *  64-bit identity bench rows and the service cache key on. */
    uint64_t artifactHash = 0;
    std::string backend;
    std::string engine;
    unsigned workers = 0;
    /** Requested token batch depth (ExecConfig::batchDepth); 1 =
     *  classic per-cycle tokens. */
    unsigned batchDepth = 1;
    unsigned sampleEvery = 1;
    /** Index = partition id. */
    std::vector<std::string> partitions;
    std::vector<TokenChannelInfo> channels;
};

/** End-of-run (or per-finalize) accounting line. */
struct StreamSummary
{
    double hostTimeNs = 0.0;
    uint64_t targetCycle = 0;
    uint64_t tokenRecords = 0;        ///< streamed so far
    uint64_t tokenRecordsDropped = 0; ///< collector buffer overflows
    uint64_t traceEventsDropped = 0;  ///< Tracer ring wraparound
    bool deadlocked = false;
};

/**
 * Periodic JSONL exporter ("fireaxe.stream.v1"): one JSON object per
 * line — a header with the run identity and channel table, then
 * interleaved "tokens" chunks and "metrics" snapshots, closed by one
 * or more "summary" lines (the last one is authoritative; resumed
 * runs append another). The writer never buffers more than one line.
 */
class StreamWriter
{
  public:
    explicit StreamWriter(std::ostream &os) : os_(os) {}

    void writeHeader(const StreamRunInfo &info);
    void writeTokens(const std::vector<TokenRecord> &records);
    void writeMetrics(const MetricsSnapshot &snap,
                      double host_time_ns, uint64_t target_cycle);
    void writeSummary(const StreamSummary &summary);

    uint64_t linesWritten() const { return lines_; }

  private:
    std::ostream &os_;
    uint64_t lines_ = 0;
};

} // namespace fireaxe::obs

#endif // FIREAXE_OBS_TOKENTRACE_HH
