/**
 * @file
 * Telemetry bundle: one object owning the metrics registry, the
 * event tracer, and the per-channel probes of a simulation, plus the
 * configuration every bench and test uses to opt in uniformly
 * (platform::MultiFpgaSim::setTelemetry).
 *
 * Everything defaults to off: a MultiFpgaSim without telemetry pays
 * only null-pointer checks on the hot paths.
 */

#ifndef FIREAXE_OBS_TELEMETRY_HH
#define FIREAXE_OBS_TELEMETRY_HH

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hh"
#include "obs/probe.hh"
#include "obs/tokentrace.hh"
#include "obs/trace.hh"

namespace fireaxe::obs {

struct TelemetryConfig
{
    /** Collect registry metrics (counters/gauges/histograms). */
    bool metrics = true;
    /** Collect trace events (ring buffer, Chrome JSON export). */
    bool tracing = false;
    /** Trace ring-buffer capacity (events); oldest overwritten. */
    size_t traceCapacity = Tracer::kDefaultCapacity;
    /** Default histogram reservoir cap (samples). */
    size_t histogramReservoirCap = Histogram::kDefaultCap;

    /**
     * Simulated-host-time interval between progress reports (ns);
     * 0 disables the reporter. Each report line carries the target
     * cycle, sim rate, per-partition FMR, wall-clock rate + ETA, and
     * a channel occupancy snapshot.
     */
    double progressIntervalNs = 0.0;
    /** Progress report sink; null = std::cerr. */
    std::ostream *progressOut = nullptr;

    /** Simulated-host-time interval between per-partition FMR /
     *  sim-rate samples (ns); 0 = end-of-run values only. */
    double fmrSampleIntervalNs = 100000.0;

    /** Collect causal token records (1-in-tokenSampleEvery tokens
     *  stamped through their lifecycle; see obs/tokentrace.hh).
     *  Implied by a non-empty streamPath. */
    bool tokenTrace = false;
    /** Token sampling period (1 = every token). */
    unsigned tokenSampleEvery = 64;
    /** Token-record buffer bound (records beyond it are dropped and
     *  counted; streaming drains the buffer periodically). */
    size_t tokenTraceCapacity = TokenTraceCollector::kDefaultCapacity;

    /** Stream an incremental JSONL telemetry export every this many
     *  target cycles (0 with a streamPath = a default cadence chosen
     *  by the executor). */
    uint64_t streamEveryCycles = 0;
    /** JSONL stream destination; empty = no streaming. The
     *  FIREAXE_STREAM environment variable provides a default. */
    std::string streamPath;
    /**
     * Caller-owned JSONL stream destination; non-null enables
     * streaming (taking precedence over streamPath) and must outlive
     * the simulation. This is the seam the service daemon uses to
     * forward a job's telemetry lines over its client socket
     * incrementally instead of through a file.
     */
    std::ostream *streamSink = nullptr;
    /** Run label recorded in the stream header (target name). */
    std::string runLabel;

    /** Everything on, for tests and one-liners. */
    static TelemetryConfig
    full(double progress_interval_ns = 0.0)
    {
        TelemetryConfig cfg;
        cfg.metrics = true;
        cfg.tracing = true;
        cfg.progressIntervalNs = progress_interval_ns;
        return cfg;
    }
};

class Telemetry
{
  public:
    explicit Telemetry(const TelemetryConfig &cfg);

    const TelemetryConfig &config() const { return cfg_; }

    /** nullptr when metrics collection is disabled. */
    MetricsRegistry *registry() { return registry_.get(); }
    const MetricsRegistry *registry() const { return registry_.get(); }

    /** nullptr when tracing is disabled. */
    Tracer *tracer() { return tracer_.get(); }
    const Tracer *tracer() const { return tracer_.get(); }

    /** nullptr when token-level causal tracing is disabled. */
    TokenTraceCollector *tokenTrace() { return tokenTrace_.get(); }
    const TokenTraceCollector *
    tokenTrace() const
    {
        return tokenTrace_.get();
    }

    std::ostream &
    progressOut() const
    {
        return cfg_.progressOut ? *cfg_.progressOut : std::cerr;
    }

    /** Create (and own) a probe for one channel. */
    ChannelProbe *makeChannelProbe(const std::string &name,
                                   int src_part, int dst_part);

  private:
    TelemetryConfig cfg_;
    std::unique_ptr<MetricsRegistry> registry_;
    std::unique_ptr<Tracer> tracer_;
    std::unique_ptr<TokenTraceCollector> tokenTrace_;
    std::vector<std::unique_ptr<ChannelProbe>> probes_;
};

} // namespace fireaxe::obs

#endif // FIREAXE_OBS_TELEMETRY_HH
