/**
 * @file
 * Low-overhead event tracer with a bounded ring buffer and Chrome
 * trace_event JSON export.
 *
 * Events are timestamped on the *simulated host timeline* (ns), the
 * same clock the executor schedules on, so a trace lines up exactly
 * with the token mechanics: per-partition fireFSM phases become
 * horizontal spans, reliability events (retransmits, NAKs, fault
 * injections) become instants on the emitting partition's track.
 * Wall-clock scoped spans (Tracer::span) are also available for
 * profiling host-side phases of a bench.
 *
 * The buffer is a fixed-capacity ring: when full, the oldest events
 * are overwritten, so a trace always holds the *last* capacity()
 * events of the run and memory stays bounded no matter how long the
 * simulation runs. totalEmitted() exposes how many events were seen
 * overall (and thus how many were dropped).
 *
 * writeChromeJson() emits the Trace Event Format understood by
 * about://tracing and https://ui.perfetto.dev: partitions map to
 * pids (named via process-name metadata), timestamps to microseconds.
 *
 * The tracer is safe under concurrent emitters (the parallel
 * executor's partition workers all trace into one ring): every
 * emit/export path takes a short internal lock. Tracing is off the
 * hot path by default and a bounded ring keeps the critical section
 * to a slot assignment, so contention only matters at pathological
 * trace rates.
 */

#ifndef FIREAXE_OBS_TRACE_HH
#define FIREAXE_OBS_TRACE_HH

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace fireaxe::obs {

/** One trace event (Chrome trace_event phases "X" and "i"). */
struct TraceEvent
{
    std::string name;
    std::string cat;
    char ph = 'i';     ///< 'X' complete, 'i' instant
    double tsNs = 0.0; ///< start timestamp (ns)
    double durNs = 0.0; ///< duration for 'X' events (ns)
    int pid = 0;       ///< partition index
    int tid = 0;       ///< thread (FAME-5 thread or 0)
    std::string args;  ///< pre-encoded JSON object, may be empty
};

class Tracer
{
  public:
    static constexpr size_t kDefaultCapacity = 1 << 15;

    explicit Tracer(size_t capacity = kDefaultCapacity);

    size_t capacity() const { return cap_; }

    /** Events currently held (<= capacity). */
    size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mtx_);
        return ring_.size();
    }

    /** Events emitted over the tracer's lifetime. */
    uint64_t
    totalEmitted() const
    {
        std::lock_guard<std::mutex> lock(mtx_);
        return total_;
    }

    /** Oldest events overwritten by ring wraparound. */
    uint64_t
    dropped() const
    {
        std::lock_guard<std::mutex> lock(mtx_);
        return total_ - ring_.size();
    }

    /** Has the ring ever wrapped (i.e. is the trace truncated)? A
     *  one-time warning is also emitted at the first overwrite. */
    bool
    wrapped() const
    {
        std::lock_guard<std::mutex> lock(mtx_);
        return wrapped_;
    }

    /** Instant event at simulated host time @p ts_ns. */
    void instant(std::string name, std::string cat, double ts_ns,
                 int pid = 0, int tid = 0, std::string args = {});

    /** Complete (duration) event on the simulated host timeline. */
    void complete(std::string name, std::string cat, double ts_ns,
                  double dur_ns, int pid = 0, int tid = 0,
                  std::string args = {});

    /** Display name of a pid track (partition name). */
    void setProcessName(int pid, std::string name);

    /**
     * RAII wall-clock span: measures real elapsed time from
     * construction to destruction and emits one complete event
     * (category "host"). For host-side profiling of bench phases.
     */
    class Span
    {
      public:
        Span(Tracer *tracer, std::string name, int pid, int tid);
        Span(Span &&other) noexcept;
        Span &operator=(Span &&) = delete;
        Span(const Span &) = delete;
        ~Span();

      private:
        Tracer *tracer_;
        std::string name_;
        int pid_;
        int tid_;
        std::chrono::steady_clock::time_point start_;
    };

    Span span(std::string name, int pid = 0, int tid = 0)
    {
        return Span(this, std::move(name), pid, tid);
    }

    /** Visit held events oldest-first (wraparound-corrected). */
    void forEachOrdered(
        const std::function<void(const TraceEvent &)> &fn) const;

    /** Chrome trace_event JSON ({"traceEvents":[...]}). */
    void writeChromeJson(std::ostream &os) const;

    void clear();

  private:
    friend class Span;

    void push(TraceEvent ev);
    /** ns since tracer construction on the wall clock. */
    double wallNowNs() const;

    size_t cap_;
    mutable std::mutex mtx_;
    std::vector<TraceEvent> ring_;
    size_t next_ = 0; ///< overwrite cursor once the ring is full
    uint64_t total_ = 0;
    bool wrapped_ = false;
    std::map<int, std::string> processNames_;
    std::chrono::steady_clock::time_point epoch_;
};

} // namespace fireaxe::obs

#endif // FIREAXE_OBS_TRACE_HH
