#include "obs/jsonparse.hh"

#include <cctype>
#include <cstdlib>

namespace fireaxe::obs {

namespace {

class Parser
{
  public:
    Parser(std::string_view text, std::string &error)
        : text_(text), error_(error)
    {}

    bool
    parse(JsonValue &out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing garbage after document");
        return true;
    }

  private:
    bool
    fail(const std::string &msg)
    {
        error_ = "offset " + std::to_string(pos_) + ": " + msg;
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool
    eat(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    expectLiteral(std::string_view lit)
    {
        if (text_.substr(pos_, lit.size()) != lit)
            return fail("bad literal");
        pos_ += lit.size();
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        switch (c) {
          case '{':
            return parseObject(out);
          case '[':
            return parseArray(out);
          case '"':
            out.kind = JsonValue::Kind::String;
            return parseString(out.str);
          case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return expectLiteral("true");
          case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return expectLiteral("false");
          case 'n':
            out.kind = JsonValue::Kind::Null;
            return expectLiteral("null");
          default:
            return parseNumber(out);
        }
    }

    bool
    parseObject(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos_; // '{'
        skipWs();
        if (eat('}'))
            return true;
        while (true) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (!eat(':'))
                return fail("expected ':' after key");
            skipWs();
            JsonValue v;
            if (!parseValue(v))
                return false;
            out.obj.emplace(std::move(key), std::move(v));
            skipWs();
            if (eat(','))
                continue;
            if (eat('}'))
                return true;
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    parseArray(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos_; // '['
        skipWs();
        if (eat(']'))
            return true;
        while (true) {
            skipWs();
            JsonValue v;
            if (!parseValue(v))
                return false;
            out.arr.push_back(std::move(v));
            skipWs();
            if (eat(','))
                continue;
            if (eat(']'))
                return true;
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    parseString(std::string &out)
    {
        ++pos_; // opening quote
        out.clear();
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= unsigned(h - 'A' + 10);
                    else
                        return fail("bad \\u escape digit");
                }
                // The telemetry writer only emits \u00XX control
                // escapes; anything wider degrades to '?'.
                out += code < 0x100 ? char(code) : '?';
                break;
              }
              default:
                return fail("unknown escape character");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue &out)
    {
        size_t start = pos_;
        if (pos_ < text_.size() &&
            (text_[pos_] == '-' || text_[pos_] == '+')) {
            ++pos_;
        }
        bool digits = false;
        auto digitRun = [&] {
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
                digits = true;
            }
        };
        digitRun();
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            digitRun();
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '-' || text_[pos_] == '+')) {
                ++pos_;
            }
            digitRun();
        }
        if (!digits) {
            pos_ = start;
            return fail("expected a value");
        }
        std::string num(text_.substr(start, pos_ - start));
        out.kind = JsonValue::Kind::Number;
        out.number = std::strtod(num.c_str(), nullptr);
        return true;
    }

    std::string_view text_;
    std::string &error_;
    size_t pos_ = 0;
};

} // namespace

bool
parseJson(std::string_view text, JsonValue &out, std::string &error)
{
    out = JsonValue();
    error.clear();
    return Parser(text, error).parse(out);
}

} // namespace fireaxe::obs
