/**
 * @file
 * Durable, crash-consistent snapshot storage for partitioned runs.
 *
 * A snapshot is a *generation*: one CRC-framed shard file per
 * partition (the partition's simulator checkpoint plus its LI-BDN FSM
 * state), one executor shard (host-time state and every channel's
 * in-flight/retransmit state), and a content-addressed manifest that
 * names them all. The commit protocol makes a crash at any point
 * harmless to the previous snapshot:
 *
 *  1. every shard of generation N is written under a name that embeds
 *     N (`part3.g7.shard`) — generation N-1's files are never opened;
 *  2. the manifest is written to a temp file and published with an
 *     atomic std::rename() onto `manifest.fasnap` — the single commit
 *     point;
 *  3. only after the rename do stale generations get pruned
 *     (best-effort; leftover files are garbage, never corruption).
 *
 * A reader always starts from the manifest: it names the committed
 * generation's shards with their sizes and CRC-32s, plus the design
 * hash, plan hash, evaluation engine, fault seed and target cycle the
 * snapshot was taken under — so a stale or foreign snapshot is
 * rejected with a structured error before any state is touched.
 */

#ifndef FIREAXE_RECOVERY_SNAPSHOT_HH
#define FIREAXE_RECOVERY_SNAPSHOT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace fireaxe::recovery {

/** CRC-32 (IEEE 802.3, reflected 0xEDB88320) over raw bytes — the
 *  same polynomial the token channels use for payloads. */
uint32_t bytesCrc(const std::string &bytes);

/** FNV-1a over raw bytes (content addressing for design/plan). */
uint64_t fnv1a(const std::string &bytes);
/** Fold one more 64-bit value into a running FNV-1a hash. */
uint64_t fnv1aMix(uint64_t h, uint64_t v);

/** One shard file of a committed generation. */
struct ShardInfo
{
    std::string file; ///< name relative to the snapshot directory
    uint64_t bytes = 0;
    uint32_t crc = 0;
};

/** The committed state of a snapshot directory. */
struct Manifest
{
    uint64_t generation = 0;
    /** FNV-1a over the printed partition circuits. */
    uint64_t designHash = 0;
    /** FNV-1a over the plan structure (channels, capacities,
     *  partition names, mode, FAME-5 threads). */
    uint64_t planHash = 0;
    /** Evaluation engine the snapshot was taken under (informational:
     *  both engines are bit-exact, so cross-engine restore is legal). */
    std::string engine;
    /** Fault-injection seed (0 when faults are off). */
    uint64_t faultSeed = 0;
    /** Minimum target cycle across partitions at the cut. */
    uint64_t targetCycle = 0;
    size_t numPartitions = 0;
    size_t numChannels = 0;
    /** Partition shards [0, numPartitions), then the executor shard. */
    std::vector<ShardInfo> shards;
};

/**
 * Manages one snapshot directory. All methods return structured
 * errors rather than throwing; a failed operation never damages the
 * previously committed generation.
 */
class SnapshotStore
{
  public:
    explicit SnapshotStore(std::string dir) : dir_(std::move(dir)) {}

    const std::string &dir() const { return dir_; }

    /** Is there a committed manifest at all? */
    bool hasSnapshot() const;

    /** Read and validate the committed manifest. */
    bool loadManifest(Manifest &out, std::string &error) const;

    /**
     * Commit a new generation: @p manifest describes the snapshot
     * (shards are filled in here from @p shard_payloads); the
     * generation number is chosen as previous + 1. Returns the total
     * bytes written via @p bytes_out. On failure the previous
     * generation remains committed and readable.
     */
    bool commit(Manifest &manifest,
                const std::vector<std::string> &shard_payloads,
                uint64_t &bytes_out, std::string &error);

    /** Read shard @p idx of @p manifest, verifying size and CRC. */
    bool readShard(const Manifest &manifest, size_t idx,
                   std::string &payload, std::string &error) const;

  private:
    std::string shardPath(const std::string &file) const;
    std::string manifestPath() const;

    std::string dir_;
};

} // namespace fireaxe::recovery

#endif // FIREAXE_RECOVERY_SNAPSHOT_HH
