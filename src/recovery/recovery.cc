#include "recovery/recovery.hh"

#include <sstream>

#include "firrtl/printer.hh"
#include "recovery/snapshot.hh"

namespace fireaxe::recovery {

uint64_t
hashCircuit(const firrtl::Circuit &circuit)
{
    std::ostringstream os;
    firrtl::printCircuit(os, circuit);
    return fnv1a(os.str());
}

} // namespace fireaxe::recovery
