/**
 * @file
 * Coordinated recovery points for partitioned simulations.
 *
 * A RecoveryPoint is an in-memory consistent cut of a whole
 * multi-FPGA run, captured at a quiesce point (between
 * MultiFpgaSim::run() calls both backends are fully quiesced: the
 * sequential loop is between events, the parallel engine has joined
 * its workers and left concurrent channel mode). It holds, per
 * partition, the simulator checkpoint and LI-BDN FSM state, and per
 * channel the full in-flight/retransmit/fault-RNG state — everything
 * needed to rewind the world, durably persist it (recovery::
 * SnapshotStore), or restart a single condemned partition while its
 * peers keep their state.
 *
 * The acquire/rollback seam is deliberately a value type: the future
 * optimistic (Time Warp) scheduler of ROADMAP item 1 needs to hold
 * several cuts at once and discard them in O(1).
 */

#ifndef FIREAXE_RECOVERY_RECOVERY_HH
#define FIREAXE_RECOVERY_RECOVERY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "firrtl/ir.hh"

namespace fireaxe::recovery {

/** One channel's state at the cut. */
struct ChannelCut
{
    /** Full channel checkpoint (TokenChannel::saveCkpt format). */
    std::string ckpt;
    /** Producer-side tokens accepted over the channel's lifetime. */
    uint64_t enqCount = 0;
    /** Consumer-side tokens delivered over the channel's lifetime. */
    uint64_t deqCount = 0;
    /** Highest sequence number delivered in order. */
    uint64_t lastDelivered = 0;
    /** The executor had failed this channel over to the fallback
     *  transport at the cut. */
    bool failedOver = false;
};

/** One partition's state at the cut. */
struct PartitionCut
{
    /** rtlsim::Simulator::saveCheckpoint payload. */
    std::string simCkpt;
    /** libdn::LIBDNModel::saveFsm payload. */
    std::string fsmCkpt;
    /** The partition's target cycle at the cut. */
    uint64_t targetCycle = 0;
};

/** A consistent cut of a whole partitioned run. */
struct RecoveryPoint
{
    bool valid = false;
    double nowNs = 0.0;
    double lastProgressNs = 0.0;
    std::vector<double> nextTickNs;
    uint64_t transientStallEvents = 0;
    unsigned linkFailovers = 0;
    /** Minimum target cycle across partitions at the cut. */
    uint64_t minTargetCycle = 0;
    std::vector<PartitionCut> partitions;
    std::vector<ChannelCut> channels;
};

/** Content hash of one partition circuit (printed FIRRTL text). */
uint64_t hashCircuit(const firrtl::Circuit &circuit);

} // namespace fireaxe::recovery

#endif // FIREAXE_RECOVERY_RECOVERY_HH
