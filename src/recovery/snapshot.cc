#include "recovery/snapshot.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace fireaxe::recovery {

namespace fs = std::filesystem;

uint32_t
bytesCrc(const std::string &bytes)
{
    uint32_t crc = 0xFFFFFFFFu;
    for (unsigned char c : bytes) {
        crc ^= c;
        for (int k = 0; k < 8; ++k)
            crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
    }
    return ~crc;
}

uint64_t
fnv1a(const std::string &bytes)
{
    uint64_t h = 1469598103934665603ULL;
    for (unsigned char c : bytes) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

uint64_t
fnv1aMix(uint64_t h, uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xFF;
        h *= 1099511628211ULL;
    }
    return h;
}

std::string
SnapshotStore::shardPath(const std::string &file) const
{
    return dir_ + "/" + file;
}

std::string
SnapshotStore::manifestPath() const
{
    return dir_ + "/manifest.fasnap";
}

bool
SnapshotStore::hasSnapshot() const
{
    std::error_code ec;
    return fs::exists(manifestPath(), ec);
}

bool
SnapshotStore::loadManifest(Manifest &out, std::string &error) const
{
    std::ifstream is(manifestPath());
    if (!is) {
        error = "no snapshot manifest at " + manifestPath();
        return false;
    }
    std::string magic;
    unsigned version = 0;
    is >> magic >> version;
    if (magic != "fireaxe-snapshot-manifest" || version != 1) {
        error = "not a fireaxe snapshot manifest: " + manifestPath();
        return false;
    }
    Manifest m;
    size_t num_shards = 0;
    is >> m.generation >> m.designHash >> m.planHash >> m.engine >>
        m.faultSeed >> m.targetCycle >> m.numPartitions >>
        m.numChannels >> num_shards;
    if (!is) {
        error = "truncated snapshot manifest header";
        return false;
    }
    if (m.engine == "-") // placeholder for an empty engine name
        m.engine.clear();
    for (size_t i = 0; i < num_shards; ++i) {
        ShardInfo si;
        is >> si.file >> si.bytes >> si.crc;
        if (!is) {
            error = "truncated snapshot manifest shard list";
            return false;
        }
        m.shards.push_back(std::move(si));
    }
    if (m.shards.size() != m.numPartitions + 1) {
        error = "snapshot manifest shard count mismatch";
        return false;
    }
    out = std::move(m);
    error.clear();
    return true;
}

bool
SnapshotStore::commit(Manifest &manifest,
                      const std::vector<std::string> &shard_payloads,
                      uint64_t &bytes_out, std::string &error)
{
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec) {
        error = "cannot create snapshot directory " + dir_ + ": " +
                ec.message();
        return false;
    }

    uint64_t prev_gen = 0;
    if (hasSnapshot()) {
        Manifest prev;
        std::string prev_err;
        if (loadManifest(prev, prev_err))
            prev_gen = prev.generation;
        // An unreadable previous manifest is not fatal: we commit a
        // fresh generation next to whatever is there.
    }
    manifest.generation = prev_gen + 1;
    manifest.shards.clear();

    // 1. Shards, under generation-unique names: generation N-1's
    // files are never opened for writing, so a crash anywhere in
    // this loop leaves the committed snapshot untouched.
    bytes_out = 0;
    for (size_t i = 0; i < shard_payloads.size(); ++i) {
        ShardInfo si;
        si.file = (i + 1 == shard_payloads.size()
                       ? std::string("exec")
                       : "part" + std::to_string(i)) +
                  ".g" + std::to_string(manifest.generation) +
                  ".shard";
        si.bytes = shard_payloads[i].size();
        si.crc = bytesCrc(shard_payloads[i]);
        std::ofstream os(shardPath(si.file),
                         std::ios::binary | std::ios::trunc);
        os.write(shard_payloads[i].data(),
                 std::streamsize(shard_payloads[i].size()));
        os.flush();
        if (!os) {
            error = "failed to write snapshot shard " + si.file;
            return false;
        }
        bytes_out += si.bytes;
        manifest.shards.push_back(std::move(si));
    }

    // 2. Manifest to a temp name, then the atomic rename commit.
    std::ostringstream ms;
    ms << "fireaxe-snapshot-manifest 1\n";
    ms << manifest.generation << " " << manifest.designHash << " "
       << manifest.planHash << " "
       << (manifest.engine.empty() ? "-" : manifest.engine) << " "
       << manifest.faultSeed << " " << manifest.targetCycle << " "
       << manifest.numPartitions << " " << manifest.numChannels << " "
       << manifest.shards.size() << "\n";
    for (const auto &si : manifest.shards)
        ms << si.file << " " << si.bytes << " " << si.crc << "\n";

    std::string tmp = manifestPath() + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        os << ms.str();
        os.flush();
        if (!os) {
            error = "failed to write snapshot manifest temp file";
            return false;
        }
    }
    if (std::rename(tmp.c_str(), manifestPath().c_str()) != 0) {
        error = "failed to commit snapshot manifest (rename)";
        return false;
    }
    bytes_out += ms.str().size();

    // 3. Best-effort prune of superseded generations.
    std::string cur_tag =
        ".g" + std::to_string(manifest.generation) + ".";
    for (const auto &entry : fs::directory_iterator(dir_, ec)) {
        std::string name = entry.path().filename().string();
        if (name.size() > 6 &&
            name.compare(name.size() - 6, 6, ".shard") == 0 &&
            name.find(cur_tag) == std::string::npos)
            fs::remove(entry.path(), ec);
    }
    error.clear();
    return true;
}

bool
SnapshotStore::readShard(const Manifest &manifest, size_t idx,
                         std::string &payload,
                         std::string &error) const
{
    if (idx >= manifest.shards.size()) {
        error = "snapshot shard index out of range";
        return false;
    }
    const ShardInfo &si = manifest.shards[idx];
    std::ifstream is(shardPath(si.file), std::ios::binary);
    if (!is) {
        error = "missing snapshot shard " + si.file;
        return false;
    }
    std::ostringstream ss;
    ss << is.rdbuf();
    payload = ss.str();
    if (payload.size() != si.bytes) {
        error = "snapshot shard " + si.file + " truncated: " +
                std::to_string(payload.size()) + " of " +
                std::to_string(si.bytes) + " bytes";
        return false;
    }
    if (bytesCrc(payload) != si.crc) {
        error = "snapshot shard " + si.file + " failed its CRC check";
        return false;
    }
    error.clear();
    return true;
}

} // namespace fireaxe::recovery
