#include "passes/resources.hh"

#include <map>

#include "base/bits.hh"
#include "base/logging.hh"

namespace fireaxe::passes {

using firrtl::Circuit;
using firrtl::Expr;
using firrtl::ExprKind;
using firrtl::ExprPtr;
using firrtl::Module;

namespace {

/** LUT cost of one expression tree. Costs are per-bit heuristics:
 *  a 6-input LUT implements ~1 bit of add/compare, ~2-3 bits of
 *  plain logic, and multipliers cost quadratically (DSPs are not
 *  modelled separately; they show up as a large LUT-equivalent). */
uint64_t
exprLuts(const ExprPtr &e)
{
    uint64_t cost = 0;
    switch (e->kind) {
      case ExprKind::Ref:
      case ExprKind::Literal:
        break;
      case ExprKind::UnOp:
        cost = (e->args[0]->width + 2) / 3;
        break;
      case ExprKind::BinOp:
        switch (e->binOp) {
          case firrtl::BinOpKind::Add:
          case firrtl::BinOpKind::Sub:
            cost = e->width;
            break;
          case firrtl::BinOpKind::Mul:
            cost = uint64_t(e->args[0]->width) * e->args[1]->width / 2;
            break;
          case firrtl::BinOpKind::Div:
          case firrtl::BinOpKind::Rem:
            cost = uint64_t(e->args[0]->width) * e->args[1]->width;
            break;
          case firrtl::BinOpKind::Eq:
          case firrtl::BinOpKind::Neq:
          case firrtl::BinOpKind::Lt:
          case firrtl::BinOpKind::Leq:
          case firrtl::BinOpKind::Gt:
          case firrtl::BinOpKind::Geq:
            cost = std::max(e->args[0]->width, e->args[1]->width);
            break;
          case firrtl::BinOpKind::Shl:
          case firrtl::BinOpKind::Shr:
            // Dynamic barrel shifter: width * log2(width) muxes.
            cost = uint64_t(e->width) * bitsNeeded(e->width);
            break;
          default:
            cost = (e->width + 2) / 3;
            break;
        }
        break;
      case ExprKind::Mux:
        cost = (e->width + 1) / 2;
        break;
      case ExprKind::Bits:
      case ExprKind::Cat:
        break; // pure wiring
    }
    for (const auto &arg : e->args)
        cost += exprLuts(arg);
    return cost;
}

ResourceEstimate
moduleLocal(const Module &mod)
{
    ResourceEstimate est;
    for (const auto &r : mod.regs)
        est.flipFlops += r.width;
    for (const auto &m : mod.mems) {
        uint64_t bits = uint64_t(m.depth) * m.width;
        est.brams += ceilDiv(bits, 36 * 1024);
        // Address decode / read mux overhead for small memories that
        // would be LUTRAM in practice.
        est.luts += ceilDiv(bits, 64);
    }
    for (const auto &c : mod.connects)
        est.luts += exprLuts(c.rhs);
    return est;
}

} // namespace

ResourceEstimate
estimateResources(const Circuit &circuit, const std::string &module_name)
{
    // Bottom-up accumulation over the instantiation DAG, memoized.
    std::map<std::string, ResourceEstimate> memo;
    for (const auto &name : circuit.topoOrder()) {
        const Module *m = circuit.findModule(name);
        ResourceEstimate est = moduleLocal(*m);
        for (const auto &inst : m->instances) {
            auto it = memo.find(inst.moduleName);
            if (it != memo.end())
                est += it->second;
        }
        memo[name] = est;
    }
    auto it = memo.find(module_name);
    if (it == memo.end()) {
        // Module not reachable from top: analyze its subtree directly.
        const Module *m = circuit.findModule(module_name);
        if (!m)
            fatal("estimateResources: unknown module '", module_name,
                  "'");
        ResourceEstimate est = moduleLocal(*m);
        for (const auto &inst : m->instances)
            est += estimateResources(circuit, inst.moduleName);
        return est;
    }
    return it->second;
}

ResourceEstimate
estimateResources(const Circuit &circuit)
{
    return estimateResources(circuit, circuit.topName);
}

} // namespace fireaxe::passes
