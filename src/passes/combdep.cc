#include "passes/combdep.hh"

#include <algorithm>
#include <deque>
#include <functional>

#include "base/logging.hh"

namespace fireaxe::passes {

using firrtl::Circuit;
using firrtl::Module;
using firrtl::PortDir;
using firrtl::SignalKind;

CombDepAnalysis::CombDepAnalysis(const Circuit &circuit)
{
    // Bottom-up: children are analyzed before their parents so that
    // instance edges can be derived from child summaries.
    for (const auto &name : circuit.topoOrder())
        analyzeModule(circuit, *circuit.findModule(name));
}

void
CombDepAnalysis::analyzeModule(const Circuit &circuit, const Module &mod)
{
    ModuleGraph graph;

    auto addEdge = [&](const std::string &from, const std::string &to) {
        graph.fwd[from].insert(to);
    };

    // Connect statements: the sink depends on every referenced source,
    // except when the sink is a register (sequential barrier) or a
    // memory write-port signal (writes land on the next clock edge).
    for (const auto &c : mod.connects) {
        SignalKind lhs_kind = mod.resolve(circuit, c.lhs).kind;
        bool sequential_sink =
            lhs_kind == SignalKind::Reg ||
            lhs_kind == SignalKind::MemWAddr ||
            lhs_kind == SignalKind::MemWData ||
            lhs_kind == SignalKind::MemWEn;
        if (sequential_sink)
            continue;
        std::vector<std::string> refs;
        collectRefs(c.rhs, refs);
        for (const auto &r : refs) {
            SignalKind src_kind = mod.resolve(circuit, r).kind;
            // Registers and memory read data... rdata IS combinational
            // (comb-read memory); registers are not sources of comb
            // dependence on inputs by themselves, but an edge from a
            // reg hurts nothing: regs have no incoming comb edges.
            (void)src_kind;
            addEdge(r, c.lhs);
        }
    }

    // Memories: combinational read path raddr -> rdata.
    for (const auto &m : mod.mems)
        addEdge(m.name + ".raddr", m.name + ".rdata");

    // Instances: edges from the child's input ports to the output
    // ports that the child's summary says are combinationally
    // dependent on them.
    for (const auto &inst : mod.instances) {
        const PortDeps &child = forModule(inst.moduleName);
        for (const auto &[out, ins] : child.deps) {
            for (const auto &in : ins) {
                addEdge(inst.name + "." + in, inst.name + "." + out);
            }
        }
    }

    // Detect combinational loops (would make the module
    // unsimulatable) with an iterative DFS.
    {
        std::map<std::string, int> state; // 0 new, 1 visiting, 2 done
        std::function<void(const std::string &)> dfs =
            [&](const std::string &node) {
                state[node] = 1;
                auto it = graph.fwd.find(node);
                if (it != graph.fwd.end()) {
                    for (const auto &next : it->second) {
                        int s = state.count(next) ? state[next] : 0;
                        if (s == 1) {
                            fatal("module '", mod.name,
                                  "': combinational loop through '",
                                  node, "' -> '", next, "'");
                        }
                        if (s == 0)
                            dfs(next);
                    }
                }
                state[node] = 2;
            };
        for (const auto &[node, _] : graph.fwd) {
            if (!state.count(node) || state[node] == 0)
                dfs(node);
        }
    }

    // Forward BFS from each input port; record reached output ports.
    PortDeps summary;
    for (const auto &p : mod.ports)
        if (p.dir == PortDir::Output)
            summary.deps[p.name]; // ensure entry exists (maybe empty)

    for (const auto &p : mod.ports) {
        if (p.dir != PortDir::Input)
            continue;
        std::set<std::string> seen{p.name};
        std::deque<std::string> work{p.name};
        while (!work.empty()) {
            std::string cur = work.front();
            work.pop_front();
            auto it = graph.fwd.find(cur);
            if (it == graph.fwd.end())
                continue;
            for (const auto &next : it->second) {
                if (seen.insert(next).second)
                    work.push_back(next);
            }
        }
        for (const auto &q : mod.ports) {
            if (q.dir == PortDir::Output && seen.count(q.name))
                summary.deps[q.name].insert(p.name);
        }
    }

    graphs_[mod.name] = std::move(graph);
    summaries_[mod.name] = std::move(summary);
}

const PortDeps &
CombDepAnalysis::forModule(const std::string &name) const
{
    auto it = summaries_.find(name);
    if (it == summaries_.end())
        fatal("no combinational summary for module '", name, "'");
    return it->second;
}

std::vector<std::string>
CombDepAnalysis::combPath(const std::string &module_name,
                          const std::string &from_input,
                          const std::string &to_output) const
{
    auto git = graphs_.find(module_name);
    if (git == graphs_.end())
        fatal("no combinational graph for module '", module_name, "'");
    const ModuleGraph &graph = git->second;

    // BFS with parent tracking for a shortest diagnostic path.
    std::map<std::string, std::string> parent;
    std::deque<std::string> work{from_input};
    parent[from_input] = "";
    while (!work.empty()) {
        std::string cur = work.front();
        work.pop_front();
        if (cur == to_output) {
            std::vector<std::string> path;
            for (std::string n = cur; !n.empty(); n = parent[n])
                path.push_back(n);
            std::reverse(path.begin(), path.end());
            return path;
        }
        auto it = graph.fwd.find(cur);
        if (it == graph.fwd.end())
            continue;
        for (const auto &next : it->second) {
            if (!parent.count(next)) {
                parent[next] = cur;
                work.push_back(next);
            }
        }
    }
    return {};
}

} // namespace fireaxe::passes
