#include "passes/combdep.hh"

#include <algorithm>
#include <deque>
#include <functional>

#include "base/logging.hh"

namespace fireaxe::passes {

using firrtl::Circuit;
using firrtl::Module;
using firrtl::PortDir;
using firrtl::SignalKind;

CombDepAnalysis::CombDepAnalysis(const Circuit &circuit, LoopPolicy policy)
    : policy_(policy)
{
    // Bottom-up: children are analyzed before their parents so that
    // instance edges can be derived from child summaries.
    for (const auto &name : circuit.topoOrder())
        analyzeModule(circuit, *circuit.findModule(name));
}

void
CombDepAnalysis::analyzeModule(const Circuit &circuit, const Module &mod)
{
    ModuleGraph graph;

    auto addEdge = [&](const std::string &from, const std::string &to) {
        graph.fwd[from].insert(to);
    };

    // Connect statements: the sink depends on every referenced source,
    // except when the sink is a register (sequential barrier) or a
    // memory write-port signal (writes land on the next clock edge).
    for (const auto &c : mod.connects) {
        SignalKind lhs_kind = mod.resolve(circuit, c.lhs).kind;
        bool sequential_sink =
            lhs_kind == SignalKind::Reg ||
            lhs_kind == SignalKind::MemWAddr ||
            lhs_kind == SignalKind::MemWData ||
            lhs_kind == SignalKind::MemWEn;
        if (sequential_sink)
            continue;
        std::vector<std::string> refs;
        collectRefs(c.rhs, refs);
        for (const auto &r : refs) {
            SignalKind src_kind = mod.resolve(circuit, r).kind;
            // Registers and memory read data... rdata IS combinational
            // (comb-read memory); registers are not sources of comb
            // dependence on inputs by themselves, but an edge from a
            // reg hurts nothing: regs have no incoming comb edges.
            (void)src_kind;
            addEdge(r, c.lhs);
        }
    }

    // Memories: combinational read path raddr -> rdata.
    for (const auto &m : mod.mems)
        addEdge(m.name + ".raddr", m.name + ".rdata");

    // Instances: edges from the child's input ports to the output
    // ports that the child's summary says are combinationally
    // dependent on them.
    for (const auto &inst : mod.instances) {
        const PortDeps &child = forModule(inst.moduleName);
        for (const auto &[out, ins] : child.deps) {
            for (const auto &in : ins) {
                addEdge(inst.name + "." + in, inst.name + "." + out);
            }
        }
    }

    // Detect combinational loops (would make the module
    // unsimulatable) as non-trivial SCCs of the dependency graph,
    // using an iterative Tarjan so deep netlists can't blow the call
    // stack. Self-edges count as loops too.
    {
        struct NodeInfo
        {
            int index = -1;
            int lowlink = -1;
            bool onStack = false;
        };
        std::map<std::string, NodeInfo> info;
        std::vector<std::string> sccStack;
        int nextIndex = 0;

        struct Frame
        {
            std::string node;
            std::set<std::string>::const_iterator it, end;
        };

        auto strongconnect = [&](const std::string &root) {
            static const std::set<std::string> kEmpty;
            std::vector<Frame> stack;
            auto push = [&](const std::string &node) {
                NodeInfo &ni = info[node];
                ni.index = ni.lowlink = nextIndex++;
                ni.onStack = true;
                sccStack.push_back(node);
                auto git = graph.fwd.find(node);
                const auto &succ =
                    git != graph.fwd.end() ? git->second : kEmpty;
                stack.push_back({node, succ.begin(), succ.end()});
            };
            push(root);
            while (!stack.empty()) {
                Frame &f = stack.back();
                if (f.it != f.end) {
                    const std::string &next = *f.it++;
                    NodeInfo &nni = info[next];
                    if (nni.index < 0) {
                        push(next);
                    } else if (nni.onStack) {
                        NodeInfo &ni = info[f.node];
                        ni.lowlink = std::min(ni.lowlink, nni.index);
                    }
                    continue;
                }
                NodeInfo &ni = info[f.node];
                if (ni.lowlink == ni.index) {
                    // Root of an SCC: pop it off.
                    std::vector<std::string> comp;
                    for (;;) {
                        std::string w = sccStack.back();
                        sccStack.pop_back();
                        info[w].onStack = false;
                        comp.push_back(w);
                        if (w == f.node)
                            break;
                    }
                    bool self_edge = comp.size() == 1 &&
                        graph.fwd.count(comp[0]) &&
                        graph.fwd.at(comp[0]).count(comp[0]);
                    if (comp.size() > 1 || self_edge) {
                        std::reverse(comp.begin(), comp.end());
                        if (policy_ == LoopPolicy::Fatal) {
                            fatal("module '", mod.name,
                                  "': combinational loop through '",
                                  comp.front(), "' -> '",
                                  comp.size() > 1 ? comp[1] : comp[0],
                                  "'");
                        }
                        loops_.push_back({mod.name, std::move(comp)});
                    }
                }
                std::string done = f.node;
                stack.pop_back();
                if (!stack.empty()) {
                    NodeInfo &pi = info[stack.back().node];
                    pi.lowlink = std::min(pi.lowlink, info[done].lowlink);
                }
            }
        };

        for (const auto &[node, _] : graph.fwd)
            if (info[node].index < 0)
                strongconnect(node);
    }

    // Forward BFS from each input port; record reached output ports.
    PortDeps summary;
    for (const auto &p : mod.ports)
        if (p.dir == PortDir::Output)
            summary.deps[p.name]; // ensure entry exists (maybe empty)

    for (const auto &p : mod.ports) {
        if (p.dir != PortDir::Input)
            continue;
        std::set<std::string> seen{p.name};
        std::deque<std::string> work{p.name};
        while (!work.empty()) {
            std::string cur = work.front();
            work.pop_front();
            auto it = graph.fwd.find(cur);
            if (it == graph.fwd.end())
                continue;
            for (const auto &next : it->second) {
                if (seen.insert(next).second)
                    work.push_back(next);
            }
        }
        for (const auto &q : mod.ports) {
            if (q.dir == PortDir::Output && seen.count(q.name))
                summary.deps[q.name].insert(p.name);
        }
    }

    graphs_[mod.name] = std::move(graph);
    summaries_[mod.name] = std::move(summary);
}

const PortDeps &
CombDepAnalysis::forModule(const std::string &name) const
{
    auto it = summaries_.find(name);
    if (it == summaries_.end())
        fatal("no combinational summary for module '", name, "'");
    return it->second;
}

std::vector<std::string>
CombDepAnalysis::combPath(const std::string &module_name,
                          const std::string &from_input,
                          const std::string &to_output) const
{
    auto git = graphs_.find(module_name);
    if (git == graphs_.end())
        fatal("no combinational graph for module '", module_name, "'");
    const ModuleGraph &graph = git->second;

    // BFS with parent tracking for a shortest diagnostic path.
    std::map<std::string, std::string> parent;
    std::deque<std::string> work{from_input};
    parent[from_input] = "";
    while (!work.empty()) {
        std::string cur = work.front();
        work.pop_front();
        if (cur == to_output) {
            std::vector<std::string> path;
            for (std::string n = cur; !n.empty(); n = parent[n])
                path.push_back(n);
            std::reverse(path.begin(), path.end());
            return path;
        }
        auto it = graph.fwd.find(cur);
        if (it == graph.fwd.end())
            continue;
        for (const auto &next : it->second) {
            if (!parent.count(next)) {
                parent[next] = cur;
                work.push_back(next);
            }
        }
    }
    return {};
}

} // namespace fireaxe::passes
