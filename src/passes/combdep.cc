#include "passes/combdep.hh"

#include <algorithm>
#include <deque>

#include "base/logging.hh"

namespace fireaxe::passes {

using firrtl::Circuit;
using firrtl::Module;
using firrtl::PortDir;
using firrtl::SignalKind;

CombDepAnalysis::CombDepAnalysis(const Circuit &circuit, LoopPolicy policy)
    : policy_(policy)
{
    // Bottom-up: children are analyzed before their parents so that
    // instance edges can be derived from child summaries.
    for (const auto &name : circuit.topoOrder())
        analyzeModule(circuit, *circuit.findModule(name));
}

void
CombDepAnalysis::analyzeModule(const Circuit &circuit, const Module &mod)
{
    base::StringDigraph graph;

    // Connect statements: the sink depends on every referenced source,
    // except when the sink is a register (sequential barrier) or a
    // memory write-port signal (writes land on the next clock edge).
    for (const auto &c : mod.connects) {
        SignalKind lhs_kind = mod.resolve(circuit, c.lhs).kind;
        bool sequential_sink =
            lhs_kind == SignalKind::Reg ||
            lhs_kind == SignalKind::MemWAddr ||
            lhs_kind == SignalKind::MemWData ||
            lhs_kind == SignalKind::MemWEn;
        if (sequential_sink)
            continue;
        std::vector<std::string> refs;
        collectRefs(c.rhs, refs);
        for (const auto &r : refs) {
            // Registers and memory read data: rdata IS combinational
            // (comb-read memory); registers are not sources of comb
            // dependence on inputs by themselves, but an edge from a
            // reg hurts nothing: regs have no incoming comb edges.
            graph.addEdge(r, c.lhs);
        }
    }

    // Memories: combinational read path raddr -> rdata.
    for (const auto &m : mod.mems)
        graph.addEdge(m.name + ".raddr", m.name + ".rdata");

    // Instances: edges from the child's input ports to the output
    // ports that the child's summary says are combinationally
    // dependent on them.
    for (const auto &inst : mod.instances) {
        const PortDeps &child = forModule(inst.moduleName);
        for (const auto &[out, ins] : child.deps) {
            for (const auto &in : ins) {
                graph.addEdge(inst.name + "." + in,
                              inst.name + "." + out);
            }
        }
    }

    // Combinational loops (would make the module unsimulatable) are
    // the cyclic SCCs of the dependency graph (base/graph.hh's shared
    // iterative Tarjan; self-edges count as loops too).
    for (auto &comp : graph.cyclicComponents()) {
        if (policy_ == LoopPolicy::Fatal) {
            fatal("module '", mod.name,
                  "': combinational loop through '", comp.front(),
                  "' -> '", comp.size() > 1 ? comp[1] : comp[0], "'");
        }
        loops_.push_back({mod.name, std::move(comp)});
    }

    // Forward BFS from each input port; record reached output ports.
    PortDeps summary;
    for (const auto &p : mod.ports)
        if (p.dir == PortDir::Output)
            summary.deps[p.name]; // ensure entry exists (maybe empty)

    for (const auto &p : mod.ports) {
        if (p.dir != PortDir::Input)
            continue;
        std::set<std::string> seen = graph.reachableFrom(p.name);
        for (const auto &q : mod.ports) {
            if (q.dir == PortDir::Output && seen.count(q.name))
                summary.deps[q.name].insert(p.name);
        }
    }

    graphs_[mod.name] = std::move(graph);
    summaries_[mod.name] = std::move(summary);
}

const PortDeps &
CombDepAnalysis::forModule(const std::string &name) const
{
    auto it = summaries_.find(name);
    if (it == summaries_.end())
        fatal("no combinational summary for module '", name, "'");
    return it->second;
}

const base::StringDigraph &
CombDepAnalysis::graphForModule(const std::string &name) const
{
    auto it = graphs_.find(name);
    if (it == graphs_.end())
        fatal("no combinational graph for module '", name, "'");
    return it->second;
}

std::vector<std::string>
CombDepAnalysis::combPath(const std::string &module_name,
                          const std::string &from_input,
                          const std::string &to_output) const
{
    return graphForModule(module_name)
        .shortestPath(from_input, to_output);
}

} // namespace fireaxe::passes
