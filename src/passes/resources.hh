/**
 * @file
 * FPGA resource estimation from the RTL-level circuit representation.
 *
 * Section VIII-B of the paper proposes that FireRipper "make rough
 * per-FPGA resource consumption estimates based on the RTL-level
 * circuit representation to provide users quick feedback about
 * whether the partition will fit on an FPGA or not". This pass
 * implements that estimator: it walks a module hierarchy and charges
 * LUTs for combinational operators (scaled by bit width), flip-flops
 * for register bits, and BRAM tiles for memories.
 *
 * The absolute numbers are coarse by design; what matters is the
 * relative comparison against an FpgaModel's capacity (src/platform).
 */

#ifndef FIREAXE_PASSES_RESOURCES_HH
#define FIREAXE_PASSES_RESOURCES_HH

#include <cstdint>
#include <string>

#include "firrtl/ir.hh"

namespace fireaxe::passes {

/** Estimated FPGA resource consumption of a module subtree. */
struct ResourceEstimate
{
    uint64_t luts = 0;
    uint64_t flipFlops = 0;
    uint64_t brams = 0; // 36 kbit tiles

    ResourceEstimate &
    operator+=(const ResourceEstimate &other)
    {
        luts += other.luts;
        flipFlops += other.flipFlops;
        brams += other.brams;
        return *this;
    }

    ResourceEstimate
    operator*(uint64_t n) const
    {
        return {luts * n, flipFlops * n, brams * n};
    }
};

/**
 * Estimate resources of @p module_name including all children
 * (multiplied by instantiation count).
 */
ResourceEstimate estimateResources(const firrtl::Circuit &circuit,
                                   const std::string &module_name);

/** Estimate resources of the whole design (top module subtree). */
ResourceEstimate estimateResources(const firrtl::Circuit &circuit);

} // namespace fireaxe::passes

#endif // FIREAXE_PASSES_RESOURCES_HH
