#include "passes/flatten.hh"

#include <functional>

#include "base/logging.hh"

namespace fireaxe::passes {

using firrtl::Circuit;
using firrtl::Connect;
using firrtl::Expr;
using firrtl::ExprKind;
using firrtl::ExprPtr;
using firrtl::Module;
using firrtl::splitRef;

namespace {

/** Rewrite every Ref leaf through @p fn. */
ExprPtr
rewriteRefs(const ExprPtr &expr,
            const std::function<std::string(const std::string &)> &fn)
{
    if (expr->kind == ExprKind::Ref)
        return firrtl::ref(fn(expr->name), expr->width);
    if (expr->args.empty())
        return expr;
    auto e = std::make_shared<Expr>(*expr);
    for (auto &arg : e->args)
        arg = rewriteRefs(arg, fn);
    return e;
}

class Flattener
{
  public:
    Flattener(const Circuit &src, const KeepPredicate &keep)
        : src_(src), keep_(keep)
    {}

    Circuit
    run()
    {
        Circuit out;
        const Module &top = src_.top();

        Module flat;
        flat.name = top.name + "_flat";
        flat.ports = top.ports;
        flat.attrs = top.attrs;
        flat.rvBundles = top.rvBundles;
        flat_ = &flat;

        inlineModule(top, "");

        out.topName = flat.name;
        out.addModule(std::move(flat));
        for (auto &[name, mod] : kept_modules_)
            out.addModule(std::move(mod));
        return out;
    }

  private:
    std::string
    mangle(const std::string &path, const std::string &name) const
    {
        return path.empty() ? name : path + "/" + name;
    }

    /** Recursively copy a kept module definition (and children). */
    void
    copyModuleDef(const std::string &module_name)
    {
        if (kept_modules_.count(module_name))
            return;
        const Module *m = src_.findModule(module_name);
        FIREAXE_ASSERT(m, "unknown module ", module_name);
        kept_modules_.emplace(module_name, *m);
        for (const auto &inst : m->instances)
            copyModuleDef(inst.moduleName);
    }

    void
    inlineModule(const Module &mod, const std::string &path)
    {
        bool is_top = path.empty();

        // Non-top ports become wires carrying the boundary values.
        if (!is_top) {
            for (const auto &p : mod.ports)
                flat_->wires.push_back({mangle(path, p.name), p.width});
        }
        for (const auto &w : mod.wires)
            flat_->wires.push_back({mangle(path, w.name), w.width});
        for (const auto &r : mod.regs)
            flat_->regs.push_back(
                {mangle(path, r.name), r.width, r.init, r.hasReset});
        for (const auto &m : mod.mems)
            flat_->mems.push_back(
                {mangle(path, m.name), m.depth, m.width});

        // Decide instance fates before rewriting connects.
        std::set<std::string> kept_here;
        for (const auto &inst : mod.instances) {
            std::string child_path = mangle(path, inst.name);
            if (keep_(child_path)) {
                kept_here.insert(inst.name);
                flat_->instances.push_back(
                    {child_path, inst.moduleName});
                copyModuleDef(inst.moduleName);
            }
        }

        auto renameSignal = [&](const std::string &name) -> std::string {
            auto [owner, field] = splitRef(name);
            if (owner.empty()) {
                // Local signal; top port names stay as-is.
                if (is_top && mod.findPort(field))
                    return field;
                return mangle(path, field);
            }
            if (mod.findMem(owner))
                return mangle(path, owner) + "." + field;
            const firrtl::Instance *inst = mod.findInstance(owner);
            FIREAXE_ASSERT(inst, "unknown ref owner '", owner,
                           "' in module ", mod.name);
            std::string child_path = mangle(path, owner);
            if (kept_here.count(owner))
                return child_path + "." + field; // instance port
            return child_path + "/" + field;     // inlined wire
        };

        for (const auto &c : mod.connects) {
            Connect fc;
            fc.lhs = renameSignal(c.lhs);
            fc.rhs = rewriteRefs(c.rhs, renameSignal);
            flat_->connects.push_back(std::move(fc));
        }

        // Recurse into inlined children.
        for (const auto &inst : mod.instances) {
            if (kept_here.count(inst.name))
                continue;
            const Module *child = src_.findModule(inst.moduleName);
            FIREAXE_ASSERT(child, "unknown module ", inst.moduleName);
            inlineModule(*child, mangle(path, inst.name));
        }
    }

    const Circuit &src_;
    const KeepPredicate &keep_;
    Module *flat_ = nullptr;
    std::map<std::string, Module> kept_modules_;
};

} // namespace

Circuit
flattenCircuit(const Circuit &circuit, const KeepPredicate &keep)
{
    Flattener f(circuit, keep);
    return f.run();
}

Circuit
flattenAll(const Circuit &circuit)
{
    return flattenCircuit(circuit,
                          [](const std::string &) { return false; });
}

Circuit
flattenExcept(const Circuit &circuit,
              const std::set<std::string> &keep_paths)
{
    return flattenCircuit(circuit, [&](const std::string &path) {
        return keep_paths.count(path) != 0;
    });
}

} // namespace fireaxe::passes
