/**
 * @file
 * Port-level combinational dependency analysis.
 *
 * Implements the analysis of Section III-A1 of the FireAxe paper:
 * FireRipper "topologically sorts the modules according to their
 * position in the module hierarchy [then] traverses the FIRRTL AST of
 * each module identifying statements that are combinationally
 * dependent on each other. Once this is done for a module, it can
 * identify the output ports of the module that are combinationally
 * dependent on its input ports."
 *
 * The summaries are used to (a) split partition-boundary ports into
 * sink ports (combinationally dependent on inputs) and source ports,
 * (b) verify the exact-mode dependency-chain-length bound, and (c)
 * schedule LI-BDN output-channel FSMs.
 */

#ifndef FIREAXE_PASSES_COMBDEP_HH
#define FIREAXE_PASSES_COMBDEP_HH

#include <map>
#include <set>
#include <string>
#include <vector>

#include "base/graph.hh"
#include "firrtl/ir.hh"

namespace fireaxe::passes {

/** Per-module summary: output port -> set of input ports it
 *  combinationally depends on. Outputs with empty sets are source
 *  ports in the paper's terminology; others are sink ports. */
struct PortDeps
{
    std::map<std::string, std::set<std::string>> deps;

    bool
    isSinkOutput(const std::string &out) const
    {
        auto it = deps.find(out);
        return it != deps.end() && !it->second.empty();
    }
};

/** What to do when an intra-module combinational loop is found. */
enum class LoopPolicy
{
    Fatal,  ///< fatal() with a diagnostic chain (compiler behavior)
    Record, ///< record the loop and keep analyzing (verifier behavior)
};

/** A recorded intra-module combinational cycle: the signals of one
 *  non-trivial strongly connected component, in SCC discovery order. */
struct CombLoop
{
    std::string module;
    std::vector<std::string> signals;
};

/**
 * Computes and caches port-level dependency summaries for every module
 * in a circuit (bottom-up over the instantiation order). By default
 * fatal()s on intra-module combinational loops; with
 * LoopPolicy::Record it records them in loops() instead so static
 * checkers can report every cycle as a diagnostic.
 */
class CombDepAnalysis
{
  public:
    explicit CombDepAnalysis(const firrtl::Circuit &circuit,
                             LoopPolicy policy = LoopPolicy::Fatal);

    /** Combinational cycles found under LoopPolicy::Record. */
    const std::vector<CombLoop> &loops() const { return loops_; }

    /** Summary for a module by name; fatal() if unknown. */
    const PortDeps &forModule(const std::string &name) const;

    /**
     * A combinational path between two signals of one module, used
     * for compiler diagnostics ("the chain of combinational ports
     * that caused the termination", §III-A1). Signals are listed
     * source-first. Empty if no path exists.
     */
    std::vector<std::string> combPath(const std::string &module_name,
                                      const std::string &from_input,
                                      const std::string &to_output) const;

    /** The per-module signal dependency graph (comb edges only);
     *  fatal() if unknown. Consumed by src/analyze for comb-depth
     *  computation without rebuilding the netlist graph. */
    const base::StringDigraph &
    graphForModule(const std::string &name) const;

  private:
    void analyzeModule(const firrtl::Circuit &circuit,
                       const firrtl::Module &mod);

    LoopPolicy policy_;
    std::map<std::string, PortDeps> summaries_;
    std::map<std::string, base::StringDigraph> graphs_;
    std::vector<CombLoop> loops_;
};

} // namespace fireaxe::passes

#endif // FIREAXE_PASSES_COMBDEP_HH
