/**
 * @file
 * Hierarchy flattening / selective inlining.
 *
 * Two users:
 *  - src/rtlsim flattens the entire hierarchy to build its netlist
 *    interpreter (keep-nothing);
 *  - FireRipper's Reparent step (Fig. 5 of the paper) inlines every
 *    module *except* the user-selected partition instances, which
 *    thereby float up to the top of the module hierarchy with their
 *    I/O connectivity preserved ("I/O ports are punched out as
 *    necessary").
 *
 * Inlined signal names are mangled with '/' separators, e.g. register
 * "head" of instance "q0" inside instance "tile2" becomes
 * "tile2/q0/head". Kept instances are renamed to their full path
 * ("tile2/q0") and become direct children of the flat top.
 */

#ifndef FIREAXE_PASSES_FLATTEN_HH
#define FIREAXE_PASSES_FLATTEN_HH

#include <functional>
#include <set>
#include <string>

#include "firrtl/ir.hh"

namespace fireaxe::passes {

/**
 * Predicate deciding whether an instance subtree is kept as an
 * instance (true) or inlined (false). The argument is the full
 * instance path from the top, '/'-separated (e.g. "subsys/tile0").
 */
using KeepPredicate = std::function<bool(const std::string &path)>;

/**
 * Flatten the circuit's top module, inlining every instance subtree
 * for which @p keep returns false. The returned circuit has a new
 * top module named "<top>_flat" containing only wires, registers,
 * memories, connects, and the kept instances; the module definitions
 * of kept instances are copied over unchanged (recursively).
 */
firrtl::Circuit flattenCircuit(const firrtl::Circuit &circuit,
                               const KeepPredicate &keep);

/** Flatten everything (keep no instances). */
firrtl::Circuit flattenAll(const firrtl::Circuit &circuit);

/**
 * Flatten keeping exactly the given instance paths (and their
 * subtrees) as instances.
 */
firrtl::Circuit flattenExcept(const firrtl::Circuit &circuit,
                              const std::set<std::string> &keep_paths);

} // namespace fireaxe::passes

#endif // FIREAXE_PASSES_FLATTEN_HH
