/**
 * @file
 * Reliable delivery on top of TokenChannel (link-level ARQ).
 *
 * An LI-BDN simulation is only correct if every channel delivers its
 * token stream losslessly and in order; a single dropped or corrupted
 * token desynchronizes the partitions forever. On real hardware the
 * transports of src/transport fail in exactly those ways, so this
 * layer wraps each channel in the classic reliability machinery:
 *
 *  - every token carries a sequence number and a CRC-32 over its
 *    payload;
 *  - the producer keeps a bounded retransmit buffer of unacked
 *    tokens (a full buffer is recoverable backpressure, not a fatal
 *    overflow — the producer's output FSM simply retries on a later
 *    host cycle);
 *  - the consumer verifies CRC and sequence on every delivery;
 *    corruption triggers a NAK and a retransmission from the buffer,
 *    loss is recovered by the producer's retransmit timeout;
 *  - repeated failures back off exponentially, and a token that
 *    exhausts its retry budget marks the link failed so the executor
 *    can fail it over to a different transport mid-run.
 *
 * Faults only ever delay delivery — the consumer-visible stream is
 * bit-exact and in-order under any injected fault schedule, which is
 * what keeps a partitioned run bit-matching the monolithic reference
 * with only the simulation rate degrading.
 *
 * ## Threading
 *
 * Like the base channel, the reliable channel is a strict SPSC
 * structure under the parallel executor: tryEnqTimed() and
 * failover() run on the producing partition's worker; poll(),
 * scheduleRetransmit() and deq() on the consuming partition's. State
 * is partitioned accordingly — the producer and consumer each own a
 * fault-RNG substream (so the fault schedule is independent of
 * interleaving; see transport::FaultModel::channelRng) and a counter
 * set (merged on demand by stats()); the delivered queue and the
 * retransmit buffer are SPSC rings; cross-thread flags (link failed,
 * faults active) and the link timing are atomics.
 */

#ifndef FIREAXE_LIBDN_RELIABLE_HH
#define FIREAXE_LIBDN_RELIABLE_HH

#include <cstdint>
#include <deque>

#include "base/stats.hh"
#include "libdn/channel.hh"
#include "transport/fault.hh"

namespace fireaxe::libdn {

/** CRC-32 (IEEE 802.3 polynomial) over a token payload. */
uint32_t tokenCrc(const Token &token);

/**
 * A TokenChannel with sequence numbers, payload CRC, and
 * NAK/timeout-driven retransmission, exercised against a
 * transport::FaultModel.
 */
class ReliableTokenChannel : public TokenChannel
{
  public:
    /** Recovery-timing knobs. Zeros mean "derive from the channel's
     *  link timing once it is configured". */
    struct Params
    {
        /** Producer retransmit timeout for lost tokens (ns);
         *  0 = 4 * (serTime + latency). */
        double timeoutNs = 0.0;
        /** NAK flight time from consumer back to producer (ns);
         *  0 = link latency. */
        double nakNs = 0.0;
        /** Producer-side retransmit-buffer bound (unacked tokens);
         *  0 = channel capacity. */
        size_t retransmitWindow = 0;
    };

    ReliableTokenChannel(std::string name, unsigned width_bits,
                         transport::FaultModel faults, Params params,
                         size_t capacity = 16);

    ReliableTokenChannel(std::string name, unsigned width_bits,
                         transport::FaultModel faults = {})
        : ReliableTokenChannel(std::move(name), width_bits,
                               std::move(faults), Params{})
    {}

    // --- TokenChannel interface -----------------------------------
    bool full() const override;
    bool
    empty() const override
    {
        return replayFrontSize_.load(std::memory_order_acquire) ==
                   0 &&
               queue2_.empty();
    }
    size_t
    size() const override
    {
        return replayFrontSize_.load(std::memory_order_acquire) +
               queue2_.size();
    }
    bool tryEnq(Token &token, double ready_time) override;
    bool tryEnqTimed(Token &token, double now) override;
    bool headReady(double now) const override;
    double headReadyTime() const override;
    const Token &head() const override;
    double headEnqueueTime() const override;
    void deq() override;
    uint64_t tokensEnqueued() const override { return enqCount2_; }
    uint64_t tokensRetired() const override { return deqCount2_; }
    void enableConcurrent(int producer_part, int consumer_part,
                          size_t pop_log_capacity) override;

    // --- reliability introspection --------------------------------
    /** Reliability / fault counters (merged producer+consumer view):
     *  tokens_dropped, tokens_corrupted, tokens_duplicated,
     *  link_stalls, stall_ns_total, crc_errors, naks,
     *  duplicates_discarded, retransmits, retransmits_timeout,
     *  retransmits_nak, retry_budget_exhausted, failovers.
     *  Returned by value: the two sides' counter sets are owned by
     *  different worker threads and merged into a snapshot here. */
    CounterSet stats() const;

    /** A token exhausted its retry budget; the executor should fail
     *  the channel over to a fallback transport. */
    bool
    linkFailed() const
    {
        return failed_.load(std::memory_order_relaxed);
    }

    /**
     * Mid-run graceful degradation: retime the channel onto a
     * fallback transport (fresh private serializer), stop injecting
     * faults, and clear the failure flag. In-flight and queued
     * tokens are preserved. Runs on the producing side.
     */
    void failover(double ser_time, double latency);

    /** Unacked producer-side copies currently buffered. */
    size_t retransmitBufferSize() const { return rtxBuf_.size(); }

    /**
     * Consumer-side NAK recovery state: the retransmission currently
     * in flight, if any. pendingSeq == 0 means no NAK is outstanding.
     * Owned by the consuming side; snapshotted with the channel so a
     * restore mid-retransmission completes the recovery exactly.
     */
    struct NakRecovery
    {
        /** Sequence number being recovered (0 = none). */
        uint64_t pendingSeq = 0;
        /** Host time the retransmitted copy becomes visible (ns). */
        double resendReadyNs = 0.0;
        /** Resend attempts consumed by this recovery (drives the
         *  exponential backoff). */
        unsigned backoffTries = 0;
        /** Total recovery delay charged (NAK flight + resends +
         *  backoff), ns. */
        double backoffNs = 0.0;
    };
    const NakRecovery &nakRecovery() const { return nak_; }

    /** Highest sequence number delivered in order (consumer side);
     *  recorded in recovery cuts for single-partition restart. */
    uint64_t
    lastDeliveredSeq() const override
    {
        return lastDelivered_;
    }

    // --- checkpointing (src/recovery) -----------------------------
    void saveCkpt(std::ostream &os) const override;
    bool tryLoadCkpt(std::istream &is, std::string &error) override;

    // --- single-partition restart (src/recovery) ------------------

    /**
     * Keep the last @p n delivered tokens in a bounded replay log so
     * a condemned consumer partition can be restarted from a cut and
     * re-fed its inbound stream (0 disables; shrinking trims the
     * oldest entries). Consumer-side state.
     */
    void setReplayLogCapacity(size_t n);
    size_t replayLogCapacity() const { return replayCap_; }

    /**
     * Rewind the consumer side to a recovery point: deliveries past
     * @p cut_deq_count are re-presented from the replay log (in
     * order, ahead of the live queue), and the delivery counters
     * rewind to the cut. Producer-side state — sequence numbers,
     * retransmit buffer, fault RNG, serializer — stays at its
     * current (post-cut) position, which is exactly what the
     * restarted consumer's re-execution converges to. Fails (false,
     * diagnostic in @p error, channel unchanged) when the log no
     * longer covers the cut. Only legal at a quiesce point.
     */
    bool replayFromLog(uint64_t cut_deq_count,
                       uint64_t cut_last_delivered,
                       std::string &error);

    /** Would replayFromLog(@p cut_deq_count, ...) succeed? Lets the
     *  executor pre-validate every inbound channel of a condemned
     *  partition before mutating any of them. */
    bool
    canReplayFrom(uint64_t cut_deq_count) const
    {
        return replayFront_.empty() && cut_deq_count <= deqCount2_ &&
               deqCount2_ - cut_deq_count <= replayLog_.size();
    }

    /**
     * Suppress the next @p n accepted tokens on the producer side:
     * tryEnq/tryEnqTimed report success without touching any channel
     * state. Used when a restarted producer partition re-executes
     * cycles whose tokens were already transmitted before the crash —
     * the channel (and its fault schedule) already reflects them.
     */
    void suppressProducedTokens(uint64_t n) { suppress_ += n; }
    uint64_t suppressedTokensLeft() const { return suppress_; }

  private:
    struct RelEntry
    {
        Token payload; ///< as seen on the wire (possibly corrupted)
        double readyTime = 0.0;
        uint64_t seq = 0;
        uint32_t crc = 0; ///< computed by the producer pre-transmit
        /** CRC already checked good (payloads are immutable after
         *  transmission, so one check per delivery suffices). */
        bool verified = false;
        /** Host time the producer enqueued the token (survives
         *  retransmission, so latency includes recovery time). */
        double enqTime = 0.0;
    };

    double effTimeoutNs() const;
    double effNakNs() const;
    size_t effWindow() const;
    transport::FaultEvent drawFault(Rng &rng) const;
    /** Resolve dup/stale/corrupt entries at the head so that a
     *  visible head is always a verified in-order token. */
    void poll(double now) const;
    /** NAK path: requeue seq's pristine copy from the retransmit
     *  buffer, charging recovery latency and backoff. */
    void scheduleRetransmit(uint64_t seq, double now) const;
    /** Delivered-queue depth as deterministically seen by the
     *  producer (logical in concurrent mode). */
    size_t relOccupancy() const;
    /** Append one delivered token to the bounded replay log. */
    void logDelivered(const RelEntry &e) const;

    transport::FaultModel faults_;
    Params params_;
    /** Producer-side fault stream (transmit attempts). */
    mutable Rng txRng_;
    /** Consumer-side fault stream (NAK-driven resends). */
    mutable Rng rxRng_;
    mutable std::atomic<bool> faultsActive_;

    mutable par::SpscRing<RelEntry> queue2_; ///< in-flight+delivered
    mutable par::SpscRing<RelEntry> rtxBuf_; ///< unacked copies
    uint64_t nextSeq_ = 1;
    mutable uint64_t lastDelivered_ = 0;
    uint64_t enqCount2_ = 0;
    mutable uint64_t deqCount2_ = 0;
    /** Physical pushes into queue2_ (producer side; counts link-layer
     *  duplicates, unlike enqCount2_). */
    uint64_t qPushes2_ = 0;
    mutable std::atomic<bool> failed_{false};
    mutable CounterSet txStats_;
    mutable CounterSet rxStats_;
    /** Consumer-side NAK recovery in flight (see NakRecovery). */
    mutable NakRecovery nak_;

    // --- single-partition restart state ---------------------------
    // All consumer-side except suppress_ (producer-side); both are
    // SPSC-clean under the parallel engine.
    /** Replayed deliveries served ahead of queue2_ (restart). */
    mutable std::deque<RelEntry> replayFront_;
    /** Mirror of replayFront_.size() for cross-thread size()
     *  queries (the deque itself is consumer-owned). */
    mutable std::atomic<size_t> replayFrontSize_{0};
    /** Last replayCap_ delivered tokens, newest at the back. */
    mutable std::deque<RelEntry> replayLog_;
    size_t replayCap_ = 0;
    /** Producer-side count of enqueues to swallow (restart). */
    uint64_t suppress_ = 0;
};

} // namespace fireaxe::libdn

#endif // FIREAXE_LIBDN_RELIABLE_HH
