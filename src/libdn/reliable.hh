/**
 * @file
 * Reliable delivery on top of TokenChannel (link-level ARQ).
 *
 * An LI-BDN simulation is only correct if every channel delivers its
 * token stream losslessly and in order; a single dropped or corrupted
 * token desynchronizes the partitions forever. On real hardware the
 * transports of src/transport fail in exactly those ways, so this
 * layer wraps each channel in the classic reliability machinery:
 *
 *  - every token carries a sequence number and a CRC-32 over its
 *    payload;
 *  - the producer keeps a bounded retransmit buffer of unacked
 *    tokens (a full buffer is recoverable backpressure, not a fatal
 *    overflow — the producer's output FSM simply retries on a later
 *    host cycle);
 *  - the consumer verifies CRC and sequence on every delivery;
 *    corruption triggers a NAK and a retransmission from the buffer,
 *    loss is recovered by the producer's retransmit timeout;
 *  - repeated failures back off exponentially, and a token that
 *    exhausts its retry budget marks the link failed so the executor
 *    can fail it over to a different transport mid-run.
 *
 * Faults only ever delay delivery — the consumer-visible stream is
 * bit-exact and in-order under any injected fault schedule, which is
 * what keeps a partitioned run bit-matching the monolithic reference
 * with only the simulation rate degrading.
 */

#ifndef FIREAXE_LIBDN_RELIABLE_HH
#define FIREAXE_LIBDN_RELIABLE_HH

#include <cstdint>
#include <deque>

#include "base/stats.hh"
#include "libdn/channel.hh"
#include "transport/fault.hh"

namespace fireaxe::libdn {

/** CRC-32 (IEEE 802.3 polynomial) over a token payload. */
uint32_t tokenCrc(const Token &token);

/**
 * A TokenChannel with sequence numbers, payload CRC, and
 * NAK/timeout-driven retransmission, exercised against a
 * transport::FaultModel.
 */
class ReliableTokenChannel : public TokenChannel
{
  public:
    /** Recovery-timing knobs. Zeros mean "derive from the channel's
     *  link timing once it is configured". */
    struct Params
    {
        /** Producer retransmit timeout for lost tokens (ns);
         *  0 = 4 * (serTime + latency). */
        double timeoutNs = 0.0;
        /** NAK flight time from consumer back to producer (ns);
         *  0 = link latency. */
        double nakNs = 0.0;
        /** Producer-side retransmit-buffer bound (unacked tokens);
         *  0 = channel capacity. */
        size_t retransmitWindow = 0;
    };

    ReliableTokenChannel(std::string name, unsigned width_bits,
                         transport::FaultModel faults, Params params,
                         size_t capacity = 16);

    ReliableTokenChannel(std::string name, unsigned width_bits,
                         transport::FaultModel faults = {})
        : ReliableTokenChannel(std::move(name), width_bits,
                               std::move(faults), Params{})
    {}

    // --- TokenChannel interface -----------------------------------
    bool full() const override;
    bool empty() const override { return queue2_.empty(); }
    size_t size() const override { return queue2_.size(); }
    bool tryEnq(Token &token, double ready_time) override;
    bool tryEnqTimed(Token &token, double now) override;
    bool headReady(double now) const override;
    double headReadyTime() const override;
    const Token &head() const override;
    double headEnqueueTime() const override;
    void deq() override;
    uint64_t tokensEnqueued() const override { return enqCount2_; }
    uint64_t tokensRetired() const override { return deqCount2_; }

    // --- reliability introspection --------------------------------
    /** Reliability / fault counters:
     *  tokens_dropped, tokens_corrupted, tokens_duplicated,
     *  link_stalls, stall_ns_total, crc_errors, naks,
     *  duplicates_discarded, retransmits, retransmits_timeout,
     *  retransmits_nak, retry_budget_exhausted, failovers. */
    const CounterSet &stats() const { return stats_; }

    /** A token exhausted its retry budget; the executor should fail
     *  the channel over to a fallback transport. */
    bool linkFailed() const { return failed_; }

    /**
     * Mid-run graceful degradation: retime the channel onto a
     * fallback transport (fresh private serializer), stop injecting
     * faults, and clear the failure flag. In-flight and queued
     * tokens are preserved.
     */
    void failover(double ser_time, double latency);

    /** Unacked producer-side copies currently buffered. */
    size_t retransmitBufferSize() const { return rtxBuf_.size(); }

  private:
    struct RelEntry
    {
        Token payload; ///< as seen on the wire (possibly corrupted)
        double readyTime;
        uint64_t seq;
        uint32_t crc; ///< computed by the producer before transmit
        /** CRC already checked good (payloads are immutable after
         *  transmission, so one check per delivery suffices). */
        bool verified = false;
        /** Host time the producer enqueued the token (survives
         *  retransmission, so latency includes recovery time). */
        double enqTime = 0.0;
    };

    double effTimeoutNs() const;
    double effNakNs() const;
    size_t effWindow() const;
    transport::FaultEvent drawFault() const;
    /** Resolve dup/stale/corrupt entries at the head so that a
     *  visible head is always a verified in-order token. */
    void poll(double now) const;
    /** NAK path: requeue seq's pristine copy from the retransmit
     *  buffer, charging recovery latency and backoff. */
    void scheduleRetransmit(uint64_t seq, double now) const;

    transport::FaultModel faults_;
    Params params_;
    mutable Rng rng_;
    mutable bool faultsActive_;

    mutable std::deque<RelEntry> queue2_; ///< in-flight + delivered
    std::deque<RelEntry> rtxBuf_;         ///< unacked pristine copies
    uint64_t nextSeq_ = 1;
    uint64_t lastDelivered_ = 0;
    uint64_t enqCount2_ = 0;
    uint64_t deqCount2_ = 0;
    mutable bool failed_ = false;
    mutable CounterSet stats_;
};

} // namespace fireaxe::libdn

#endif // FIREAXE_LIBDN_RELIABLE_HH
