#include "libdn/channel.hh"

#include <istream>
#include <ostream>

#include "base/serial.hh"

namespace fireaxe::libdn {

void
TokenChannel::saveCkpt(std::ostream &os) const
{
    FIREAXE_ASSERT(!concurrent_, "channel '", name_,
                   "' checkpoint requires a quiesce point");
    os << "fireaxe-chan 2\n";
    os << name_ << " " << widthBits_ << " " << capacity_ << "\n";
    os << enqCount_ << " " << deqCount_ << " "
       << doubleBits(serTime()) << " " << doubleBits(latency()) << " "
       << doubleBits(serializer_->lastDepart) << " "
       << doubleBits(producerNowNs_) << " "
       << doubleBits(consumerNowNs_) << "\n";
    // Epoch (batching) position: a snapshot may land mid-epoch, so
    // the frame phase and the stop-and-wait horizon are part of the
    // token schedule's state.
    os << batchPos_ << " " << doubleBits(stallUntil_) << "\n";
    os << queue_.size() << "\n";
    for (size_t i = 0; i < queue_.size(); ++i) {
        const Entry &e = queue_.at(i);
        os << e.token.size();
        for (uint64_t w : e.token)
            os << " " << w;
        os << " " << doubleBits(e.readyTime) << " "
           << doubleBits(e.enqTime) << "\n";
    }
}

bool
TokenChannel::tryLoadCkpt(std::istream &is, std::string &error)
{
    FIREAXE_ASSERT(!concurrent_, "channel '", name_,
                   "' restore requires a quiesce point");
    auto fail = [&](std::string msg) {
        error = "channel '" + name_ + "': " + std::move(msg);
        return false;
    };
    std::string magic;
    unsigned version = 0;
    is >> magic >> version;
    if (magic != "fireaxe-chan" || version != 2)
        return fail("not a channel checkpoint stream");
    std::string name;
    unsigned width = 0;
    size_t capacity = 0;
    is >> name >> width >> capacity;
    if (!is)
        return fail("truncated checkpoint header");
    if (name != name_ || width != widthBits_ || capacity != capacity_)
        return fail("checkpoint is for channel '" + name + "' (" +
                    std::to_string(width) + " bits, capacity " +
                    std::to_string(capacity) + ")");

    uint64_t enq = 0, deq = 0;
    uint64_t ser_b = 0, lat_b = 0, depart_b = 0, pnow_b = 0,
             cnow_b = 0;
    is >> enq >> deq >> ser_b >> lat_b >> depart_b >> pnow_b >>
        cnow_b;
    uint64_t batch_pos = 0, stall_b = 0;
    is >> batch_pos >> stall_b;
    size_t qsize = 0;
    is >> qsize;
    if (!is)
        return fail("truncated checkpoint counters");
    if (qsize > capacity_ + 4)
        return fail("checkpoint queue depth " +
                    std::to_string(qsize) + " exceeds the ring");
    std::vector<Entry> entries(qsize);
    for (auto &e : entries) {
        size_t words = 0;
        is >> words;
        if (!is || words > 4096)
            return fail("truncated checkpoint queue");
        e.token.resize(words);
        for (auto &w : e.token)
            is >> w;
        uint64_t ready_b = 0, enq_b = 0;
        is >> ready_b >> enq_b;
        if (!is)
            return fail("truncated checkpoint queue");
        e.readyTime = bitsToDouble(ready_b);
        e.enqTime = bitsToDouble(enq_b);
    }

    enqCount_ = enq;
    deqCount_ = deq;
    serTime_.store(bitsToDouble(ser_b), std::memory_order_relaxed);
    latency_.store(bitsToDouble(lat_b), std::memory_order_relaxed);
    serializer_->lastDepart = bitsToDouble(depart_b);
    producerNowNs_ = bitsToDouble(pnow_b);
    consumerNowNs_ = bitsToDouble(cnow_b);
    batchPos_ = batch_pos;
    stallUntil_ = bitsToDouble(stall_b);
    while (!queue_.empty())
        queue_.popFront();
    for (auto &e : entries)
        queue_.pushBack(std::move(e));
    error.clear();
    return true;
}

} // namespace fireaxe::libdn
