/**
 * @file
 * Latency-insensitive channel queues (Section II-A of the paper).
 *
 * A token is the vector of net values crossing one LI-BDN channel for
 * one target cycle. Channels are bounded FIFOs; each token carries a
 * host-time "ready" stamp so that the multi-FPGA executor
 * (src/platform) can model inter-FPGA link latency and serialization:
 * a consumer only sees a token once host time has passed its stamp.
 *
 * The hot-path accessors are virtual so that transports with
 * link-level reliability machinery (libdn::ReliableTokenChannel) can
 * interpose on delivery without the model or the executor knowing.
 */

#ifndef FIREAXE_LIBDN_CHANNEL_HH
#define FIREAXE_LIBDN_CHANNEL_HH

#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "obs/probe.hh"

namespace fireaxe::libdn {

/** One channel's worth of net values for one target cycle. */
using Token = std::vector<uint64_t>;

/**
 * Serialization state of one physical link direction. Channels that
 * share a physical link (e.g. the source and sink channels of an
 * exact-mode boundary, or all FAME-5 thread channels of one FPGA
 * pair) share one serializer, so their tokens contend for link
 * bandwidth.
 */
struct LinkSerializer
{
    double lastDepart = 0.0;
};

/**
 * A bounded latency-insensitive channel queue with host-time stamps.
 */
class TokenChannel
{
  public:
    TokenChannel(std::string name, unsigned width_bits,
                 size_t capacity = 16)
        : name_(std::move(name)), widthBits_(width_bits),
          capacity_(capacity)
    {}

    virtual ~TokenChannel() = default;

    const std::string &name() const { return name_; }
    /** Total payload width of one token, in bits. Determines the
     *  serialization cost on the inter-FPGA link. */
    unsigned widthBits() const { return widthBits_; }

    virtual bool full() const { return queue_.size() >= capacity_; }
    virtual bool empty() const { return queue_.empty(); }
    virtual size_t size() const { return queue_.size(); }
    size_t capacity() const { return capacity_; }

    /**
     * Configure the link-timing model applied by enqTimed():
     * @p ser_time models the serialization occupancy of one token on
     * the link (ns; tokens depart back-to-back no faster than this),
     * and @p latency is the flight latency from departure to
     * visibility at the consumer (ns).
     *
     * A null @p serializer detaches the channel onto a fresh private
     * serializer — it never silently keeps a previously-shared one,
     * so retiming a channel (e.g. on link failover) cannot keep
     * contending with the old physical link.
     */
    void
    setTiming(double ser_time, double latency,
              std::shared_ptr<LinkSerializer> serializer = nullptr)
    {
        serTime_ = ser_time;
        latency_ = latency;
        serializer_ = serializer
                          ? std::move(serializer)
                          : std::make_shared<LinkSerializer>();
    }

    double serTime() const { return serTime_; }
    double latency() const { return latency_; }

    /**
     * Attach a telemetry probe (owned by the caller, may be null to
     * detach). The channel reports token enqueues/retires and — for
     * reliable subclasses — fault and recovery events through it;
     * without a probe the instrumentation is a single branch.
     */
    void setProbe(obs::ChannelProbe *probe) { probe_ = probe; }
    obs::ChannelProbe *probe() const { return probe_; }

    /**
     * Try to enqueue a token that becomes visible at host time
     * @p ready_time (ns). Returns false (and leaves the token
     * untouched) when the channel is full — recoverable
     * backpressure; the producer simply retries on a later host
     * cycle.
     */
    virtual bool
    tryEnq(Token &token, double ready_time)
    {
        if (full())
            return false;
        queue_.push_back({std::move(token), ready_time, ready_time});
        ++enqCount_;
        if (probe_)
            probe_->onEnqueue(ready_time, queue_.size());
        return true;
    }

    /** Enqueue a token that becomes visible at host time
     *  @p ready_time (ns). The channel must not be full. */
    void
    enq(Token token, double ready_time)
    {
        bool ok = tryEnq(token, ready_time);
        FIREAXE_ASSERT(ok, "channel '", name_, "' overflow");
    }

    /**
     * Try to enqueue a token produced at host time @p now, applying
     * the configured serialization + latency model. Returns false on
     * backpressure (channel full) without consuming a serializer
     * slot.
     */
    virtual bool
    tryEnqTimed(Token &token, double now)
    {
        if (full())
            return false;
        double depart = std::max(now, serializer_->lastDepart) +
                        serTime_;
        serializer_->lastDepart = depart;
        queue_.push_back({std::move(token), depart + latency_, now});
        ++enqCount_;
        if (probe_)
            probe_->onEnqueue(now, queue_.size());
        return true;
    }

    /**
     * Enqueue a token produced at host time @p now, applying the
     * configured serialization + latency model. The channel must not
     * be full.
     */
    void
    enqTimed(Token token, double now)
    {
        bool ok = tryEnqTimed(token, now);
        FIREAXE_ASSERT(ok, "channel '", name_, "' overflow");
    }

    /** Is a token present and visible at host time @p now? */
    virtual bool
    headReady(double now) const
    {
        return !queue_.empty() && queue_.front().readyTime <= now;
    }

    /** Earliest time the head token becomes visible; +inf if empty. */
    virtual double
    headReadyTime() const
    {
        if (queue_.empty())
            return std::numeric_limits<double>::infinity();
        return queue_.front().readyTime;
    }

    virtual const Token &
    head() const
    {
        FIREAXE_ASSERT(!queue_.empty(), "channel '", name_,
                       "' head of empty queue");
        return queue_.front().token;
    }

    /** Host time at which the head token was produced (enqueued by
     *  the producer); used for enqueue-to-retire latency metrics. */
    virtual double
    headEnqueueTime() const
    {
        FIREAXE_ASSERT(!queue_.empty(), "channel '", name_,
                       "' headEnqueueTime of empty queue");
        return queue_.front().enqTime;
    }

    virtual void
    deq()
    {
        FIREAXE_ASSERT(!queue_.empty(), "channel '", name_,
                       "' deq of empty queue");
        queue_.pop_front();
        ++deqCount_;
    }

    /** deq() with a consumer timestamp: reports the token's
     *  enqueue-to-retire latency to the probe, if any. */
    void
    retire(double now)
    {
        double enq_time = probe_ ? headEnqueueTime() : 0.0;
        deq();
        if (probe_)
            probe_->onRetire(now, enq_time);
    }

    /** Tokens enqueued over the channel's lifetime (statistics). */
    virtual uint64_t tokensEnqueued() const { return enqCount_; }
    /** Tokens retired (consumed) over the channel's lifetime. */
    virtual uint64_t tokensRetired() const { return deqCount_; }

  protected:
    struct Entry
    {
        Token token;
        double readyTime;
        /** Host time the producer enqueued the token. */
        double enqTime = 0.0;
    };

    std::string name_;
    unsigned widthBits_;
    size_t capacity_;
    std::deque<Entry> queue_;
    uint64_t enqCount_ = 0;
    uint64_t deqCount_ = 0;
    double serTime_ = 0.0;
    double latency_ = 0.0;
    obs::ChannelProbe *probe_ = nullptr;
    std::shared_ptr<LinkSerializer> serializer_ =
        std::make_shared<LinkSerializer>();
};

using ChannelPtr = std::shared_ptr<TokenChannel>;

} // namespace fireaxe::libdn

#endif // FIREAXE_LIBDN_CHANNEL_HH
