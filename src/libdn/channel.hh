/**
 * @file
 * Latency-insensitive channel queues (Section II-A of the paper).
 *
 * A token is the vector of net values crossing one LI-BDN channel for
 * one target cycle. Channels are bounded FIFOs; each token carries a
 * host-time "ready" stamp so that the multi-FPGA executor
 * (src/platform) can model inter-FPGA link latency and serialization:
 * a consumer only sees a token once host time has passed its stamp.
 *
 * The hot-path accessors are virtual so that transports with
 * link-level reliability machinery (libdn::ReliableTokenChannel) can
 * interpose on delivery without the model or the executor knowing.
 *
 * Storage is a lock-free SPSC ring (par::SpscRing): each channel has
 * exactly one producing and one consuming partition, so when the
 * parallel executor (src/par) runs partitions on worker threads the
 * same queue doubles as the thread-safe token pipe — no locks on the
 * token path.
 *
 * ## Concurrent mode (enableConcurrent)
 *
 * Determinism under threads needs more than a safe queue: the
 * *producer-visible occupancy* must match what the sequential
 * executor would have seen at the same host time, or backpressure
 * (and with it serializer timing and the whole token schedule) would
 * depend on how far ahead the consumer thread happens to run. The
 * channel therefore keeps two views:
 *
 *  - the physical ring, updated eagerly by both sides;
 *  - a logical occupancy at the producer's host time `T`:
 *    producer-side push counts minus only those consumer pops whose
 *    logical timestamp precedes `T` (ties broken by partition index,
 *    exactly like the sequential event loop's tie order).
 *
 * The consumer publishes each pop as a (time, counts) record on a
 * small SPSC pop log; the producer drains records up to its own time
 * in producerPrepare()/full(). The engine guarantees by its gating
 * rules that whenever the logical view says "full", the producer
 * waits until the consumer's clock passes `T` — at which point every
 * relevant pop record has been published and the verdict is exact.
 * See DESIGN.md ("Parallel partition execution") for the full
 * argument.
 */

#ifndef FIREAXE_LIBDN_CHANNEL_HH
#define FIREAXE_LIBDN_CHANNEL_HH

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "obs/probe.hh"
#include "par/spsc.hh"

namespace fireaxe::libdn {

/** One channel's worth of net values for one target cycle. */
using Token = std::vector<uint64_t>;

/**
 * Serialization state of one physical link direction. Channels that
 * share a physical link (e.g. the source and sink channels of an
 * exact-mode boundary, or all FAME-5 thread channels of one FPGA
 * pair) share one serializer, so their tokens contend for link
 * bandwidth. Only ever touched from the producing partition's
 * thread: all channels sharing a serializer originate from the same
 * partition.
 */
struct LinkSerializer
{
    double lastDepart = 0.0;
};

/**
 * A bounded latency-insensitive channel queue with host-time stamps.
 */
class TokenChannel
{
  public:
    TokenChannel(std::string name, unsigned width_bits,
                 size_t capacity = 16)
        : name_(std::move(name)), widthBits_(width_bits),
          capacity_(capacity), queue_(capacity + 4)
    {}

    virtual ~TokenChannel() = default;

    const std::string &name() const { return name_; }
    /** Total payload width of one token, in bits. Determines the
     *  serialization cost on the inter-FPGA link. */
    unsigned widthBits() const { return widthBits_; }

    virtual bool
    full() const
    {
        if (concurrent_) {
            drainPopLog(producerNowNs_);
            return enqCount_ - accQueuePops_ >= capacity_;
        }
        return queue_.size() >= capacity_;
    }

    virtual bool empty() const { return queue_.empty(); }
    virtual size_t size() const { return queue_.size(); }
    size_t capacity() const { return capacity_; }

    /**
     * Configure the link-timing model applied by enqTimed():
     * @p ser_time models the serialization occupancy of one token on
     * the link (ns; tokens depart back-to-back no faster than this),
     * and @p latency is the flight latency from departure to
     * visibility at the consumer (ns).
     *
     * A null @p serializer detaches the channel onto a fresh private
     * serializer — it never silently keeps a previously-shared one,
     * so retiming a channel (e.g. on link failover) cannot keep
     * contending with the old physical link.
     */
    void
    setTiming(double ser_time, double latency,
              std::shared_ptr<LinkSerializer> serializer = nullptr)
    {
        serTime_.store(ser_time, std::memory_order_relaxed);
        latency_.store(latency, std::memory_order_relaxed);
        serializer_ = serializer
                          ? std::move(serializer)
                          : std::make_shared<LinkSerializer>();
    }

    /**
     * Configure depth-N token batching (epochs). With @p depth > 1
     * the channel ships one link frame per @p depth tokens: the
     * first depth-1 tokens of each epoch are within-epoch tokens the
     * consumer reproduces locally from the last epoch-boundary
     * register image (the shadow cone the static legality pass
     * proved small and self-contained), so they never occupy the
     * shared link and become visible after @p payload_ser_ns only.
     * Every depth'th token is the epoch boundary: the whole frame
     * (@p frame_overhead_ns + depth x payload_ser_ns) departs on the
     * shared serializer and flies for latency().
     *
     * @p pipelined selects overlap of frame flight with the next
     * epoch's compute; when false the channel applies stop-and-wait
     * backpressure (the first token of epoch k+1 is refused until
     * epoch k's frame has been delivered).
     *
     * Token values and order are untouched — batching only retimes
     * visibility — so any depth is observationally bit-exact.
     * depth 1 restores the unbatched per-token path exactly.
     */
    void
    configureBatching(unsigned depth, double payload_ser_ns,
                      double frame_overhead_ns, bool pipelined)
    {
        FIREAXE_ASSERT(depth >= 1, "channel '", name_,
                       "': batch depth must be >= 1");
        batchDepth_.store(depth, std::memory_order_relaxed);
        payloadSerNs_.store(payload_ser_ns,
                            std::memory_order_relaxed);
        frameOverheadNs_.store(frame_overhead_ns,
                               std::memory_order_relaxed);
        pipelined_ = pipelined;
    }

    unsigned
    batchDepth() const
    {
        return batchDepth_.load(std::memory_order_relaxed);
    }

    bool pipelinedEpochs() const { return pipelined_; }

    /**
     * Whether an enqueue attempted at host time @p now could be
     * accepted as far as the epoch protocol is concerned (it may
     * still fail on occupancy — see full()). False only while a
     * stop-and-wait epoch stall is pending: batching enabled,
     * pipelined epochs off, at an epoch boundary, and the previous
     * frame has not landed yet. Producer-side state only — must be
     * called from the producing partition's thread, like
     * tryEnqTimed().
     */
    bool
    writableAt(double now) const
    {
        return pipelined_ || batchDepth() <= 1 || batchPos_ != 0 ||
               now >= stallUntil_;
    }

    /** Payload-only serialization of one token within a frame. */
    double
    payloadSerNs() const
    {
        return payloadSerNs_.load(std::memory_order_relaxed);
    }

    /** Link occupancy of one transmission unit: a whole frame when
     *  batching, one token otherwise. */
    double
    frameSerNs() const
    {
        unsigned depth = batchDepth();
        if (depth <= 1)
            return serTime();
        return frameOverheadNs_.load(std::memory_order_relaxed) +
               double(depth) * payloadSerNs();
    }

    double
    serTime() const
    {
        return serTime_.load(std::memory_order_relaxed);
    }

    double
    latency() const
    {
        return latency_.load(std::memory_order_relaxed);
    }

    /**
     * Attach a telemetry probe (owned by the caller, may be null to
     * detach). The channel reports token enqueues/retires and — for
     * reliable subclasses — fault and recovery events through it;
     * without a probe the instrumentation is a single branch.
     */
    void setProbe(obs::ChannelProbe *probe) { probe_ = probe; }
    obs::ChannelProbe *probe() const { return probe_; }

    // --- concurrent (parallel-executor) mode ----------------------

    /**
     * Switch the channel into concurrent mode for the parallel
     * executor: producer-side occupancy becomes the logical
     * (pop-log-accounted) view described in the file comment. Must be
     * called while no worker threads touch the channel.
     *
     * @p producer_part / @p consumer_part give the partition indices
     * of the two sides, fixing the sequential tie order for pops at
     * equal host times. @p pop_log_capacity bounds the pop log; the
     * caller derives it from the channel's lookahead window (the
     * consumer can run at most `lookahead` ns of host time ahead of
     * the producer, bounding unconsumed pop records).
     */
    virtual void
    enableConcurrent(int producer_part, int consumer_part,
                     size_t pop_log_capacity)
    {
        concurrent_ = true;
        consumerTicksFirstOnTie_ = consumer_part < producer_part;
        popLog_ = std::make_unique<par::SpscRing<PopRecord>>(
            pop_log_capacity);
        // Re-anchor the logical view to the quiesced physical state.
        accQueuePops_ = enqCount_ - queue_.size();
        accRtxPops_ = 0;
    }

    /**
     * Leave concurrent mode (after the workers joined): fold every
     * outstanding pop record into the accounting so a later
     * sequential run sees consistent physical occupancy.
     */
    virtual void
    disableConcurrent()
    {
        if (!concurrent_)
            return;
        drainPopLog(std::numeric_limits<double>::infinity());
        concurrent_ = false;
        popLog_.reset();
    }

    bool concurrent() const { return concurrent_; }

    /**
     * Producer-side synchronization point, called by the parallel
     * engine before the producing partition evaluates a host tick at
     * time @p now: folds all sequentially-preceding consumer pops
     * into the occupancy accounting. Returns full() so the engine can
     * gate on logical backpressure.
     */
    bool
    producerPrepare(double now)
    {
        producerNowNs_ = std::max(producerNowNs_, now);
        return full();
    }

    /**
     * Try to enqueue a token that becomes visible at host time
     * @p ready_time (ns). Returns false (and leaves the token
     * untouched) when the channel is full — recoverable
     * backpressure; the producer simply retries on a later host
     * cycle.
     */
    virtual bool
    tryEnq(Token &token, double ready_time)
    {
        if (full())
            return false;
        queue_.pushBack({std::move(token), ready_time, ready_time});
        ++enqCount_;
        if (probe_ && probe_->countsTokens())
            probe_->onEnqueue(ready_time, producerOccupancy());
        return true;
    }

    /** Enqueue a token that becomes visible at host time
     *  @p ready_time (ns). The channel must not be full. */
    void
    enq(Token token, double ready_time)
    {
        bool ok = tryEnq(token, ready_time);
        FIREAXE_ASSERT(ok, "channel '", name_, "' overflow");
    }

    /**
     * Try to enqueue a token produced at host time @p now, applying
     * the configured serialization + latency model. Returns false on
     * backpressure (channel full) without consuming a serializer
     * slot.
     */
    virtual bool
    tryEnqTimed(Token &token, double now)
    {
        producerNowNs_ = std::max(producerNowNs_, now);
        if (full())
            return false;
        unsigned depth = batchDepth();
        if (depth > 1) {
            if (!pipelined_ && batchPos_ == 0 && now < stallUntil_)
                return false; // stop-and-wait: frame k still flying
            double depart, ready;
            if (batchPos_ + 1 < depth) {
                // Within-epoch token: reproduced at the consumer from
                // the epoch-boundary image, so it never crosses the
                // link — payload evaluation cost only, no serializer
                // contention, no flight.
                depart = now + payloadSerNs();
                ready = depart;
                ++batchPos_;
            } else {
                // Epoch boundary: the whole frame departs the link.
                depart = std::max(now, serializer_->lastDepart) +
                         frameSerNs();
                serializer_->lastDepart = depart;
                ready = depart + latency();
                batchPos_ = 0;
                if (!pipelined_)
                    stallUntil_ = ready;
            }
            queue_.pushBack({std::move(token), ready, now});
            ++enqCount_;
            if (probe_) {
                if (probe_->countsTokens())
                    probe_->onEnqueue(now, producerOccupancy());
                if (probe_->tokenSampled(enqCount_)) {
                    probe_->onTokenEnqueue(enqCount_, now, depart,
                                           ready, ready - depart,
                                           0.0);
                }
            }
            return true;
        }
        double depart = std::max(now, serializer_->lastDepart) +
                        serTime();
        serializer_->lastDepart = depart;
        queue_.pushBack({std::move(token), depart + latency(), now});
        ++enqCount_;
        if (probe_) {
            if (probe_->countsTokens())
                probe_->onEnqueue(now, producerOccupancy());
            if (probe_->tokenSampled(enqCount_)) {
                probe_->onTokenEnqueue(enqCount_, now, depart,
                                       depart + latency(),
                                       latency(), 0.0);
            }
        }
        return true;
    }

    /**
     * Enqueue a token produced at host time @p now, applying the
     * configured serialization + latency model. The channel must not
     * be full.
     */
    void
    enqTimed(Token token, double now)
    {
        bool ok = tryEnqTimed(token, now);
        FIREAXE_ASSERT(ok, "channel '", name_, "' overflow");
    }

    /** Is a token present and visible at host time @p now? */
    virtual bool
    headReady(double now) const
    {
        return !queue_.empty() && queue_.front().readyTime <= now;
    }

    /** Earliest time the head token becomes visible; +inf if empty. */
    virtual double
    headReadyTime() const
    {
        if (queue_.empty())
            return std::numeric_limits<double>::infinity();
        return queue_.front().readyTime;
    }

    virtual const Token &
    head() const
    {
        FIREAXE_ASSERT(!queue_.empty(), "channel '", name_,
                       "' head of empty queue");
        return queue_.front().token;
    }

    /** Host time at which the head token was produced (enqueued by
     *  the producer); used for enqueue-to-retire latency metrics. */
    virtual double
    headEnqueueTime() const
    {
        FIREAXE_ASSERT(!queue_.empty(), "channel '", name_,
                       "' headEnqueueTime of empty queue");
        return queue_.front().enqTime;
    }

    virtual void
    deq()
    {
        FIREAXE_ASSERT(!queue_.empty(), "channel '", name_,
                       "' deq of empty queue");
        queue_.popFront();
        ++deqCount_;
        if (concurrent_)
            logPops(consumerNowNs_, 1, 0);
    }

    /** "No target cycle" for retire(): the consumer did not report
     *  which fire consumed the token. */
    static constexpr uint64_t kNoTargetCycle = ~uint64_t(0);

    /** deq() with a consumer timestamp: reports the token's
     *  enqueue-to-retire latency to the probe, if any, plus the
     *  causal token-trace retire carrying the consuming fire's
     *  target cycle (when the caller knows it). */
    void
    retire(double now, uint64_t target_cycle = kNoTargetCycle)
    {
        consumerNowNs_ = std::max(consumerNowNs_, now);
        bool counts = probe_ && probe_->countsTokens();
        double enq_time = counts ? headEnqueueTime() : 0.0;
        deq();
        if (probe_) {
            if (counts)
                probe_->onRetire(now, enq_time);
            probe_->onTokenRetire(lastDeliveredSeq(), now,
                                  target_cycle);
        }
    }

    /** Sequence number (1-based) of the most recently dequeued
     *  token. The base channel delivers strictly in order, so this
     *  is the lifetime deq count; reliable subclasses track the
     *  on-the-wire sequence instead. */
    virtual uint64_t lastDeliveredSeq() const { return deqCount_; }

    /** Tokens enqueued over the channel's lifetime (statistics). */
    virtual uint64_t tokensEnqueued() const { return enqCount_; }
    /** Tokens retired (consumed) over the channel's lifetime. */
    virtual uint64_t tokensRetired() const { return deqCount_; }

    // --- checkpointing (src/recovery) -----------------------------

    /**
     * Serialize the channel's full state — queued tokens with their
     * host-time stamps, lifetime counters, link timing and the
     * shared serializer's departure clock — to a stream. Only legal
     * at a quiesce point (not in concurrent mode).
     */
    virtual void saveCkpt(std::ostream &os) const;

    /**
     * Restore a saveCkpt() stream. Validates the whole stream (name,
     * width, capacity, framing) before mutating anything; on failure
     * returns false with a diagnostic in @p error and the channel
     * unchanged. Only legal at a quiesce point.
     */
    virtual bool tryLoadCkpt(std::istream &is, std::string &error);

  protected:
    struct Entry
    {
        Token token;
        double readyTime = 0.0;
        /** Host time the producer enqueued the token. */
        double enqTime = 0.0;
    };

    /** One consumer pop event, published for producer accounting. */
    struct PopRecord
    {
        double timeNs = 0.0;      ///< logical (host) time of the pop
        uint32_t queuePops = 0;   ///< delivered-queue entries removed
        uint32_t rtxPops = 0;     ///< retransmit-buffer entries acked
    };

    /** Producer side: account every pop that sequentially precedes
     *  host time @p now (ties by the partition-index order fixed at
     *  enableConcurrent). Records are time-monotone, so this is a
     *  prefix drain. */
    void
    drainPopLog(double now) const
    {
        while (!popLog_->empty()) {
            const PopRecord &rec = popLog_->front();
            if (rec.timeNs > now ||
                (rec.timeNs == now && !consumerTicksFirstOnTie_)) {
                break;
            }
            accQueuePops_ += rec.queuePops;
            accRtxPops_ += rec.rtxPops;
            popLog_->popFront();
        }
    }

    /** Consumer side: publish a pop at logical time @p now. */
    void
    logPops(double now, uint32_t queue_pops, uint32_t rtx_pops) const
    {
        popLog_->pushBack({now, queue_pops, rtx_pops});
    }

    /** Queue depth as deterministically seen by the producer (used
     *  for occupancy telemetry; logical in concurrent mode so the
     *  samples don't depend on thread interleaving). */
    size_t
    producerOccupancy() const
    {
        if (concurrent_)
            return size_t(enqCount_ - accQueuePops_);
        return queue_.size();
    }

    std::string name_;
    unsigned widthBits_;
    size_t capacity_;
    par::SpscRing<Entry> queue_;
    uint64_t enqCount_ = 0;
    uint64_t deqCount_ = 0;
    // Atomic because failover() retimes the channel from the
    // producer's worker thread while the consumer reads the values
    // for recovery timing.
    std::atomic<double> serTime_{0.0};
    std::atomic<double> latency_{0.0};
    obs::ChannelProbe *probe_ = nullptr;
    std::shared_ptr<LinkSerializer> serializer_ =
        std::make_shared<LinkSerializer>();

    // --- depth-N batching state (configureBatching) ---------------
    // Timing fields are atomic for the same reason serTime_ is:
    // failover() reverts batching from the producer's worker thread
    // while the consumer reads frameSerNs() for recovery timing.
    std::atomic<unsigned> batchDepth_{1};
    std::atomic<double> payloadSerNs_{0.0};
    std::atomic<double> frameOverheadNs_{0.0};
    /** Producer-only (tryEnqTimed). */
    bool pipelined_ = true;
    /** Position of the next enqueue within the current epoch
     *  (producer-only). */
    uint64_t batchPos_ = 0;
    /** Stop-and-wait horizon (pipelined epochs off): delivery time
     *  of the last boundary frame (producer-only). */
    double stallUntil_ = 0.0;

    // --- concurrent-mode state ------------------------------------
    bool concurrent_ = false;
    /** Consumer's tick precedes the producer's at equal host time
     *  (lower partition index ticks first, like the sequential event
     *  loop). */
    bool consumerTicksFirstOnTie_ = false;
    std::unique_ptr<par::SpscRing<PopRecord>> popLog_;
    /** Producer's current host time (drain horizon). */
    mutable double producerNowNs_ = 0.0;
    /** Consumer's current host time (pop timestamping). */
    mutable double consumerNowNs_ = 0.0;
    /** Producer-side cumulative pops folded in from the log. */
    mutable uint64_t accQueuePops_ = 0;
    mutable uint64_t accRtxPops_ = 0;
};

using ChannelPtr = std::shared_ptr<TokenChannel>;

} // namespace fireaxe::libdn

#endif // FIREAXE_LIBDN_CHANNEL_HH
