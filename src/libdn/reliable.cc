#include "libdn/reliable.hh"

#include <algorithm>

namespace fireaxe::libdn {

uint32_t
tokenCrc(const Token &token)
{
    // Bitwise CRC-32 (IEEE 802.3, reflected 0xEDB88320) over the
    // little-endian bytes of each payload word.
    uint32_t crc = 0xFFFFFFFFu;
    for (uint64_t word : token) {
        for (int b = 0; b < 8; ++b) {
            crc ^= uint32_t((word >> (8 * b)) & 0xFF);
            for (int k = 0; k < 8; ++k)
                crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
        }
    }
    return ~crc;
}

ReliableTokenChannel::ReliableTokenChannel(
    std::string name, unsigned width_bits,
    transport::FaultModel faults, Params params, size_t capacity)
    : TokenChannel(std::move(name), width_bits, capacity),
      faults_(std::move(faults)), params_(params),
      rng_(faults_.channelRng(TokenChannel::name())),
      faultsActive_(faults_.enabled())
{}

double
ReliableTokenChannel::effTimeoutNs() const
{
    if (params_.timeoutNs > 0.0)
        return params_.timeoutNs;
    return 4.0 * (serTime_ + latency_);
}

double
ReliableTokenChannel::effNakNs() const
{
    return params_.nakNs > 0.0 ? params_.nakNs : latency_;
}

size_t
ReliableTokenChannel::effWindow() const
{
    return params_.retransmitWindow > 0 ? params_.retransmitWindow
                                        : capacity_;
}

transport::FaultEvent
ReliableTokenChannel::drawFault() const
{
    if (!faultsActive_)
        return {};
    return faults_.draw(rng_, widthBits_ ? widthBits_ : 1);
}

bool
ReliableTokenChannel::full() const
{
    return queue2_.size() >= capacity_ ||
           rtxBuf_.size() >= effWindow();
}

bool
ReliableTokenChannel::tryEnq(Token &token, double ready_time)
{
    // Untimed path (reset seeding): no link, no faults — but the
    // token still enters the sequence/ack machinery so delivery
    // bookkeeping stays consistent.
    if (full())
        return false;
    uint64_t seq = nextSeq_++;
    uint32_t crc = tokenCrc(token);
    rtxBuf_.push_back({token, 0.0, seq, crc, false, ready_time});
    queue2_.push_back(
        {std::move(token), ready_time, seq, crc, false, ready_time});
    ++enqCount2_;
    if (probe_)
        probe_->onEnqueue(ready_time, queue2_.size());
    return true;
}

bool
ReliableTokenChannel::tryEnqTimed(Token &token, double now)
{
    if (full())
        return false;

    uint64_t seq = nextSeq_++;
    uint32_t crc = tokenCrc(token);
    rtxBuf_.push_back({token, 0.0, seq, crc, false, now});
    ++enqCount2_;

    transport::FaultEvent ev = drawFault();

    // A transient link stall holds the token at the transmitter.
    double stall = ev.stallNs;
    if (stall > 0.0) {
        stats_.add("link_stalls");
        stats_.add("stall_ns_total", uint64_t(stall));
        if (probe_)
            probe_->onEvent("stall", now);
    }

    double depart = std::max(now, serializer_->lastDepart) + stall +
                    serTime_;
    serializer_->lastDepart = depart;

    // Lost tokens are recovered by the producer's retransmit timer:
    // each attempt waits out the (exponentially backed-off) timeout,
    // reoccupies the link, and may fault again.
    double penalty = 0.0;
    unsigned tries = 0;
    while (ev.drop) {
        stats_.add("tokens_dropped");
        if (probe_)
            probe_->onEvent("drop", now);
        if (tries >= faults_.config().maxRetries) {
            stats_.add("retry_budget_exhausted");
            if (probe_)
                probe_->onEvent("retry_exhausted", now);
            failed_ = true;
            break;
        }
        penalty += effTimeoutNs() *
                   double(uint64_t(1) << std::min(tries, 10u));
        ++tries;
        stats_.add("retransmits");
        stats_.add("retransmits_timeout");
        if (probe_)
            probe_->onEvent("retransmit_timeout", now);
        serializer_->lastDepart += serTime_;
        ev = drawFault();
    }

    RelEntry entry{std::move(token), depart + latency_ + penalty,
                   seq, crc, false, now};
    if (ev.corrupt && !entry.payload.empty()) {
        // Flip one payload bit in flight; the consumer's CRC check
        // will catch it and NAK.
        stats_.add("tokens_corrupted");
        if (probe_)
            probe_->onEvent("corrupt", now);
        size_t word = (ev.corruptBit / 64) % entry.payload.size();
        entry.payload[word] ^= uint64_t(1) << (ev.corruptBit % 64);
    }
    bool duplicate = ev.duplicate;
    double dup_ready = entry.readyTime + serTime_;
    Token dup_payload;
    if (duplicate) {
        stats_.add("tokens_duplicated");
        if (probe_)
            probe_->onEvent("duplicate", now);
        serializer_->lastDepart += serTime_;
        dup_payload = entry.payload;
    }
    queue2_.push_back(std::move(entry));
    if (duplicate)
        queue2_.push_back({std::move(dup_payload), dup_ready, seq,
                           crc, false, now});
    if (probe_)
        probe_->onEnqueue(now, queue2_.size());
    return true;
}

void
ReliableTokenChannel::poll(double now) const
{
    while (!queue2_.empty()) {
        RelEntry &e = queue2_.front();
        if (e.readyTime > now)
            break;
        if (e.seq <= lastDelivered_) {
            // Sequence-number check: a link-layer replay of an
            // already-delivered token.
            stats_.add("duplicates_discarded");
            if (probe_)
                probe_->onEvent("duplicate_discarded", now);
            queue2_.pop_front();
            continue;
        }
        if (!e.verified) {
            if (tokenCrc(e.payload) != e.crc) {
                // CRC mismatch: NAK and wait for retransmission.
                stats_.add("crc_errors");
                stats_.add("naks");
                if (probe_) {
                    probe_->onEvent("crc_error", now);
                    probe_->onEvent("nak", now);
                }
                uint64_t seq = e.seq;
                queue2_.pop_front();
                scheduleRetransmit(seq, now);
                continue;
            }
            e.verified = true;
        }
        break; // verified, in-order token at the head
    }
}

void
ReliableTokenChannel::scheduleRetransmit(uint64_t seq,
                                         double now) const
{
    const RelEntry *pristine = nullptr;
    for (const RelEntry &e : rtxBuf_) {
        if (e.seq == seq) {
            pristine = &e;
            break;
        }
    }
    FIREAXE_ASSERT(pristine, "channel '", name_, "' seq ", seq,
                   " NAKed but not in the retransmit buffer");

    // NAK flies back, then the buffered copy is resent; a resend
    // that faults again backs off exponentially until the retry
    // budget runs out.
    double delay = effNakNs();
    unsigned tries = 0;
    while (true) {
        ++tries;
        stats_.add("retransmits");
        stats_.add("retransmits_nak");
        if (probe_)
            probe_->onEvent("retransmit_nak", now);
        delay += serTime_ + latency_;
        transport::FaultEvent ev = drawFault();
        if (!ev.damagesToken())
            break;
        stats_.add(ev.drop ? "tokens_dropped" : "tokens_corrupted");
        if (probe_)
            probe_->onEvent(ev.drop ? "drop" : "corrupt", now);
        if (tries >= faults_.config().maxRetries) {
            stats_.add("retry_budget_exhausted");
            if (probe_)
                probe_->onEvent("retry_exhausted", now);
            failed_ = true;
            break;
        }
        delay += effTimeoutNs() *
                 double(uint64_t(1) << std::min(tries - 1, 10u));
    }
    queue2_.push_front({pristine->payload, now + delay, seq,
                        pristine->crc, false, pristine->enqTime});
}

bool
ReliableTokenChannel::headReady(double now) const
{
    poll(now);
    return !queue2_.empty() && queue2_.front().readyTime <= now;
}

double
ReliableTokenChannel::headReadyTime() const
{
    if (queue2_.empty())
        return std::numeric_limits<double>::infinity();
    return queue2_.front().readyTime;
}

const Token &
ReliableTokenChannel::head() const
{
    FIREAXE_ASSERT(!queue2_.empty(), "channel '", name_,
                   "' head of empty queue");
    return queue2_.front().payload;
}

double
ReliableTokenChannel::headEnqueueTime() const
{
    FIREAXE_ASSERT(!queue2_.empty(), "channel '", name_,
                   "' headEnqueueTime of empty queue");
    return queue2_.front().enqTime;
}

void
ReliableTokenChannel::deq()
{
    FIREAXE_ASSERT(!queue2_.empty(), "channel '", name_,
                   "' deq of empty queue");
    lastDelivered_ = queue2_.front().seq;
    queue2_.pop_front();
    ++deqCount2_;
    // Delivery is the in-process acknowledgment: retire the
    // producer-side copies up to the delivered sequence number.
    while (!rtxBuf_.empty() && rtxBuf_.front().seq <= lastDelivered_)
        rtxBuf_.pop_front();
}

void
ReliableTokenChannel::failover(double ser_time, double latency)
{
    setTiming(ser_time, latency, nullptr);
    faultsActive_ = false;
    failed_ = false;
    stats_.add("failovers");
}

} // namespace fireaxe::libdn
