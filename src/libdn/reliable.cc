#include "libdn/reliable.hh"

#include <algorithm>

namespace fireaxe::libdn {

uint32_t
tokenCrc(const Token &token)
{
    // Bitwise CRC-32 (IEEE 802.3, reflected 0xEDB88320) over the
    // little-endian bytes of each payload word.
    uint32_t crc = 0xFFFFFFFFu;
    for (uint64_t word : token) {
        for (int b = 0; b < 8; ++b) {
            crc ^= uint32_t((word >> (8 * b)) & 0xFF);
            for (int k = 0; k < 8; ++k)
                crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
        }
    }
    return ~crc;
}

ReliableTokenChannel::ReliableTokenChannel(
    std::string name, unsigned width_bits,
    transport::FaultModel faults, Params params, size_t capacity)
    : TokenChannel(std::move(name), width_bits, capacity),
      faults_(std::move(faults)), params_(params),
      txRng_(faults_.channelRng(TokenChannel::name(), "tx")),
      rxRng_(faults_.channelRng(TokenChannel::name(), "rx")),
      faultsActive_(faults_.enabled()),
      // Physical occupancy can exceed the logical capacity bound by
      // the link-layer duplicate pushed in the same attempt; pad the
      // rings a little beyond their proven bounds.
      queue2_(capacity + 6),
      rtxBuf_((params.retransmitWindow > 0 ? params.retransmitWindow
                                           : capacity) +
              4)
{}

double
ReliableTokenChannel::effTimeoutNs() const
{
    if (params_.timeoutNs > 0.0)
        return params_.timeoutNs;
    return 4.0 * (serTime() + latency());
}

double
ReliableTokenChannel::effNakNs() const
{
    return params_.nakNs > 0.0 ? params_.nakNs : latency();
}

size_t
ReliableTokenChannel::effWindow() const
{
    return params_.retransmitWindow > 0 ? params_.retransmitWindow
                                        : capacity_;
}

transport::FaultEvent
ReliableTokenChannel::drawFault(Rng &rng) const
{
    if (!faultsActive_.load(std::memory_order_relaxed))
        return {};
    return faults_.draw(rng, widthBits_ ? widthBits_ : 1);
}

bool
ReliableTokenChannel::full() const
{
    if (concurrent_) {
        drainPopLog(producerNowNs_);
        return qPushes2_ - accQueuePops_ >= capacity_ ||
               enqCount2_ - accRtxPops_ >= effWindow();
    }
    return queue2_.size() >= capacity_ ||
           rtxBuf_.size() >= effWindow();
}

size_t
ReliableTokenChannel::relOccupancy() const
{
    if (concurrent_)
        return size_t(qPushes2_ - accQueuePops_);
    return queue2_.size();
}

void
ReliableTokenChannel::enableConcurrent(int producer_part,
                                       int consumer_part,
                                       size_t pop_log_capacity)
{
    TokenChannel::enableConcurrent(producer_part, consumer_part,
                                   pop_log_capacity);
    // Re-anchor the logical occupancy to this subclass's physical
    // queues (the base anchored to its own unused queue_).
    accQueuePops_ = qPushes2_ - queue2_.size();
    accRtxPops_ = enqCount2_ - rtxBuf_.size();
}

bool
ReliableTokenChannel::tryEnq(Token &token, double ready_time)
{
    // Untimed path (reset seeding): no link, no faults — but the
    // token still enters the sequence/ack machinery so delivery
    // bookkeeping stays consistent.
    if (full())
        return false;
    uint64_t seq = nextSeq_++;
    uint32_t crc = tokenCrc(token);
    rtxBuf_.pushBack({token, 0.0, seq, crc, false, ready_time});
    queue2_.pushBack(
        {std::move(token), ready_time, seq, crc, false, ready_time});
    ++enqCount2_;
    ++qPushes2_;
    if (probe_)
        probe_->onEnqueue(ready_time, relOccupancy());
    return true;
}

bool
ReliableTokenChannel::tryEnqTimed(Token &token, double now)
{
    producerNowNs_ = std::max(producerNowNs_, now);
    if (full())
        return false;

    uint64_t seq = nextSeq_++;
    uint32_t crc = tokenCrc(token);
    rtxBuf_.pushBack({token, 0.0, seq, crc, false, now});
    ++enqCount2_;

    transport::FaultEvent ev = drawFault(txRng_);

    // A transient link stall holds the token at the transmitter.
    double stall = ev.stallNs;
    if (stall > 0.0) {
        txStats_.add("link_stalls");
        txStats_.add("stall_ns_total", uint64_t(stall));
        if (probe_)
            probe_->onEvent("stall", now);
    }

    double depart = std::max(now, serializer_->lastDepart) + stall +
                    serTime();
    serializer_->lastDepart = depart;

    // Lost tokens are recovered by the producer's retransmit timer:
    // each attempt waits out the (exponentially backed-off) timeout,
    // reoccupies the link, and may fault again.
    double penalty = 0.0;
    unsigned tries = 0;
    while (ev.drop) {
        txStats_.add("tokens_dropped");
        if (probe_)
            probe_->onEvent("drop", now);
        if (tries >= faults_.config().maxRetries) {
            txStats_.add("retry_budget_exhausted");
            if (probe_)
                probe_->onEvent("retry_exhausted", now);
            failed_.store(true, std::memory_order_relaxed);
            break;
        }
        penalty += effTimeoutNs() *
                   double(uint64_t(1) << std::min(tries, 10u));
        ++tries;
        txStats_.add("retransmits");
        txStats_.add("retransmits_timeout");
        if (probe_)
            probe_->onEvent("retransmit_timeout", now);
        serializer_->lastDepart += serTime();
        ev = drawFault(txRng_);
    }

    RelEntry entry{std::move(token), depart + latency() + penalty,
                   seq, crc, false, now};
    if (ev.corrupt && !entry.payload.empty()) {
        // Flip one payload bit in flight; the consumer's CRC check
        // will catch it and NAK.
        txStats_.add("tokens_corrupted");
        if (probe_)
            probe_->onEvent("corrupt", now);
        size_t word = (ev.corruptBit / 64) % entry.payload.size();
        entry.payload[word] ^= uint64_t(1) << (ev.corruptBit % 64);
    }
    bool duplicate = ev.duplicate;
    double dup_ready = entry.readyTime + serTime();
    Token dup_payload;
    if (duplicate) {
        txStats_.add("tokens_duplicated");
        if (probe_)
            probe_->onEvent("duplicate", now);
        serializer_->lastDepart += serTime();
        dup_payload = entry.payload;
    }
    queue2_.pushBack(std::move(entry));
    ++qPushes2_;
    if (duplicate) {
        queue2_.pushBack({std::move(dup_payload), dup_ready, seq,
                          crc, false, now});
        ++qPushes2_;
    }
    if (probe_)
        probe_->onEnqueue(now, relOccupancy());
    return true;
}

void
ReliableTokenChannel::poll(double now) const
{
    consumerNowNs_ = std::max(consumerNowNs_, now);
    while (!queue2_.empty()) {
        RelEntry &e = queue2_.front();
        if (e.readyTime > now)
            break;
        if (e.seq <= lastDelivered_) {
            // Sequence-number check: a link-layer replay of an
            // already-delivered token.
            rxStats_.add("duplicates_discarded");
            if (probe_)
                probe_->onEvent("duplicate_discarded", now);
            queue2_.popFront();
            if (concurrent_)
                logPops(now, 1, 0);
            continue;
        }
        if (!e.verified) {
            if (tokenCrc(e.payload) != e.crc) {
                // CRC mismatch: NAK and wait for retransmission.
                rxStats_.add("crc_errors");
                rxStats_.add("naks");
                if (probe_) {
                    probe_->onEvent("crc_error", now);
                    probe_->onEvent("nak", now);
                }
                uint64_t seq = e.seq;
                queue2_.popFront();
                // Pop + pushFront below net to zero occupancy —
                // nothing to publish to the producer.
                scheduleRetransmit(seq, now);
                continue;
            }
            e.verified = true;
        }
        break; // verified, in-order token at the head
    }
}

void
ReliableTokenChannel::scheduleRetransmit(uint64_t seq,
                                         double now) const
{
    const RelEntry *pristine = nullptr;
    for (size_t i = 0; i < rtxBuf_.size(); ++i) {
        const RelEntry &e = rtxBuf_.at(i);
        if (e.seq == seq) {
            pristine = &e;
            break;
        }
    }
    FIREAXE_ASSERT(pristine, "channel '", name_, "' seq ", seq,
                   " NAKed but not in the retransmit buffer");

    // NAK flies back, then the buffered copy is resent; a resend
    // that faults again backs off exponentially until the retry
    // budget runs out.
    double delay = effNakNs();
    unsigned tries = 0;
    while (true) {
        ++tries;
        rxStats_.add("retransmits");
        rxStats_.add("retransmits_nak");
        if (probe_)
            probe_->onEvent("retransmit_nak", now);
        delay += serTime() + latency();
        transport::FaultEvent ev = drawFault(rxRng_);
        if (!ev.damagesToken())
            break;
        rxStats_.add(ev.drop ? "tokens_dropped"
                             : "tokens_corrupted");
        if (probe_)
            probe_->onEvent(ev.drop ? "drop" : "corrupt", now);
        if (tries >= faults_.config().maxRetries) {
            rxStats_.add("retry_budget_exhausted");
            if (probe_)
                probe_->onEvent("retry_exhausted", now);
            failed_.store(true, std::memory_order_relaxed);
            break;
        }
        delay += effTimeoutNs() *
                 double(uint64_t(1) << std::min(tries - 1, 10u));
    }
    queue2_.pushFront({pristine->payload, now + delay, seq,
                       pristine->crc, false, pristine->enqTime});
}

bool
ReliableTokenChannel::headReady(double now) const
{
    poll(now);
    return !queue2_.empty() && queue2_.front().readyTime <= now;
}

double
ReliableTokenChannel::headReadyTime() const
{
    if (queue2_.empty())
        return std::numeric_limits<double>::infinity();
    return queue2_.front().readyTime;
}

const Token &
ReliableTokenChannel::head() const
{
    FIREAXE_ASSERT(!queue2_.empty(), "channel '", name_,
                   "' head of empty queue");
    return queue2_.front().payload;
}

double
ReliableTokenChannel::headEnqueueTime() const
{
    FIREAXE_ASSERT(!queue2_.empty(), "channel '", name_,
                   "' headEnqueueTime of empty queue");
    return queue2_.front().enqTime;
}

void
ReliableTokenChannel::deq()
{
    FIREAXE_ASSERT(!queue2_.empty(), "channel '", name_,
                   "' deq of empty queue");
    lastDelivered_ = queue2_.front().seq;
    queue2_.popFront();
    ++deqCount2_;
    // Delivery is the in-process acknowledgment: retire the
    // producer-side copies up to the delivered sequence number.
    uint32_t rtx_pops = 0;
    while (!rtxBuf_.empty() &&
           rtxBuf_.front().seq <= lastDelivered_) {
        rtxBuf_.popFront();
        ++rtx_pops;
    }
    if (concurrent_)
        logPops(consumerNowNs_, 1, rtx_pops);
}

void
ReliableTokenChannel::failover(double ser_time, double latency)
{
    setTiming(ser_time, latency, nullptr);
    faultsActive_.store(false, std::memory_order_relaxed);
    failed_.store(false, std::memory_order_relaxed);
    txStats_.add("failovers");
}

CounterSet
ReliableTokenChannel::stats() const
{
    CounterSet merged = txStats_;
    for (const auto &kv : rxStats_.all())
        merged.add(kv.first, kv.second);
    return merged;
}

} // namespace fireaxe::libdn
