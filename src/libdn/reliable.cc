#include "libdn/reliable.hh"

#include <algorithm>
#include <array>
#include <istream>
#include <ostream>

#include "base/serial.hh"

namespace fireaxe::libdn {

uint32_t
tokenCrc(const Token &token)
{
    // Bitwise CRC-32 (IEEE 802.3, reflected 0xEDB88320) over the
    // little-endian bytes of each payload word.
    uint32_t crc = 0xFFFFFFFFu;
    for (uint64_t word : token) {
        for (int b = 0; b < 8; ++b) {
            crc ^= uint32_t((word >> (8 * b)) & 0xFF);
            for (int k = 0; k < 8; ++k)
                crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
        }
    }
    return ~crc;
}

ReliableTokenChannel::ReliableTokenChannel(
    std::string name, unsigned width_bits,
    transport::FaultModel faults, Params params, size_t capacity)
    : TokenChannel(std::move(name), width_bits, capacity),
      faults_(std::move(faults)), params_(params),
      txRng_(faults_.channelRng(TokenChannel::name(), "tx")),
      rxRng_(faults_.channelRng(TokenChannel::name(), "rx")),
      faultsActive_(faults_.enabled()),
      // Physical occupancy can exceed the logical capacity bound by
      // the link-layer duplicate pushed in the same attempt; pad the
      // rings a little beyond their proven bounds.
      queue2_(capacity + 6),
      rtxBuf_((params.retransmitWindow > 0 ? params.retransmitWindow
                                           : capacity) +
              4)
{}

double
ReliableTokenChannel::effTimeoutNs() const
{
    if (params_.timeoutNs > 0.0)
        return params_.timeoutNs;
    return 4.0 * (serTime() + latency());
}

double
ReliableTokenChannel::effNakNs() const
{
    return params_.nakNs > 0.0 ? params_.nakNs : latency();
}

size_t
ReliableTokenChannel::effWindow() const
{
    return params_.retransmitWindow > 0 ? params_.retransmitWindow
                                        : capacity_;
}

transport::FaultEvent
ReliableTokenChannel::drawFault(Rng &rng) const
{
    if (!faultsActive_.load(std::memory_order_relaxed))
        return {};
    return faults_.draw(rng, widthBits_ ? widthBits_ : 1);
}

bool
ReliableTokenChannel::full() const
{
    if (concurrent_) {
        drainPopLog(producerNowNs_);
        return qPushes2_ - accQueuePops_ >= capacity_ ||
               enqCount2_ - accRtxPops_ >= effWindow();
    }
    return queue2_.size() >= capacity_ ||
           rtxBuf_.size() >= effWindow();
}

size_t
ReliableTokenChannel::relOccupancy() const
{
    if (concurrent_)
        return size_t(qPushes2_ - accQueuePops_);
    return queue2_.size();
}

void
ReliableTokenChannel::enableConcurrent(int producer_part,
                                       int consumer_part,
                                       size_t pop_log_capacity)
{
    TokenChannel::enableConcurrent(producer_part, consumer_part,
                                   pop_log_capacity);
    // Re-anchor the logical occupancy to this subclass's physical
    // queues (the base anchored to its own unused queue_).
    accQueuePops_ = qPushes2_ - queue2_.size();
    accRtxPops_ = enqCount2_ - rtxBuf_.size();
}

bool
ReliableTokenChannel::tryEnq(Token &token, double ready_time)
{
    if (suppress_ > 0) {
        // Restarted-producer replay: this token was already
        // transmitted before the crash and every producer-side
        // effect (sequence number, serializer slot, fault draws,
        // retransmit-buffer entry) is already in the channel.
        --suppress_;
        return true;
    }
    // Untimed path (reset seeding): no link, no faults — but the
    // token still enters the sequence/ack machinery so delivery
    // bookkeeping stays consistent.
    if (full())
        return false;
    uint64_t seq = nextSeq_++;
    uint32_t crc = tokenCrc(token);
    rtxBuf_.pushBack({token, 0.0, seq, crc, false, ready_time});
    queue2_.pushBack(
        {std::move(token), ready_time, seq, crc, false, ready_time});
    ++enqCount2_;
    ++qPushes2_;
    if (probe_ && probe_->countsTokens())
        probe_->onEnqueue(ready_time, relOccupancy());
    return true;
}

bool
ReliableTokenChannel::tryEnqTimed(Token &token, double now)
{
    if (suppress_ > 0) {
        // See tryEnq: the channel already reflects this token.
        --suppress_;
        return true;
    }
    producerNowNs_ = std::max(producerNowNs_, now);
    if (full())
        return false;
    unsigned depth = batchDepth();
    if (depth > 1 && !pipelined_ && batchPos_ == 0 &&
        now < stallUntil_)
        return false; // stop-and-wait: last epoch's frame still flying

    uint64_t seq = nextSeq_++;
    uint32_t crc = tokenCrc(token);
    rtxBuf_.pushBack({token, 0.0, seq, crc, false, now});
    ++enqCount2_;

    if (depth > 1 && batchPos_ + 1 < depth) {
        // Within-epoch token of a batched channel: the consumer
        // reproduces it locally from the last epoch-boundary image,
        // so it never traverses the physical link — no serializer
        // slot, no fault draw, payload evaluation cost only. It still
        // enters the sequence/CRC/ack machinery: a frame-granular
        // retransmission replays the whole epoch from rtxBuf_.
        ++batchPos_;
        double ready = now + payloadSerNs();
        queue2_.pushBack({std::move(token), ready, seq, crc, false,
                          now});
        ++qPushes2_;
        if (probe_) {
            if (probe_->countsTokens())
                probe_->onEnqueue(now, relOccupancy());
            if (probe_->tokenSampled(seq))
                probe_->onTokenEnqueue(seq, now, ready, ready, 0.0,
                                       0.0);
        }
        return true;
    }
    // Unbatched token, or a batched channel's epoch boundary: the
    // transmission unit (token or whole frame) occupies the shared
    // link and is exposed to the fault model. frameSerNs() is
    // serTime() when batchDepth is 1, so the two cases share one
    // path — at frame granularity, drops and corruption hit the
    // boundary token and every recovery charge is a frame
    // serialization.
    double unit_ser = frameSerNs();
    if (depth > 1)
        batchPos_ = 0;

    transport::FaultEvent ev = drawFault(txRng_);

    // A transient link stall holds the token at the transmitter.
    double stall = ev.stallNs;
    if (stall > 0.0) {
        txStats_.add("link_stalls");
        txStats_.add("stall_ns_total", uint64_t(stall));
        if (probe_)
            probe_->onEvent("stall", now);
    }

    double depart = std::max(now, serializer_->lastDepart) + stall +
                    unit_ser;
    serializer_->lastDepart = depart;

    // Lost tokens are recovered by the producer's retransmit timer:
    // each attempt waits out the (exponentially backed-off) timeout,
    // reoccupies the link, and may fault again.
    double penalty = 0.0;
    unsigned tries = 0;
    while (ev.drop) {
        txStats_.add("tokens_dropped");
        if (probe_)
            probe_->onEvent("drop", now);
        if (tries >= faults_.config().maxRetries) {
            txStats_.add("retry_budget_exhausted");
            if (probe_)
                probe_->onEvent("retry_exhausted", now);
            failed_.store(true, std::memory_order_relaxed);
            break;
        }
        penalty += effTimeoutNs() *
                   double(uint64_t(1) << std::min(tries, 10u));
        ++tries;
        txStats_.add("retransmits");
        txStats_.add("retransmits_timeout");
        if (probe_)
            probe_->onEvent("retransmit_timeout", now);
        serializer_->lastDepart += unit_ser;
        ev = drawFault(txRng_);
    }

    RelEntry entry{std::move(token), depart + latency() + penalty,
                   seq, crc, false, now};
    if (ev.corrupt && !entry.payload.empty()) {
        // Flip one payload bit in flight; the consumer's CRC check
        // will catch it and NAK.
        txStats_.add("tokens_corrupted");
        if (probe_)
            probe_->onEvent("corrupt", now);
        size_t word = (ev.corruptBit / 64) % entry.payload.size();
        entry.payload[word] ^= uint64_t(1) << (ev.corruptBit % 64);
    }
    bool duplicate = ev.duplicate;
    double dup_ready = entry.readyTime + unit_ser;
    Token dup_payload;
    if (duplicate) {
        txStats_.add("tokens_duplicated");
        if (probe_)
            probe_->onEvent("duplicate", now);
        serializer_->lastDepart += unit_ser;
        dup_payload = entry.payload;
    }
    if (depth > 1 && !pipelined_)
        stallUntil_ = entry.readyTime;
    queue2_.pushBack(std::move(entry));
    ++qPushes2_;
    if (duplicate) {
        queue2_.pushBack({std::move(dup_payload), dup_ready, seq,
                          crc, false, now});
        ++qPushes2_;
    }
    if (probe_) {
        if (probe_->countsTokens())
            probe_->onEnqueue(now, relOccupancy());
        if (probe_->tokenSampled(seq)) {
            probe_->onTokenEnqueue(seq, now, depart,
                                   depart + latency() + penalty,
                                   latency(), penalty);
        }
    }
    return true;
}

void
ReliableTokenChannel::poll(double now) const
{
    consumerNowNs_ = std::max(consumerNowNs_, now);
    // Replayed deliveries (single-partition restart) sit ahead of
    // the live queue and are already verified in-order tokens.
    if (!replayFront_.empty())
        return;
    while (!queue2_.empty()) {
        RelEntry &e = queue2_.front();
        if (e.readyTime > now)
            break;
        if (e.seq <= lastDelivered_) {
            // Sequence-number check: a link-layer replay of an
            // already-delivered token.
            rxStats_.add("duplicates_discarded");
            if (probe_)
                probe_->onEvent("duplicate_discarded", now);
            queue2_.popFront();
            if (concurrent_)
                logPops(now, 1, 0);
            continue;
        }
        if (!e.verified) {
            if (tokenCrc(e.payload) != e.crc) {
                // CRC mismatch: NAK and wait for retransmission.
                rxStats_.add("crc_errors");
                rxStats_.add("naks");
                if (probe_) {
                    probe_->onEvent("crc_error", now);
                    probe_->onEvent("nak", now);
                }
                uint64_t seq = e.seq;
                queue2_.popFront();
                // Pop + pushFront below net to zero occupancy —
                // nothing to publish to the producer.
                scheduleRetransmit(seq, now);
                continue;
            }
            e.verified = true;
        }
        break; // verified, in-order token at the head
    }
}

void
ReliableTokenChannel::scheduleRetransmit(uint64_t seq,
                                         double now) const
{
    const RelEntry *pristine = nullptr;
    for (size_t i = 0; i < rtxBuf_.size(); ++i) {
        const RelEntry &e = rtxBuf_.at(i);
        if (e.seq == seq) {
            pristine = &e;
            break;
        }
    }
    FIREAXE_ASSERT(pristine, "channel '", name_, "' seq ", seq,
                   " NAKed but not in the retransmit buffer");

    // NAK flies back, then the buffered copy is resent; a resend
    // that faults again backs off exponentially until the retry
    // budget runs out.
    double delay = effNakNs();
    unsigned tries = 0;
    while (true) {
        ++tries;
        rxStats_.add("retransmits");
        rxStats_.add("retransmits_nak");
        if (probe_)
            probe_->onEvent("retransmit_nak", now);
        // Batched channels retransmit at frame granularity: a NAKed
        // boundary token resends the whole epoch's frame.
        delay += frameSerNs() + latency();
        transport::FaultEvent ev = drawFault(rxRng_);
        if (!ev.damagesToken())
            break;
        rxStats_.add(ev.drop ? "tokens_dropped"
                             : "tokens_corrupted");
        if (probe_)
            probe_->onEvent(ev.drop ? "drop" : "corrupt", now);
        if (tries >= faults_.config().maxRetries) {
            rxStats_.add("retry_budget_exhausted");
            if (probe_)
                probe_->onEvent("retry_exhausted", now);
            failed_.store(true, std::memory_order_relaxed);
            break;
        }
        delay += effTimeoutNs() *
                 double(uint64_t(1) << std::min(tries - 1, 10u));
    }
    nak_ = {seq, now + delay, tries, delay};
    if (probe_ && probe_->tokenSampled(seq))
        probe_->onTokenNak(seq, now, delay);
    queue2_.pushFront({pristine->payload, now + delay, seq,
                       pristine->crc, false, pristine->enqTime});
}

bool
ReliableTokenChannel::headReady(double now) const
{
    poll(now);
    if (!replayFront_.empty())
        return replayFront_.front().readyTime <= now;
    return !queue2_.empty() && queue2_.front().readyTime <= now;
}

double
ReliableTokenChannel::headReadyTime() const
{
    if (!replayFront_.empty())
        return replayFront_.front().readyTime;
    if (queue2_.empty())
        return std::numeric_limits<double>::infinity();
    return queue2_.front().readyTime;
}

const Token &
ReliableTokenChannel::head() const
{
    if (!replayFront_.empty())
        return replayFront_.front().payload;
    FIREAXE_ASSERT(!queue2_.empty(), "channel '", name_,
                   "' head of empty queue");
    return queue2_.front().payload;
}

double
ReliableTokenChannel::headEnqueueTime() const
{
    if (!replayFront_.empty())
        return replayFront_.front().enqTime;
    FIREAXE_ASSERT(!queue2_.empty(), "channel '", name_,
                   "' headEnqueueTime of empty queue");
    return queue2_.front().enqTime;
}

void
ReliableTokenChannel::deq()
{
    if (!replayFront_.empty()) {
        // Re-delivery of a logged token during a single-partition
        // restart: the physical queue and the producer's retransmit
        // buffer already account for it (its seq precedes the
        // rolled-forward acknowledgment horizon), so only the
        // consumer's delivery counters move — and nothing is
        // published to the producer's pop accounting.
        RelEntry e = std::move(replayFront_.front());
        replayFront_.pop_front();
        replayFrontSize_.store(replayFront_.size(),
                               std::memory_order_release);
        lastDelivered_ = e.seq;
        ++deqCount2_;
        logDelivered(e);
        return;
    }
    FIREAXE_ASSERT(!queue2_.empty(), "channel '", name_,
                   "' deq of empty queue");
    lastDelivered_ = queue2_.front().seq;
    if (nak_.pendingSeq != 0 && lastDelivered_ >= nak_.pendingSeq)
        nak_ = {}; // the NAKed token's recovery completed
    logDelivered(queue2_.front());
    queue2_.popFront();
    ++deqCount2_;
    // Delivery is the in-process acknowledgment: retire the
    // producer-side copies up to the delivered sequence number.
    uint32_t rtx_pops = 0;
    while (!rtxBuf_.empty() &&
           rtxBuf_.front().seq <= lastDelivered_) {
        rtxBuf_.popFront();
        ++rtx_pops;
    }
    if (concurrent_)
        logPops(consumerNowNs_, 1, rtx_pops);
}

void
ReliableTokenChannel::logDelivered(const RelEntry &e) const
{
    if (replayCap_ == 0)
        return;
    replayLog_.push_back(e);
    if (replayLog_.size() > replayCap_)
        replayLog_.pop_front();
}

void
ReliableTokenChannel::setReplayLogCapacity(size_t n)
{
    replayCap_ = n;
    while (replayLog_.size() > replayCap_)
        replayLog_.pop_front();
}

bool
ReliableTokenChannel::replayFromLog(uint64_t cut_deq_count,
                                    uint64_t cut_last_delivered,
                                    std::string &error)
{
    FIREAXE_ASSERT(!concurrent_, "channel '", name_,
                   "' replayFromLog requires a quiesce point");
    if (!replayFront_.empty()) {
        error = "channel '" + name_ +
                "': a replay is already in progress";
        return false;
    }
    if (cut_deq_count > deqCount2_) {
        error = "channel '" + name_ +
                "': recovery point is ahead of the channel";
        return false;
    }
    uint64_t n = deqCount2_ - cut_deq_count;
    if (n > replayLog_.size()) {
        error = "channel '" + name_ + "': replay log holds " +
                std::to_string(replayLog_.size()) + " of the " +
                std::to_string(n) +
                " deliveries since the recovery point (raise "
                "the replay log depth or restore the whole run)";
        return false;
    }
    // Move the since-the-cut suffix of the log into the replay
    // front; re-delivery will log them again, converging the log
    // back to its pre-restart contents.
    for (uint64_t i = 0; i < n; ++i) {
        replayFront_.push_front(std::move(replayLog_.back()));
        replayLog_.pop_back();
    }
    replayFrontSize_.store(replayFront_.size(),
                           std::memory_order_release);
    deqCount2_ = cut_deq_count;
    lastDelivered_ = cut_last_delivered;
    error.clear();
    return true;
}

void
ReliableTokenChannel::failover(double ser_time, double latency)
{
    setTiming(ser_time, latency, nullptr);
    // The fallback transport has no epoch-batching gateware: revert
    // to per-token transmission. Tokens already stamped keep their
    // ready times; future enqueues pay the per-token cost.
    batchDepth_.store(1, std::memory_order_relaxed);
    batchPos_ = 0;
    stallUntil_ = 0.0;
    faultsActive_.store(false, std::memory_order_relaxed);
    failed_.store(false, std::memory_order_relaxed);
    txStats_.add("failovers");
}

CounterSet
ReliableTokenChannel::stats() const
{
    CounterSet merged = txStats_;
    for (const auto &kv : rxStats_.all())
        merged.add(kv.first, kv.second);
    return merged;
}

namespace {

void
writeRelEntry(std::ostream &os, const ReliableTokenChannel &,
              const Token &payload, double ready_time, uint64_t seq,
              uint32_t crc, bool verified, double enq_time)
{
    os << payload.size();
    for (uint64_t w : payload)
        os << " " << w;
    os << " " << doubleBits(ready_time) << " " << seq << " " << crc
       << " " << (verified ? 1 : 0) << " " << doubleBits(enq_time)
       << "\n";
}

void
writeCounters(std::ostream &os, const CounterSet &cs)
{
    os << cs.all().size();
    for (const auto &kv : cs.all())
        os << " " << kv.first << " " << kv.second;
    os << "\n";
}

void
writeRng(std::ostream &os, const Rng &rng)
{
    auto s = rng.state();
    os << s[0] << " " << s[1] << " " << s[2] << " " << s[3] << "\n";
}

} // namespace

void
ReliableTokenChannel::saveCkpt(std::ostream &os) const
{
    TokenChannel::saveCkpt(os);
    os << "fireaxe-relchan 1\n";
    os << nextSeq_ << " " << lastDelivered_ << " " << enqCount2_
       << " " << deqCount2_ << " " << qPushes2_ << " "
       << (failed_.load(std::memory_order_relaxed) ? 1 : 0) << " "
       << (faultsActive_.load(std::memory_order_relaxed) ? 1 : 0)
       << " " << suppress_ << " " << replayCap_ << "\n";
    os << nak_.pendingSeq << " " << doubleBits(nak_.resendReadyNs)
       << " " << nak_.backoffTries << " "
       << doubleBits(nak_.backoffNs) << "\n";
    writeRng(os, txRng_);
    writeRng(os, rxRng_);
    writeCounters(os, txStats_);
    writeCounters(os, rxStats_);
    os << queue2_.size() << "\n";
    for (size_t i = 0; i < queue2_.size(); ++i) {
        const RelEntry &e = queue2_.at(i);
        writeRelEntry(os, *this, e.payload, e.readyTime, e.seq,
                      e.crc, e.verified, e.enqTime);
    }
    os << rtxBuf_.size() << "\n";
    for (size_t i = 0; i < rtxBuf_.size(); ++i) {
        const RelEntry &e = rtxBuf_.at(i);
        writeRelEntry(os, *this, e.payload, e.readyTime, e.seq,
                      e.crc, e.verified, e.enqTime);
    }
}

bool
ReliableTokenChannel::tryLoadCkpt(std::istream &is,
                                  std::string &error)
{
    if (!TokenChannel::tryLoadCkpt(is, error))
        return false;
    auto fail = [&](std::string msg) {
        error = "channel '" + name_ + "': " + std::move(msg);
        return false;
    };
    auto readEntries = [&](size_t ring_cap,
                           std::vector<RelEntry> &out) {
        size_t n = 0;
        is >> n;
        if (!is || n > ring_cap)
            return false;
        out.resize(n);
        for (auto &e : out) {
            size_t words = 0;
            is >> words;
            if (!is || words > 4096)
                return false;
            e.payload.resize(words);
            for (auto &w : e.payload)
                is >> w;
            uint64_t ready_b = 0, enq_b = 0;
            unsigned verified = 0;
            is >> ready_b >> e.seq >> e.crc >> verified >> enq_b;
            if (!is)
                return false;
            e.readyTime = bitsToDouble(ready_b);
            e.verified = verified != 0;
            e.enqTime = bitsToDouble(enq_b);
        }
        return true;
    };
    auto readCounters = [&](CounterSet &cs) {
        size_t n = 0;
        is >> n;
        if (!is || n > 1024)
            return false;
        cs.reset();
        for (size_t i = 0; i < n; ++i) {
            std::string name;
            uint64_t value = 0;
            is >> name >> value;
            if (!is)
                return false;
            cs.add(name, value);
        }
        return true;
    };
    auto readRng = [&](Rng &rng) {
        std::array<uint64_t, 4> s{};
        is >> s[0] >> s[1] >> s[2] >> s[3];
        if (!is)
            return false;
        rng.setState(s);
        return true;
    };

    std::string magic;
    unsigned version = 0;
    is >> magic >> version;
    if (magic != "fireaxe-relchan" || version != 1)
        return fail("not a reliable-channel checkpoint stream");

    uint64_t next_seq = 0, last_delivered = 0, enq2 = 0, deq2 = 0,
             pushes2 = 0, suppress = 0;
    unsigned failed = 0, faults_active = 0;
    size_t replay_cap = 0;
    is >> next_seq >> last_delivered >> enq2 >> deq2 >> pushes2 >>
        failed >> faults_active >> suppress >> replay_cap;
    NakRecovery nak;
    uint64_t resend_b = 0, backoff_b = 0;
    is >> nak.pendingSeq >> resend_b >> nak.backoffTries >>
        backoff_b;
    if (!is)
        return fail("truncated reliable-channel checkpoint");
    nak.resendReadyNs = bitsToDouble(resend_b);
    nak.backoffNs = bitsToDouble(backoff_b);

    Rng tx_rng(0), rx_rng(0);
    if (!readRng(tx_rng) || !readRng(rx_rng))
        return fail("truncated fault-RNG state");
    CounterSet tx_stats, rx_stats;
    if (!readCounters(tx_stats) || !readCounters(rx_stats))
        return fail("truncated reliability counters");
    std::vector<RelEntry> queue_entries, rtx_entries;
    if (!readEntries(queue2_.capacity(), queue_entries))
        return fail("truncated in-flight queue");
    if (!readEntries(rtxBuf_.capacity(), rtx_entries))
        return fail("truncated retransmit buffer");

    nextSeq_ = next_seq;
    lastDelivered_ = last_delivered;
    enqCount2_ = enq2;
    deqCount2_ = deq2;
    qPushes2_ = pushes2;
    suppress_ = suppress;
    replayCap_ = replay_cap;
    failed_.store(failed != 0, std::memory_order_relaxed);
    faultsActive_.store(faults_active != 0,
                        std::memory_order_relaxed);
    nak_ = nak;
    txRng_ = tx_rng;
    rxRng_ = rx_rng;
    txStats_ = tx_stats;
    rxStats_ = rx_stats;
    while (!queue2_.empty())
        queue2_.popFront();
    for (auto &e : queue_entries)
        queue2_.pushBack(std::move(e));
    while (!rtxBuf_.empty())
        rtxBuf_.popFront();
    for (auto &e : rtx_entries)
        rtxBuf_.pushBack(std::move(e));
    // Restart-replay state is transient and never part of a durable
    // cut: a restore starts with a clean replay pipeline.
    replayFront_.clear();
    replayFrontSize_.store(0, std::memory_order_relaxed);
    replayLog_.clear();
    error.clear();
    return true;
}

} // namespace fireaxe::libdn
