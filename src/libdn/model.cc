#include "libdn/model.hh"

#include <algorithm>
#include <istream>
#include <ostream>

#include "base/logging.hh"
#include "passes/flatten.hh"

namespace fireaxe::libdn {

LIBDNModel::LIBDNModel(
    std::string name, const firrtl::Circuit &circuit,
    unsigned num_threads, rtlsim::EvalEngine engine,
    std::shared_ptr<const rtlsim::CompiledProgram> precompiled)
    : name_(std::move(name)), numThreads_(num_threads)
{
    FIREAXE_ASSERT(num_threads >= 1);
    firrtl::Circuit flat = passes::flattenAll(circuit);
    sim_ = std::make_unique<rtlsim::Simulator>(
        flat, engine, std::move(precompiled));
    threads_.resize(numThreads_);
    if (numThreads_ > 1) {
        for (auto &th : threads_)
            sim_->saveState(th.seq);
    }
}

unsigned
LIBDNModel::channelWidth(const ChannelSpec &spec) const
{
    unsigned width = 0;
    for (const auto &port : spec.ports) {
        int idx = sim_->signalIndex(port);
        if (idx < 0) {
            fatal("partition '", name_, "': channel '", spec.name,
                  "' names unknown port '", port, "'");
        }
        width += sim_->signal(idx).width;
    }
    return width;
}

int
LIBDNModel::defineInputChannel(const ChannelSpec &spec)
{
    FIREAXE_ASSERT(!finalized_, "model already finalized");
    std::vector<int> idx;
    for (const auto &port : spec.ports) {
        int sig = sim_->signalIndex(port);
        if (sig < 0 || sim_->signal(sig).kind != rtlsim::SigKind::Input) {
            fatal("partition '", name_, "': input channel '", spec.name,
                  "' port '", port, "' is not an input port");
        }
        idx.push_back(sig);
    }
    inSpecs_.push_back(spec);
    inPortIdx_.push_back(std::move(idx));
    for (auto &th : threads_)
        th.inChans.resize(inSpecs_.size());
    return int(inSpecs_.size()) - 1;
}

int
LIBDNModel::defineOutputChannel(const ChannelSpec &spec)
{
    FIREAXE_ASSERT(!finalized_, "model already finalized");
    std::vector<int> idx;
    for (const auto &port : spec.ports) {
        int sig = sim_->signalIndex(port);
        if (sig < 0 ||
            sim_->signal(sig).kind != rtlsim::SigKind::Output) {
            fatal("partition '", name_, "': output channel '",
                  spec.name, "' port '", port,
                  "' is not an output port");
        }
        idx.push_back(sig);
    }
    outSpecs_.push_back(spec);
    outPortIdx_.push_back(std::move(idx));
    for (auto &th : threads_) {
        th.outChans.resize(outSpecs_.size());
        th.fired.resize(outSpecs_.size(), false);
    }
    return int(outSpecs_.size()) - 1;
}

void
LIBDNModel::bindInput(int slot, unsigned thread, ChannelPtr channel)
{
    FIREAXE_ASSERT(slot >= 0 && size_t(slot) < inSpecs_.size());
    FIREAXE_ASSERT(thread < numThreads_);
    threads_[thread].inChans[slot] = std::move(channel);
}

void
LIBDNModel::bindOutput(int slot, unsigned thread, ChannelPtr channel)
{
    FIREAXE_ASSERT(slot >= 0 && size_t(slot) < outSpecs_.size());
    FIREAXE_ASSERT(thread < numThreads_);
    threads_[thread].outChans[slot] = std::move(channel);
}

unsigned
LIBDNModel::inputChannelWidth(int slot) const
{
    FIREAXE_ASSERT(slot >= 0 && size_t(slot) < inSpecs_.size());
    return channelWidth(inSpecs_[slot]);
}

unsigned
LIBDNModel::outputChannelWidth(int slot) const
{
    FIREAXE_ASSERT(slot >= 0 && size_t(slot) < outSpecs_.size());
    return channelWidth(outSpecs_[slot]);
}

void
LIBDNModel::finalize()
{
    FIREAXE_ASSERT(!finalized_);

    // Map each bound input signal to its owning channel slot.
    std::map<int, int> sigToInChan;
    for (size_t c = 0; c < inPortIdx_.size(); ++c)
        for (int sig : inPortIdx_[c])
            sigToInChan[sig] = int(c);

    // Channel-level dependency sets from the simulator's signal-level
    // dependency matrix: output channel C depends on input channel D
    // when any port of C combinationally depends on any port of D.
    outDeps_.assign(outSpecs_.size(), {});
    if (forceOutputDeps_) {
        // Fast-mode (Fig. 3b): one concatenated token out per
        // concatenated token in, lockstep.
        for (size_t c = 0; c < outSpecs_.size(); ++c)
            for (size_t i = 0; i < inSpecs_.size(); ++i)
                outDeps_[c].insert(int(i));
    } else {
        for (size_t c = 0; c < outPortIdx_.size(); ++c) {
            for (int out_sig : outPortIdx_[c]) {
                for (int in_sig : sim_->outputDeps(out_sig)) {
                    auto it = sigToInChan.find(in_sig);
                    if (it != sigToInChan.end())
                        outDeps_[c].insert(it->second);
                }
            }
        }
    }

    for (unsigned t = 0; t < numThreads_; ++t) {
        const ThreadState &th = threads_[t];
        for (size_t c = 0; c < inSpecs_.size(); ++c) {
            if (!th.inChans[c]) {
                fatal("partition '", name_, "': input channel '",
                      inSpecs_[c].name, "' unbound for thread ", t);
            }
        }
        for (size_t c = 0; c < outSpecs_.size(); ++c) {
            if (!th.outChans[c]) {
                fatal("partition '", name_, "': output channel '",
                      outSpecs_[c].name, "' unbound for thread ", t);
            }
        }
    }
    finalized_ = true;
}

void
LIBDNModel::seedOutputs(double now)
{
    FIREAXE_ASSERT(finalized_, "finalize() before seedOutputs()");
    for (unsigned t = 0; t < numThreads_; ++t) {
        ThreadState &th = threads_[t];
        if (numThreads_ > 1)
            sim_->loadState(th.seq);
        sim_->evalComb();
        for (size_t c = 0; c < outSpecs_.size(); ++c) {
            Token token;
            token.reserve(outPortIdx_[c].size());
            for (int sig : outPortIdx_[c])
                token.push_back(sim_->peekIdx(sig));
            th.outChans[c]->enq(std::move(token), now);
        }
    }
}

bool
LIBDNModel::threadTick(ThreadState &th, double now)
{
    // Cheap no-change check: if the channel situation is identical to
    // the last tick of this thread within the same target cycle, the
    // FSMs cannot make new progress, so skip the evaluation.
    std::vector<bool> situation;
    situation.reserve(th.inChans.size() + th.outChans.size());
    for (const auto &ch : th.inChans)
        situation.push_back(ch->headReady(now));
    for (size_t c = 0; c < th.outChans.size(); ++c)
        situation.push_back(!th.fired[c] && !th.outChans[c]->full() &&
                            th.outChans[c]->writableAt(now));
    if (th.situationValid && situation == th.lastSituation)
        return false;
    th.lastSituation = situation;
    th.situationValid = true;

    if (numThreads_ > 1)
        sim_->loadState(th.seq);

    // Poke values of every visible input token.
    std::vector<bool> in_avail(th.inChans.size(), false);
    for (size_t c = 0; c < th.inChans.size(); ++c) {
        if (th.inChans[c]->headReady(now)) {
            in_avail[c] = true;
            const Token &token = th.inChans[c]->head();
            FIREAXE_ASSERT(token.size() == inPortIdx_[c].size());
            for (size_t i = 0; i < token.size(); ++i)
                sim_->pokeIdx(inPortIdx_[c][i], token[i]);
        }
    }

    unsigned thread_id = unsigned(&th - threads_.data());
    if (driver_)
        driver_(*sim_, thread_id, th.cycle);
    sim_->evalComb();

    bool progress = false;

    // Output-channel FSMs: fire once all dependencies are visible.
    for (size_t c = 0; c < th.outChans.size(); ++c) {
        if (th.fired[c] || th.outChans[c]->full())
            continue;
        bool deps_ok = true;
        for (int dep : outDeps_[c]) {
            if (!in_avail[dep]) {
                deps_ok = false;
                break;
            }
        }
        if (!deps_ok)
            continue;
        Token token;
        token.reserve(outPortIdx_[c].size());
        for (int sig : outPortIdx_[c])
            token.push_back(sim_->peekIdx(sig));
        // Backpressure (channel or retransmit-buffer full) is
        // recoverable: leave the FSM unfired and retry on a later
        // host cycle.
        if (!th.outChans[c]->tryEnqTimed(token, now))
            continue;
        th.fired[c] = true;
        ++fires_;
        progress = true;
    }

    // fireFSM: advance a target cycle when every input channel has a
    // token and every output channel has fired.
    bool all_in = std::all_of(in_avail.begin(), in_avail.end(),
                              [](bool b) { return b; });
    bool all_fired = std::all_of(th.fired.begin(), th.fired.end(),
                                 [](bool b) { return b; });
    if (all_in && all_fired) {
        if (monitor_ && th.cycle >= monitorSuppressUntil_)
            monitor_(*sim_, thread_id, th.cycle);
        for (auto &ch : th.inChans)
            ch->retire(now, th.cycle);
        sim_->step();
        ++th.cycle;
        ++advances_;
        std::fill(th.fired.begin(), th.fired.end(), false);
        th.situationValid = false;
        progress = true;
        if (numThreads_ > 1)
            sim_->saveState(th.seq);
        curThread_ = (curThread_ + 1) % numThreads_;
    } else if (progress && numThreads_ > 1) {
        sim_->saveState(th.seq);
    }
    if (progress)
        th.situationValid = false;
    return progress;
}

bool
LIBDNModel::tick(double now)
{
    FIREAXE_ASSERT(finalized_, "finalize() before tick()");
    return threadTick(threads_[curThread_], now);
}

uint64_t
LIBDNModel::targetCycle(unsigned thread) const
{
    FIREAXE_ASSERT(thread < numThreads_);
    return threads_[thread].cycle;
}

uint64_t
LIBDNModel::minTargetCycle() const
{
    uint64_t m = threads_[0].cycle;
    for (const auto &th : threads_)
        m = std::min(m, th.cycle);
    return m;
}

const std::set<int> &
LIBDNModel::outputChannelDeps(int slot) const
{
    FIREAXE_ASSERT(finalized_ && slot >= 0 &&
                   size_t(slot) < outDeps_.size());
    return outDeps_[slot];
}

void
LIBDNModel::saveFsm(std::ostream &os) const
{
    os << "fireaxe-fsm 1\n";
    os << numThreads_ << " " << curThread_ << " " << fires_ << " "
       << advances_ << "\n";
    for (const ThreadState &th : threads_) {
        os << th.cycle << " " << th.fired.size();
        for (bool f : th.fired)
            os << " " << (f ? 1 : 0);
        os << "\n";
        os << th.seq.regValues.size();
        for (uint64_t v : th.seq.regValues)
            os << " " << v;
        os << "\n";
        os << th.seq.memContents.size() << "\n";
        for (const auto &mem : th.seq.memContents) {
            os << mem.size();
            for (uint64_t v : mem)
                os << " " << v;
            os << "\n";
        }
    }
}

bool
LIBDNModel::tryLoadFsm(std::istream &is, std::string &error)
{
    auto fail = [&](std::string msg) {
        error = "partition '" + name_ + "': " + std::move(msg);
        return false;
    };
    std::string magic;
    unsigned version = 0;
    is >> magic >> version;
    if (magic != "fireaxe-fsm" || version != 1)
        return fail("not an FSM checkpoint stream");
    unsigned threads = 0, cur = 0;
    uint64_t fires = 0, advances = 0;
    is >> threads >> cur >> fires >> advances;
    if (!is)
        return fail("truncated FSM checkpoint header");
    if (threads != numThreads_ || cur >= threads)
        return fail("FSM checkpoint is for " +
                    std::to_string(threads) + " threads, model has " +
                    std::to_string(numThreads_));

    struct ThreadCkpt
    {
        uint64_t cycle = 0;
        std::vector<bool> fired;
        rtlsim::SeqState seq;
    };
    std::vector<ThreadCkpt> loaded(threads);
    for (auto &tc : loaded) {
        size_t nfired = 0;
        is >> tc.cycle >> nfired;
        if (!is || nfired != outSpecs_.size())
            return fail("FSM checkpoint channel shape mismatch");
        tc.fired.resize(nfired);
        for (size_t c = 0; c < nfired; ++c) {
            unsigned f = 0;
            is >> f;
            tc.fired[c] = f != 0;
        }
        size_t nregs = 0;
        is >> nregs;
        if (!is || nregs > (1u << 26))
            return fail("truncated FSM checkpoint thread state");
        tc.seq.regValues.resize(nregs);
        for (auto &v : tc.seq.regValues)
            is >> v;
        size_t nmems = 0;
        is >> nmems;
        if (!is || nmems > (1u << 20))
            return fail("truncated FSM checkpoint thread state");
        tc.seq.memContents.resize(nmems);
        for (auto &mem : tc.seq.memContents) {
            size_t depth = 0;
            is >> depth;
            if (!is || depth > (1u << 26))
                return fail("truncated FSM checkpoint memory");
            mem.resize(depth);
            for (auto &v : mem)
                is >> v;
        }
        if (!is)
            return fail("truncated FSM checkpoint thread state");
    }

    curThread_ = cur;
    fires_ = fires;
    advances_ = advances;
    for (unsigned t = 0; t < threads; ++t) {
        ThreadState &th = threads_[t];
        th.cycle = loaded[t].cycle;
        th.fired = std::move(loaded[t].fired);
        th.seq = std::move(loaded[t].seq);
        th.situationValid = false;
    }
    error.clear();
    return true;
}

LIBDNModel::FsmState
LIBDNModel::fsmState(double now, unsigned thread) const
{
    FIREAXE_ASSERT(finalized_, "finalize() before fsmState()");
    const ThreadState &th = threads_.at(thread);
    FsmState state;
    state.cycle = th.cycle;
    for (size_t c = 0; c < th.inChans.size(); ++c)
        if (!th.inChans[c]->headReady(now))
            state.waitingInputs.push_back(inSpecs_[c].name);
    for (size_t c = 0; c < th.outChans.size(); ++c)
        if (!th.fired[c])
            state.unfiredOutputs.push_back(outSpecs_[c].name);
    return state;
}

} // namespace fireaxe::libdn
