/**
 * @file
 * The LI-BDN simulation model: a FAME-1/FAME-5-transformed target
 * partition (Sections II and VI-B of the paper), executed in software.
 *
 * An LIBDNModel wraps one RTL partition (an IR circuit) in the
 * latency-insensitive machinery of Fig. 1: input/output token
 * channels attached to groups of boundary ports, a per-output-channel
 * FSM that fires once all combinationally-connected input channels
 * hold a token, and a fireFSM that advances the target a cycle when
 * every input channel has a token and every output channel has fired.
 *
 * With numThreads > 1 the model becomes a FAME-5 multi-threaded
 * simulator: combinational logic (the compiled netlist) is shared
 * while sequential state is replicated per thread, and a round-robin
 * scheduler selects which thread's state to update on each host
 * cycle. This is what FireAxe uses to amortize inter-FPGA
 * communication latency across duplicate tiles.
 */

#ifndef FIREAXE_LIBDN_MODEL_HH
#define FIREAXE_LIBDN_MODEL_HH

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "libdn/channel.hh"
#include "rtlsim/simulator.hh"

namespace fireaxe::libdn {

/** A named group of boundary ports carried by one LI-BDN channel. */
struct ChannelSpec
{
    std::string name;
    std::vector<std::string> ports;
};

/** Drives external (non-channel) input ports of a partition before
 *  each combinational evaluation. Arguments: simulator, thread id,
 *  target cycle about to be simulated. */
using Driver =
    std::function<void(rtlsim::Simulator &, unsigned, uint64_t)>;

/** Observes a partition after its target cycle's final combinational
 *  evaluation, just before the state update. Arguments: simulator,
 *  thread id, target cycle just completed. */
using Monitor =
    std::function<void(rtlsim::Simulator &, unsigned, uint64_t)>;

/**
 * A host-decoupled simulation model of one partition.
 */
class LIBDNModel
{
  public:
    /**
     * @param name      Display name (e.g. "fpga0").
     * @param circuit   The partition's circuit; flattened internally.
     * @param num_threads FAME-5 thread count (1 = plain FAME-1).
     * @param engine    Evaluation engine for the partition's target
     *                  simulator (see rtlsim/engine.hh); the choice
     *                  never changes observable behaviour.
     * @param precompiled Optional shared compiled program for the
     *                  partition's flat circuit (Compiled engine
     *                  only; see rtlsim/compiled.hh) — lets a cache
     *                  skip the bytecode compile on repeat builds of
     *                  the same design.
     */
    LIBDNModel(std::string name, const firrtl::Circuit &circuit,
               unsigned num_threads = 1,
               rtlsim::EvalEngine engine =
                   rtlsim::defaultEvalEngine(),
               std::shared_ptr<const rtlsim::CompiledProgram>
                   precompiled = nullptr);

    /** Declare an input channel over the given input ports. Returns
     *  the channel slot used by bindInput(). */
    int defineInputChannel(const ChannelSpec &spec);
    /** Declare an output channel over the given output ports. */
    int defineOutputChannel(const ChannelSpec &spec);

    /** Attach the concrete queue backing a channel slot for one
     *  FAME-5 thread. Every slot/thread pair must be bound. */
    void bindInput(int slot, unsigned thread, ChannelPtr channel);
    void bindOutput(int slot, unsigned thread, ChannelPtr channel);

    /** Total width in bits of a channel slot's ports. */
    unsigned inputChannelWidth(int slot) const;
    unsigned outputChannelWidth(int slot) const;

    void setDriver(Driver driver) { driver_ = std::move(driver); }
    void setMonitor(Monitor monitor) { monitor_ = std::move(monitor); }

    /**
     * Fast-mode channel semantics (Section III-A2, Fig. 3b): the
     * partition produces its single concatenated output token only
     * as part of advancing a cycle — "each FPGA partition run[s] a
     * single cycle in parallel before they produce an output token".
     * Operationally every output channel depends on every input
     * channel, regardless of the target's combinational structure.
     * Must be called before finalize().
     */
    void forceAllOutputDeps() { forceOutputDeps_ = true; }

    /** Compute channel dependency sets and validate bindings. Must be
     *  called after all channels are defined and bound. */
    void finalize();

    /**
     * Fast-mode seeding (Section III-A2): evaluate each thread's
     * outputs at reset and push one initial token into every output
     * channel, so both sides of a combinationally-coupled boundary
     * can simulate a cycle in parallel.
     */
    void seedOutputs(double now);

    /**
     * Execute one host clock cycle at host time @p now: poke token
     * values for ready input channels, fire any output channels whose
     * dependencies are satisfied, and advance the scheduled thread's
     * target cycle when the fireFSM condition holds.
     *
     * @return true if any token moved or a target cycle advanced.
     */
    bool tick(double now);

    /** Target cycle count of a thread. */
    uint64_t targetCycle(unsigned thread = 0) const;

    /** Lowest target cycle across threads (overall progress). */
    uint64_t minTargetCycle() const;

    const std::string &name() const { return name_; }
    unsigned numThreads() const { return numThreads_; }
    rtlsim::Simulator &sim() { return *sim_; }
    const rtlsim::Simulator &sim() const { return *sim_; }

    /** Number of input/output channel slots. */
    size_t numInputChannels() const { return inSpecs_.size(); }
    size_t numOutputChannels() const { return outSpecs_.size(); }

    /** Dependency set of an output channel slot (input slots). */
    const std::set<int> &outputChannelDeps(int slot) const;

    /** Lifetime statistics (all threads). */
    uint64_t totalFires() const { return fires_; }
    uint64_t totalAdvances() const { return advances_; }

    /**
     * Snapshot of one thread's LI-BDN FSM state at host time @p now,
     * for deadlock diagnostics: which input channels the fireFSM is
     * still waiting on, and which output-channel FSMs have not fired
     * this target cycle.
     */
    struct FsmState
    {
        uint64_t cycle = 0;
        std::vector<std::string> waitingInputs;
        std::vector<std::string> unfiredOutputs;
    };
    FsmState fsmState(double now, unsigned thread = 0) const;

    // --- checkpointing (src/recovery) -----------------------------

    /**
     * Serialize the LI-BDN FSM state (per-thread target cycle,
     * output-fired flags, FAME-5 sequential-state copies, scheduler
     * position, lifetime counters). The wrapped simulator's state is
     * checkpointed separately via sim().saveCheckpoint(); together
     * the two streams capture the whole partition.
     */
    void saveFsm(std::ostream &os) const;

    /**
     * Restore an FSM checkpoint written by saveFsm(). On mismatch
     * (wrong thread count or channel shape) returns false with a
     * diagnostic in @p error and leaves the model unchanged.
     */
    bool tryLoadFsm(std::istream &is, std::string &error);

    /**
     * Single-partition restart: skip the monitor callback while this
     * model re-executes target cycles below @p cycle (they were
     * already observed before the crash). Applies to every thread.
     */
    void suppressMonitorUntil(uint64_t cycle)
    {
        monitorSuppressUntil_ = cycle;
    }

  private:
    struct ThreadState
    {
        rtlsim::SeqState seq;
        std::vector<ChannelPtr> inChans;
        std::vector<ChannelPtr> outChans;
        std::vector<bool> fired;
        uint64_t cycle = 0;
        // Situation signature for cheap no-change detection.
        std::vector<bool> lastSituation;
        bool situationValid = false;
    };

    unsigned channelWidth(const ChannelSpec &spec) const;
    bool threadTick(ThreadState &th, double now);

    std::string name_;
    unsigned numThreads_;
    std::unique_ptr<rtlsim::Simulator> sim_;
    Driver driver_;
    Monitor monitor_;

    std::vector<ChannelSpec> inSpecs_;
    std::vector<ChannelSpec> outSpecs_;
    std::vector<std::vector<int>> inPortIdx_;  // per slot: signal idx
    std::vector<std::vector<int>> outPortIdx_;
    std::vector<std::set<int>> outDeps_; // out slot -> in slots
    std::vector<ThreadState> threads_;
    unsigned curThread_ = 0;
    bool finalized_ = false;
    uint64_t fires_ = 0;
    uint64_t advances_ = 0;
    bool forceOutputDeps_ = false;
    /** Monitor callbacks are skipped below this target cycle
     *  (single-partition restart re-execution). */
    uint64_t monitorSuppressUntil_ = 0;
};

} // namespace fireaxe::libdn

#endif // FIREAXE_LIBDN_MODEL_HH
