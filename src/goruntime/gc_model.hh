/**
 * @file
 * Go runtime garbage-collection tail-latency model (Section V-D,
 * Fig. 10; golang/go issue #18534).
 *
 * The benchmark: a main goroutine is woken by a periodic 10 us tick
 * and allocates heap objects, stressing the collector. The measured
 * quantity is the tail of the tick-to-handler-completion delay.
 *
 * The model reproduces the three regimes the paper reports:
 *  - GOMAXPROCS=1: every goroutine — including the GC mark worker —
 *    shares one OS thread, so mark work runs in long, effectively
 *    non-preemptible chunks that delay the tick handler: very high
 *    99% tail latency.
 *  - GOMAXPROCS>1, threads pinned to one core: the runtime puts GC
 *    work on another thread; the Linux scheduler preempts it quickly
 *    when the tick fires, and all sharing stays within one cache:
 *    low tails.
 *  - GOMAXPROCS>1, threads spread over GOMAXPROCS cores: the GC
 *    worker runs truly in parallel, but write barriers and assist
 *    interactions ping-pong cache lines between cores; on an SoC
 *    with a weak memory subsystem this coherence overhead outweighs
 *    the parallelism, giving a *higher* tail than pinning — the
 *    paper's surprising result.
 */

#ifndef FIREAXE_GORUNTIME_GC_MODEL_HH
#define FIREAXE_GORUNTIME_GC_MODEL_HH

#include <cstdint>

#include "base/stats.hh"

namespace fireaxe::goruntime {

/** Benchmark and machine parameters. */
struct GoGcConfig
{
    unsigned gomaxprocs = 1;
    /** Number of cores the CPU-affinity mask allows (1 = pinned). */
    unsigned affinityCores = 1;
    unsigned totalCores = 4;

    double tickIntervalUs = 10.0;
    uint64_t ticks = 200000;
    double handlerWorkUs = 2.0;
    /** Baseline scheduler wake jitter (uniform 0..jitter). */
    double wakeJitterUs = 0.4;

    // Allocation / GC pacing.
    double allocPerTickKb = 2.5;
    double gcTriggerMb = 16.0;
    double stwUs = 50.0;
    /** Total concurrent mark work per GC cycle. */
    double markWorkUs = 2500.0;
    /** Non-preemptible mark chunk on a single-threaded runtime. */
    double markChunkUs = 300.0;
    /** Preemption latency when the tick thread must displace a GC
     *  thread sharing its core. */
    double preemptUs = 1.2;
    /** Per-tick slowdown factor while mark runs on another core
     *  (coherence/write-barrier overhead on a weak memory system). */
    double coherenceFactor = 2.2;
    /** Cross-core wakeup (IPI) cost. */
    double ipiUs = 0.6;
};

/** Tail-latency results (the Fig. 10 bars). */
struct GoGcResult
{
    unsigned gomaxprocs = 0;
    unsigned affinityCores = 0;
    double p95Us = 0.0;
    double p99Us = 0.0;
    double maxUs = 0.0;
    unsigned gcCycles = 0;
};

/** Run the tick benchmark. Deterministic. */
GoGcResult runGoGcBenchmark(const GoGcConfig &cfg);

} // namespace fireaxe::goruntime

#endif // FIREAXE_GORUNTIME_GC_MODEL_HH
