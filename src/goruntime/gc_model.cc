#include "goruntime/gc_model.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "base/random.hh"

namespace fireaxe::goruntime {

namespace {

/** One garbage-collection cycle's timeline. */
struct GcCycle
{
    double stw1Start = 0.0, stw1End = 0.0;
    double markStart = 0.0, markEnd = 0.0;
    double stw2Start = 0.0, stw2End = 0.0;
};

} // namespace

GoGcResult
runGoGcBenchmark(const GoGcConfig &cfg)
{
    FIREAXE_ASSERT(cfg.gomaxprocs >= 1 &&
                   cfg.affinityCores >= 1 &&
                   cfg.affinityCores <= cfg.totalCores);

    Rng rng(0x60c0 + cfg.gomaxprocs * 17 + cfg.affinityCores);
    Distribution latency;

    bool single = cfg.gomaxprocs == 1;
    bool pinned = cfg.affinityCores == 1;

    double heap_kb = 0.0;
    unsigned gc_cycles = 0;
    GcCycle gc;
    bool gc_active = false;

    // Effective concurrent-mark duration per mode.
    auto markDuration = [&]() {
        if (single) {
            // All mark work executes on the lone P, interleaved with
            // the mutator in chunks.
            return cfg.markWorkUs;
        }
        unsigned workers = std::max(1u, cfg.gomaxprocs / 4 + 1);
        double base = cfg.markWorkUs / workers;
        if (pinned) {
            // GC threads timeshare the single core with the mutator:
            // mark stretches but stays preemptible.
            return base * 1.6;
        }
        return base;
    };

    double busy_until = 0.0; // mutator thread occupancy

    for (uint64_t i = 0; i < cfg.ticks; ++i) {
        double sched = double(i) * cfg.tickIntervalUs;

        // Allocation-driven GC trigger.
        heap_kb += cfg.allocPerTickKb;
        if (!gc_active && heap_kb >= cfg.gcTriggerMb * 1024.0) {
            gc_active = true;
            ++gc_cycles;
            gc.stw1Start = sched;
            gc.stw1End = sched + cfg.stwUs;
            gc.markStart = gc.stw1End;
            gc.markEnd = gc.markStart + markDuration();
            gc.stw2Start = gc.markEnd;
            gc.stw2End = gc.stw2Start + cfg.stwUs;
            heap_kb = 0.0;
        }
        if (gc_active && sched >= gc.stw2End)
            gc_active = false;

        // --- When can the handler start? ---
        double start = sched + rng.uniform() * cfg.wakeJitterUs;
        start = std::max(start, busy_until);

        if (gc_active) {
            // Stop-the-world phases block every mutator.
            if (start >= gc.stw1Start && start < gc.stw1End)
                start = gc.stw1End;
            if (start >= gc.stw2Start && start < gc.stw2End)
                start = gc.stw2End;

            bool in_mark = start >= gc.markStart &&
                           start < gc.markEnd;
            if (in_mark && single) {
                // The lone thread is inside a mark chunk; the timer
                // goroutine cannot run until the chunk yields.
                double into =
                    start - gc.markStart;
                double chunk_end =
                    gc.markStart +
                    (std::floor(into / cfg.markChunkUs) + 1.0) *
                        cfg.markChunkUs;
                start = std::min(chunk_end, gc.markEnd) +
                        cfg.preemptUs;
            } else if (in_mark && pinned) {
                // Preempt the GC thread sharing our core.
                start += cfg.preemptUs;
            } else if (in_mark) {
                // Cross-core wakeup while mark runs elsewhere.
                start += cfg.ipiUs;
            }
        }

        // --- Handler execution. ---
        double work = cfg.handlerWorkUs;
        if (gc_active && start >= gc.markStart &&
            start < gc.markEnd && !single && !pinned) {
            // Write-barrier + assist traffic against a mark worker
            // on another core: every pointer write ping-pongs cache
            // lines across the coherence fabric.
            work *= cfg.coherenceFactor;
        }
        double end = start + work;
        busy_until = end;

        latency.sample(end - sched - cfg.handlerWorkUs);
    }

    GoGcResult result;
    result.gomaxprocs = cfg.gomaxprocs;
    result.affinityCores = cfg.affinityCores;
    result.p95Us = latency.percentile(95.0);
    result.p99Us = latency.percentile(99.0);
    result.maxUs = latency.max();
    result.gcCycles = gc_cycles;
    return result;
}

} // namespace fireaxe::goruntime
