#include "target/bus_soc.hh"

#include "base/bits.hh"
#include "firrtl/builder.hh"

namespace fireaxe::target {

using namespace firrtl;

namespace {

/** 16-bit Fibonacci LFSR step (taps 16,14,13,11). */
ExprPtr
lfsrNext(const ExprPtr &l)
{
    auto fb = eXor(eXor(bits(l, 15, 15), bits(l, 13, 13)),
                   eXor(bits(l, 12, 12), bits(l, 10, 10)));
    return cat(bits(l, 14, 0), fb);
}

void
addCoreTile(CircuitBuilder &cb, const BusSocConfig &cfg)
{
    ModuleBuilder mb = cb.module("CoreTile");
    auto seed = mb.input("seed", 16);
    auto req_ready = mb.input("req_ready", 1);
    auto resp_valid = mb.input("resp_valid", 1);
    auto resp_data = mb.input("resp_data", 32);
    mb.output("req_valid", 1);
    mb.output("req_addr", 16);
    mb.output("req_data", 32);
    mb.output("req_wen", 1);
    mb.output("resp_ready", 1);
    mb.output("chk_out", 32);

    auto lfsr = mb.reg("lfsr", 16, 0xACE1);
    auto state = mb.reg("state", 2);
    auto rv = mb.reg("rv", 1);
    auto addr_r = mb.reg("addr_r", 16);
    auto wdata_r = mb.reg("wdata_r", 32);
    auto wen_r = mb.reg("wen_r", 1);
    auto chk = mb.reg("chk", 32);
    auto issued = mb.reg("issued", 16);
    auto rr = mb.reg("rr", 1, 1); // always ready for responses

    auto is_gen = mb.wire("is_gen", 1);
    mb.connect("is_gen", eEq(state, lit(0, 2)));
    auto fire_req = mb.wire("fire_req", 1);
    mb.connect("fire_req",
               eAnd(eEq(state, lit(1, 2)), eAnd(rv, req_ready)));
    auto fire_resp = mb.wire("fire_resp", 1);
    mb.connect("fire_resp",
               eAnd(eEq(state, lit(2, 2)), eAnd(resp_valid, rr)));

    auto hashed = mb.wire("hashed", 16);
    mb.connect("hashed", bits(eXor(lfsr, seed), 15, 0));

    mb.connect("lfsr", mux(is_gen, lfsrNext(lfsr), lfsr));
    mb.connect("state",
               mux(is_gen, lit(1, 2),
                   mux(fire_req, lit(2, 2),
                       mux(fire_resp, lit(0, 2), state))));
    mb.connect("rv",
               mux(is_gen, lit(1, 1), mux(fire_req, lit(0, 1), rv)));
    mb.connect("addr_r", mux(is_gen, hashed, addr_r));
    mb.connect("wdata_r", mux(is_gen, cat(lfsr, hashed), wdata_r));
    mb.connect("wen_r", mux(is_gen, bits(lfsr, 0, 0), wen_r));
    mb.connect("issued", bits(eAdd(issued, fire_req), 15, 0));

    // Response checksum, salted per tile with a multiplier so tiles
    // carry a realistic ALU and stay distinguishable.
    auto mix = mb.wire("mix", 32);
    mb.connect("mix", eMul(lfsr, seed));
    mb.connect("chk",
               mux(fire_resp,
                   bits(eAdd(chk, eXor(resp_data, mix)), 31, 0),
                   chk));

    mb.connect("req_valid", rv);
    mb.connect("req_addr", addr_r);
    mb.connect("req_data", wdata_r);
    mb.connect("req_wen", wen_r);
    mb.connect("resp_ready", rr);
    mb.connect("chk_out", chk);

    // Trace port: a shift chain of the checksum history.
    ExprPtr prev = chk;
    for (unsigned w = 0; w < cfg.tile.traceWords; ++w) {
        std::string rn = "tr" + std::to_string(w);
        auto tr = mb.reg(rn, 32);
        mb.connect(rn, prev);
        std::string pn = "trace" + std::to_string(w);
        mb.output(pn, 32);
        mb.connect(pn, tr);
        prev = tr;
    }

    mb.annotateReadyValid({"req", "req_valid", "req_ready",
                           {"req_addr", "req_data", "req_wen"},
                           true});
    mb.annotateReadyValid(
        {"resp", "resp_valid", "resp_ready", {"resp_data"}, false});
}

} // namespace

Circuit
buildBusSoc(const BusSocConfig &cfg)
{
    CircuitBuilder cb("BusSoc");
    addCoreTile(cb, cfg);

    ModuleBuilder top = cb.module("BusSoc");
    unsigned n = cfg.numTiles;
    unsigned aw = cfg.memWords > 1
                      ? bitsNeeded(cfg.memWords - 1)
                      : 1;

    for (unsigned i = 0; i < n; ++i) {
        std::string t = "tile" + std::to_string(i);
        top.instance(t, "CoreTile");
        top.connect(t + ".seed",
                    lit((0x9E37u * i + 0x1234u) & 0xFFFFu, 16));
    }

    // Fixed-priority bus arbiter: tile i wins when no lower-index
    // tile requests.
    ExprPtr taken = lit(0, 1);
    std::vector<ExprPtr> gnt(n);
    for (unsigned i = 0; i < n; ++i) {
        std::string t = "tile" + std::to_string(i);
        std::string g = "gnt" + std::to_string(i);
        auto gw = top.wire(g, 1);
        top.connect(g,
                    eAnd(top.sig(t + ".req_valid"), eNot(taken)));
        top.connect(t + ".req_ready", gw);
        taken = eOr(taken, top.sig(t + ".req_valid"));
        gnt[i] = gw;
    }
    auto any_gnt = top.wire("any_gnt", 1);
    top.connect("any_gnt", taken);

    // Granted-request muxes.
    ExprPtr ga = lit(0, 16), gd = lit(0, 32), gw_sel = lit(0, 1);
    for (unsigned i = n; i-- > 0;) {
        std::string t = "tile" + std::to_string(i);
        ga = mux(gnt[i], top.sig(t + ".req_addr"), ga);
        gd = mux(gnt[i], top.sig(t + ".req_data"), gd);
        gw_sel = mux(gnt[i], top.sig(t + ".req_wen"), gw_sel);
    }
    auto gaw = top.wire("gaddr", 16);
    top.connect("gaddr", ga);
    auto gdw = top.wire("gdata", 32);
    top.connect("gdata", gd);
    auto gww = top.wire("gwen", 1);
    top.connect("gwen", gw_sel);

    top.mem("l2", cfg.memWords, 32);
    top.connect("l2.raddr", bits(gaw, aw - 1, 0));
    top.connect("l2.waddr", bits(gaw, aw - 1, 0));
    top.connect("l2.wdata", gdw);
    top.connect("l2.wen", eAnd(any_gnt, gww));

    // One-cycle registered response, broadcast data with per-tile
    // valids.
    auto resp_d = top.reg("resp_d", 32);
    top.connect("resp_d",
                mux(any_gnt,
                    mux(gww, gdw, top.sig("l2.rdata")), resp_d));
    for (unsigned i = 0; i < n; ++i) {
        std::string t = "tile" + std::to_string(i);
        std::string rvn = "resp_v" + std::to_string(i);
        auto rvr = top.reg(rvn, 1);
        top.connect(rvn, gnt[i]);
        top.connect(t + ".resp_valid", rvr);
        top.connect(t + ".resp_data", resp_d);
    }

    auto hb = top.reg("hb", 32);
    top.connect("hb", bits(eAdd(hb, any_gnt), 31, 0));

    // Bus-fabric "ECC" pipeline: arithmetic mass representing the
    // interconnect/home-node logic of the rest partition.
    auto status_r = top.reg("status_r", 32, 1);
    auto m1 = eMul(bits(status_r, 15, 0), bits(hb, 15, 0));
    auto m2 = eMul(bits(resp_d, 15, 0), bits(status_r, 31, 16));
    auto m3 = eMul(bits(hb, 31, 16), bits(resp_d, 31, 16));
    auto ecc = top.wire("ecc", 32);
    top.connect("ecc",
                bits(eAdd(bits(eXor(eXor(m1, m2), m3), 31, 0),
                          status_r),
                     31, 0));

    ExprPtr chks = top.sig("tile0.chk_out");
    for (unsigned i = 1; i < n; ++i)
        chks = eXor(chks,
                    top.sig("tile" + std::to_string(i) + ".chk_out"));
    auto mix = eXor(chks, eXor(resp_d, top.sig("ecc")));
    top.connect("status_r",
                bits(eAdd(eXor(status_r, mix), lit(1, 32)), 31, 0));
    top.output("status", 32);
    top.connect("status", status_r);

    return cb.finish();
}

std::set<std::string>
busSocTilePaths(unsigned n)
{
    std::set<std::string> paths;
    for (unsigned i = 0; i < n; ++i)
        paths.insert("tile" + std::to_string(i));
    return paths;
}

} // namespace fireaxe::target
