#include "target/paper_examples.hh"

#include "firrtl/builder.hh"

namespace fireaxe::target {

using namespace firrtl;

namespace {

/**
 * One Fig. 2 block: a 16-bit register fed by source_in, driving
 * src_out directly (registered, so a source-class channel) and
 * snk_out combinationally from sink_in (a sink-class channel).
 */
void
addFig2Block(CircuitBuilder &cb, const std::string &name,
             uint64_t init)
{
    ModuleBuilder mb = cb.module(name);
    auto sink_in = mb.input("sink_in", 16);
    mb.input("source_in", 16);
    mb.output("src_out", 16);
    mb.output("snk_out", 16);

    auto r = mb.reg("r", 16, init);
    mb.connect("r", mb.sig("source_in"));
    mb.connect("src_out", r);
    mb.connect("snk_out", bits(eAdd(sink_in, r), 15, 0));
}

} // namespace

Circuit
buildFig2Target()
{
    CircuitBuilder cb("Fig2Top");
    addFig2Block(cb, "Fig2BlockA", 1);
    addFig2Block(cb, "Fig2Block", 2);

    ModuleBuilder top = cb.module("Fig2Top");
    top.instance("blockA", "Fig2BlockA");
    top.instance("blockB", "Fig2Block");

    top.connect("blockB.source_in", top.sig("blockA.snk_out"));
    top.connect("blockB.sink_in", top.sig("blockA.src_out"));
    top.connect("blockA.source_in", top.sig("blockB.snk_out"));
    top.connect("blockA.sink_in", top.sig("blockB.src_out"));

    top.output("obs_a", 16);
    top.output("obs_b", 16);
    top.connect("obs_a", top.sig("blockA.src_out"));
    top.connect("obs_b", top.sig("blockB.src_out"));
    return cb.finish();
}

Circuit
buildFig3Target()
{
    CircuitBuilder cb("Fig3Top");

    {
        ModuleBuilder mb = cb.module("Fig3Consumer");
        auto in_valid = mb.input("in_valid", 1);
        auto in_bits = mb.input("in_bits", 16);
        mb.output("in_ready", 1);

        // Ready 3 cycles out of 4, from a free-running counter, so
        // the handshake exercises real backpressure.
        auto rdy_cnt = mb.reg("rdy_cnt", 2);
        mb.connect("rdy_cnt", bits(eAdd(rdy_cnt, lit(1, 2)), 1, 0));
        auto ready = mb.wire("ready", 1);
        mb.connect("ready", eNeq(rdy_cnt, lit(3, 2)));
        mb.connect("in_ready", ready);

        auto fire = mb.wire("fire", 1);
        mb.connect("fire", eAnd(in_valid, ready));

        auto acc_count = mb.reg("acc_count", 16);
        auto acc_sum = mb.reg("acc_sum", 32);
        mb.connect("acc_count", bits(eAdd(acc_count, fire), 15, 0));
        mb.connect("acc_sum",
                   bits(eAdd(acc_sum, mux(fire, in_bits, lit(0, 16))),
                        31, 0));

        mb.annotateReadyValid(
            {"in", "in_valid", "in_ready", {"in_bits"}, false});
    }

    ModuleBuilder top = cb.module("Fig3Top");
    top.instance("consumer", "Fig3Consumer");

    auto idx = top.reg("idx", 16);
    auto valid = top.wire("valid", 1);
    top.connect("valid", eLt(idx, lit(64, 16)));
    top.connect("consumer.in_valid", valid);
    top.connect("consumer.in_bits", idx);

    auto fire = top.wire("fire", 1);
    top.connect("fire", eAnd(valid, top.sig("consumer.in_ready")));
    top.connect("idx",
                mux(fire, bits(eAdd(idx, lit(1, 16)), 15, 0), idx));

    top.output("accepted", 16);
    top.connect("accepted", idx);
    return cb.finish();
}

Circuit
buildChainViolationTarget()
{
    CircuitBuilder cb("ChainTop");

    {
        ModuleBuilder mb = cb.module("ChainBlock");
        auto in1 = mb.input("in1", 8);
        auto in2 = mb.input("in2", 8);
        mb.output("out1", 8);
        mb.output("out2", 8);
        mb.connect("out1", bits(eAdd(in1, lit(1, 8)), 7, 0));
        mb.connect("out2", bits(eAdd(in2, lit(1, 8)), 7, 0));
    }

    ModuleBuilder top = cb.module("ChainTop");
    top.instance("blk", "ChainBlock");

    auto src = top.reg("src", 8, 1);
    top.connect("src", bits(eAdd(src, lit(1, 8)), 7, 0));
    top.connect("blk.in1", src);
    // Combinational path out1 -> in2 in the parent chains with the
    // block's own in->out dependencies: illegal for exact mode.
    top.connect("blk.in2",
                bits(eXor(top.sig("blk.out1"), src), 7, 0));
    top.output("o", 8);
    top.connect("o", bits(eXor(top.sig("blk.out2"), src), 7, 0));
    return cb.finish();
}

} // namespace fireaxe::target
