/**
 * @file
 * The small worked examples from the FireAxe paper:
 *
 *  - Fig. 2: two cross-coupled registered blocks, the canonical
 *    exact-mode partition target (source + sink channels, two link
 *    crossings per target cycle).
 *  - Fig. 3: a producer/consumer pair with a ready-valid handshake,
 *    the fast-mode (optimistic) partition target.
 *  - A deliberately illegal design whose partition boundary chains
 *    two combinational dependencies, which exact mode must reject.
 */

#ifndef FIREAXE_TARGET_PAPER_EXAMPLES_HH
#define FIREAXE_TARGET_PAPER_EXAMPLES_HH

#include "firrtl/ir.hh"

namespace fireaxe::target {

/** Fig. 2: top "Fig2Top" with instances blockA/blockB; observation
 *  ports obs_a/obs_b. Partitioning out "blockB" in exact mode yields
 *  two source and two sink channels of 16 bits each. */
firrtl::Circuit buildFig2Target();

/** Fig. 3: top "Fig3Top" with a producer (inlined in the top) that
 *  streams 64 items into an instance "consumer" over a ready-valid
 *  interface; the consumer accumulates a count and a sum. */
firrtl::Circuit buildFig3Target();

/** A design whose boundary has a two-deep combinational dependency
 *  chain through the partitioned instance "blk"; exact-mode
 *  partitioning must reject it. */
firrtl::Circuit buildChainViolationTarget();

} // namespace fireaxe::target

#endif // FIREAXE_TARGET_PAPER_EXAMPLES_HH
