/**
 * @file
 * A parameterizable bus-based SoC: N core tiles issuing read/write
 * requests over a shared priority bus into an L2-backed memory, the
 * standard FireAxe partitioning target (tiles are extracted, the bus
 * and memory stay in the rest partition).
 *
 * Each tile is an LFSR-driven traffic generator with a registered
 * ready-valid request/response interface and an optional trace port
 * (tile.traceWords 32-bit words) that widens the partition boundary
 * without changing behaviour — the x-axis knob of the Fig. 11/12
 * sweeps.
 */

#ifndef FIREAXE_TARGET_BUS_SOC_HH
#define FIREAXE_TARGET_BUS_SOC_HH

#include <set>
#include <string>

#include "firrtl/ir.hh"

namespace fireaxe::target {

struct BusSocConfig
{
    unsigned numTiles = 2;
    unsigned memWords = 128;
    struct
    {
        /** Extra 32-bit boundary trace words per tile. */
        unsigned traceWords = 0;
    } tile;
};

/** Build the SoC; tiles are instances "tile0".."tileN-1" of module
 *  "CoreTile", the top is "BusSoc" with a 32-bit "status" output. */
firrtl::Circuit buildBusSoc(const BusSocConfig &cfg = {});

/** Instance paths of the first @p n tiles, for PartitionGroupSpec. */
std::set<std::string> busSocTilePaths(unsigned n);

} // namespace fireaxe::target

#endif // FIREAXE_TARGET_BUS_SOC_HH
