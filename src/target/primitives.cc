#include "target/primitives.hh"

#include "base/bits.hh"

namespace fireaxe::target {

using namespace firrtl;

void
addQueueModule(CircuitBuilder &cb, const std::string &name,
               unsigned width, unsigned depth)
{
    ModuleBuilder mb = cb.module(name);
    unsigned cw = bitsNeeded(depth);
    unsigned pw = depth > 1 ? bitsNeeded(depth - 1) : 1;

    auto enq_valid = mb.input("enq_valid", 1);
    auto enq_bits = mb.input("enq_bits", width);
    auto deq_ready = mb.input("deq_ready", 1);
    mb.output("enq_ready", 1);
    mb.output("deq_valid", 1);
    mb.output("deq_bits", width);

    auto cnt = mb.reg("cnt", cw);
    auto head = mb.reg("head", pw);
    auto tail = mb.reg("tail", pw);
    mb.mem("store", depth, width);

    auto not_full = eLt(cnt, lit(depth, cw));
    auto not_empty = eNeq(cnt, lit(0, cw));
    auto do_enq = mb.wire("do_enq", 1);
    auto do_deq = mb.wire("do_deq", 1);
    mb.connect("do_enq", eAnd(enq_valid, not_full));
    mb.connect("do_deq", eAnd(deq_ready, not_empty));

    mb.connect("enq_ready", not_full);
    mb.connect("deq_valid", not_empty);

    // Occupancy: cnt' = cnt + do_enq - do_deq (guards above keep it
    // in range).
    mb.connect("cnt",
               bits(eSub(eAdd(cnt, do_enq), do_deq), cw - 1, 0));

    auto wrap = [&](const ExprPtr &ptr) {
        return mux(eEq(ptr, lit(depth - 1, pw)), lit(0, pw),
                   bits(eAdd(ptr, lit(1, pw)), pw - 1, 0));
    };
    mb.connect("head", mux(do_deq, wrap(head), head));
    mb.connect("tail", mux(do_enq, wrap(tail), tail));

    mb.connect("store.raddr", head);
    mb.connect("deq_bits", mb.sig("store.rdata"));
    mb.connect("store.waddr", tail);
    mb.connect("store.wdata", enq_bits);
    mb.connect("store.wen", do_enq);
}

} // namespace fireaxe::target
