#include "target/noc_soc.hh"

#include <string>

#include "base/bits.hh"
#include "base/logging.hh"
#include "firrtl/builder.hh"
#include "target/primitives.hh"

namespace fireaxe::target {

using namespace firrtl;

namespace {

// Flit layout: {dest[5:0], src[5:0], payload[31:0]}.
constexpr unsigned kIdBits = 6;
constexpr unsigned kFlitBits = kIdBits * 2 + 32;

ExprPtr
flitDest(const ExprPtr &f)
{
    return bits(f, kFlitBits - 1, kFlitBits - kIdBits);
}

ExprPtr
flitSrc(const ExprPtr &f)
{
    return bits(f, 37, 32);
}

ExprPtr
flitPayload(const ExprPtr &f)
{
    return bits(f, 31, 0);
}

ExprPtr
makeFlit(const ExprPtr &dest, const ExprPtr &src,
         const ExprPtr &payload)
{
    return cat(dest, cat(src, payload));
}

/**
 * One ring stop. All outputs are registered, so router-to-router
 * links are source-class channels in exact mode. The local port
 * handshake: the injector holds loc_in_v and the flit stable until
 * it sees loc_ack (registered, one cycle after acceptance); the
 * router refuses a new injection in the ack cycle so the one-cycle
 * deassertion lag cannot double-inject.
 */
void
addRouter(CircuitBuilder &cb, unsigned i, bool bidir)
{
    ModuleBuilder mb = cb.module("RingRouter" + std::to_string(i));
    mb.attr("nocRouter", "1");
    mb.attr("nocIndex", std::to_string(i));

    auto loc_in_v = mb.input("loc_in_v", 1);
    auto loc_in_f = mb.input("loc_in_f", kFlitBits);
    mb.output("loc_out_v", 1);
    mb.output("loc_out_f", kFlitBits);
    mb.output("loc_ack", 1);

    auto ack_r = mb.reg("ack_r", 1);
    auto lv_o = mb.reg("lv_o", 1);
    auto lf_o = mb.reg("lf_o", kFlitBits);
    mb.connect("loc_out_v", lv_o);
    mb.connect("loc_out_f", lf_o);
    mb.connect("loc_ack", ack_r);

    auto me = lit(i, kIdBits);

    if (!bidir) {
        auto rin_v = mb.input("ring_in_v", 1);
        auto rin_f = mb.input("ring_in_f", kFlitBits);
        mb.output("ring_out_v", 1);
        mb.output("ring_out_f", kFlitBits);

        auto deliver = mb.wire("deliver", 1);
        mb.connect("deliver",
                   eAnd(rin_v, eEq(flitDest(rin_f), me)));
        auto fwd = mb.wire("fwd", 1);
        mb.connect("fwd", eAnd(rin_v, eNot(deliver)));
        auto inject = mb.wire("inject", 1);
        mb.connect("inject",
                   eAnd(loc_in_v, eAnd(eNot(fwd), eNot(ack_r))));

        auto rv_o = mb.reg("rv_o", 1);
        auto rf_o = mb.reg("rf_o", kFlitBits);
        mb.connect("rv_o", eOr(fwd, inject));
        mb.connect("rf_o", mux(fwd, rin_f, loc_in_f));
        mb.connect("ring_out_v", rv_o);
        mb.connect("ring_out_f", rf_o);

        mb.connect("lv_o", deliver);
        mb.connect("lf_o", rin_f);
        mb.connect("ack_r", inject);
        return;
    }

    auto loc_dir = mb.input("loc_dir", 1); // 0 = cw, 1 = ccw
    auto cw_in_v = mb.input("cw_in_v", 1);
    auto cw_in_f = mb.input("cw_in_f", kFlitBits);
    auto ccw_in_v = mb.input("ccw_in_v", 1);
    auto ccw_in_f = mb.input("ccw_in_f", kFlitBits);
    mb.output("cw_out_v", 1);
    mb.output("cw_out_f", kFlitBits);
    mb.output("ccw_out_v", 1);
    mb.output("ccw_out_f", kFlitBits);

    auto del_cw = mb.wire("del_cw", 1);
    mb.connect("del_cw", eAnd(cw_in_v, eEq(flitDest(cw_in_f), me)));
    auto del_ccw = mb.wire("del_ccw", 1);
    mb.connect("del_ccw",
               eAnd(ccw_in_v, eEq(flitDest(ccw_in_f), me)));

    // One local delivery per cycle: cw wins, a colliding ccw flit is
    // deflected onward and circulates until a free cycle.
    auto cw_fwd = mb.wire("cw_fwd", 1);
    mb.connect("cw_fwd", eAnd(cw_in_v, eNot(del_cw)));
    auto ccw_fwd = mb.wire("ccw_fwd", 1);
    mb.connect("ccw_fwd",
               eAnd(ccw_in_v, eNot(eAnd(del_ccw, eNot(del_cw)))));

    auto inj_cw = mb.wire("inj_cw", 1);
    mb.connect("inj_cw",
               eAnd(eAnd(loc_in_v, eNot(ack_r)),
                    eAnd(eNot(cw_fwd), eNot(loc_dir))));
    auto inj_ccw = mb.wire("inj_ccw", 1);
    mb.connect("inj_ccw",
               eAnd(eAnd(loc_in_v, eNot(ack_r)),
                    eAnd(eNot(ccw_fwd), loc_dir)));

    auto cw_ov = mb.reg("cw_ov", 1);
    auto cw_of = mb.reg("cw_of", kFlitBits);
    mb.connect("cw_ov", eOr(cw_fwd, inj_cw));
    mb.connect("cw_of", mux(cw_fwd, cw_in_f, loc_in_f));
    mb.connect("cw_out_v", cw_ov);
    mb.connect("cw_out_f", cw_of);

    auto ccw_ov = mb.reg("ccw_ov", 1);
    auto ccw_of = mb.reg("ccw_of", kFlitBits);
    mb.connect("ccw_ov", eOr(ccw_fwd, inj_ccw));
    mb.connect("ccw_of", mux(ccw_fwd, ccw_in_f, loc_in_f));
    mb.connect("ccw_out_v", ccw_ov);
    mb.connect("ccw_out_f", ccw_of);

    mb.connect("lv_o", eOr(del_cw, del_ccw));
    mb.connect("lf_o", mux(del_cw, cw_in_f, ccw_in_f));
    mb.connect("ack_r", eOr(inj_cw, inj_ccw));
}

/**
 * Protocol converter between a tile's simple memory request port and
 * the router's local flit port (latches one request at a time).
 */
void
addConverter(CircuitBuilder &cb, unsigned i, unsigned num_nodes,
             bool bidir)
{
    ModuleBuilder mb = cb.module("NocConv" + std::to_string(i));
    auto t_req_v = mb.input("t_req_v", 1);
    auto t_addr = mb.input("t_addr", 16);
    mb.output("t_req_ack", 1);
    mb.output("t_resp_v", 1);
    mb.output("t_resp_data", 32);

    auto r_ack_in = mb.input("r_ack_in", 1);
    auto r_del_v = mb.input("r_del_v", 1);
    auto r_del_f = mb.input("r_del_f", kFlitBits);
    mb.output("r_out_v", 1);
    mb.output("r_out_f", kFlitBits);

    auto busy = mb.reg("busy", 1);
    auto flit_r = mb.reg("flit_r", kFlitBits);

    auto start = mb.wire("start", 1);
    mb.connect("start", eAnd(t_req_v, eNot(busy)));
    mb.connect("busy",
               mux(r_ack_in, lit(0, 1), mux(start, lit(1, 1), busy)));
    mb.connect("flit_r",
               mux(start,
                   makeFlit(lit(0, kIdBits), lit(i, kIdBits),
                            cat(lit(0, 16), t_addr)),
                   flit_r));

    mb.connect("r_out_v", busy);
    mb.connect("r_out_f", flit_r);
    mb.connect("t_req_ack", r_ack_in);
    mb.connect("t_resp_v", r_del_v);
    mb.connect("t_resp_data", flitPayload(r_del_f));

    if (bidir) {
        mb.output("r_dir", 1);
        // Shortest path to node 0: counter-clockwise covers i hops,
        // clockwise N - i.
        mb.connect("r_dir",
                   lit(2 * i <= num_nodes ? 1 : 0, 1));
    }
}

/** LFSR traffic tile: think a few cycles, issue one request, block
 *  until the response returns, accumulate a checksum. */
void
addNocTile(CircuitBuilder &cb, unsigned i)
{
    ModuleBuilder mb = cb.module("NocTile" + std::to_string(i));
    auto req_ack = mb.input("req_ack", 1);
    auto resp_v = mb.input("resp_v", 1);
    auto resp_data = mb.input("resp_data", 32);
    mb.output("req_v", 1);
    mb.output("addr", 16);
    mb.output("chk_out", 32);

    auto lfsr = mb.reg("lfsr", 16, (0x1B59u * i + 0x2Du) & 0xFFFFu);
    auto state = mb.reg("state", 2);
    auto pace = mb.reg("pace", 2);
    auto rv = mb.reg("rv", 1);
    auto addr_r = mb.reg("addr_r", 16);
    auto chk = mb.reg("chk", 32);

    auto is_go = mb.wire("is_go", 1);
    mb.connect("is_go",
               eAnd(eEq(state, lit(0, 2)), eEq(pace, lit(3, 2))));
    auto acked = mb.wire("acked", 1);
    mb.connect("acked", eAnd(eEq(state, lit(1, 2)), req_ack));
    auto got = mb.wire("got", 1);
    mb.connect("got", eAnd(eEq(state, lit(2, 2)), resp_v));

    mb.connect("pace", bits(eAdd(pace, lit(1, 2)), 1, 0));
    mb.connect("state",
               mux(is_go, lit(1, 2),
                   mux(acked, lit(2, 2),
                       mux(got, lit(0, 2), state))));
    auto fb = eXor(eXor(bits(lfsr, 15, 15), bits(lfsr, 13, 13)),
                   eXor(bits(lfsr, 12, 12), bits(lfsr, 10, 10)));
    mb.connect("lfsr", mux(is_go, cat(bits(lfsr, 14, 0), fb), lfsr));
    mb.connect("rv",
               mux(is_go, lit(1, 1), mux(acked, lit(0, 1), rv)));
    mb.connect("addr_r", mux(is_go, lfsr, addr_r));
    mb.connect("chk",
               mux(got,
                   bits(eAdd(chk, eXor(resp_data, cat(lfsr, lfsr))),
                        31, 0),
                   chk));

    mb.connect("req_v", rv);
    mb.connect("addr", addr_r);
    mb.connect("chk_out", chk);
}

/**
 * Node-0 memory subsystem: serves each delivered request flit from a
 * word memory (read + evolving write-back), queues the response and
 * injects it back into router 0.
 */
void
addSubsystem(CircuitBuilder &cb, const RingNocSocConfig &cfg)
{
    unsigned depth = std::max(2u, cfg.numNodes);
    addQueueModule(cb, "NocRespQ", kIdBits + 32, depth);

    ModuleBuilder mb = cb.module("NocSubsys");
    auto r_ack_in = mb.input("r_ack_in", 1);
    auto r_del_v = mb.input("r_del_v", 1);
    auto r_del_f = mb.input("r_del_f", kFlitBits);
    mb.output("r_out_v", 1);
    mb.output("r_out_f", kFlitBits);
    mb.output("hb_out", 32);

    unsigned aw = cfg.memWords > 1
                      ? bitsNeeded(cfg.memWords - 1)
                      : 1;
    mb.mem("store", cfg.memWords, 32);
    auto payload = mb.wire("payload", 32);
    mb.connect("payload", flitPayload(r_del_f));
    mb.connect("store.raddr", bits(payload, aw - 1, 0));
    auto rdata = mb.sig("store.rdata");

    auto hb = mb.reg("hb", 32);
    mb.connect("hb", bits(eAdd(hb, r_del_v), 31, 0));
    mb.connect("hb_out", hb);

    // Write back an evolving value so repeated reads change.
    mb.connect("store.waddr", bits(payload, aw - 1, 0));
    mb.connect("store.wdata",
               bits(eAdd(rdata, eXor(payload, hb)), 31, 0));
    mb.connect("store.wen", r_del_v);

    mb.instance("respq", "NocRespQ");
    mb.connect("respq.enq_valid", r_del_v);
    mb.connect("respq.enq_bits", cat(flitSrc(r_del_f), rdata));

    auto busy = mb.reg("busy", 1);
    auto flit_r = mb.reg("flit_r", kFlitBits);
    auto take = mb.wire("take", 1);
    mb.connect("take",
               eAnd(mb.sig("respq.deq_valid"),
                    eOr(eNot(busy), r_ack_in)));
    mb.connect("respq.deq_ready", eOr(eNot(busy), r_ack_in));

    auto dst = bits(mb.sig("respq.deq_bits"), kIdBits + 31, 32);
    auto pay = bits(mb.sig("respq.deq_bits"), 31, 0);
    mb.connect("busy",
               mux(take, lit(1, 1),
                   mux(r_ack_in, lit(0, 1), busy)));
    mb.connect("flit_r",
               mux(take, makeFlit(dst, lit(0, kIdBits), pay),
                   flit_r));

    mb.connect("r_out_v", busy);
    mb.connect("r_out_f", flit_r);

    if (cfg.bidirectional) {
        mb.output("r_dir", 1);
        auto dir_r = mb.reg("dir_r", 1);
        // Shortest path to node dst: clockwise covers dst hops.
        auto cw_short =
            binOp(BinOpKind::Leq, eAdd(dst, dst),
                  lit(cfg.numNodes, kIdBits + 1));
        mb.connect("dir_r",
                   mux(take, mux(cw_short, lit(0, 1), lit(1, 1)),
                       dir_r));
        mb.connect("r_dir", dir_r);
    }
}

} // namespace

Circuit
buildRingNocSoc(const RingNocSocConfig &cfg)
{
    unsigned n = cfg.numNodes;
    if (n < 2)
        fatal("RingNocSoc needs at least 2 nodes, got ", n);
    if (n >= (1u << kIdBits))
        fatal("RingNocSoc supports at most ", (1u << kIdBits) - 1,
              " nodes, got ", n);

    CircuitBuilder cb("RingNocSoc");
    for (unsigned i = 0; i < n; ++i)
        addRouter(cb, i, cfg.bidirectional);
    for (unsigned i = 1; i < n; ++i) {
        addConverter(cb, i, n, cfg.bidirectional);
        addNocTile(cb, i);
    }
    addSubsystem(cb, cfg);

    ModuleBuilder top = cb.module("RingNocSoc");
    auto rn = [](unsigned i) { return "r" + std::to_string(i); };
    for (unsigned i = 0; i < n; ++i)
        top.instance(rn(i), "RingRouter" + std::to_string(i));
    for (unsigned i = 1; i < n; ++i) {
        top.instance("conv" + std::to_string(i),
                     "NocConv" + std::to_string(i));
        top.instance("tile" + std::to_string(i),
                     "NocTile" + std::to_string(i));
    }
    top.instance("subsys", "NocSubsys");

    // Ring links: direct instance-to-instance connects, so the NoC
    // selector sees router adjacency.
    for (unsigned i = 0; i < n; ++i) {
        unsigned next = (i + 1) % n;
        if (!cfg.bidirectional) {
            top.connect(rn(next) + ".ring_in_v",
                        top.sig(rn(i) + ".ring_out_v"));
            top.connect(rn(next) + ".ring_in_f",
                        top.sig(rn(i) + ".ring_out_f"));
        } else {
            top.connect(rn(next) + ".cw_in_v",
                        top.sig(rn(i) + ".cw_out_v"));
            top.connect(rn(next) + ".cw_in_f",
                        top.sig(rn(i) + ".cw_out_f"));
            top.connect(rn(i) + ".ccw_in_v",
                        top.sig(rn(next) + ".ccw_out_v"));
            top.connect(rn(i) + ".ccw_in_f",
                        top.sig(rn(next) + ".ccw_out_f"));
        }
    }

    // Local ports: node 0 hosts the subsystem, other nodes a
    // converter + tile pair.
    auto hookLocal = [&](const std::string &router,
                         const std::string &client) {
        top.connect(router + ".loc_in_v", top.sig(client + ".r_out_v"));
        top.connect(router + ".loc_in_f", top.sig(client + ".r_out_f"));
        if (cfg.bidirectional)
            top.connect(router + ".loc_dir",
                        top.sig(client + ".r_dir"));
        top.connect(client + ".r_ack_in", top.sig(router + ".loc_ack"));
        top.connect(client + ".r_del_v", top.sig(router + ".loc_out_v"));
        top.connect(client + ".r_del_f", top.sig(router + ".loc_out_f"));
    };
    hookLocal("r0", "subsys");
    for (unsigned i = 1; i < n; ++i) {
        std::string c = "conv" + std::to_string(i);
        std::string t = "tile" + std::to_string(i);
        hookLocal(rn(i), c);
        top.connect(c + ".t_req_v", top.sig(t + ".req_v"));
        top.connect(c + ".t_addr", top.sig(t + ".addr"));
        top.connect(t + ".req_ack", top.sig(c + ".t_req_ack"));
        top.connect(t + ".resp_v", top.sig(c + ".t_resp_v"));
        top.connect(t + ".resp_data", top.sig(c + ".t_resp_data"));
    }

    // Status aggregation (anchored in the top's own register, so it
    // adds no node adjacency).
    auto status_r = top.reg("status_r", 32, 1);
    ExprPtr mixv = top.sig("subsys.hb_out");
    for (unsigned i = 1; i < n; ++i)
        mixv = eXor(mixv,
                    top.sig("tile" + std::to_string(i) + ".chk_out"));
    top.connect("status_r",
                bits(eAdd(eXor(status_r, mixv), lit(1, 32)), 31, 0));
    top.output("status", 32);
    top.connect("status", status_r);

    return cb.finish();
}

} // namespace fireaxe::target
