/**
 * @file
 * A ring-NoC SoC for NoC-partition-mode experiments (Section V-C):
 * node 0 carries a memory subsystem, nodes 1..N-1 carry a traffic
 * tile behind a NoC converter. Routers are tagged with the
 * "nocRouter"/"nocIndex" attributes consumed by
 * ripper::findNocRouters()/selectNocGroup(), and all inter-node
 * wiring is expressed as direct instance-to-instance connects so
 * ring adjacency is discoverable.
 *
 * The ring is unidirectional by default; with `bidirectional` each
 * node also gets a counter-rotating link and sources pick the
 * shortest direction (Fig. 9's bandwidth experiment).
 */

#ifndef FIREAXE_TARGET_NOC_SOC_HH
#define FIREAXE_TARGET_NOC_SOC_HH

#include "firrtl/ir.hh"

namespace fireaxe::target {

struct RingNocSocConfig
{
    /** Total ring nodes including the subsystem node 0. */
    unsigned numNodes = 4;
    /** Words in the node-0 memory subsystem. */
    unsigned memWords = 256;
    /** Add a counter-rotating ring and shortest-path injection. */
    bool bidirectional = false;
};

/** Build the SoC; top is "RingNocSoc" with a 32-bit "status" output.
 *  Instances: routers "r0".."rN-1", per-tile "conv<i>"/"tile<i>"
 *  (i >= 1) and the node-0 "subsys". */
firrtl::Circuit buildRingNocSoc(const RingNocSocConfig &cfg = {});

} // namespace fireaxe::target

#endif // FIREAXE_TARGET_NOC_SOC_HH
