/**
 * @file
 * The three Table II accelerator/boot workloads: an SHA3-style block
 * accelerator, a Gemmini-style tiled MAC accelerator, and a
 * fixed-instruction boot workload. Each is an FSM accelerator with a
 * registered ready-valid memory interface, instantiated as "accel"
 * next to a one-cycle memory subsystem, exposing a "done" output
 * whose first-asserted cycle is the workload's completion time.
 */

#ifndef FIREAXE_TARGET_ACCELERATORS_HH
#define FIREAXE_TARGET_ACCELERATORS_HH

#include "firrtl/ir.hh"

namespace fireaxe::target {

struct Sha3Config
{
    unsigned loadWords = 16;   ///< input block words (2 per beat)
    unsigned roundCycles = 440; ///< permutation cycles per block
};

struct GemminiConfig
{
    unsigned loadTiles = 12;
    unsigned storeTiles = 4;
    unsigned macCycles = 17000; ///< systolic-array busy cycles
};

struct BootConfig
{
    unsigned instructions = 20000;
    unsigned fenceInterval = 256; ///< blocking fence op period
};

firrtl::Circuit buildSha3Soc(const Sha3Config &cfg = {});
firrtl::Circuit buildGemminiSoc(const GemminiConfig &cfg = {});
firrtl::Circuit buildBootSoc(const BootConfig &cfg = {});

} // namespace fireaxe::target

#endif // FIREAXE_TARGET_ACCELERATORS_HH
