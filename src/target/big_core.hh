/**
 * @file
 * A two-halves "big core" for the split-core partition experiments
 * (Section V-B / Fig. 10): a frontend (fetch/predict) and a backend
 * (execute/writeback) joined by a wide fetch-bundle/writeback
 * interface. The gc40-calibrated configuration is sized so the whole
 * core overflows one Alveo U250 while each half fits — the paper's
 * motivating case for exact-mode 2-FPGA partitioning.
 *
 * The backend acknowledges fetch bundles combinationally (fb_ack),
 * giving the boundary one sink-class channel and therefore two link
 * crossings per target cycle in exact mode.
 */

#ifndef FIREAXE_TARGET_BIG_CORE_HH
#define FIREAXE_TARGET_BIG_CORE_HH

#include "firrtl/ir.hh"

namespace fireaxe::target {

struct BigCoreConfig
{
    unsigned fetchWidth = 2;    ///< instructions per fetch bundle
    unsigned fieldsPerInst = 3; ///< 64-bit fields per instruction
    unsigned traceWords = 4;    ///< 64-bit backend trace words
    unsigned lsuWords = 2;      ///< 64-bit store-buffer words
    unsigned backendLanes = 4;  ///< execution lanes (LUT mass knob)
    unsigned frontendLanes = 2; ///< predictor lanes (LUT mass knob)
};

/** Total frontend<->backend boundary width in bits. */
unsigned bigCoreInterfaceBits(const BigCoreConfig &cfg);

/** The configuration calibrated to the paper's gc40 BOOM config. */
BigCoreConfig gc40BigCoreConfig();

/** Build the core; top "BigCore" instantiates "frontend" and
 *  "backend" and exposes a 32-bit "status" output. */
firrtl::Circuit buildBigCore(const BigCoreConfig &cfg);

} // namespace fireaxe::target

#endif // FIREAXE_TARGET_BIG_CORE_HH
