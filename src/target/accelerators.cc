#include "target/accelerators.hh"

#include <algorithm>
#include <string>

#include "base/bits.hh"
#include "firrtl/builder.hh"

namespace fireaxe::target {

using namespace firrtl;

namespace {

// Accelerator FSM states.
constexpr uint64_t kRun = 0; // boot only: 1 instruction / cycle
constexpr uint64_t kIssue = 1;
constexpr uint64_t kReq = 2;
constexpr uint64_t kResp = 3;
constexpr uint64_t kThink = 4;
constexpr uint64_t kCompute = 5;
constexpr uint64_t kDone = 6;

struct AccelPorts
{
    ExprPtr req_ready, resp_valid, resp_data;
};

/** Declare the shared accelerator memory-port interface. */
AccelPorts
declAccelInterface(ModuleBuilder &mb)
{
    AccelPorts p;
    p.req_ready = mb.input("req_ready", 1);
    p.resp_valid = mb.input("resp_valid", 1);
    p.resp_data = mb.input("resp_data", 32);
    mb.output("req_valid", 1);
    mb.output("req_addr", 16);
    mb.output("req_data", 32);
    mb.output("req_wen", 1);
    mb.output("resp_ready", 1);
    mb.output("done_o", 1);
    mb.annotateReadyValid({"req", "req_valid", "req_ready",
                           {"req_addr", "req_data", "req_wen"},
                           true});
    mb.annotateReadyValid(
        {"resp", "resp_valid", "resp_ready", {"resp_data"}, false});
    return p;
}

/**
 * A load/compute/store accelerator: @p load_ops blocking reads, then
 * @p compute_cycles of internal work, then @p store_ops blocking
 * writes, then done. Every blocking op costs 4 target cycles against
 * an always-ready memory with a 1-cycle response.
 */
void
addPhasedAccel(CircuitBuilder &cb, const std::string &name,
               unsigned load_ops, unsigned compute_cycles,
               unsigned store_ops)
{
    unsigned total_ops = load_ops + store_ops;
    compute_cycles = std::max(compute_cycles, 1u);

    ModuleBuilder mb = cb.module(name);
    AccelPorts in = declAccelInterface(mb);

    auto state = mb.reg("state", 3, kIssue);
    auto idx = mb.reg("idx", 16);
    auto cnt = mb.reg("cnt", 32);
    auto acc = mb.reg("acc", 32);
    auto rv = mb.reg("rv", 1);
    auto addr_r = mb.reg("addr_r", 16);
    auto wdata_r = mb.reg("wdata_r", 32);
    auto wen_r = mb.reg("wen_r", 1);
    auto sp = mb.reg("sp", 1); // store phase reached
    auto done_r = mb.reg("done_r", 1);
    auto rr = mb.reg("rr", 1, 1);

    auto st = [&](uint64_t s) { return eEq(state, lit(s, 3)); };
    auto fire = mb.wire("fire", 1);
    mb.connect("fire", eAnd(st(kReq), eAnd(rv, in.req_ready)));
    auto got = mb.wire("got", 1);
    mb.connect("got", eAnd(st(kResp), eAnd(in.resp_valid, rr)));
    auto compute_done = mb.wire("compute_done", 1);
    mb.connect("compute_done",
               eAnd(st(kCompute),
                    eEq(cnt, lit(compute_cycles - 1, 32))));

    auto think_next =
        mux(sp,
            mux(eLt(idx, lit(total_ops, 16)), lit(kIssue, 3),
                lit(kDone, 3)),
            mux(eLt(idx, lit(load_ops, 16)), lit(kIssue, 3),
                lit(kCompute, 3)));
    mb.connect("state",
               mux(st(kIssue), lit(kReq, 3),
                   mux(fire, lit(kResp, 3),
                       mux(got, lit(kThink, 3),
                           mux(st(kThink), think_next,
                               mux(compute_done, lit(kIssue, 3),
                                   state))))));
    mb.connect("cnt",
               mux(st(kCompute),
                   bits(eAdd(cnt, lit(1, 32)), 31, 0), cnt));
    mb.connect("sp", mux(compute_done, lit(1, 1), sp));
    mb.connect("idx",
               mux(got, bits(eAdd(idx, lit(1, 16)), 15, 0), idx));
    mb.connect("rv",
               mux(st(kIssue), lit(1, 1),
                   mux(fire, lit(0, 1), rv)));
    mb.connect("addr_r",
               mux(st(kIssue),
                   mux(sp, bits(eAdd(idx, lit(0x80, 16)), 15, 0),
                       idx),
                   addr_r));
    mb.connect("wdata_r",
               mux(st(kIssue),
                   bits(eXor(acc, cat(idx, idx)), 31, 0), wdata_r));
    mb.connect("wen_r", mux(st(kIssue), sp, wen_r));
    mb.connect("acc",
               mux(got,
                   bits(eAdd(acc, eXor(in.resp_data, cat(idx, idx))),
                        31, 0),
                   acc));
    mb.connect("done_r", mux(st(kDone), lit(1, 1), done_r));

    mb.connect("req_valid", rv);
    mb.connect("req_addr", addr_r);
    mb.connect("req_data", wdata_r);
    mb.connect("req_wen", wen_r);
    mb.connect("resp_ready", rr);
    mb.connect("done_o", done_r);
}

/** 1-instruction-per-cycle core with a blocking fence op every
 *  @p fence_interval instructions. */
void
addBootCore(CircuitBuilder &cb, unsigned instructions,
            unsigned fence_interval)
{
    instructions = std::max(instructions, 1u);
    fence_interval = std::max(fence_interval, 2u);

    ModuleBuilder mb = cb.module("BootCore");
    AccelPorts in = declAccelInterface(mb);

    auto state = mb.reg("state", 3, kRun);
    auto iexec = mb.reg("iexec", 32);
    auto acc = mb.reg("acc", 32);
    auto rv = mb.reg("rv", 1);
    auto addr_r = mb.reg("addr_r", 16);
    auto done_r = mb.reg("done_r", 1);
    auto rr = mb.reg("rr", 1, 1);

    auto st = [&](uint64_t s) { return eEq(state, lit(s, 3)); };
    auto fire = mb.wire("fire", 1);
    mb.connect("fire", eAnd(st(kReq), eAnd(rv, in.req_ready)));
    auto got = mb.wire("got", 1);
    mb.connect("got", eAnd(st(kResp), eAnd(in.resp_valid, rr)));

    auto fence_due =
        eEq(binOp(BinOpKind::Rem, iexec, lit(fence_interval, 32)),
            lit(fence_interval - 1, 32));
    auto run_next =
        mux(eEq(iexec, lit(instructions - 1, 32)), lit(kDone, 3),
            mux(fence_due, lit(kIssue, 3), lit(kRun, 3)));
    mb.connect("state",
               mux(st(kRun), run_next,
                   mux(st(kIssue), lit(kReq, 3),
                       mux(fire, lit(kResp, 3),
                           mux(got, lit(kThink, 3),
                               mux(st(kThink), lit(kRun, 3),
                                   state))))));
    mb.connect("iexec",
               mux(st(kRun), bits(eAdd(iexec, lit(1, 32)), 31, 0),
                   iexec));
    mb.connect("rv",
               mux(st(kIssue), lit(1, 1),
                   mux(fire, lit(0, 1), rv)));
    mb.connect("addr_r",
               mux(st(kIssue), bits(iexec, 15, 0), addr_r));
    mb.connect("acc",
               mux(got, bits(eAdd(acc, in.resp_data), 31, 0), acc));
    mb.connect("done_r", mux(st(kDone), lit(1, 1), done_r));

    mb.connect("req_valid", rv);
    mb.connect("req_addr", addr_r);
    mb.connect("req_data", acc);
    mb.connect("req_wen", lit(0, 1));
    mb.connect("resp_ready", rr);
    mb.connect("done_o", done_r);
}

/** Top: the accelerator next to an always-ready one-cycle memory. */
Circuit
finishAccelSoc(CircuitBuilder &cb, const std::string &top_name,
               const std::string &accel_module)
{
    constexpr unsigned mem_words = 256;
    constexpr unsigned aw = 8;

    ModuleBuilder top = cb.module(top_name);
    top.instance("accel", accel_module);

    auto always1 = top.reg("always1", 1, 1);
    top.connect("accel.req_ready", always1);

    auto granted = top.wire("granted", 1);
    top.connect("granted",
                eAnd(top.sig("accel.req_valid"), always1));

    top.mem("m", mem_words, 32);
    top.connect("m.raddr", bits(top.sig("accel.req_addr"), aw - 1, 0));
    top.connect("m.waddr", bits(top.sig("accel.req_addr"), aw - 1, 0));
    top.connect("m.wdata", top.sig("accel.req_data"));
    top.connect("m.wen",
                eAnd(granted, top.sig("accel.req_wen")));

    auto resp_v = top.reg("resp_v", 1);
    auto resp_d = top.reg("resp_d", 32);
    top.connect("resp_v", granted);
    top.connect("resp_d",
                mux(granted,
                    mux(top.sig("accel.req_wen"),
                        top.sig("accel.req_data"),
                        top.sig("m.rdata")),
                    resp_d));
    top.connect("accel.resp_valid", resp_v);
    top.connect("accel.resp_data", resp_d);

    top.output("done", 1);
    top.connect("done", top.sig("accel.done_o"));
    return cb.finish();
}

} // namespace

Circuit
buildSha3Soc(const Sha3Config &cfg)
{
    CircuitBuilder cb("Sha3Soc");
    // The memory port moves 64-bit beats: two block words per load.
    unsigned beats = std::max(1u, (cfg.loadWords + 1) / 2);
    addPhasedAccel(cb, "Sha3Accel", beats, cfg.roundCycles, 2);
    return finishAccelSoc(cb, "Sha3Soc", "Sha3Accel");
}

Circuit
buildGemminiSoc(const GemminiConfig &cfg)
{
    CircuitBuilder cb("GemminiSoc");
    addPhasedAccel(cb, "GemminiAccel", std::max(1u, cfg.loadTiles),
                   cfg.macCycles, std::max(1u, cfg.storeTiles));
    return finishAccelSoc(cb, "GemminiSoc", "GemminiAccel");
}

Circuit
buildBootSoc(const BootConfig &cfg)
{
    CircuitBuilder cb("BootSoc");
    addBootCore(cb, cfg.instructions, cfg.fenceInterval);
    return finishAccelSoc(cb, "BootSoc", "BootCore");
}

} // namespace fireaxe::target
