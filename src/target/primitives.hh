/**
 * @file
 * Small reusable hardware generators shared by the target designs:
 * currently a synchronous FIFO queue module.
 */

#ifndef FIREAXE_TARGET_PRIMITIVES_HH
#define FIREAXE_TARGET_PRIMITIVES_HH

#include <string>

#include "firrtl/builder.hh"

namespace fireaxe::target {

/**
 * Declare a module @p name implementing a @p depth-entry FIFO of
 * @p width-bit values with a ready/valid interface on both sides:
 *
 *   inputs : enq_valid, enq_bits, deq_ready
 *   outputs: enq_ready, deq_valid, deq_bits
 *
 * enq_ready is asserted whenever the queue is not full, deq_valid
 * whenever it is not empty; both are evaluated against the
 * pre-clock-edge occupancy. Storage is a memory, so large queues map
 * to BRAM in the resource model.
 */
void addQueueModule(firrtl::CircuitBuilder &cb, const std::string &name,
                    unsigned width, unsigned depth);

} // namespace fireaxe::target

#endif // FIREAXE_TARGET_PRIMITIVES_HH
