#include "target/big_core.hh"

#include <functional>
#include <string>
#include <vector>

#include "base/bits.hh"
#include "firrtl/builder.hh"

namespace fireaxe::target {

using namespace firrtl;

namespace {

std::string
feInstPort(unsigned s, unsigned f)
{
    return "fe_i" + std::to_string(s) + "_" + std::to_string(f);
}

/** A lane's worth of execution logic: a chain of 64-bit divide/xor
 *  stages over the given operand stream (divisors forced odd so the
 *  interpreter's divide-by-zero guard never flattens the values). */
ExprPtr
aluTree(ExprPtr seed, unsigned steps,
        const std::function<ExprPtr(unsigned)> &operand)
{
    ExprPtr t = std::move(seed);
    for (unsigned k = 0; k < steps; ++k) {
        ExprPtr x = operand(k);
        t = eXor(binOp(BinOpKind::Div, t, eOr(x, lit(1, 64))), x);
    }
    return t;
}

void
addBackend(CircuitBuilder &cb, const BigCoreConfig &cfg)
{
    ModuleBuilder mb = cb.module("BigCoreBackend");
    std::vector<ExprPtr> fe_v(cfg.fetchWidth);
    std::vector<std::vector<ExprPtr>> fe_i(cfg.fetchWidth);
    for (unsigned s = 0; s < cfg.fetchWidth; ++s) {
        fe_v[s] = mb.input("fe_v" + std::to_string(s), 1);
        for (unsigned f = 0; f < cfg.fieldsPerInst; ++f)
            fe_i[s].push_back(mb.input(feInstPort(s, f), 64));
    }
    std::vector<ExprPtr> lsu(cfg.lsuWords);
    for (unsigned w = 0; w < cfg.lsuWords; ++w)
        lsu[w] = mb.input("lsu" + std::to_string(w), 64);

    auto anyv = mb.wire("anyv", 1);
    ExprPtr vfold = fe_v[0];
    for (unsigned s = 1; s < cfg.fetchWidth; ++s)
        vfold = eOr(vfold, fe_v[s]);
    mb.connect("anyv", vfold);
    // The one combinational boundary output: bundle acknowledge.
    mb.output("fb_ack", 1);
    mb.connect("fb_ack", anyv);

    unsigned depth = 2 * cfg.fieldsPerInst + 2;
    std::vector<ExprPtr> wb(cfg.backendLanes);
    for (unsigned l = 0; l < cfg.backendLanes; ++l) {
        std::string rn = "wb" + std::to_string(l);
        wb[l] = mb.reg(rn + "_r", 64, l + 1);
        auto tree = aluTree(
            eXor(fe_i[l % cfg.fetchWidth][0], wb[l]), depth,
            [&](unsigned k) {
                return fe_i[(l + k) % cfg.fetchWidth]
                           [(k + 1) % cfg.fieldsPerInst];
            });
        mb.connect(rn + "_r", mux(anyv, tree, wb[l]));
        mb.output(rn, 64);
        mb.connect(rn, wb[l]);
    }

    // Store buffer fed by the LSU words, read by the redirect unit.
    unsigned aw =
        cfg.lsuWords > 1 ? bitsNeeded(cfg.lsuWords - 1) : 1;
    mb.mem("sbuf", cfg.lsuWords, 64);
    ExprPtr lfold = lsu[0];
    for (unsigned w = 1; w < cfg.lsuWords; ++w)
        lfold = eXor(lfold, lsu[w]);
    auto rpc = mb.reg("rpc", 64, 0x8000);
    mb.connect("sbuf.raddr", bits(rpc, aw - 1, 0));
    mb.connect("sbuf.waddr", bits(wb[0], aw - 1, 0));
    mb.connect("sbuf.wdata", lfold);
    mb.connect("sbuf.wen", anyv);
    mb.connect("rpc",
               mux(anyv,
                   bits(eAdd(eXor(rpc, mb.sig("sbuf.rdata")),
                             lit(8, 64)),
                        63, 0),
                   rpc));
    mb.output("redirect_pc", 64);
    mb.connect("redirect_pc", rpc);

    // Commit trace: history of lane 0's writeback.
    ExprPtr prev = wb[0];
    for (unsigned w = 0; w < cfg.traceWords; ++w) {
        std::string rn = "bt" + std::to_string(w);
        auto bt = mb.reg(rn, 64);
        mb.connect(rn, prev);
        mb.output("btrace" + std::to_string(w), 64);
        mb.connect("btrace" + std::to_string(w), bt);
        prev = bt;
    }
}

void
addFrontend(CircuitBuilder &cb, const BigCoreConfig &cfg)
{
    ModuleBuilder mb = cb.module("BigCoreFrontend");
    std::vector<ExprPtr> wb(cfg.backendLanes);
    for (unsigned l = 0; l < cfg.backendLanes; ++l)
        wb[l] = mb.input("wb" + std::to_string(l), 64);
    auto redirect = mb.input("redirect_pc", 64);
    auto advance = mb.input("fb_ack", 1);
    std::vector<ExprPtr> btrace(cfg.traceWords);
    for (unsigned w = 0; w < cfg.traceWords; ++w)
        btrace[w] = mb.input("btrace" + std::to_string(w), 64);

    auto pc = mb.reg("pc", 64, 0x1000);
    auto lfsr = mb.reg("lfsr", 64, 0x123456789ULL);
    auto l1 = eXor(lfsr, binOp(BinOpKind::Shl, lfsr, lit(13, 7)));
    auto l2 = eXor(l1, binOp(BinOpKind::Shr, l1, lit(7, 7)));
    mb.connect("lfsr", l2);
    mb.connect("pc",
               mux(advance,
                   bits(eAdd(eXor(pc, eAnd(redirect, lit(0xFF, 64))),
                             lit(32, 64)),
                        63, 0),
                   pc));

    // Predictor lanes: the frontend's LUT mass.
    std::vector<ExprPtr> pred(cfg.frontendLanes);
    for (unsigned l = 0; l < cfg.frontendLanes; ++l) {
        std::string rn = "pred" + std::to_string(l);
        pred[l] = mb.reg(rn, 64, 0x1000 + l);
        auto tree = aluTree(eXor(pred[l], wb[l % cfg.backendLanes]),
                            cfg.fieldsPerInst + 3, [&](unsigned k) {
                                return wb[(l + k) %
                                          cfg.backendLanes];
                            });
        mb.connect(rn, mux(advance, tree, pred[l]));
    }

    for (unsigned s = 0; s < cfg.fetchWidth; ++s) {
        std::string vn = "fv" + std::to_string(s);
        auto fv = mb.reg(vn, 1, 1);
        // Bit 0 of lfsr|1 keeps slot 0 always valid, so the
        // fetch/ack handshake never starves.
        mb.connect(vn,
                   bits(eOr(lfsr, lit(1, 64)), s % 64, s % 64));
        mb.output("fe_v" + std::to_string(s), 1);
        mb.connect("fe_v" + std::to_string(s), fv);
        for (unsigned f = 0; f < cfg.fieldsPerInst; ++f) {
            std::string rn =
                "fi" + std::to_string(s) + "_" + std::to_string(f);
            auto fi = mb.reg(rn, 64);
            auto sel = pred[(s + f) % cfg.frontendLanes];
            mb.connect(
                rn,
                mux(advance,
                    bits(eXor(sel,
                              eAdd(pc, lit(s * cfg.fieldsPerInst +
                                               f + 1,
                                           64))),
                         63, 0),
                    fi));
            mb.output(feInstPort(s, f), 64);
            mb.connect(feInstPort(s, f), fi);
        }
    }

    for (unsigned w = 0; w < cfg.lsuWords; ++w) {
        std::string rn = "ls" + std::to_string(w);
        auto ls = mb.reg(rn, 64);
        mb.connect(rn,
                   bits(eXor(lfsr,
                             eAdd(wb[w % cfg.backendLanes],
                                  lit(w, 64))),
                        63, 0));
        mb.output("lsu" + std::to_string(w), 64);
        mb.connect("lsu" + std::to_string(w), ls);
    }

    // Trace checksum keeps the commit-trace inputs live.
    auto tchk = mb.reg("tchk", 64);
    ExprPtr tfold = btrace[0];
    for (unsigned w = 1; w < cfg.traceWords; ++w)
        tfold = eXor(tfold, btrace[w]);
    mb.connect("tchk", bits(eXor(tchk, tfold), 63, 0));
}

} // namespace

unsigned
bigCoreInterfaceBits(const BigCoreConfig &cfg)
{
    unsigned fe_to_be = cfg.fetchWidth * (1 + 64 * cfg.fieldsPerInst) +
                        64 * cfg.lsuWords;
    unsigned be_to_fe =
        64 * cfg.backendLanes + 64 + 1 + 64 * cfg.traceWords;
    return fe_to_be + be_to_fe;
}

BigCoreConfig
gc40BigCoreConfig()
{
    BigCoreConfig cfg;
    cfg.fetchWidth = 8;
    cfg.fieldsPerInst = 7;
    cfg.traceWords = 32;
    cfg.lsuWords = 8;
    cfg.backendLanes = 16;
    cfg.frontendLanes = 8;
    return cfg;
}

Circuit
buildBigCore(const BigCoreConfig &cfg)
{
    CircuitBuilder cb("BigCore");
    addBackend(cb, cfg);
    addFrontend(cb, cfg);

    ModuleBuilder top = cb.module("BigCore");
    top.instance("frontend", "BigCoreFrontend");
    top.instance("backend", "BigCoreBackend");

    for (unsigned s = 0; s < cfg.fetchWidth; ++s) {
        std::string v = "fe_v" + std::to_string(s);
        top.connect("backend." + v, top.sig("frontend." + v));
        for (unsigned f = 0; f < cfg.fieldsPerInst; ++f) {
            std::string p = feInstPort(s, f);
            top.connect("backend." + p, top.sig("frontend." + p));
        }
    }
    for (unsigned w = 0; w < cfg.lsuWords; ++w) {
        std::string p = "lsu" + std::to_string(w);
        top.connect("backend." + p, top.sig("frontend." + p));
    }
    for (unsigned l = 0; l < cfg.backendLanes; ++l) {
        std::string p = "wb" + std::to_string(l);
        top.connect("frontend." + p, top.sig("backend." + p));
    }
    top.connect("frontend.redirect_pc",
                top.sig("backend.redirect_pc"));
    top.connect("frontend.fb_ack", top.sig("backend.fb_ack"));
    for (unsigned w = 0; w < cfg.traceWords; ++w) {
        std::string p = "btrace" + std::to_string(w);
        top.connect("frontend." + p, top.sig("backend." + p));
    }

    auto status_r = top.reg("status_r", 32, 1);
    auto mixv = eXor(bits(top.sig("backend.wb0"), 31, 0),
                     bits(top.sig("backend.redirect_pc"), 31, 0));
    top.connect("status_r",
                bits(eAdd(eXor(status_r, mixv), lit(1, 32)), 31, 0));
    top.output("status", 32);
    top.connect("status", status_r);

    return cb.finish();
}

} // namespace fireaxe::target
