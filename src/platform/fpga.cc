#include "platform/fpga.hh"

#include <algorithm>

#include "base/logging.hh"

namespace fireaxe::platform {

FpgaSpec
alveoU250(double clock_mhz)
{
    // 1728k LUTs, 3456k FFs, 2000 BRAM-36 tiles (XCU250).
    return {"alveo-u250", clock_mhz, 1728000, 3456000, 2000};
}

FpgaSpec
awsF1Vu9p(double clock_mhz)
{
    // VU9P nominally ~1182k LUTs; the F1 shell consumes a fixed
    // region, leaving roughly 2/3 usable (paper §VIII-A: U250 offers
    // ~50% more usable LUTs than cloud VU9Ps).
    return {"aws-f1-vu9p", clock_mhz, 1152000, 2364000, 1680};
}

passes::ResourceEstimate
fame5Estimate(const passes::ResourceEstimate &full,
              const passes::ResourceEstimate &single_copy,
              unsigned threads)
{
    FIREAXE_ASSERT(threads >= 1);
    passes::ResourceEstimate est = full;
    // Remove the duplicated combinational logic, keep one copy, and
    // charge a small scheduler/mux overhead per extra thread.
    uint64_t shared_luts = single_copy.luts * (threads - 1);
    est.luts = est.luts > shared_luts ? est.luts - shared_luts : 0;
    est.luts += (threads - 1) * (single_copy.flipFlops / 8 + 64);
    return est;
}

bool
fits(const FpgaSpec &fpga, const passes::ResourceEstimate &est)
{
    return est.luts <=
               uint64_t(fpga.lutCapacity * routableLutFraction) &&
           est.flipFlops <= fpga.ffCapacity &&
           est.brams <= fpga.bramCapacity;
}

double
lutUtilization(const FpgaSpec &fpga,
               const passes::ResourceEstimate &est)
{
    return double(est.luts) / double(fpga.lutCapacity);
}

double
softwareRtlSimRateHz(const passes::ResourceEstimate &est)
{
    // Calibrated so a ~1.7M-LUT SoC simulates at 1.26 kHz.
    uint64_t luts = std::max<uint64_t>(est.luts, 1);
    return 2.14e9 / double(luts);
}

} // namespace fireaxe::platform
