#include "platform/cost.hh"

#include "base/logging.hh"

namespace fireaxe::platform {

CampaignCost
projectCampaign(double cloud_sim_hours, unsigned fpgas,
                const DeploymentCosts &costs)
{
    FIREAXE_ASSERT(cloud_sim_hours >= 0.0 && fpgas >= 1);
    CampaignCost out;
    out.cloudHours = cloud_sim_hours;
    out.onPremHours = cloud_sim_hours / costs.onPremSpeedup;

    out.cloudUsd =
        cloud_sim_hours * fpgas * costs.cloudUsdPerFpgaHour;
    out.onPremUsd = fpgas * costs.onPremUpfrontUsdPerFpga +
                    out.onPremHours * fpgas *
                        costs.onPremPowerUsdPerFpgaHour;

    // Break-even: cloud spend equals the upfront investment (power
    // cost folded into the effective hourly delta).
    double hourly_delta =
        costs.cloudUsdPerFpgaHour -
        costs.onPremPowerUsdPerFpgaHour / costs.onPremSpeedup;
    out.breakEvenHours =
        hourly_delta > 0.0
            ? costs.onPremUpfrontUsdPerFpga / hourly_delta
            : 0.0;
    return out;
}

} // namespace fireaxe::platform
