/**
 * @file
 * The hybrid cloud/on-premises usage model of Section VIII-A.
 *
 * "When deciding between cloud and on-premises FPGAs, three key
 * factors stand out": cost (cloud is pay-by-the-hour, on-prem is an
 * upfront investment), capacity (a U250 offers ~50% more usable
 * LUTs than a cloud VU9P because of the fixed shell), and
 * performance (QSFP beats PCIe p2p). The paper advocates developing
 * on-premises and bursting benchmark campaigns to the cloud.
 *
 * This model quantifies the trade-off: given a campaign of
 * simulation-hours, it reports the cost and wall-clock of each
 * deployment and the break-even point.
 */

#ifndef FIREAXE_PLATFORM_COST_HH
#define FIREAXE_PLATFORM_COST_HH

#include <cstdint>

namespace fireaxe::platform {

/** Deployment cost parameters (2024-era list prices). */
struct DeploymentCosts
{
    /** On-prem: boards + host server, amortized upfront. */
    double onPremUpfrontUsdPerFpga = 9000.0;
    double onPremPowerUsdPerFpgaHour = 0.06;
    /** Cloud: f1.2xlarge-equivalent hourly price per FPGA. */
    double cloudUsdPerFpgaHour = 1.65;
    /** QSFP on-prem vs PCIe-p2p cloud simulation-rate ratio. */
    double onPremSpeedup = 1.5;
};

/** One campaign's cost/latency projection. */
struct CampaignCost
{
    double onPremUsd = 0.0;
    double cloudUsd = 0.0;
    double onPremHours = 0.0;
    double cloudHours = 0.0;
    /** Cloud simulation-hours at which buying boards pays off. */
    double breakEvenHours = 0.0;
};

/**
 * Project costs for a campaign needing @p cloud_sim_hours of
 * simulation on @p fpgas cloud FPGAs (the on-prem variant finishes
 * faster by the speedup factor).
 */
CampaignCost projectCampaign(double cloud_sim_hours, unsigned fpgas,
                             const DeploymentCosts &costs = {});

} // namespace fireaxe::platform

#endif // FIREAXE_PLATFORM_COST_HH
