/**
 * @file
 * FPGA host platform models: board capacities and FAME-5-adjusted
 * resource estimation.
 */

#ifndef FIREAXE_PLATFORM_FPGA_HH
#define FIREAXE_PLATFORM_FPGA_HH

#include <cstdint>
#include <string>

#include "passes/resources.hh"
#include "firrtl/ir.hh"

namespace fireaxe::platform {

/** One simulation-host FPGA. */
struct FpgaSpec
{
    std::string board;
    /** Bitstream (host clock) frequency in MHz. */
    double clockMhz;
    uint64_t lutCapacity;
    uint64_t ffCapacity;
    uint64_t bramCapacity;

    double hostPeriodNs() const { return 1000.0 / clockMhz; }
};

/**
 * Fraction of an FPGA's LUTs that can be used before routing
 * congestion makes bitstream builds fail (the §V-B monolithic GC40
 * build "fails due to congestion", not capacity).
 */
constexpr double routableLutFraction = 0.78;

/** Xilinx Alveo U250 (the paper's on-premises board). */
FpgaSpec alveoU250(double clock_mhz);

/** AWS EC2 F1 VU9P. Per Section VIII-A, roughly 50% fewer usable
 *  LUTs than a U250 because of the fixed cloud shell IP. */
FpgaSpec awsF1Vu9p(double clock_mhz);

/**
 * Resource estimate of a partition after the FAME-5 transformation
 * with @p threads threads: combinational logic of the duplicated
 * modules is shared (counted once) while sequential state stays
 * replicated. @p full is the estimate with all duplicates
 * instantiated, @p single_copy the estimate of one duplicate.
 */
passes::ResourceEstimate
fame5Estimate(const passes::ResourceEstimate &full,
              const passes::ResourceEstimate &single_copy,
              unsigned threads);

/** Does the estimate fit the board? */
bool fits(const FpgaSpec &fpga, const passes::ResourceEstimate &est);

/** LUT utilization fraction. */
double lutUtilization(const FpgaSpec &fpga,
                      const passes::ResourceEstimate &est);

/**
 * Modeled throughput of a commercial software RTL simulator for a
 * design of the given estimated size. Section V-A reports 1.26 kHz
 * for the 24-core BOOM SoC (~1.7M LUTs of logic), which FireAxe
 * beats by 460x; software simulation rate scales roughly inversely
 * with design size.
 */
double softwareRtlSimRateHz(const passes::ResourceEstimate &est);

} // namespace fireaxe::platform

#endif // FIREAXE_PLATFORM_FPGA_HH
