#include "platform/executor.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <limits>
#include <map>
#include <ostream>
#include <set>
#include <sstream>

#include "analyze/batching.hh"
#include "base/logging.hh"
#include "base/serial.hh"
#include "par/engine.hh"
#include "passes/flatten.hh"
#include "recovery/snapshot.hh"
#include "rtlsim/simulator.hh"
#include "verify/verify.hh"

namespace fireaxe::platform {

using libdn::ChannelPtr;
using libdn::LIBDNModel;
using libdn::TokenChannel;
using ripper::PartitionMode;

unsigned
defaultBatchDepth()
{
    const char *env = std::getenv("FIREAXE_BATCH_DEPTH");
    if (!env || !*env)
        return 1;
    char *end = nullptr;
    unsigned long v = std::strtoul(env, &end, 10);
    if (end == env || *end || v == 0)
        return 1;
    return unsigned(v);
}

bool
defaultPipelinedEpochs()
{
    const char *env = std::getenv("FIREAXE_PIPELINED_EPOCHS");
    if (!env || !*env)
        return true;
    std::string v(env);
    return !(v == "0" || v == "false" || v == "off");
}

uint64_t
designContentHash(const ripper::PartitionPlan &plan)
{
    uint64_t h = recovery::fnv1a("fireaxe-design");
    for (const auto &circuit : plan.partitions)
        h = recovery::fnv1aMix(h, recovery::hashCircuit(circuit));
    return h;
}

uint64_t
planStructureHash(const ripper::PartitionPlan &plan)
{
    // Hash the plan *structure* — everything that shapes the models
    // and channels a snapshot will be loaded back into.
    std::ostringstream os;
    os << int(plan.mode) << "\n";
    for (size_t p = 0; p < plan.partitionNames.size(); ++p)
        os << plan.partitionNames[p] << " " << plan.fame5Threads[p]
           << "\n";
    for (const auto &ch : plan.channels)
        os << ch.name << " " << ch.srcPart << " " << ch.dstPart
           << " " << ch.widthBits << " " << ch.capacity << " "
           << ch.maxBatchDepth << "\n";
    return recovery::fnv1a(os.str());
}

uint64_t
contentHash(const ripper::PartitionPlan &plan)
{
    return recovery::fnv1aMix(designContentHash(plan),
                              planStructureHash(plan));
}

MultiFpgaSim::MultiFpgaSim(const ripper::PartitionPlan &plan,
                           std::vector<FpgaSpec> fpgas,
                           const transport::LinkParams &link)
    : plan_(plan), fpgas_(std::move(fpgas)), link_(link)
{
    if (fpgas_.size() != plan_.partitions.size()) {
        fatal("MultiFpgaSim: ", plan_.partitions.size(),
              " partitions but ", fpgas_.size(), " FPGA specs");
    }
    drivers_.resize(plan_.partitions.size());
    monitors_.resize(plan_.partitions.size());
}

void
MultiFpgaSim::setFaultModel(const transport::FaultConfig &cfg)
{
    FIREAXE_ASSERT(!initialized_, "setFaultModel before init");
    faults_ = transport::FaultModel(cfg);
}

void
MultiFpgaSim::setTelemetry(const obs::TelemetryConfig &cfg)
{
    FIREAXE_ASSERT(!initialized_, "setTelemetry before init");
    telemetry_ = std::make_unique<obs::Telemetry>(cfg);
}

void
MultiFpgaSim::setDriver(int part, libdn::Driver driver)
{
    FIREAXE_ASSERT(!initialized_, "setDriver before init");
    drivers_.at(part) = std::move(driver);
}

void
MultiFpgaSim::setMonitor(int part, libdn::Monitor monitor)
{
    FIREAXE_ASSERT(!initialized_, "setMonitor before init");
    monitors_.at(part) = std::move(monitor);
}

void
MultiFpgaSim::attachVcd(int part, std::ostream &os)
{
    FIREAXE_ASSERT(!initialized_, "attachVcd before init");
    vcdStreams_.resize(plan_.partitions.size(), nullptr);
    vcdStreams_.at(part) = &os;
}

void
MultiFpgaSim::setVerifyPolicy(VerifyPolicy policy)
{
    FIREAXE_ASSERT(!initialized_, "setVerifyPolicy before init");
    verifyPolicy_ = policy;
}

void
MultiFpgaSim::setPrecompiledPrograms(
    std::vector<std::shared_ptr<const rtlsim::CompiledProgram>>
        programs)
{
    FIREAXE_ASSERT(!initialized_,
                   "setPrecompiledPrograms before init");
    precompiled_ = std::move(programs);
}

std::shared_ptr<const rtlsim::CompiledProgram>
MultiFpgaSim::compiledProgram(int part)
{
    return model(part).sim().compiledProgram();
}

void
MultiFpgaSim::runPreflight()
{
    if (preflightRan_)
        return;
    // Dead-logic findings are a lint concern (fireaxe-lint reports
    // them); the pre-flight gate only needs the checks that prove a
    // plan unrunnable.
    verify::Options options;
    options.checkDeadLogic = false;
    // Price the PLAN009/PLAN010 cut-cost predictions with the sim's
    // actual transport and host clock, not the model defaults.
    options.cutCost.link = link_;
    if (!fpgas_.empty())
        options.cutCost.hostClockMhz = fpgas_[0].clockMhz;
    // PLAN011: warn per channel the batching legality pass clamps
    // when a depth > 1 is requested for this run.
    options.requestedBatchDepth = execConfig_.batchDepth;
    preflight_ = verify::verifyPlan(plan_, options);
    preflightRan_ = true;
}

void
MultiFpgaSim::setExecConfig(const ExecConfig &cfg)
{
    execConfig_ = cfg;
    // Annotate eagerly so a planHash() taken between configuration
    // and init() already reflects the batching clamps (the service
    // records the hash at prepare time, the stream header at init).
    if (!initialized_ && execConfig_.batchDepth > 1)
        ensureBatchAnnotation();
}

void
MultiFpgaSim::ensureBatchAnnotation()
{
    // The ripper cannot run the legality pass itself (src/analyze
    // consumes the plan headers but the auto-partitioner links
    // analyze for its cost model), so executors annotate their own
    // plan copies on demand. The verdicts are depth-independent
    // (legal boundaries get the pass's maxDepth ceiling), so one
    // annotation serves any requested depth.
    if (batchAnnotated_)
        return;
    analyze::annotateBatchDepths(plan_);
    batchAnnotated_ = true;
}

void
MultiFpgaSim::init()
{
    FIREAXE_ASSERT(!initialized_);

    // Depth-N batching: the plan copy must carry its per-channel
    // clamps before the pre-flight (PLAN011), the channel wiring
    // below, and planHash() queries.
    if (execConfig_.batchDepth > 1)
        ensureBatchAnnotation();

    // FIREAXE_NO_VERIFY=1 is the process-level --no-verify escape
    // hatch: it demotes Enforce to WarnOnly so a rejected plan still
    // runs (with the findings on stderr) without a code change.
    VerifyPolicy policy = verifyPolicy_;
    const char *no_verify = std::getenv("FIREAXE_NO_VERIFY");
    if (policy == VerifyPolicy::Enforce && no_verify &&
        *no_verify && std::string(no_verify) != "0")
        policy = VerifyPolicy::WarnOnly;

    if (policy != VerifyPolicy::Off) {
        runPreflight();
        if (preflight_.hasErrors()) {
            if (policy == VerifyPolicy::Enforce) {
                fatal("pre-flight static verification rejected the "
                      "partition plan:\n",
                      preflight_.renderText(),
                      "(setVerifyPolicy(VerifyPolicy::WarnOnly/Off) "
                      "or FIREAXE_NO_VERIFY=1 to override)");
            }
            warn("pre-flight static verification found errors "
                 "(running anyway):\n",
                 preflight_.renderText());
        }
    }

    vcdStreams_.resize(plan_.partitions.size(), nullptr);
    vcdWriters_.resize(plan_.partitions.size());

    for (size_t p = 0; p < plan_.partitions.size(); ++p) {
        models_.push_back(std::make_unique<LIBDNModel>(
            plan_.partitionNames[p], plan_.partitions[p], 1,
            execConfig_.evalEngine,
            p < precompiled_.size() ? precompiled_[p] : nullptr));
        if (drivers_[p])
            models_[p]->setDriver(drivers_[p]);

        libdn::Monitor user = monitors_[p];
        if (vcdStreams_[p]) {
            vcdWriters_[p] = std::make_unique<rtlsim::VcdWriter>(
                *vcdStreams_[p], models_[p]->sim(),
                plan_.partitionNames[p]);
            rtlsim::VcdWriter *vcd = vcdWriters_[p].get();
            models_[p]->setMonitor(
                [user, vcd](rtlsim::Simulator &sim, unsigned thread,
                            uint64_t cycle) {
                    vcd->sample();
                    if (user)
                        user(sim, thread, cycle);
                });
        } else if (user) {
            models_[p]->setMonitor(user);
        }
    }

    // One serializer per physical link direction (FPGA pair).
    std::map<std::pair<int, int>, std::shared_ptr<libdn::LinkSerializer>>
        serializers;

    for (const auto &ch : plan_.channels) {
        libdn::ChannelSpec out_spec, in_spec;
        out_spec.name = ch.name;
        in_spec.name = ch.name;
        for (int n : ch.netIndices) {
            out_spec.ports.push_back(plan_.nets[n].srcPort);
            in_spec.ports.push_back(plan_.nets[n].dstPort);
        }

        // Effective batch depth: the requested depth clamped by the
        // legality pass (maxBatchDepth == 0 means the pass did not
        // run, i.e. batching was not requested). Batched channels
        // need room for a whole in-flight epoch plus the one being
        // produced, so the capacity grows to 2N+2.
        unsigned eff_depth = 1;
        if (execConfig_.batchDepth > 1)
            eff_depth = std::min(execConfig_.batchDepth,
                                 ch.maxBatchDepth ? ch.maxBatchDepth
                                                  : 1u);
        size_t capacity = ch.capacity;
        if (eff_depth > 1)
            capacity = std::max(capacity,
                                size_t(2) * eff_depth + 2);

        auto chan = std::make_shared<libdn::ReliableTokenChannel>(
            ch.name, ch.widthBits, faults_,
            libdn::ReliableTokenChannel::Params{}, capacity);
        auto &ser = serializers[{ch.srcPart, ch.dstPart}];
        if (!ser)
            ser = std::make_shared<libdn::LinkSerializer>();
        double ser_ns = transport::tokenSerNs(link_, ch.widthBits);
        double lat_ns = transport::tokenLatencyNs(link_);
        chan->setTiming(ser_ns, lat_ns, ser);
        if (eff_depth > 1)
            chan->configureBatching(
                eff_depth,
                transport::payloadSerNs(link_, ch.widthBits),
                transport::frameOverheadNs(link_),
                execConfig_.pipelinedEpochs);
        channels_.push_back({chan, ch.srcPart, ch.dstPart, false,
                             ser, ser_ns, lat_ns});

        int out_slot = models_[ch.srcPart]->defineOutputChannel(
            out_spec);
        models_[ch.srcPart]->bindOutput(out_slot, 0, chan);
        int in_slot = models_[ch.dstPart]->defineInputChannel(
            in_spec);
        models_[ch.dstPart]->bindInput(in_slot, 0, chan);
    }

    if (telemetry_)
        setupTelemetry();

    if (plan_.mode == PartitionMode::Fast) {
        for (auto &model : models_)
            model->forceAllOutputDeps();
    }
    for (auto &model : models_)
        model->finalize();

    if (plan_.mode == PartitionMode::Fast) {
        for (auto &model : models_)
            model->seedOutputs(0.0);
    }
    initialized_ = true;
}

void
MultiFpgaSim::setupTelemetry()
{
    // PartTelemetry holds atomics, so build the vector in place
    // rather than copy-assigning from a prototype.
    partTel_ = std::vector<PartTelemetry>(models_.size());
    obs::MetricsRegistry *reg = telemetry_->registry();
    obs::Tracer *tr = telemetry_->tracer();

    for (size_t p = 0; p < models_.size(); ++p) {
        if (tr)
            tr->setProcessName(int(p), plan_.partitionNames[p]);
        if (reg) {
            const std::string base =
                "part." + plan_.partitionNames[p] + ".";
            partTel_[p].fmrGauge = &reg->gauge(base + "fmr");
            partTel_[p].fmrHist = &reg->histogram(
                base + "fmr_window",
                telemetry_->config().histogramReservoirCap);
            partTel_[p].waitTicks = &reg->counter(base + "wait_ticks");
        }
    }
    for (auto &cs : channels_) {
        cs.chan->setProbe(telemetry_->makeChannelProbe(
            cs.chan->name(), cs.srcPart, cs.dstPart));
    }

    // Streaming telemetry: open the JSONL sink and write the header
    // once every channel is registered in the collector's table. A
    // caller-owned streamSink (the daemon's per-job socket forwarder)
    // takes precedence over opening a file path.
    const obs::TelemetryConfig &cfg = telemetry_->config();
    if (cfg.streamSink || !cfg.streamPath.empty()) {
        std::unique_ptr<std::ofstream> os;
        if (!cfg.streamSink) {
            os = std::make_unique<std::ofstream>(cfg.streamPath);
        }
        if (os && !*os) {
            warn("telemetry stream: cannot open '", cfg.streamPath,
                 "' — streaming disabled");
        } else {
            std::ostream *sink = cfg.streamSink;
            if (os) {
                streamOs_ = std::move(os);
                sink = streamOs_.get();
            }
            streamSink_ = sink;
            stream_ = std::make_unique<obs::StreamWriter>(*sink);
            streamEveryCycles_ = cfg.streamEveryCycles
                                     ? cfg.streamEveryCycles
                                     : 256;
            nextStreamCycle_ = streamEveryCycles_;
            obs::TokenTraceCollector *tt = telemetry_->tokenTrace();
            obs::StreamRunInfo info;
            info.runLabel = cfg.runLabel;
            info.planHash = planHash();
            info.artifactHash = contentHash();
            info.backend =
                execConfig_.backend == ExecBackend::Parallel
                    ? "parallel"
                    : "sequential";
            info.engine = rtlsim::toString(execConfig_.evalEngine);
            info.workers = execConfig_.workers;
            info.batchDepth = execConfig_.batchDepth;
            info.sampleEvery = tt ? tt->sampleEvery() : 1;
            info.partitions = plan_.partitionNames;
            if (tt)
                info.channels = tt->channels();
            stream_->writeHeader(info);
        }
    }
}

void
MultiFpgaSim::telemetryTick(size_t p, double now, double step,
                            bool progress, bool advanced)
{
    PartTelemetry &pt = partTel_[p];
    // FAME-5: an advancing multi-threaded partition burns N host
    // cycles for the target cycle; a stalled or merely-firing tick
    // burns one.
    pt.hostCycles.fetch_add(advanced ? plan_.fame5Threads[p] : 1,
                            std::memory_order_relaxed);
    pt.targetCycles.store(models_[p]->minTargetCycle(),
                          std::memory_order_relaxed);

    obs::Tracer *tr = telemetry_->tracer();
    if (!progress) {
        obs::add(pt.waitTicks);
        if (pt.waitStartNs < 0.0)
            pt.waitStartNs = now;
    } else {
        // Close a pending wait-for-tokens span (consecutive
        // no-progress ticks merge into one span).
        if (pt.waitStartNs >= 0.0) {
            pt.waitNs += now - pt.waitStartNs;
            if (tr && now > pt.waitStartNs)
                tr->complete("wait-for-tokens", "fsm",
                             pt.waitStartNs, now - pt.waitStartNs,
                             int(p));
            pt.waitStartNs = -1.0;
        }
        if (tr)
            tr->complete(advanced ? "advance" : "fire", "fsm", now,
                         step, int(p));
    }

    const obs::TelemetryConfig &cfg = telemetry_->config();
    if (telemetry_->registry() && cfg.fmrSampleIntervalNs > 0.0 &&
        now - pt.lastFmrSampleNs >= cfg.fmrSampleIntervalNs) {
        pt.lastFmrSampleNs = now;
        sampleFmr(p, now);
    }
}

void
MultiFpgaSim::sampleFmr(size_t p, double now)
{
    obs::MetricsRegistry *reg = telemetry_->registry();
    PartTelemetry &pt = partTel_[p];
    uint64_t cycles = pt.targetCycles.load(std::memory_order_relaxed);
    uint64_t host = pt.hostCycles.load(std::memory_order_relaxed);
    uint64_t dt = cycles - pt.lastSampleTargetCycles;
    uint64_t dh = host - pt.lastSampleHostCycles;
    if (dt > 0) {
        double fmr = double(dh) / double(dt);
        pt.fmrGauge->set(fmr);
        pt.fmrHist->observe(fmr);
        pt.lastSampleTargetCycles = cycles;
        pt.lastSampleHostCycles = host;
    }
    if (now > 0.0) {
        // Aggregate over the published per-partition cycle counts —
        // other partitions' models may be mid-tick on their own
        // workers. The gauge is a running estimate; the exact final
        // value is set by finalizeTelemetry.
        uint64_t min_cycles =
            partTel_[0].targetCycles.load(std::memory_order_relaxed);
        for (const auto &tel : partTel_)
            min_cycles = std::min(
                min_cycles,
                tel.targetCycles.load(std::memory_order_relaxed));
        reg->gauge("sim.sim_rate_mhz")
            .set(double(min_cycles) / now * 1000.0);
    }
}

void
MultiFpgaSim::reportProgress(double now, uint64_t target_cycles)
{
    uint64_t min_cycles =
        partTel_[0].targetCycles.load(std::memory_order_relaxed);
    for (const auto &tel : partTel_)
        min_cycles = std::min(
            min_cycles,
            tel.targetCycles.load(std::memory_order_relaxed));
    double pct = target_cycles
                     ? 100.0 * double(min_cycles) / double(target_cycles)
                     : 0.0;
    double sim_mhz =
        now > 0.0 ? double(min_cycles) / now * 1000.0 : 0.0;

    // Mean FMR across partitions that have made progress.
    double fmr_sum = 0.0;
    int fmr_n = 0;
    for (size_t p = 0; p < models_.size(); ++p) {
        uint64_t cycles = partTel_[p].targetCycles.load(
            std::memory_order_relaxed);
        if (cycles > 0) {
            fmr_sum += double(partTel_[p].hostCycles.load(
                           std::memory_order_relaxed)) /
                       double(cycles);
            ++fmr_n;
        }
    }

    // Wall-clock rate and ETA.
    using namespace std::chrono;
    double wall_s =
        duration<double>(steady_clock::now() - wallStart_).count();
    double wall_rate = wall_s > 0.0 ? double(min_cycles) / wall_s : 0.0;
    double eta_s = (wall_rate > 0.0 && target_cycles > min_cycles)
                       ? double(target_cycles - min_cycles) / wall_rate
                       : 0.0;

    size_t occ = 0, cap = 0;
    for (const auto &cs : channels_) {
        occ += cs.chan->size();
        cap += cs.chan->capacity();
    }

    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "[fireaxe] cycle %llu/%llu (%.1f%%) sim %.3f MHz "
                  "fmr %.2f wall %.0f cyc/s eta %.1fs chan %zu/%zu",
                  (unsigned long long)min_cycles,
                  (unsigned long long)target_cycles, pct, sim_mhz,
                  fmr_n ? fmr_sum / fmr_n : 0.0, wall_rate, eta_s,
                  occ, cap);
    telemetry_->progressOut() << buf << std::endl;
}

void
MultiFpgaSim::finalizeTelemetry(RunResult &result, double now)
{
    obs::Tracer *tr = telemetry_->tracer();
    for (size_t p = 0; p < partTel_.size(); ++p) {
        PartTelemetry &pt = partTel_[p];
        if (pt.waitStartNs >= 0.0) { // close any open wait span
            pt.waitNs += now - pt.waitStartNs;
            if (tr && now > pt.waitStartNs)
                tr->complete("wait-for-tokens", "fsm",
                             pt.waitStartNs, now - pt.waitStartNs,
                             int(p));
            pt.waitStartNs = -1.0;
        }
    }

    obs::MetricsRegistry *reg = telemetry_->registry();
    if (!reg)
        return;
    for (size_t p = 0; p < models_.size(); ++p) {
        const PartTelemetry &pt = partTel_[p];
        const std::string base =
            "part." + plan_.partitionNames[p] + ".";
        uint64_t cycles = models_[p]->minTargetCycle();
        reg->gauge(base + "target_cycles").set(double(cycles));
        reg->gauge(base + "fires").set(
            double(models_[p]->totalFires()));
        reg->gauge(base + "advances").set(
            double(models_[p]->totalAdvances()));
        uint64_t host =
            pt.hostCycles.load(std::memory_order_relaxed);
        reg->gauge(base + "host_cycles").set(double(host));
        reg->gauge(base + "wait_ns").set(pt.waitNs);
        // Activity-gating effectiveness of the partition's target
        // simulator (nodes skipped is 0 under Interpret).
        const rtlsim::Simulator &tsim = models_[p]->sim();
        reg->gauge(base + "eval.nodes_evaluated")
            .set(double(tsim.nodesEvaluated()));
        reg->gauge(base + "eval.nodes_skipped")
            .set(double(tsim.nodesSkipped()));
        if (cycles > 0)
            reg->gauge(base + "fmr").set(double(host) /
                                         double(cycles));
    }
    reg->gauge("sim.host_time_ns").set(now);
    reg->gauge("sim.target_cycles").set(double(result.targetCycles));
    reg->gauge("sim.sim_rate_mhz").set(result.simRateMhz());
    reg->gauge("sim.transient_stall_events")
        .set(double(transientStallEvents_));
    reg->gauge("sim.link_failovers")
        .set(double(linkFailovers_.load(std::memory_order_relaxed)));
    reg->gauge("sim.deadlocked").set(result.deadlocked ? 1.0 : 0.0);

    // Dropped-record accounting: publish the lifetime drop totals as
    // counters (delta-tracked, so repeated finalizes of a chunked run
    // never double-count) — silently truncated traces become visible
    // in every export.
    if (obs::Tracer *tracer = telemetry_->tracer()) {
        obs::Counter &c = reg->counter("trace.dropped_events");
        uint64_t total = tracer->dropped();
        if (total > c.value())
            c.add(total - c.value());
    }
    if (obs::TokenTraceCollector *tt = telemetry_->tokenTrace()) {
        obs::Counter &c = reg->counter("trace.token_records_dropped");
        uint64_t total = tt->recordsDropped();
        if (total > c.value())
            c.add(total - c.value());
    }

    result.metrics = reg->snapshot();

    // Stream tail: the remaining token records, a final metrics line
    // (now carrying the end-of-run gauges, notably part.*.wait_ns),
    // and the accounting summary. A chunked/resumed run appends one
    // summary per finalize; the last one is authoritative.
    if (stream_) {
        streamFlush(now);
        obs::StreamSummary summary;
        summary.hostTimeNs = now;
        summary.targetCycle = result.targetCycles;
        summary.tokenRecords = streamedTokenRecords_;
        if (const obs::TokenTraceCollector *tt =
                telemetry_->tokenTrace())
            summary.tokenRecordsDropped = tt->recordsDropped();
        if (const obs::Tracer *tracer = telemetry_->tracer())
            summary.traceEventsDropped = tracer->dropped();
        summary.deadlocked = result.deadlocked;
        stream_->writeSummary(summary);
        streamSink_->flush();
    }
}

void
MultiFpgaSim::streamFlush(double now)
{
    if (!stream_)
        return;
    uint64_t cycle = 0;
    if (!partTel_.empty()) {
        cycle = partTel_[0].targetCycles.load(
            std::memory_order_relaxed);
        for (const auto &pt : partTel_)
            cycle = std::min(cycle, pt.targetCycles.load(
                                        std::memory_order_relaxed));
    }
    if (obs::TokenTraceCollector *tt = telemetry_->tokenTrace()) {
        std::vector<obs::TokenRecord> records = tt->drainFired();
        streamedTokenRecords_ += records.size();
        stream_->writeTokens(records);
    }
    if (obs::MetricsRegistry *reg = telemetry_->registry())
        stream_->writeMetrics(reg->snapshot(), now, cycle);
}

void
MultiFpgaSim::maybeStreamFlush(double now)
{
    if (!stream_ || streamEveryCycles_ == 0 || partTel_.empty())
        return;
    uint64_t cycle =
        partTel_[0].targetCycles.load(std::memory_order_relaxed);
    for (const auto &pt : partTel_)
        cycle = std::min(
            cycle, pt.targetCycles.load(std::memory_order_relaxed));
    if (cycle < nextStreamCycle_)
        return;
    while (nextStreamCycle_ <= cycle)
        nextStreamCycle_ += streamEveryCycles_;
    streamFlush(now);
}

obs::MetricsSnapshot
MultiFpgaSim::metricsSnapshot() const
{
    if (telemetry_ && telemetry_->registry())
        return telemetry_->registry()->snapshot();
    return {};
}

void
MultiFpgaSim::writeMetricsJson(std::ostream &os) const
{
    FIREAXE_ASSERT(telemetry_ && telemetry_->registry(),
                   "writeMetricsJson requires telemetry with metrics "
                   "enabled");
    telemetry_->registry()->writeJson(os);
}

void
MultiFpgaSim::writeTrace(std::ostream &os) const
{
    FIREAXE_ASSERT(telemetry_ && telemetry_->tracer(),
                   "writeTrace requires telemetry with tracing "
                   "enabled");
    telemetry_->tracer()->writeChromeJson(os);
}

RunResult
MultiFpgaSim::runOnce(uint64_t target_cycles)
{
    if (execConfig_.backend == ExecBackend::Parallel)
        return runParallel(target_cycles);
    return runSequential(target_cycles);
}

RunResult
MultiFpgaSim::run(uint64_t target_cycles)
{
    if (!initialized_)
        init();

    if (telemetry_ && !wallStartValid_) {
        wallStart_ = std::chrono::steady_clock::now();
        wallStartValid_ = true;
    }

    if (nextTick_.size() != models_.size()) {
        nextTick_.assign(models_.size(), 0.0);
        lastProgress_ = 0.0;
        now_ = 0.0;
    }

    // Autosnapshot: chunk the run at snapshot boundaries. Each chunk
    // ends at a quiesce point (the event loop returned, parallel
    // workers joined, channels out of concurrent mode), which is
    // exactly a consistent cut — so snapshotting between chunks
    // cannot perturb the token schedule or any result.
    uint64_t every = execConfig_.snapshotEveryCycles;
    std::string snap_dir = execConfig_.snapshotDir;
    if (snap_dir.empty()) {
        const char *env = std::getenv("FIREAXE_SNAPSHOT_DIR");
        if (env && *env)
            snap_dir = env;
    }
    if (every == 0 || snap_dir.empty())
        return runOnce(target_cycles);

    while (true) {
        uint64_t cur = minCycleAll();
        uint64_t next = std::min(
            target_cycles, (cur / every + 1) * every);
        // Under depth-N batching, land the chunk boundary on an
        // epoch multiple so autosnapshots quiesce at batch
        // boundaries (any cut is *consistent* either way — the
        // channels checkpoint their epoch cursor — but epoch-aligned
        // cuts keep producers out of mid-frame positions).
        if (execConfig_.batchDepth > 1 && next < target_cycles) {
            uint64_t d = execConfig_.batchDepth;
            next = std::min(target_cycles,
                            (next + d - 1) / d * d);
        }
        RunResult result = runOnce(next);
        if (result.deadlocked || result.stopped)
            return result;
        std::string error;
        if (!snapshot(snap_dir, error))
            warn("autosnapshot into '", snap_dir, "' failed: ",
                 error, " (run continues)");
        if (minCycleAll() >= target_cycles ||
            minCycleAll() <= cur) // no forward progress: bail out
            return result;
    }
}

void
MultiFpgaSim::checkFailover(int p, double now)
{
    // Graceful degradation: a channel that exhausted its retry
    // budget fails over to host-managed PCIe (the transport that
    // works anywhere) and keeps the run alive, just slower. Under
    // the parallel backend each producer handles only its own
    // out-channels (p >= 0), so failedOver stays single-writer.
    for (auto &cs : channels_) {
        if (p >= 0 && cs.srcPart != p)
            continue;
        if (!cs.failedOver && cs.chan->linkFailed()) {
            auto host = transport::hostManagedPcie();
            cs.chan->failover(
                transport::tokenSerNs(host, cs.chan->widthBits()),
                transport::tokenLatencyNs(host));
            cs.failedOver = true;
            linkFailovers_.fetch_add(1, std::memory_order_relaxed);
            if (cs.chan->probe())
                cs.chan->probe()->onEvent("failover", now);
            warn("channel '", cs.chan->name(),
                 "' exhausted its retry budget; failing over to ",
                 host.name);
        }
    }
}

void
MultiFpgaSim::finishRun(RunResult &result, double now)
{
    uint64_t min_cycles = models_[0]->minTargetCycle();
    for (const auto &model : models_)
        min_cycles = std::min(min_cycles, model->minTargetCycle());
    result.targetCycles = min_cycles;
    result.hostTimeNs = now;

    for (const auto &cs : channels_) {
        // stats() returns a merged copy; keep it alive across the
        // loop rather than iterating a dangling temporary.
        CounterSet st = cs.chan->stats();
        for (const auto &kv : st.all())
            result.faultStats.add(kv.first, kv.second);
    }
    result.retransmits = result.faultStats.get("retransmits");
    result.transientStallEvents = transientStallEvents_;
    result.linkFailovers =
        linkFailovers_.load(std::memory_order_relaxed);
    result.degraded = result.linkFailovers > 0;
    if (telemetry_)
        finalizeTelemetry(result, now);
}

RunResult
MultiFpgaSim::runSequential(uint64_t target_cycles)
{
    size_t num_parts = models_.size();
    std::vector<double> &next_tick = nextTick_;
    std::vector<double> period(num_parts);
    double max_period = 0.0;
    for (size_t p = 0; p < num_parts; ++p) {
        period[p] = fpgas_[p].hostPeriodNs();
        max_period = std::max(max_period, period[p]);
    }

    unsigned max_width = std::max(plan_.feedback.maxChannelWidth, 1u);
    double deadlock_window =
        10.0 * (transport::tokenLatencyNs(link_) +
                transport::tokenSerNs(link_, max_width)) +
        1000.0 * max_period + 1000.0;

    RunResult result;
    double &now = now_;
    double &last_progress = lastProgress_;
    last_progress = now;

    auto allDone = [&]() {
        for (const auto &model : models_)
            if (model->minTargetCycle() < target_cycles)
                return false;
        return true;
    };

    while (true) {
        if (allDone())
            break;

        // Graceful shutdown: between events is a quiesce point, so
        // breaking here leaves snapshot-able state (run() returning
        // IS the run()-boundary the recovery contract names).
        if (stopRequested_.load(std::memory_order_relaxed)) {
            result.stopped = true;
            break;
        }

        // Next partition tick in host time.
        size_t p = 0;
        for (size_t i = 1; i < num_parts; ++i)
            if (next_tick[i] < next_tick[p])
                p = i;
        now = next_tick[p];

        uint64_t before = models_[p]->minTargetCycle();
        bool progress = models_[p]->tick(now);
        bool advanced = models_[p]->minTargetCycle() != before;

        // FAME-5: a multi-threaded partition consumes N host cycles
        // to simulate one target cycle across its threads.
        double step = advanced ? period[p] * plan_.fame5Threads[p]
                               : period[p];
        next_tick[p] = now + step;

        if (progress)
            last_progress = now;

        if (telemetry_) {
            telemetryTick(p, now, step, progress, advanced);
            maybeStreamFlush(now);
            const obs::TelemetryConfig &tcfg = telemetry_->config();
            if (tcfg.progressIntervalNs > 0.0 &&
                now - lastReportNs_ >= tcfg.progressIntervalNs) {
                lastReportNs_ = now;
                reportProgress(now, target_cycles);
            }
        }

        if (faults_.enabled())
            checkFailover(-1, now);

        if (now - last_progress > deadlock_window) {
            // Watchdog: before declaring deadlock, check whether any
            // channel holds a token that merely has not become
            // visible yet (transient link stall, retransmission
            // backoff in flight). A genuine LI-BDN deadlock has no
            // such token anywhere — every partition waits on a
            // channel nobody can fill.
            bool in_flight = false;
            for (const auto &cs : channels_) {
                double t = cs.chan->headReadyTime();
                if (t > now &&
                    t < std::numeric_limits<double>::infinity()) {
                    in_flight = true;
                    break;
                }
            }
            if (in_flight &&
                transientStallEvents_ < 1000000) {
                ++transientStallEvents_;
                if (telemetry_ && telemetry_->tracer())
                    telemetry_->tracer()->instant("transient-stall",
                                                  "executor", now);
                last_progress = now; // extend the watchdog window
            } else {
                result.deadlocked = true;
                if (telemetry_ && telemetry_->tracer())
                    telemetry_->tracer()->instant("deadlock",
                                                  "executor", now);
                result.diagnosis = buildDiagnosis(now);
                warn("multi-FPGA simulation deadlocked at host "
                     "time ", now, " ns (no token progress for ",
                     deadlock_window, " ns)\n",
                     result.diagnosis.summary);
                break;
            }
        }
        if (advanced && stopCondition_ && stopCondition_()) {
            result.stopped = true;
            break;
        }
    }

    finishRun(result, now);
    return result;
}

RunResult
MultiFpgaSim::runParallel(uint64_t target_cycles)
{
    size_t num_parts = models_.size();
    RunResult result;

    std::vector<double> period(num_parts);
    double max_period = 0.0;
    for (size_t p = 0; p < num_parts; ++p) {
        period[p] = fpgas_[p].hostPeriodNs();
        max_period = std::max(max_period, period[p]);
    }

    unsigned max_width = std::max(plan_.feedback.maxChannelWidth, 1u);
    double deadlock_window =
        10.0 * (transport::tokenLatencyNs(link_) +
                transport::tokenSerNs(link_, max_width)) +
        1000.0 * max_period + 1000.0;

    bool all_done = true;
    for (const auto &model : models_)
        if (model->minTargetCycle() < target_cycles)
            all_done = false;
    if (all_done) {
        // Mirror the sequential loop's immediate break: nothing
        // ticks and host time stays where the previous run left it.
        finishRun(result, now_);
        return result;
    }

    // Switch every channel into concurrent mode and describe it to
    // the engine. The lookahead must be the smallest delivery delay
    // the channel can ever exhibit; a mid-run failover switches the
    // timing to the host-managed-PCIe parameters, so take the min of
    // the current and failover bounds.
    auto host = transport::hostManagedPcie();
    std::vector<par::ChannelDesc> descs;
    descs.reserve(channels_.size());
    for (auto &cs : channels_) {
        double cur = cs.chan->serTime() + cs.chan->latency();
        // A batched channel delivers within-epoch tokens after just
        // the payload serialization delta (the frame token is always
        // later), so that is its smallest enqueue-to-visible delay.
        if (cs.chan->batchDepth() > 1)
            cur = std::min(cur, cs.chan->payloadSerNs());
        double fail =
            transport::tokenSerNs(host, cs.chan->widthBits()) +
            transport::tokenLatencyNs(host);
        double lookahead = std::min(cur, fail) * (1.0 - 1e-9);
        // Pop-log sizing: undrained pop records are bounded by the
        // tokens physically present at the producer's last drain
        // plus what it pushed since — at most the channel capacity
        // plus a small duplicate margin (see libdn/channel.hh).
        size_t log_cap = 2 * cs.chan->capacity() + 32;
        cs.chan->enableConcurrent(cs.srcPart, cs.dstPart, log_cap);
        descs.push_back(
            {cs.chan.get(), cs.srcPart, cs.dstPart, lookahead});
    }

    par::EngineConfig ecfg;
    ecfg.workers = execConfig_.workers;
    ecfg.deadlockWindowNs = deadlock_window;
    ecfg.stressSeed = execConfig_.stressSeed;
    ecfg.startTickNs = nextTick_;
    ecfg.startTimeNs = now_;

    par::EngineHooks hooks;
    hooks.onTick = [&](int p, double now) -> par::TickResult {
        uint64_t before = models_[p]->minTargetCycle();
        bool progress = models_[p]->tick(now);
        uint64_t after = models_[p]->minTargetCycle();
        bool advanced = after != before;
        double step = advanced ? period[p] * plan_.fame5Threads[p]
                               : period[p];

        if (telemetry_) {
            telemetryTick(size_t(p), now, step, progress, advanced);
            // Progress reporting and stream flushing ride on
            // partition 0's worker so lastReportNs_ and the stream
            // cursor stay single-writer.
            if (p == 0) {
                maybeStreamFlush(now);
                const obs::TelemetryConfig &tcfg =
                    telemetry_->config();
                if (tcfg.progressIntervalNs > 0.0 &&
                    now - lastReportNs_ >= tcfg.progressIntervalNs) {
                    lastReportNs_ = now;
                    reportProgress(now, target_cycles);
                }
            }
        }
        if (faults_.enabled())
            checkFailover(p, now);

        par::TickResult r;
        r.nextDeltaNs = step;
        r.progressed = progress;
        r.reachedTarget = after >= target_cycles;
        // Graceful shutdown: checked on every tick (not just target
        // advances) so a stalled partition still drains promptly.
        // The engine quiesces all workers before run() returns.
        if (stopRequested_.load(std::memory_order_relaxed))
            r.stopRequested = true;
        if (advanced && stopCondition_) {
            std::lock_guard<std::mutex> lock(stopMtx_);
            if (stopCondition_())
                r.stopRequested = true;
        }
        return r;
    };
    hooks.onTransientStall = [&](double now) {
        ++transientStallEvents_;
        if (telemetry_ && telemetry_->tracer())
            telemetry_->tracer()->instant("transient-stall",
                                          "executor", now);
    };
    hooks.onDeadlock = [&](double now) {
        result.deadlocked = true;
        if (telemetry_ && telemetry_->tracer())
            telemetry_->tracer()->instant("deadlock", "executor",
                                          now);
        result.diagnosis = buildDiagnosis(now);
        warn("multi-FPGA simulation deadlocked at host time ", now,
             " ns (no token progress for ", deadlock_window,
             " ns)\n", result.diagnosis.summary);
    };

    par::ParallelEngine engine(std::move(ecfg), std::move(hooks),
                               std::move(descs));
    par::EngineResult er = engine.run();

    for (auto &cs : channels_)
        cs.chan->disableConcurrent();

    nextTick_ = er.nextTickNs;
    now_ = er.hostTimeNs;
    lastProgress_ = now_;
    result.stopped = er.stopped;
    finishRun(result, er.hostTimeNs);
    return result;
}

// --- coordinated recovery (src/recovery) --------------------------

namespace {

/** Length-prefixed raw byte block inside a shard stream. */
void
writeBlock(std::ostream &os, const std::string &payload)
{
    os << payload.size() << "\n" << payload;
}

bool
readBlock(std::istream &is, std::string &payload)
{
    size_t n = 0;
    is >> n;
    if (!is || n > (size_t(1) << 32) || is.get() != '\n')
        return false;
    payload.resize(n);
    is.read(payload.empty() ? nullptr : &payload[0],
            std::streamsize(n));
    return bool(is);
}

} // namespace

uint64_t
MultiFpgaSim::minCycleAll() const
{
    uint64_t m = models_[0]->minTargetCycle();
    for (const auto &model : models_)
        m = std::min(m, model->minTargetCycle());
    return m;
}

uint64_t
MultiFpgaSim::designHash() const
{
    return designContentHash(plan_);
}

uint64_t
MultiFpgaSim::planHash() const
{
    return planStructureHash(plan_);
}

uint64_t
MultiFpgaSim::contentHash() const
{
    return platform::contentHash(plan_);
}

recovery::RecoveryPoint
MultiFpgaSim::acquireRecoveryPoint()
{
    if (!initialized_)
        init();
    if (nextTick_.size() != models_.size()) {
        nextTick_.assign(models_.size(), 0.0);
        lastProgress_ = 0.0;
        now_ = 0.0;
    }

    recovery::RecoveryPoint rp;
    rp.valid = true;
    rp.nowNs = now_;
    rp.lastProgressNs = lastProgress_;
    rp.nextTickNs = nextTick_;
    rp.transientStallEvents = transientStallEvents_;
    rp.linkFailovers = linkFailovers_.load(std::memory_order_relaxed);
    rp.minTargetCycle = minCycleAll();

    rp.partitions.reserve(models_.size());
    for (const auto &model : models_) {
        recovery::PartitionCut pc;
        std::ostringstream sim_os;
        model->sim().saveCheckpoint(sim_os);
        pc.simCkpt = sim_os.str();
        std::ostringstream fsm_os;
        model->saveFsm(fsm_os);
        pc.fsmCkpt = fsm_os.str();
        pc.targetCycle = model->minTargetCycle();
        rp.partitions.push_back(std::move(pc));
    }

    rp.channels.reserve(channels_.size());
    for (auto &cs : channels_) {
        // (Re)arm the replay log at every cut so restartPartition()
        // can re-feed deliveries made after the *latest* cut.
        cs.chan->setReplayLogCapacity(execConfig_.replayLogDepth);
        recovery::ChannelCut cc;
        std::ostringstream ch_os;
        cs.chan->saveCkpt(ch_os);
        cc.ckpt = ch_os.str();
        cc.enqCount = cs.chan->tokensEnqueued();
        cc.deqCount = cs.chan->tokensRetired();
        cc.lastDelivered = cs.chan->lastDeliveredSeq();
        cc.failedOver = cs.failedOver;
        rp.channels.push_back(std::move(cc));
    }
    return rp;
}

void
MultiFpgaSim::retimeForCut(ChannelState &cs, bool cut_failed_over)
{
    if (cut_failed_over == cs.failedOver)
        return;
    if (cut_failed_over) {
        // The cut had this channel on the fallback transport:
        // detach onto a private serializer (the checkpoint then
        // restores the failover timing and departure clock onto it).
        auto host = transport::hostManagedPcie();
        cs.chan->setTiming(
            transport::tokenSerNs(host, cs.chan->widthBits()),
            transport::tokenLatencyNs(host), nullptr);
    } else {
        // Rewinding to before a failover: reattach the original
        // shared link serializer so the channel contends for its
        // physical link again.
        cs.chan->setTiming(cs.baseSerNs, cs.baseLatencyNs,
                           cs.baseSerializer);
    }
}

bool
MultiFpgaSim::applyRecoveryPoint(const recovery::RecoveryPoint &rp,
                                 std::string &error)
{
    if (!rp.valid) {
        error = "recovery point is not valid";
        return false;
    }
    if (rp.partitions.size() != models_.size() ||
        rp.channels.size() != channels_.size() ||
        rp.nextTickNs.size() != models_.size()) {
        error = "recovery point shape does not match this plan";
        return false;
    }
    for (size_t p = 0; p < models_.size(); ++p) {
        std::istringstream sim_is(rp.partitions[p].simCkpt);
        if (!models_[p]->sim().tryLoadCheckpoint(sim_is, error))
            return false;
        std::istringstream fsm_is(rp.partitions[p].fsmCkpt);
        if (!models_[p]->tryLoadFsm(fsm_is, error))
            return false;
    }
    for (size_t c = 0; c < channels_.size(); ++c) {
        retimeForCut(channels_[c], rp.channels[c].failedOver);
        std::istringstream ch_is(rp.channels[c].ckpt);
        if (!channels_[c].chan->tryLoadCkpt(ch_is, error))
            return false;
        channels_[c].failedOver = rp.channels[c].failedOver;
    }
    now_ = rp.nowNs;
    lastProgress_ = rp.lastProgressNs;
    nextTick_ = rp.nextTickNs;
    transientStallEvents_ = rp.transientStallEvents;
    linkFailovers_.store(rp.linkFailovers,
                         std::memory_order_relaxed);
    error.clear();
    return true;
}

void
MultiFpgaSim::rollback(const recovery::RecoveryPoint &rp)
{
    FIREAXE_ASSERT(initialized_,
                   "rollback() before the run was initialized");
    std::string error;
    if (!applyRecoveryPoint(rp, error))
        fatal("rollback failed: ", error);
    ++restoreCount_;
    if (telemetry_ && telemetry_->tracer())
        telemetry_->tracer()->instant("rollback", "recovery", now_);
    recordRecoveryMetrics();
}

bool
MultiFpgaSim::restartPartition(int part,
                               const recovery::RecoveryPoint &rp,
                               std::string &error)
{
    FIREAXE_ASSERT(initialized_,
                   "restartPartition() before the run was "
                   "initialized");
    if (!rp.valid || rp.partitions.size() != models_.size() ||
        rp.channels.size() != channels_.size() ||
        rp.nextTickNs.size() != models_.size()) {
        error = "recovery point shape does not match this plan";
        return false;
    }
    if (part < 0 || size_t(part) >= models_.size()) {
        error = "no such partition";
        return false;
    }

    // Pre-validate every inbound replay before mutating anything, so
    // a stale cut (replay log outrun) leaves the world untouched.
    for (size_t c = 0; c < channels_.size(); ++c) {
        const ChannelState &cs = channels_[c];
        if (cs.dstPart != part)
            continue;
        if (!cs.chan->canReplayFrom(rp.channels[c].deqCount)) {
            error = "channel '" + cs.chan->name() +
                    "': replay log no longer covers the recovery "
                    "point (raise ExecConfig::replayLogDepth or "
                    "restore the whole run)";
            return false;
        }
    }

    uint64_t crash_cycle = models_[part]->minTargetCycle();
    std::istringstream sim_is(rp.partitions[part].simCkpt);
    if (!models_[part]->sim().tryLoadCheckpoint(sim_is, error))
        return false;
    std::istringstream fsm_is(rp.partitions[part].fsmCkpt);
    if (!models_[part]->tryLoadFsm(fsm_is, error))
        return false;

    for (size_t c = 0; c < channels_.size(); ++c) {
        ChannelState &cs = channels_[c];
        if (cs.dstPart == part) {
            // Inbound: re-present everything delivered since the
            // cut, ahead of the live queue. Producer-side state
            // (sequence numbers, retransmit buffer, fault RNG,
            // serializer clock) stays where the peers left it.
            if (!cs.chan->replayFromLog(rp.channels[c].deqCount,
                                        rp.channels[c].lastDelivered,
                                        error))
                return false; // unreachable after the pre-check
        } else if (cs.srcPart == part) {
            // Outbound: the channel already reflects every token the
            // partition transmitted before the crash; swallow their
            // re-production so re-execution converges exactly.
            cs.chan->suppressProducedTokens(
                cs.chan->tokensEnqueued() - rp.channels[c].enqCount);
        }
    }

    // Observations below the crash cycle were already made.
    models_[part]->suppressMonitorUntil(crash_cycle);
    // The partition re-ticks from its cut-time schedule; peers sit
    // at future ticks and stall on token dependencies until the
    // restarted partition catches back up.
    nextTick_[part] = rp.nextTickNs[part];

    ++partitionRestarts_;
    if (telemetry_ && telemetry_->tracer())
        telemetry_->tracer()->instant("partition-restart",
                                      "recovery", now_);
    recordRecoveryMetrics();
    error.clear();
    return true;
}

bool
MultiFpgaSim::snapshot(const std::string &dir, std::string &error)
{
    auto wall0 = std::chrono::steady_clock::now();
    recovery::RecoveryPoint rp = acquireRecoveryPoint();

    recovery::Manifest manifest;
    manifest.designHash = designHash();
    manifest.planHash = planHash();
    manifest.engine = rtlsim::toString(execConfig_.evalEngine);
    manifest.faultSeed =
        faults_.enabled() ? faults_.config().seed : 0;
    manifest.targetCycle = rp.minTargetCycle;
    manifest.numPartitions = models_.size();
    manifest.numChannels = channels_.size();

    std::vector<std::string> shards;
    shards.reserve(models_.size() + 1);
    for (const auto &pc : rp.partitions) {
        std::ostringstream os;
        os << "fireaxe-part 1\n";
        writeBlock(os, pc.simCkpt);
        writeBlock(os, pc.fsmCkpt);
        shards.push_back(os.str());
    }
    {
        std::ostringstream os;
        os << "fireaxe-exec 1\n";
        os << doubleBits(rp.nowNs) << " "
           << doubleBits(rp.lastProgressNs) << " "
           << rp.transientStallEvents << " " << rp.linkFailovers
           << "\n";
        os << rp.nextTickNs.size();
        for (double t : rp.nextTickNs)
            os << " " << doubleBits(t);
        os << "\n";
        os << rp.channels.size() << "\n";
        for (const auto &cc : rp.channels) {
            os << (cc.failedOver ? 1 : 0) << " " << cc.enqCount
               << " " << cc.deqCount << " " << cc.lastDelivered
               << "\n";
            writeBlock(os, cc.ckpt);
        }
        shards.push_back(os.str());
    }

    recovery::SnapshotStore store(dir);
    uint64_t bytes = 0;
    if (!store.commit(manifest, shards, bytes, error))
        return false;

    double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - wall0)
            .count();
    ++snapshotCount_;
    lastSnapshotBytes_ = bytes;
    lastSnapshotWallMs_ = wall_ms;
    totalSnapshotWallMs_ += wall_ms;
    if (telemetry_ && telemetry_->tracer())
        telemetry_->tracer()->instant("snapshot", "recovery", now_);
    recordRecoveryMetrics();
    error.clear();
    return true;
}

bool
MultiFpgaSim::restore(const std::string &dir, std::string &error)
{
    if (!initialized_)
        init();
    if (nextTick_.size() != models_.size()) {
        nextTick_.assign(models_.size(), 0.0);
        lastProgress_ = 0.0;
        now_ = 0.0;
    }

    recovery::SnapshotStore store(dir);
    recovery::Manifest manifest;
    if (!store.loadManifest(manifest, error))
        return false;
    if (manifest.designHash != designHash()) {
        error = "snapshot in '" + dir +
                "' was taken of a different design";
        return false;
    }
    if (manifest.planHash != planHash()) {
        error = "snapshot in '" + dir +
                "' was taken under a different partition plan";
        return false;
    }
    if (manifest.numPartitions != models_.size() ||
        manifest.numChannels != channels_.size()) {
        error = "snapshot in '" + dir +
                "' does not match this plan's shape";
        return false;
    }
    // manifest.engine is informational only: both evaluation engines
    // are bit-exact, so cross-engine restore is legal by design.

    // Pull (and CRC-verify) every shard before touching any state.
    std::vector<std::string> shards(manifest.shards.size());
    for (size_t i = 0; i < shards.size(); ++i)
        if (!store.readShard(manifest, i, shards[i], error))
            return false;

    recovery::RecoveryPoint rp;
    rp.valid = true;
    rp.partitions.resize(models_.size());
    for (size_t p = 0; p < models_.size(); ++p) {
        std::istringstream is(shards[p]);
        std::string magic;
        unsigned version = 0;
        is >> magic >> version;
        if (magic != "fireaxe-part" || version != 1 ||
            !readBlock(is, rp.partitions[p].simCkpt) ||
            !readBlock(is, rp.partitions[p].fsmCkpt)) {
            error = "malformed partition shard '" +
                    manifest.shards[p].file + "'";
            return false;
        }
    }
    {
        std::istringstream is(shards.back());
        std::string magic;
        unsigned version = 0;
        is >> magic >> version;
        uint64_t now_b = 0, progress_b = 0;
        size_t nticks = 0;
        is >> now_b >> progress_b >> rp.transientStallEvents >>
            rp.linkFailovers >> nticks;
        if (magic != "fireaxe-exec" || version != 1 || !is ||
            nticks != models_.size()) {
            error = "malformed executor shard";
            return false;
        }
        rp.nowNs = bitsToDouble(now_b);
        rp.lastProgressNs = bitsToDouble(progress_b);
        rp.nextTickNs.resize(nticks);
        for (auto &t : rp.nextTickNs) {
            uint64_t b = 0;
            is >> b;
            t = bitsToDouble(b);
        }
        size_t nchans = 0;
        is >> nchans;
        if (!is || nchans != channels_.size()) {
            error = "malformed executor shard";
            return false;
        }
        rp.channels.resize(nchans);
        for (auto &cc : rp.channels) {
            unsigned failed_over = 0;
            is >> failed_over >> cc.enqCount >> cc.deqCount >>
                cc.lastDelivered;
            cc.failedOver = failed_over != 0;
            if (!is || is.get() != '\n' ||
                !readBlock(is, cc.ckpt)) {
                error = "malformed executor shard";
                return false;
            }
        }
    }

    if (!applyRecoveryPoint(rp, error))
        return false;
    ++restoreCount_;
    if (telemetry_ && telemetry_->tracer())
        telemetry_->tracer()->instant("restore", "recovery", now_);
    recordRecoveryMetrics();
    error.clear();
    return true;
}

void
MultiFpgaSim::recordRecoveryMetrics()
{
    if (!telemetry_ || !telemetry_->registry())
        return;
    obs::MetricsRegistry *reg = telemetry_->registry();
    reg->gauge("recovery.snapshots").set(double(snapshotCount_));
    reg->gauge("recovery.last_snapshot_bytes")
        .set(double(lastSnapshotBytes_));
    reg->gauge("recovery.last_snapshot_wall_ms")
        .set(lastSnapshotWallMs_);
    reg->gauge("recovery.total_snapshot_wall_ms")
        .set(totalSnapshotWallMs_);
    reg->gauge("recovery.restores").set(double(restoreCount_));
    reg->gauge("recovery.partition_restarts")
        .set(double(partitionRestarts_));
}

std::ostream &
operator<<(std::ostream &os, const ChannelDiagnosis &cd)
{
    os << "channel '" << cd.name << "' (partition " << cd.srcPart
       << " -> " << cd.dstPart << "): occupancy " << cd.occupancy
       << "/" << cd.capacity << ", " << cd.tokensEnqueued
       << " enqueued, " << cd.tokensRetired << " retired";
    if (cd.headVisible)
        os << ", head visible";
    if (cd.starved)
        os << ", starved";
    return os;
}

std::ostream &
operator<<(std::ostream &os, const PartitionDiagnosis &pd)
{
    os << "partition '" << pd.name << "' at target cycle "
       << pd.targetCycle << " (" << pd.fires << " fires, "
       << pd.advances << " advances)";
    if (!pd.waitingInputs.empty()) {
        os << ", waiting on:";
        for (const std::string &ch : pd.waitingInputs)
            os << " " << ch;
    }
    if (!pd.unfiredOutputs.empty()) {
        os << ", unfired:";
        for (const std::string &ch : pd.unfiredOutputs)
            os << " " << ch;
    }
    return os;
}

std::ostream &
operator<<(std::ostream &os, const DeadlockDiagnosis &diag)
{
    os << "deadlock diagnosis at host time " << diag.hostTimeNs
       << " ns:\n";
    for (const auto &pd : diag.partitions)
        os << "  " << pd << "\n";
    for (const auto &cd : diag.channels) {
        if (!cd.starved)
            continue;
        os << "  stuck " << cd << "\n";
    }
    for (const auto &finding : diag.staticFindings)
        os << "  " << finding << "\n";
    return os;
}

DeadlockDiagnosis
MultiFpgaSim::buildDiagnosis(double now)
{
    DeadlockDiagnosis diag;
    diag.valid = true;
    diag.hostTimeNs = now;

    for (const auto &cs : channels_) {
        ChannelDiagnosis cd;
        cd.name = cs.chan->name();
        cd.srcPart = cs.srcPart;
        cd.dstPart = cs.dstPart;
        cd.occupancy = cs.chan->size();
        cd.capacity = cs.chan->capacity();
        cd.headVisible = cs.chan->headReady(now);
        cd.tokensEnqueued = cs.chan->tokensEnqueued();
        cd.tokensRetired = cs.chan->tokensRetired();
        diag.channels.push_back(std::move(cd));
    }

    for (size_t p = 0; p < models_.size(); ++p) {
        PartitionDiagnosis pd;
        pd.name = plan_.partitionNames[p];
        pd.targetCycle = models_[p]->minTargetCycle();
        pd.fires = models_[p]->totalFires();
        pd.advances = models_[p]->totalAdvances();
        libdn::LIBDNModel::FsmState fsm =
            models_[p]->fsmState(now);
        pd.waitingInputs = std::move(fsm.waitingInputs);
        pd.unfiredOutputs = std::move(fsm.unfiredOutputs);
        diag.partitions.push_back(std::move(pd));
    }

    // A channel is "stuck" when some partition's fireFSM waits on it
    // and no token is visible at its head.
    std::set<std::string> stuck;
    for (const auto &pd : diag.partitions)
        for (const std::string &ch : pd.waitingInputs)
            stuck.insert(ch);
    for (auto &cd : diag.channels) {
        if (stuck.count(cd.name) && !cd.headVisible) {
            cd.starved = true;
            diag.stuckChannels.push_back(cd.name);
        }
    }

    // Cross-reference the static verifier: if the plan carries a
    // statically provable defect, say which check would have refused
    // it before the run (it did not only when the policy was not
    // Enforce). Recomputes lazily when verification was off.
    runPreflight();
    for (const auto &d : preflight_.diagnostics()) {
        if (d.severity != verify::Severity::Error)
            continue;
        diag.staticFindings.push_back("static check " + d.code +
                                      " would have caught this: " +
                                      d.render());
    }

    std::ostringstream os;
    os << diag;
    diag.summary = os.str();
    return diag;
}

libdn::LIBDNModel &
MultiFpgaSim::model(int part)
{
    FIREAXE_ASSERT(initialized_, "init() before model()");
    return *models_.at(part);
}

bool
MultiFpgaSim::checkFit(bool fatal_on_overflow) const
{
    bool ok = true;
    for (size_t p = 0; p < plan_.partitions.size(); ++p) {
        passes::ResourceEstimate est = plan_.feedback.resources[p];
        unsigned threads = plan_.fame5Threads[p];
        if (threads > 1) {
            // Estimate one duplicate as the partition divided by the
            // thread count (duplicates dominate a FAME-5 partition).
            passes::ResourceEstimate single = est;
            single.luts /= threads;
            single.flipFlops /= threads;
            single.brams /= threads;
            est = fame5Estimate(est, single, threads);
        }
        if (!fits(fpgas_[p], est)) {
            ok = false;
            if (fatal_on_overflow) {
                fatal("partition '", plan_.partitionNames[p],
                      "' does not fit ", fpgas_[p].board, ": needs ",
                      est.luts, " LUTs / ", est.flipFlops, " FFs / ",
                      est.brams, " BRAMs");
            }
            warn("partition '", plan_.partitionNames[p],
                 "' overflows ", fpgas_[p].board, " (",
                 est.luts, " LUTs of ", fpgas_[p].lutCapacity, ")");
        }
    }
    return ok;
}

uint64_t
runMonolithic(const firrtl::Circuit &circuit,
              const libdn::Driver &driver,
              const libdn::Monitor &monitor, uint64_t target_cycles,
              const std::function<bool()> &stop)
{
    firrtl::Circuit flat = passes::flattenAll(circuit);
    rtlsim::Simulator sim(flat);
    uint64_t cycle = 0;
    for (; cycle < target_cycles; ++cycle) {
        if (driver)
            driver(sim, 0, cycle);
        sim.evalComb();
        if (monitor)
            monitor(sim, 0, cycle);
        sim.step();
        if (stop && stop())
            return cycle + 1;
    }
    return cycle;
}

} // namespace fireaxe::platform
