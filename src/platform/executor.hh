/**
 * @file
 * The multi-FPGA co-simulation executor.
 *
 * Takes a FireRipper PartitionPlan, instantiates one LI-BDN model per
 * partition on its own simulated host FPGA (with its own bitstream
 * clock), wires the planned channels through a transport's
 * serialization/latency model, and executes everything in host time
 * with a discrete-event loop.
 *
 * Two things fall out of the same execution:
 *  - functional results — the partitions exchange real tokens, so
 *    target behaviour (and target cycle counts) can be compared
 *    against the monolithic rtlsim::Simulator run (Table II);
 *  - simulation performance — the achieved target frequency is
 *    target-cycles / elapsed-host-time, which reproduces the sweeps
 *    of Figs. 11-14 from mechanics rather than a formula.
 *
 * FAME-5 partitions (fame5Threads > 1) simulate all duplicate
 * instances functionally, while the executor charges N host cycles
 * per target cycle and the shared channel serializer charges the
 * linearly-growing token payload — the cost model of Section VI-B.
 */

#ifndef FIREAXE_PLATFORM_EXECUTOR_HH
#define FIREAXE_PLATFORM_EXECUTOR_HH

#include <atomic>
#include <chrono>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <vector>

#include "base/stats.hh"
#include "libdn/channel.hh"
#include "libdn/model.hh"
#include "libdn/reliable.hh"
#include "obs/telemetry.hh"
#include "platform/fpga.hh"
#include "recovery/recovery.hh"
#include "ripper/partition.hh"
#include "rtlsim/vcd.hh"
#include "transport/fault.hh"
#include "transport/link.hh"
#include "verify/diag.hh"

namespace fireaxe::platform {

/** FNV-1a over the printed text of every partition circuit in the
 *  plan (what a design *is*, independent of how it was built). */
uint64_t designContentHash(const ripper::PartitionPlan &plan);

/** FNV-1a over the plan structure: partition names, FAME-5 threads,
 *  channels with routes/widths/capacities, and the mode. */
uint64_t planStructureHash(const ripper::PartitionPlan &plan);

/**
 * The content hash of a partitioned design: design text folded with
 * plan structure. This is the single identity every subsystem keys
 * on — snapshot manifests validate against its two halves, the
 * service artifact cache (src/svc) keys compiled artifacts by it,
 * and bench/CLI JSON rows and telemetry stream headers record it as
 * `artifact_hash` — so a cache hit, a stream, and a bench row for
 * the same submitted design all carry the same 64-bit name.
 */
uint64_t contentHash(const ripper::PartitionPlan &plan);

/** Pre-flight static verification policy (MultiFpgaSim::init). */
enum class VerifyPolicy
{
    /** fatal() with the rendered report on any Error finding
     *  (default): a statically rejectable plan never runs. */
    Enforce,
    /** Print the findings and run anyway (--no-verify semantics with
     *  a paper trail). */
    WarnOnly,
    /** Skip the pre-flight checks entirely. */
    Off,
};

/** One channel's state at the moment of a deadlock diagnosis. */
struct ChannelDiagnosis
{
    std::string name;
    int srcPart = 0;
    int dstPart = 0;
    size_t occupancy = 0;
    size_t capacity = 0;
    /** A token is visible at the head right now. */
    bool headVisible = false;
    uint64_t tokensEnqueued = 0;
    uint64_t tokensRetired = 0;
    /** Empty channel whose consumer is blocked on it. */
    bool starved = false;
};

/** One partition's LI-BDN FSM state at the moment of a diagnosis. */
struct PartitionDiagnosis
{
    std::string name;
    uint64_t targetCycle = 0;
    uint64_t fires = 0;    ///< output-channel FSM firings
    uint64_t advances = 0; ///< fireFSM target-cycle advances
    std::vector<std::string> waitingInputs;
    std::vector<std::string> unfiredOutputs;
};

/**
 * Structured explanation of a genuine LI-BDN deadlock, emitted when
 * the executor's watchdog rules out transient link stalls and
 * in-flight retransmissions.
 */
struct DeadlockDiagnosis
{
    bool valid = false;
    double hostTimeNs = 0.0;
    std::vector<ChannelDiagnosis> channels;
    std::vector<PartitionDiagnosis> partitions;
    /** Names of the starved channels blocking progress. */
    std::vector<std::string> stuckChannels;
    /**
     * Cross-reference to the static verifier: each entry cites an
     * Error-severity diagnostic the pre-flight checks raised (or
     * would have raised, when verification was off) for this plan,
     * e.g. "static check LBDN003 would have caught this: ...".
     * Empty when the deadlock has no statically visible cause.
     */
    std::vector<std::string> staticFindings;
    /** Human-readable one-stop summary. */
    std::string summary;
};

/** One-line rendering: name, route, occupancy, token counts,
 *  visibility/starvation flags. */
std::ostream &operator<<(std::ostream &os, const ChannelDiagnosis &cd);
/** One-line rendering: name, target cycle, fire/advance counts,
 *  waited-on inputs and unfired outputs. */
std::ostream &operator<<(std::ostream &os,
                         const PartitionDiagnosis &pd);
/** Multi-line rendering of the full diagnosis (the same text stored
 *  in DeadlockDiagnosis::summary). */
std::ostream &operator<<(std::ostream &os,
                         const DeadlockDiagnosis &diag);

/** Outcome of a co-simulation run. */
struct RunResult
{
    uint64_t targetCycles = 0;
    double hostTimeNs = 0.0;
    bool deadlocked = false;
    bool stopped = false; ///< stop condition fired before the limit

    /** Aggregated reliability counters across all channels (see
     *  libdn::ReliableTokenChannel::stats for the key set). */
    CounterSet faultStats;
    /** Total retransmissions (timeout- plus NAK-driven). */
    uint64_t retransmits = 0;
    /** Watchdog wakeups excused as transient link stalls or
     *  in-flight retransmissions (not deadlocks). */
    uint64_t transientStallEvents = 0;
    /** Channels failed over to host-managed PCIe mid-run. */
    unsigned linkFailovers = 0;
    /** At least one link is running degraded (failed over). */
    bool degraded = false;
    /** Populated when deadlocked. */
    DeadlockDiagnosis diagnosis;

    /**
     * Frozen metrics at the end of the run: per-channel token
     * counts, enqueue-to-retire latency percentiles and reliability
     * events, per-partition FMR and fireFSM counters, and sim.*
     * aggregates. Empty unless telemetry with metrics was enabled
     * via MultiFpgaSim::setTelemetry().
     */
    obs::MetricsSnapshot metrics;

    /** Achieved target simulation rate in MHz. */
    double
    simRateMhz() const
    {
        return hostTimeNs > 0.0 ? targetCycles / hostTimeNs * 1000.0
                                : 0.0;
    }
};

/** Process-wide default token batch depth: FIREAXE_BATCH_DEPTH when
 *  set to a positive integer, else 1 (unbatched). */
unsigned defaultBatchDepth();

/** Process-wide default for pipelined epochs: true unless
 *  FIREAXE_PIPELINED_EPOCHS is set to 0/false/off. */
bool defaultPipelinedEpochs();

/** How MultiFpgaSim::run() executes the partitions. */
enum class ExecBackend
{
    /** One host thread, global discrete-event loop (the reference
     *  schedule). */
    Sequential,
    /** One worker thread per partition (pool capped at the hardware
     *  concurrency) over the conservative parallel engine in
     *  src/par. Observable results — token streams, monitor
     *  callbacks, target cycle counts, RunResult::hostTimeNs — are
     *  bit-identical to the sequential backend. */
    Parallel,
};

/** Execution backend selection for MultiFpgaSim::run(). */
struct ExecConfig
{
    ExecBackend backend = ExecBackend::Sequential;
    /** Parallel worker threads; 0 = min(partitions,
     *  hardware_concurrency). */
    unsigned workers = 0;
    /**
     * Evaluation engine for every partition's target simulator (see
     * rtlsim/engine.hh): Interpret re-evaluates the full design each
     * cycle, Compiled runs the bytecode engine with activity gating.
     * Bit-exact either way. Defaults to the process-wide
     * FIREAXE_EVAL choice; fixed at init() time (unlike `backend`,
     * which may change between run() calls).
     */
    rtlsim::EvalEngine evalEngine = rtlsim::defaultEvalEngine();
    /**
     * Nonzero (parallel backend only): seed random wall-clock
     * scheduling jitter into every worker, to shake out ordering
     * assumptions in stress tests. Results must stay bit-identical
     * for any value.
     */
    uint64_t stressSeed = 0;
    /**
     * Nonzero: run() autosnapshots the whole simulation into
     * `snapshotDir` every N target cycles (crash-consistent commit;
     * see src/recovery). run() internally chunks the event loop at
     * the snapshot boundaries — the boundaries are quiesce points,
     * so the token schedule (and every result) is unchanged.
     */
    uint64_t snapshotEveryCycles = 0;
    /** Autosnapshot directory; empty falls back to the
     *  FIREAXE_SNAPSHOT_DIR environment variable. */
    std::string snapshotDir;
    /**
     * Per-channel delivered-token replay log depth backing
     * restartPartition() (entries retained past each recovery
     * point). 0 disables the logs (and with them single-partition
     * restart); whole-run rollback/restore is unaffected.
     */
    size_t replayLogDepth = 1024;
    /**
     * Depth-N token batching (latency hiding): a partition may run
     * up to N target cycles ahead across a fully registered cut and
     * ship the N tokens as one framed link transaction (one
     * seq+CRC+frame overhead per batch). init() runs the static
     * legality pass (analyze::annotateBatchDepths) and clamps the
     * requested depth per channel — an illegal boundary (PLAN011)
     * silently runs at depth 1, so results stay bit-exact
     * regardless. 1 (default) is the classic per-cycle protocol and
     * is bit-identical to pre-batching builds *including host time*.
     * Defaults to the FIREAXE_BATCH_DEPTH environment variable via
     * defaultBatchDepth().
     */
    unsigned batchDepth = defaultBatchDepth();
    /**
     * Pipelined epochs (default on): overlap epoch k's frame flight
     * with epoch k+1's compute. When off, the producer stalls at
     * each epoch boundary until the previous frame has been
     * delivered (stop-and-wait); token values and order are
     * identical either way — only modeled host time differs.
     * FIREAXE_PIPELINED_EPOCHS=0 flips the default off.
     */
    bool pipelinedEpochs = defaultPipelinedEpochs();

    static ExecConfig
    parallel(unsigned workers = 0)
    {
        ExecConfig cfg;
        cfg.backend = ExecBackend::Parallel;
        cfg.workers = workers;
        return cfg;
    }
};

/**
 * Executes a partitioned simulation.
 */
class MultiFpgaSim
{
  public:
    /**
     * @param plan  FireRipper output (owned by caller; circuits are
     *              copied into the models).
     * @param fpgas one spec per partition (plan.partitions.size()).
     * @param link  transport used for every inter-FPGA channel.
     */
    MultiFpgaSim(const ripper::PartitionPlan &plan,
                 std::vector<FpgaSpec> fpgas,
                 const transport::LinkParams &link);

    /**
     * Inject faults into every inter-FPGA channel (deterministic per
     * seed + channel name); must be called before init(). The
     * reliable-delivery layer recovers from every injected fault, so
     * results stay bit-exact — only the simulation rate degrades.
     */
    void setFaultModel(const transport::FaultConfig &cfg);

    /**
     * Enable telemetry: a metrics registry (per-channel token
     * latency and reliability counters, per-partition FMR and
     * sim-rate sampling), a trace-event ring buffer (fireFSM phases,
     * reliability/fault instants; Chrome trace_event export), and an
     * optional periodic progress reporter. Must be called before
     * init(). Telemetry is observe-only: the simulated token stream
     * and all results are bit-identical with and without it.
     */
    void setTelemetry(const obs::TelemetryConfig &cfg);

    /** The telemetry bundle; null unless setTelemetry was called. */
    obs::Telemetry *telemetry() { return telemetry_.get(); }

    /** Snapshot of the live metrics registry (empty snapshot when
     *  metrics are not enabled). */
    obs::MetricsSnapshot metricsSnapshot() const;

    /** Export the metrics registry as JSON; requires telemetry with
     *  metrics enabled. */
    void writeMetricsJson(std::ostream &os) const;

    /** Export the trace ring buffer as Chrome trace_event JSON
     *  (about://tracing / Perfetto); requires telemetry with tracing
     *  enabled. */
    void writeTrace(std::ostream &os) const;

    /** Attach a driver for a partition's external input ports; must
     *  be called before init(). */
    void setDriver(int part, libdn::Driver driver);
    /** Attach an observer called after each target cycle of a
     *  partition; must be called before init(). */
    void setMonitor(int part, libdn::Monitor monitor);

    /**
     * Stream a VCD waveform of one partition's signals (sampled at
     * every completed target cycle of that partition). Must be
     * called before init(); the stream must outlive the simulation.
     * Composes with setMonitor().
     */
    void attachVcd(int part, std::ostream &os);

    /**
     * Select the pre-flight static verification policy (default
     * Enforce); must be called before init(). Under Enforce a plan
     * with any Error-severity finding (see src/verify) is refused
     * with the rendered report.
     */
    void setVerifyPolicy(VerifyPolicy policy);

    /** The pre-flight report (empty until init() under a non-Off
     *  policy, or until a deadlock diagnosis recomputes it). */
    const verify::Report &preflightReport() const
    {
        return preflight_;
    }

    /**
     * Hand each partition a precompiled evaluation program (index =
     * partition; null entries compile fresh). Only meaningful with
     * ExecConfig::evalEngine == Compiled; must be called before
     * init(). Programs are validated against the constructed
     * simulators — a mismatch degrades to a fresh compile, never to
     * wrong results. Harvest programs after init() with
     * compiledProgram().
     */
    void setPrecompiledPrograms(
        std::vector<std::shared_ptr<const rtlsim::CompiledProgram>>
            programs);

    /** Partition @p part's shared compiled program (null under the
     *  interpreter); valid after init(). */
    std::shared_ptr<const rtlsim::CompiledProgram>
    compiledProgram(int part);

    /** Build models and channels. Implicitly called by run() if
     *  needed. */
    void init();

    /** Stop condition checked after every event batch. Under the
     *  parallel backend the callback is serialized (called under a
     *  mutex) but may run on any worker thread. */
    void setStopCondition(std::function<bool()> cond)
    {
        stopCondition_ = std::move(cond);
    }

    /** Select the execution backend for subsequent run() calls; may
     *  be changed between runs (the two backends resume each other's
     *  state bit-exactly up to the documented hostTimeNs caveat in
     *  DESIGN.md). `batchDepth` and `evalEngine` are exceptions:
     *  both are fixed at init() time. Requesting a batch depth > 1
     *  immediately runs the static legality pass over the plan copy
     *  (so planHash() reflects the per-channel clamps even before
     *  init()). */
    void setExecConfig(const ExecConfig &cfg);
    const ExecConfig &execConfig() const { return execConfig_; }

    /**
     * Run until every partition has simulated @p target_cycles
     * target cycles (or the stop condition fires / the simulation
     * deadlocks).
     */
    RunResult run(uint64_t target_cycles);

    /**
     * Graceful shutdown: ask an in-flight run() to quiesce at its
     * next boundary and return with RunResult::stopped. Thread-safe
     * and signal-safe (one atomic store), so a daemon's SIGTERM
     * handler can drain jobs mid-run. When run() returns, the
     * simulation sits at a valid quiesce point — snapshot() /
     * acquireRecoveryPoint() produce a resumable cut, exactly as
     * between ordinary run() calls. The request is sticky (a run()
     * issued after requestStop() stops immediately, so a drain never
     * races a job that was about to start); clearStopRequest()
     * re-arms the instance for further execution.
     */
    void requestStop()
    {
        stopRequested_.store(true, std::memory_order_relaxed);
    }

    /** A requestStop() is pending (not yet cleared). */
    bool stopRequested() const
    {
        return stopRequested_.load(std::memory_order_relaxed);
    }

    /** Re-arm after a drain so run() makes progress again. */
    void clearStopRequest()
    {
        stopRequested_.store(false, std::memory_order_relaxed);
    }

    /** Access a partition model (valid after init()). */
    libdn::LIBDNModel &model(int part);

    // --- coordinated recovery (src/recovery) ----------------------
    //
    // All of these are only legal at a quiesce point: between run()
    // calls (or before the first), when no worker threads exist and
    // every channel is out of concurrent mode. run()'s autosnapshot
    // chunking calls snapshot() at exactly such points.

    /**
     * Capture a consistent cut of the whole run: every partition's
     * simulator + LI-BDN FSM state, every channel's in-flight /
     * retransmit / fault-RNG state, and the executor's host-time
     * state. Also (re)arms the per-channel replay logs
     * (ExecConfig::replayLogDepth) so restartPartition() can replay
     * deliveries made after this cut.
     */
    recovery::RecoveryPoint acquireRecoveryPoint();

    /**
     * Rewind the whole run to a cut captured by
     * acquireRecoveryPoint() on this instance. The continuation is
     * bit-identical to a run that never went past the cut. This is
     * the rollback seam a future optimistic (Time Warp) scheduler
     * builds on; points are plain values — hold as many as you like,
     * discard in O(1).
     */
    void rollback(const recovery::RecoveryPoint &point);

    /**
     * Restart a single condemned partition from a cut while its
     * peers keep their state: partition @p part's simulator and FSM
     * rewind to the cut, its inbound channels re-present the
     * deliveries made since from their replay logs, its outbound
     * channels swallow the re-produced tokens (the channels already
     * reflect them), and monitor callbacks stay suppressed until the
     * partition passes its pre-crash cycle — peers naturally stall
     * on token dependencies until it catches up. Fails (false,
     * diagnostic in @p error, nothing changed) when a replay log no
     * longer covers the cut.
     */
    bool restartPartition(int part,
                          const recovery::RecoveryPoint &point,
                          std::string &error);

    /**
     * Durably persist a recovery point into @p dir with the
     * crash-consistent commit protocol of recovery::SnapshotStore
     * (per-partition CRC-framed shards, content-addressed manifest,
     * atomic rename commit — a crash mid-snapshot never damages the
     * previous one).
     */
    bool snapshot(const std::string &dir, std::string &error);

    /**
     * Restore the committed snapshot in @p dir (after validating its
     * manifest against this plan's design and structure hashes).
     * Cross-engine and cross-backend restores are legal: both eval
     * engines and both backends are bit-exact. Resuming a restored
     * run reproduces the uninterrupted run's results exactly —
     * including under active fault injection, whose RNG substreams
     * are part of the cut.
     */
    bool restore(const std::string &dir, std::string &error);

    /** Snapshots committed by this instance (run() autosnapshots
     *  plus explicit snapshot() calls). */
    uint64_t snapshotCount() const { return snapshotCount_; }
    /** Bytes of the most recent committed snapshot. */
    uint64_t lastSnapshotBytes() const { return lastSnapshotBytes_; }
    /** Wall-clock pause of the most recent snapshot (ms). */
    double lastSnapshotWallMs() const { return lastSnapshotWallMs_; }
    /** Cumulative wall-clock time spent snapshotting (ms). */
    double totalSnapshotWallMs() const { return totalSnapshotWallMs_; }
    /** Whole-run restores applied (restore() + rollback()). */
    uint64_t restoreCount() const { return restoreCount_; }
    /** Single-partition restarts applied. */
    uint64_t partitionRestarts() const { return partitionRestarts_; }

    /**
     * Verify each partition fits its FPGA (FAME-5-adjusted);
     * fatal() on overflow when @p fatal_on_overflow, otherwise
     * warn(). Returns true when everything fits.
     */
    bool checkFit(bool fatal_on_overflow = false) const;

    const ripper::PartitionPlan &plan() const { return plan_; }

    /** FNV-1a over the plan structure (names, channels, capacities,
     *  mode, FAME-5 threads); the run-identity hash recorded in
     *  telemetry streams and bench/CLI JSON rows. */
    uint64_t planHash() const;

    /** platform::contentHash(plan()): the design+plan content hash
     *  (`artifact_hash` in JSON rows and stream headers; the service
     *  cache key). */
    uint64_t contentHash() const;

  private:
    struct ChannelState
    {
        std::shared_ptr<libdn::ReliableTokenChannel> chan;
        int srcPart = 0;
        int dstPart = 0;
        bool failedOver = false;
        /** The original shared per-link serializer and timing, kept
         *  so a rollback/restore to a pre-failover cut can reattach
         *  the channel to its physical link. */
        std::shared_ptr<libdn::LinkSerializer> baseSerializer;
        double baseSerNs = 0.0;
        double baseLatencyNs = 0.0;
    };

    /** Per-partition telemetry state (only used when telemetry_).
     *  All fields are written by the partition's owning thread (the
     *  main thread sequentially, the partition's worker in
     *  parallel); the two atomics are additionally *read*
     *  cross-thread by sim-rate sampling and progress reporting. */
    struct PartTelemetry
    {
        /** Host cycles charged to this partition so far. */
        std::atomic<uint64_t> hostCycles{0};
        /** Target cycles completed, republished every telemetry
         *  tick so other threads can aggregate without touching the
         *  partition's model. */
        std::atomic<uint64_t> targetCycles{0};
        /** Host time a wait-for-tokens span opened; < 0 = none. */
        double waitStartNs = -1.0;
        /** Total host time spent waiting for tokens (ns). */
        double waitNs = 0.0;
        // FMR sampling window state (per partition, so parallel
        // workers sample independently at their own host times).
        double lastFmrSampleNs = 0.0;
        uint64_t lastSampleHostCycles = 0;
        uint64_t lastSampleTargetCycles = 0;
        // Cached registry handles (null when metrics disabled).
        obs::Gauge *fmrGauge = nullptr;
        obs::Histogram *fmrHist = nullptr;
        obs::Counter *waitTicks = nullptr;
    };

    /** Run the static verifier over the plan once, caching the
     *  report (used by init's gate and the deadlock diagnosis). */
    void runPreflight();
    /** Run analyze::annotateBatchDepths over the plan copy exactly
     *  once (no-op when already annotated). */
    void ensureBatchAnnotation();
    DeadlockDiagnosis buildDiagnosis(double now);
    /** Wire probes / handles; called from init() when telemetry_. */
    void setupTelemetry();
    /** Per-event-loop-iteration telemetry hook. */
    void telemetryTick(size_t p, double now, double step,
                       bool progress, bool advanced);
    /** Periodic FMR sample for partition @p p plus the sim-rate
     *  gauge; runs on the partition's owning thread. */
    void sampleFmr(size_t p, double now);
    /** One progress-report line to the configured sink. */
    void reportProgress(double now, uint64_t target_cycles);
    /** Final gauges + snapshot into @p result. */
    void finalizeTelemetry(RunResult &result, double now);
    /** Streaming telemetry: emit a tokens + metrics chunk when the
     *  slowest partition crossed the next stream boundary. Called
     *  from the single-writer seam of each backend (the main loop
     *  sequentially, partition 0's worker in parallel). */
    void maybeStreamFlush(double now);
    /** Unconditional stream chunk (drain + tokens + metrics line). */
    void streamFlush(double now);
    /** The original single-threaded discrete-event loop. */
    RunResult runSequential(uint64_t target_cycles);
    /** The same schedule on the src/par worker-thread engine. */
    RunResult runParallel(uint64_t target_cycles);
    /** Shared result tail: fault-stat aggregation, degradation
     *  flags, telemetry finalization. */
    void finishRun(RunResult &result, double now);
    /** Fail partition @p p's retry-exhausted output channels over to
     *  host-managed PCIe; p < 0 scans every channel. Runs on the
     *  producing partition's owning thread. */
    void checkFailover(int p, double now);
    /** One event-loop execution to @p target_cycles on the selected
     *  backend (no autosnapshot chunking). */
    RunResult runOnce(uint64_t target_cycles);
    /** FNV-1a over the printed partition circuits. */
    uint64_t designHash() const;
    /** Minimum target cycle across partitions. */
    uint64_t minCycleAll() const;
    /** Reattach channel @p cs's link serializer to match a cut's
     *  failed-over flag before loading its checkpoint. */
    void retimeForCut(ChannelState &cs, bool cut_failed_over);
    /** Apply an in-memory recovery point (shared by rollback() and
     *  restore()); false + diagnostic on a point this instance
     *  cannot hold. */
    bool applyRecoveryPoint(const recovery::RecoveryPoint &point,
                            std::string &error);
    /** Publish recovery gauges (when telemetry with metrics). */
    void recordRecoveryMetrics();

    ripper::PartitionPlan plan_;
    VerifyPolicy verifyPolicy_ = VerifyPolicy::Enforce;
    verify::Report preflight_;
    bool preflightRan_ = false;
    /** The batching legality pass already annotated plan_. */
    bool batchAnnotated_ = false;
    std::vector<FpgaSpec> fpgas_;
    transport::LinkParams link_;
    transport::FaultModel faults_;
    std::vector<ChannelState> channels_;
    /** Atomic: parallel workers fail their own out-channels over. */
    std::atomic<unsigned> linkFailovers_{0};
    uint64_t transientStallEvents_ = 0;
    std::vector<std::unique_ptr<libdn::LIBDNModel>> models_;
    /** Precompiled programs handed in before init() (may be empty). */
    std::vector<std::shared_ptr<const rtlsim::CompiledProgram>>
        precompiled_;
    std::vector<libdn::Driver> drivers_;
    std::vector<libdn::Monitor> monitors_;
    std::vector<std::ostream *> vcdStreams_;
    std::vector<std::unique_ptr<rtlsim::VcdWriter>> vcdWriters_;
    std::function<bool()> stopCondition_;
    /** Serializes stop-condition evaluation across workers. */
    std::mutex stopMtx_;
    /** Sticky graceful-shutdown request (requestStop()). */
    std::atomic<bool> stopRequested_{false};
    ExecConfig execConfig_;
    std::unique_ptr<obs::Telemetry> telemetry_;
    std::vector<PartTelemetry> partTel_;
    // Streaming telemetry state (setupTelemetry opens the sink; the
    // single-writer seams below are the only mutators after that).
    std::unique_ptr<std::ostream> streamOs_;
    /** The active stream sink: streamOs_.get() for a file stream,
     *  or the caller-owned TelemetryConfig::streamSink. */
    std::ostream *streamSink_ = nullptr;
    std::unique_ptr<obs::StreamWriter> stream_;
    uint64_t streamEveryCycles_ = 0;
    uint64_t nextStreamCycle_ = 0;
    uint64_t streamedTokenRecords_ = 0;
    double lastReportNs_ = 0.0;
    std::chrono::steady_clock::time_point wallStart_;
    bool wallStartValid_ = false;
    bool initialized_ = false;
    // Host-time state persists across run() calls, so simulations
    // can be resumed with a larger target-cycle goal.
    std::vector<double> nextTick_;
    double lastProgress_ = 0.0;
    double now_ = 0.0;
    // Recovery bookkeeping (see the recovery section above).
    uint64_t snapshotCount_ = 0;
    uint64_t lastSnapshotBytes_ = 0;
    double lastSnapshotWallMs_ = 0.0;
    double totalSnapshotWallMs_ = 0.0;
    uint64_t restoreCount_ = 0;
    uint64_t partitionRestarts_ = 0;
};

/**
 * Convenience: run a monolithic (non-partitioned) simulation of a
 * circuit with the same driver/monitor interface, as the golden
 * reference. Returns the cycle count executed.
 */
uint64_t runMonolithic(const firrtl::Circuit &circuit,
                       const libdn::Driver &driver,
                       const libdn::Monitor &monitor,
                       uint64_t target_cycles,
                       const std::function<bool()> &stop = nullptr);

} // namespace fireaxe::platform

#endif // FIREAXE_PLATFORM_EXECUTOR_HH
