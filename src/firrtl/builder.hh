/**
 * @file
 * Fluent construction API for circuits. Plays the role Chisel plays
 * for FireSim: target-design generators (src/target) use this to emit
 * IR. The builder resolves reference widths eagerly so expressions
 * carry correct inferred widths, and checks single-driver rules.
 */

#ifndef FIREAXE_FIRRTL_BUILDER_HH
#define FIREAXE_FIRRTL_BUILDER_HH

#include <string>
#include <vector>

#include "firrtl/ir.hh"

namespace fireaxe::firrtl {

class CircuitBuilder;

/**
 * Builds one module. Obtained from CircuitBuilder::module(); child
 * modules must be declared before they are instantiated so port
 * widths can be resolved.
 */
class ModuleBuilder
{
  public:
    ModuleBuilder(CircuitBuilder &parent, Module &mod)
        : parent_(parent), mod_(mod)
    {}

    /** Declare an input port and return a reference to it. */
    ExprPtr input(const std::string &name, unsigned width);
    /** Declare an output port and return a reference to it. */
    ExprPtr output(const std::string &name, unsigned width);
    /** Declare a wire. */
    ExprPtr wire(const std::string &name, unsigned width);
    /** Declare a register with an initial value. */
    ExprPtr reg(const std::string &name, unsigned width,
                uint64_t init = 0);
    /** Declare a register with no reset network: the simulators power
     *  it up at 0, but hardware would start at an unknown value (an X
     *  source for the src/analyze reachability pass). */
    ExprPtr regUninit(const std::string &name, unsigned width);
    /** Declare a memory (comb read, sync write). */
    void mem(const std::string &name, unsigned depth, unsigned width);
    /** Instantiate a previously declared module. */
    void instance(const std::string &name, const std::string &module_name);

    /** Connect a sink signal to an expression (single driver). */
    void connect(const std::string &lhs, ExprPtr rhs);
    /** Shorthand taking a Ref expression for the sink. */
    void connect(const ExprPtr &lhs, ExprPtr rhs);

    /** Reference a signal of this module with resolved width. */
    ExprPtr sig(const std::string &name) const;

    /** Attach a ready-valid interface annotation. */
    void annotateReadyValid(const ReadyValidBundle &bundle);
    /** Set a free-form module attribute. */
    void attr(const std::string &key, const std::string &value);

    Module &module() { return mod_; }
    const std::string &name() const { return mod_.name; }

  private:
    CircuitBuilder &parent_;
    Module &mod_;
};

/**
 * Builds a whole circuit. Typical use:
 * @code
 *   CircuitBuilder cb("Top");
 *   auto q = cb.module("Queue");
 *   ... build queue ...
 *   auto top = cb.module("Top");
 *   top.instance("q0", "Queue");
 *   Circuit c = cb.finish();
 * @endcode
 */
class CircuitBuilder
{
  public:
    explicit CircuitBuilder(std::string top_name)
    {
        circuit_.topName = std::move(top_name);
    }

    /** Start a new module (name must be unique). */
    ModuleBuilder module(const std::string &name);

    /** Access the circuit under construction (for lookups). */
    const Circuit &circuit() const { return circuit_; }

    /**
     * Finalize: verifies structure (all references resolve, single
     * driver per sink, widths sane) and returns the circuit.
     */
    Circuit finish();

  private:
    Circuit circuit_;
};

/**
 * Structural verification of a circuit. fatal()s with a diagnostic on
 * dangling references, multiply-driven or undriven sinks, instances
 * of unknown modules, or zero/over-wide signals. Registers are
 * allowed to be undriven (they hold their value).
 */
void verifyCircuit(const Circuit &circuit);

} // namespace fireaxe::firrtl

#endif // FIREAXE_FIRRTL_BUILDER_HH
