/**
 * @file
 * Parser for the FIRRTL-flavoured text format emitted by
 * printer.hh. Together they give the IR a durable on-disk form:
 * printCircuit() and parseCircuit() round-trip exactly, so designs
 * can be stored, diffed, and loaded without the builder API — the
 * role .fir files play for FireSim.
 */

#ifndef FIREAXE_FIRRTL_PARSER_HH
#define FIREAXE_FIRRTL_PARSER_HH

#include <istream>
#include <string>

#include "firrtl/ir.hh"

namespace fireaxe::firrtl {

/**
 * Parse a circuit from text. fatal() with a line-numbered diagnostic
 * on syntax errors; the result additionally passes verifyCircuit().
 */
Circuit parseCircuit(std::istream &in);

/** Convenience: parse from a string. */
Circuit parseCircuitString(const std::string &text);

/** Parse one expression (widths must be explicit via UInt<w>(v) for
 *  literals; reference widths are resolved against @p mod). */
ExprPtr parseExpr(const std::string &text, const Circuit &circuit,
                  const Module &mod);

} // namespace fireaxe::firrtl

#endif // FIREAXE_FIRRTL_PARSER_HH
