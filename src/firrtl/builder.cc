#include "firrtl/builder.hh"

#include <set>

#include "base/bits.hh"
#include "base/logging.hh"

namespace fireaxe::firrtl {

ExprPtr
ModuleBuilder::input(const std::string &port_name, unsigned width)
{
    FIREAXE_ASSERT(width >= 1 && width <= maxBitWidth,
                   "port ", port_name, " width=", width);
    mod_.ports.push_back({port_name, PortDir::Input, width});
    return ref(port_name, width);
}

ExprPtr
ModuleBuilder::output(const std::string &port_name, unsigned width)
{
    FIREAXE_ASSERT(width >= 1 && width <= maxBitWidth,
                   "port ", port_name, " width=", width);
    mod_.ports.push_back({port_name, PortDir::Output, width});
    return ref(port_name, width);
}

ExprPtr
ModuleBuilder::wire(const std::string &wire_name, unsigned width)
{
    FIREAXE_ASSERT(width >= 1 && width <= maxBitWidth,
                   "wire ", wire_name, " width=", width);
    mod_.wires.push_back({wire_name, width});
    return ref(wire_name, width);
}

ExprPtr
ModuleBuilder::reg(const std::string &reg_name, unsigned width,
                   uint64_t init)
{
    FIREAXE_ASSERT(width >= 1 && width <= maxBitWidth,
                   "reg ", reg_name, " width=", width);
    mod_.regs.push_back({reg_name, width, truncate(init, width)});
    return ref(reg_name, width);
}

ExprPtr
ModuleBuilder::regUninit(const std::string &reg_name, unsigned width)
{
    FIREAXE_ASSERT(width >= 1 && width <= maxBitWidth,
                   "reg ", reg_name, " width=", width);
    mod_.regs.push_back({reg_name, width, 0, /*hasReset=*/false});
    return ref(reg_name, width);
}

void
ModuleBuilder::mem(const std::string &mem_name, unsigned depth,
                   unsigned width)
{
    FIREAXE_ASSERT(depth >= 1, "mem ", mem_name, " depth=", depth);
    FIREAXE_ASSERT(width >= 1 && width <= maxBitWidth,
                   "mem ", mem_name, " width=", width);
    mod_.mems.push_back({mem_name, depth, width});
}

void
ModuleBuilder::instance(const std::string &inst_name,
                        const std::string &module_name)
{
    if (!parent_.circuit().findModule(module_name)) {
        fatal("module '", mod_.name, "' instantiates undefined module '",
              module_name, "' (declare children before parents)");
    }
    mod_.instances.push_back({inst_name, module_name});
}

void
ModuleBuilder::connect(const std::string &lhs, ExprPtr rhs)
{
    SignalInfo info = mod_.resolve(parent_.circuit(), lhs);
    if (info.kind == SignalKind::Unknown)
        fatal("connect to unknown signal '", lhs, "' in module '",
              mod_.name, "'");
    mod_.connects.push_back({lhs, std::move(rhs)});
}

void
ModuleBuilder::connect(const ExprPtr &lhs, ExprPtr rhs)
{
    FIREAXE_ASSERT(lhs->kind == ExprKind::Ref,
                   "connect sink must be a reference");
    connect(lhs->name, std::move(rhs));
}

ExprPtr
ModuleBuilder::sig(const std::string &sig_name) const
{
    SignalInfo info = mod_.resolve(parent_.circuit(), sig_name);
    if (info.kind == SignalKind::Unknown)
        fatal("reference to unknown signal '", sig_name, "' in module '",
              mod_.name, "'");
    return ref(sig_name, info.width);
}

void
ModuleBuilder::annotateReadyValid(const ReadyValidBundle &bundle)
{
    mod_.rvBundles.push_back(bundle);
}

void
ModuleBuilder::attr(const std::string &key, const std::string &value)
{
    mod_.attrs[key] = value;
}

ModuleBuilder
CircuitBuilder::module(const std::string &mod_name)
{
    Module m;
    m.name = mod_name;
    Module &stored = circuit_.addModule(std::move(m));
    return ModuleBuilder(*this, stored);
}

Circuit
CircuitBuilder::finish()
{
    verifyCircuit(circuit_);
    return std::move(circuit_);
}

namespace {

/** Whether a resolved signal kind may appear as a connect sink. */
bool
isSinkKind(SignalKind kind)
{
    switch (kind) {
      case SignalKind::OutPort:
      case SignalKind::Wire:
      case SignalKind::Reg:
      case SignalKind::InstIn:
      case SignalKind::MemRAddr:
      case SignalKind::MemWAddr:
      case SignalKind::MemWData:
      case SignalKind::MemWEn:
        return true;
      default:
        return false;
    }
}

/** Whether a resolved signal kind may be read in an expression. */
bool
isSourceKind(SignalKind kind)
{
    switch (kind) {
      case SignalKind::InPort:
      case SignalKind::OutPort: // reading back an output is legal
      case SignalKind::Wire:
      case SignalKind::Reg:
      case SignalKind::InstOut:
      case SignalKind::MemRData:
        return true;
      default:
        return false;
    }
}

void
verifyModule(const Circuit &circuit, const Module &mod)
{
    // Unique signal names across namespaces.
    std::set<std::string> names;
    auto claim = [&](const std::string &n, const char *what) {
        if (!names.insert(n).second) {
            fatal("module '", mod.name, "': duplicate ", what,
                  " name '", n, "'");
        }
    };
    for (const auto &p : mod.ports)
        claim(p.name, "port");
    for (const auto &w : mod.wires)
        claim(w.name, "wire");
    for (const auto &r : mod.regs)
        claim(r.name, "reg");
    for (const auto &m : mod.mems)
        claim(m.name, "mem");
    for (const auto &i : mod.instances)
        claim(i.name, "instance");

    std::set<std::string> driven;
    for (const auto &c : mod.connects) {
        SignalInfo lhs = mod.resolve(circuit, c.lhs);
        if (!isSinkKind(lhs.kind)) {
            fatal("module '", mod.name, "': connect sink '", c.lhs,
                  "' is not a drivable signal");
        }
        if (!driven.insert(c.lhs).second) {
            fatal("module '", mod.name, "': signal '", c.lhs,
                  "' has multiple drivers");
        }
        std::vector<std::string> refs;
        collectRefs(c.rhs, refs);
        for (const auto &r : refs) {
            SignalInfo src = mod.resolve(circuit, r);
            if (!isSourceKind(src.kind)) {
                fatal("module '", mod.name, "': expression reads '", r,
                      "' which is not a readable signal (driving '",
                      c.lhs, "')");
            }
        }
    }

    // Every output port, wire and instance input must be driven.
    auto requireDriven = [&](const std::string &n, const char *what) {
        if (!driven.count(n)) {
            fatal("module '", mod.name, "': ", what, " '", n,
                  "' is never driven");
        }
    };
    for (const auto &p : mod.ports)
        if (p.dir == PortDir::Output)
            requireDriven(p.name, "output port");
    for (const auto &w : mod.wires)
        requireDriven(w.name, "wire");
    for (const auto &inst : mod.instances) {
        const Module *child = circuit.findModule(inst.moduleName);
        FIREAXE_ASSERT(child, "instance of unknown module");
        for (const auto &p : child->ports) {
            if (p.dir == PortDir::Input)
                requireDriven(inst.name + "." + p.name,
                              "instance input");
        }
    }
    // Memory read addresses must be driven; write side may be left
    // undriven (defaults to never-write).
    for (const auto &m : mod.mems)
        requireDriven(m.name + ".raddr", "memory read address");

    // Ready-valid annotations must name real ports.
    for (const auto &rv : mod.rvBundles) {
        auto check = [&](const std::string &pn) {
            if (!mod.findPort(pn)) {
                fatal("module '", mod.name, "': ready-valid bundle '",
                      rv.name, "' names unknown port '", pn, "'");
            }
        };
        check(rv.validPort);
        check(rv.readyPort);
        for (const auto &d : rv.dataPorts)
            check(d);
    }
}

} // namespace

void
verifyCircuit(const Circuit &circuit)
{
    for (const auto &name : circuit.topoOrder()) {
        const Module *m = circuit.findModule(name);
        FIREAXE_ASSERT(m);
        verifyModule(circuit, *m);
    }
}

} // namespace fireaxe::firrtl
