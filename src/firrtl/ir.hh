/**
 * @file
 * A FIRRTL-like hierarchical circuit intermediate representation.
 *
 * This is the substrate FireRipper (src/ripper) operates on. It
 * implements the subset of FIRRTL that the paper's passes need:
 * unsigned integer signals up to 64 bits per port, wires, registers
 * with initial values, combinational-read memories, module instances,
 * and single-driver connects. Aggregate interfaces wider than 64 bits
 * are expressed as multiple ports (as FIRRTL lowers bundles anyway).
 *
 * Signal references are strings: a bare name refers to a port, wire or
 * register of the enclosing module; "inst.port" refers to a port of a
 * child instance; "mem.rdata" / "mem.raddr" / "mem.waddr" /
 * "mem.wdata" / "mem.wen" refer to the implicit ports of a memory.
 */

#ifndef FIREAXE_FIRRTL_IR_HH
#define FIREAXE_FIRRTL_IR_HH

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace fireaxe::firrtl {

/** Direction of a module port. */
enum class PortDir { Input, Output };

/** Expression node kinds. */
enum class ExprKind { Ref, Literal, UnOp, BinOp, Mux, Bits, Cat };

/** Unary operators. */
enum class UnOpKind { Not, AndR, OrR, XorR };

/** Binary operators. All operate on UInts; comparisons yield 1 bit. */
enum class BinOpKind {
    Add, Sub, Mul, Div, Rem,
    And, Or, Xor,
    Eq, Neq, Lt, Leq, Gt, Geq,
    Shl, Shr,   // shift amount is the (dynamic) second operand
};

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/**
 * Immutable expression tree node. Width is inferred at construction.
 */
struct Expr
{
    ExprKind kind;
    unsigned width = 0;

    // Ref
    std::string name;
    // Literal
    uint64_t value = 0;
    // Ops
    UnOpKind unOp = UnOpKind::Not;
    BinOpKind binOp = BinOpKind::Add;
    std::vector<ExprPtr> args;
    // Bits extract
    unsigned hi = 0, lo = 0;
};

/** Build a reference expression; width resolved later by the builder
 *  or by analysis (width 0 = unresolved). */
ExprPtr ref(const std::string &name, unsigned width = 0);
/** Build a literal of the given width. Value is truncated to width. */
ExprPtr lit(uint64_t value, unsigned width);
ExprPtr unOp(UnOpKind op, ExprPtr a);
ExprPtr binOp(BinOpKind op, ExprPtr a, ExprPtr b);
ExprPtr mux(ExprPtr sel, ExprPtr tval, ExprPtr fval);
ExprPtr bits(ExprPtr a, unsigned hi, unsigned lo);
ExprPtr cat(ExprPtr hi, ExprPtr lo);

// Convenience wrappers.
inline ExprPtr eAdd(ExprPtr a, ExprPtr b) { return binOp(BinOpKind::Add, a, b); }
inline ExprPtr eSub(ExprPtr a, ExprPtr b) { return binOp(BinOpKind::Sub, a, b); }
inline ExprPtr eMul(ExprPtr a, ExprPtr b) { return binOp(BinOpKind::Mul, a, b); }
inline ExprPtr eAnd(ExprPtr a, ExprPtr b) { return binOp(BinOpKind::And, a, b); }
inline ExprPtr eOr(ExprPtr a, ExprPtr b) { return binOp(BinOpKind::Or, a, b); }
inline ExprPtr eXor(ExprPtr a, ExprPtr b) { return binOp(BinOpKind::Xor, a, b); }
inline ExprPtr eEq(ExprPtr a, ExprPtr b) { return binOp(BinOpKind::Eq, a, b); }
inline ExprPtr eNeq(ExprPtr a, ExprPtr b) { return binOp(BinOpKind::Neq, a, b); }
inline ExprPtr eLt(ExprPtr a, ExprPtr b) { return binOp(BinOpKind::Lt, a, b); }
inline ExprPtr eGeq(ExprPtr a, ExprPtr b) { return binOp(BinOpKind::Geq, a, b); }
inline ExprPtr eNot(ExprPtr a) { return unOp(UnOpKind::Not, a); }

/** A module port. */
struct Port
{
    std::string name;
    PortDir dir;
    unsigned width;
};

/** A combinationally-driven named signal. */
struct Wire
{
    std::string name;
    unsigned width;
};

/** A register clocked by the implicit clock; starts at @c init.
 *  When @c hasReset is false the register has no reset network: the
 *  simulators still power it up at @c init (deterministically), but
 *  on real hardware its initial value would be unknown, which the
 *  src/analyze X-reachability pass treats as an X source (IR010). */
struct Reg
{
    std::string name;
    unsigned width;
    uint64_t init = 0;
    bool hasReset = true;
};

/**
 * A memory with one combinational read port and one synchronous write
 * port. Implicit signals: raddr/rdata/waddr/wdata/wen.
 */
struct Mem
{
    std::string name;
    unsigned depth;
    unsigned width;
};

/** A child module instance. */
struct Instance
{
    std::string name;
    std::string moduleName;
};

/**
 * A single-driver connection: lhs is a sink signal reference (wire,
 * register next-value, output port, instance input port, memory input
 * signal); rhs is an expression over source signals.
 */
struct Connect
{
    std::string lhs;
    ExprPtr rhs;
};

/**
 * A ready-valid (decoupled) interface annotation. Used by
 * FireRipper's fast-mode boundary transform (Fig. 3c in the paper) to
 * know where to insert skid buffers and valid&ready gating.
 *
 * All port names are relative to the annotated module's ports. When
 * @c isSource is true the module drives valid/data and consumes ready
 * (it is the transaction source); otherwise it is the sink.
 */
struct ReadyValidBundle
{
    std::string name;
    std::string validPort;
    std::string readyPort;
    std::vector<std::string> dataPorts;
    bool isSource;
};

/** Kinds of signal a reference can resolve to within a module. */
enum class SignalKind {
    InPort, OutPort, Wire, Reg,
    InstIn, InstOut,
    MemRAddr, MemRData, MemWAddr, MemWData, MemWEn,
    Unknown
};

/** Result of resolving a signal reference within a module. */
struct SignalInfo
{
    SignalKind kind = SignalKind::Unknown;
    unsigned width = 0;
};

struct Circuit;

/** A hardware module. */
struct Module
{
    std::string name;
    std::vector<Port> ports;
    std::vector<Wire> wires;
    std::vector<Reg> regs;
    std::vector<Mem> mems;
    std::vector<Instance> instances;
    std::vector<Connect> connects;
    std::vector<ReadyValidBundle> rvBundles;
    /** Free-form attributes; used e.g. by the NoC generator to mark
     *  router nodes ("nocRouter") and layer membership. */
    std::map<std::string, std::string> attrs;

    const Port *findPort(const std::string &name) const;
    const Wire *findWire(const std::string &name) const;
    const Reg *findReg(const std::string &name) const;
    const Mem *findMem(const std::string &name) const;
    const Instance *findInstance(const std::string &name) const;

    /**
     * Resolve a signal reference ("sig" or "owner.field") against this
     * module. Requires the circuit to look up instance port widths.
     */
    SignalInfo resolve(const Circuit &circuit, const std::string &name)
        const;

    bool hasAttr(const std::string &key) const
    {
        return attrs.count(key) != 0;
    }
};

/** A whole design: a set of modules and a designated top. */
struct Circuit
{
    std::string topName;
    std::map<std::string, Module> modules;

    const Module &top() const;
    Module &top();
    const Module *findModule(const std::string &name) const;
    Module *findModule(const std::string &name);

    /** Add a module; fatal() on duplicate name. */
    Module &addModule(Module m);

    /**
     * Return module names sorted so that every module appears after
     * all modules it instantiates (leaves first). Only modules
     * reachable from the top are included. fatal() on instantiation
     * cycles or dangling instance references.
     */
    std::vector<std::string> topoOrder() const;
};

/** Split "owner.field" into its two parts; empty owner if no dot. */
std::pair<std::string, std::string> splitRef(const std::string &name);

/** Collect the names of all Ref leaves in an expression. */
void collectRefs(const ExprPtr &expr, std::vector<std::string> &out);

/** Rewrite every Ref leaf via the given map (identity if missing). */
ExprPtr renameRefs(const ExprPtr &expr,
                   const std::map<std::string, std::string> &renames);

/** Infer the result width of an operator application. */
unsigned inferUnOpWidth(UnOpKind op, unsigned w);
unsigned inferBinOpWidth(BinOpKind op, unsigned wa, unsigned wb);

} // namespace fireaxe::firrtl

#endif // FIREAXE_FIRRTL_IR_HH
