#include "firrtl/printer.hh"

#include <sstream>

#include "base/logging.hh"

namespace fireaxe::firrtl {

namespace {

const char *
binOpName(BinOpKind op)
{
    switch (op) {
      case BinOpKind::Add: return "add";
      case BinOpKind::Sub: return "sub";
      case BinOpKind::Mul: return "mul";
      case BinOpKind::Div: return "div";
      case BinOpKind::Rem: return "rem";
      case BinOpKind::And: return "and";
      case BinOpKind::Or:  return "or";
      case BinOpKind::Xor: return "xor";
      case BinOpKind::Eq:  return "eq";
      case BinOpKind::Neq: return "neq";
      case BinOpKind::Lt:  return "lt";
      case BinOpKind::Leq: return "leq";
      case BinOpKind::Gt:  return "gt";
      case BinOpKind::Geq: return "geq";
      case BinOpKind::Shl: return "dshl";
      case BinOpKind::Shr: return "dshr";
    }
    panic("unreachable");
}

const char *
unOpName(UnOpKind op)
{
    switch (op) {
      case UnOpKind::Not:  return "not";
      case UnOpKind::AndR: return "andr";
      case UnOpKind::OrR:  return "orr";
      case UnOpKind::XorR: return "xorr";
    }
    panic("unreachable");
}

} // namespace

std::string
printExpr(const ExprPtr &expr)
{
    std::ostringstream os;
    switch (expr->kind) {
      case ExprKind::Ref:
        os << expr->name;
        break;
      case ExprKind::Literal:
        os << "UInt<" << expr->width << ">(" << expr->value << ")";
        break;
      case ExprKind::UnOp:
        os << unOpName(expr->unOp) << "(" << printExpr(expr->args[0])
           << ")";
        break;
      case ExprKind::BinOp:
        os << binOpName(expr->binOp) << "(" << printExpr(expr->args[0])
           << ", " << printExpr(expr->args[1]) << ")";
        break;
      case ExprKind::Mux:
        os << "mux(" << printExpr(expr->args[0]) << ", "
           << printExpr(expr->args[1]) << ", "
           << printExpr(expr->args[2]) << ")";
        break;
      case ExprKind::Bits:
        os << "bits(" << printExpr(expr->args[0]) << ", " << expr->hi
           << ", " << expr->lo << ")";
        break;
      case ExprKind::Cat:
        os << "cat(" << printExpr(expr->args[0]) << ", "
           << printExpr(expr->args[1]) << ")";
        break;
    }
    return os.str();
}

void
printModule(std::ostream &os, const Circuit &circuit, const Module &mod)
{
    (void)circuit;
    os << "  module " << mod.name << " :\n";
    for (const auto &[k, v] : mod.attrs)
        os << "    ; attr " << k << " = " << v << "\n";
    for (const auto &p : mod.ports) {
        os << "    " << (p.dir == PortDir::Input ? "input " : "output ")
           << p.name << " : UInt<" << p.width << ">\n";
    }
    for (const auto &w : mod.wires)
        os << "    wire " << w.name << " : UInt<" << w.width << ">\n";
    for (const auto &r : mod.regs) {
        os << "    reg " << r.name << " : UInt<" << r.width << ">, ";
        if (r.hasReset)
            os << "init " << r.init << "\n";
        else
            os << "uninit\n";
    }
    for (const auto &m : mod.mems) {
        os << "    mem " << m.name << " : UInt<" << m.width << ">["
           << m.depth << "]\n";
    }
    for (const auto &inst : mod.instances) {
        os << "    inst " << inst.name << " of " << inst.moduleName
           << "\n";
    }
    for (const auto &c : mod.connects)
        os << "    " << c.lhs << " <= " << printExpr(c.rhs) << "\n";
    for (const auto &rv : mod.rvBundles) {
        os << "    ; ready-valid " << rv.name
           << (rv.isSource ? " (source)" : " (sink)") << " valid="
           << rv.validPort << " ready=" << rv.readyPort << " data=[";
        for (size_t i = 0; i < rv.dataPorts.size(); ++i)
            os << (i ? "," : "") << rv.dataPorts[i];
        os << "]\n";
    }
}

void
printCircuit(std::ostream &os, const Circuit &circuit)
{
    os << "circuit " << circuit.topName << " :\n";
    for (const auto &name : circuit.topoOrder()) {
        const Module *m = circuit.findModule(name);
        printModule(os, circuit, *m);
        os << "\n";
    }
}

std::string
circuitToString(const Circuit &circuit)
{
    std::ostringstream os;
    printCircuit(os, circuit);
    return os.str();
}

} // namespace fireaxe::firrtl
