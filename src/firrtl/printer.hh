/**
 * @file
 * Text serialization of circuits in a FIRRTL-flavoured syntax. Used
 * for debugging, golden tests, and FireRipper's partition-feedback
 * reports.
 */

#ifndef FIREAXE_FIRRTL_PRINTER_HH
#define FIREAXE_FIRRTL_PRINTER_HH

#include <ostream>
#include <string>

#include "firrtl/ir.hh"

namespace fireaxe::firrtl {

/** Render an expression to a string. */
std::string printExpr(const ExprPtr &expr);

/** Print one module. */
void printModule(std::ostream &os, const Circuit &circuit,
                 const Module &mod);

/** Print the whole circuit (topological order, top last). */
void printCircuit(std::ostream &os, const Circuit &circuit);

/** Convenience: circuit to string. */
std::string circuitToString(const Circuit &circuit);

} // namespace fireaxe::firrtl

#endif // FIREAXE_FIRRTL_PRINTER_HH
