#include "firrtl/parser.hh"

#include <cctype>
#include <map>
#include <sstream>
#include <vector>

#include "base/logging.hh"
#include "firrtl/builder.hh"

namespace fireaxe::firrtl {

namespace {

/** Recursive-descent expression parser over a string cursor. */
class ExprParser
{
  public:
    ExprParser(const std::string &text, const Circuit &circuit,
               const Module &mod)
        : text_(text), circuit_(circuit), mod_(mod)
    {}

    ExprPtr
    parse()
    {
        ExprPtr e = expr();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after expression");
        return e;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why) const
    {
        fatal("expression parse error at offset ", pos_, " in '",
              text_, "': ", why);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() && std::isspace(text_[pos_]))
            ++pos_;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void
    expect(char c)
    {
        if (!consume(c))
            fail(std::string("expected '") + c + "'");
    }

    std::string
    ident()
    {
        skipWs();
        size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(text_[pos_]) || text_[pos_] == '_' ||
                text_[pos_] == '/' || text_[pos_] == '.'))
            ++pos_;
        if (pos_ == start)
            fail("expected identifier");
        return text_.substr(start, pos_ - start);
    }

    uint64_t
    number()
    {
        skipWs();
        size_t start = pos_;
        while (pos_ < text_.size() && std::isdigit(text_[pos_]))
            ++pos_;
        if (pos_ == start)
            fail("expected number");
        return std::stoull(text_.substr(start, pos_ - start));
    }

    ExprPtr
    expr()
    {
        std::string head = ident();

        if (head == "UInt") {
            expect('<');
            unsigned width = unsigned(number());
            expect('>');
            expect('(');
            uint64_t value = number();
            expect(')');
            return lit(value, width);
        }

        static const std::map<std::string, BinOpKind> bin_ops = {
            {"add", BinOpKind::Add},   {"sub", BinOpKind::Sub},
            {"mul", BinOpKind::Mul},   {"div", BinOpKind::Div},
            {"rem", BinOpKind::Rem},   {"and", BinOpKind::And},
            {"or", BinOpKind::Or},     {"xor", BinOpKind::Xor},
            {"eq", BinOpKind::Eq},     {"neq", BinOpKind::Neq},
            {"lt", BinOpKind::Lt},     {"leq", BinOpKind::Leq},
            {"gt", BinOpKind::Gt},     {"geq", BinOpKind::Geq},
            {"dshl", BinOpKind::Shl},  {"dshr", BinOpKind::Shr},
        };
        static const std::map<std::string, UnOpKind> un_ops = {
            {"not", UnOpKind::Not},
            {"andr", UnOpKind::AndR},
            {"orr", UnOpKind::OrR},
            {"xorr", UnOpKind::XorR},
        };

        skipWs();
        bool call = pos_ < text_.size() && text_[pos_] == '(';
        if (!call) {
            // Signal reference; resolve its width.
            SignalInfo info = mod_.resolve(circuit_, head);
            if (info.kind == SignalKind::Unknown)
                fail("unknown signal '" + head + "'");
            return ref(head, info.width);
        }

        expect('(');
        if (head == "mux") {
            ExprPtr s = expr();
            expect(',');
            ExprPtr t = expr();
            expect(',');
            ExprPtr f = expr();
            expect(')');
            return mux(s, t, f);
        }
        if (head == "bits") {
            ExprPtr a = expr();
            expect(',');
            unsigned hi = unsigned(number());
            expect(',');
            unsigned lo = unsigned(number());
            expect(')');
            return bits(a, hi, lo);
        }
        if (head == "cat") {
            ExprPtr a = expr();
            expect(',');
            ExprPtr b = expr();
            expect(')');
            return cat(a, b);
        }
        if (auto it = bin_ops.find(head); it != bin_ops.end()) {
            ExprPtr a = expr();
            expect(',');
            ExprPtr b = expr();
            expect(')');
            return binOp(it->second, a, b);
        }
        if (auto it = un_ops.find(head); it != un_ops.end()) {
            ExprPtr a = expr();
            expect(')');
            return unOp(it->second, a);
        }
        fail("unknown operator '" + head + "'");
    }

    const std::string &text_;
    const Circuit &circuit_;
    const Module &mod_;
    size_t pos_ = 0;
};

/** Trim leading/trailing whitespace. */
std::string
trim(const std::string &s)
{
    size_t a = s.find_first_not_of(" \t\r");
    if (a == std::string::npos)
        return "";
    size_t b = s.find_last_not_of(" \t\r");
    return s.substr(a, b - a + 1);
}

/** Split on whitespace. */
std::vector<std::string>
words(const std::string &s)
{
    std::vector<std::string> out;
    std::istringstream is(s);
    std::string w;
    while (is >> w)
        out.push_back(w);
    return out;
}

/** Parse "UInt<8>" -> 8. */
unsigned
parseTypeWidth(const std::string &type, unsigned line_no)
{
    if (type.rfind("UInt<", 0) != 0 || type.back() != '>')
        fatal("line ", line_no, ": bad type '", type, "'");
    return unsigned(std::stoul(type.substr(5, type.size() - 6)));
}

struct PendingConnect
{
    std::string lhs;
    std::string rhs;
    unsigned lineNo;
};

} // namespace

Circuit
parseCircuit(std::istream &in)
{
    Circuit circuit;
    Module *mod = nullptr;
    // Expressions are parsed after all declarations of a module are
    // known (references may appear before their declarations and
    // instance ports need the child module's ports).
    std::map<std::string, std::vector<PendingConnect>> pending;

    std::string raw;
    unsigned line_no = 0;
    while (std::getline(in, raw)) {
        ++line_no;
        std::string line = trim(raw);
        if (line.empty())
            continue;

        auto tokens = words(line);
        const std::string &kw = tokens[0];

        if (kw == "circuit") {
            if (tokens.size() < 2)
                fatal("line ", line_no, ": circuit needs a name");
            circuit.topName = tokens[1];
            continue;
        }
        if (kw == "module") {
            if (tokens.size() < 2)
                fatal("line ", line_no, ": module needs a name");
            Module m;
            m.name = tokens[1];
            mod = &circuit.addModule(std::move(m));
            continue;
        }
        if (!mod)
            fatal("line ", line_no, ": statement outside a module");

        if (kw == ";") {
            // Metadata comments emitted by the printer.
            if (tokens.size() >= 5 && tokens[1] == "attr" &&
                tokens[3] == "=") {
                std::string value = tokens[4];
                for (size_t i = 5; i < tokens.size(); ++i)
                    value += " " + tokens[i];
                mod->attrs[tokens[2]] = value;
            } else if (tokens.size() >= 6 &&
                       tokens[1] == "ready-valid") {
                ReadyValidBundle rv;
                rv.name = tokens[2];
                rv.isSource = tokens[3] == "(source)";
                auto field = [&](const std::string &t,
                                 const char *prefix) {
                    FIREAXE_ASSERT(t.rfind(prefix, 0) == 0,
                                   "line ", line_no, " bad rv field ",
                                   t);
                    return t.substr(std::string(prefix).size());
                };
                rv.validPort = field(tokens[4], "valid=");
                rv.readyPort = field(tokens[5], "ready=");
                if (tokens.size() >= 7) {
                    std::string data =
                        field(tokens[6], "data=");
                    FIREAXE_ASSERT(data.size() >= 2 &&
                                   data.front() == '[' &&
                                   data.back() == ']');
                    std::string inner =
                        data.substr(1, data.size() - 2);
                    std::istringstream ds(inner);
                    std::string d;
                    while (std::getline(ds, d, ','))
                        if (!d.empty())
                            rv.dataPorts.push_back(d);
                }
                mod->rvBundles.push_back(std::move(rv));
            }
            continue;
        }
        if (kw == "input" || kw == "output") {
            // input <name> : UInt<w>
            if (tokens.size() < 4 || tokens[2] != ":")
                fatal("line ", line_no, ": bad port declaration");
            mod->ports.push_back(
                {tokens[1],
                 kw == "input" ? PortDir::Input : PortDir::Output,
                 parseTypeWidth(tokens[3], line_no)});
            continue;
        }
        if (kw == "wire") {
            if (tokens.size() < 4 || tokens[2] != ":")
                fatal("line ", line_no, ": bad wire declaration");
            mod->wires.push_back(
                {tokens[1], parseTypeWidth(tokens[3], line_no)});
            continue;
        }
        if (kw == "reg") {
            // reg <name> : UInt<w>, init <v>   (or ", uninit")
            bool uninit = tokens.size() >= 5 && tokens[4] == "uninit";
            if (tokens.size() < (uninit ? 5u : 6u) || tokens[2] != ":" ||
                (!uninit && tokens[4] != "init"))
                fatal("line ", line_no, ": bad reg declaration");
            std::string type = tokens[3];
            if (type.back() == ',')
                type.pop_back();
            mod->regs.push_back({tokens[1],
                                 parseTypeWidth(type, line_no),
                                 uninit ? 0 : std::stoull(tokens[5]),
                                 !uninit});
            continue;
        }
        if (kw == "mem") {
            // mem <name> : UInt<w>[depth]
            if (tokens.size() < 4 || tokens[2] != ":")
                fatal("line ", line_no, ": bad mem declaration");
            const std::string &type = tokens[3];
            auto bracket = type.find('[');
            if (bracket == std::string::npos || type.back() != ']')
                fatal("line ", line_no, ": bad mem type '", type,
                      "'");
            unsigned width =
                parseTypeWidth(type.substr(0, bracket), line_no);
            unsigned depth = unsigned(std::stoul(type.substr(
                bracket + 1, type.size() - bracket - 2)));
            mod->mems.push_back({tokens[1], depth, width});
            continue;
        }
        if (kw == "inst") {
            // inst <name> of <module>
            if (tokens.size() < 4 || tokens[2] != "of")
                fatal("line ", line_no, ": bad instance");
            mod->instances.push_back({tokens[1], tokens[3]});
            continue;
        }
        // Connect: <lhs> <= <expr>
        auto arrow = line.find("<=");
        if (arrow == std::string::npos)
            fatal("line ", line_no, ": unrecognized statement '",
                  line, "'");
        pending[mod->name].push_back(
            {trim(line.substr(0, arrow)),
             trim(line.substr(arrow + 2)), line_no});
    }

    if (circuit.topName.empty())
        fatal("no 'circuit' header found");

    for (auto &[mod_name, connects] : pending) {
        Module *m = circuit.findModule(mod_name);
        FIREAXE_ASSERT(m);
        for (const auto &pc : connects) {
            ExprParser ep(pc.rhs, circuit, *m);
            m->connects.push_back({pc.lhs, ep.parse()});
        }
    }

    verifyCircuit(circuit);
    return circuit;
}

Circuit
parseCircuitString(const std::string &text)
{
    std::istringstream is(text);
    return parseCircuit(is);
}

ExprPtr
parseExpr(const std::string &text, const Circuit &circuit,
          const Module &mod)
{
    ExprParser ep(text, circuit, mod);
    return ep.parse();
}

} // namespace fireaxe::firrtl
