#include "firrtl/ir.hh"

#include <algorithm>
#include <functional>
#include <set>

#include "base/bits.hh"
#include "base/logging.hh"

namespace fireaxe::firrtl {

unsigned
inferUnOpWidth(UnOpKind op, unsigned w)
{
    switch (op) {
      case UnOpKind::Not:
        return w;
      case UnOpKind::AndR:
      case UnOpKind::OrR:
      case UnOpKind::XorR:
        return 1;
    }
    panic("unreachable unop");
}

unsigned
inferBinOpWidth(BinOpKind op, unsigned wa, unsigned wb)
{
    unsigned wmax = std::max(wa, wb);
    switch (op) {
      case BinOpKind::Add:
      case BinOpKind::Sub:
        return std::min(wmax + 1, maxBitWidth);
      case BinOpKind::Mul:
        return std::min(wa + wb, maxBitWidth);
      case BinOpKind::Div:
      case BinOpKind::Rem:
        return wa;
      case BinOpKind::And:
      case BinOpKind::Or:
      case BinOpKind::Xor:
        return wmax;
      case BinOpKind::Eq:
      case BinOpKind::Neq:
      case BinOpKind::Lt:
      case BinOpKind::Leq:
      case BinOpKind::Gt:
      case BinOpKind::Geq:
        return 1;
      case BinOpKind::Shl:
      case BinOpKind::Shr:
        return wa;
    }
    panic("unreachable binop");
}

ExprPtr
ref(const std::string &name, unsigned width)
{
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::Ref;
    e->name = name;
    e->width = width;
    return e;
}

ExprPtr
lit(uint64_t value, unsigned width)
{
    FIREAXE_ASSERT(width >= 1 && width <= maxBitWidth, "width=", width);
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::Literal;
    e->value = truncate(value, width);
    e->width = width;
    return e;
}

ExprPtr
unOp(UnOpKind op, ExprPtr a)
{
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::UnOp;
    e->unOp = op;
    e->width = inferUnOpWidth(op, a->width);
    e->args = {std::move(a)};
    return e;
}

ExprPtr
binOp(BinOpKind op, ExprPtr a, ExprPtr b)
{
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::BinOp;
    e->binOp = op;
    e->width = inferBinOpWidth(op, a->width, b->width);
    e->args = {std::move(a), std::move(b)};
    return e;
}

ExprPtr
mux(ExprPtr sel, ExprPtr tval, ExprPtr fval)
{
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::Mux;
    e->width = std::max(tval->width, fval->width);
    e->args = {std::move(sel), std::move(tval), std::move(fval)};
    return e;
}

ExprPtr
bits(ExprPtr a, unsigned hi, unsigned lo)
{
    FIREAXE_ASSERT(hi >= lo, "hi=", hi, " lo=", lo);
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::Bits;
    e->width = hi - lo + 1;
    e->hi = hi;
    e->lo = lo;
    e->args = {std::move(a)};
    return e;
}

ExprPtr
cat(ExprPtr hi, ExprPtr lo)
{
    unsigned w = hi->width + lo->width;
    FIREAXE_ASSERT(w <= maxBitWidth,
                   "cat width ", w, " exceeds ", maxBitWidth);
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::Cat;
    e->width = w;
    e->args = {std::move(hi), std::move(lo)};
    return e;
}

std::pair<std::string, std::string>
splitRef(const std::string &name)
{
    auto pos = name.find('.');
    if (pos == std::string::npos)
        return {"", name};
    return {name.substr(0, pos), name.substr(pos + 1)};
}

void
collectRefs(const ExprPtr &expr, std::vector<std::string> &out)
{
    if (expr->kind == ExprKind::Ref) {
        out.push_back(expr->name);
        return;
    }
    for (const auto &arg : expr->args)
        collectRefs(arg, out);
}

ExprPtr
renameRefs(const ExprPtr &expr,
           const std::map<std::string, std::string> &renames)
{
    if (expr->kind == ExprKind::Ref) {
        auto it = renames.find(expr->name);
        if (it == renames.end())
            return expr;
        return ref(it->second, expr->width);
    }
    if (expr->args.empty())
        return expr;

    auto e = std::make_shared<Expr>(*expr);
    for (auto &arg : e->args)
        arg = renameRefs(arg, renames);
    return e;
}

const Port *
Module::findPort(const std::string &port_name) const
{
    for (const auto &p : ports)
        if (p.name == port_name)
            return &p;
    return nullptr;
}

const Wire *
Module::findWire(const std::string &wire_name) const
{
    for (const auto &w : wires)
        if (w.name == wire_name)
            return &w;
    return nullptr;
}

const Reg *
Module::findReg(const std::string &reg_name) const
{
    for (const auto &r : regs)
        if (r.name == reg_name)
            return &r;
    return nullptr;
}

const Mem *
Module::findMem(const std::string &mem_name) const
{
    for (const auto &m : mems)
        if (m.name == mem_name)
            return &m;
    return nullptr;
}

const Instance *
Module::findInstance(const std::string &inst_name) const
{
    for (const auto &i : instances)
        if (i.name == inst_name)
            return &i;
    return nullptr;
}

SignalInfo
Module::resolve(const Circuit &circuit, const std::string &sig_name) const
{
    auto [owner, field] = splitRef(sig_name);
    if (owner.empty()) {
        if (const Port *p = findPort(field)) {
            return {p->dir == PortDir::Input ? SignalKind::InPort
                                             : SignalKind::OutPort,
                    p->width};
        }
        if (const Wire *w = findWire(field))
            return {SignalKind::Wire, w->width};
        if (const Reg *r = findReg(field))
            return {SignalKind::Reg, r->width};
        return {};
    }

    if (const Mem *m = findMem(owner)) {
        unsigned addr_w = bitsNeeded(m->depth > 0 ? m->depth - 1 : 0);
        if (field == "raddr")
            return {SignalKind::MemRAddr, addr_w};
        if (field == "rdata")
            return {SignalKind::MemRData, m->width};
        if (field == "waddr")
            return {SignalKind::MemWAddr, addr_w};
        if (field == "wdata")
            return {SignalKind::MemWData, m->width};
        if (field == "wen")
            return {SignalKind::MemWEn, 1};
        return {};
    }

    if (const Instance *inst = findInstance(owner)) {
        const Module *child = circuit.findModule(inst->moduleName);
        if (!child)
            return {};
        if (const Port *p = child->findPort(field)) {
            // Directions flip from the parent's point of view: a child
            // input is a sink the parent drives.
            return {p->dir == PortDir::Input ? SignalKind::InstIn
                                             : SignalKind::InstOut,
                    p->width};
        }
    }
    return {};
}

const Module &
Circuit::top() const
{
    const Module *m = findModule(topName);
    if (!m)
        fatal("circuit has no top module named '", topName, "'");
    return *m;
}

Module &
Circuit::top()
{
    Module *m = findModule(topName);
    if (!m)
        fatal("circuit has no top module named '", topName, "'");
    return *m;
}

const Module *
Circuit::findModule(const std::string &mod_name) const
{
    auto it = modules.find(mod_name);
    return it == modules.end() ? nullptr : &it->second;
}

Module *
Circuit::findModule(const std::string &mod_name)
{
    auto it = modules.find(mod_name);
    return it == modules.end() ? nullptr : &it->second;
}

Module &
Circuit::addModule(Module m)
{
    if (modules.count(m.name))
        fatal("duplicate module name '", m.name, "'");
    std::string name = m.name;
    auto [it, ok] = modules.emplace(name, std::move(m));
    FIREAXE_ASSERT(ok);
    return it->second;
}

std::vector<std::string>
Circuit::topoOrder() const
{
    std::vector<std::string> order;
    std::set<std::string> visiting, done;

    // Depth-first post-order from the top.
    std::function<void(const std::string &)> visit =
        [&](const std::string &name) {
            if (done.count(name))
                return;
            if (visiting.count(name))
                fatal("module instantiation cycle involving '", name, "'");
            const Module *m = findModule(name);
            if (!m)
                fatal("instance of undefined module '", name, "'");
            visiting.insert(name);
            for (const auto &inst : m->instances)
                visit(inst.moduleName);
            visiting.erase(name);
            done.insert(name);
            order.push_back(name);
        };
    visit(topName);
    return order;
}

} // namespace fireaxe::firrtl
