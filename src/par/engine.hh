/**
 * @file
 * Multi-threaded partition execution engine.
 *
 * The sequential executor (src/platform) steps every partition on one
 * host thread with a discrete-event loop: always tick the partition
 * with the lexicographically smallest (next event time, partition
 * index). This engine runs the same per-partition tick function on a
 * pool of worker threads instead — each partition's simulator on its
 * own worker (static round-robin when partitions outnumber workers) —
 * and reproduces the sequential schedule's *observable effects*
 * exactly, using conservative parallel discrete-event synchronization
 * on the token channels:
 *
 *  - Every channel has a lookahead: a token produced at host time t
 *    is never visible before t + serialization + latency. A consumer
 *    at time T may evaluate once, for every input channel, either a
 *    visible token exists or the producer's clock has passed
 *    T - lookahead — no later production can affect the tick.
 *  - Producer-side backpressure uses the channel's logical occupancy
 *    (pop-log accounting, see libdn::TokenChannel): a producer at
 *    time T sees exactly the pops a sequential run would have
 *    executed before its tick, so full()/not-full decisions — and
 *    with them serializer timing and the entire token schedule — are
 *    independent of worker interleaving.
 *  - Workers self-pace dataflow-style: a partition whose gates fail
 *    parks on a condition variable and is woken by a generation
 *    counter that every clock publication bumps. The partition with
 *    the lexicographically smallest (clock, index) can always
 *    proceed, so the pool never parks entirely before completion.
 *
 * Genuine LI-BDN deadlock (a circular token dependency) manifests as
 * livelock — host clocks keep advancing while no fireFSM makes
 * progress — so the watchdog tracks a per-partition *logical*
 * no-progress window. When every partition exceeds the window, the
 * engine quiesces the pool (all workers parked, initiator holding the
 * engine mutex, which doubles as the TSan-visible synchronization
 * point) and inspects the channels: a token still in flight (ready
 * time beyond its consumer's clock, e.g. a fault-recovery penalty)
 * means a transient stall — progress clocks reset and the run
 * continues; otherwise the deadlock hook fires with the world frozen
 * for diagnosis.
 */

#ifndef FIREAXE_PAR_ENGINE_HH
#define FIREAXE_PAR_ENGINE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "libdn/channel.hh"

namespace fireaxe::par {

/** One inter-partition channel, as the engine needs to see it. */
struct ChannelDesc
{
    libdn::TokenChannel *chan = nullptr;
    int srcPart = 0;
    int dstPart = 0;
    /**
     * Conservative lookahead (ns): a token produced at time t is
     * never visible before t + lookaheadNs. The caller pre-margins
     * this below the true serialization+latency bound (a relative
     * epsilon) so floating-point rounding in ready-time arithmetic
     * can never make the gate optimistic.
     */
    double lookaheadNs = 0.0;
};

/** What one partition tick did (returned by the tick hook). */
struct TickResult
{
    /** Host-time increment to the partition's next event. */
    double nextDeltaNs = 0.0;
    /** The fireFSM advanced (a target cycle completed). */
    bool progressed = false;
    /** The partition's cycle count reached the run target. */
    bool reachedTarget = false;
    /** A stop condition fired; end the run for all partitions. */
    bool stopRequested = false;
};

struct EngineHooks
{
    /**
     * Execute one host tick of partition @p part at host time
     * @p now. Runs on the partition's worker thread; everything it
     * touches must be owned by the partition or thread-safe. The
     * engine's gates guarantee the partition's channels are safe to
     * evaluate at @p now.
     */
    std::function<TickResult(int part, double now)> onTick;
    /** A quiesced all-partition stall was excused as transient
     *  (in-flight token found). World is frozen during the call. */
    std::function<void(double now)> onTransientStall;
    /** Genuine deadlock at stall frontier @p now (ns): called once,
     *  world frozen, before the engine returns deadlocked = true. */
    std::function<void(double now)> onDeadlock;
};

struct EngineConfig
{
    /** Worker threads; 0 = min(partitions, hardware_concurrency).
     *  Explicit values are honored beyond the core count (workers
     *  park when idle, so oversubscription is benign). */
    unsigned workers = 0;
    /** Per-partition logical no-progress window before the partition
     *  is suspected of deadlock (ns); <= 0 disables the watchdog. */
    double deadlockWindowNs = 0.0;
    /** All-partition stalls excused as transient before the run is
     *  declared deadlocked regardless. */
    uint64_t maxTransientStalls = 1000000;
    /**
     * Nonzero: each worker mixes random wall-clock yields/sleeps
     * into its loop (seeded per worker from this value). Purely a
     * scheduling perturbation for stress tests — results must be
     * identical for any seed.
     */
    uint64_t stressSeed = 0;
    /** Initial next-event time per partition (defines the partition
     *  count). */
    std::vector<double> startTickNs;
    /** Result hostTimeNs fallback when no partition reaches the
     *  target during this run (e.g. resumed past it). */
    double startTimeNs = 0.0;
};

struct EngineResult
{
    /** Per-partition next event times at exit (resume state). */
    std::vector<double> nextTickNs;
    /** Host time of the last partition's target-reaching tick. */
    double hostTimeNs = 0.0;
    bool deadlocked = false;
    bool stopped = false;
    uint64_t transientStalls = 0;
};

class ParallelEngine
{
  public:
    ParallelEngine(EngineConfig cfg, EngineHooks hooks,
                   std::vector<ChannelDesc> channels);

    /** Run to completion (all partitions reach target, a stop
     *  condition fires, or deadlock). Blocking; spawns and joins the
     *  worker pool internally. */
    EngineResult run();

    /** Worker threads the pool will use (after clamping). */
    unsigned workerCount() const { return workers_; }

    /** Partition p's published host clock (ns); any thread. */
    double
    clockNs(int p) const
    {
        return clock_[size_t(p)].load(std::memory_order_acquire);
    }

  private:
    struct PartChannels
    {
        std::vector<const ChannelDesc *> in;
        std::vector<const ChannelDesc *> out;
    };

    void workerMain(unsigned w);
    bool tryTick(int p);
    bool inGatesOpen(int p, double T) const;
    bool outGatesOpen(int p, double T) const;
    void publish(int p, double next_tick);
    void parkUntil(uint64_t gen);
    void pausePark(std::unique_lock<std::mutex> &lk);
    void markSuspect(int p);
    void clearSuspect(int p);
    void quiesceAndInspect();
    void finish(std::unique_lock<std::mutex> &lk);

    EngineConfig cfg_;
    EngineHooks hooks_;
    std::vector<ChannelDesc> channels_;
    std::vector<PartChannels> parts_;
    unsigned workers_ = 1;
    int nparts_ = 0;

    // --- shared state ---------------------------------------------
    mutable std::mutex mtx_;
    std::condition_variable cv_;
    /** Bumped (release) after every clock publication; parked
     *  workers re-evaluate their gates when it moves. */
    std::atomic<uint64_t> wakeGen_{0};
    std::atomic<int> parked_{0};
    std::atomic<bool> done_{false};
    std::atomic<bool> pauseReq_{false};
    int pausedCount_ = 0; ///< guarded by mtx_
    std::unique_ptr<std::atomic<double>[]> clock_;
    std::unique_ptr<std::atomic<bool>[]> suspect_;
    std::atomic<int> suspectCount_{0};
    std::atomic<int> doneCount_{0};
    std::atomic<bool> deadlocked_{false};
    std::atomic<bool> stopped_{false};
    double stopTimeNs_ = 0.0; ///< written under mtx_
    uint64_t transientStalls_ = 0; ///< quiesced initiator only

    // --- per-partition state owned by the partition's worker ------
    // (inspected by the quiesce initiator under full pause, which
    // the engine mutex orders).
    std::vector<double> nextTick_;
    std::vector<double> lastProgress_;
    std::vector<double> doneTime_;
    std::vector<char> reached_;
};

} // namespace fireaxe::par

#endif // FIREAXE_PAR_ENGINE_HH
