#include "par/engine.hh"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "base/logging.hh"
#include "base/random.hh"

namespace fireaxe::par {

ParallelEngine::ParallelEngine(EngineConfig cfg, EngineHooks hooks,
                               std::vector<ChannelDesc> channels)
    : cfg_(std::move(cfg)), hooks_(std::move(hooks)),
      channels_(std::move(channels))
{
    nparts_ = int(cfg_.startTickNs.size());
    FIREAXE_ASSERT(nparts_ > 0, "parallel engine with no partitions");
    FIREAXE_ASSERT(hooks_.onTick, "parallel engine needs a tick hook");
    parts_.resize(size_t(nparts_));
    for (const ChannelDesc &cd : channels_) {
        FIREAXE_ASSERT(cd.chan, "null channel in engine descs");
        FIREAXE_ASSERT(cd.srcPart >= 0 && cd.srcPart < nparts_ &&
                           cd.dstPart >= 0 && cd.dstPart < nparts_,
                       "channel '", cd.chan->name(),
                       "' references an unknown partition");
        parts_[size_t(cd.dstPart)].in.push_back(&cd);
        parts_[size_t(cd.srcPart)].out.push_back(&cd);
    }

    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    workers_ = cfg_.workers ? cfg_.workers : hw;
    workers_ = std::min(workers_, unsigned(nparts_));
    if (workers_ == 0)
        workers_ = 1;

    clock_ = std::make_unique<std::atomic<double>[]>(size_t(nparts_));
    suspect_ =
        std::make_unique<std::atomic<bool>[]>(size_t(nparts_));
    for (int p = 0; p < nparts_; ++p) {
        clock_[size_t(p)].store(cfg_.startTickNs[size_t(p)],
                                std::memory_order_relaxed);
        suspect_[size_t(p)].store(false, std::memory_order_relaxed);
    }
    nextTick_ = cfg_.startTickNs;
    lastProgress_ = cfg_.startTickNs;
    doneTime_.assign(size_t(nparts_), 0.0);
    reached_.assign(size_t(nparts_), 0);
}

bool
ParallelEngine::inGatesOpen(int p, double T) const
{
    for (const ChannelDesc *cd : parts_[size_t(p)].in) {
        // A visible token pins the head: nothing the producer does
        // later can change what this tick sees on the channel.
        if (cd->chan->headReady(T))
            continue;
        double src_clock =
            clock_[size_t(cd->srcPart)].load(std::memory_order_acquire);
        if (cd->lookaheadNs > 0.0) {
            // Any future production at t > src_clock yields a token
            // visible no earlier than t + lookahead > T: the empty
            // view is final for this tick.
            if (src_clock > T - cd->lookaheadNs)
                continue;
        } else if (src_clock > T ||
                   (src_clock == T && cd->srcPart > p)) {
            // Degenerate zero-lookahead link: wait out the producer's
            // T tick unless the sequential tie order puts it after us.
            continue;
        }
        return false;
    }
    return true;
}

bool
ParallelEngine::outGatesOpen(int p, double T) const
{
    for (const ChannelDesc *cd : parts_[size_t(p)].out) {
        // Folds consumer pops up to T into the occupancy accounting.
        // A not-full verdict is already exact (missing pop records
        // can only overstate occupancy).
        if (!cd->chan->producerPrepare(T))
            continue;
        double dst_clock =
            clock_[size_t(cd->dstPart)].load(std::memory_order_acquire);
        if (dst_clock > T || (dst_clock == T && cd->dstPart > p)) {
            // Consumer's clock passed our tick in the sequential
            // order, so every pop that could precede it is published:
            // the full verdict is exact, and the model's own full()
            // check will (correctly, just like the sequential run)
            // skip firing into this channel.
            continue;
        }
        return false; // wait for the consumer to catch up
    }
    return true;
}

void
ParallelEngine::publish(int p, double next_tick)
{
    clock_[size_t(p)].store(next_tick, std::memory_order_release);
    wakeGen_.fetch_add(1, std::memory_order_release);
    if (parked_.load(std::memory_order_relaxed) > 0) {
        // Lock-step with parkUntil: waiters re-check the generation
        // under the mutex, so bump-then-notify cannot lose a wakeup.
        std::lock_guard<std::mutex> lock(mtx_);
        cv_.notify_all();
    }
}

void
ParallelEngine::finish(std::unique_lock<std::mutex> &lk)
{
    (void)lk; // must hold mtx_ so parked workers observe the flag
    done_.store(true, std::memory_order_release);
    cv_.notify_all();
}

bool
ParallelEngine::tryTick(int p)
{
    double T = nextTick_[size_t(p)];
    if (!inGatesOpen(p, T) || !outGatesOpen(p, T))
        return false;

    TickResult r = hooks_.onTick(p, T);
    FIREAXE_ASSERT(r.nextDeltaNs > 0.0, "partition ", p,
                   " tick did not advance host time");
    double next = T + r.nextDeltaNs;
    nextTick_[size_t(p)] = next;

    if (r.progressed) {
        lastProgress_[size_t(p)] = next;
        clearSuspect(p);
    } else if (cfg_.deadlockWindowNs > 0.0 &&
               next - lastProgress_[size_t(p)] >
                   cfg_.deadlockWindowNs) {
        markSuspect(p);
    }

    if (r.reachedTarget && !reached_[size_t(p)]) {
        reached_[size_t(p)] = 1;
        doneTime_[size_t(p)] = T;
        if (doneCount_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            nparts_) {
            std::unique_lock<std::mutex> lk(mtx_);
            finish(lk);
        }
    }
    if (r.stopRequested) {
        std::unique_lock<std::mutex> lk(mtx_);
        stopped_.store(true, std::memory_order_relaxed);
        stopTimeNs_ = std::max(stopTimeNs_, T);
        finish(lk);
    }

    publish(p, next);
    return true;
}

void
ParallelEngine::parkUntil(uint64_t gen)
{
    std::unique_lock<std::mutex> lk(mtx_);
    parked_.fetch_add(1, std::memory_order_relaxed);
    cv_.wait(lk, [&] {
        return done_.load(std::memory_order_relaxed) ||
               pauseReq_.load(std::memory_order_relaxed) ||
               wakeGen_.load(std::memory_order_relaxed) != gen;
    });
    parked_.fetch_sub(1, std::memory_order_relaxed);
}

void
ParallelEngine::pausePark(std::unique_lock<std::mutex> &lk)
{
    ++pausedCount_;
    cv_.notify_all(); // the quiesce initiator waits on pausedCount_
    cv_.wait(lk, [&] {
        return !pauseReq_.load(std::memory_order_relaxed) ||
               done_.load(std::memory_order_relaxed);
    });
    --pausedCount_;
}

void
ParallelEngine::markSuspect(int p)
{
    if (suspect_[size_t(p)].exchange(true,
                                     std::memory_order_relaxed)) {
        return;
    }
    if (suspectCount_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        nparts_) {
        quiesceAndInspect();
    }
}

void
ParallelEngine::clearSuspect(int p)
{
    if (suspect_[size_t(p)].exchange(false,
                                     std::memory_order_relaxed)) {
        suspectCount_.fetch_sub(1, std::memory_order_acq_rel);
    }
}

void
ParallelEngine::quiesceAndInspect()
{
    pauseReq_.store(true, std::memory_order_release);
    wakeGen_.fetch_add(1, std::memory_order_release);

    std::unique_lock<std::mutex> lk(mtx_);
    cv_.notify_all(); // flush normally-parked workers into pausePark
    cv_.wait(lk, [&] {
        return pausedCount_ == int(workers_) - 1 ||
               done_.load(std::memory_order_relaxed);
    });
    if (done_.load(std::memory_order_relaxed)) {
        pauseReq_.store(false, std::memory_order_release);
        cv_.notify_all();
        return;
    }

    // Every other worker is parked inside cv_.wait and released the
    // mutex to get there; holding it here gives this thread a
    // consistent (and TSan-visible) view of all per-partition state.
    if (suspectCount_.load(std::memory_order_acquire) == nparts_) {
        // A token still in flight — visible to its consumer only at
        // some future host time (e.g. a retransmission penalty) —
        // explains a global stall without a cyclic dependency: the
        // consumer's clock will eventually reach it.
        bool inflight = false;
        for (const ChannelDesc &cd : channels_) {
            double ready = cd.chan->headReadyTime();
            if (std::isfinite(ready) &&
                ready > clock_[size_t(cd.dstPart)].load(
                            std::memory_order_relaxed)) {
                inflight = true;
                break;
            }
        }
        if (inflight &&
            transientStalls_ < cfg_.maxTransientStalls) {
            ++transientStalls_;
            for (int p = 0; p < nparts_; ++p) {
                lastProgress_[size_t(p)] = nextTick_[size_t(p)];
                suspect_[size_t(p)].store(
                    false, std::memory_order_relaxed);
            }
            suspectCount_.store(0, std::memory_order_relaxed);
            if (hooks_.onTransientStall) {
                double frontier = nextTick_[0];
                for (int p = 1; p < nparts_; ++p)
                    frontier =
                        std::min(frontier, nextTick_[size_t(p)]);
                hooks_.onTransientStall(frontier);
            }
        } else {
            deadlocked_.store(true, std::memory_order_relaxed);
            if (hooks_.onDeadlock) {
                double frontier = nextTick_[0];
                for (int p = 1; p < nparts_; ++p)
                    frontier =
                        std::min(frontier, nextTick_[size_t(p)]);
                hooks_.onDeadlock(frontier);
            }
            finish(lk);
        }
    }

    pauseReq_.store(false, std::memory_order_release);
    cv_.notify_all();
}

void
ParallelEngine::workerMain(unsigned w)
{
    std::vector<int> mine;
    for (int p = int(w); p < nparts_; p += int(workers_))
        mine.push_back(p);

    Rng jitter(cfg_.stressSeed ^
               (0x9E3779B97F4A7C15ULL * (uint64_t(w) + 1)));

    while (!done_.load(std::memory_order_acquire)) {
        if (pauseReq_.load(std::memory_order_acquire)) {
            std::unique_lock<std::mutex> lk(mtx_);
            if (pauseReq_.load(std::memory_order_relaxed) &&
                !done_.load(std::memory_order_relaxed)) {
                pausePark(lk);
            }
            continue;
        }

        // Capture the wake generation BEFORE evaluating any gate: a
        // publication racing with the scan bumps the generation and
        // turns the park below into a no-op instead of a lost wakeup.
        uint64_t gen = wakeGen_.load(std::memory_order_acquire);
        bool any = false;
        for (int p : mine) {
            if (done_.load(std::memory_order_relaxed) ||
                pauseReq_.load(std::memory_order_relaxed)) {
                break;
            }
            if (tryTick(p))
                any = true;
            if (cfg_.stressSeed != 0 && jitter.below(8) == 0) {
                // Wall-clock-only scheduling perturbation: must not
                // change any simulation result.
                if (jitter.below(4) == 0) {
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(jitter.below(50)));
                } else {
                    std::this_thread::yield();
                }
            }
        }
        if (!any && !done_.load(std::memory_order_acquire) &&
            !pauseReq_.load(std::memory_order_acquire)) {
            parkUntil(gen);
        }
    }
}

EngineResult
ParallelEngine::run()
{
    std::vector<std::thread> pool;
    pool.reserve(workers_);
    for (unsigned w = 0; w < workers_; ++w)
        pool.emplace_back(&ParallelEngine::workerMain, this, w);
    for (std::thread &t : pool)
        t.join();

    EngineResult res;
    res.nextTickNs = nextTick_;
    res.deadlocked = deadlocked_.load(std::memory_order_relaxed);
    res.stopped = stopped_.load(std::memory_order_relaxed);
    res.transientStalls = transientStalls_;

    // Host time of the run: the tick at which the last partition
    // reached the cycle target — identical to the sequential
    // executor's final event time, because events execute in
    // nondecreasing host time there and the target-reaching tick of
    // the laggard partition is its last event.
    double ht = cfg_.startTimeNs;
    for (int p = 0; p < nparts_; ++p) {
        if (reached_[size_t(p)])
            ht = std::max(ht, doneTime_[size_t(p)]);
    }
    if (res.stopped)
        ht = std::max(ht, stopTimeNs_);
    if (res.deadlocked) {
        // Report the stall frontier (no partition reached target).
        double frontier = nextTick_[0];
        for (int p = 1; p < nparts_; ++p)
            frontier = std::min(frontier, nextTick_[size_t(p)]);
        ht = std::max(ht, frontier);
    }
    res.hostTimeNs = ht;
    return res;
}

} // namespace fireaxe::par
