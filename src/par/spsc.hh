/**
 * @file
 * Bounded lock-free single-producer/single-consumer ring buffer — the
 * synchronization substrate under the token channels when partitions
 * run on worker threads (src/par).
 *
 * The LI-BDN channel layer needs a little more than a textbook SPSC
 * queue, because the reliable-delivery machinery performs unusual
 * consumer-side operations on the same FIFO:
 *
 *  - pushFront():   a NAKed token's retransmitted copy re-enters at
 *                   the head (libdn::ReliableTokenChannel::
 *                   scheduleRetransmit pops the corrupted head and
 *                   requeues the pristine copy in its place);
 *  - front() is mutable: the consumer caches the CRC verdict in the
 *                   head entry ("verified" flag);
 *  - at(i):         the consumer scans the retransmit buffer for a
 *                   sequence number.
 *
 * All of these stay single-threaded per side: the producer only ever
 * pushBack()s, the consumer owns the head (front/popFront/pushFront/
 * at). Index publication uses release stores matched by acquire loads
 * on the opposite side, so the payload writes of a push are visible
 * before the slot becomes reachable — the classic Lamport queue
 * argument, extended to the head for pushFront (a freed slot below
 * head is never touched by the producer, which only writes at tail).
 *
 * size()/empty() are safe from any thread and return a snapshot that
 * is exact from the owning sides and conservative-consistent from
 * third parties (used by progress reporters and quiesced deadlock
 * diagnostics).
 *
 * Capacity is rounded up to a power of two; indices grow unbounded
 * and are masked on access, so head <= tail always holds in the
 * unsigned-wraparound sense. Overflow is a hard assertion, not a wait:
 * callers size the ring from a proven occupancy bound (see
 * TokenChannel::enableConcurrent) and a full ring means that bound —
 * not the data flow — is broken.
 */

#ifndef FIREAXE_PAR_SPSC_HH
#define FIREAXE_PAR_SPSC_HH

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

#include "base/logging.hh"

namespace fireaxe::par {

template <typename T>
class SpscRing
{
  public:
    explicit SpscRing(size_t min_capacity = 2)
    {
        size_t cap = 2;
        while (cap < min_capacity)
            cap <<= 1;
        slots_.resize(cap);
        mask_ = cap - 1;
    }

    size_t capacity() const { return mask_ + 1; }

    /** Entries currently queued. Exact from either owning side;
     *  conservative snapshot from other threads. */
    size_t
    size() const
    {
        size_t t = tail_.load(std::memory_order_acquire);
        size_t h = head_.load(std::memory_order_acquire);
        return t - h;
    }

    bool empty() const { return size() == 0; }

    // --- producer side -------------------------------------------

    /** Append one entry. Asserts on overflow (see file comment). */
    void
    pushBack(T value)
    {
        size_t t = tail_.load(std::memory_order_relaxed);
        size_t h = head_.load(std::memory_order_acquire);
        FIREAXE_ASSERT(t - h < capacity(), "SpscRing overflow (cap ",
                       capacity(), ")");
        slots_[t & mask_] = std::move(value);
        tail_.store(t + 1, std::memory_order_release);
    }

    // --- consumer side -------------------------------------------

    T &
    front()
    {
        FIREAXE_ASSERT(!empty(), "SpscRing front of empty ring");
        return slots_[head_.load(std::memory_order_relaxed) & mask_];
    }

    const T &
    front() const
    {
        FIREAXE_ASSERT(!empty(), "SpscRing front of empty ring");
        return slots_[head_.load(std::memory_order_relaxed) & mask_];
    }

    /** @p i counts from the head; i < size() required. */
    T &
    at(size_t i)
    {
        FIREAXE_ASSERT(i < size(), "SpscRing at(", i, ") of ", size());
        return slots_[(head_.load(std::memory_order_relaxed) + i) &
                      mask_];
    }

    const T &
    at(size_t i) const
    {
        FIREAXE_ASSERT(i < size(), "SpscRing at(", i, ") of ", size());
        return slots_[(head_.load(std::memory_order_relaxed) + i) &
                      mask_];
    }

    void
    popFront()
    {
        FIREAXE_ASSERT(!empty(), "SpscRing pop of empty ring");
        size_t h = head_.load(std::memory_order_relaxed);
        slots_[h & mask_] = T{}; // release payload memory eagerly
        head_.store(h + 1, std::memory_order_release);
    }

    /** Requeue one entry at the head (consumer-side; the slot below
     *  head is free as long as the ring is not full). */
    void
    pushFront(T value)
    {
        size_t h = head_.load(std::memory_order_relaxed);
        size_t t = tail_.load(std::memory_order_acquire);
        FIREAXE_ASSERT(t - h < capacity(),
                       "SpscRing pushFront overflow (cap ",
                       capacity(), ")");
        slots_[(h - 1) & mask_] = std::move(value);
        head_.store(h - 1, std::memory_order_release);
    }

  private:
    std::vector<T> slots_;
    size_t mask_ = 0;
    // Monotone indices, masked on access. alignas keeps the two
    // sides' cache lines from ping-ponging.
    alignas(64) std::atomic<size_t> head_{0};
    alignas(64) std::atomic<size_t> tail_{0};
};

} // namespace fireaxe::par

#endif // FIREAXE_PAR_SPSC_HH
