/**
 * @file
 * Microarchitectural parameter sets (Table I of the paper).
 *
 * The paper compares three cores on Embench: Large BOOM, a
 * Golden-Cove-downsized-by-40% BOOM ("GC40 BOOM"), and a Golden Cove
 * Xeon. These structs drive the trace-driven OoO performance model
 * in core_model.hh, which substitutes for running Embench on the
 * FPGA-simulated RTL cores (see DESIGN.md).
 */

#ifndef FIREAXE_UARCH_PARAMS_HH
#define FIREAXE_UARCH_PARAMS_HH

#include <string>

namespace fireaxe::uarch {

/** Core parameters; the Table I rows plus modelled latencies. */
struct CoreParams
{
    std::string name;

    // Table I rows.
    unsigned issueWidth;
    unsigned robEntries;
    unsigned intPhysRegs;
    unsigned fpPhysRegs;
    unsigned ldqEntries;
    unsigned stqEntries;
    unsigned fetchBufferEntries;
    unsigned l1iKb;
    unsigned l1dKb;

    // Derived / modelled microarchitecture.
    unsigned fetchWidth;         ///< frontend fetch bandwidth
    unsigned intAlus;
    unsigned memPorts;
    unsigned fpUnits;
    unsigned mispredictPenalty;  ///< redirect-to-refetch cycles
    unsigned l1dMissCycles;      ///< L2 hit latency
    unsigned l1iMissCycles;
    /** Branch predictor quality: multiplier on a workload's
     *  baseline misprediction rate (lower is better). */
    double branchPredictorFactor;
    /** Number of architectural registers per class (rename frees). */
    unsigned archRegs = 32;
};

/** Table I column 1: Large BOOM. */
CoreParams largeBoomParams();
/** Table I column 2: Golden-Cove-like BOOM (GC40). */
CoreParams gc40BoomParams();
/** Table I column 3: Golden Cove Xeon. */
CoreParams gcXeonParams();

} // namespace fireaxe::uarch

#endif // FIREAXE_UARCH_PARAMS_HH
