#include "uarch/trace.hh"

#include "base/logging.hh"

namespace fireaxe::uarch {

std::vector<Instr>
generateTrace(const WorkloadProfile &p, uint64_t seed)
{
    Rng rng(seed ^ std::hash<std::string>{}(p.name));
    std::vector<Instr> trace;
    trace.reserve(p.instructions);

    for (uint64_t i = 0; i < p.instructions; ++i) {
        Instr in;
        double roll = rng.uniform();
        if (roll < p.loadFrac) {
            in.kind = InstrKind::Load;
            in.l1dMiss = rng.chance(p.l1dMissRate);
        } else if (roll < p.loadFrac + p.storeFrac) {
            in.kind = InstrKind::Store;
        } else if (roll < p.loadFrac + p.storeFrac + p.branchFrac) {
            in.kind = InstrKind::Branch;
            in.mispredict = rng.chance(p.mispredictRate);
        } else if (roll < p.loadFrac + p.storeFrac + p.branchFrac +
                              p.fpFrac) {
            in.kind = InstrKind::Fp;
        } else if (roll < p.loadFrac + p.storeFrac + p.branchFrac +
                              p.fpFrac + p.mulFrac) {
            in.kind = InstrKind::Mul;
        } else {
            in.kind = InstrKind::IntAlu;
        }

        // Dependencies: geometric backward distances around the
        // profile's mean; distance 0 (no producer) happens for long
        // distances past the window anyway.
        if (i > 0) {
            uint64_t d1 = rng.geometric(p.depDistance);
            in.dep1 = uint16_t(std::min<uint64_t>(d1, i));
            if (rng.chance(0.5)) {
                uint64_t d2 = rng.geometric(p.depDistance * 2);
                in.dep2 = uint16_t(std::min<uint64_t>(d2, i));
            }
        }
        in.l1iMiss = rng.chance(p.l1iMissRate);
        trace.push_back(in);
    }
    return trace;
}

std::vector<WorkloadProfile>
embenchProfiles()
{
    // name, load, store, branch, fp, mul, mispred, l1d, l1i,
    // depDist, instructions
    return {
        // High-ILP crypto kernel: straight-line unrolled code,
        // frontend-bandwidth-bound on a narrow fetch unit.
        {"nettle-aes", 0.28, 0.06, 0.04, 0.00, 0.02, 0.004, 0.002,
         0.004, 14.0, 120000},
        // FP N-body: long serial FP dependency chains, bound by FP
        // unit latency/throughput; wider fetch barely helps.
        {"nbody", 0.18, 0.08, 0.06, 0.38, 0.02, 0.010, 0.004, 0.001,
         2.2, 120000},
        {"aha-mont64", 0.14, 0.06, 0.10, 0.00, 0.22, 0.020, 0.002,
         0.002, 4.5, 100000},
        {"crc32", 0.24, 0.02, 0.16, 0.00, 0.00, 0.006, 0.001, 0.001,
         3.0, 100000},
        {"cubic", 0.16, 0.08, 0.07, 0.30, 0.04, 0.015, 0.003, 0.002,
         3.2, 100000},
        {"huffbench", 0.26, 0.10, 0.18, 0.00, 0.00, 0.060, 0.012,
         0.006, 3.5, 100000},
        {"matmult-int", 0.30, 0.08, 0.06, 0.00, 0.18, 0.008, 0.020,
         0.001, 8.0, 120000},
        {"minver", 0.22, 0.10, 0.09, 0.22, 0.05, 0.025, 0.005, 0.003,
         3.8, 90000},
        {"nsichneu", 0.20, 0.08, 0.22, 0.00, 0.00, 0.080, 0.010,
         0.060, 4.0, 90000},
        {"slre", 0.24, 0.08, 0.20, 0.00, 0.00, 0.070, 0.008, 0.020,
         3.6, 90000},
        {"st", 0.20, 0.09, 0.08, 0.26, 0.03, 0.012, 0.006, 0.002,
         4.2, 100000},
        {"wikisort", 0.27, 0.12, 0.15, 0.04, 0.02, 0.050, 0.015,
         0.008, 4.0, 110000},
    };
}

WorkloadProfile
embenchProfile(const std::string &name)
{
    for (const auto &p : embenchProfiles())
        if (p.name == name)
            return p;
    fatal("unknown Embench profile '", name, "'");
}

} // namespace fireaxe::uarch
