#include "uarch/params.hh"

namespace fireaxe::uarch {

CoreParams
largeBoomParams()
{
    CoreParams p;
    p.name = "LargeBOOM";
    p.issueWidth = 3;
    p.robEntries = 96;
    p.intPhysRegs = 100;
    p.fpPhysRegs = 96;
    p.ldqEntries = 24;
    p.stqEntries = 24;
    p.fetchBufferEntries = 24;
    p.l1iKb = 32;
    p.l1dKb = 32;
    p.fetchWidth = 4;
    p.intAlus = 3;
    p.memPorts = 1;
    p.fpUnits = 1;
    p.mispredictPenalty = 12;
    p.l1dMissCycles = 22;
    p.l1iMissCycles = 18;
    p.branchPredictorFactor = 1.0;
    return p;
}

CoreParams
gc40BoomParams()
{
    CoreParams p;
    p.name = "GC40BOOM";
    p.issueWidth = 6;
    p.robEntries = 216;
    p.intPhysRegs = 115;
    p.fpPhysRegs = 132;
    p.ldqEntries = 76;
    p.stqEntries = 45;
    p.fetchBufferEntries = 54;
    p.l1iKb = 32;
    p.l1dKb = 32;
    p.fetchWidth = 8;
    p.intAlus = 5;
    p.memPorts = 2;
    p.fpUnits = 2;
    p.mispredictPenalty = 14;
    p.l1dMissCycles = 22;
    p.l1iMissCycles = 18;
    p.branchPredictorFactor = 0.95;
    return p;
}

CoreParams
gcXeonParams()
{
    CoreParams p;
    p.name = "GCXeon";
    p.issueWidth = 6;
    p.robEntries = 512;
    p.intPhysRegs = 280;
    p.fpPhysRegs = 332;
    p.ldqEntries = 192;
    p.stqEntries = 114;
    p.fetchBufferEntries = 144;
    p.l1iKb = 32;
    p.l1dKb = 48;
    p.fetchWidth = 8;
    p.intAlus = 5;
    p.memPorts = 3;
    p.fpUnits = 3;
    p.mispredictPenalty = 17;
    p.l1dMissCycles = 14; // large, fast mid-level cache
    p.l1iMissCycles = 12;
    p.branchPredictorFactor = 0.55; // mature TAGE-class predictor
    return p;
}

} // namespace fireaxe::uarch
