/**
 * @file
 * Trace-driven out-of-order core performance model.
 *
 * A one-pass dataflow model with structural constraints: each
 * instruction's fetch, dispatch, execute and commit times are
 * computed in program order, bounded by fetch bandwidth and buffer,
 * branch redirects, I/D-cache misses, ROB/physical-register/LQ/SQ
 * occupancy, functional-unit contention, data dependencies and
 * commit bandwidth. Every Table I parameter is load-bearing.
 *
 * The model also produces a TIP-style time-proportional cycle
 * attribution (Gottschall et al., MICRO'21 — the profiler the paper
 * integrates into FireAxe): each cycle between consecutive commits
 * is attributed to the pipeline constraint that bound the younger
 * instruction, yielding the CPI stacks of Fig. 8.
 */

#ifndef FIREAXE_UARCH_CORE_MODEL_HH
#define FIREAXE_UARCH_CORE_MODEL_HH

#include <cstdint>
#include <string>

#include "base/stats.hh"
#include "uarch/params.hh"
#include "uarch/trace.hh"

namespace fireaxe::uarch {

/** Cycle-attribution categories (Fig. 8 stack components). */
namespace cpi {
inline const char *base = "base";
inline const char *frontend = "frontend";
inline const char *branch = "branch";
inline const char *window = "window";
inline const char *execute = "execute";
inline const char *memory = "memory";
} // namespace cpi

/** Result of one benchmark run on one core configuration. */
struct CoreResult
{
    std::string core;
    std::string workload;
    uint64_t instructions = 0;
    uint64_t cycles = 0;
    CounterSet cpiStack;

    double
    ipc() const
    {
        return cycles ? double(instructions) / double(cycles) : 0.0;
    }

    /** Wall-clock runtime at a target frequency (Fig. 7). */
    double
    runtimeSeconds(double ghz) const
    {
        return double(cycles) / (ghz * 1e9);
    }
};

/**
 * The core model. Stateless between runs; construct once per
 * parameter set.
 */
class CoreModel
{
  public:
    explicit CoreModel(const CoreParams &params) : params_(params) {}

    /** Simulate a workload trace. Deterministic for a given seed. */
    CoreResult run(const WorkloadProfile &profile,
                   uint64_t seed = 1) const;

    const CoreParams &params() const { return params_; }

  private:
    CoreParams params_;
};

} // namespace fireaxe::uarch

#endif // FIREAXE_UARCH_CORE_MODEL_HH
