#include "uarch/core_model.hh"

#include <algorithm>
#include <vector>

#include "base/logging.hh"

namespace fireaxe::uarch {

namespace {

/** What bound a pipeline stage's time (for TIP attribution). */
enum class Reason : uint8_t {
    None,
    FetchBandwidth,
    FetchBuffer,
    ICacheMiss,
    Redirect,
    Dispatch,     // bound by an upstream stage
    Window,       // ROB / phys regs / LQ / SQ
    DepExecute,   // waiting on an ALU/MUL/FP producer
    DepMemory,    // waiting on a missing load
    FuBusy,       // functional-unit contention
    MemPortBusy,
    CommitBandwidth,
};

/** Execution latency per instruction class. */
unsigned
latencyOf(const Instr &in, const CoreParams &p, bool effective_miss)
{
    switch (in.kind) {
      case InstrKind::IntAlu:
        return 1;
      case InstrKind::Mul:
        return 3;
      case InstrKind::Fp:
        return 4;
      case InstrKind::Load:
        return 3 + (effective_miss ? p.l1dMissCycles : 0);
      case InstrKind::Store:
        return 1;
      case InstrKind::Branch:
        return 1;
    }
    return 1;
}

/** Deterministic per-instruction demotion hash in [0,1). */
double
demoteHash(uint64_t i)
{
    uint64_t z = (i + 0x9e3779b97f4a7c15ull) * 0xbf58476d1ce4e5b9ull;
    z ^= z >> 31;
    return double(z >> 11) * (1.0 / 9007199254740992.0);
}

/** Ring history of the last N values (for occupancy constraints). */
class TimeRing
{
  public:
    explicit TimeRing(size_t depth) : buf_(std::max<size_t>(depth, 1))
    {}

    /** Value recorded `depth` pushes ago (0 if not yet filled). */
    uint64_t
    oldest() const
    {
        return count_ >= buf_.size() ? buf_[head_] : 0;
    }

    void
    push(uint64_t v)
    {
        buf_[head_] = v;
        head_ = (head_ + 1) % buf_.size();
        ++count_;
    }

  private:
    std::vector<uint64_t> buf_;
    size_t head_ = 0;
    size_t count_ = 0;
};

} // namespace

CoreResult
CoreModel::run(const WorkloadProfile &profile, uint64_t seed) const
{
    const CoreParams &p = params_;
    std::vector<Instr> trace = generateTrace(profile, seed);
    size_t n = trace.size();

    CoreResult result;
    result.core = p.name;
    result.workload = profile.name;
    result.instructions = n;

    std::vector<uint64_t> fetch(n), dispatch(n), complete(n),
        commit(n);
    std::vector<Reason> complete_reason(n), dispatch_reason(n),
        fetch_reason(n);

    // Occupancy rings: commit time of the instruction whose release
    // frees the structure.
    TimeRing rob_ring(p.robEntries);
    TimeRing int_ring(p.intPhysRegs > p.archRegs
                          ? p.intPhysRegs - p.archRegs
                          : 1);
    TimeRing fp_ring(p.fpPhysRegs > p.archRegs
                         ? p.fpPhysRegs - p.archRegs
                         : 1);
    TimeRing ldq_ring(p.ldqEntries);
    TimeRing stq_ring(p.stqEntries);
    TimeRing fetch_bw_ring(p.fetchWidth);
    TimeRing fb_ring(p.fetchBufferEntries);
    TimeRing commit_bw_ring(p.issueWidth);
    TimeRing dispatch_bw_ring(p.issueWidth);

    // Functional-unit pools: next-free time per unit.
    std::vector<uint64_t> alu(p.intAlus, 0), mem(p.memPorts, 0),
        fpu(p.fpUnits, 0), mul(std::max(1u, p.intAlus / 2), 0);

    uint64_t redirect_ready = 0;
    uint64_t last_commit = 0;
    double l1d_demote = p.l1dKb > 32 ? 1.0 - 32.0 / p.l1dKb : 0.0;
    double bp_demote = 1.0 - p.branchPredictorFactor;

    for (size_t i = 0; i < n; ++i) {
        const Instr &in = trace[i];

        // ---- Fetch ----
        uint64_t f = fetch_bw_ring.oldest() + 1;
        Reason fr = Reason::FetchBandwidth;
        uint64_t fb_bound = fb_ring.oldest();
        if (fb_bound > f) {
            f = fb_bound;
            fr = Reason::FetchBuffer;
        }
        if (redirect_ready > f) {
            f = redirect_ready;
            fr = Reason::Redirect;
        }
        if (in.l1iMiss) {
            f += p.l1iMissCycles;
            fr = Reason::ICacheMiss;
        }
        fetch[i] = f;
        fetch_reason[i] = fr;
        fetch_bw_ring.push(f);

        // ---- Dispatch (rename + window allocation) ----
        uint64_t d = f + 1;
        Reason dr = Reason::Dispatch;
        auto bound = [&](uint64_t t, Reason why) {
            if (t > d) {
                d = t;
                dr = why;
            }
        };
        bound(dispatch_bw_ring.oldest() + 1, Reason::Dispatch);
        if (i > 0)
            bound(dispatch[i - 1], Reason::Dispatch);
        bound(rob_ring.oldest(), Reason::Window);
        bool fp_dest = in.kind == InstrKind::Fp;
        bool has_dest =
            in.kind != InstrKind::Store && in.kind != InstrKind::Branch;
        if (has_dest)
            bound((fp_dest ? fp_ring : int_ring).oldest(),
                  Reason::Window);
        if (in.kind == InstrKind::Load)
            bound(ldq_ring.oldest(), Reason::Window);
        if (in.kind == InstrKind::Store)
            bound(stq_ring.oldest(), Reason::Window);
        dispatch[i] = d;
        dispatch_reason[i] = dr;
        dispatch_bw_ring.push(d);

        // ---- Execute ----
        uint64_t ready = d + 1;
        Reason cr = Reason::Dispatch;
        auto depBound = [&](uint16_t dist) {
            if (dist == 0 || dist > i)
                return;
            size_t j = i - dist;
            if (complete[j] > ready) {
                ready = complete[j];
                const Instr &prod = trace[j];
                bool was_miss =
                    prod.kind == InstrKind::Load &&
                    complete_reason[j] == Reason::DepMemory;
                bool slow_fu = prod.kind == InstrKind::Fp ||
                               prod.kind == InstrKind::Mul;
                cr = (was_miss || (prod.kind == InstrKind::Load &&
                                   complete[j] - dispatch[j] >
                                       4 + p.l1dMissCycles / 2))
                         ? Reason::DepMemory
                         : (slow_fu ? Reason::DepExecute
                                    : Reason::DepExecute);
            }
        };
        depBound(in.dep1);
        depBound(in.dep2);

        std::vector<uint64_t> *pool = &alu;
        Reason busy_reason = Reason::FuBusy;
        switch (in.kind) {
          case InstrKind::Load:
          case InstrKind::Store:
            pool = &mem;
            busy_reason = Reason::MemPortBusy;
            break;
          case InstrKind::Fp:
            pool = &fpu;
            break;
          case InstrKind::Mul:
            pool = &mul;
            break;
          default:
            pool = &alu;
            break;
        }
        auto slot = std::min_element(pool->begin(), pool->end());
        uint64_t start = ready;
        if (*slot > start) {
            start = *slot;
            cr = busy_reason;
        }
        *slot = start + 1; // pipelined units: one issue per cycle

        bool miss = in.kind == InstrKind::Load && in.l1dMiss &&
                    demoteHash(i) >= l1d_demote;
        uint64_t done = start + latencyOf(in, p, miss);
        if (miss)
            cr = Reason::DepMemory;
        complete[i] = done;
        complete_reason[i] = cr;

        // Branch redirect: re-steer fetch after resolution.
        if (in.kind == InstrKind::Branch && in.mispredict &&
            demoteHash(i * 3 + 1) >= bp_demote) {
            redirect_ready = std::max(
                redirect_ready, done + p.mispredictPenalty);
        }

        // ---- Commit (in order) ----
        uint64_t c = done + 1;
        Reason final_reason = cr;
        if (last_commit > c) {
            c = last_commit;
            final_reason = Reason::CommitBandwidth;
        }
        uint64_t cbw = commit_bw_ring.oldest() + 1;
        if (cbw > c) {
            c = cbw;
            final_reason = Reason::CommitBandwidth;
        }
        commit[i] = c;
        commit_bw_ring.push(c);

        // Structures release at commit.
        rob_ring.push(c);
        if (has_dest)
            (fp_dest ? fp_ring : int_ring).push(c);
        if (in.kind == InstrKind::Load)
            ldq_ring.push(c);
        if (in.kind == InstrKind::Store)
            stq_ring.push(c);
        fb_ring.push(d); // fetch-buffer entry frees at dispatch

        // ---- TIP attribution of the commit gap ----
        uint64_t gap = c - last_commit;
        last_commit = c;
        if (gap == 0)
            continue;
        const char *cat = cpi::base;
        if (final_reason == Reason::CommitBandwidth) {
            cat = cpi::base;
        } else {
            // Walk back to the stage that actually bound us.
            Reason why = final_reason;
            if (why == Reason::Dispatch) {
                why = dispatch_reason[i];
                if (why == Reason::Dispatch)
                    why = fetch_reason[i];
            }
            switch (why) {
              case Reason::FetchBandwidth:
              case Reason::FetchBuffer:
              case Reason::ICacheMiss:
                cat = cpi::frontend;
                break;
              case Reason::Redirect:
                cat = cpi::branch;
                break;
              case Reason::Window:
                cat = cpi::window;
                break;
              case Reason::DepMemory:
              case Reason::MemPortBusy:
                cat = cpi::memory;
                break;
              case Reason::DepExecute:
              case Reason::FuBusy:
                cat = cpi::execute;
                break;
              default:
                cat = cpi::base;
                break;
            }
        }
        result.cpiStack.add(cat, gap);
    }

    result.cycles = n ? commit[n - 1] : 0;
    return result;
}

} // namespace fireaxe::uarch
