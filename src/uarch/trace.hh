/**
 * @file
 * Synthetic workload traces with Embench-like characteristics.
 *
 * Running real Embench binaries requires an RTL core with a full ISA
 * and toolchain; instead each benchmark is characterized by its
 * instruction mix, dependency structure, branch behaviour and cache
 * footprint, and a deterministic trace with those statistics is
 * generated per run. The profiles are chosen so the microarchitec-
 * tural contrasts the paper highlights are present: nettle-aes is
 * high-ILP and frontend-bandwidth-bound, nbody is FP-latency-bound,
 * etc. (Section V-B, Figs. 7 and 8.)
 */

#ifndef FIREAXE_UARCH_TRACE_HH
#define FIREAXE_UARCH_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/random.hh"

namespace fireaxe::uarch {

/** Instruction classes modelled. */
enum class InstrKind : uint8_t { IntAlu, Mul, Fp, Load, Store, Branch };

/** One trace entry. Dependencies are distances (in instructions)
 *  backwards; 0 means no dependency. */
struct Instr
{
    InstrKind kind;
    uint16_t dep1 = 0;
    uint16_t dep2 = 0;
    bool mispredict = false; ///< baseline-predictor outcome
    bool l1dMiss = false;    ///< at the reference 32 kB L1D
    bool l1iMiss = false;    ///< fetch-group miss marker
};

/** Statistical profile of a benchmark. */
struct WorkloadProfile
{
    std::string name;
    double loadFrac;
    double storeFrac;
    double branchFrac;
    double fpFrac;
    double mulFrac;
    /** Mispredictions per branch with the baseline predictor. */
    double mispredictRate;
    /** L1D misses per memory access at 32 kB. */
    double l1dMissRate;
    /** I-cache misses per fetch group at 32 kB. */
    double l1iMissRate;
    /** Mean backward dependency distance; higher = more ILP. */
    double depDistance;
    uint64_t instructions;
};

/** Generate the deterministic trace of a profile. */
std::vector<Instr> generateTrace(const WorkloadProfile &profile,
                                 uint64_t seed = 1);

/** The Embench-like benchmark suite used by Figs. 7 and 8. */
std::vector<WorkloadProfile> embenchProfiles();

/** Look up a profile by name; fatal() if unknown. */
WorkloadProfile embenchProfile(const std::string &name);

} // namespace fireaxe::uarch

#endif // FIREAXE_UARCH_TRACE_HH
