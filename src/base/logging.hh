/**
 * @file
 * Logging and error-reporting primitives.
 *
 * Follows the gem5 convention: panic() for internal invariant
 * violations (simulator bugs), fatal() for user-caused configuration
 * errors, warn()/inform() for non-fatal status reporting.
 */

#ifndef FIREAXE_BASE_LOGGING_HH
#define FIREAXE_BASE_LOGGING_HH

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace fireaxe {

/** Exception thrown by fatal(): a user-caused, recoverable-by-caller
 *  configuration error (bad partition spec, unsupported boundary...). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Exception thrown by panic(): an internal invariant violation. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

namespace detail {

inline void
formatInto(std::ostringstream &os)
{
    (void)os;
}

template <typename T, typename... Args>
void
formatInto(std::ostringstream &os, const T &first, const Args &...rest)
{
    os << first;
    formatInto(os, rest...);
}

template <typename... Args>
std::string
formatMsg(const Args &...args)
{
    std::ostringstream os;
    formatInto(os, args...);
    return os.str();
}

} // namespace detail

/**
 * Report an internal invariant violation and throw PanicError.
 * Use only for conditions that indicate a bug in FireAxe itself.
 */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    std::string msg = detail::formatMsg(args...);
    std::cerr << "panic: " << msg << std::endl;
    throw PanicError(msg);
}

/**
 * Report a user error (bad configuration, unsupported partition
 * boundary, ...) and throw FatalError.
 */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    std::string msg = detail::formatMsg(args...);
    throw FatalError(msg);
}

/** Report a condition that may indicate a problem but is survivable. */
template <typename... Args>
void
warn(const Args &...args)
{
    std::cerr << "warn: " << detail::formatMsg(args...) << std::endl;
}

/** Report normal operating status. */
template <typename... Args>
void
inform(const Args &...args)
{
    std::cout << "info: " << detail::formatMsg(args...) << std::endl;
}

/** panic() unless the given invariant holds. */
#define FIREAXE_ASSERT(cond, ...)                                         \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::fireaxe::panic("assertion failed: ", #cond, " ",            \
                             ::fireaxe::detail::formatMsg(__VA_ARGS__));   \
        }                                                                  \
    } while (0)

} // namespace fireaxe

#endif // FIREAXE_BASE_LOGGING_HH
