/**
 * @file
 * Bit-manipulation helpers shared by the IR evaluator and the
 * token-serialization models.
 */

#ifndef FIREAXE_BASE_BITS_HH
#define FIREAXE_BASE_BITS_HH

#include <cstdint>

#include "base/logging.hh"

namespace fireaxe {

/** Maximum supported port width in bits. */
constexpr unsigned maxBitWidth = 64;

/** Return a mask with the low @p width bits set. width must be <= 64. */
inline uint64_t
bitMask(unsigned width)
{
    FIREAXE_ASSERT(width <= maxBitWidth, "width=", width);
    if (width == maxBitWidth)
        return ~uint64_t(0);
    return (uint64_t(1) << width) - 1;
}

/** Truncate @p value to @p width bits. */
inline uint64_t
truncate(uint64_t value, unsigned width)
{
    return value & bitMask(width);
}

/** Extract bits [hi:lo] (inclusive) from @p value. */
inline uint64_t
extractBits(uint64_t value, unsigned hi, unsigned lo)
{
    FIREAXE_ASSERT(hi >= lo && hi < maxBitWidth, "hi=", hi, " lo=", lo);
    return (value >> lo) & bitMask(hi - lo + 1);
}

/** Number of bits needed to represent @p value. Returns 1 for 0. */
inline unsigned
bitsNeeded(uint64_t value)
{
    unsigned n = 0;
    while (value) {
        ++n;
        value >>= 1;
    }
    return n == 0 ? 1 : n;
}

/** Ceiling division for positive integers. */
inline uint64_t
ceilDiv(uint64_t num, uint64_t den)
{
    FIREAXE_ASSERT(den != 0);
    return (num + den - 1) / den;
}

} // namespace fireaxe

#endif // FIREAXE_BASE_BITS_HH
