/**
 * @file
 * Bit-exact scalar serialization helpers for the text-based
 * checkpoint and snapshot formats.
 *
 * Every durable format in FireAxe (simulator checkpoints, channel
 * checkpoints, recovery snapshots) is whitespace-separated text so it
 * diffs and greps. Host-time stamps are doubles, and a restore is only
 * bit-exact if they round-trip exactly — so doubles travel as their
 * raw IEEE-754 bit patterns, not as decimal.
 */

#ifndef FIREAXE_BASE_SERIAL_HH
#define FIREAXE_BASE_SERIAL_HH

#include <cstdint>
#include <cstring>

namespace fireaxe {

inline uint64_t
doubleBits(double d)
{
    uint64_t u;
    std::memcpy(&u, &d, sizeof(u));
    return u;
}

inline double
bitsToDouble(uint64_t u)
{
    double d;
    std::memcpy(&d, &u, sizeof(d));
    return d;
}

} // namespace fireaxe

#endif // FIREAXE_BASE_SERIAL_HH
