/**
 * @file
 * Plain-text table rendering for the benchmark harnesses. Each bench
 * binary prints the rows/series of the paper table or figure it
 * regenerates; this helper keeps the output aligned and parseable.
 */

#ifndef FIREAXE_BASE_TABLE_HH
#define FIREAXE_BASE_TABLE_HH

#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace fireaxe {

/** Column-aligned text table with a header row. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header)
        : header_(std::move(header))
    {}

    /** Append one row; must have the same arity as the header. */
    void
    addRow(std::vector<std::string> row)
    {
        rows_.push_back(std::move(row));
    }

    /** Format a double with fixed precision. */
    static std::string
    num(double v, int precision = 3)
    {
        std::ostringstream os;
        os << std::fixed << std::setprecision(precision) << v;
        return os.str();
    }

    void
    print(std::ostream &os) const
    {
        std::vector<size_t> widths(header_.size(), 0);
        auto grow = [&](const std::vector<std::string> &row) {
            for (size_t i = 0; i < row.size() && i < widths.size(); ++i)
                widths[i] = std::max(widths[i], row[i].size());
        };
        grow(header_);
        for (const auto &r : rows_)
            grow(r);

        auto emit = [&](const std::vector<std::string> &row) {
            for (size_t i = 0; i < widths.size(); ++i) {
                std::string cell = i < row.size() ? row[i] : "";
                os << std::left << std::setw(int(widths[i]) + 2) << cell;
            }
            os << "\n";
        };
        emit(header_);
        std::vector<std::string> rule;
        for (size_t w : widths)
            rule.push_back(std::string(w, '-'));
        emit(rule);
        for (const auto &r : rows_)
            emit(r);
    }

    size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace fireaxe

#endif // FIREAXE_BASE_TABLE_HH
