/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic models in FireAxe (workload traces, packet arrivals,
 * GC trigger jitter) draw from this generator so that simulations are
 * reproducible given a seed — mirroring FireSim's determinism goal.
 */

#ifndef FIREAXE_BASE_RANDOM_HH
#define FIREAXE_BASE_RANDOM_HH

#include <array>
#include <cstdint>

namespace fireaxe {

/**
 * A small, fast, deterministic PRNG (xoshiro256** core).
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL) { reseed(seed); }

    /** Re-initialize the state from a 64-bit seed via splitmix64. */
    void
    reseed(uint64_t seed)
    {
        for (auto &word : state_) {
            seed += 0x9e3779b97f4a7c15ULL;
            uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t result = rotl(state_[1] * 5, 7) * 9;
        uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    uint64_t
    below(uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    uint64_t
    range(uint64_t lo, uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli trial with probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Geometric-ish positive sample with the given mean (>= 1). */
    uint64_t
    geometric(double mean)
    {
        if (mean <= 1.0)
            return 1;
        uint64_t n = 1;
        double p = 1.0 / mean;
        while (!chance(p) && n < 100000)
            ++n;
        return n;
    }

    /** Full generator state, for checkpointing. A stream restored
     *  via setState() continues exactly where the saved one left
     *  off, so fault schedules replay deterministically. */
    std::array<uint64_t, 4>
    state() const
    {
        return {state_[0], state_[1], state_[2], state_[3]};
    }

    void
    setState(const std::array<uint64_t, 4> &s)
    {
        for (int i = 0; i < 4; ++i)
            state_[i] = s[size_t(i)];
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4];
};

} // namespace fireaxe

#endif // FIREAXE_BASE_RANDOM_HH
