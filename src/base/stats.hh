/**
 * @file
 * Lightweight statistics collection: running means, histograms with
 * percentile extraction, and named counters. Used by the uarch model,
 * the NIC latency counters, and the Go-runtime tail-latency benchmark.
 */

#ifndef FIREAXE_BASE_STATS_HH
#define FIREAXE_BASE_STATS_HH

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/logging.hh"

namespace fireaxe {

/** Running scalar statistic: count / sum / min / max / mean. */
class RunningStat
{
  public:
    void
    sample(double v)
    {
        if (count_ == 0) {
            min_ = max_ = v;
        } else {
            min_ = std::min(min_, v);
            max_ = std::max(max_, v);
        }
        sum_ += v;
        ++count_;
    }

    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    void
    reset()
    {
        count_ = 0;
        sum_ = 0.0;
        min_ = max_ = 0.0;
    }

  private:
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Sample reservoir with exact percentile extraction. Stores all samples;
 * suitable for the experiment scales used here (<= millions of samples).
 */
class Distribution
{
  public:
    void sample(double v) { samples_.push_back(v); }

    uint64_t count() const { return samples_.size(); }

    double
    mean() const
    {
        if (samples_.empty())
            return 0.0;
        double s = 0.0;
        for (double v : samples_)
            s += v;
        return s / samples_.size();
    }

    /**
     * Exact percentile (nearest-rank). @p p in [0, 100].
     */
    double
    percentile(double p) const
    {
        FIREAXE_ASSERT(p >= 0.0 && p <= 100.0, "p=", p);
        if (samples_.empty())
            return 0.0;
        std::vector<double> sorted(samples_);
        std::sort(sorted.begin(), sorted.end());
        size_t rank = static_cast<size_t>(
            (p / 100.0) * (sorted.size() - 1) + 0.5);
        return sorted[std::min(rank, sorted.size() - 1)];
    }

    double max() const { return percentile(100.0); }

    void reset() { samples_.clear(); }

    const std::vector<double> &samples() const { return samples_; }

  private:
    std::vector<double> samples_;
};

/** A named bag of integer counters (e.g. CPI-stack cycle attribution). */
class CounterSet
{
  public:
    void add(const std::string &name, uint64_t delta = 1)
    {
        counters_[name] += delta;
    }

    uint64_t
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    uint64_t
    total() const
    {
        uint64_t t = 0;
        for (const auto &kv : counters_)
            t += kv.second;
        return t;
    }

    const std::map<std::string, uint64_t> &all() const { return counters_; }

    void reset() { counters_.clear(); }

  private:
    std::map<std::string, uint64_t> counters_;
};

} // namespace fireaxe

#endif // FIREAXE_BASE_STATS_HH
