/**
 * @file
 * Lightweight statistics collection: running means, histograms with
 * percentile extraction, and named counters. Used by the uarch model,
 * the NIC latency counters, and the Go-runtime tail-latency benchmark.
 */

#ifndef FIREAXE_BASE_STATS_HH
#define FIREAXE_BASE_STATS_HH

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "base/random.hh"

namespace fireaxe {

/** Running scalar statistic: count / sum / min / max / mean. */
class RunningStat
{
  public:
    void
    sample(double v)
    {
        if (count_ == 0) {
            min_ = max_ = v;
        } else {
            min_ = std::min(min_, v);
            max_ = std::max(max_, v);
        }
        sum_ += v;
        ++count_;
    }

    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    void
    reset()
    {
        count_ = 0;
        sum_ = 0.0;
        min_ = max_ = 0.0;
    }

  private:
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Sample distribution with percentile extraction and bounded memory.
 *
 * Up to the reservoir cap every sample is stored and percentiles are
 * exact (nearest-rank). Beyond the cap the store switches to uniform
 * reservoir sampling (Vitter's Algorithm R with a fixed internal
 * seed, so results are deterministic): each of the N observed samples
 * is retained with probability cap/N, and percentiles become an
 * unbiased approximation whose error shrinks as the cap grows.
 * count()/mean()/min()/max() stay exact at any scale — they are
 * tracked as running scalars, not derived from the reservoir. This
 * bounds memory for million-cycle runs with per-token sampling.
 */
class Distribution
{
  public:
    static constexpr size_t kDefaultReservoirCap = 1 << 16;

    explicit Distribution(size_t reservoir_cap = kDefaultReservoirCap)
        : cap_(reservoir_cap ? reservoir_cap : 1)
    {
        samples_.reserve(std::min<size_t>(cap_, 1024));
    }

    void
    sample(double v)
    {
        exact_.sample(v);
        if (samples_.size() < cap_) {
            samples_.push_back(v);
        } else {
            // Algorithm R: keep each of the N samples seen so far
            // with probability cap/N.
            uint64_t j = rng_.below(exact_.count());
            if (j < cap_)
                samples_[size_t(j)] = v;
        }
    }

    /** Total samples observed (exact, not the reservoir size). */
    uint64_t count() const { return exact_.count(); }

    double mean() const { return exact_.mean(); }
    double min() const { return exact_.min(); }

    /** True while every observed sample is retained, i.e.
     *  percentiles are exact. */
    bool exact() const { return exact_.count() <= cap_; }

    size_t reservoirCap() const { return cap_; }

    /**
     * Percentile (nearest-rank over the reservoir). @p p in
     * [0, 100]. Exact while count() <= reservoirCap(); an unbiased
     * approximation above it, except p = 0 and p = 100 which always
     * return the exact min/max.
     */
    double
    percentile(double p) const
    {
        FIREAXE_ASSERT(p >= 0.0 && p <= 100.0, "p=", p);
        if (samples_.empty())
            return 0.0;
        if (p == 0.0)
            return exact_.min();
        if (p == 100.0)
            return exact_.max();
        std::vector<double> sorted(samples_);
        std::sort(sorted.begin(), sorted.end());
        size_t rank = static_cast<size_t>(
            (p / 100.0) * (sorted.size() - 1) + 0.5);
        return sorted[std::min(rank, sorted.size() - 1)];
    }

    double max() const { return exact_.max(); }

    void
    reset()
    {
        samples_.clear();
        exact_.reset();
        rng_.reseed(kReservoirSeed);
    }

    /** The retained reservoir (all samples while exact()). */
    const std::vector<double> &samples() const { return samples_; }

  private:
    // Fixed seed: reservoir contents are deterministic per insertion
    // order, independent of any simulation-level seeding.
    static constexpr uint64_t kReservoirSeed = 0xD157D157D157ULL;

    size_t cap_;
    std::vector<double> samples_;
    RunningStat exact_;
    Rng rng_{kReservoirSeed};
};

/** A named bag of integer counters (e.g. CPI-stack cycle attribution). */
class CounterSet
{
  public:
    void add(const std::string &name, uint64_t delta = 1)
    {
        counters_[name] += delta;
    }

    uint64_t
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    uint64_t
    total() const
    {
        uint64_t t = 0;
        for (const auto &kv : counters_)
            t += kv.second;
        return t;
    }

    const std::map<std::string, uint64_t> &all() const { return counters_; }

    void reset() { counters_.clear(); }

  private:
    std::map<std::string, uint64_t> counters_;
};

} // namespace fireaxe

#endif // FIREAXE_BASE_STATS_HH
