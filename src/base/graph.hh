/**
 * @file
 * Shared directed-graph algorithms over string-named nodes.
 *
 * Several subsystems maintain a signal/module/channel dependency
 * graph and need the same machinery: strongly connected components
 * for cycle detection (combinational loops in passes/combdep,
 * instantiation cycles in verify/ir, channel wait-for cycles in
 * verify/libdn) and BFS reachability for cone extraction and
 * diagnostic paths. Each used to carry its own hand-rolled iterative
 * Tarjan or coloring DFS; this header is the single implementation
 * they all share, and the substrate the src/analyze dataflow
 * framework builds its fan-in/fan-out cones on.
 *
 * All traversals are iterative (explicit stacks) so million-node
 * flattened netlists cannot blow the call stack.
 */

#ifndef FIREAXE_BASE_GRAPH_HH
#define FIREAXE_BASE_GRAPH_HH

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace fireaxe::base {

/**
 * A directed graph with string-named nodes and set-valued adjacency.
 * Nodes exist implicitly: anything that appears as an edge endpoint
 * (or is explicitly ensured) is a node.
 */
class StringDigraph
{
  public:
    void
    addEdge(const std::string &from, const std::string &to)
    {
        fwd_[from].insert(to);
        fwd_[to]; // materialize the sink so every node has an entry
    }

    void
    ensureNode(const std::string &node)
    {
        fwd_[node];
    }

    bool
    hasEdge(const std::string &from, const std::string &to) const
    {
        auto it = fwd_.find(from);
        return it != fwd_.end() && it->second.count(to) != 0;
    }

    const std::set<std::string> &
    successors(const std::string &node) const
    {
        static const std::set<std::string> kEmpty;
        auto it = fwd_.find(node);
        return it != fwd_.end() ? it->second : kEmpty;
    }

    const std::map<std::string, std::set<std::string>> &
    adjacency() const
    {
        return fwd_;
    }

    /** Reversed copy (every edge flipped). */
    StringDigraph
    reversed() const
    {
        StringDigraph rev;
        for (const auto &[from, succs] : fwd_) {
            rev.ensureNode(from);
            for (const auto &to : succs)
                rev.addEdge(to, from);
        }
        return rev;
    }

    /**
     * Strongly connected components via iterative Tarjan. Components
     * are returned in completion order (every component appears after
     * all components it has edges into — reverse topological order of
     * the condensation); nodes within a component are listed in DFS
     * discovery order.
     */
    std::vector<std::vector<std::string>>
    stronglyConnectedComponents() const
    {
        struct NodeInfo
        {
            int index = -1;
            int lowlink = -1;
            bool onStack = false;
        };
        struct Frame
        {
            const std::string *node;
            std::set<std::string>::const_iterator it, end;
        };

        std::map<std::string, NodeInfo> info;
        std::vector<std::string> sccStack;
        std::vector<std::vector<std::string>> out;
        int nextIndex = 0;

        for (const auto &[root, _] : fwd_) {
            if (info[root].index >= 0)
                continue;
            std::vector<Frame> stack;
            auto push = [&](const std::string &node) {
                NodeInfo &ni = info[node];
                ni.index = ni.lowlink = nextIndex++;
                ni.onStack = true;
                sccStack.push_back(node);
                const auto &succ = successors(node);
                stack.push_back({&node, succ.begin(), succ.end()});
            };
            push(root);
            while (!stack.empty()) {
                Frame &f = stack.back();
                if (f.it != f.end) {
                    const std::string &next = *f.it++;
                    NodeInfo &nni = info[next];
                    if (nni.index < 0) {
                        push(next);
                    } else if (nni.onStack) {
                        NodeInfo &ni = info[*f.node];
                        ni.lowlink = std::min(ni.lowlink, nni.index);
                    }
                    continue;
                }
                NodeInfo &ni = info[*f.node];
                if (ni.lowlink == ni.index) {
                    std::vector<std::string> comp;
                    for (;;) {
                        std::string w = sccStack.back();
                        sccStack.pop_back();
                        info[w].onStack = false;
                        bool done = w == *f.node;
                        comp.push_back(std::move(w));
                        if (done)
                            break;
                    }
                    // Popped in reverse discovery order.
                    std::reverse(comp.begin(), comp.end());
                    out.push_back(std::move(comp));
                }
                std::string done = *f.node;
                stack.pop_back();
                if (!stack.empty()) {
                    NodeInfo &pi = info[*stack.back().node];
                    pi.lowlink =
                        std::min(pi.lowlink, info[done].lowlink);
                }
            }
        }
        return out;
    }

    /**
     * The SCCs that contain a cycle: components of two or more nodes,
     * plus single nodes with a self-edge. Same ordering guarantees as
     * stronglyConnectedComponents().
     */
    std::vector<std::vector<std::string>>
    cyclicComponents() const
    {
        std::vector<std::vector<std::string>> out;
        for (auto &comp : stronglyConnectedComponents()) {
            if (comp.size() > 1 ||
                (comp.size() == 1 && hasEdge(comp[0], comp[0])))
                out.push_back(std::move(comp));
        }
        return out;
    }

    /** Every node reachable from @p from by forward edges, @p from
     *  included. */
    std::set<std::string>
    reachableFrom(const std::string &from) const
    {
        std::set<std::string> seen{from};
        std::deque<std::string> work{from};
        while (!work.empty()) {
            std::string cur = std::move(work.front());
            work.pop_front();
            for (const auto &next : successors(cur))
                if (seen.insert(next).second)
                    work.push_back(next);
        }
        return seen;
    }

    /** Shortest path from @p from to @p to (inclusive); empty when
     *  unreachable. */
    std::vector<std::string>
    shortestPath(const std::string &from, const std::string &to) const
    {
        std::map<std::string, std::string> parent;
        std::deque<std::string> work{from};
        parent[from] = "";
        while (!work.empty()) {
            std::string cur = std::move(work.front());
            work.pop_front();
            if (cur == to) {
                std::vector<std::string> path;
                for (std::string n = cur; !n.empty(); n = parent[n])
                    path.push_back(n);
                std::reverse(path.begin(), path.end());
                return path;
            }
            for (const auto &next : successors(cur)) {
                if (!parent.count(next)) {
                    parent[next] = cur;
                    work.push_back(next);
                }
            }
        }
        return {};
    }

  private:
    std::map<std::string, std::set<std::string>> fwd_;
};

} // namespace fireaxe::base

#endif // FIREAXE_BASE_GRAPH_HH
