#include "verify/plan.hh"

#include <map>
#include <set>
#include <sstream>

namespace fireaxe::verify {

using firrtl::Module;
using firrtl::Port;
using firrtl::PortDir;
using ripper::BoundaryNet;
using ripper::ChannelPlan;
using ripper::PartitionMode;
using ripper::PartitionPlan;

namespace {

std::string
partLabel(const PartitionPlan &plan, int p)
{
    if (p >= 0 && size_t(p) < plan.partitionNames.size() &&
        !plan.partitionNames[p].empty())
        return plan.partitionNames[p];
    return "p" + std::to_string(p);
}

const Port *
findTopPort(const PartitionPlan &plan, int part,
            const std::string &name)
{
    const Module *top =
        plan.partitions[part].findModule(plan.partitions[part].topName);
    return top ? top->findPort(name) : nullptr;
}

/** Whether a partition contains a FireRipper-generated skid buffer
 *  instance (fast-mode ready-valid boundary transform). */
bool
hasSkidBuffer(const firrtl::Circuit &pc)
{
    for (const auto &[_, mod] : pc.modules) {
        auto it = mod.attrs.find("fireRipperGenerated");
        if (it != mod.attrs.end() && it->second == "skidBuffer")
            return true;
    }
    return false;
}

} // namespace

bool
checkPlanStructure(const PartitionPlan &plan, Report &report)
{
    size_t errors_before = report.count(Severity::Error);
    size_t nparts = plan.partitions.size();

    if (nparts == 0) {
        report.add("PLAN001", Severity::Error,
                   "plan has no partitions");
        return false;
    }
    if (plan.partitionNames.size() != nparts) {
        std::ostringstream msg;
        msg << "partitionNames has " << plan.partitionNames.size()
            << " entries for " << nparts << " partitions";
        report.add("PLAN001", Severity::Error, msg.str());
    }
    if (plan.fame5Threads.size() != nparts) {
        std::ostringstream msg;
        msg << "fame5Threads has " << plan.fame5Threads.size()
            << " entries for " << nparts << " partitions";
        report.add("PLAN001", Severity::Error, msg.str());
    }

    // Nets: endpoint ranges, port existence, directions, widths.
    for (size_t n = 0; n < plan.nets.size(); ++n) {
        const BoundaryNet &net = plan.nets[n];
        std::string net_label = "net #" + std::to_string(n);
        if (net.srcPart < 0 || size_t(net.srcPart) >= nparts ||
            net.dstPart < 0 || size_t(net.dstPart) >= nparts) {
            report.add("PLAN001", Severity::Error,
                       net_label + " references an out-of-range "
                                   "partition",
                       {"", "", net.flatSignal});
            continue;
        }
        if (net.srcPart == net.dstPart) {
            report.add("PLAN001", Severity::Error,
                       net_label + " connects partition " +
                           std::to_string(net.srcPart) + " to itself",
                       {partLabel(plan, net.srcPart), "",
                        net.flatSignal});
            continue;
        }
        const Port *src = findTopPort(plan, net.srcPart, net.srcPort);
        const Port *dst = findTopPort(plan, net.dstPart, net.dstPort);
        if (!src || src->dir != PortDir::Output) {
            report.add("PLAN002", Severity::Error,
                       net_label + (src ? " source port is not an "
                                          "output"
                                        : " names a missing source "
                                          "port"),
                       {partLabel(plan, net.srcPart), "",
                        net.srcPort});
        }
        if (!dst || dst->dir != PortDir::Input) {
            report.add("PLAN002", Severity::Error,
                       net_label + (dst ? " destination port is not "
                                          "an input"
                                        : " names a missing "
                                          "destination port"),
                       {partLabel(plan, net.dstPart), "",
                        net.dstPort});
        }
        if (src && dst && src->dir == PortDir::Output &&
            dst->dir == PortDir::Input) {
            if (src->width != net.width || dst->width != net.width) {
                std::ostringstream msg;
                msg << net_label << " declares width " << net.width
                    << " but the ports are " << src->width << " ('"
                    << net.srcPort << "') and " << dst->width << " ('"
                    << net.dstPort << "') bits wide";
                report.add("PLAN003", Severity::Error, msg.str(),
                           {partLabel(plan, net.srcPart), "",
                            net.flatSignal});
            }
        }
    }

    // Channels: unique names, endpoint ranges, net coverage, widths,
    // capacity.
    std::set<std::string> channel_names;
    std::map<int, int> net_owner; // net index -> channel index
    for (size_t c = 0; c < plan.channels.size(); ++c) {
        const ChannelPlan &ch = plan.channels[c];
        SourceLoc loc{"", "", ch.name};
        if (!channel_names.insert(ch.name).second) {
            report.add("PLAN001", Severity::Error,
                       "duplicate channel name", loc);
        }
        if (ch.srcPart < 0 || size_t(ch.srcPart) >= nparts ||
            ch.dstPart < 0 || size_t(ch.dstPart) >= nparts) {
            report.add("PLAN001", Severity::Error,
                       "channel references an out-of-range partition",
                       loc);
            continue;
        }
        loc.partition = partLabel(plan, ch.srcPart);
        unsigned width = 0;
        for (int n : ch.netIndices) {
            if (n < 0 || size_t(n) >= plan.nets.size()) {
                report.add("PLAN001", Severity::Error,
                           "channel references an out-of-range net",
                           loc);
                continue;
            }
            auto [it, fresh] = net_owner.insert({n, int(c)});
            if (!fresh) {
                report.add("PLAN001", Severity::Error,
                           "net #" + std::to_string(n) +
                               " is carried by both channel '" +
                               plan.channels[it->second].name +
                               "' and this channel",
                           loc);
            }
            const BoundaryNet &net = plan.nets[n];
            if (net.srcPart != ch.srcPart ||
                net.dstPart != ch.dstPart) {
                report.add("PLAN001", Severity::Error,
                           "net #" + std::to_string(n) +
                               " does not match the channel's "
                               "partition pair",
                           loc);
            }
            width += net.width;
        }
        if (width != ch.widthBits) {
            std::ostringstream msg;
            msg << "channel declares " << ch.widthBits
                << " bits but its nets sum to " << width;
            report.add("PLAN004", Severity::Error, msg.str(), loc);
        }
        if (ch.capacity == 0) {
            report.add("PLAN007", Severity::Error,
                       "channel has zero token capacity: the source "
                       "can never enqueue (no credits)",
                       loc);
        } else if (plan.mode == PartitionMode::Fast &&
                   ch.capacity < 2) {
            report.add("PLAN007", Severity::Error,
                       "fast-mode channel capacity below 2 cannot "
                       "hold the seed token plus one in flight; the "
                       "boundary pipeline stalls every cycle",
                       loc);
        }
    }
    for (size_t n = 0; n < plan.nets.size(); ++n) {
        if (!net_owner.count(int(n))) {
            report.add("PLAN001", Severity::Error,
                       "net #" + std::to_string(n) +
                           " is not carried by any channel",
                       {"", "", plan.nets[n].flatSignal});
        }
    }

    return report.count(Severity::Error) == errors_before;
}

void
checkPlanCuts(const PartitionPlan &plan,
              const std::vector<passes::PortDeps> &summaries,
              Report &report)
{
    // PLAN005: fast mode may cut through an annotated ready-valid
    // interface only via FireRipper's boundary transform, which gates
    // the source valid with the (delayed) ready and plants a skid
    // buffer in the sink partition. An annotated bundle whose valid
    // crosses the cut into a partition with no skid buffer loses
    // in-flight transactions the moment the stale ready drops: that
    // is an un-buffered cut, and it is statically provable from the
    // plan alone.
    if (plan.mode == PartitionMode::Fast) {
        for (size_t p = 0; p < plan.partitions.size(); ++p) {
            const firrtl::Circuit &pc = plan.partitions[p];
            const Module *ptop = pc.findModule(pc.topName);
            if (!ptop)
                continue;
            for (const auto &inst : ptop->instances) {
                const Module *def = pc.findModule(inst.moduleName);
                if (!def)
                    continue;
                for (const auto &bundle : def->rvBundles) {
                    std::string flat_valid =
                        inst.name + "." + bundle.validPort;
                    std::string flat_ready =
                        inst.name + "." + bundle.readyPort;
                    const BoundaryNet *vnet = nullptr;
                    int valid_crossings = 0, ready_crossings = 0;
                    for (const auto &net : plan.nets) {
                        if (net.flatSignal == flat_valid) {
                            vnet = &net;
                            ++valid_crossings;
                        }
                        if (net.flatSignal == flat_ready)
                            ++ready_crossings;
                    }
                    // The hazard needs the whole handshake cut: a
                    // valid with no crossing ready (e.g. the
                    // consumer ignores backpressure) never gates on
                    // stale state, and a fanned-out valid is one the
                    // transform declines to touch.
                    if (valid_crossings != 1 || ready_crossings != 1)
                        continue;
                    if (hasSkidBuffer(plan.partitions[vnet->dstPart]))
                        continue;
                    report.add(
                        "PLAN005", Severity::Error,
                        "fast-mode cut goes through ready-valid "
                        "bundle '" + bundle.name + "' of '" +
                            inst.name + "' but partition '" +
                            partLabel(plan, vnet->dstPart) +
                            "' has no skid buffer on the sink side; "
                            "in-flight transactions are dropped when "
                            "the delayed ready drops (re-run "
                            "FireRipper's ready-valid transform or "
                            "use exact mode)",
                        {partLabel(plan, int(p)), def->name,
                         flat_valid});
                }
            }
        }

        // PLAN008: combinational cross-partition paths that are not
        // absorbed by a skid-buffered ready-valid boundary become a
        // one-target-cycle approximation under fast mode's seed
        // tokens. Legal, but worth a paper trail per channel.
        for (const ChannelPlan &ch : plan.channels) {
            if (hasSkidBuffer(plan.partitions[ch.dstPart]))
                continue;
            for (int n : ch.netIndices) {
                if (summaries[ch.srcPart].isSinkOutput(
                        plan.nets[n].srcPort)) {
                    report.add(
                        "PLAN008", Severity::Note,
                        "fast-mode channel carries a combinational "
                        "cross-partition path (source port '" +
                            plan.nets[n].srcPort +
                            "' depends on partition inputs); seed "
                            "tokens make it run, but values arrive "
                            "one target cycle late "
                            "(cycle-approximate)",
                        {partLabel(plan, ch.srcPart), "", ch.name});
                    break;
                }
            }
        }
    }

    // PLAN006: feedback consistency. The feedback block is what
    // users size links and hosts from; stale numbers are not fatal
    // but mislead capacity planning.
    {
        std::vector<unsigned> widths(plan.partitions.size(), 0);
        for (const auto &net : plan.nets) {
            widths[net.srcPart] += net.width;
            widths[net.dstPart] += net.width;
        }
        if (!plan.feedback.interfaceWidths.empty() &&
            plan.feedback.interfaceWidths != widths) {
            report.add("PLAN006", Severity::Warning,
                       "feedback interfaceWidths disagree with the "
                       "recomputed boundary widths");
        }

        unsigned max_width = 0;
        for (const auto &ch : plan.channels)
            max_width = std::max(max_width, ch.widthBits);
        if (plan.feedback.maxChannelWidth != max_width) {
            std::ostringstream msg;
            msg << "feedback maxChannelWidth is "
                << plan.feedback.maxChannelWidth
                << " but the widest channel carries " << max_width
                << " bits";
            report.add("PLAN006", Severity::Warning, msg.str());
        }

        bool any_comb = false;
        for (const ChannelPlan &ch : plan.channels)
            for (int n : ch.netIndices)
                if (summaries[ch.srcPart].isSinkOutput(
                        plan.nets[n].srcPort))
                    any_comb = true;
        unsigned crossings =
            (plan.mode == PartitionMode::Exact && any_comb) ? 2 : 1;
        if (plan.feedback.linkCrossingsPerCycle != 0 &&
            plan.feedback.linkCrossingsPerCycle != crossings) {
            std::ostringstream msg;
            msg << "feedback declares "
                << plan.feedback.linkCrossingsPerCycle
                << " link crossing(s) per target cycle but the "
                   "boundary requires "
                << crossings;
            report.add("PLAN006", Severity::Warning, msg.str());
        }
    }
}

} // namespace fireaxe::verify
