#include "verify/diag.hh"

#include <sstream>

#include "obs/json.hh"

namespace fireaxe::verify {

const char *
severityName(Severity sev)
{
    switch (sev) {
      case Severity::Note: return "note";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "unknown";
}

std::string
Diagnostic::render() const
{
    std::ostringstream os;
    os << severityName(severity) << "[" << code << "]";
    if (!loc.partition.empty())
        os << " partition '" << loc.partition << "'";
    if (!loc.module.empty())
        os << " module '" << loc.module << "'";
    if (!loc.signal.empty())
        os << " signal '" << loc.signal << "'";
    os << ": " << message;
    return os.str();
}

const std::vector<CheckInfo> &
checkRegistry()
{
    static const std::vector<CheckInfo> registry = {
        {"IR001", Severity::Error,
         "a signal has more than one driver"},
        {"IR002", Severity::Error,
         "a connect truncates its expression (rhs wider than sink)"},
        {"IR003", Severity::Error,
         "an output port, wire, instance input or memory read address "
         "is never driven"},
        {"IR004", Severity::Error,
         "a combinational cycle exists (SCC over the module netlist, "
         "including instance summaries)"},
        {"IR005", Severity::Warning,
         "dead logic: a wire or register cannot reach any output port"},
        {"IR006", Severity::Error,
         "a reference names an unknown or non-readable/non-drivable "
         "signal"},
        {"IR007", Severity::Error,
         "malformed hierarchy: missing top, undefined child module, or "
         "instantiation cycle"},
        {"IR008", Severity::Error,
         "duplicate signal or instance name within a module"},
        {"IR009", Severity::Warning,
         "constant-driven boundary: an output port is proven to carry "
         "the same value every cycle (constant propagation); the cut "
         "wastes link bandwidth serializing it"},
        {"IR010", Severity::Warning,
         "X escape: an unreset register's unknown power-up value can "
         "reach an output port, so a partitioned run may diverge from "
         "the monolithic simulation until reset"},
        {"LBDN001", Severity::Error,
         "under-declared channel dependency: the channel's source ports "
         "combinationally depend on an input channel the plan does not "
         "declare (statically provable deadlock)"},
        {"LBDN002", Severity::Warning,
         "over-declared channel dependency: the plan declares a "
         "dependency the netlist does not have (provable throughput "
         "loss)"},
        {"LBDN003", Severity::Error,
         "channel wait-for cycle: the recomputed combinational "
         "dependencies form a cycle across unseeded channels "
         "(statically provable deadlock)"},
        {"PLAN001", Severity::Error,
         "plan shape mismatch: inconsistent vector sizes, out-of-range "
         "indices, duplicate channel names, or a net not covered by "
         "exactly one channel"},
        {"PLAN002", Severity::Error,
         "a boundary net names a missing port or one with the wrong "
         "direction on its partition top"},
        {"PLAN003", Severity::Error,
         "a boundary net's width disagrees with the port widths at its "
         "endpoints"},
        {"PLAN004", Severity::Error,
         "a channel's declared widthBits is not the sum of its nets' "
         "widths"},
        {"PLAN005", Severity::Error,
         "fast-mode cut through an annotated ready-valid bundle with "
         "no skid buffer on the sink side (in-flight transactions "
         "would be dropped)"},
        {"PLAN006", Severity::Warning,
         "partition feedback (interface widths, max channel width, "
         "link crossings) disagrees with the recomputed boundary"},
        {"PLAN007", Severity::Error,
         "channel credit/capacity violation: zero-capacity channel, or "
         "fast-mode capacity too small to cover the link round trip"},
        {"PLAN008", Severity::Note,
         "fast-mode channel carries an un-buffered combinational "
         "cross-partition path; runs, but values arrive one target "
         "cycle late (cycle-approximate)"},
        {"PLAN009", Severity::Warning,
         "deep combinational cut: a channel's source ports sit behind "
         "a long intra-cycle driver chain in the source partition "
         "(fragile FPGA timing, late token launch)"},
        {"PLAN010", Severity::Note,
         "predicted hot channel: the static cut-cost model predicts a "
         "partition will spend most of each host cycle waiting on one "
         "blocking channel (see fireaxe-lint --analyze)"},
        {"PLAN011", Severity::Warning,
         "depth-N token batching requested across a boundary whose "
         "source cone disqualifies it (combinationally coupled "
         "through a third party, memory-bearing, or oversized shadow "
         "state); the channel is clamped to depth 1"},
        {"TOOL001", Severity::Error,
         "tool input error: unknown target, unreadable file, or "
         "parse failure (reported as a diagnostic so --json output "
         "stays machine-readable)"},
    };
    return registry;
}

const CheckInfo *
findCheck(const std::string &code)
{
    for (const auto &info : checkRegistry())
        if (info.code == code)
            return &info;
    return nullptr;
}

void
Report::add(Diagnostic diag)
{
    diags_.push_back(std::move(diag));
}

void
Report::add(const std::string &code, Severity sev, std::string message,
            SourceLoc loc)
{
    diags_.push_back({code, sev, std::move(message), std::move(loc)});
}

void
Report::merge(const Report &other)
{
    diags_.insert(diags_.end(), other.diags_.begin(),
                  other.diags_.end());
}

size_t
Report::count(Severity sev) const
{
    size_t n = 0;
    for (const auto &d : diags_)
        if (d.severity == sev)
            ++n;
    return n;
}

std::vector<Diagnostic>
Report::byCode(const std::string &code) const
{
    std::vector<Diagnostic> out;
    for (const auto &d : diags_)
        if (d.code == code)
            out.push_back(d);
    return out;
}

std::string
Report::renderText() const
{
    std::ostringstream os;
    for (const auto &d : diags_)
        os << d.render() << "\n";
    os << count(Severity::Error) << " error(s), "
       << count(Severity::Warning) << " warning(s), "
       << count(Severity::Note) << " note(s)\n";
    return os.str();
}

std::string
Report::renderJson() const
{
    std::ostringstream os;
    obs::JsonWriter w(os);
    w.beginObject();
    w.key("diagnostics");
    w.beginArray();
    for (const auto &d : diags_) {
        w.beginObject();
        w.key("code");
        w.value(d.code);
        w.key("severity");
        w.value(severityName(d.severity));
        w.key("message");
        w.value(d.message);
        if (!d.loc.partition.empty()) {
            w.key("partition");
            w.value(d.loc.partition);
        }
        if (!d.loc.module.empty()) {
            w.key("module");
            w.value(d.loc.module);
        }
        if (!d.loc.signal.empty()) {
            w.key("signal");
            w.value(d.loc.signal);
        }
        w.endObject();
    }
    w.endArray();
    w.key("errors");
    w.value(uint64_t(count(Severity::Error)));
    w.key("warnings");
    w.value(uint64_t(count(Severity::Warning)));
    w.key("notes");
    w.value(uint64_t(count(Severity::Note)));
    w.endObject();
    os << "\n";
    return os.str();
}

} // namespace fireaxe::verify
