#include "verify/analysis.hh"

#include <sstream>

#include "analyze/passes.hh"

namespace fireaxe::verify {

using ripper::PartitionPlan;

void
checkCircuitAnalysis(const firrtl::Circuit &circuit, Report &report,
                     const std::string &partition,
                     bool check_dead_logic)
{
    analyze::CircuitAnalysisOptions opts;
    opts.deadLogic = check_dead_logic;
    analyze::CircuitAnalysis result =
        analyze::analyzeCircuit(circuit, opts);
    const std::string &mod = result.graph->module().name;

    for (const auto &f : result.constOutputs) {
        std::ostringstream msg;
        msg << "output port always carries the constant value "
            << f.value << " (" << f.width
            << " bit(s) of boundary bandwidth per cycle spent on a "
               "value the sink could fold away)";
        report.add("IR009", Severity::Warning, msg.str(),
                   {partition, mod, f.port});
    }

    for (const auto &f : result.xEscapes) {
        report.add("IR010", Severity::Warning,
                   "unreset register '" + f.source +
                       "' can reach this output port; its unknown "
                       "power-up value may escape the partition "
                       "boundary before the first reset",
                   {partition, mod, f.port});
    }

    if (check_dead_logic) {
        for (const auto &sig : result.dead.refinedDead) {
            report.add("IR005", Severity::Warning,
                       "dead once constants are propagated: no "
                       "non-constant path to any output port "
                       "(refinement beyond reverse reachability)",
                       {partition, mod, sig});
        }
        for (const auto &mem : result.dead.writeOnlyMems) {
            report.add("IR005", Severity::Warning,
                       "write-only memory: its read data never "
                       "reaches an output port, so the whole write "
                       "cone is dead weight",
                       {partition, mod, mem});
        }
    }
}

analyze::CutCostReport
checkPlanCutCost(const PartitionPlan &plan,
                 const std::vector<passes::PortDeps> &summaries,
                 const analyze::CutCostOptions &options,
                 Report &report)
{
    analyze::CutCostReport cost =
        analyze::analyzeCutCost(plan, summaries, options);

    for (const auto &ch : cost.channels) {
        if (ch.combDepth < options.deepCombDepth)
            continue;
        std::string part = "p" + std::to_string(ch.srcPart);
        std::ostringstream msg;
        msg << "cut passes behind combinational depth " << ch.combDepth
            << " (threshold " << options.deepCombDepth
            << "): the channel's source ports end a long intra-cycle "
               "driver chain, so its token launches late in the host "
               "cycle and FPGA timing closure is fragile";
        report.add("PLAN009", Severity::Warning, msg.str(),
                   {part, "", ch.name});
    }

    for (const auto &p : cost.partitions) {
        if (p.blockingChannel.empty())
            continue;
        double cycle_ns = p.waitNs + p.computeNs;
        double share =
            cycle_ns > 0.0 ? 100.0 * p.waitNs / cycle_ns : 0.0;
        if (share <= options.hotWaitSharePct)
            continue;
        std::ostringstream msg;
        msg.setf(std::ios::fixed);
        msg.precision(1);
        msg << "predicted hot channel '" << p.blockingChannel
            << "': partition is predicted to spend " << p.waitNs
            << " ns of every " << cycle_ns
            << " ns target cycle waiting on it (FMR lower bound "
            << p.fmrLb << ")";
        report.add("PLAN010", Severity::Note, msg.str(),
                   {p.name, "", p.blockingChannel});
    }

    return cost;
}

analyze::BatchLegalityReport
checkPlanBatching(const PartitionPlan &plan,
                  unsigned requested_batch_depth, Report &report)
{
    analyze::BatchLegalityReport legality =
        analyze::analyzeBatchLegality(plan);

    if (requested_batch_depth <= 1)
        return legality; // unbatched: nothing to warn about

    for (const auto &ch : legality.channels) {
        if (ch.legal)
            continue;
        std::string part = "p" + std::to_string(ch.srcPart);
        std::ostringstream msg;
        msg << "batch depth " << requested_batch_depth
            << " requested, but " << ch.reason
            << "; the channel runs unbatched (depth 1)";
        report.add("PLAN011", Severity::Warning, msg.str(),
                   {part, "", ch.name});
    }
    return legality;
}

} // namespace fireaxe::verify
