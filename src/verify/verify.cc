#include "verify/verify.hh"

#include "base/logging.hh"

namespace fireaxe::verify {

Report
verifyCircuit(const firrtl::Circuit &circuit, const Options &options)
{
    Report report;
    if (!options.checkIr)
        return report;
    if (!checkCircuitStructure(circuit, report))
        return report;
    passes::CombDepAnalysis analysis(circuit,
                                     passes::LoopPolicy::Record);
    checkCircuitDeps(circuit, analysis, report, "",
                     options.checkDeadLogic);
    if (options.checkAnalyze && analysis.loops().empty())
        checkCircuitAnalysis(circuit, report, "",
                             options.checkDeadLogic);
    return report;
}

Report
verifyPlan(const ripper::PartitionPlan &plan, const Options &options)
{
    Report report;

    bool plan_ok = true;
    if (options.checkPlan)
        plan_ok = checkPlanStructure(plan, report);

    bool circuits_ok = true;
    if (options.checkIr) {
        for (size_t p = 0; p < plan.partitions.size(); ++p) {
            std::string label =
                p < plan.partitionNames.size() &&
                        !plan.partitionNames[p].empty()
                    ? plan.partitionNames[p]
                    : "p" + std::to_string(p);
            circuits_ok &= checkCircuitStructure(plan.partitions[p],
                                                 report, label);
        }
    }
    if (!circuits_ok)
        return report;

    // Dependency analyses are shared between the IR cycle check, the
    // LI-BDN protocol checker and the cut checks: one recomputation
    // per partition.
    std::vector<passes::CombDepAnalysis> analyses;
    std::vector<passes::PortDeps> summaries;
    analyses.reserve(plan.partitions.size());
    for (const auto &pc : plan.partitions) {
        analyses.emplace_back(pc, passes::LoopPolicy::Record);
        summaries.push_back(analyses.back().forModule(pc.topName));
    }

    bool cycles = false;
    if (options.checkIr) {
        for (size_t p = 0; p < plan.partitions.size(); ++p) {
            std::string label =
                p < plan.partitionNames.size() &&
                        !plan.partitionNames[p].empty()
                    ? plan.partitionNames[p]
                    : "p" + std::to_string(p);
            checkCircuitDeps(plan.partitions[p], analyses[p], report,
                             label, options.checkDeadLogic);
            cycles = cycles || !analyses[p].loops().empty();
        }
    }
    if (options.checkAnalyze) {
        for (size_t p = 0; p < plan.partitions.size(); ++p) {
            if (!analyses[p].loops().empty())
                continue; // IR004 already rejects this partition
            std::string label =
                p < plan.partitionNames.size() &&
                        !plan.partitionNames[p].empty()
                    ? plan.partitionNames[p]
                    : "p" + std::to_string(p);
            checkCircuitAnalysis(plan.partitions[p], report, label,
                                 options.checkDeadLogic);
        }
    }

    // With intra-partition cycles the port summaries are unreliable;
    // with a malformed plan the index spaces are. Either way the
    // dependency-aware plan checks would chase bad data.
    if (!plan_ok || cycles)
        return report;

    if (options.checkLibdn)
        checkLibdnProtocol(plan, summaries, report);
    if (options.checkPlan)
        checkPlanCuts(plan, summaries, report);
    if (options.checkAnalyze) {
        checkPlanCutCost(plan, summaries, options.cutCost, report);
        checkPlanBatching(plan, options.requestedBatchDepth, report);
    }

    return report;
}

} // namespace fireaxe::verify
